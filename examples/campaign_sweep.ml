(* Campaign sweep: a Table-1-style batch verification through the
   resumable campaign subsystem (lib/campaign).

   Plans a grid over three bundled circuits x two thresholds, drains it
   through the ensemble engine with every result persisted to an
   on-disk store, then prints the campaign report. Kill it halfway and
   run it again: the second invocation resumes, re-runs only the
   missing jobs, and the final report comes out byte-identical to an
   uninterrupted run (content-derived job seeds).

     dune exec examples/campaign_sweep.exe              # default dir
     dune exec examples/campaign_sweep.exe -- /tmp/mydir

   The same flow is available from the CLI:

     glcv campaign run --dir DIR -c genetic_NOT,0x0B --thresholds 10,15
     glcv campaign report --dir DIR --json *)

module Grid = Glc_campaign.Grid
module Store = Glc_campaign.Store
module Runner = Glc_campaign.Runner
module Resume = Glc_campaign.Resume

let () =
  let dir =
    if Array.length Sys.argv > 1 then Sys.argv.(1)
    else Filename.concat (Filename.get_temp_dir_name ()) "glc-campaign-sweep"
  in
  (* the job space: circuits x thresholds, 8 replicates each; axes that
     are left out keep a single default point *)
  let grid =
    Grid.make
      ~thresholds:[ 10.; 15. ]
      ~replicate_counts:[ 8 ]
      [ "genetic_NOT"; "genetic_AND"; "0x0B" ]
  in
  let spec = Grid.spec ~seed:7 grid in
  Format.printf "campaign: %d job(s) -> %s@.@." (Grid.size grid) dir;
  (* create the manifest on first run; on later runs fall through to
     resume, which skips every job already in the store *)
  (match Store.create ~dir (Grid.spec_to_json spec) with
  | Ok _ -> Format.printf "fresh campaign planned@."
  | Error _ -> Format.printf "existing campaign found -- resuming@.");
  match Resume.run ~on_progress:(Runner.counter_progress ()) ~dir () with
  | Error m ->
      Format.eprintf "error: %s@." m;
      exit 1
  | Ok (store, spec, summary) ->
      Format.printf
        "this run: attempted %d, succeeded %d, failed %d, pending %d@.@."
        summary.Runner.ran summary.Runner.succeeded summary.Runner.failed
        summary.Runner.remaining;
      Format.printf "%a@." Store.pp_report (store, spec);
      Format.printf
        "@.per-job documents live under %s@."
        (Filename.concat dir "results");
      if summary.Runner.remaining > 0 || summary.Runner.failed > 0 then
        exit 3
