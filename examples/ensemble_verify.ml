(* Ensemble verification: why one Gillespie run is not a verdict.

   Runs N independent SSA replicates of the 0x1C experiment across all
   CPU cores, then reports the PFoBE distribution, the majority-vote
   consensus logic and any flaky input combinations. Compare with
   examples/quickstart.ml, which draws its conclusion from a single
   trajectory.

     dune exec examples/ensemble_verify.exe *)

module Ensemble = Glc_engine.Ensemble
module Pool = Glc_engine.Pool
module Cache = Glc_engine.Cache
module Progress = Glc_engine.Progress
module Stats = Glc_engine.Stats
module Circuit = Glc_gates.Circuit
module Cello = Glc_gates.Cello

let () =
  let circuit = Cello.circuit_0x1C () in
  let replicates = 8 in
  Format.printf "circuit %s: %d replicates on %d domain(s)@.@."
    circuit.Circuit.name replicates (Pool.default_jobs ());
  let cache = Cache.create () in
  let cfg = Ensemble.config ~replicates ~seed:7 () in
  let t =
    Ensemble.run ~cache
      ~progress:(Progress.counter ~total:replicates ())
      cfg circuit
  in
  Format.printf "%a@.@." Ensemble.pp t;
  (* the aggregate verdict, programmatically *)
  Format.printf "consensus %s after %d replicate(s); PFoBE %.2f%% ± %.2f@."
    (if t.Ensemble.consensus_verified then "VERIFIED" else "NOT verified")
    (Array.length t.Ensemble.replicates)
    t.Ensemble.fitness.Stats.mean t.Ensemble.fitness.Stats.ci95;
  (* a second ensemble over the same cache reuses the compiled model *)
  let t2 = Ensemble.run ~cache (Ensemble.config ~replicates:4 ~seed:11 ()) circuit in
  Format.printf
    "second ensemble (fresh seed 11): consensus %s; compile cache: %d \
     hit(s), %d miss(es)@."
    (if t2.Ensemble.consensus_verified then "VERIFIED" else "NOT verified")
    (Cache.hits cache) (Cache.misses cache)
