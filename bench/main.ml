(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Baig & Madsen, DATE 2017).

     dune exec bench/main.exe            -- everything
     dune exec bench/main.exe -- fig2    -- one artefact
                                 fig3 | fig4 | fig5 | table1 | timing
                                 ssa     -- sparse-engine benchmark,
                                            writes BENCH_ssa.json
                                 symbolic -- certified-first vs SSA-only

   Absolute numbers differ from the paper (our substrate is a re-built
   simulator, not the authors' testbed); the *shape* of each result is
   what the harness reproduces. EXPERIMENTS.md records the comparison. *)

module Truth_table = Glc_logic.Truth_table
module Expr = Glc_logic.Expr
module Trace = Glc_ssa.Trace
module Circuit = Glc_gates.Circuit
module Circuits = Glc_gates.Circuits
module Cello = Glc_gates.Cello
module Benchmarks = Glc_gates.Benchmarks
module Protocol = Glc_dvasim.Protocol
module Experiment = Glc_dvasim.Experiment
module Digital = Glc_core.Digital
module Analyzer = Glc_core.Analyzer
module Verify = Glc_core.Verify
module Report = Glc_core.Report

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let subsection title = Printf.printf "\n--- %s ---\n" title

let analyze_with_protocol protocol circuit =
  let e = Experiment.run ~protocol circuit in
  let r, v = Verify.experiment e in
  (e, r, v)

let print_analysis circuit (r : Analyzer.result) (v : Verify.report) =
  Format.printf "%a@."
    (Report.pp_result ~output_name:circuit.Circuit.output)
    r;
  Format.printf "expected minterms: %s@."
    (String.concat ", "
       (List.map
          (Format.asprintf "%a"
             (Report.pp_combination ~arity:r.Analyzer.arity))
          (Truth_table.minterms circuit.Circuit.expected)));
  Format.printf "%a@." Report.pp_verification v

(* ---- Fig. 2: the 2-input genetic AND gate ---- *)

let fig2 () =
  section "Fig. 2 -- 2-input genetic AND gate: case and variation analysis";
  let circuit = Circuits.genetic_and () in
  let e, r, v = analyze_with_protocol Protocol.default circuit in
  (* the paper's plot shows an initial high glitch of GFP while CI builds
     up; quantify it so the effect is visible without a plot *)
  let out = Trace.column e.Experiment.trace circuit.Circuit.output in
  let first_500 = Array.sub out 0 500 in
  let glitch =
    Digital.count_high (Digital.of_samples ~threshold:15. first_500)
  in
  Printf.printf
    "initial transient: %d of the first 500 samples read logic-1 while \
     combination 00 is applied (the paper's 'unwanted high peak')\n\n"
    glitch;
  print_analysis circuit r v

(* ---- Fig. 3: why both filters are needed ---- *)

let fig3 () =
  section "Fig. 3 -- both filters applied together";
  Printf.printf
    "Two synthetic output streams with the SAME number of logic-1 \
     samples (the paper's example):\n\n";
  let stable = Array.init 30 (fun k -> k < 16) in
  let oscillating =
    Array.init 30 (fun k -> if k < 2 then true else k mod 2 = 0)
  in
  let describe name stream =
    let case = Array.length stream in
    let high = Digital.count_high stream in
    let var = Digital.count_variations stream in
    let fov = float_of_int var /. float_of_int case in
    let eq1 = fov < 0.25 and eq2 = 2 * high > case in
    Printf.printf
      "%-12s Case_I=%d High_O=%d Var_O=%2d FOV=%.3f  eq(1) %s, eq(2) %s \
       -> %s\n"
      name case high var fov
      (if eq1 then "pass" else "FAIL")
      (if eq2 then "pass" else "FAIL")
      (if eq1 && eq2 then "kept as a minterm" else "discarded");
  in
  describe "stable" stable;
  describe "oscillating" oscillating;
  Printf.printf
    "\nWith eq(2) alone both streams would be accepted and the extracted \
     logic would be wrong; eq(1) discards the unstable one.\n"

(* ---- Fig. 4: analytics of circuits 0x0B, 0x04, 0x1C ---- *)

let fig4 () =
  section "Fig. 4 -- analytical simulation data of 0x0B, 0x04 and 0x1C";
  List.iter
    (fun circuit ->
      subsection ("circuit " ^ circuit.Circuit.name);
      let _, r, v = analyze_with_protocol Protocol.default circuit in
      print_analysis circuit r v)
    [ Cello.circuit_0x0B (); Cello.circuit_0x04 (); Cello.circuit_0x1C () ]

(* ---- Fig. 5: threshold variation on 0x0B ---- *)

let fig5 () =
  section "Fig. 5 -- circuit 0x0B under threshold variation";
  Printf.printf
    "The threshold value also sets the amount applied for a logic-1 \
     input, as in the paper. The paper reports wrong behaviour at 3 and \
     40 molecules around a ~55-molecule high rail; our gates settle near \
     100 molecules, so the high-side failure appears at 90 instead \
     (see EXPERIMENTS.md).\n";
  List.iter
    (fun threshold ->
      subsection (Printf.sprintf "threshold %g molecules" threshold);
      let protocol = Protocol.with_threshold Protocol.default threshold in
      let circuit = Cello.circuit_0x0B () in
      let _, r, v = analyze_with_protocol protocol circuit in
      print_analysis circuit r v)
    [ 3.; 15.; 40.; 90. ]

(* ---- Table 1 (SS III): the 15-circuit evaluation ---- *)

let table1 () =
  section "Table 1 -- the 15-circuit evaluation (paper SS III)";
  Printf.printf "%-14s %6s %5s %10s %-9s %8s  %s\n" "circuit" "inputs"
    "gates" "components" "verdict" "fitness" "extracted expression";
  let verified = ref 0 in
  List.iter
    (fun circuit ->
      let _, r, v = analyze_with_protocol Protocol.default circuit in
      if v.Verify.verified then incr verified;
      Printf.printf "%-14s %6d %5d %10d %-9s %7.2f%%  %s\n"
        circuit.Circuit.name (Circuit.arity circuit)
        (Circuit.n_gates circuit)
        (Circuit.n_components circuit)
        (if v.Verify.verified then "verified" else "WRONG")
        r.Analyzer.fitness
        (Expr.to_string r.Analyzer.expr))
    (Benchmarks.all ());
  Printf.printf "\n%d/15 circuits verified under the paper's protocol \
                 (10,000 t.u., hold 1,000, threshold 15, FOV_UD 0.25)\n"
    !verified

(* ---- SS IV: runtime of the analysis algorithm ---- *)

(* A large synthetic log exercising the analyzer alone: [samples] points
   of a 3-input experiment with a plausible output pattern. *)
let synthetic_data ~samples ~arity =
  let names =
    Array.append
      (Array.init arity (fun j -> Printf.sprintf "I%d" (j + 1)))
      [| "OUT" |]
  in
  let nc = 1 lsl arity in
  let hold = samples / (2 * nc) in
  let r =
    Trace.Recorder.create ~names
      ~initial:(Array.make (arity + 1) 0.)
      ~t0:0.
      ~t_end:(float_of_int (samples - 1))
      ~dt:1.
  in
  for k = 0 to samples - 1 do
    let row = k / (max hold 1) mod nc in
    let state =
      Array.init (arity + 1) (fun j ->
          if j < arity then
            if (row lsr (arity - 1 - j)) land 1 = 1 then 30. else 0.
          else if row land 1 = 1 then
            (* noisy high output with occasional dips *)
            if k mod 97 = 0 then 5. else 40.
          else 1.)
    in
    Trace.Recorder.observe r (float_of_int k) state
  done;
  {
    Analyzer.trace = Trace.Recorder.finish r;
    inputs = Array.init arity (fun j -> Printf.sprintf "I%d" (j + 1));
    output = "OUT";
  }

let run_bechamel tests =
  let open Bechamel in
  let cfg =
    Benchmark.cfg ~limit:300 ~quota:(Time.second 1.5) ~kde:None ()
  in
  let witness = Toolkit.Instance.monotonic_clock in
  let results = Benchmark.all cfg [ witness ] tests in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0
      ~predictors:[| Measure.run |]
  in
  let tbl = Analyze.all ols witness results in
  let rows =
    Hashtbl.fold
      (fun name r acc ->
        let est =
          match Analyze.OLS.estimates r with
          | Some [ t ] -> t
          | Some _ | None -> nan
        in
        (name, est) :: acc)
      tbl []
  in
  List.iter
    (fun (name, ns) ->
      let pretty =
        if ns > 1e9 then Printf.sprintf "%8.2f s " (ns /. 1e9)
        else if ns > 1e6 then Printf.sprintf "%8.2f ms" (ns /. 1e6)
        else if ns > 1e3 then Printf.sprintf "%8.2f us" (ns /. 1e3)
        else Printf.sprintf "%8.0f ns" ns
      in
      Printf.printf "  %-42s %s\n" name pretty)
    (List.sort compare rows)

let timing () =
  section "SS IV -- runtime of the logic analysis (paper: ~8.4 s for a \
           complex circuit on large data)";
  let data_10k = synthetic_data ~samples:10_000 ~arity:3 in
  let data_100k = synthetic_data ~samples:100_000 ~arity:3 in
  let data_1m = synthetic_data ~samples:1_000_000 ~arity:3 in
  let data_4in = synthetic_data ~samples:100_000 ~arity:4 in
  (* one-shot wall-clock for the paper's headline number *)
  let t0 = Sys.time () in
  ignore (Analyzer.run data_1m);
  let headline = Sys.time () -. t0 in
  Printf.printf
    "one-shot: analysing a 1,000,000-sample 3-input log takes %.3f s \
     (paper reports ~8.4 s on its testbed)\n\n"
    headline;
  Printf.printf "Bechamel estimates (time per analysis):\n";
  let open Bechamel in
  run_bechamel
    (Test.make_grouped ~name:"analyzer"
       [
         Test.make ~name:"analyze/10k-samples/3-input"
           (Staged.stage (fun () -> Analyzer.run data_10k));
         Test.make ~name:"analyze/100k-samples/3-input"
           (Staged.stage (fun () -> Analyzer.run data_100k));
         Test.make ~name:"analyze/1M-samples/3-input"
           (Staged.stage (fun () -> Analyzer.run data_1m));
         Test.make ~name:"analyze/100k-samples/4-input"
           (Staged.stage (fun () -> Analyzer.run data_4in));
       ]);
  Printf.printf "\nSupporting stages (simulation and synthesis):\n";
  let circuit = Cello.circuit_0x0B () in
  let quick = Protocol.make ~total_time:1_000. ~hold_time:125. () in
  run_bechamel
    (Test.make_grouped ~name:"pipeline"
       [
         Test.make ~name:"synthesize/0x1C"
           (Staged.stage (fun () -> Cello.of_code 0x1C));
         Test.make ~name:"simulate/0x0B/1k-t.u."
           (Staged.stage (fun () -> Experiment.run ~protocol:quick circuit));
       ])

(* ---- ablations: design choices called out in DESIGN.md ---- *)

(* The paper: "if ... each of the input combination is changed before the
   propagation delay has elapsed, then the circuit never produces a
   correct output for some of the input combinations." *)
let ablation_hold () =
  section "Ablation A1 -- hold time vs. propagation delay";
  let circuit = Cello.circuit_0x1C () in
  Printf.printf "%9s %-9s %8s %12s\n" "hold t.u." "verdict" "fitness"
    "wrong states";
  List.iter
    (fun hold ->
      let protocol =
        Protocol.make ~total_time:(hold *. 16.) ~hold_time:hold ()
      in
      let _, r, v = analyze_with_protocol protocol circuit in
      Printf.printf "%9g %-9s %7.2f%% %12d\n" hold
        (if v.Verify.verified then "verified" else "WRONG")
        r.Analyzer.fitness
        (List.length v.Verify.wrong_states))
    [ 25.; 50.; 100.; 200.; 500.; 1000. ];
  Printf.printf
    "\nHolds shorter than the propagation delay (~50-100 t.u. for this \
     circuit's gates, x5 for safety) leave stale outputs in some \
     combinations, exactly as the paper warns.\n"

let ablation_fov () =
  section "Ablation A2 -- sensitivity to FOV_UD (eq. 1)";
  let circuit = Cello.circuit_0x0B () in
  (* run past the top of the operating window, where the output
     oscillates heavily around the threshold *)
  let threshold = 90. in
  let protocol = Protocol.with_threshold Protocol.default threshold in
  let e = Experiment.run ~protocol circuit in
  Printf.printf "threshold %g molecules (oscillatory operating point; \
                 expected minterms 000, 001, 011):\n" threshold;
  Printf.printf "%8s %-26s %8s\n" "FOV_UD" "kept minterms" "fitness";
  List.iter
    (fun fov_ud ->
      let r =
        Analyzer.of_experiment ~params:{ Analyzer.threshold; fov_ud } e
      in
      let kept =
        String.concat ", "
          (List.map
             (Format.asprintf "%a" (Report.pp_combination ~arity:3))
             r.Analyzer.minterms)
      in
      Printf.printf "%8g %-26s %7.2f%%\n" fov_ud kept r.Analyzer.fitness)
    [ 0.005; 0.05; 0.25; 0.5; 1.0 ];
  Printf.printf
    "\nBelow ~0.1 the stability filter starts discarding genuine \
     minterms (their decay tails count as variation) until the extracted \
     logic collapses to constant-0 with a deceptively perfect fitness; \
     from 0.25 up the result is stable. The heavily oscillating 011 is \
     removed by eq. (2) here — the synthetic Fig. 3 case in this harness \
     shows the converse, where only eq. (1) can reject.\n"

let ablation_algorithms () =
  section "Ablation A3 -- simulation algorithm";
  let circuit = Cello.circuit_0x0B () in
  let model = Glc_gates.Circuit.model circuit in
  let events =
    Experiment.input_schedule Protocol.default circuit
  in
  let analyse trace =
    let r =
      Analyzer.run
        {
          Analyzer.trace;
          inputs = circuit.Circuit.inputs;
          output = circuit.Circuit.output;
        }
    in
    let v = Verify.against ~expected:circuit.Circuit.expected r in
    (r, v)
  in
  Printf.printf "%-22s %-9s %8s %10s %9s\n" "algorithm" "verdict" "fitness"
    "firings" "wall (s)";
  let stochastic name algorithm =
    let cfg =
      Glc_ssa.Sim.config ~seed:42 ~algorithm ~t_end:10_000. ()
    in
    let t0 = Sys.time () in
    let trace, stats = Glc_ssa.Sim.run_with_stats ~events cfg model in
    let wall = Sys.time () -. t0 in
    let r, v = analyse trace in
    Printf.printf "%-22s %-9s %7.2f%% %10d %9.3f\n" name
      (if v.Verify.verified then "verified" else "WRONG")
      r.Analyzer.fitness stats.Glc_ssa.Sim.reactions_fired wall
  in
  stochastic "direct (Gillespie)" Glc_ssa.Sim.Direct;
  stochastic "next-reaction" Glc_ssa.Sim.Next_reaction;
  stochastic "tau-leap eps=0.03"
    (Glc_ssa.Sim.Tau_leaping { epsilon = 0.03 });
  (* the deterministic (ODE) limit: noise-free traces, perfect fitness *)
  let t0 = Sys.time () in
  let trace =
    Glc_ssa.Ode.run ~events (Glc_ssa.Ode.config ~t_end:10_000. ()) model
  in
  let wall = Sys.time () -. t0 in
  let r, v = analyse trace in
  Printf.printf "%-22s %-9s %7.2f%% %10s %9.3f\n" "ODE (RK4, determ.)"
    (if v.Verify.verified then "verified" else "WRONG")
    r.Analyzer.fitness "-" wall;
  Printf.printf
    "\nAll variants recover the same logic; the ODE limit shows the \
     fitness penalty is pure stochastic noise. At genetic copy numbers \
     (~100 molecules) tau-leaping falls back to exact stepping — the \
     leap condition only pays off at high copy numbers:\n\n";
  (* high-copy-number birth-death process: x* = k/gamma = 10,000 *)
  let bd =
    Glc_model.Model.make ~id:"bd"
      ~species:[ Glc_model.Model.species "X" 0. ]
      ~parameters:
        [
          Glc_model.Model.parameter "k" 1000.;
          Glc_model.Model.parameter "g" 0.1;
        ]
      ~reactions:
        [
          Glc_model.Model.reaction ~products:[ ("X", 1) ]
            ~rate:(Glc_model.Math.var "k") "birth";
          Glc_model.Model.reaction
            ~reactants:[ ("X", 1) ]
            ~rate:Glc_model.Math.(var "g" * var "X")
            "death";
        ]
      ()
  in
  Printf.printf "%-22s %10s %9s %12s\n" "birth-death x*=10^4" "firings"
    "wall (s)" "mean(X) late";
  List.iter
    (fun (name, algorithm) ->
      let cfg = Glc_ssa.Sim.config ~seed:5 ~algorithm ~t_end:500. () in
      let t0 = Sys.time () in
      let trace, stats = Glc_ssa.Sim.run_with_stats cfg bd in
      let wall = Sys.time () -. t0 in
      let late =
        Trace.sub trace ~from:250 ~until:(Trace.length trace)
      in
      Printf.printf "%-22s %10d %9.3f %12.0f\n" name
        stats.Glc_ssa.Sim.reactions_fired wall (Trace.mean late "X"))
    [
      ("direct (Gillespie)", Glc_ssa.Sim.Direct);
      ("tau-leap eps=0.03", Glc_ssa.Sim.Tau_leaping { epsilon = 0.03 });
    ]

let ablation_order () =
  section "Ablation A5 -- input sequencing: counting vs. Gray code";
  Printf.printf
    "The decaying output that 0x0B inherits when stepping 011 -> 100 \
     (the paper's Fig. 4 discussion) exists because counting order flips \
     all three inputs at once. Gray order flips one input per step:\n\n";
  Printf.printf "%-10s %-9s %8s %18s\n" "order" "verdict" "fitness"
    "stale-high samples";
  List.iter
    (fun (name, order) ->
      let protocol = Protocol.make ~order () in
      let circuit = Cello.circuit_0x0B () in
      let _, r, v = analyze_with_protocol protocol circuit in
      (* logic-1 samples observed on combinations whose expected output
         is low: decay inherited from the previous combination *)
      let stale =
        Array.fold_left
          (fun acc (c : Analyzer.case_stats) ->
            if
              Glc_logic.Truth_table.output circuit.Circuit.expected
                c.Analyzer.row
            then acc
            else acc + c.Analyzer.high_count)
          0 r.Analyzer.cases
      in
      Printf.printf "%-10s %-9s %7.2f%% %18d\n" name
        (if v.Verify.verified then "verified" else "WRONG")
        r.Analyzer.fitness stale)
    [ ("counting", Protocol.Counting); ("gray", Protocol.Gray) ];
  Printf.printf
    "\nBoth orders verify — the majority filter absorbs the stale \
     samples — but Gray sequencing removes most of them at the source.\n"

let ablation_yield () =
  section "Ablation A4 -- parametric yield under part variation";
  Printf.printf
    "Each circuit rebuilt 12 times with every promoter strength and \
     regulator affinity scaled by an independent log-normal factor:\n\n";
  Printf.printf "%-14s %14s %14s\n" "circuit" "yield @ 20%" "yield @ 60%";
  List.iter
    (fun name ->
      let circuit = Option.get (Benchmarks.find name) in
      let yield spread =
        let y =
          Glc_core.Robustness.parametric_yield ~trials:12 ~spread circuit
        in
        Printf.sprintf "%d/%d" y.Glc_core.Robustness.y_verified
          y.Glc_core.Robustness.y_trials
      in
      Printf.printf "%-14s %14s %14s\n" name (yield 0.2) (yield 0.6))
    [ "genetic_NOT"; "genetic_AND"; "0x0B"; "0x04"; "0x1C" ];
  Printf.printf
    "\nWide noise margins keep the yield high at realistic (~20%%) part \
     variation; it degrades once parameters vary by the order of the \
     margins themselves.\n"

let baselines () =
  section "Baselines -- what the two filters buy (Algorithm 1 vs. naive \
           extraction)";
  let seeds = [ 1; 2; 3; 4; 5 ] in
  let strategy_names =
    [
      "Algorithm 1 (both filters)"; "majority only (eq. 2)";
      "stability only (eq. 1)"; "endpoint sampling";
    ]
  in
  let run_with name protocol =
    let threshold = protocol.Protocol.threshold in
    let strategies data =
      [
        Glc_core.Baseline.full
          ~params:{ Analyzer.threshold; fov_ud = 0.25 }
          data;
        Glc_core.Baseline.majority_only ~threshold data;
        Glc_core.Baseline.stability_only ~threshold ~fov_ud:0.25 data;
        Glc_core.Baseline.endpoint_sampling ~threshold data;
      ]
    in
    subsection (Printf.sprintf "%s, mean over %d seeds" name
                  (List.length seeds));
    Printf.printf "%-28s %-12s %-12s %-12s\n" "wrong states (mean)"
      "genetic_AND" "0x0B" "0x1C";
    let circuits =
      [ Circuits.genetic_and (); Cello.circuit_0x0B ();
        Cello.circuit_0x1C () ]
    in
    (* wrong-state totals: strategy x circuit, summed over seeds *)
    let totals =
      List.map
        (fun circuit ->
          let per_strategy = Array.make (List.length strategy_names) 0 in
          List.iter
            (fun seed ->
              let protocol = { protocol with Protocol.seed } in
              let e = Experiment.run ~protocol circuit in
              let data =
                {
                  Analyzer.trace = e.Experiment.trace;
                  inputs = circuit.Circuit.inputs;
                  output = circuit.Circuit.output;
                }
              in
              List.iteri
                (fun si extraction ->
                  per_strategy.(si) <-
                    per_strategy.(si)
                    + Glc_core.Baseline.wrong_states
                        ~expected:circuit.Circuit.expected extraction)
                (strategies data))
            seeds;
          per_strategy)
        circuits
    in
    List.iteri
      (fun si name ->
        Printf.printf "%-28s" name;
        List.iter
          (fun per_strategy ->
            Printf.printf " %-12.1f"
              (float_of_int per_strategy.(si)
              /. float_of_int (List.length seeds)))
          totals;
        print_newline ())
      strategy_names
  in
  run_with "paper protocol (hold 1,000 t.u.)" Protocol.default;
  (* a short hold leaves decay tails inside every slot: the regime the
     filters were designed for *)
  run_with "stressed protocol (hold 150 t.u.)"
    (Protocol.make ~total_time:2_400. ~hold_time:150. ());
  (* oscillatory operating point: single-sample reads become coin flips *)
  run_with "oscillatory operating point (threshold 85)"
    (Protocol.with_threshold Protocol.default 85.);
  Printf.printf
    "\nWith comfortable holds every strategy extracts the right logic. \
     Under stress, eq. (1) alone falls into the paper's Fig. 2 trap \
     (stable glitches read as minterms); at an oscillatory operating \
     point, single-sample endpoint reads become unreliable while the \
     statistical filters degrade gracefully.\n"

let population () =
  section "Population -- single cell vs. plate-reader average";
  let circuit = Cello.circuit_0x0B () in
  let model = Circuit.model circuit in
  let events = Experiment.input_schedule Protocol.default circuit in
  Printf.printf "%7s %-9s %8s %10s\n" "cells" "verdict" "fitness"
    "total-var";
  List.iter
    (fun cells ->
      let cfg = Glc_ssa.Sim.config ~seed:42 ~t_end:10_000. () in
      let mean, _ = Glc_ssa.Population.run ~events ~cells cfg model in
      let r =
        Analyzer.run
          {
            Analyzer.trace = mean;
            inputs = circuit.Circuit.inputs;
            output = circuit.Circuit.output;
          }
      in
      let v = Verify.against ~expected:circuit.Circuit.expected r in
      let total_var =
        Array.fold_left
          (fun acc c -> acc + c.Analyzer.variations)
          0 r.Analyzer.cases
      in
      Printf.printf "%7d %-9s %7.2f%% %10d\n" cells
        (if v.Verify.verified then "verified" else "WRONG")
        r.Analyzer.fitness total_var)
    [ 1; 10; 50 ];
  Printf.printf
    "\nAveraging cells suppresses the stochastic variation the filters \
     exist to absorb: the population signal is effectively the ODE \
     limit.\n"

let scaling () =
  section "Scalability -- n-input circuits (the paper's title claim)";
  Printf.printf "%7s %6s %9s %10s %-9s %8s\n" "inputs" "gates" "sim (s)"
    "analys (s)" "verdict" "fitness";
  List.iter
    (fun n ->
      (* the n-input AND: output high only on the all-ones combination *)
      let tt =
        Glc_logic.Truth_table.of_minterms ~arity:n [ (1 lsl n) - 1 ]
      in
      let circuit =
        Glc_gates.Assembly.synthesize
          ~library:(Glc_gates.Repressor.extended 32)
          ~name:(Printf.sprintf "AND%d" n)
          tt
      in
      let protocol =
        Protocol.make
          ~total_time:(1_000. *. float_of_int (2 * (1 lsl n)))
          ~hold_time:1_000. ()
      in
      let t0 = Sys.time () in
      let e = Experiment.run ~protocol circuit in
      let t1 = Sys.time () in
      let r, v = Verify.experiment e in
      let t2 = Sys.time () in
      Printf.printf "%7d %6d %9.3f %10.3f %-9s %7.2f%%\n" n
        (Circuit.n_gates circuit)
        (t1 -. t0) (t2 -. t1)
        (if v.Verify.verified then "verified" else "WRONG")
        r.Analyzer.fitness)
    [ 1; 2; 3; 4 ];
  Printf.printf
    "\nSimulation grows with 2^n (more combinations to drive); the \
     analysis itself stays linear in the number of logged samples.\n"

(* ---- ensemble scaling: 1 domain vs N on the same replicate set ---- *)

let ensemble_scaling () =
  section "Ensemble scaling -- wall-clock of a 16-replicate ensemble vs \
           worker domains";
  let module Ensemble = Glc_engine.Ensemble in
  let module Pool = Glc_engine.Pool in
  let circuit = Cello.circuit_0x0B () in
  let replicates = 16 and seed = 7 in
  let run_with jobs =
    let cfg = Ensemble.config ~replicates ~jobs ~seed () in
    let t0 = Unix.gettimeofday () in
    let t = Ensemble.run cfg circuit in
    let wall = Unix.gettimeofday () -. t0 in
    (t, wall)
  in
  let hw = Pool.default_jobs () in
  let job_counts =
    List.sort_uniq compare (List.filter (fun j -> j <= max hw 4) [ 1; 2; 4 ])
  in
  Printf.printf "circuit %s, %d replicates, seed %d (host reports %d \
                 core(s))\n\n" circuit.Circuit.name replicates seed hw;
  Printf.printf "%7s %10s %9s %10s\n" "domains" "wall (s)" "speedup"
    "identical";
  let reference = ref None in
  List.iter
    (fun jobs ->
      let t, wall = run_with jobs in
      let json = Ensemble.to_json t in
      let base_wall, base_json =
        match !reference with
        | None ->
            reference := Some (wall, json);
            (wall, json)
        | Some r -> r
      in
      Printf.printf "%7d %10.2f %8.2fx %10s\n" jobs wall (base_wall /. wall)
        (if String.equal json base_json then "yes" else "NO!"))
    job_counts;
  Printf.printf
    "\nReplicates are embarrassingly parallel: with enough cores the \
     speedup tracks the domain count until replicates/domains rounds \
     poorly (16 replicates saturate at 16 domains). The 'identical' \
     column checks the deterministic-seeding contract: every worker \
     count must produce byte-identical reports.\n"

(* ---- campaign: persistence overhead of the batch-verification store ---- *)

let campaign_bench () =
  section "Campaign -- store/journal overhead per job (lib/campaign)";
  let module Grid = Glc_campaign.Grid in
  let module Store = Glc_campaign.Store in
  let module Journal = Glc_campaign.Journal in
  let module Resume = Glc_campaign.Resume in
  let fresh_dir =
    let counter = ref 0 in
    fun () ->
      incr counter;
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "glc-campaign-bench-%d-%d" (Unix.getpid ())
           !counter)
  in
  let rec rm_rf path =
    if Sys.file_exists path then
      if Sys.is_directory path then begin
        Array.iter
          (fun n -> rm_rf (Filename.concat path n))
          (Sys.readdir path);
        Unix.rmdir path
      end
      else Sys.remove path
  in
  (* a representative stored document: the 0x0B result of a short job *)
  let grid = Grid.make ~replicate_counts:[ 2 ] [ "genetic_NOT" ] in
  let spec = Grid.spec ~total_time:2_000. ~hold_time:1_000. grid in
  let job = List.hd (Grid.expand grid) in
  let doc =
    let dir = fresh_dir () in
    let store =
      Result.get_ok (Store.create ~dir (Grid.spec_to_json spec))
    in
    let journal = Journal.open_ ~dir in
    let summary =
      Glc_campaign.Runner.run ~store ~journal spec [ job ]
    in
    Journal.close journal;
    assert (summary.Glc_campaign.Runner.succeeded = 1);
    let text = Option.get (Store.get store ~id:(Grid.job_id job)) in
    rm_rf dir;
    text
  in
  Printf.printf "stored document: %d bytes\n\n" (String.length doc);
  (* persistence primitives in isolation, on a live store/journal *)
  let dir = fresh_dir () in
  let store =
    Result.get_ok (Store.create ~dir (Grid.spec_to_json spec))
  in
  let journal = Journal.open_ ~dir in
  let put_counter = ref 0 in
  Printf.printf "Bechamel estimates (time per operation, fsync included):\n";
  let open Bechamel in
  run_bechamel
    (Test.make_grouped ~name:"campaign"
       [
         Test.make ~name:"store/put (atomic write + rename)"
           (Staged.stage (fun () ->
                incr put_counter;
                Store.put store
                  ~id:(Printf.sprintf "bench-%d" (!put_counter mod 8))
                  doc));
         Test.make ~name:"journal/append (fsync'd record)"
           (Staged.stage (fun () ->
                Journal.append journal
                  (Journal.Done (Grid.job_id job))));
         Test.make ~name:"store/get (read + parse-validate)"
           (Staged.stage (fun () ->
                Store.get store ~id:"bench-0"));
         Test.make ~name:"report (expand grid + render JSON)"
           (Staged.stage (fun () -> Store.report_json store spec));
       ]);
  Journal.close journal;
  rm_rf dir;
  (* overhead in context: the same 2-replicate job with and without the
     campaign machinery around it *)
  let t0 = Unix.gettimeofday () in
  let dir = fresh_dir () in
  ignore
    (Result.get_ok
       (Store.create ~dir (Grid.spec_to_json spec)));
  let _ = Result.get_ok (Resume.run ~dir ()) in
  let with_store = Unix.gettimeofday () -. t0 in
  rm_rf dir;
  let t1 = Unix.gettimeofday () in
  let protocol =
    Protocol.make ~total_time:2_000. ~hold_time:1_000. ()
  in
  let cfg =
    Glc_engine.Ensemble.config ~replicates:2
      ~seed:(Grid.job_seed ~seed:spec.Grid.seed job)
      ~protocol ()
  in
  ignore (Glc_engine.Ensemble.run cfg (Glc_gates.Circuits.genetic_not ()));
  let bare = Unix.gettimeofday () -. t1 in
  Printf.printf
    "\nend-to-end: 1 deliberately tiny job (2 replicates, 2,000 t.u.) \
     takes %.3f s through the campaign runner vs %.3f s bare — %.1f ms \
     of fixed per-job machinery. Table-1-scale jobs run for seconds, so \
     the persistence cost (~4 journal records + 1 atomic put, under a \
     millisecond) is noise.\n"
    with_store bare
    ((with_store -. bare) *. 1e3)

(* ---- SSA hot path: sparse propensity engine, flat IR vs AST ---- *)

(* Every Table-1 model, direct method. Four configurations:
   dependency-driven sparse updates on the flat-IR evaluator (the
   default), the same sparse engine on the AST closure evaluator (the
   --eval ast reference), the full-recompute reference, and the batched
   lane-block driver ([Sim.run_batch_rngs], eight replicates in
   lockstep over SoA state). All must produce byte-identical traces;
   sparse wins by doing O(deps) instead of O(R) propensity evaluations
   per firing, the IR wins on top by constant-folding parameter
   arithmetic (a Hill response costs one runtime pow instead of three)
   and dispatching flat instead of chasing a closure tree, and the
   batched driver wins again by decoding each stale instruction once
   for every lane that needs it. Writes the machine-readable results to
   BENCH_ssa.json (CI uploads it as an artifact). *)
(* Dense-coupling stress model for the batched driver: [n] species,
   conversions in every ordered pair, each law reading BOTH endpoint
   counts through a saturating mass-action form
   (k * S_i * (10 + S_j) * (1 + S_i/2000) * (1 + S_j/2000)). A firing
   then invalidates every reaction touching either endpoint — an
   affected set of ~4(n-1) of the n(n-1) reactions — so propensity
   refreshes dominate the step, and the laws compile to ~10 plain
   arithmetic instructions whose decode the lane-block amortises
   across requesting lanes. Table-1 circuits are the opposite regime
   twice over: the sparse engine already cut them to ~1-2 refreshes
   per firing, and their Hill responses compile to one superinstruction
   dominated by [pow], leaving batching nothing to share there. Total
   count is conserved (pure conversions), so propensities stay finite
   and bounded. *)
let dense_coupling_model ~n =
  let module Model = Glc_model.Model in
  let module Math = Glc_model.Math in
  let sp i = Printf.sprintf "S%d" i in
  let ids = List.init n Fun.id in
  let reactions =
    List.concat_map
      (fun i ->
        List.filter_map
          (fun j ->
            if i = j then None
            else
              Some
                (Model.reaction
                   ~reactants:[ (sp i, 1) ]
                   ~products:[ (sp j, 1) ]
                   ~modifiers:[ sp j ]
                   ~rate:
                     Math.(
                       var "k" * var (sp i)
                       * (num 10. + var (sp j))
                       * (num 1. + (var (sp i) / num 2000.))
                       * (num 1. + (var (sp j) / num 2000.)))
                   (Printf.sprintf "c_%d_%d" i j)))
          ids)
      ids
  in
  Model.make
    ~id:(Printf.sprintf "dense%d" n)
    ~species:(List.map (fun i -> Model.species (sp i) 100.) ids)
    ~parameters:[ Model.parameter "k" 3e-5 ]
    ~reactions ()

let bench_ssa () =
  section
    "SSA -- sparse propensity engine, flat IR vs AST vs batched \
     (Table-1 models + dense-coupling stress, direct method)";
  let module Sim = Glc_ssa.Sim in
  let module Compiled = Glc_ssa.Compiled in
  let module Metrics = Glc_obs.Metrics in
  let module Rng = Glc_ssa.Rng in
  let t_end = 2_000. in
  let seed = 42 in
  let repeats = 7 in
  (* best-of-[repeats] wall time: the trajectory is deterministic for a
     fixed seed, so the minimum is the least-noise estimate. The
     configurations under comparison are interleaved within each
     repeat — IR, AST, full back to back — so a quiet window on a noisy
     machine benefits every configuration rather than skewing whichever
     phase happened to run during it. *)
  let measure model events specs =
    let runs =
      List.map
        (fun (algorithm, path) ->
          ( Compiled.compile ~path model,
            Sim.config ~seed ~algorithm ~t_end (),
            ref infinity,
            ref 0,
            ref None ))
        specs
    in
    for _ = 1 to repeats do
      List.iter
        (fun (compiled, cfg, best, evals, out) ->
          let metrics = Metrics.create () in
          let t0 = Unix.gettimeofday () in
          let trace, stats = Sim.run_compiled ~events ~metrics cfg compiled in
          let wall = Unix.gettimeofday () -. t0 in
          if wall < !best then best := wall;
          evals :=
            Metrics.Counter.value
              (Metrics.counter metrics "ssa.propensity_evals");
          out := Some (trace, stats.Glc_ssa.Sim.reactions_fired))
        runs
    done;
    List.map
      (fun (_, _, best, evals, out) ->
        let trace, steps = Option.get !out in
        (trace, steps, !evals, !best))
      runs
  in
  (* warm-up: code and allocator, so the first row's wall time is not
     charged for cold caches *)
  (let c = List.hd (Benchmarks.all ()) in
   ignore
     (measure (Circuit.model c)
        (Experiment.input_schedule Protocol.default c)
        [ (Sim.Direct, Compiled.Ir) ]));
  Printf.printf
    "seed %d, %g t.u. under the paper's input stimulus, best of %d runs; \
     'evals/step' is propensity evaluations per reaction firing\n\n" seed
    t_end repeats;
  Printf.printf "%-14s %5s %9s %12s %12s %7s %10s %10s %8s %11s %8s\n"
    "circuit" "R" "steps" "evals(spar)" "evals(full)" "ratio" "steps/s ir"
    "steps/s ast" "ir-gain" "steps/s bat" "bat-gain";
  let cases =
    List.map
      (fun circuit ->
        ( circuit.Circuit.name,
          Circuit.model circuit,
          Experiment.input_schedule Protocol.default circuit ))
      (Benchmarks.all ())
    @ [ ("dense10", dense_coupling_model ~n:10, Glc_ssa.Events.empty) ]
  in
  let rows =
    List.map
      (fun (name, model, events) ->
        let n_r = List.length model.Glc_model.Model.m_reactions in
        let ( (tr_i, steps_i, evals_s, wall_i),
              (tr_a, steps_a, _, wall_a),
              (tr_f, steps_f, evals_f, wall_f) ) =
          match
            measure model events
              [
                (Sim.Direct, Compiled.Ir);
                (Sim.Direct, Compiled.Ast);
                (Sim.Direct_full_recompute, Compiled.Ir);
              ]
          with
          | [ ir; ast; full ] -> (ir, ast, full)
          | _ -> assert false
        in
        let identical =
          String.equal (Trace.to_csv tr_i) (Trace.to_csv tr_f)
          && String.equal (Trace.to_csv tr_i) (Trace.to_csv tr_a)
        in
        if not identical then
          Printf.printf
            "!! %s: sparse/IR trace DIVERGES from the references\n"
            name;
        assert (steps_i = steps_f);
        assert (steps_i = steps_a);
        (* batched lane-block: [lanes] replicates in lockstep vs the
           same [lanes] as back-to-back scalar runs, both phases fed the
           same per-lane streams — the traces must agree byte for byte,
           and the wall ratio is the pure batching win. Interleaved
           within each repeat for the same noise-fairness as above. *)
        let lanes = 8 in
        let c_b = Compiled.compile ~path:Compiled.Ir_batch model in
        let cfg_b = Sim.config ~seed ~algorithm:Sim.Direct ~t_end () in
        let mk_rngs () =
          Array.init lanes (fun l -> Rng.create ((seed * 1_000) + l))
        in
        let wall_bs = ref infinity and wall_bb = ref infinity in
        let steps_b = ref 0 and ident_b = ref true in
        for _ = 1 to repeats do
          let srngs = mk_rngs () in
          let t0 = Unix.gettimeofday () in
          let scalar =
            Array.map
              (fun rng -> Sim.run_compiled_rng ~events ~rng cfg_b c_b)
              srngs
          in
          let w_s = Unix.gettimeofday () -. t0 in
          let brngs = mk_rngs () in
          let t1 = Unix.gettimeofday () in
          let batched = Sim.run_batch_rngs ~events ~rngs:brngs cfg_b c_b in
          let w_b = Unix.gettimeofday () -. t1 in
          if w_s < !wall_bs then wall_bs := w_s;
          if w_b < !wall_bb then wall_bb := w_b;
          steps_b :=
            Array.fold_left
              (fun acc (_, st) -> acc + st.Sim.reactions_fired)
              0 scalar;
          ident_b :=
            !ident_b
            && Array.for_all2
                 (fun (tr, _) -> function
                   | Ok (tr_b, _) ->
                       String.equal (Trace.to_csv tr) (Trace.to_csv tr_b)
                   | Error _ -> false)
                 scalar batched
        done;
        if not !ident_b then
          Printf.printf
            "!! %s: batched lane traces DIVERGE from scalar runs\n"
            name;
        let identical = identical && !ident_b in
        let per_step evals steps =
          if steps = 0 then 0. else float_of_int evals /. float_of_int steps
        in
        let rate steps wall =
          if wall <= 0. then 0. else float_of_int steps /. wall
        in
        Printf.printf
          "%-14s %5d %9d %12.2f %12.2f %6.1fx %10.0f %11.0f %7.2fx %11.0f \
           %7.2fx\n"
          name n_r steps_i
          (per_step evals_s steps_i)
          (per_step evals_f steps_f)
          (float_of_int evals_f /. float_of_int (max 1 evals_s))
          (rate steps_i wall_i) (rate steps_a wall_a)
          (wall_a /. wall_i)
          (rate !steps_b !wall_bb)
          (!wall_bs /. !wall_bb);
        ( name, n_r, steps_i, evals_s, wall_i, evals_f, wall_f, wall_a,
          identical, lanes, !steps_b, !wall_bs, !wall_bb ))
      cases
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\n  \"bench\": \"ssa\",\n  \"algorithm\": \"direct\",\n  \
        \"seed\": %d,\n  \"t_end\": %g,\n  \"repeats\": %d,\n  \
        \"circuits\": [\n" seed t_end repeats);
  List.iteri
    (fun i
         ( name, n_r, steps, evals_s, wall_i, evals_f, wall_f, wall_a,
           identical, lanes, steps_b, wall_bs, wall_bb ) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"name\": %S, \"reactions\": %d, \"steps\": %d,\n     \
            \"sparse\": {\"propensity_evals\": %d, \"wall_s\": %.4f},\n     \
            \"full\": {\"propensity_evals\": %d, \"wall_s\": %.4f},\n     \
            \"ast\": {\"wall_s\": %.4f},\n     \
            \"batch\": {\"lanes\": %d, \"steps\": %d, \"wall_s\": %.4f, \
            \"scalar_wall_s\": %.4f, \"speedup\": %.2f},\n     \
            \"evals_ratio\": %.2f, \"ir_speedup\": %.2f, \
            \"byte_identical\": %b}%s\n"
           name n_r steps evals_s wall_i evals_f wall_f
           wall_a lanes steps_b wall_bb wall_bs
           (wall_bs /. wall_bb)
           (float_of_int evals_f /. float_of_int (max 1 evals_s))
           (wall_a /. wall_i) identical
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  let total_ir =
    List.fold_left
      (fun acc (_, _, _, _, w, _, _, _, _, _, _, _, _) -> acc +. w)
      0. rows
  in
  let total_ast =
    List.fold_left
      (fun acc (_, _, _, _, _, _, _, w, _, _, _, _, _) -> acc +. w)
      0. rows
  in
  let total_bs =
    List.fold_left
      (fun acc (_, _, _, _, _, _, _, _, _, _, _, w, _) -> acc +. w)
      0. rows
  in
  let total_bb =
    List.fold_left
      (fun acc (_, _, _, _, _, _, _, _, _, _, _, _, w) -> acc +. w)
      0. rows
  in
  let overall = total_ast /. total_ir in
  let overall_batch = total_bs /. total_bb in
  Buffer.add_string buf
    (Printf.sprintf
       "  ],\n  \"ir_speedup_overall\": %.2f,\n  \
        \"batch_speedup_overall\": %.2f\n}\n"
       overall overall_batch);
  let oc = open_out "BENCH_ssa.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  let all_identical =
    List.for_all (fun (_, _, _, _, _, _, _, _, id, _, _, _, _) -> id) rows
  in
  Printf.printf
    "\noverall IR speedup over the AST evaluator (sum of best walls): \
     %.2fx\noverall batched speedup over scalar IR (8 lanes, sum of \
     best walls): %.2fx\nwrote BENCH_ssa.json; traces byte-identical \
     across sparse/full, IR/AST and batched/scalar on all circuits: \
     %s\n"
    overall overall_batch
    (if all_identical then "yes" else "NO!");
  if not all_identical then exit 1

(* ---- symbolic certification: certified-first vs SSA-only ---- *)

(* The whole Table-1 set verified twice: through the hybrid path
   (certificate first, SSA only for undecided rows) and through the
   pre-certificate simulate-everything path. Both must return the same
   verdict; the wall-clock ratio is the point of the symbolic
   analyser — 97 of the 98 rows prove without sampling a single
   trajectory. *)
let bench_symbolic () =
  section
    "Symbolic verification -- certified-first vs SSA-only (Table-1, \
     paper protocol)";
  let protocol = Protocol.default in
  let timed f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  (* warm-up: code and allocator *)
  ignore (Verify.certified_first ~protocol (List.hd (Benchmarks.all ())));
  Printf.printf "%-14s %5s %10s %9s %10s %11s %9s\n" "circuit" "rows"
    "certified" "simulated" "hybrid s" "ssa-only s" "speedup";
  let t_hybrid = ref 0. and t_ssa = ref 0. in
  let certified = ref 0 and rows = ref 0 in
  List.iter
    (fun c ->
      let h, th = timed (fun () -> Verify.certified_first ~protocol c) in
      let v, ts =
        timed (fun () ->
            let e = Experiment.run ~protocol c in
            let r = Analyzer.of_experiment e in
            Verify.against ~expected:c.Circuit.expected r)
      in
      let cert = h.Verify.h_certificate in
      if h.Verify.h_report.Verify.verified <> v.Verify.verified then
        Printf.printf "!! %s: hybrid and SSA-only verdicts disagree\n"
          c.Circuit.name;
      t_hybrid := !t_hybrid +. th;
      t_ssa := !t_ssa +. ts;
      certified := !certified + Glc_symbolic.Certificate.decided cert;
      rows := !rows + Glc_symbolic.Certificate.rows cert;
      Printf.printf "%-14s %5d %10d %9d %10.3f %11.3f %8.1fx\n"
        c.Circuit.name
        (Glc_symbolic.Certificate.rows cert)
        (Glc_symbolic.Certificate.decided cert)
        (List.length h.Verify.h_simulated_rows)
        th ts
        (if th > 0. then ts /. th else 0.))
    (Benchmarks.all ());
  Printf.printf
    "\ntotal: %d/%d row(s) certified; hybrid %.3f s, SSA-only %.3f s \
     (%.1fx)\n"
    !certified !rows !t_hybrid !t_ssa
    (if !t_hybrid > 0. then !t_ssa /. !t_hybrid else 0.)

(* ---- function space: atlas pipeline throughput (lib/space) ---- *)

(* The three stages the atlas drives every function through —
   truth table -> minimal netlist (Quine-McCluskey), netlist ->
   assembled kinetic model, model -> symbolic certificate — timed over
   the whole 256-function 3-input space. Writes BENCH_space.json (CI
   uploads it as an artifact). The certified count is the headline: it
   is how much of the space never needs a stochastic trajectory. *)
let space_bench () =
  section
    "Function space -- synthesis / assembly / certification over all \
     256 3-input functions";
  let module Fn = Glc_space.Fn in
  let module Certificate = Glc_symbolic.Certificate in
  let protocol = Protocol.default in
  let codes = Fn.all_codes ~arity:3 in
  let timed f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  (* warm-up: code and allocator *)
  ignore (Certificate.certify ~protocol (Cello.of_code 0x1C));
  let netlists, t_synth =
    timed (fun () -> List.map (Fn.netlist ~arity:3) codes)
  in
  let gates =
    List.map (fun nl -> List.length nl.Glc_logic.Netlist.gates) netlists
  in
  let circuits, t_asm =
    timed (fun () -> List.map (fun c -> Cello.of_code ~arity:3 c) codes)
  in
  let certs, t_cert =
    timed (fun () -> List.map (Certificate.certify ~protocol) circuits)
  in
  let certified =
    List.length (List.filter Certificate.fully_decided certs)
  in
  let undecided =
    List.filter_map
      (fun (code, cert) ->
        if Certificate.fully_decided cert then None
        else Some (Fn.name_of_code ~arity:3 code))
      (List.combine codes certs)
  in
  let n = List.length codes in
  let rate t = if t > 0. then float_of_int n /. t else 0. in
  Printf.printf "%-14s %10s %14s\n" "stage" "total s" "functions/s";
  Printf.printf "%-14s %10.3f %14.0f\n" "synthesis" t_synth (rate t_synth);
  Printf.printf "%-14s %10.3f %14.0f\n" "assembly" t_asm (rate t_asm);
  Printf.printf "%-14s %10.3f %14.0f\n" "certification" t_cert
    (rate t_cert);
  Printf.printf
    "gates: max %d over the space; certified %d/%d (undecided: %s)\n"
    (List.fold_left max 0 gates)
    certified n
    (String.concat " " undecided);
  let oc = open_out "BENCH_space.json" in
  Printf.fprintf oc
    "{\"functions\":%d,\"synthesis_s\":%.6f,\"assembly_s\":%.6f,\"certification_s\":%.6f,\"certified\":%d,\"max_gates\":%d,\"undecided\":[%s]}\n"
    n t_synth t_asm t_cert certified
    (List.fold_left max 0 gates)
    (String.concat "," (List.map (Printf.sprintf "%S") undecided));
  close_out oc;
  Printf.printf "wrote BENCH_space.json\n"

(* ---- observability: instrumentation overhead (lib/obs) ---- *)

(* The Table-1 workload — all 15 benchmark circuits under the paper's
   protocol — run against the no-op sink and against a live registry.
   The no-op column is the instrumented build's baseline: every
   instrument is behind a single liveness branch and the SSA loops only
   bump local fields, so this is also (to measurement noise) the cost
   of the pre-instrumentation build. *)
let obs_bench () =
  section "Observability -- instrumentation overhead (Table-1 workload)";
  let module Metrics = Glc_obs.Metrics in
  let workload metrics =
    List.iter
      (fun circuit ->
        ignore (Experiment.run ~protocol:Protocol.default ~metrics circuit))
      (Benchmarks.all ())
  in
  (* warm-up pass: code, allocator and caches *)
  workload Metrics.noop;
  let timed f =
    let t0 = Unix.gettimeofday () in
    f ();
    Unix.gettimeofday () -. t0
  in
  let best ~reps f =
    let b = ref infinity in
    for _ = 1 to reps do
      b := Float.min !b (timed f)
    done;
    !b
  in
  let reps = 3 in
  let t_noop = best ~reps (fun () -> workload Metrics.noop) in
  let registry = Metrics.create () in
  let t_live = best ~reps (fun () -> workload registry) in
  Printf.printf "no-op sink:   %8.3f s per 15-circuit sweep (best of %d)\n"
    t_noop reps;
  Printf.printf "enabled sink: %8.3f s per 15-circuit sweep (best of %d)\n"
    t_live reps;
  Printf.printf "enabled-sink overhead: %+.2f%%\n"
    (100. *. (t_live -. t_noop) /. t_noop);
  Printf.printf "\nscale of what one enabled sweep records:\n";
  List.iter
    (fun name ->
      Printf.printf "  %-24s %d\n" name
        (Metrics.Counter.value (Metrics.counter registry name)))
    [ "ssa.reactions_fired"; "ssa.propensity_evals"; "ssa.recorder_observes" ]

let all () =
  fig2 ();
  fig3 ();
  fig4 ();
  fig5 ();
  table1 ();
  ablation_hold ();
  ablation_fov ();
  ablation_algorithms ();
  ablation_order ();
  ablation_yield ();
  baselines ();
  population ();
  scaling ();
  ensemble_scaling ();
  campaign_bench ();
  bench_ssa ();
  bench_symbolic ();
  space_bench ();
  obs_bench ();
  timing ()

let () =
  let jobs =
    match Array.to_list Sys.argv with
    | _ :: rest when rest <> [] -> rest
    | _ -> [ "all" ]
  in
  List.iter
    (function
      | "fig2" -> fig2 ()
      | "fig3" -> fig3 ()
      | "fig4" -> fig4 ()
      | "fig5" -> fig5 ()
      | "table1" -> table1 ()
      | "timing" -> timing ()
      | "ablation_hold" -> ablation_hold ()
      | "ablation_fov" -> ablation_fov ()
      | "ablation_algorithms" -> ablation_algorithms ()
      | "ablation_yield" -> ablation_yield ()
      | "ablation_order" -> ablation_order ()
      | "baselines" -> baselines ()
      | "population" -> population ()
      | "scaling" -> scaling ()
      | "ensemble" -> ensemble_scaling ()
      | "campaign" -> campaign_bench ()
      | "ssa" -> bench_ssa ()
      | "symbolic" -> bench_symbolic ()
      | "space" -> space_bench ()
      | "obs" -> obs_bench ()
      | "all" -> all ()
      | other ->
          Printf.eprintf
            "unknown artefact %S \
             (fig2|fig3|fig4|fig5|table1|timing|ablation_hold|ablation_fov|\
             ablation_algorithms|ablation_yield|ablation_order|baselines|population|scaling|ensemble|campaign|ssa|symbolic|space|obs|all)\n"
            other;
          exit 2)
    jobs
