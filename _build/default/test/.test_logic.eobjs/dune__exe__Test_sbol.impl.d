test/test_sbol.ml: Alcotest Filename Glc_gates Glc_model Glc_sbol List Option String Sys
