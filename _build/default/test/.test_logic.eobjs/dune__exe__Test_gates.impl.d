test/test_gates.ml: Alcotest Array Float Format Fun Glc_gates Glc_logic Glc_sbol Glc_ssa List Printf QCheck QCheck_alcotest
