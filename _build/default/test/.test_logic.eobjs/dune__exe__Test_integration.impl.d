test/test_integration.ml: Alcotest Array Glc_core Glc_dvasim Glc_gates Glc_logic Glc_model Glc_sbol Glc_ssa List String
