test/test_ssa.ml: Alcotest Array Float Glc_model Glc_ssa Int64 List QCheck QCheck_alcotest
