test/test_model.ml: Alcotest Filename Float Glc_gates Glc_model List Option QCheck QCheck_alcotest String Sys
