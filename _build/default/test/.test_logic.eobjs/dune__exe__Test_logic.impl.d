test/test_logic.ml: Alcotest Array Format Fun Glc_logic Int List Printf QCheck QCheck_alcotest String
