test/test_dvasim.mli:
