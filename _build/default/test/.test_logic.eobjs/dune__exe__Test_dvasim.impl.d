test/test_dvasim.ml: Alcotest Filename Float Glc_core Glc_dvasim Glc_gates Glc_ssa List Sys
