test/test_core.ml: Alcotest Array Float Format Fun Glc_core Glc_logic Glc_ssa List Printf QCheck QCheck_alcotest String
