test/test_sbol.mli:
