(* End-to-end integration tests: the paper's full evaluation pipeline
   from circuit synthesis through stochastic simulation to logic
   verification, including the behaviour under the threshold variations
   of Fig. 5 and the SBML/SBOL file round trips. *)

module Truth_table = Glc_logic.Truth_table
module Trace = Glc_ssa.Trace
module Sim = Glc_ssa.Sim
module Circuit = Glc_gates.Circuit
module Circuits = Glc_gates.Circuits
module Cello = Glc_gates.Cello
module Benchmarks = Glc_gates.Benchmarks
module Protocol = Glc_dvasim.Protocol
module Experiment = Glc_dvasim.Experiment
module Analyzer = Glc_core.Analyzer
module Verify = Glc_core.Verify

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* A shorter protocol than the paper's keeps the whole suite fast while
   still holding each combination well past the propagation delay. *)
let quick =
  Protocol.make ~total_time:4_000. ~hold_time:500. ~seed:7 ()

let verify ?(protocol = quick) circuit =
  let e = Experiment.run ~protocol circuit in
  Verify.experiment e

let test_all_benchmarks_verify () =
  List.iter
    (fun circuit ->
      let result, verdict = verify circuit in
      if not verdict.Verify.verified then
        Alcotest.failf "%s not verified: extracted %s (fitness %.2f%%)"
          circuit.Circuit.name
          (Glc_logic.Expr.to_string result.Analyzer.expr)
          result.Analyzer.fitness;
      checkb "healthy fitness" true (result.Analyzer.fitness > 95.))
    (Benchmarks.all ())

let test_paper_protocol_0x0B () =
  (* the paper's full 10,000 t.u. protocol on the Fig. 4 lead circuit *)
  let _, verdict = verify ~protocol:Protocol.default (Cello.circuit_0x0B ()) in
  checkb "verified under the paper protocol" true verdict.Verify.verified

let test_seed_robustness () =
  (* the verdict must not depend on the stochastic path *)
  List.iter
    (fun seed ->
      let protocol = Protocol.make ~seed () in
      let _, verdict = verify ~protocol (Circuits.genetic_and ()) in
      if not verdict.Verify.verified then
        Alcotest.failf "seed %d failed" seed)
    [ 1; 2; 3; 4; 5 ]

let test_next_reaction_verifies () =
  let protocol = Protocol.make ~algorithm:Sim.Next_reaction ~seed:9 () in
  let _, verdict = verify ~protocol (Cello.circuit_0x04 ()) in
  checkb "next-reaction method verifies too" true verdict.Verify.verified

let test_fig5_low_threshold_breaks_logic () =
  let protocol = Protocol.with_threshold Protocol.default 3. in
  let _, verdict = verify ~protocol (Cello.circuit_0x0B ()) in
  checkb "wrong logic at threshold 3" false verdict.Verify.verified

let test_fig5_high_threshold_oscillates () =
  let total_var result =
    Array.fold_left
      (fun acc c -> acc + c.Analyzer.variations)
      0 result.Analyzer.cases
  in
  let at threshold =
    let protocol = Protocol.with_threshold Protocol.default threshold in
    let result, verdict = verify ~protocol (Cello.circuit_0x0B ()) in
    (total_var result, verdict.Verify.verified)
  in
  let var_nominal, ok_nominal = at 15. in
  let var_high, ok_high = at 90. in
  checkb "nominal verifies" true ok_nominal;
  checkb "high threshold breaks" false ok_high;
  checkb "output oscillates much more" true (var_high > 10 * var_nominal)

let test_sbml_round_trip_preserves_behaviour () =
  (* simulate the model after an SBML write/read cycle: identical trace *)
  let circuit = Cello.circuit_0x04 () in
  let model = Circuit.model circuit in
  let reread =
    match Glc_model.Sbml.of_string (Glc_model.Sbml.to_string model) with
    | Ok m -> m
    | Error e -> Alcotest.fail e
  in
  let run m =
    Trace.to_csv
      (Experiment.run_model ~protocol:quick ~circuit m).Experiment.trace
  in
  checkb "bit-identical traces" true (String.equal (run model) (run reread))

let test_sbol_round_trip_preserves_logic () =
  let circuit = Cello.circuit_0x1C () in
  let doc = circuit.Circuit.document in
  let reread =
    match Glc_sbol.Sbol_xml.of_string (Glc_sbol.Sbol_xml.to_string doc) with
    | Ok d -> d
    | Error e -> Alcotest.fail e
  in
  (* rebuild the circuit around the re-read document and verify it *)
  let circuit' =
    Circuit.make ~name:circuit.Circuit.name ~document:reread
      ~inputs:circuit.Circuit.inputs ~output:circuit.Circuit.output
      ~expected:circuit.Circuit.expected
      ~promoter_kinetics:circuit.Circuit.promoter_kinetics
      ~regulator_affinity:circuit.Circuit.regulator_affinity ()
  in
  let _, verdict = verify circuit' in
  checkb "verified after SBOL round trip" true verdict.Verify.verified

let test_intermediate_probing () =
  (* probing an internal repressor yields a different (non-output) logic
     function of the same inputs *)
  let circuit = Cello.circuit_0x1C () in
  let e = Experiment.run ~protocol:quick circuit in
  let probe species =
    Analyzer.run
      {
        Analyzer.trace = e.Experiment.trace;
        inputs = circuit.Circuit.inputs;
        output = species;
      }
  in
  let output_code =
    Truth_table.to_code (Analyzer.extracted_table (probe "YFP"))
  in
  checki "output is the spec" 0x1C output_code;
  (* every internal node computes a well-defined function (all cases
     decided, i.e. minterms + excluded = observed combinations) *)
  Array.iter
    (fun species ->
      if
        (not (Array.mem species circuit.Circuit.inputs))
        && not (String.equal species "YFP")
      then begin
        let r = probe species in
        Array.iter
          (fun c ->
            if c.Analyzer.case_count = 0 then
              Alcotest.failf "unobserved combination when probing %s" species)
          r.Analyzer.cases
      end)
    (Trace.names e.Experiment.trace)

let test_unknown_model_flow () =
  (* the "no prior knowledge" flow: SBML text in, truth table out *)
  let sbml =
    Glc_model.Sbml.to_string (Circuit.model (Cello.of_code 0x70))
  in
  let model =
    match Glc_model.Sbml.of_string sbml with
    | Ok m -> m
    | Error e -> Alcotest.fail e
  in
  let inputs = [| "LacI"; "TetR"; "AraC" |] in
  let trace = Experiment.run_trace ~protocol:quick ~inputs model in
  let r = Analyzer.run { Analyzer.trace; inputs; output = "YFP" } in
  checki "reconstructed code" 0x70
    (Truth_table.to_code (Analyzer.extracted_table r))

let test_experiment_case_counts_cover_run () =
  (* CaseAnalyzer accounts for every sample of the log exactly once *)
  let circuit = Cello.circuit_0x0B () in
  let e = Experiment.run ~protocol:quick circuit in
  let r = Verify.experiment e |> fst in
  let total =
    Array.fold_left (fun acc c -> acc + c.Analyzer.case_count) 0
      r.Analyzer.cases
  in
  checki "sample conservation" (Trace.length e.Experiment.trace) total

(* ---- robustness analysis ---- *)

let test_threshold_window () =
  let points =
    Glc_core.Robustness.threshold_window
      ~protocol:quick
      ~thresholds:[ 3.; 15.; 40.; 90. ]
      (Cello.circuit_0x0B ())
  in
  (match points with
  | [ p3; p15; p40; p90 ] ->
      checkb "3 fails" false p3.Glc_core.Robustness.w_verified;
      checkb "15 verifies" true p15.Glc_core.Robustness.w_verified;
      checkb "40 verifies" true p40.Glc_core.Robustness.w_verified;
      checkb "90 fails" false p90.Glc_core.Robustness.w_verified;
      checkb "oscillation grows" true
        (p90.Glc_core.Robustness.w_variations
        > p15.Glc_core.Robustness.w_variations)
  | _ -> Alcotest.fail "wrong number of sweep points");
  match Glc_core.Robustness.operating_range points with
  | Some (lo, hi) ->
      Alcotest.check (Alcotest.float 0.) "window low" 15. lo;
      Alcotest.check (Alcotest.float 0.) "window high" 40. hi
  | None -> Alcotest.fail "expected an operating window"

let test_parametric_yield_small_spread () =
  (* a well-margined circuit survives modest part variation *)
  let y =
    Glc_core.Robustness.parametric_yield ~protocol:quick ~trials:6
      ~spread:0.05 (Circuits.genetic_and ())
  in
  checki "all trials verify" 6 y.Glc_core.Robustness.y_verified

let test_parametric_yield_extreme_spread () =
  (* order-of-magnitude part variation must break some copies *)
  let y =
    Glc_core.Robustness.parametric_yield ~protocol:quick ~trials:6
      ~spread:2.0 (Cello.circuit_0x1C ())
  in
  checkb "imperfect yield" true
    (y.Glc_core.Robustness.y_verified < y.Glc_core.Robustness.y_trials)

let test_parametric_yield_validation () =
  let c = Circuits.genetic_not () in
  (match Glc_core.Robustness.parametric_yield ~trials:0 c with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "trials 0");
  match Glc_core.Robustness.parametric_yield ~spread:(-0.1) c with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative spread"

let () =
  Alcotest.run "integration"
    [
      ( "verification",
        [
          Alcotest.test_case "all 15 benchmarks verify" `Slow
            test_all_benchmarks_verify;
          Alcotest.test_case "paper protocol on 0x0B" `Slow
            test_paper_protocol_0x0B;
          Alcotest.test_case "seed robustness" `Slow test_seed_robustness;
          Alcotest.test_case "next-reaction method" `Slow
            test_next_reaction_verifies;
        ] );
      ( "fig5",
        [
          Alcotest.test_case "low threshold breaks logic" `Slow
            test_fig5_low_threshold_breaks_logic;
          Alcotest.test_case "high threshold oscillates" `Slow
            test_fig5_high_threshold_oscillates;
        ] );
      ( "round_trips",
        [
          Alcotest.test_case "SBML preserves behaviour" `Slow
            test_sbml_round_trip_preserves_behaviour;
          Alcotest.test_case "SBOL preserves logic" `Slow
            test_sbol_round_trip_preserves_logic;
        ] );
      ( "flows",
        [
          Alcotest.test_case "intermediate probing" `Slow
            test_intermediate_probing;
          Alcotest.test_case "unknown model" `Slow test_unknown_model_flow;
          Alcotest.test_case "sample conservation" `Slow
            test_experiment_case_counts_cover_run;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "threshold window" `Slow test_threshold_window;
          Alcotest.test_case "yield under small spread" `Slow
            test_parametric_yield_small_spread;
          Alcotest.test_case "yield under extreme spread" `Slow
            test_parametric_yield_extreme_spread;
          Alcotest.test_case "validation" `Quick
            test_parametric_yield_validation;
        ] );
    ]
