(* Tests for glc_sbol: structural documents, the SBOL-to-kinetic-model
   converter and the SBOL XML subset. *)

module Document = Glc_sbol.Document
module To_model = Glc_sbol.To_model
module Sbol_xml = Glc_sbol.Sbol_xml
module Model = Glc_model.Model
module Math = Glc_model.Math

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checkf eps = Alcotest.check (Alcotest.float eps)

(* A NOT gate with an extra unsensed input protein, for coverage of the
   classification functions. *)
let not_gate () =
  Document.make ~id:"not"
    ~parts:
      [
        Document.part Document.Promoter "P1";
        Document.part Document.Cds "cds1";
        Document.part Document.Terminator "t1";
      ]
    ~proteins:
      [ Document.protein "LacI"; Document.protein ~reporter:true "GFP" ]
    ~interactions:
      [
        Document.Production { prom = "P1"; prot = "GFP" };
        Document.Repression { repressor = "LacI"; prom = "P1" };
      ]

let test_document_classification () =
  let doc = not_gate () in
  Alcotest.(check (list string)) "inputs" [ "LacI" ]
    (Document.input_proteins doc);
  Alcotest.(check (list string)) "outputs" [ "GFP" ]
    (Document.output_proteins doc);
  Alcotest.(check (list string)) "producers" [ "P1" ]
    (Document.producers doc "GFP");
  checkb "production" true (Document.production doc "P1" = Some "GFP");
  checki "one regulator" 1 (List.length (Document.regulators doc "P1"))

let test_output_fallback_without_reporter () =
  (* without a reporter flag, the output is the protein regulating no
     promoter *)
  let doc =
    Document.make ~id:"d"
      ~parts:[ Document.part Document.Promoter "P1" ]
      ~proteins:[ Document.protein "A"; Document.protein "B" ]
      ~interactions:
        [
          Document.Production { prom = "P1"; prot = "B" };
          Document.Repression { repressor = "A"; prom = "P1" };
        ]
  in
  Alcotest.(check (list string)) "fallback output" [ "B" ]
    (Document.output_proteins doc)

let expect_invalid name f =
  match f () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.failf "%s: expected Invalid_argument" name

let test_document_validation () =
  expect_invalid "duplicate parts" (fun () ->
      Document.make ~id:"d"
        ~parts:
          [
            Document.part Document.Promoter "P1";
            Document.part Document.Cds "P1";
          ]
        ~proteins:[] ~interactions:[]);
  expect_invalid "unknown promoter" (fun () ->
      Document.make ~id:"d" ~parts:[]
        ~proteins:[ Document.protein "A" ]
        ~interactions:[ Document.Production { prom = "P9"; prot = "A" } ]);
  expect_invalid "production from a CDS" (fun () ->
      Document.make ~id:"d"
        ~parts:[ Document.part Document.Cds "c1" ]
        ~proteins:[ Document.protein "A" ]
        ~interactions:[ Document.Production { prom = "c1"; prot = "A" } ]);
  expect_invalid "unknown repressor" (fun () ->
      Document.make ~id:"d"
        ~parts:[ Document.part Document.Promoter "P1" ]
        ~proteins:[]
        ~interactions:
          [ Document.Repression { repressor = "ghost"; prom = "P1" } ]);
  expect_invalid "two productions on one promoter" (fun () ->
      Document.make ~id:"d"
        ~parts:[ Document.part Document.Promoter "P1" ]
        ~proteins:[ Document.protein "A"; Document.protein "B" ]
        ~interactions:
          [
            Document.Production { prom = "P1"; prot = "A" };
            Document.Production { prom = "P1"; prot = "B" };
          ])

(* ---- conversion ---- *)

let rate_of model reaction_id =
  (Option.get (Model.find_reaction model reaction_id)).Model.r_rate

let eval_rate model reaction_id env =
  Math.eval
    ~lookup:(fun id ->
      match List.assoc_opt id env with
      | Some v -> v
      | None -> Option.get (Model.parameter_value model id))
    (rate_of model reaction_id)

let test_convert_not_gate () =
  let model = To_model.convert (not_gate ()) in
  (* species: LacI is a boundary input, GFP is not *)
  let laci = Option.get (Model.find_species model "LacI") in
  checkb "input is boundary" true laci.Model.s_boundary;
  let gfp = Option.get (Model.find_species model "GFP") in
  checkb "output not boundary" false gfp.Model.s_boundary;
  (* reactions: production of GFP, degradation of GFP, nothing for LacI *)
  checki "two reactions" 2 (List.length model.Model.m_reactions);
  checkb "no input degradation" true
    (Model.find_reaction model "deg_LacI" = None);
  (* repression limits *)
  let k = To_model.default_kinetics in
  checkf 1e-9 "no repressor -> ymax" k.To_model.ymax
    (eval_rate model "prod_P1" [ ("LacI", 0.) ]);
  checkb "full repression -> near ymin" true
    (eval_rate model "prod_P1" [ ("LacI", 1e6) ] < 1.001 *. k.To_model.ymin);
  (* degradation is first order *)
  checkf 1e-9 "degradation" (To_model.default_degradation *. 10.)
    (eval_rate model "deg_GFP" [ ("GFP", 10.) ])

let test_convert_tandem_repression_is_product () =
  let doc =
    Document.make ~id:"nor"
      ~parts:[ Document.part Document.Promoter "P1" ]
      ~proteins:
        [
          Document.protein "A";
          Document.protein "B";
          Document.protein ~reporter:true "GFP";
        ]
      ~interactions:
        [
          Document.Production { prom = "P1"; prot = "GFP" };
          Document.Repression { repressor = "A"; prom = "P1" };
          Document.Repression { repressor = "B"; prom = "P1" };
        ]
  in
  let model = To_model.convert doc in
  let k = To_model.default_kinetics in
  let rate a b = eval_rate model "prod_P1" [ ("A", a); ("B", b) ] in
  (* independent sites: repression by one input alone is already strong *)
  checkb "one high input represses" true (rate 1e6 0. < 1.01 *. k.ymin);
  checkb "other high input represses" true (rate 0. 1e6 < 1.01 *. k.ymin);
  checkf 1e-9 "both low: full activity" k.ymax (rate 0. 0.);
  (* the two factors multiply: f(a,b) - ymin = (f(a,0)-ymin)(f(0,b)-ymin)/(ymax-ymin) *)
  let f ab = rate (fst ab) (snd ab) -. k.ymin in
  checkf 1e-6 "product law"
    (f (20., 0.) *. f (0., 30.) /. (k.ymax -. k.ymin))
    (f (20., 30.))

let test_convert_activation () =
  let doc =
    Document.make ~id:"act"
      ~parts:[ Document.part Document.Promoter "P1" ]
      ~proteins:
        [ Document.protein "A"; Document.protein ~reporter:true "GFP" ]
      ~interactions:
        [
          Document.Production { prom = "P1"; prot = "GFP" };
          Document.Activation { activator = "A"; prom = "P1" };
        ]
  in
  let model = To_model.convert doc in
  let k = To_model.default_kinetics in
  checkf 1e-9 "no activator -> ymin" k.To_model.ymin
    (eval_rate model "prod_P1" [ ("A", 0.) ]);
  checkb "saturating activator -> near ymax" true
    (eval_rate model "prod_P1" [ ("A", 1e6) ] > 0.999 *. k.To_model.ymax)

let test_convert_affinity_override () =
  let doc = not_gate () in
  let tight = To_model.convert ~affinity:(fun _ -> Some (2., 4.)) doc in
  let loose = To_model.convert ~affinity:(fun _ -> Some (50., 1.5)) doc in
  let at m x = eval_rate m "prod_P1" [ ("LacI", x) ] in
  checkb "tight binding represses at 10 molecules" true
    (at tight 10. < 0.1 *. at loose 10.)

let test_convert_initial_and_degradation () =
  let doc = not_gate () in
  let model =
    To_model.convert
      ~initial:(fun id -> if id = "GFP" then 42. else 0.)
      ~degradation:(fun _ -> 0.5)
      doc
  in
  checkf 0. "initial" 42.
    (Option.get (Model.find_species model "GFP")).Model.s_initial;
  checkf 1e-9 "degradation rate" 5. (eval_rate model "deg_GFP" [ ("GFP", 10.) ])

let test_convert_constitutive () =
  let doc =
    Document.make ~id:"const"
      ~parts:[ Document.part Document.Promoter "P1" ]
      ~proteins:[ Document.protein ~reporter:true "GFP" ]
      ~interactions:[ Document.Production { prom = "P1"; prot = "GFP" } ]
  in
  let model = To_model.convert doc in
  checkf 1e-9 "constitutive rate" To_model.default_kinetics.To_model.ymax
    (eval_rate model "prod_P1" [])

let test_document_dot () =
  let dot = Document.to_dot (not_gate ()) in
  let contains needle =
    let n = String.length dot and m = String.length needle in
    let rec go i = i + m <= n && (String.sub dot i m = needle || go (i + 1)) in
    go 0
  in
  checkb "digraph" true (contains "digraph \"not\"");
  checkb "promoter box" true (contains "\"P1\" [shape=box");
  checkb "input shaded" true (contains "\"LacI\" [shape=ellipse, style=filled");
  checkb "reporter doubled" true (contains "\"GFP\" [shape=doublecircle]");
  checkb "production edge" true (contains "\"P1\" -> \"GFP\";");
  checkb "repression edge" true
    (contains "\"LacI\" -> \"P1\" [arrowhead=tee, color=red];")

(* ---- sbol xml ---- *)

let test_sbol_xml_roundtrip () =
  let doc = (Glc_gates.Cello.circuit_0x1C ()).Glc_gates.Circuit.document in
  match Sbol_xml.of_string (Sbol_xml.to_string doc) with
  | Error e -> Alcotest.fail e
  | Ok doc' ->
      checki "parts" (List.length doc.Document.doc_parts)
        (List.length doc'.Document.doc_parts);
      checki "proteins"
        (List.length doc.Document.doc_proteins)
        (List.length doc'.Document.doc_proteins);
      checki "interactions"
        (List.length doc.Document.doc_interactions)
        (List.length doc'.Document.doc_interactions);
      Alcotest.(check (list string))
        "inputs survive"
        (Document.input_proteins doc)
        (Document.input_proteins doc');
      Alcotest.(check (list string))
        "outputs survive"
        (Document.output_proteins doc)
        (Document.output_proteins doc')

let test_sbol_xml_errors () =
  let fails s =
    match Sbol_xml.of_string s with Ok _ -> false | Error _ -> true
  in
  checkb "wrong root" true (fails "<sbml/>");
  checkb "bad role" true (fails "<sbol><part id=\"p\" role=\"gene\"/></sbol>");
  checkb "missing attr" true (fails "<sbol><part id=\"p\"/></sbol>");
  checkb "invalid document" true
    (fails "<sbol><production promoter=\"p\" protein=\"x\"/></sbol>")

let test_sbol_xml_files () =
  let doc = not_gate () in
  let path = Filename.temp_file "glc_test" ".sbol.xml" in
  Sbol_xml.write_file path doc;
  (match Sbol_xml.read_file path with
  | Ok doc' ->
      Alcotest.(check string) "id" doc.Document.doc_id doc'.Document.doc_id
  | Error e -> Alcotest.fail e);
  Sys.remove path

let () =
  Alcotest.run "glc_sbol"
    [
      ( "document",
        [
          Alcotest.test_case "classification" `Quick
            test_document_classification;
          Alcotest.test_case "output fallback" `Quick
            test_output_fallback_without_reporter;
          Alcotest.test_case "validation" `Quick test_document_validation;
          Alcotest.test_case "graphviz export" `Quick test_document_dot;
        ] );
      ( "to_model",
        [
          Alcotest.test_case "NOT gate" `Quick test_convert_not_gate;
          Alcotest.test_case "tandem repression multiplies" `Quick
            test_convert_tandem_repression_is_product;
          Alcotest.test_case "activation" `Quick test_convert_activation;
          Alcotest.test_case "affinity override" `Quick
            test_convert_affinity_override;
          Alcotest.test_case "initial and degradation" `Quick
            test_convert_initial_and_degradation;
          Alcotest.test_case "constitutive promoter" `Quick
            test_convert_constitutive;
        ] );
      ( "sbol_xml",
        [
          Alcotest.test_case "round trip" `Quick test_sbol_xml_roundtrip;
          Alcotest.test_case "errors" `Quick test_sbol_xml_errors;
          Alcotest.test_case "files" `Quick test_sbol_xml_files;
        ] );
    ]
