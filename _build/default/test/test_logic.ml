(* Tests for glc_logic: truth tables, Boolean expressions,
   Quine-McCluskey minimisation and NOR netlist synthesis. *)

module Truth_table = Glc_logic.Truth_table
module Expr = Glc_logic.Expr
module Qm = Glc_logic.Qm
module Netlist = Glc_logic.Netlist

let check = Alcotest.check
let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* ---- truth tables ---- *)

let test_create_output () =
  let tt = Truth_table.create ~arity:2 (fun r -> r = 3) in
  checki "arity" 2 (Truth_table.arity tt);
  checki "rows" 4 (Truth_table.rows tt);
  checkb "row 0" false (Truth_table.output tt 0);
  checkb "row 3" true (Truth_table.output tt 3)

let test_of_minterms () =
  let tt = Truth_table.of_minterms ~arity:3 [ 1; 6 ] in
  check (Alcotest.list Alcotest.int) "minterms" [ 1; 6 ]
    (Truth_table.minterms tt);
  check (Alcotest.list Alcotest.int) "maxterms" [ 0; 2; 3; 4; 5; 7 ]
    (Truth_table.maxterms tt)

let test_minterms_maxterms_partition () =
  let tt = Truth_table.of_code ~arity:3 0x5A in
  let all =
    List.sort Int.compare (Truth_table.minterms tt @ Truth_table.maxterms tt)
  in
  check (Alcotest.list Alcotest.int) "partition" [ 0; 1; 2; 3; 4; 5; 6; 7 ]
    all

let test_code_roundtrip () =
  for code = 0 to 255 do
    let tt = Truth_table.of_code ~arity:3 code in
    checki "code round trip" code (Truth_table.to_code tt)
  done

let test_of_outputs () =
  let tt = Truth_table.of_outputs [ false; true; true; false ] in
  checki "arity" 2 (Truth_table.arity tt);
  check (Alcotest.list Alcotest.int) "xor minterms" [ 1; 2 ]
    (Truth_table.minterms tt)

let test_of_outputs_invalid () =
  Alcotest.check_raises "length 3" (Invalid_argument
    "Truth_table.of_outputs: length is not a power of two")
    (fun () -> ignore (Truth_table.of_outputs [ true; false; true ]))

let test_eval () =
  let tt = Truth_table.of_minterms ~arity:2 [ 2 ] in
  (* row 2 = 0b10: input 1 high, input 0 low *)
  checkb "10" true (Truth_table.eval tt [| false; true |]);
  checkb "01" false (Truth_table.eval tt [| true; false |])

let test_complement_involution () =
  let tt = Truth_table.of_code ~arity:3 0xB1 in
  checkb "involution" true
    (Truth_table.equal tt (Truth_table.complement (Truth_table.complement tt)))

let test_is_constant () =
  checkb "false" true
    (Truth_table.is_constant (Truth_table.of_minterms ~arity:2 [])
    = Some false);
  checkb "true" true
    (Truth_table.is_constant (Truth_table.of_minterms ~arity:2 [ 0; 1; 2; 3 ])
    = Some true);
  checkb "mixed" true
    (Truth_table.is_constant (Truth_table.of_minterms ~arity:2 [ 1 ]) = None)

let test_hamming () =
  let a = Truth_table.of_code ~arity:3 0x0F in
  let b = Truth_table.of_code ~arity:3 0xF0 in
  checki "distance" 8 (Truth_table.hamming_distance a b);
  checki "self" 0 (Truth_table.hamming_distance a a)

let test_row_bits_inverse () =
  for row = 0 to 15 do
    checki "inverse" row
      (Truth_table.row_of_bits (Truth_table.bits_of_row ~arity:4 row))
  done

let test_arity_guard () =
  Alcotest.check_raises "arity 17"
    (Invalid_argument "Truth_table: arity 17 not in 0..16") (fun () ->
      ignore (Truth_table.create ~arity:17 (fun _ -> false)))

let test_bad_code () =
  Alcotest.check_raises "code too wide"
    (Invalid_argument "Truth_table.of_code: code 0x10 exceeds 4 rows")
    (fun () -> ignore (Truth_table.of_code ~arity:2 0x10))

let test_pp_code () =
  check Alcotest.string "0x0B" "0x0B"
    (Format.asprintf "%a" Truth_table.pp_code
       (Truth_table.of_code ~arity:3 0x0B))

(* ---- expressions ---- *)

let env_of_list l v = List.assoc v l

let test_expr_eval () =
  let open Expr in
  let e = Or [ And [ Var "a"; Not (Var "b") ]; Var "c" ] in
  checkb "a & !b" true
    (eval (env_of_list [ ("a", true); ("b", false); ("c", false) ]) e);
  checkb "only b" false
    (eval (env_of_list [ ("a", false); ("b", true); ("c", false) ]) e);
  checkb "empty and" true (eval (fun _ -> false) (And []));
  checkb "empty or" false (eval (fun _ -> false) (Or []))

let test_expr_vars () =
  let open Expr in
  let e = Or [ And [ Var "b"; Var "a" ]; Not (Var "b") ] in
  check (Alcotest.list Alcotest.string) "sorted unique" [ "a"; "b" ]
    (vars e)

let test_expr_to_table () =
  let open Expr in
  let tt =
    to_truth_table ~inputs:[| "a"; "b" |] (And [ Var "a"; Var "b" ])
  in
  check (Alcotest.list Alcotest.int) "and" [ 3 ] (Truth_table.minterms tt)

let test_expr_unknown_var () =
  Alcotest.check_raises "unknown"
    (Invalid_argument "Expr.to_truth_table: unknown variable \"z\"")
    (fun () ->
      ignore (Expr.to_truth_table ~inputs:[| "a" |] (Expr.Var "z")))

let test_expr_of_minterms_degenerate () =
  checkb "empty" true (Expr.of_minterms ~inputs:[| "a"; "b" |] [] = Expr.False);
  checkb "full" true
    (Expr.of_minterms ~inputs:[| "a"; "b" |] [ 0; 1; 2; 3 ] = Expr.True)

let test_expr_pp () =
  let open Expr in
  check Alcotest.string "sop"
    "a'.b + a.b'"
    (to_string
       (Or [ And [ Not (Var "a"); Var "b" ]; And [ Var "a"; Not (Var "b") ] ]));
  check Alcotest.string "true" "1" (to_string True);
  check Alcotest.string "single product" "a.b"
    (to_string (And [ Var "a"; Var "b" ]));
  check Alcotest.string "infix fallback" "!((a & (b | c)))"
    (to_string (Not (And [ Var "a"; Or [ Var "b"; Var "c" ] ])))

let test_expr_equivalent () =
  let open Expr in
  let demorgan_l = Not (And [ Var "a"; Var "b" ]) in
  let demorgan_r = Or [ Not (Var "a"); Not (Var "b") ] in
  checkb "de morgan" true
    (equivalent ~inputs:[| "a"; "b" |] demorgan_l demorgan_r)

let test_expr_parser () =
  let parse s =
    match Expr.of_string s with
    | Ok e -> e
    | Error msg -> Alcotest.failf "parse %S: %s" s msg
  in
  let open Expr in
  checkb "paper notation" true
    (parse "A'.B + C" = Or [ And [ Not (Var "A"); Var "B" ]; Var "C" ]);
  checkb "infix notation" true
    (parse "(!a & b) | c" = Or [ And [ Not (Var "a"); Var "b" ]; Var "c" ]);
  checkb "doubled operators" true
    (parse "a && b || c" = Or [ And [ Var "a"; Var "b" ]; Var "c" ]);
  checkb "constants" true (parse "0 + 1" = Or [ False; True ]);
  checkb "double prime" true (parse "x''" = Not (Not (Var "x")));
  checkb "precedence" true
    (parse "a + b.c" = Or [ Var "a"; And [ Var "b"; Var "c" ] ]);
  checkb "parens override" true
    (parse "(a + b).c" = And [ Or [ Var "a"; Var "b" ]; Var "c" ]);
  List.iter
    (fun bad ->
      match Expr.of_string bad with
      | Ok _ -> Alcotest.failf "expected failure on %S" bad
      | Error _ -> ())
    [ ""; "a +"; "(a"; "a)"; "a ? b"; "2x"; "a b" ]

let expr_gen =
  let open QCheck.Gen in
  let var = map (fun v -> Expr.Var v) (oneofl [ "a"; "b"; "c" ]) in
  fix
    (fun self depth ->
      if depth = 0 then oneof [ var; return Expr.True; return Expr.False ]
      else begin
        let sub = self (depth - 1) in
        frequency
          [
            (2, var);
            (1, map (fun e -> Expr.Not e) sub);
            (1, map2 (fun a b -> Expr.And [ a; b ]) sub sub);
            (1, map2 (fun a b -> Expr.Or [ a; b ]) sub sub);
          ]
      end)
    4

let prop_expr_parse_roundtrip =
  QCheck.Test.make ~name:"of_string . to_string preserves semantics"
    ~count:300
    (QCheck.make ~print:Expr.to_string expr_gen)
    (fun e ->
      match Expr.of_string (Expr.to_string e) with
      | Error msg -> QCheck.Test.fail_report msg
      | Ok e' ->
          Expr.equivalent ~inputs:[| "a"; "b"; "c" |] e e')

(* ---- Quine-McCluskey ---- *)

let test_qm_covers () =
  let imp = { Qm.value = 0b100; mask = 0b010 } in
  checkb "covers 100" true (Qm.covers imp 0b100);
  checkb "covers 110" true (Qm.covers imp 0b110);
  checkb "not 000" false (Qm.covers imp 0b000)

let test_qm_literals () =
  let imp = { Qm.value = 0b100; mask = 0b010 } in
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.bool))
    "literals"
    [ (0, false); (2, true) ]
    (Qm.implicant_literals ~arity:3 imp)

let test_qm_xor_primes () =
  (* XOR has no combinable minterms: primes are the minterms themselves. *)
  let tt = Truth_table.of_minterms ~arity:2 [ 1; 2 ] in
  checki "xor primes" 2 (List.length (Qm.prime_implicants tt))

let test_qm_consensus () =
  (* f = ab + a'c has prime implicant bc (consensus term). *)
  let tt =
    Truth_table.create ~arity:3 (fun r ->
        let a = r land 1 = 1 and b = r land 2 = 2 and c = r land 4 = 4 in
        (a && b) || ((not a) && c))
  in
  checki "three primes" 3 (List.length (Qm.prime_implicants tt));
  (* the minimal cover does not need the consensus term *)
  checki "two in cover" 2 (List.length (Qm.minimise tt))

let test_qm_constants () =
  checki "false" 0
    (List.length (Qm.minimise (Truth_table.of_minterms ~arity:2 [])));
  match Qm.minimise (Truth_table.of_minterms ~arity:2 [ 0; 1; 2; 3 ]) with
  | [ imp ] ->
      checki "all dont-care" 3 imp.Qm.mask;
      checki "value" 0 imp.Qm.value
  | other -> Alcotest.failf "expected 1 implicant, got %d" (List.length other)

let test_qm_pp () =
  check Alcotest.string "cube" "1-0"
    (Format.asprintf "%a"
       (Qm.pp_implicant ~arity:3)
       { Qm.value = 0b100; mask = 0b010 })

(* ---- netlists ---- *)

let test_netlist_make_checks () =
  let mk gates output =
    ignore (Netlist.make ~inputs:[| "a"; "b" |] ~output ~gates)
  in
  Alcotest.check_raises "undefined ref"
    (Invalid_argument
       "Netlist.make: net \"x\" used before definition in \"n1\"")
    (fun () -> mk [ ("n1", Netlist.Not "x") ] "n1");
  Alcotest.check_raises "double definition"
    (Invalid_argument "Netlist.make: net \"n1\" defined twice") (fun () ->
      mk [ ("n1", Netlist.Not "a"); ("n1", Netlist.Not "b") ] "n1");
  Alcotest.check_raises "undefined output"
    (Invalid_argument "Netlist.make: undefined output net \"zz\"")
    (fun () -> mk [ ("n1", Netlist.Not "a") ] "zz")

let test_netlist_eval () =
  let nl =
    Netlist.make ~inputs:[| "a"; "b" |] ~output:"n2"
      ~gates:[ ("n1", Netlist.Nor ("a", "b")); ("n2", Netlist.Not "n1") ]
  in
  (* n2 = a | b *)
  checkb "00" false (Netlist.eval nl [| false; false |]);
  checkb "10" true (Netlist.eval nl [| true; false |]);
  checki "gate count" 2 (Netlist.gate_count nl);
  checki "depth" 2 (Netlist.depth nl)

let test_netlist_const () =
  let nl =
    Netlist.of_truth_table ~inputs:[| "a" |]
      (Truth_table.of_minterms ~arity:1 [])
  in
  checkb "constant false" false (Netlist.eval nl [| true |]);
  checkb "constant false 2" false (Netlist.eval nl [| false |])

let test_netlist_buffer_is_wire () =
  (* The identity function needs no gates at all. *)
  let nl =
    Netlist.of_truth_table ~inputs:[| "a" |]
      (Truth_table.of_minterms ~arity:1 [ 1 ])
  in
  checki "no gates" 0 (Netlist.gate_count nl);
  checki "depth 0" 0 (Netlist.depth nl)

let test_netlist_gate_types () =
  (* Non-constant synthesis only emits NOT and NOR (the genetic gate
     repertoire). *)
  List.iter
    (fun code ->
      let tt = Truth_table.of_code ~arity:3 code in
      let nl = Netlist.of_truth_table ~inputs:[| "a"; "b"; "c" |] tt in
      List.iter
        (fun (_, g) ->
          match g with
          | Netlist.Not _ | Netlist.Nor _ -> ()
          | Netlist.Const _ -> Alcotest.fail "Const in non-constant netlist")
        (Netlist.logic_gates nl))
    [ 0x0B; 0x04; 0x1C; 0x96; 0x69 ]

let test_netlist_paper_sizes () =
  (* The exact-search synthesiser keeps the paper's three Fig. 4 circuits
     within Cello-like gate counts. *)
  let gates code =
    Netlist.gate_count
      (Netlist.of_truth_table ~inputs:[| "a"; "b"; "c" |]
         (Truth_table.of_code ~arity:3 code))
  in
  checki "0x0B" 3 (gates 0x0B);
  checki "0x04" 4 (gates 0x04);
  checki "0x1C" 5 (gates 0x1C)

let contains ~needle haystack =
  let n = String.length haystack and m = String.length needle in
  let rec go i =
    i + m <= n && (String.sub haystack i m = needle || go (i + 1))
  in
  go 0

let test_netlist_verilog () =
  let nl =
    Netlist.make ~inputs:[| "a"; "b" |] ~output:"n2"
      ~gates:[ ("n1", Netlist.Nor ("a", "b")); ("n2", Netlist.Not "n1") ]
  in
  let v = Netlist.to_verilog ~name:"or2" nl in
  checkb "module header" true
    (contains ~needle:"module or2(input a, input b, output y);" v);
  checkb "wire decl" true (contains ~needle:"wire n1, n2;" v);
  checkb "nor gate" true (contains ~needle:"nor g0(n1, a, b);" v);
  checkb "not gate" true (contains ~needle:"not g1(n2, n1);" v);
  checkb "output" true (contains ~needle:"assign y = n2;" v);
  checkb "endmodule" true (contains ~needle:"endmodule" v);
  (* constant circuit *)
  let c =
    Netlist.of_truth_table ~inputs:[| "a" |]
      (Truth_table.of_minterms ~arity:1 [])
  in
  checkb "constant" true
    (contains ~needle:"assign const = 1'b0;" (Netlist.to_verilog c))

(* ---- property-based tests ---- *)

let table_gen arity =
  QCheck.map
    (fun code -> Truth_table.of_code ~arity code)
    (QCheck.int_bound ((1 lsl (1 lsl arity)) - 1))

let table_arb arity =
  QCheck.make
    ~print:(fun tt -> Format.asprintf "%a" Truth_table.pp_code tt)
    (QCheck.gen (table_gen arity))

let inputs_for arity = Array.init arity (fun i -> Printf.sprintf "x%d" i)

let prop_code_roundtrip =
  QCheck.Test.make ~name:"of_code . to_code = id" ~count:200 (table_arb 4)
    (fun tt ->
      Truth_table.equal tt
        (Truth_table.of_code ~arity:4 (Truth_table.to_code tt)))

let prop_complement =
  QCheck.Test.make ~name:"complement flips every row" ~count:100
    (table_arb 3) (fun tt ->
      let c = Truth_table.complement tt in
      List.for_all
        (fun r -> Truth_table.output tt r <> Truth_table.output c r)
        (List.init 8 Fun.id))

let prop_expr_roundtrip =
  QCheck.Test.make ~name:"expr of table tabulates back" ~count:200
    (table_arb 3) (fun tt ->
      let inputs = inputs_for 3 in
      Truth_table.equal tt
        (Expr.to_truth_table ~inputs (Expr.of_truth_table ~inputs tt)))

let prop_qm_equivalent =
  QCheck.Test.make ~name:"QM minimisation preserves the function"
    ~count:300 (table_arb 4) (fun tt ->
      let inputs = inputs_for 4 in
      Truth_table.equal tt
        (Expr.to_truth_table ~inputs (Qm.to_expr ~inputs tt)))

let prop_qm_primes_cover =
  QCheck.Test.make ~name:"QM cover covers exactly the minterms" ~count:200
    (table_arb 4) (fun tt ->
      let cover = Qm.minimise tt in
      let covered m = List.exists (fun p -> Qm.covers p m) cover in
      List.for_all covered (Truth_table.minterms tt)
      && List.for_all (fun m -> not (covered m)) (Truth_table.maxterms tt))

let prop_netlist_equivalent_3 =
  QCheck.Test.make ~name:"netlist synthesis is exact (arity 3)" ~count:256
    (table_arb 3) (fun tt ->
      let nl = Netlist.of_truth_table ~inputs:(inputs_for 3) tt in
      Truth_table.equal tt (Netlist.to_truth_table nl))

let prop_netlist_equivalent_4 =
  QCheck.Test.make ~name:"netlist synthesis is exact (arity 4, SOP path)"
    ~count:100 (table_arb 4) (fun tt ->
      let nl = Netlist.of_truth_table ~inputs:(inputs_for 4) tt in
      Truth_table.equal tt (Netlist.to_truth_table nl))

let prop_hamming_triangle =
  QCheck.Test.make ~name:"hamming distance triangle inequality" ~count:100
    (QCheck.triple (table_arb 3) (table_arb 3) (table_arb 3))
    (fun (a, b, c) ->
      Truth_table.hamming_distance a c
      <= Truth_table.hamming_distance a b + Truth_table.hamming_distance b c)

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "glc_logic"
    [
      ( "truth_table",
        [
          Alcotest.test_case "create/output" `Quick test_create_output;
          Alcotest.test_case "of_minterms" `Quick test_of_minterms;
          Alcotest.test_case "partition" `Quick
            test_minterms_maxterms_partition;
          Alcotest.test_case "code round trip (all)" `Quick
            test_code_roundtrip;
          Alcotest.test_case "of_outputs" `Quick test_of_outputs;
          Alcotest.test_case "of_outputs invalid" `Quick
            test_of_outputs_invalid;
          Alcotest.test_case "eval" `Quick test_eval;
          Alcotest.test_case "complement involution" `Quick
            test_complement_involution;
          Alcotest.test_case "is_constant" `Quick test_is_constant;
          Alcotest.test_case "hamming" `Quick test_hamming;
          Alcotest.test_case "row/bits inverse" `Quick test_row_bits_inverse;
          Alcotest.test_case "arity guard" `Quick test_arity_guard;
          Alcotest.test_case "bad code" `Quick test_bad_code;
          Alcotest.test_case "pp_code" `Quick test_pp_code;
        ] );
      ( "expr",
        [
          Alcotest.test_case "eval" `Quick test_expr_eval;
          Alcotest.test_case "vars" `Quick test_expr_vars;
          Alcotest.test_case "to_truth_table" `Quick test_expr_to_table;
          Alcotest.test_case "unknown variable" `Quick test_expr_unknown_var;
          Alcotest.test_case "of_minterms degenerate" `Quick
            test_expr_of_minterms_degenerate;
          Alcotest.test_case "pretty printing" `Quick test_expr_pp;
          Alcotest.test_case "equivalence" `Quick test_expr_equivalent;
          Alcotest.test_case "parser" `Quick test_expr_parser;
        ] );
      ( "qm",
        [
          Alcotest.test_case "covers" `Quick test_qm_covers;
          Alcotest.test_case "literals" `Quick test_qm_literals;
          Alcotest.test_case "xor primes" `Quick test_qm_xor_primes;
          Alcotest.test_case "consensus" `Quick test_qm_consensus;
          Alcotest.test_case "constants" `Quick test_qm_constants;
          Alcotest.test_case "pp" `Quick test_qm_pp;
        ] );
      ( "netlist",
        [
          Alcotest.test_case "make checks" `Quick test_netlist_make_checks;
          Alcotest.test_case "eval" `Quick test_netlist_eval;
          Alcotest.test_case "const" `Quick test_netlist_const;
          Alcotest.test_case "buffer is a wire" `Quick
            test_netlist_buffer_is_wire;
          Alcotest.test_case "gate repertoire" `Quick test_netlist_gate_types;
          Alcotest.test_case "paper circuit sizes" `Quick
            test_netlist_paper_sizes;
          Alcotest.test_case "verilog export" `Quick test_netlist_verilog;
        ] );
      ( "properties",
        qc
          [
            prop_code_roundtrip;
            prop_complement;
            prop_expr_roundtrip;
            prop_qm_equivalent;
            prop_qm_primes_cover;
            prop_netlist_equivalent_3;
            prop_netlist_equivalent_4;
            prop_hamming_triangle;
            prop_expr_parse_roundtrip;
          ] );
    ]
