(* Tests for glc_gates: the repressor library, circuit metadata, genetic
   technology mapping and the 15 benchmark circuits.

   The strongest check here is a deterministic "DC analysis": for every
   benchmark circuit and every input combination, the kinetic model is
   integrated to steady state with deterministic Euler steps and the
   settled output level is compared against the logic threshold. This
   validates the entire synthesis + conversion stack without stochastic
   noise. *)

module Truth_table = Glc_logic.Truth_table
module Circuit = Glc_gates.Circuit
module Assembly = Glc_gates.Assembly
module Repressor = Glc_gates.Repressor
module Cello = Glc_gates.Cello
module Circuits = Glc_gates.Circuits
module Benchmarks = Glc_gates.Benchmarks
module Compiled = Glc_ssa.Compiled
module Document = Glc_sbol.Document

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* ---- repressor library ---- *)

let test_library_distinct () =
  let names = List.map (fun r -> r.Repressor.rep_name) Repressor.library in
  checki "twelve repressors" 12 (List.length names);
  checki "all distinct" 12 (List.length (List.sort_uniq compare names))

let test_library_ranges () =
  List.iter
    (fun r ->
      let k = r.Repressor.rep_kinetics in
      let open Glc_sbol.To_model in
      if k.ymax < 4. || k.ymax > 6. then Alcotest.fail "ymax out of range";
      if k.ymin <= 0. || k.ymin > 0.1 then Alcotest.fail "ymin out of range";
      if k.k < 8. || k.k > 25. then Alcotest.fail "K out of range";
      if k.n < 1.5 || k.n > 3.5 then Alcotest.fail "n out of range")
    Repressor.library

let test_library_find () =
  checkb "PhlF" true (Repressor.find "PhlF" <> None);
  checkb "missing" true (Repressor.find "NoSuchRep" = None)

(* ---- circuit metadata ---- *)

let test_circuit_validation () =
  let c = Circuits.genetic_and () in
  let expect_invalid f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  expect_invalid (fun () ->
      Circuit.make ~name:"bad" ~document:c.Circuit.document
        ~inputs:[| "LacI" |] (* TetR missing *)
        ~output:"GFP"
        ~expected:(Truth_table.of_minterms ~arity:1 [ 0 ])
        ());
  expect_invalid (fun () ->
      Circuit.make ~name:"bad" ~document:c.Circuit.document
        ~inputs:c.Circuit.inputs ~output:"NotAProtein"
        ~expected:c.Circuit.expected ());
  expect_invalid (fun () ->
      Circuit.make ~name:"bad" ~document:c.Circuit.document
        ~inputs:c.Circuit.inputs ~output:"GFP"
        ~expected:(Truth_table.of_minterms ~arity:3 [ 0 ])
        ());
  expect_invalid (fun () ->
      Circuit.make ~name:"bad" ~document:c.Circuit.document
        ~inputs:c.Circuit.inputs ~output:"GFP" ~expected:c.Circuit.expected
        ~promoter_kinetics:
          [ ("cds_P1", Glc_sbol.To_model.default_kinetics) ]
        ());
  expect_invalid (fun () ->
      Circuit.make ~name:"bad" ~document:c.Circuit.document
        ~inputs:c.Circuit.inputs ~output:"GFP" ~expected:c.Circuit.expected
        ~regulator_affinity:[ ("ghost", (4., 2.)) ]
        ())

let test_input_value_convention () =
  let c = Cello.circuit_0x0B () in
  (* combination 011: I1 (LacI) = 0, I2 (TetR) = 1, I3 (AraC) = 1 *)
  checkb "I1 of 011" true (Circuit.input_value c ~row:3 0 = false);
  checkb "I2 of 011" true (Circuit.input_value c ~row:3 1 = true);
  checkb "I3 of 011" true (Circuit.input_value c ~row:3 2 = true);
  checki "row_of_inputs inverse" 3
    (Circuit.row_of_inputs c [| false; true; true |]);
  Alcotest.(check string)
    "pp_combination" "011"
    (Format.asprintf "%a" (Circuit.pp_combination ~arity:3) 3)

(* ---- deterministic steady-state (DC) analysis ---- *)

(* Euler-integrates the kinetic model with inputs clamped for one row and
   returns the settled output amount. *)
let dc_output circuit row =
  let model = Circuit.model circuit in
  let c = Compiled.compile model in
  let state = Array.copy c.Compiled.c_initial in
  Array.iteri
    (fun j input ->
      let v = if Circuit.input_value circuit ~row j then 15.0 else 0.0 in
      state.(Compiled.species_index c input) <- v)
    circuit.Circuit.inputs;
  let dt = 0.5 in
  for _ = 1 to 4000 do
    let a = Compiled.propensities c state in
    Array.iteri
      (fun ri r ->
        List.iter
          (fun (s, d) ->
            if not c.Compiled.c_boundary.(s) then
              state.(s) <- Float.max 0. (state.(s) +. (d *. a.(ri) *. dt)))
          r.Compiled.c_deltas)
      c.Compiled.c_reactions
  done;
  state.(Compiled.species_index c circuit.Circuit.output)

let test_dc_all_benchmarks () =
  List.iter
    (fun circuit ->
      let expected = circuit.Circuit.expected in
      for row = 0 to Truth_table.rows expected - 1 do
        let level = dc_output circuit row in
        let want = Truth_table.output expected row in
        let got = level >= 15.0 in
        if got <> want then
          Alcotest.failf "%s row %d: steady output %.1f, expected logic %b"
            circuit.Circuit.name row level want
      done)
    (Benchmarks.all ())

let test_dc_margins () =
  (* logic levels keep a 2x margin from the threshold on both sides *)
  List.iter
    (fun circuit ->
      let expected = circuit.Circuit.expected in
      for row = 0 to Truth_table.rows expected - 1 do
        let level = dc_output circuit row in
        if Truth_table.output expected row then begin
          if level < 30. then
            Alcotest.failf "%s row %d: weak high %.1f" circuit.Circuit.name
              row level
        end
        else if level > 7.5 then
          Alcotest.failf "%s row %d: weak low %.1f" circuit.Circuit.name row
            level
      done)
    (Benchmarks.all ())

(* ---- assembly ---- *)

let test_assembly_preserves_spec () =
  List.iter
    (fun code ->
      let c = Cello.of_code code in
      checki "expected table is the spec" code
        (Truth_table.to_code c.Circuit.expected);
      Alcotest.(check string)
        "name" (Printf.sprintf "0x%02X" code) c.Circuit.name)
    Cello.codes

let test_assembly_orthogonality () =
  (* each repressor drives at most one gate *)
  List.iter
    (fun code ->
      let c = Cello.of_code code in
      let produced =
        List.filter_map
          (function
            | Document.Production { prot; _ } -> Some prot
            | Document.Repression _ | Document.Activation _ -> None)
          c.Circuit.document.Document.doc_interactions
      in
      let internal = List.filter (fun p -> p <> "YFP") produced in
      checki "no repressor reuse"
        (List.length (List.sort_uniq compare internal))
        (List.length internal))
    Cello.codes

let test_assembly_sensors_and_reporter () =
  let c = Cello.of_code 0x1C in
  Alcotest.(check (array string))
    "sensors" [| "LacI"; "TetR"; "AraC" |] c.Circuit.inputs;
  Alcotest.(check string) "reporter" "YFP" c.Circuit.output

let test_assembly_library_exhausted () =
  (* XOR of 4 inputs needs far more than 12 gates on the SOP path *)
  let tt =
    Truth_table.create ~arity:4 (fun r ->
        let rec pop n = if n = 0 then 0 else (n land 1) + pop (n lsr 1) in
        pop r mod 2 = 1)
  in
  match Assembly.synthesize ~name:"xor4" tt with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected library exhaustion"

let test_assembly_buffer () =
  (* identity: the output protein is the sensor itself, no gates *)
  let c =
    Assembly.synthesize ~name:"buffer"
      (Truth_table.of_minterms ~arity:1 [ 1 ])
  in
  Alcotest.(check string) "output is the sensor" "LacI" c.Circuit.output;
  checki "no gates" 0 (Circuit.n_gates c)

let test_assembly_constants () =
  let c1 = Assembly.synthesize ~name:"always_on"
      (Truth_table.of_minterms ~arity:2 [ 0; 1; 2; 3 ])
  in
  checkb "constant high" true (dc_output c1 0 >= 15.);
  checkb "constant high row 3" true (dc_output c1 3 >= 15.);
  let c0 =
    Assembly.synthesize ~name:"always_off"
      (Truth_table.of_minterms ~arity:2 [])
  in
  checkb "constant low" true (dc_output c0 0 < 15.);
  checkb "constant low row 3" true (dc_output c0 3 < 15.)

let test_extended_library () =
  let lib = Repressor.extended 30 in
  checki "requested size" 30 (List.length lib);
  let names = List.map (fun r -> r.Repressor.rep_name) lib in
  checki "all distinct" 30 (List.length (List.sort_uniq compare names));
  checkb "base library is a prefix" true
    (List.filteri (fun i _ -> i < Repressor.size) lib = Repressor.library);
  checkb "plain library when small" true
    (Repressor.extended 5 == Repressor.library)

let test_four_input_synthesis () =
  (* AND of four inputs: beyond the physical 12-repressor library on the
     SOP mapping path, so it needs the extended library *)
  let tt = Truth_table.of_minterms ~arity:4 [ 15 ] in
  let c =
    Assembly.synthesize ~library:(Repressor.extended 32) ~name:"AND4" tt
  in
  checki "arity" 4 (Circuit.arity c);
  Alcotest.(check string) "fourth sensor" "IN4" c.Circuit.inputs.(3);
  (* DC-correct on all 16 combinations *)
  for row = 0 to 15 do
    let level = dc_output c row in
    if (level >= 15.) <> Truth_table.output tt row then
      Alcotest.failf "AND4 row %d: %.1f" row level
  done

let test_assembly_bad_input_nets () =
  let nl =
    Glc_logic.Netlist.make ~inputs:[| "x"; "y" |] ~output:"n1"
      ~gates:[ ("n1", Glc_logic.Netlist.Nor ("x", "y")) ]
  in
  match
    Assembly.of_netlist ~name:"bad"
      ~expected:(Truth_table.of_minterms ~arity:2 [ 0 ])
      nl
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected sensor-name mismatch"

(* ---- cello / benchmarks ---- *)

let test_cello_codes () =
  checki "ten codes" 10 (List.length Cello.codes);
  checkb "0x0B present" true (List.mem 0x0B Cello.codes);
  checkb "fig 4 set" true
    (List.mem 0x04 Cello.codes && List.mem 0x1C Cello.codes)

let test_cello_bad_code () =
  match Cello.of_code 0x1FF with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let test_benchmarks_population () =
  let s = Benchmarks.summary () in
  checki "fifteen circuits" 15 (List.length s);
  List.iter
    (fun (name, inputs, gates, comps) ->
      if inputs < 1 || inputs > 3 then Alcotest.failf "%s: inputs" name;
      if gates < 1 || gates > 7 then Alcotest.failf "%s: %d gates" name gates;
      if comps < 3 || comps > 26 then
        Alcotest.failf "%s: %d components" name comps)
    s

let test_benchmarks_find () =
  checkb "find by name" true (Benchmarks.find "genetic_AND" <> None);
  checkb "find cello" true (Benchmarks.find "0x0B" <> None);
  checkb "missing" true (Benchmarks.find "0xZZ" = None);
  checki "names" 15 (List.length (Benchmarks.names ()))

let test_book_circuits_expected () =
  let code c = Truth_table.to_code c.Circuit.expected in
  checki "NOT" 0x01 (code (Circuits.genetic_not ()));
  checki "AND" 0x08 (code (Circuits.genetic_and ()));
  checki "OR" 0x0E (code (Circuits.genetic_or ()));
  checki "NAND" 0x07 (code (Circuits.genetic_nand ()));
  checki "NOR" 0x01 (code (Circuits.genetic_nor ()))

let prop_synthesis_dc_correct =
  (* any random 3-input circuit comes out logically correct at DC *)
  QCheck.Test.make ~name:"random circuits are DC-correct" ~count:12
    (QCheck.make
       ~print:(Printf.sprintf "0x%02X")
       (QCheck.Gen.int_bound 255))
    (fun code ->
      let c = Cello.of_code code in
      List.for_all
        (fun row ->
          (dc_output c row >= 15.0)
          = Truth_table.output c.Circuit.expected row)
        (List.init 8 Fun.id))

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "glc_gates"
    [
      ( "repressor",
        [
          Alcotest.test_case "distinct" `Quick test_library_distinct;
          Alcotest.test_case "parameter ranges" `Quick test_library_ranges;
          Alcotest.test_case "find" `Quick test_library_find;
        ] );
      ( "circuit",
        [
          Alcotest.test_case "validation" `Quick test_circuit_validation;
          Alcotest.test_case "combination convention" `Quick
            test_input_value_convention;
        ] );
      ( "dc_analysis",
        [
          Alcotest.test_case "all benchmarks correct" `Slow
            test_dc_all_benchmarks;
          Alcotest.test_case "noise margins" `Slow test_dc_margins;
        ] );
      ( "assembly",
        [
          Alcotest.test_case "preserves the spec" `Quick
            test_assembly_preserves_spec;
          Alcotest.test_case "orthogonality" `Quick
            test_assembly_orthogonality;
          Alcotest.test_case "sensors and reporter" `Quick
            test_assembly_sensors_and_reporter;
          Alcotest.test_case "library exhaustion" `Quick
            test_assembly_library_exhausted;
          Alcotest.test_case "buffer" `Quick test_assembly_buffer;
          Alcotest.test_case "constants" `Quick test_assembly_constants;
          Alcotest.test_case "bad input nets" `Quick
            test_assembly_bad_input_nets;
          Alcotest.test_case "extended library" `Quick test_extended_library;
          Alcotest.test_case "four-input synthesis" `Slow
            test_four_input_synthesis;
        ] );
      ( "benchmarks",
        [
          Alcotest.test_case "cello codes" `Quick test_cello_codes;
          Alcotest.test_case "bad code" `Quick test_cello_bad_code;
          Alcotest.test_case "population" `Quick test_benchmarks_population;
          Alcotest.test_case "find" `Quick test_benchmarks_find;
          Alcotest.test_case "book circuit specs" `Quick
            test_book_circuits_expected;
        ] );
      ("properties", qc [ prop_synthesis_dc_correct ]);
    ]
