(* Logic extraction without prior knowledge.

   The paper's second use case: "it helps in extracting the Boolean logic
   of a circuit even when the user does not have any prior knowledge
   about its expected behaviour." We receive a circuit as an opaque
   kinetic model (an SBML document), are told only which species are the
   inputs and the output, and reconstruct its truth table.

   Run with: dune exec examples/unknown_circuit.exe *)

module Model = Glc_model.Model
module Sbml = Glc_model.Sbml
module Circuit = Glc_gates.Circuit
module Protocol = Glc_dvasim.Protocol
module Experiment = Glc_dvasim.Experiment
module Analyzer = Glc_core.Analyzer
module Report = Glc_core.Report

(* A "mystery" model arriving from elsewhere as SBML text. (It is in fact
   circuit 0x1C, but nothing below uses that knowledge.) *)
let mystery_sbml =
  Sbml.to_string (Circuit.model (Glc_gates.Cello.circuit_0x1C ()))

let () =
  let model =
    match Sbml.of_string mystery_sbml with
    | Ok m -> m
    | Error e -> failwith ("could not load model: " ^ e)
  in
  Format.printf "Loaded an unknown model with %d species and %d reactions.@."
    (List.length model.Model.m_species)
    (List.length model.Model.m_reactions);

  (* The experimenter knows only the I/O species names (they are the
     boundary species and the reporter in the SBML file). *)
  let inputs = [| "LacI"; "TetR"; "AraC" |] in
  let output = "YFP" in

  (* Drive every input combination for one propagation delay each and
     log all species. *)
  let trace =
    Experiment.run_trace ~protocol:Protocol.default ~inputs model
  in

  (* Algorithm 1 reconstructs the Boolean behaviour from the log. *)
  let result = Analyzer.run { Analyzer.trace; inputs; output } in
  Format.printf "@.%a@.@." (Report.pp_result ~output_name:output) result;
  Format.printf "Reconstructed truth-table code: %a@."
    Glc_logic.Truth_table.pp_code
    (Analyzer.extracted_table result)
