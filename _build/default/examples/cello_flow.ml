(* The full genetic design automation flow of the paper's §III.

   The ten real circuits of the evaluation were designed in Cello, which
   emits a structural SBOL file; the SBOL-SBML converter of Roehner et
   al. adds reaction kinetics; and D-VASim simulates the SBML model for
   the logic analysis. This example reproduces that pipeline end to end,
   including the file round trips:

     truth-table code 0x8E
       -> logic synthesis (Quine-McCluskey + NOR mapping)
       -> genetic technology mapping (repressor assignment)
       -> SBOL file            (written, re-read)
       -> kinetic model (SBML) (written, re-read)
       -> virtual laboratory   (SSA simulation)
       -> Algorithm 1          (logic analysis & verification)

   Run with: dune exec examples/cello_flow.exe *)

module Truth_table = Glc_logic.Truth_table
module Netlist = Glc_logic.Netlist
module Document = Glc_sbol.Document
module Sbol_xml = Glc_sbol.Sbol_xml
module Sbml = Glc_model.Sbml
module Circuit = Glc_gates.Circuit
module Assembly = Glc_gates.Assembly
module Protocol = Glc_dvasim.Protocol
module Experiment = Glc_dvasim.Experiment
module Analyzer = Glc_core.Analyzer
module Verify = Glc_core.Verify
module Report = Glc_core.Report

let code = 0x8E

let () =
  (* 1. Specification: a truth-table code, as Cello takes as input. *)
  let spec = Truth_table.of_code ~arity:3 code in
  Format.printf "Specification %a:@.%a@.@." Truth_table.pp_code spec
    Truth_table.pp spec;

  (* 2. Logic synthesis and genetic technology mapping. *)
  let circuit = Glc_gates.Cello.of_code code in
  Format.printf "Synthesised onto %d repressor gates (%d DNA parts).@.@."
    (Circuit.n_gates circuit)
    (Circuit.n_components circuit);

  (* 3. SBOL round trip: the structure-only design file. *)
  let sbol_file = Filename.temp_file "cello" ".sbol.xml" in
  Sbol_xml.write_file sbol_file circuit.Circuit.document;
  let document =
    match Sbol_xml.read_file sbol_file with
    | Ok d -> d
    | Error e -> failwith ("SBOL round trip failed: " ^ e)
  in
  Format.printf "SBOL file: %s (%d parts re-read)@." sbol_file
    (List.length document.Document.doc_parts);

  (* 4. SBOL -> SBML conversion (Roehner et al.) and round trip. *)
  let sbml_file = Filename.temp_file "cello" ".sbml.xml" in
  Sbml.write_file sbml_file (Circuit.model circuit);
  let model =
    match Sbml.read_file sbml_file with
    | Ok m -> m
    | Error e -> failwith ("SBML round trip failed: " ^ e)
  in
  Format.printf "SBML file: %s (%d reactions re-read)@.@." sbml_file
    (List.length model.Glc_model.Model.m_reactions);

  (* 5. Virtual laboratory + Algorithm 1 on the re-read model. *)
  let e =
    Experiment.run_model ~protocol:Protocol.default ~circuit model
  in
  let result, verification = Verify.experiment e in
  Format.printf "%a@.@.%a@."
    (Report.pp_result ~output_name:circuit.Circuit.output)
    result Report.pp_verification verification;
  Sys.remove sbol_file;
  Sys.remove sbml_file;
  if not verification.Verify.verified then exit 1
