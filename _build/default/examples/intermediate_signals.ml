(* Analysing intermediate circuit components.

   "By giving users an ability to select the input and output species,
   they can perform Boolean logic analysis on the entire circuit as well
   as on the intermediate circuit components" (the paper, §II). A single
   simulation log is analysed several times with different output species
   selected, recovering the logic function computed at every internal
   repressor of the circuit — the genetic equivalent of probing internal
   nets with a logic analyser.

   Run with: dune exec examples/intermediate_signals.exe *)

module Trace = Glc_ssa.Trace
module Circuit = Glc_gates.Circuit
module Experiment = Glc_dvasim.Experiment
module Analyzer = Glc_core.Analyzer

let () =
  let circuit = Glc_gates.Cello.circuit_0x1C () in
  let e = Experiment.run circuit in
  let inputs = circuit.Circuit.inputs in
  Format.printf
    "Circuit 0x1C: probing every internal species of one experiment@.@.";
  Format.printf "%-10s %-10s  %s@." "species" "code" "extracted logic";
  Array.iter
    (fun species ->
      if not (Array.mem species inputs) then begin
        let result =
          Analyzer.run
            { Analyzer.trace = e.Experiment.trace; inputs; output = species }
        in
        Format.printf "%-10s %-10s  %s@." species
          (Format.asprintf "%a" Glc_logic.Truth_table.pp_code
             (Analyzer.extracted_table result))
          (Glc_logic.Expr.to_string result.Analyzer.expr)
      end)
    (Trace.names e.Experiment.trace)
