(* An interactive virtual-laboratory session.

   D-VASim is "an interactive virtual laboratory environment": the user
   injects and withdraws proteins while the stochastic simulation runs
   and watches the circuit respond. This example drives the paper's
   Fig. 1 AND gate through such a session by hand — settle, inject LacI,
   then TetR, watch GFP switch on, withdraw LacI, watch it switch off —
   and measures the response times along the way, which is exactly how
   the propagation delay behind the paper's 1,000 t.u. hold time is
   found.

   Run with: dune exec examples/interactive_lab.exe *)

module Lab = Glc_dvasim.Lab
module Trace = Glc_ssa.Trace
module Circuit = Glc_gates.Circuit

let () =
  let circuit = Glc_gates.Circuits.genetic_and () in
  let lab = Lab.create ~seed:7 (Circuit.model circuit) in
  let status () =
    Printf.printf "t=%5.0f  LacI=%5.1f TetR=%5.1f CI=%6.1f GFP=%6.1f\n"
      (Lab.time lab) (Lab.amount lab "LacI") (Lab.amount lab "TetR")
      (Lab.amount lab "CI") (Lab.amount lab "GFP")
  in
  print_endline "settling with no inputs...";
  Lab.run lab 500.;
  status ();

  print_endline "\ninjecting 15 molecules of LacI (one input only)...";
  Lab.set lab "LacI" 15.;
  Lab.run lab 500.;
  status ();
  assert (Lab.amount lab "GFP" < 15.);

  print_endline "\ninjecting 15 molecules of TetR as well (both inputs)...";
  Lab.set lab "TetR" 15.;
  let before = Lab.time lab in
  (* advance in small steps until GFP crosses the threshold *)
  let rec wait_high () =
    if Lab.amount lab "GFP" >= 15. then Lab.time lab -. before
    else if Lab.time lab -. before > 2_000. then
      failwith "GFP never switched on"
    else begin
      Lab.run lab 10.;
      wait_high ()
    end
  in
  let rise = wait_high () in
  status ();
  Printf.printf "GFP crossed the 15-molecule threshold after %.0f t.u.\n"
    rise;

  print_endline "\nwithdrawing LacI...";
  Lab.set lab "LacI" 0.;
  let before = Lab.time lab in
  let rec wait_low () =
    if Lab.amount lab "GFP" < 15. then Lab.time lab -. before
    else if Lab.time lab -. before > 2_000. then
      failwith "GFP never switched off"
    else begin
      Lab.run lab 10.;
      wait_low ()
    end
  in
  let fall = wait_low () in
  status ();
  Printf.printf "GFP fell below the threshold after %.0f t.u.\n" fall;

  let log = Lab.history lab in
  Printf.printf
    "\nsession log: %d samples over %.0f t.u. (GFP peak %.0f molecules)\n"
    (Trace.length log) (Lab.time lab) (Trace.max_value log "GFP");
  Printf.printf
    "both transitions settle well within the paper's 1,000 t.u. hold \
     time.\n"
