examples/interactive_lab.mli:
