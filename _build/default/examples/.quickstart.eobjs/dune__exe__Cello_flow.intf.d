examples/cello_flow.mli:
