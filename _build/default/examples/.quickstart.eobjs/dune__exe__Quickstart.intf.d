examples/quickstart.mli:
