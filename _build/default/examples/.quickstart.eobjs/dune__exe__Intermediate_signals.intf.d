examples/intermediate_signals.mli:
