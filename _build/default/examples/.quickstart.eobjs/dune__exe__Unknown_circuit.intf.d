examples/unknown_circuit.mli:
