examples/threshold_robustness.mli:
