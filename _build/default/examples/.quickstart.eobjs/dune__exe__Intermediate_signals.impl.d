examples/intermediate_signals.ml: Array Format Glc_core Glc_dvasim Glc_gates Glc_logic Glc_ssa
