examples/interactive_lab.ml: Glc_dvasim Glc_gates Glc_ssa Printf
