examples/unknown_circuit.ml: Format Glc_core Glc_dvasim Glc_gates Glc_logic Glc_model List
