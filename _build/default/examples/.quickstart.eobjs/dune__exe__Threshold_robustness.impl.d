examples/threshold_robustness.ml: Array Format Glc_core Glc_dvasim Glc_gates Glc_logic List
