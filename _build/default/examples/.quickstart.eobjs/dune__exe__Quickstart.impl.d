examples/quickstart.ml: Format Glc_core Glc_dvasim Glc_gates Glc_sbol
