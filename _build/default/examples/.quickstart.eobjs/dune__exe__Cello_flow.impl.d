examples/cello_flow.ml: Filename Format Glc_core Glc_dvasim Glc_gates Glc_logic Glc_model Glc_sbol List Sys
