(* Quickstart: build the paper's Fig. 1 genetic AND gate, run it through
   the virtual laboratory, and let Algorithm 1 recover its Boolean logic.

   Run with: dune exec examples/quickstart.exe *)

module Circuits = Glc_gates.Circuits
module Circuit = Glc_gates.Circuit
module Experiment = Glc_dvasim.Experiment
module Analyzer = Glc_core.Analyzer
module Verify = Glc_core.Verify
module Report = Glc_core.Report

let () =
  (* The genetic AND gate of Fig. 1: promoters P1/P2 produce the
     repressor CI unless LacI/TetR are present; P3 produces GFP unless CI
     is present. GFP therefore needs both inputs. *)
  let circuit = Circuits.genetic_and () in
  Format.printf "Circuit under test:@.%a@.@." Glc_sbol.Document.pp
    circuit.Circuit.document;

  (* Simulate 10,000 time units, every input combination held for 1,000
     time units, inputs clamped to the 15-molecule threshold — the
     paper's experimental protocol. *)
  let experiment = Experiment.run circuit in

  (* Algorithm 1: digitise, split by input case, filter, and build the
     Boolean expression with its percentage fitness. *)
  let result, verification = Verify.experiment experiment in
  Format.printf "%a@.@.%a@."
    (Report.pp_result ~output_name:circuit.Circuit.output)
    result Report.pp_verification verification;

  if verification.Verify.verified then
    print_endline "\nThe genetic AND gate behaves as intended."
  else begin
    print_endline "\nUnexpected: the AND gate did not verify.";
    exit 1
  end
