(* Threshold robustness study (the paper's Fig. 5).

   The same circuit behaves differently when the threshold value — and
   with it the amount of molecules applied as a logic-1 input — is set
   very low or very high. The paper demonstrates this on circuit 0x0B
   with thresholds 3 and 40; here we sweep the whole range and also show
   D-VASim's automatic threshold estimation, which places the threshold
   between the two output populations.

   Run with: dune exec examples/threshold_robustness.exe *)

module Cello = Glc_gates.Cello
module Circuit = Glc_gates.Circuit
module Protocol = Glc_dvasim.Protocol
module Experiment = Glc_dvasim.Experiment
module Threshold = Glc_dvasim.Threshold
module Analyzer = Glc_core.Analyzer
module Verify = Glc_core.Verify

let () =
  let circuit = Cello.circuit_0x0B () in
  let expected_expr =
    match Glc_logic.Truth_table.minterms circuit.Circuit.expected with
    | [] -> Glc_logic.Expr.False
    | [ m ] -> Analyzer.product_of_row ~inputs:circuit.Circuit.inputs m
    | ms ->
        Glc_logic.Expr.Or
          (List.map
             (Analyzer.product_of_row ~inputs:circuit.Circuit.inputs)
             ms)
  in
  Format.printf "Circuit 0x0B, expected %s = %a@.@." circuit.Circuit.output
    Glc_logic.Expr.pp expected_expr;

  Format.printf "%9s %-9s %8s %10s  %s@." "threshold" "verdict" "fitness"
    "total-var" "extracted expression";
  List.iter
    (fun threshold ->
      let protocol = Protocol.with_threshold Protocol.default threshold in
      let e = Experiment.run ~protocol circuit in
      let result, verification = Verify.experiment e in
      let total_var =
        Array.fold_left
          (fun acc c -> acc + c.Analyzer.variations)
          0 result.Analyzer.cases
      in
      Format.printf "%9g %-9s %7.2f%% %10d  %s@." threshold
        (if verification.Verify.verified then "verified" else "WRONG")
        result.Analyzer.fitness total_var
        (Glc_logic.Expr.to_string result.Analyzer.expr))
    [ 3.; 8.; 15.; 25.; 40.; 60.; 80.; 90. ];

  (* D-VASim's threshold analysis recovers a sensible operating point
     from the simulation itself. *)
  let estimate = Threshold.estimate circuit in
  Format.printf "@.Estimated from simulation: %a@." Threshold.pp estimate;

  (* The packaged robustness study: operating window plus Monte-Carlo
     yield under part-to-part parameter variation. *)
  let window = Glc_core.Robustness.threshold_window circuit in
  (match Glc_core.Robustness.operating_range window with
  | Some (lo, hi) ->
      Format.printf "Verified operating window: %g .. %g molecules@." lo hi
  | None -> Format.printf "No verified operating point!@.");
  let y =
    Glc_core.Robustness.parametric_yield ~trials:10 ~spread:0.2 circuit
  in
  Format.printf "Under 20%% part variation: %a@." Glc_core.Robustness.pp_yield
    y
