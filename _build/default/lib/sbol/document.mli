(** Structural (SBOL-style) descriptions of genetic circuits.

    SBOL describes a circuit's composition — DNA parts and the molecular
    interactions between them — but not its behaviour (no kinetics). Cello
    emits such descriptions; the converter of Roehner et al. turns them
    into behavioural SBML models. This module is the structural side:
    {!To_model} is the converter.

    The subset kept here is what genetic logic circuits need: promoters,
    ribosome binding sites, coding sequences and terminators on the DNA
    side; proteins on the species side; and production, repression and
    activation interactions. *)

type role = Promoter | Rbs | Cds | Terminator

type dna_part = { part_id : string; part_role : role; part_name : string }

type protein = {
  prot_id : string;
  prot_name : string;
  prot_reporter : bool;
      (** reporters (GFP, YFP, RFP) are the observable outputs *)
}

type interaction =
  | Production of { prom : string; prot : string }
      (** promoter [prom] transcribes a gene whose product is [prot] *)
  | Repression of { repressor : string; prom : string }
      (** protein [repressor] represses promoter [prom] *)
  | Activation of { activator : string; prom : string }

type t = {
  doc_id : string;
  doc_parts : dna_part list;
  doc_proteins : protein list;
  doc_interactions : interaction list;
}

val part : ?name:string -> role -> string -> dna_part
val protein : ?name:string -> ?reporter:bool -> string -> protein

val make :
  id:string ->
  parts:dna_part list ->
  proteins:protein list ->
  interactions:interaction list ->
  t
(** @raise Invalid_argument when {!validate} reports errors. *)

val validate : t -> string list
(** Diagnostics: duplicate ids, interactions referencing unknown parts or
    proteins, production from a non-promoter part, several productions on
    one promoter. Empty means valid. *)

val find_part : t -> string -> dna_part option
val find_protein : t -> string -> protein option

val producers : t -> string -> string list
(** [producers doc prot] lists the promoters producing protein [prot]. *)

val regulators : t -> string -> [ `Repressor of string | `Activator of string ] list
(** Regulating proteins of a promoter, in declaration order. *)

val production : t -> string -> string option
(** [production doc prom] is the protein produced by promoter [prom]. *)

val input_proteins : t -> string list
(** Proteins that no promoter produces — the circuit's external inputs,
    driven by the virtual laboratory. *)

val output_proteins : t -> string list
(** Reporter proteins, or (if none is flagged) proteins that regulate no
    promoter. *)

val pp : Format.formatter -> t -> unit

val to_dot : t -> string
(** Graphviz rendering of the regulatory network: promoters as boxes,
    proteins as ellipses (inputs shaded, reporters doubled), production
    as solid arrows, repression as tee-headed edges, activation as open
    arrows. Feed to [dot -Tsvg]. *)
