lib/sbol/to_model.mli: Document Glc_model
