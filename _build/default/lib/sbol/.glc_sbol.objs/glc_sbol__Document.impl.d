lib/sbol/document.ml: Buffer Format Hashtbl List Option Printf String
