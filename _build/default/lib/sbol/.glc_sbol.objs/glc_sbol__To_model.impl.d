lib/sbol/to_model.ml: Document Glc_model List Printf String
