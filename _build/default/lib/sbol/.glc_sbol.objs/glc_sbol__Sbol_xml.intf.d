lib/sbol/sbol_xml.mli: Document Glc_model
