lib/sbol/document.mli: Format
