lib/sbol/sbol_xml.ml: Document Fun Glc_model List Option Printf Result String
