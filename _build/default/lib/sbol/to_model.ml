module Model = Glc_model.Model
module Math = Glc_model.Math

type kinetics = { ymax : float; ymin : float; k : float; n : float }

let default_kinetics = { ymax = 5.0; ymin = 0.05; k = 12.0; n = 2.5 }
let default_degradation = 0.05

let convert ?kinetics ?affinity ?degradation ?initial (doc : Document.t) =
  (match Document.validate doc with
  | [] -> ()
  | errs ->
      invalid_arg
        (Printf.sprintf "To_model.convert: %s" (String.concat "; " errs)));
  let kinetics =
    match kinetics with Some f -> f | None -> fun _ -> default_kinetics
  in
  let affinity = match affinity with Some f -> f | None -> fun _ -> None in
  let degradation =
    match degradation with Some f -> f | None -> fun _ -> default_degradation
  in
  let initial = match initial with Some f -> f | None -> fun _ -> 0. in
  let inputs = Document.input_proteins doc in
  let species =
    List.map
      (fun (p : Document.protein) ->
        Model.species ~name:p.prot_name
          ~boundary:(List.mem p.prot_id inputs)
          p.prot_id (initial p.prot_id))
      doc.doc_proteins
  in
  (* One production reaction per producing promoter. Parameters are
     emitted per promoter / regulator so the SBML output is
     self-describing. *)
  let parameters = ref [] in
  let param id v =
    parameters := Model.parameter id v :: !parameters;
    Math.var id
  in
  let productions =
    List.filter_map
      (fun (part : Document.dna_part) ->
        match (part.part_role, Document.production doc part.part_id) with
        | Document.Promoter, Some prot ->
            let prom = part.part_id in
            let kin = kinetics prom in
            let regulators = Document.regulators doc prom in
            let rate =
              if regulators = [] then param (prom ^ "_ymax") kin.ymax
              else begin
                let ymax = param (prom ^ "_ymax") kin.ymax in
                let ymin = param (prom ^ "_ymin") kin.ymin in
                let factor regulator =
                  let protein, repressing =
                    match regulator with
                    | `Repressor r -> (r, true)
                    | `Activator a -> (a, false)
                  in
                  let k_val, n_val =
                    match affinity protein with
                    | Some (k, n) -> (k, n)
                    | None -> (kin.k, kin.n)
                  in
                  let suffix = if repressing then "r" else "a" in
                  let k =
                    param (prom ^ "_" ^ protein ^ "_K" ^ suffix) k_val
                  in
                  let n =
                    param (prom ^ "_" ^ protein ^ "_n" ^ suffix) n_val
                  in
                  let kn = Math.(k ** n) in
                  let xn = Math.(var protein ** n) in
                  if repressing then Math.(kn / (kn + xn))
                  else Math.(xn / (kn + xn))
                in
                let product =
                  match List.map factor regulators with
                  | [] -> assert false
                  | f :: fs -> List.fold_left Math.( * ) f fs
                in
                Math.(ymin + ((ymax - ymin) * product))
              end
            in
            let modifiers =
              List.sort_uniq String.compare
                (List.map
                   (function `Repressor r -> r | `Activator a -> a)
                   regulators)
            in
            Some
              (Model.reaction
                 ~products:[ (prot, 1) ]
                 ~modifiers ~rate ("prod_" ^ prom))
        | (Document.Promoter | Document.Rbs | Document.Cds
          | Document.Terminator), _ ->
            None)
      doc.doc_parts
  in
  let degradations =
    List.filter_map
      (fun (p : Document.protein) ->
        if List.mem p.prot_id inputs then None
        else begin
          let gamma = param (p.prot_id ^ "_deg") (degradation p.prot_id) in
          Some
            (Model.reaction
               ~reactants:[ (p.prot_id, 1) ]
               ~rate:Math.(gamma * var p.prot_id)
               ("deg_" ^ p.prot_id))
        end)
      doc.doc_proteins
  in
  Model.make ~id:doc.doc_id ~species
    ~parameters:(List.rev !parameters)
    ~reactions:(productions @ degradations)
    ()
