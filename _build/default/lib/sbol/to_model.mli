(** SBOL-to-kinetic-model conversion (after Roehner et al., ACS Synth.
    Biol. 2015).

    SBOL carries no behaviour, so the converter supplies reaction
    kinetics: each producing promoter becomes one production reaction
    whose propensity is a thermodynamic occupancy model of its operator
    sites, and every produced protein gets a first-order degradation
    reaction. Input proteins (produced by no promoter) become boundary
    species that the virtual laboratory clamps.

    The propensity of a promoter with regulators [r1 .. rk] is

    [ymin + (ymax - ymin) * product of per-regulator factors]

    where a repressor [r] contributes [K^n / (K^n + r^n)] and an
    activator contributes [r^n / (K^n + r^n)] — independent binding
    sites, so tandem repression multiplies. Transcription strength
    ([ymax], [ymin]) is a property of the {e promoter}; binding affinity
    ([K], [n]) is a property of the {e regulator protein} (supplied via
    [affinity], falling back to the promoter's default). A promoter with
    no regulators is constitutive at [ymax]. *)

module Model := Glc_model.Model

type kinetics = {
  ymax : float;  (** maximal production propensity, molecules per t.u. *)
  ymin : float;  (** leaky production propensity *)
  k : float;  (** default regulator half-response amount, molecules *)
  n : float;  (** default Hill coefficient *)
}

val default_kinetics : kinetics
(** [ymax = 5.0], [ymin = 0.05], [k = 12.0], [n = 2.5] — molecule-count
    scaled from the response ranges in Nielsen et al. (Science 2016);
    with the default degradation [0.05] a fully active promoter settles
    near 100 molecules and a repressed one near 1, bracketing the paper's
    15-molecule threshold with a 5-7x margin on both sides. *)

val default_degradation : float

val convert :
  ?kinetics:(string -> kinetics) ->
  ?affinity:(string -> (float * float) option) ->
  ?degradation:(string -> float) ->
  ?initial:(string -> float) ->
  Document.t ->
  Model.t
(** [convert doc] builds the kinetic model. [kinetics] maps a promoter id
    to its parameters (default: {!default_kinetics} for all); [affinity]
    maps a regulator protein id to its binding [(K, n)] (default: the
    regulated promoter's [k], [n]); [degradation] maps a protein id to
    its decay rate; [initial] maps a protein id to its initial amount
    (default 0).
    @raise Invalid_argument if [doc] fails {!Document.validate}. *)
