type role = Promoter | Rbs | Cds | Terminator

type dna_part = { part_id : string; part_role : role; part_name : string }

type protein = { prot_id : string; prot_name : string; prot_reporter : bool }

type interaction =
  | Production of { prom : string; prot : string }
  | Repression of { repressor : string; prom : string }
  | Activation of { activator : string; prom : string }

type t = {
  doc_id : string;
  doc_parts : dna_part list;
  doc_proteins : protein list;
  doc_interactions : interaction list;
}

let part ?name role id =
  {
    part_id = id;
    part_role = role;
    part_name = (match name with Some n -> n | None -> id);
  }

let protein ?name ?(reporter = false) id =
  {
    prot_id = id;
    prot_name = (match name with Some n -> n | None -> id);
    prot_reporter = reporter;
  }

let find_part doc id =
  List.find_opt (fun p -> String.equal p.part_id id) doc.doc_parts

let find_protein doc id =
  List.find_opt (fun p -> String.equal p.prot_id id) doc.doc_proteins

let duplicates ids =
  let seen = Hashtbl.create 16 in
  List.filter_map
    (fun id ->
      if Hashtbl.mem seen id then Some id
      else begin
        Hashtbl.replace seen id ();
        None
      end)
    ids

let validate doc =
  let errs = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
  List.iter
    (err "duplicate part id %S")
    (duplicates (List.map (fun p -> p.part_id) doc.doc_parts));
  List.iter
    (err "duplicate protein id %S")
    (duplicates (List.map (fun p -> p.prot_id) doc.doc_proteins));
  let check_promoter ctx id =
    match find_part doc id with
    | None -> err "%s references unknown part %S" ctx id
    | Some { part_role = Promoter; _ } -> ()
    | Some _ -> err "%s: part %S is not a promoter" ctx id
  in
  let check_protein ctx id =
    if find_protein doc id = None then
      err "%s references unknown protein %S" ctx id
  in
  List.iter
    (function
      | Production { prom; prot } ->
          check_promoter "production" prom;
          check_protein "production" prot
      | Repression { repressor; prom } ->
          check_protein "repression" repressor;
          check_promoter "repression" prom
      | Activation { activator; prom } ->
          check_protein "activation" activator;
          check_promoter "activation" prom)
    doc.doc_interactions;
  let production_counts = Hashtbl.create 16 in
  List.iter
    (function
      | Production { prom; _ } ->
          Hashtbl.replace production_counts prom
            (1 + Option.value ~default:0 (Hashtbl.find_opt production_counts prom))
      | Repression _ | Activation _ -> ())
    doc.doc_interactions;
  Hashtbl.iter
    (fun prom n ->
      if n > 1 then err "promoter %S has %d production interactions" prom n)
    production_counts;
  List.rev !errs

let make ~id ~parts ~proteins ~interactions =
  let doc =
    {
      doc_id = id;
      doc_parts = parts;
      doc_proteins = proteins;
      doc_interactions = interactions;
    }
  in
  match validate doc with
  | [] -> doc
  | errs ->
      invalid_arg
        (Printf.sprintf "Document.make %S: %s" id (String.concat "; " errs))

let producers doc prot =
  List.filter_map
    (function
      | Production { prom; prot = p } when String.equal p prot -> Some prom
      | Production _ | Repression _ | Activation _ -> None)
    doc.doc_interactions

let regulators doc prom =
  List.filter_map
    (function
      | Repression { repressor; prom = p } when String.equal p prom ->
          Some (`Repressor repressor)
      | Activation { activator; prom = p } when String.equal p prom ->
          Some (`Activator activator)
      | Production _ | Repression _ | Activation _ -> None)
    doc.doc_interactions

let production doc prom =
  List.find_map
    (function
      | Production { prom = p; prot } when String.equal p prom -> Some prot
      | Production _ | Repression _ | Activation _ -> None)
    doc.doc_interactions

let input_proteins doc =
  List.filter_map
    (fun p -> if producers doc p.prot_id = [] then Some p.prot_id else None)
    doc.doc_proteins

let output_proteins doc =
  let reporters =
    List.filter_map
      (fun p -> if p.prot_reporter then Some p.prot_id else None)
      doc.doc_proteins
  in
  if reporters <> [] then reporters
  else
    let regulates prot =
      List.exists
        (function
          | Repression { repressor; _ } -> String.equal repressor prot
          | Activation { activator; _ } -> String.equal activator prot
          | Production _ -> false)
        doc.doc_interactions
    in
    List.filter_map
      (fun p -> if regulates p.prot_id then None else Some p.prot_id)
      doc.doc_proteins

let to_dot doc =
  let buf = Buffer.create 1024 in
  let inputs = input_proteins doc in
  Buffer.add_string buf (Printf.sprintf "digraph %S {\n" doc.doc_id);
  Buffer.add_string buf "  rankdir=LR;\n";
  List.iter
    (fun p ->
      match p.part_role with
      | Promoter ->
          Buffer.add_string buf
            (Printf.sprintf "  %S [shape=box, style=rounded];\n" p.part_id)
      | Rbs | Cds | Terminator -> ())
    doc.doc_parts;
  List.iter
    (fun p ->
      let attrs =
        if p.prot_reporter then "shape=doublecircle"
        else if List.mem p.prot_id inputs then
          "shape=ellipse, style=filled, fillcolor=lightgrey"
        else "shape=ellipse"
      in
      Buffer.add_string buf (Printf.sprintf "  %S [%s];\n" p.prot_id attrs))
    doc.doc_proteins;
  List.iter
    (fun i ->
      match i with
      | Production { prom; prot } ->
          Buffer.add_string buf (Printf.sprintf "  %S -> %S;\n" prom prot)
      | Repression { repressor; prom } ->
          Buffer.add_string buf
            (Printf.sprintf "  %S -> %S [arrowhead=tee, color=red];\n"
               repressor prom)
      | Activation { activator; prom } ->
          Buffer.add_string buf
            (Printf.sprintf "  %S -> %S [arrowhead=empty, color=blue];\n"
               activator prom))
    doc.doc_interactions;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let pp_role ppf = function
  | Promoter -> Format.pp_print_string ppf "promoter"
  | Rbs -> Format.pp_print_string ppf "RBS"
  | Cds -> Format.pp_print_string ppf "CDS"
  | Terminator -> Format.pp_print_string ppf "terminator"

let pp ppf doc =
  Format.fprintf ppf "@[<v>document %s: %d parts, %d proteins, %d interactions"
    doc.doc_id
    (List.length doc.doc_parts)
    (List.length doc.doc_proteins)
    (List.length doc.doc_interactions);
  List.iter
    (fun p -> Format.fprintf ppf "@,  part %s (%a)" p.part_id pp_role p.part_role)
    doc.doc_parts;
  List.iter
    (fun p ->
      Format.fprintf ppf "@,  protein %s%s" p.prot_id
        (if p.prot_reporter then " (reporter)" else ""))
    doc.doc_proteins;
  List.iter
    (fun i ->
      match i with
      | Production { prom; prot } ->
          Format.fprintf ppf "@,  %s produces %s" prom prot
      | Repression { repressor; prom } ->
          Format.fprintf ppf "@,  %s represses %s" repressor prom
      | Activation { activator; prom } ->
          Format.fprintf ppf "@,  %s activates %s" activator prom)
    doc.doc_interactions;
  Format.fprintf ppf "@]"
