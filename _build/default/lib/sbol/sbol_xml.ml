module Xml = Glc_model.Xml

let role_to_string = function
  | Document.Promoter -> "promoter"
  | Document.Rbs -> "rbs"
  | Document.Cds -> "cds"
  | Document.Terminator -> "terminator"

let role_of_string = function
  | "promoter" -> Ok Document.Promoter
  | "rbs" -> Ok Document.Rbs
  | "cds" -> Ok Document.Cds
  | "terminator" -> Ok Document.Terminator
  | other -> Error (Printf.sprintf "unknown part role %S" other)

let to_xml (doc : Document.t) =
  let part (p : Document.dna_part) =
    Xml.element "part"
      ~attrs:
        [
          ("id", p.part_id);
          ("role", role_to_string p.part_role);
          ("name", p.part_name);
        ]
      []
  in
  let protein (p : Document.protein) =
    Xml.element "protein"
      ~attrs:
        [
          ("id", p.prot_id);
          ("name", p.prot_name);
          ("reporter", if p.prot_reporter then "true" else "false");
        ]
      []
  in
  let interaction = function
    | Document.Production { prom; prot } ->
        Xml.element "production"
          ~attrs:[ ("promoter", prom); ("protein", prot) ]
          []
    | Document.Repression { repressor; prom } ->
        Xml.element "repression"
          ~attrs:[ ("repressor", repressor); ("promoter", prom) ]
          []
    | Document.Activation { activator; prom } ->
        Xml.element "activation"
          ~attrs:[ ("activator", activator); ("promoter", prom) ]
          []
  in
  Xml.element "sbol"
    ~attrs:[ ("id", doc.doc_id) ]
    (List.map part doc.doc_parts
    @ List.map protein doc.doc_proteins
    @ List.map interaction doc.doc_interactions)

let to_string doc = Xml.to_string (to_xml doc)

let ( let* ) = Result.bind

let require_attr name node =
  match Xml.attr name node with
  | Some v -> Ok v
  | None ->
      Error
        (Printf.sprintf "missing attribute %S on <%s>" name
           (match Xml.tag node with Some t -> t | None -> "?"))

let collect f nodes =
  List.fold_left
    (fun acc n ->
      let* acc = acc in
      let* x = f n in
      Ok (x :: acc))
    (Ok []) nodes
  |> Result.map List.rev

let of_xml node =
  match node with
  | Xml.Element ("sbol", _, _) ->
      let id = Option.value ~default:"circuit" (Xml.attr "id" node) in
      let* parts =
        collect
          (fun n ->
            let* id = require_attr "id" n in
            let* role_s = require_attr "role" n in
            let* role = role_of_string role_s in
            let name = Option.value ~default:id (Xml.attr "name" n) in
            Ok (Document.part ~name role id))
          (Xml.childs "part" node)
      in
      let* proteins =
        collect
          (fun n ->
            let* id = require_attr "id" n in
            let name = Option.value ~default:id (Xml.attr "name" n) in
            let reporter =
              match Xml.attr "reporter" n with
              | Some "true" -> true
              | Some _ | None -> false
            in
            Ok (Document.protein ~name ~reporter id))
          (Xml.childs "protein" node)
      in
      let* productions =
        collect
          (fun n ->
            let* prom = require_attr "promoter" n in
            let* prot = require_attr "protein" n in
            Ok (Document.Production { prom; prot }))
          (Xml.childs "production" node)
      in
      let* repressions =
        collect
          (fun n ->
            let* repressor = require_attr "repressor" n in
            let* prom = require_attr "promoter" n in
            Ok (Document.Repression { repressor; prom }))
          (Xml.childs "repression" node)
      in
      let* activations =
        collect
          (fun n ->
            let* activator = require_attr "activator" n in
            let* prom = require_attr "promoter" n in
            Ok (Document.Activation { activator; prom }))
          (Xml.childs "activation" node)
      in
      let doc =
        {
          Document.doc_id = id;
          doc_parts = parts;
          doc_proteins = proteins;
          doc_interactions = productions @ repressions @ activations;
        }
      in
      (match Document.validate doc with
      | [] -> Ok doc
      | errs -> Error (String.concat "; " errs))
  | Xml.Element (tag, _, _) ->
      Error (Printf.sprintf "expected <sbol> root, found <%s>" tag)
  | Xml.Text _ -> Error "expected <sbol> root, found text"

let of_string s =
  let* xml = Xml.parse s in
  of_xml xml

let write_file path doc =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string doc))

let read_file path =
  let ic = open_in path in
  let content =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  of_string content
