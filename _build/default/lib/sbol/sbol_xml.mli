(** XML serialisation of structural circuit documents.

    A flat, readable subset standing in for SBOL's RDF/XML (which layers
    RDF machinery this toolchain does not need):

    {v
    <sbol id="0x0B">
      <part id="pTac" role="promoter"/>
      <protein id="LacI"/>
      <protein id="YFP" reporter="true"/>
      <production promoter="pTac" protein="PhlF"/>
      <repression repressor="LacI" promoter="pTac"/>
    </sbol>
    v} *)

module Xml := Glc_model.Xml

val to_xml : Document.t -> Xml.t
val to_string : Document.t -> string

val of_xml : Xml.t -> (Document.t, string) result
val of_string : string -> (Document.t, string) result

val write_file : string -> Document.t -> unit
val read_file : string -> (Document.t, string) result
