module Truth_table = Glc_logic.Truth_table
module Experiment = Glc_dvasim.Experiment
module Circuit = Glc_gates.Circuit

type report = {
  expected : Truth_table.t;
  extracted : Truth_table.t;
  wrong_states : int list;
  verified : bool;
  fitness : float;
}

let against ~expected (r : Analyzer.result) =
  if Truth_table.arity expected <> r.Analyzer.arity then
    invalid_arg "Verify.against: arity mismatch";
  let extracted = Analyzer.extracted_table r in
  let wrong_states =
    List.filter
      (fun row -> Truth_table.output expected row <> Truth_table.output extracted row)
      (List.init (Truth_table.rows expected) Fun.id)
  in
  {
    expected;
    extracted;
    wrong_states;
    verified = wrong_states = [];
    fitness = r.Analyzer.fitness;
  }

let experiment ?params (e : Experiment.t) =
  let r = Analyzer.of_experiment ?params e in
  (r, against ~expected:e.Experiment.circuit.Circuit.expected r)

type cause = Unobserved | Unstable_output | Weak_output | Unexpected_high

type finding = { f_row : int; f_cause : cause }

let diagnose (r : Analyzer.result) report =
  if Truth_table.arity report.expected <> r.Analyzer.arity then
    invalid_arg "Verify.diagnose: arity mismatch";
  List.map
    (fun row ->
      let c = r.Analyzer.cases.(row) in
      let cause =
        if Truth_table.output report.expected row then
          (* expected high, extracted low *)
          if c.Analyzer.case_count = 0 then Unobserved
          else if not c.Analyzer.passes_fov then Unstable_output
          else Weak_output
        else Unexpected_high
      in
      { f_row = row; f_cause = cause })
    report.wrong_states

let combination_string ~arity row =
  String.init arity (fun j ->
      if (row lsr (arity - 1 - j)) land 1 = 1 then '1' else '0')

let pp_finding ~arity ppf f =
  let combination = combination_string ~arity f.f_row in
  match f.f_cause with
  | Unobserved ->
      Format.fprintf ppf
        "%s: never applied during the run — lengthen the simulation so \
         every combination gets a slot"
        combination
  | Unstable_output ->
      Format.fprintf ppf
        "%s: output oscillates around the threshold (rejected by eq. 1) \
         — adjust the threshold or the gate's noise margins"
        combination
  | Weak_output ->
      Format.fprintf ppf
        "%s: output mostly below threshold (rejected by eq. 2), \
         typically a stale or slow transition — lengthen the hold time"
        combination
  | Unexpected_high ->
      Format.fprintf ppf
        "%s: stable logic-1 where the intent says 0 — the circuit \
         computes a different function at this operating point"
        combination
