module Truth_table = Glc_logic.Truth_table

type extraction = {
  b_name : string;
  b_minterms : int list;
  b_table : Truth_table.t;
}

let make ~name ~arity minterms =
  {
    b_name = name;
    b_minterms = minterms;
    b_table = Truth_table.of_minterms ~arity minterms;
  }

let majority_only ~threshold (data : Analyzer.data) =
  let streams = Analyzer.case_streams ~threshold data in
  let minterms =
    List.concat
      (List.mapi
         (fun row stream ->
           let case = Array.length stream in
           if case > 0 && 2 * Digital.count_high stream > case then [ row ]
           else [])
         (Array.to_list streams))
  in
  make ~name:"majority only (eq. 2)"
    ~arity:(Array.length data.Analyzer.inputs)
    minterms

let stability_only ~threshold ~fov_ud (data : Analyzer.data) =
  let streams = Analyzer.case_streams ~threshold data in
  let minterms =
    List.concat
      (List.mapi
         (fun row stream ->
           let case = Array.length stream in
           if case = 0 then []
           else begin
             let fov =
               float_of_int (Digital.count_variations stream)
               /. float_of_int case
             in
             if Digital.count_high stream > 0 && fov < fov_ud then [ row ]
             else []
           end)
         (Array.to_list streams))
  in
  make ~name:"stability only (eq. 1)"
    ~arity:(Array.length data.Analyzer.inputs)
    minterms

(* Reads the output once per hold slot: the sample just before the
   applied combination changes (and the final sample of the run). *)
let endpoint_sampling ~threshold (data : Analyzer.data) =
  let inputs = data.Analyzer.inputs in
  let n = Array.length inputs in
  let digital_inputs =
    Array.map
      (fun id -> Digital.of_trace ~threshold data.Analyzer.trace id)
      inputs
  in
  let digital_output =
    Digital.of_trace ~threshold data.Analyzer.trace data.Analyzer.output
  in
  let samples = Array.length digital_output in
  let row_at k =
    let row = ref 0 in
    for j = 0 to n - 1 do
      row := (!row lsl 1) lor (if digital_inputs.(j).(k) then 1 else 0)
    done;
    !row
  in
  let nc = 1 lsl n in
  let highs = Array.make nc 0 and reads = Array.make nc 0 in
  for k = 0 to samples - 1 do
    let block_ends = k = samples - 1 || row_at (k + 1) <> row_at k in
    if block_ends then begin
      let row = row_at k in
      reads.(row) <- reads.(row) + 1;
      if digital_output.(k) then highs.(row) <- highs.(row) + 1
    end
  done;
  let minterms =
    List.filter
      (fun row -> reads.(row) > 0 && 2 * highs.(row) > reads.(row))
      (List.init nc Fun.id)
  in
  make ~name:"endpoint sampling" ~arity:n minterms

let full ?params (data : Analyzer.data) =
  let r = Analyzer.run ?params data in
  make ~name:"Algorithm 1 (both filters)" ~arity:r.Analyzer.arity
    r.Analyzer.minterms

let wrong_states ~expected e =
  Truth_table.hamming_distance expected e.b_table
