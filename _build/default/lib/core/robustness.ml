module Circuit = Glc_gates.Circuit
module To_model = Glc_sbol.To_model
module Protocol = Glc_dvasim.Protocol
module Experiment = Glc_dvasim.Experiment
module Rng = Glc_ssa.Rng

type window_point = {
  w_threshold : float;
  w_verified : bool;
  w_fitness : float;
  w_variations : int;
}

let default_sweep = [ 3.; 8.; 15.; 25.; 40.; 60.; 80.; 90. ]

let threshold_window ?(protocol = Protocol.default)
    ?(thresholds = default_sweep) circuit =
  List.map
    (fun threshold ->
      let protocol = Protocol.with_threshold protocol threshold in
      let e = Experiment.run ~protocol circuit in
      let r, v = Verify.experiment e in
      {
        w_threshold = threshold;
        w_verified = v.Verify.verified;
        w_fitness = r.Analyzer.fitness;
        w_variations =
          Array.fold_left
            (fun acc c -> acc + c.Analyzer.variations)
            0 r.Analyzer.cases;
      })
    thresholds

let operating_range points =
  let verified =
    List.filter_map
      (fun p -> if p.w_verified then Some p.w_threshold else None)
      points
  in
  match verified with
  | [] -> None
  | t :: rest ->
      Some
        (List.fold_left Float.min t rest, List.fold_left Float.max t rest)

type yield = {
  y_trials : int;
  y_verified : int;
  y_mean_fitness : float;
}

(* Log-normal factor with sigma = spread. *)
let perturbation rng ~spread = Float.exp (spread *. Rng.gaussian rng)

let perturb_circuit rng ~spread (c : Circuit.t) =
  let promoter_kinetics =
    List.map
      (fun (prom, (k : To_model.kinetics)) ->
        let f = perturbation rng ~spread in
        (* strength and leakage co-vary (same promoter copy number) *)
        (prom, { k with To_model.ymax = k.ymax *. f; ymin = k.ymin *. f }))
      c.Circuit.promoter_kinetics
  in
  let regulator_affinity =
    List.map
      (fun (prot, (k, n)) -> (prot, (k *. perturbation rng ~spread, n)))
      c.Circuit.regulator_affinity
  in
  Circuit.make ~name:c.Circuit.name ~document:c.Circuit.document
    ~inputs:c.Circuit.inputs ~output:c.Circuit.output
    ~expected:c.Circuit.expected ~promoter_kinetics ~regulator_affinity ()

let parametric_yield ?(protocol = Protocol.default) ?(trials = 20)
    ?(spread = 0.2) circuit =
  if trials <= 0 then invalid_arg "Robustness.parametric_yield: trials <= 0";
  if spread < 0. then invalid_arg "Robustness.parametric_yield: spread < 0";
  let rng = Rng.create (protocol.Protocol.seed + 0x5EED) in
  let verified = ref 0 in
  let fitness_sum = ref 0. in
  for trial = 0 to trials - 1 do
    let candidate = perturb_circuit rng ~spread circuit in
    let protocol =
      { protocol with Protocol.seed = protocol.Protocol.seed + trial }
    in
    let e = Experiment.run ~protocol candidate in
    let r, v = Verify.experiment e in
    if v.Verify.verified then begin
      incr verified;
      fitness_sum := !fitness_sum +. r.Analyzer.fitness
    end
  done;
  {
    y_trials = trials;
    y_verified = !verified;
    y_mean_fitness =
      (if !verified = 0 then nan
       else !fitness_sum /. float_of_int !verified);
  }

let pp_yield ppf y =
  Format.fprintf ppf "%d/%d trials verified (%.0f%% parametric yield%s)"
    y.y_verified y.y_trials
    (100. *. float_of_int y.y_verified /. float_of_int y.y_trials)
    (if y.y_verified = 0 then ""
     else Format.asprintf ", mean fitness %.2f%%" y.y_mean_fitness)
