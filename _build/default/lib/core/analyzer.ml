module Trace = Glc_ssa.Trace
module Expr = Glc_logic.Expr
module Truth_table = Glc_logic.Truth_table
module Experiment = Glc_dvasim.Experiment
module Protocol = Glc_dvasim.Protocol
module Circuit = Glc_gates.Circuit

type params = { threshold : float; fov_ud : float }

let default_params = { threshold = 15.; fov_ud = 0.25 }

type data = { trace : Trace.t; inputs : string array; output : string }

type case_stats = {
  row : int;
  case_count : int;
  high_count : int;
  variations : int;
  fov_est : float;
  passes_fov : bool;
  passes_majority : bool;
  included : bool;
}

type result = {
  arity : int;
  inputs : string array;
  params : params;
  cases : case_stats array;
  minterms : int list;
  expr : Expr.t;
  fitness : float;
}

let check_data (data : data) =
  let n = Array.length data.inputs in
  if n = 0 then invalid_arg "Analyzer: no input species selected";
  if n > 16 then invalid_arg "Analyzer: more than 16 input species";
  let missing id = Trace.index data.trace id = None in
  Array.iter
    (fun id ->
      if missing id then
        invalid_arg
          (Printf.sprintf "Analyzer: input species %S not in the trace" id))
    data.inputs;
  if missing data.output then
    invalid_arg
      (Printf.sprintf "Analyzer: output species %S not in the trace"
         data.output)

(* CaseAnalyzer: row of sample k from the digitised inputs (I1 is the most
   significant bit), output bit appended to that row's stream. *)
let case_streams ?smooth_window ~threshold (data : data) =
  check_data data;
  let n = Array.length data.inputs in
  let digital_inputs =
    Array.map (fun id -> Digital.of_trace ~threshold data.trace id)
      data.inputs
  in
  let digital_output = Digital.of_trace ~threshold data.trace data.output in
  let digital_output =
    match smooth_window with
    | Some window -> Digital.majority_smooth ~window digital_output
    | None -> digital_output
  in
  let samples = Array.length digital_output in
  let nc = 1 lsl n in
  let buffers = Array.init nc (fun _ -> Buffer.create 256) in
  for k = 0 to samples - 1 do
    let row = ref 0 in
    for j = 0 to n - 1 do
      row := (!row lsl 1) lor (if digital_inputs.(j).(k) then 1 else 0)
    done;
    Buffer.add_char buffers.(!row) (if digital_output.(k) then '1' else '0')
  done;
  Array.map
    (fun buf ->
      let s = Buffer.contents buf in
      Array.init (String.length s) (fun i -> s.[i] = '1'))
    buffers

let product_of_row ~inputs row =
  let n = Array.length inputs in
  let lits =
    Array.to_list
      (Array.mapi
         (fun j name ->
           if (row lsr (n - 1 - j)) land 1 = 1 then Expr.Var name
           else Expr.Not (Var name))
         inputs)
  in
  match lits with [] -> Expr.True | [ l ] -> l | ls -> Expr.And ls

let expr_of_minterms ~inputs minterms =
  let nc = 1 lsl Array.length inputs in
  match minterms with
  | [] -> Expr.False
  | ms when List.length ms = nc -> Expr.True
  | ms -> (
      match List.map (product_of_row ~inputs) ms with
      | [ p ] -> p
      | ps -> Expr.Or ps)

let run ?(params = default_params) ?smooth_window (data : data) =
  if params.fov_ud <= 0. || params.fov_ud > 1. then
    invalid_arg "Analyzer.run: fov_ud not in (0, 1]";
  let streams =
    case_streams ?smooth_window ~threshold:params.threshold data
  in
  let arity = Array.length data.inputs in
  let nc = Array.length streams in
  let cases =
    Array.mapi
      (fun row stream ->
        let case_count = Array.length stream in
        let high_count = Digital.count_high stream in
        let variations = Digital.count_variations stream in
        if case_count = 0 then
          {
            row;
            case_count;
            high_count;
            variations;
            fov_est = 0.;
            passes_fov = false;
            passes_majority = false;
            included = false;
          }
        else begin
          let fov_est =
            float_of_int variations /. float_of_int case_count
          in
          let passes_fov = fov_est < params.fov_ud in
          let passes_majority = 2 * high_count > case_count in
          {
            row;
            case_count;
            high_count;
            variations;
            fov_est;
            passes_fov;
            passes_majority;
            included = passes_fov && passes_majority;
          }
        end)
      streams
  in
  let minterms =
    Array.to_list cases
    |> List.filter_map (fun c -> if c.included then Some c.row else None)
  in
  let expr = expr_of_minterms ~inputs:data.inputs minterms in
  (* PFoBE, eq. (3): variation of the kept combinations, averaged over all
     nc combinations, as a percentage of perfect stability. *)
  let fov_sum =
    Array.fold_left
      (fun acc c -> if c.included then acc +. c.fov_est else acc)
      0. cases
  in
  let fitness = 100. -. (fov_sum /. float_of_int nc *. 100.) in
  { arity; inputs = Array.copy data.inputs; params; cases; minterms; expr;
    fitness }

let of_experiment ?params (e : Experiment.t) =
  let params =
    match params with
    | Some p -> p
    | None ->
        { default_params with
          threshold = e.Experiment.protocol.Protocol.threshold }
  in
  run ~params
    {
      trace = e.Experiment.trace;
      inputs = e.Experiment.circuit.Circuit.inputs;
      output = e.Experiment.circuit.Circuit.output;
    }

let extracted_table r = Truth_table.of_minterms ~arity:r.arity r.minterms

(* Input j of the display order is row bit (arity - 1 - j), so implicant
   literals (indexed by row bit) are remapped before printing. *)
let minimised_expr r =
  let tt = extracted_table r in
  let arity = r.arity in
  let names = r.inputs in
  let product imp =
    let lits =
      Glc_logic.Qm.implicant_literals ~arity imp
      |> List.map (fun (bit, positive) ->
             let j = arity - 1 - bit in
             (j, if positive then Expr.Var names.(j)
                 else Expr.Not (Var names.(j))))
      |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
      |> List.map snd
    in
    match lits with [] -> Expr.True | [ l ] -> l | ls -> Expr.And ls
  in
  match List.map product (Glc_logic.Qm.minimise tt) with
  | [] -> Expr.False
  | [ p ] -> p
  | ps -> Expr.Or ps
