(** Algorithm 1 of the paper: logic analysis and verification of n-input
    genetic logic circuits from stochastic simulation data.

    Pipeline (named as in the paper):
    {ol
    {- {b ADC} — digitise the selected input and output species with the
       threshold value;}
    {- {b CaseAnalyzer} — split the output bit stream by the input
       combination applied at each sample, giving per-combination output
       streams and their lengths [Case_I];}
    {- {b VariationAnalyzer} — per combination, count the logic-1 samples
       [HIGH_O] and the 0↔1 transitions [O_Var];}
    {- {b ConstBoolExpr} — keep a combination as a minterm iff both
       filters pass:
       eq. (1) [FOV_EST = O_Var / Case_I < FOV_UD] (stability) and
       eq. (2) [HIGH_O > Case_I / 2] (majority);}
    {- {b PFoBE} — eq. (3):
       [100 - (sum of FOV_EST over kept combinations / nc) * 100].}}

    Input combinations are numbered as in {!Glc_gates.Circuit}: input
    [I1] (first in the [inputs] array) is the most significant bit. *)

module Trace := Glc_ssa.Trace
module Expr := Glc_logic.Expr
module Truth_table := Glc_logic.Truth_table
module Experiment := Glc_dvasim.Experiment

type params = {
  threshold : float;  (** ThVAL: logic threshold, molecules *)
  fov_ud : float;  (** FOV_UD: accepted fraction of output variation *)
}

val default_params : params
(** The paper's values: threshold 15 molecules, [fov_ud = 0.25]. *)

type data = {
  trace : Trace.t;  (** SDAn: logged simulation data of all I/O species *)
  inputs : string array;  (** IS: input species, [I1] first *)
  output : string;  (** OS: output species *)
}

type case_stats = {
  row : int;  (** the input combination *)
  case_count : int;  (** Case_I *)
  high_count : int;  (** HIGH_O *)
  variations : int;  (** O_Var *)
  fov_est : float;  (** eq. (1); 0 when the combination never occurs *)
  passes_fov : bool;
  passes_majority : bool;
  included : bool;  (** minterm of the extracted expression *)
}

type result = {
  arity : int;
  inputs : string array;  (** the analysed input species, [I1] first *)
  params : params;
  cases : case_stats array;  (** indexed by combination *)
  minterms : int list;
  expr : Expr.t;  (** extracted Boolean expression over the input names *)
  fitness : float;  (** PFoBE, percent *)
}

val case_streams :
  ?smooth_window:int -> threshold:float -> data -> bool array array
(** The CaseAnalyzer sub-procedure alone: the digitised output stream of
    each input combination (empty for combinations that never occur).
    [smooth_window] applies {!Digital.majority_smooth} to the digitised
    output before splitting (off by default — the paper's filters handle
    glitches statistically; smoothing is the ablation alternative).
    @raise Invalid_argument if [data] names species missing from the
    trace or has no inputs. *)

val run : ?params:params -> ?smooth_window:int -> data -> result
(** The full algorithm.
    @raise Invalid_argument as for {!case_streams}. *)

val of_experiment :
  ?params:params -> Experiment.t -> result
(** Analyses a virtual-laboratory experiment, defaulting the threshold to
    the experiment protocol's and the inputs/output to the circuit's. *)

val extracted_table : result -> Truth_table.t
(** The extracted logic as a truth table (rows = combinations). *)

val minimised_expr : result -> Expr.t
(** The extracted logic as a Quine–McCluskey-minimised sum of products
    (the [expr] field is the canonical minterm form, as the paper prints
    it). Literals keep the input display order. *)

val product_of_row : inputs:string array -> int -> Expr.t
(** The paper-style minterm product for a combination, literals in input
    order (e.g. combination [011] of [I1 I2 I3] gives [I1'.I2.I3]). *)
