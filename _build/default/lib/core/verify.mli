(** Verification of extracted logic against the intended behaviour.

    The paper verifies a circuit by comparing the Boolean expression
    Algorithm 1 extracts with the designer's intent (the circuit's truth
    table); Fig. 5 reports the mismatching combinations as "wrong
    states". *)

module Truth_table := Glc_logic.Truth_table
module Experiment := Glc_dvasim.Experiment

type report = {
  expected : Truth_table.t;
  extracted : Truth_table.t;
  wrong_states : int list;
      (** combinations where extracted and expected logic differ *)
  verified : bool;  (** no wrong states *)
  fitness : float;  (** PFoBE of the analysis *)
}

val against : expected:Truth_table.t -> Analyzer.result -> report
(** @raise Invalid_argument on arity mismatch. *)

val experiment :
  ?params:Analyzer.params -> Experiment.t -> Analyzer.result * report
(** Runs the analysis on an experiment and verifies it against the
    circuit's expected table. *)

(** Why a combination came out wrong — each maps to a concrete remedy. *)
type cause =
  | Unobserved
      (** the combination never occurred in the log: lengthen the run *)
  | Unstable_output
      (** rejected by eq. (1): oscillation around the threshold — move
          the threshold or revisit the gate's noise margins *)
  | Weak_output
      (** rejected by eq. (2): mostly-low stream, typically a stale or
          slowly-rising output — lengthen the hold time *)
  | Unexpected_high
      (** a stable high where the intent says low: the circuit (or the
          chosen threshold) computes a different function *)

type finding = { f_row : int; f_cause : cause }

val diagnose : Analyzer.result -> report -> finding list
(** One finding per wrong state, in combination order.
    @raise Invalid_argument if result and report disagree on arity. *)

val pp_finding : arity:int -> Format.formatter -> finding -> unit
