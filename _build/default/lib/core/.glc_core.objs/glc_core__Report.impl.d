lib/core/report.ml: Analyzer Array Format Glc_logic List Verify
