lib/core/report.mli: Analyzer Format Verify
