lib/core/robustness.mli: Format Glc_dvasim Glc_gates
