lib/core/analyzer.mli: Glc_dvasim Glc_logic Glc_ssa
