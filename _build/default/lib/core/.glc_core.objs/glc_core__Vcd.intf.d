lib/core/vcd.mli: Glc_ssa
