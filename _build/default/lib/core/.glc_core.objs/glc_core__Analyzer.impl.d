lib/core/analyzer.ml: Array Buffer Digital Glc_dvasim Glc_gates Glc_logic Glc_ssa Int List Printf String
