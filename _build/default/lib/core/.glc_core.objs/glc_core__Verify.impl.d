lib/core/verify.ml: Analyzer Array Format Fun Glc_dvasim Glc_gates Glc_logic List String
