lib/core/robustness.ml: Analyzer Array Float Format Glc_dvasim Glc_gates Glc_sbol Glc_ssa List Verify
