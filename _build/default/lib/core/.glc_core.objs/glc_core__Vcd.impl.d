lib/core/vcd.ml: Array Buffer Char Digital Fun Glc_ssa Printf String
