lib/core/baseline.mli: Analyzer Glc_logic
