lib/core/verify.mli: Analyzer Format Glc_dvasim Glc_logic
