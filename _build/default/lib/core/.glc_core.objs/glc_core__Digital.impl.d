lib/core/digital.ml: Array Glc_ssa Stdlib
