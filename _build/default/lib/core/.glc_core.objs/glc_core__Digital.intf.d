lib/core/digital.mli: Glc_ssa
