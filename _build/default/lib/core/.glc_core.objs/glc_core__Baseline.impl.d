lib/core/baseline.ml: Analyzer Array Digital Fun Glc_logic List
