(** Analog-to-digital conversion of species traces (sub-procedure ADC of
    Algorithm 1).

    The threshold value "categorizes the analog concentrations into
    digital logics 0 and 1": a sample is logic-1 when the amount is at
    least the threshold. *)

val of_samples : threshold:float -> float array -> bool array
(** Digitise one species' sampled series.
    @raise Invalid_argument if [threshold <= 0]. *)

val of_trace :
  threshold:float -> Glc_ssa.Trace.t -> string -> bool array
(** Digitise one recorded species.
    @raise Not_found if the species was not recorded. *)

val count_high : bool array -> int
(** Number of logic-1 samples ([HIGH_O] of eq. 2). *)

val count_variations : bool array -> int
(** Number of 0-to-1 and 1-to-0 transitions ([O_Var] of eq. 1). *)

val majority_smooth : window:int -> bool array -> bool array
(** Sliding-window majority vote: sample [k] becomes the majority value
    of the window centred on it (truncated at the edges). Removes
    glitches shorter than half the window — the "unwanted high peaks"
    the paper describes — while leaving genuine levels untouched.
    [window] must be odd and positive; a window of 1 is the identity.
    @raise Invalid_argument otherwise. *)
