module Trace = Glc_ssa.Trace

let of_trace ?species ~threshold tr =
  let names =
    match species with
    | Some l -> Array.of_list l
    | None -> Trace.names tr
  in
  if Array.length names > 94 then
    invalid_arg "Vcd.of_trace: more than 94 species";
  let bits =
    Array.map (fun id -> Digital.of_trace ~threshold tr id) names
  in
  let ident i = String.make 1 (Char.chr (Char.code '!' + i)) in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "$comment digitised genetic circuit trace $end\n";
  Buffer.add_string buf
    (Printf.sprintf "$comment logic threshold %g molecules $end\n" threshold);
  Buffer.add_string buf "$timescale 1 us $end\n";
  Buffer.add_string buf "$scope module circuit $end\n";
  Array.iteri
    (fun i name ->
      Buffer.add_string buf
        (Printf.sprintf "$var wire 1 %s %s $end\n" (ident i) name))
    names;
  Buffer.add_string buf "$upscope $end\n$enddefinitions $end\n";
  let samples = Trace.length tr in
  if samples > 0 then begin
    Buffer.add_string buf "$dumpvars\n";
    Array.iteri
      (fun i stream ->
        Buffer.add_string buf
          (Printf.sprintf "%d%s\n" (if stream.(0) then 1 else 0) (ident i)))
      bits;
    Buffer.add_string buf "$end\n";
    for k = 1 to samples - 1 do
      let changed = ref false in
      let pending = Buffer.create 32 in
      Array.iteri
        (fun i stream ->
          if stream.(k) <> stream.(k - 1) then begin
            changed := true;
            Buffer.add_string pending
              (Printf.sprintf "%d%s\n"
                 (if stream.(k) then 1 else 0)
                 (ident i))
          end)
        bits;
      if !changed then begin
        Buffer.add_string buf (Printf.sprintf "#%d\n" k);
        Buffer.add_buffer buf pending
      end
    done
  end;
  Buffer.contents buf

let write_file ?species ~threshold path tr =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (of_trace ?species ~threshold tr))
