(** Robustness analysis of genetic circuits.

    The paper concludes that simulation-based logic analysis "may help
    users to analyze the circuit's behavior and robustness for different
    parameter sets before creating them in the laboratory." This module
    packages the two studies the paper motivates:

    - {!threshold_window}: the Fig. 5 experiment as a sweep — for which
      threshold values (and hence logic-1 input amounts) does the circuit
      still verify?
    - {!parametric_yield}: Monte-Carlo over gate-parameter variation —
      biological parts vary batch to batch, so how often does a circuit
      built from perturbed parts still compute its function? *)

module Circuit := Glc_gates.Circuit
module Protocol := Glc_dvasim.Protocol

type window_point = {
  w_threshold : float;
  w_verified : bool;
  w_fitness : float;
  w_variations : int;  (** total output variations over all combinations *)
}

val threshold_window :
  ?protocol:Protocol.t -> ?thresholds:float list -> Circuit.t ->
  window_point list
(** Verifies the circuit at each threshold (default sweep
    [3, 8, 15, 25, 40, 60, 80, 90]), in order. *)

val operating_range : window_point list -> (float * float) option
(** Smallest and largest verified threshold of a sweep, or [None] if the
    circuit never verifies. *)

type yield = {
  y_trials : int;
  y_verified : int;
  y_mean_fitness : float;  (** over the verified trials; [nan] if none *)
}

val parametric_yield :
  ?protocol:Protocol.t ->
  ?trials:int ->
  ?spread:float ->
  Circuit.t ->
  yield
(** [parametric_yield c] builds [trials] (default 20) copies of the
    circuit with every promoter strength ([ymax], [ymin]) and every
    regulator affinity ([K]) scaled by an independent log-normal factor
    of the given [spread] (standard deviation of [log], default 0.2 —
    roughly ±20 % part-to-part variation), runs each through the
    laboratory with its own random seed, and reports how many still
    verify.
    @raise Invalid_argument if [trials <= 0] or [spread < 0]. *)

val pp_yield : Format.formatter -> yield -> unit
