(** Value-change-dump (VCD) export of digitised traces.

    The logical abstraction the paper applies to genetic signals is the
    same one electronic design tools use, so the digitised I/O streams
    can be inspected in any EDA waveform viewer (GTKWave etc.). One VCD
    wire per selected species, one timestep per trace sample. *)

module Trace := Glc_ssa.Trace

val of_trace :
  ?species:string list -> threshold:float -> Trace.t -> string
(** [of_trace ~threshold tr] renders the digitised waveforms of the
    selected species (default: all recorded species) as a VCD document.
    The timescale maps one trace sample to 1 time unit.
    @raise Not_found if a selected species was not recorded.
    @raise Invalid_argument if more than 94 species are selected (VCD
    short identifiers) or the threshold is not positive. *)

val write_file :
  ?species:string list -> threshold:float -> string -> Trace.t -> unit
