(** Baseline logic-extraction strategies.

    The paper's contribution is the {e pair} of filters in Algorithm 1;
    its running examples (the XNOR trap of Fig. 2, the oscillation case
    of Fig. 3, the decay tail of Fig. 4) are exactly the inputs on which
    simpler strategies go wrong. These baselines make that comparison
    quantitative — `bench/main.exe baselines` runs all of them against
    the full algorithm.

    All three reuse the CaseAnalyzer front end (digitisation and
    per-combination streams) and differ only in the decision rule. *)

module Truth_table := Glc_logic.Truth_table

type extraction = {
  b_name : string;
  b_minterms : int list;
  b_table : Truth_table.t;
}

val majority_only : threshold:float -> Analyzer.data -> extraction
(** Eq. (2) alone: a combination is a minterm when more than half of its
    output samples are logic-1. Blind to oscillation (accepts the Fig. 3
    unstable stream). *)

val stability_only :
  threshold:float -> fov_ud:float -> Analyzer.data -> extraction
(** Eq. (1) alone: a combination is a minterm when its output stream is
    stable and contains at least one logic-1. Falls into the paper's
    Fig. 2 XNOR trap (a short stable glitch becomes a minterm). *)

val endpoint_sampling : threshold:float -> Analyzer.data -> extraction
(** The electronic-testbench habit: read the output once at the end of
    each hold slot and take the majority over a combination's slots.
    Ignores everything between samples, so decaying or oscillating
    outputs are mis-read. *)

val full : ?params:Analyzer.params -> Analyzer.data -> extraction
(** Algorithm 1, packaged as an {!extraction} for uniform comparison. *)

val wrong_states : expected:Truth_table.t -> extraction -> int
(** Combinations on which the extraction disagrees with the intent. *)
