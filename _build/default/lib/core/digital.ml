let of_samples ~threshold samples =
  if threshold <= 0. then invalid_arg "Digital.of_samples: threshold <= 0";
  Array.map (fun v -> v >= threshold) samples

let of_trace ~threshold trace id =
  of_samples ~threshold (Glc_ssa.Trace.column trace id)

let count_high bits =
  Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 bits

let count_variations bits =
  let n = Array.length bits in
  let count = ref 0 in
  for k = 1 to n - 1 do
    if bits.(k) <> bits.(k - 1) then incr count
  done;
  !count

let majority_smooth ~window bits =
  if window <= 0 || window mod 2 = 0 then
    invalid_arg "Digital.majority_smooth: window must be odd and positive";
  if window = 1 then Array.copy bits
  else begin
    let n = Array.length bits in
    let half = window / 2 in
    Array.init n (fun k ->
        let lo = Stdlib.max 0 (k - half) and hi = Stdlib.min (n - 1) (k + half) in
        let ones = ref 0 in
        for i = lo to hi do
          if bits.(i) then incr ones
        done;
        2 * !ones > hi - lo + 1)
  end
