(** Hand-built genetic circuits from Myers, "Engineering Genetic
    Circuits" (2009) — the five book models of the paper's evaluation.

    {!genetic_and} is the circuit of the paper's Fig. 1: promoters P1 and
    P2 constitutively produce the repressor CI and are repressed by LacI
    and TetR respectively; promoter P3, repressed by CI, produces GFP.
    GFP therefore appears only when both LacI and TetR are present —
    a 2-input AND. *)

val genetic_not : unit -> Circuit.t
(** 1 input. GFP = I1'. *)

val genetic_and : unit -> Circuit.t
(** 2 inputs, the Fig. 1 circuit. GFP = I1.I2. *)

val genetic_or : unit -> Circuit.t
(** 2 inputs, activator-based. GFP = I1 + I2. *)

val genetic_nand : unit -> Circuit.t
(** 2 inputs. GFP = I1' + I2'. *)

val genetic_nor : unit -> Circuit.t
(** 2 inputs, tandem repression. GFP = I1'.I2'. *)

val all : unit -> Circuit.t list
(** The five circuits above, in that order. *)
