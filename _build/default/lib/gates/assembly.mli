(** Technology mapping from logic netlists to genetic circuits.

    Turns a NOT/NOR netlist into a structural {!Glc_sbol.Document.t} the
    way Cello lays out its circuits, under the standard protein-level
    collapse: each net carries a protein; a gate is a promoter repressed
    by its input proteins (tandem repression) producing its output
    protein; the gate's response parameters are those of the repressor
    assigned to it, each library repressor being used at most once
    (orthogonality constraint).

    Sensors: input 1 is LacI, input 2 TetR, input 3 AraC (the Cello
    sensor modules), further inputs are [IN4], [IN5], …; the reporter is
    YFP. *)

module Netlist := Glc_logic.Netlist
module Truth_table := Glc_logic.Truth_table

val sensors : int -> string array
(** Sensor protein names for an [n]-input circuit, [I1] first. *)

val reporter : string
(** ["YFP"]. *)

val sensor_affinity : string -> float * float
(** Binding [(K, n)] of a sensor protein on its cognate promoter. Sensor
    binding is tight ([K] around 4 molecules) so that a logic-1 input of
    one threshold's worth of molecules switches the first gate layer
    decisively. *)

val of_netlist :
  ?library:Repressor.t list ->
  name:string -> expected:Truth_table.t -> Netlist.t -> Circuit.t
(** Assembles a netlist whose input nets are named by {!sensors} in
    {e reversed} order (net array index [i] = table bit [i] = sensor
    [n-1-i], per the combination convention in {!Circuit}). [library]
    defaults to {!Repressor.library}; pass {!Repressor.extended} for
    circuits beyond twelve gates.
    @raise Invalid_argument if the netlist needs more repressors than the
    library holds, or input nets are not the expected sensor names. *)

val synthesize :
  ?library:Repressor.t list -> name:string -> Truth_table.t -> Circuit.t
(** Full Cello-style flow: Quine–McCluskey minimisation, NOR mapping,
    repressor assignment, sensor and reporter wiring. The resulting
    circuit's expected table is the argument itself. *)
