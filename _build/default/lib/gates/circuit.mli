(** A genetic logic circuit ready for the virtual laboratory.

    Bundles the structural document, the sensor (input) proteins in
    display order, the reporter (output) protein, the expected logic, and
    the response parameters of every promoter, so a kinetic model can be
    generated on demand.

    {b Input combination convention} (matching the paper's figures): with
    inputs [I1 .. In] in array order, input combination (row) [r] assigns
    input [Ij] the bit [(n-1-j)] of [r] — i.e. the combination printed
    "011" sets I1=0, I2=1, I3=1, and combinations count upward 000, 001, …
    The expected truth table uses the same row numbering. *)

module Document := Glc_sbol.Document
module Model := Glc_model.Model
module To_model := Glc_sbol.To_model
module Truth_table := Glc_logic.Truth_table

type t = {
  name : string;
  document : Document.t;
  inputs : string array;  (** sensor protein ids, [I1] first *)
  output : string;  (** reporter protein id *)
  expected : Truth_table.t;
  promoter_kinetics : (string * To_model.kinetics) list;
      (** transcription parameters per promoter; missing promoters use
          {!To_model.default_kinetics} *)
  regulator_affinity : (string * (float * float)) list;
      (** binding [(K, n)] per regulator protein; missing regulators use
          the regulated promoter's defaults *)
}

val make :
  name:string ->
  document:Document.t ->
  inputs:string array ->
  output:string ->
  expected:Truth_table.t ->
  ?promoter_kinetics:(string * To_model.kinetics) list ->
  ?regulator_affinity:(string * (float * float)) list ->
  unit ->
  t
(** Checks that inputs and output exist in the document, that the inputs
    are exactly the document's input proteins, and that the expected
    table's arity matches.
    @raise Invalid_argument otherwise. *)

val arity : t -> int

val model : ?degradation:float -> t -> Model.t
(** Kinetic model via {!To_model.convert} with this circuit's promoter
    parameters. *)

val n_gates : t -> int
(** Number of transcription units (promoters with a production
    interaction). *)

val n_components : t -> int
(** Number of DNA parts in the document. *)

val input_value : t -> row:int -> int -> bool
(** [input_value c ~row j] is the value of input [j] in combination
    [row] under the convention above. *)

val row_of_inputs : t -> bool array -> int
(** Inverse of {!input_value}: combination index of the given input
    values (ordered as [inputs]). *)

val pp_combination : arity:int -> Format.formatter -> int -> unit
(** Prints a combination as the paper does, e.g. [011]. *)
