let all () = Circuits.all () @ Cello.all ()

let find name =
  List.find_opt (fun c -> String.equal c.Circuit.name name) (all ())

let names () = List.map (fun c -> c.Circuit.name) (all ())

let summary () =
  List.map
    (fun c ->
      (c.Circuit.name, Circuit.arity c, Circuit.n_gates c,
       Circuit.n_components c))
    (all ())
