type t = { rep_name : string; rep_kinetics : Glc_sbol.To_model.kinetics }

let mk name ymax ymin k n =
  { rep_name = name; rep_kinetics = { Glc_sbol.To_model.ymax; ymin; k; n } }

(* Molecule-count scaled from the response functions in Nielsen et al.,
   Science 2016 (table S5): ymax/ymin ratios of roughly 100x, and binding
   half-responses (K) placed geometrically between the repressed (~1
   molecule) and active (~100 molecules) expression levels so gates have
   comfortable noise margins on both sides of the 15-molecule logic
   threshold. *)
let library =
  [
    mk "PhlF" 5.2 0.04 12.0 2.4;
    mk "SrpR" 4.8 0.03 10.0 2.6;
    mk "BM3R1" 4.6 0.04 15.0 2.9;
    mk "QacR" 5.4 0.03 18.0 2.2;
    mk "AmtR" 5.0 0.06 14.0 2.1;
    mk "BetI" 5.1 0.05 16.0 2.0;
    mk "HlyIIR" 4.7 0.02 11.0 2.3;
    mk "IcaRA" 4.9 0.06 20.0 2.0;
    mk "LitR" 5.3 0.04 13.0 2.1;
    mk "LmrA" 5.5 0.05 17.0 1.9;
    mk "PsrA" 4.5 0.02 19.0 2.5;
    mk "AmeR" 5.0 0.05 12.5 2.2;
  ]

let find name = List.find_opt (fun r -> String.equal r.rep_name name) library
let size = List.length library

let extended n =
  if n <= size then library
  else begin
    let synthetic =
      List.init (n - size) (fun i ->
          (* cycle deterministically through the characterised ranges *)
          let ymax = 4.5 +. (float_of_int (i mod 5) *. 0.25) in
          let ymin = 0.02 +. (float_of_int (i mod 4) *. 0.01) in
          let k = 10. +. float_of_int (i mod 9) in
          let hill = 1.9 +. (float_of_int (i mod 6) *. 0.2) in
          mk (Printf.sprintf "SynR%d" (i + 1)) ymax ymin k hill)
    in
    library @ synthetic
  end
