module Document = Glc_sbol.Document
module Truth_table = Glc_logic.Truth_table

(* One transcription unit: the CDS and terminator part ids are derived
   from the promoter so a protein encoded behind two promoters (as CI in
   Fig. 1) yields distinct DNA parts. *)
let tu ~prom ~prot =
  ignore prot;
  [
    Document.part Document.Promoter prom;
    Document.part Document.Cds ("cds_" ^ prom);
    Document.part Document.Terminator ("ter_" ^ prom);
  ]

let genetic_not () =
  let document =
    Document.make ~id:"genetic_NOT"
      ~parts:(tu ~prom:"P1" ~prot:"GFP")
      ~proteins:
        [ Document.protein "LacI"; Document.protein ~reporter:true "GFP" ]
      ~interactions:
        [
          Document.Production { prom = "P1"; prot = "GFP" };
          Document.Repression { repressor = "LacI"; prom = "P1" };
        ]
  in
  Circuit.make ~name:"genetic_NOT" ~document ~inputs:[| "LacI" |]
    ~output:"GFP"
    ~expected:(Truth_table.of_minterms ~arity:1 [ 0 ])
    ~regulator_affinity:[ ("LacI", Assembly.sensor_affinity "LacI") ]
    ()

(* The paper's Fig. 1: P1 and P2 produce CI unless repressed by LacI and
   TetR; P3 produces GFP unless repressed by CI. *)
let genetic_and () =
  let document =
    Document.make ~id:"genetic_AND"
      ~parts:
        (tu ~prom:"P1" ~prot:"CI" @ tu ~prom:"P2" ~prot:"CI"
        @ tu ~prom:"P3" ~prot:"GFP")
      ~proteins:
        [
          Document.protein "LacI";
          Document.protein "TetR";
          Document.protein "CI";
          Document.protein ~reporter:true "GFP";
        ]
      ~interactions:
        [
          Document.Production { prom = "P1"; prot = "CI" };
          Document.Repression { repressor = "LacI"; prom = "P1" };
          Document.Production { prom = "P2"; prot = "CI" };
          Document.Repression { repressor = "TetR"; prom = "P2" };
          Document.Production { prom = "P3"; prot = "GFP" };
          Document.Repression { repressor = "CI"; prom = "P3" };
        ]
  in
  Circuit.make ~name:"genetic_AND" ~document ~inputs:[| "LacI"; "TetR" |]
    ~output:"GFP"
    ~expected:(Truth_table.of_minterms ~arity:2 [ 3 ])
    ~regulator_affinity:
      [
        ("LacI", Assembly.sensor_affinity "LacI");
        ("TetR", Assembly.sensor_affinity "TetR");
        ("CI", (12.0, 2.5));
      ]
    ()

let genetic_or () =
  let document =
    Document.make ~id:"genetic_OR"
      ~parts:(tu ~prom:"P1" ~prot:"GFP" @ tu ~prom:"P2" ~prot:"GFP")
      ~proteins:
        [
          Document.protein "LacI";
          Document.protein "TetR";
          Document.protein ~reporter:true "GFP";
        ]
      ~interactions:
        [
          Document.Production { prom = "P1"; prot = "GFP" };
          Document.Activation { activator = "LacI"; prom = "P1" };
          Document.Production { prom = "P2"; prot = "GFP" };
          Document.Activation { activator = "TetR"; prom = "P2" };
        ]
  in
  Circuit.make ~name:"genetic_OR" ~document ~inputs:[| "LacI"; "TetR" |]
    ~output:"GFP"
    ~expected:(Truth_table.of_minterms ~arity:2 [ 1; 2; 3 ])
    ~regulator_affinity:
      [
        ("LacI", Assembly.sensor_affinity "LacI");
        ("TetR", Assembly.sensor_affinity "TetR");
      ]
    ()

let genetic_nand () =
  let document =
    Document.make ~id:"genetic_NAND"
      ~parts:(tu ~prom:"P1" ~prot:"GFP" @ tu ~prom:"P2" ~prot:"GFP")
      ~proteins:
        [
          Document.protein "LacI";
          Document.protein "TetR";
          Document.protein ~reporter:true "GFP";
        ]
      ~interactions:
        [
          Document.Production { prom = "P1"; prot = "GFP" };
          Document.Repression { repressor = "LacI"; prom = "P1" };
          Document.Production { prom = "P2"; prot = "GFP" };
          Document.Repression { repressor = "TetR"; prom = "P2" };
        ]
  in
  Circuit.make ~name:"genetic_NAND" ~document ~inputs:[| "LacI"; "TetR" |]
    ~output:"GFP"
    ~expected:(Truth_table.of_minterms ~arity:2 [ 0; 1; 2 ])
    ~regulator_affinity:
      [
        ("LacI", Assembly.sensor_affinity "LacI");
        ("TetR", Assembly.sensor_affinity "TetR");
      ]
    ()

let genetic_nor () =
  let document =
    Document.make ~id:"genetic_NOR"
      ~parts:(tu ~prom:"P1" ~prot:"GFP")
      ~proteins:
        [
          Document.protein "LacI";
          Document.protein "TetR";
          Document.protein ~reporter:true "GFP";
        ]
      ~interactions:
        [
          Document.Production { prom = "P1"; prot = "GFP" };
          Document.Repression { repressor = "LacI"; prom = "P1" };
          Document.Repression { repressor = "TetR"; prom = "P1" };
        ]
  in
  Circuit.make ~name:"genetic_NOR" ~document ~inputs:[| "LacI"; "TetR" |]
    ~output:"GFP"
    ~expected:(Truth_table.of_minterms ~arity:2 [ 0 ])
    ~regulator_affinity:
      [
        ("LacI", Assembly.sensor_affinity "LacI");
        ("TetR", Assembly.sensor_affinity "TetR");
      ]
    ()

let all () =
  [ genetic_not (); genetic_and (); genetic_or (); genetic_nand ();
    genetic_nor () ]
