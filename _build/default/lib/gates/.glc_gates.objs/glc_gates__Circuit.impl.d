lib/gates/circuit.ml: Array Format Glc_logic Glc_sbol List Printf String
