lib/gates/benchmarks.mli: Circuit
