lib/gates/repressor.mli: Glc_sbol
