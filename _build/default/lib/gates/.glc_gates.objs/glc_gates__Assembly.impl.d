lib/gates/assembly.ml: Array Circuit Glc_logic Glc_sbol Hashtbl List Printf Repressor String
