lib/gates/cello.ml: Assembly Glc_logic List Printf
