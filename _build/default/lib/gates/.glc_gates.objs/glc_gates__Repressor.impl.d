lib/gates/repressor.ml: Glc_sbol List Printf String
