lib/gates/benchmarks.ml: Cello Circuit Circuits List String
