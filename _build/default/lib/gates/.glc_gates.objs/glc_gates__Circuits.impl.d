lib/gates/circuits.ml: Assembly Circuit Glc_logic Glc_sbol
