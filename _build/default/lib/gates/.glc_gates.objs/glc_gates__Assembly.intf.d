lib/gates/assembly.mli: Circuit Glc_logic Repressor
