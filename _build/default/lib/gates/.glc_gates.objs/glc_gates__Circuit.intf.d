lib/gates/circuit.mli: Format Glc_logic Glc_model Glc_sbol
