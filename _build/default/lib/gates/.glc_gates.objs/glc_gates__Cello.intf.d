lib/gates/cello.mli: Circuit
