lib/gates/circuits.mli: Circuit
