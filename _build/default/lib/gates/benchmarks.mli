(** The 15-circuit evaluation set of the paper: five book circuits
    (Myers 2009) and ten Cello circuits (Nielsen et al. 2016), spanning
    1–3 inputs, 1–7 gates and 3–26 genetic components. *)

val all : unit -> Circuit.t list
(** Book circuits first, then the Cello set. *)

val find : string -> Circuit.t option
(** Lookup by circuit name (e.g. ["genetic_AND"], ["0x0B"]). *)

val names : unit -> string list

val summary :
  unit -> (string * int * int * int) list
(** [(name, inputs, gates, components)] per circuit — the population
    statistics quoted in the paper's §III. *)
