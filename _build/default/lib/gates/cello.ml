module Truth_table = Glc_logic.Truth_table

let of_code ?(arity = 3) code =
  let tt = Truth_table.of_code ~arity code in
  Assembly.synthesize ~name:(Printf.sprintf "0x%02X" code) tt

let circuit_0x0B () = of_code 0x0B
let circuit_0x04 () = of_code 0x04
let circuit_0x1C () = of_code 0x1C

let codes = [ 0x0B; 0x04; 0x1C; 0x70; 0x41; 0x8E; 0x5D; 0x3A; 0xB1; 0x17 ]

let all () = List.map of_code codes
