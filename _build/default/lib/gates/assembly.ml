module Document = Glc_sbol.Document
module Netlist = Glc_logic.Netlist
module Truth_table = Glc_logic.Truth_table

let sensors n =
  Array.init n (fun j ->
      match j with
      | 0 -> "LacI"
      | 1 -> "TetR"
      | 2 -> "AraC"
      | _ -> Printf.sprintf "IN%d" (j + 1))

let reporter = "YFP"

(* Sensor proteins bind their operators tightly (LacI's operator affinity
   is nanomolar), so a logic-1 input of only ~15 molecules switches the
   first gate layer decisively. *)
let sensor_affinity name =
  match name with
  | "LacI" -> (4.0, 2.8)
  | "TetR" -> (4.2, 3.0)
  | "AraC" -> (3.8, 2.6)
  | _ -> (4.0, 2.8)

type builder = {
  mutable parts : Document.dna_part list; (* reverse order *)
  mutable proteins : Document.protein list;
  mutable interactions : Document.interaction list;
  mutable kinetics : (string * Glc_sbol.To_model.kinetics) list;
  mutable pool : Repressor.t list; (* unassigned repressors *)
}

let next_repressor b ~circuit ~library_size =
  match b.pool with
  | [] ->
      invalid_arg
        (Printf.sprintf
           "Assembly: circuit %S needs more than the %d library repressors"
           circuit library_size)
  | r :: rest ->
      b.pool <- rest;
      r

(* Emits one transcription unit: promoter (with the gate's response
   parameters) repressed by [repressed_by], producing [prot]. *)
let emit_gate b ~kinetics ~prot ~repressed_by =
  let prom = "p" ^ prot in
  b.parts <-
    Document.part Document.Terminator ("ter_" ^ prot)
    :: Document.part Document.Cds ("cds_" ^ prot)
    :: Document.part Document.Promoter prom
    :: b.parts;
  if not (List.exists (fun (p : Document.protein) ->
              String.equal p.prot_id prot) b.proteins)
  then
    b.proteins <-
      Document.protein ~reporter:(String.equal prot reporter) prot
      :: b.proteins;
  b.interactions <-
    Document.Production { prom; prot }
    :: List.map
         (fun repressor -> Document.Repression { repressor; prom })
         (List.sort_uniq String.compare repressed_by)
    @ b.interactions;
  b.kinetics <- (prom, kinetics) :: b.kinetics

let of_netlist ?(library = Repressor.library) ~name ~expected
    (nl : Netlist.t) =
  let library_size = List.length library in
  let n = Array.length nl.Netlist.inputs in
  let sensor_names = sensors n in
  (* Net array index i corresponds to sensor n-1-i (combination
     convention: I1 is the most significant bit of the row index). *)
  Array.iteri
    (fun i net ->
      let want = sensor_names.(n - 1 - i) in
      if not (String.equal net want) then
        invalid_arg
          (Printf.sprintf
             "Assembly.of_netlist: input net %d is %S, expected sensor %S" i
             net want))
    nl.Netlist.inputs;
  let b =
    {
      parts = [];
      proteins =
        List.rev
          (Array.to_list
             (Array.map (fun s -> Document.protein s) sensor_names));
      interactions = [];
      kinetics = [];
      pool = library;
    }
  in
  (* Maps each net to the protein carrying its signal. *)
  let protein_of = Hashtbl.create 16 in
  Array.iter (fun s -> Hashtbl.replace protein_of s s) sensor_names;
  let signal net =
    match Hashtbl.find_opt protein_of net with
    | Some p -> p
    | None -> assert false (* topological order guarantees definition *)
  in
  List.iter
    (fun (net, gate) ->
      let is_output = String.equal net nl.Netlist.output in
      let rep = next_repressor b ~circuit:name ~library_size in
      let prot = if is_output then reporter else rep.Repressor.rep_name in
      (match gate with
      | Netlist.Not a ->
          emit_gate b ~kinetics:rep.rep_kinetics ~prot
            ~repressed_by:[ signal a ]
      | Netlist.Nor (a, b') ->
          emit_gate b ~kinetics:rep.rep_kinetics ~prot
            ~repressed_by:[ signal a; signal b' ]
      | Netlist.Const true ->
          emit_gate b ~kinetics:rep.rep_kinetics ~prot ~repressed_by:[]
      | Netlist.Const false ->
          (* A constitutive repressor holding the output promoter off. *)
          let aux = next_repressor b ~circuit:name ~library_size in
          emit_gate b ~kinetics:aux.rep_kinetics
            ~prot:aux.Repressor.rep_name ~repressed_by:[];
          emit_gate b ~kinetics:rep.rep_kinetics ~prot
            ~repressed_by:[ aux.Repressor.rep_name ]);
      Hashtbl.replace protein_of net prot)
    nl.Netlist.gates;
  let output_protein = signal nl.Netlist.output in
  let document =
    Document.make ~id:name ~parts:(List.rev b.parts)
      ~proteins:(List.rev b.proteins)
      ~interactions:(List.rev b.interactions)
  in
  (* Binding affinities: tight constants for the sensors, each internal
     repressor's own (K, n) for the gates it feeds. *)
  let regulator_affinity =
    Array.to_list
      (Array.map (fun s -> (s, sensor_affinity s)) sensor_names)
    @ List.filter_map
        (fun (p : Document.protein) ->
          match
            List.find_opt
              (fun r -> String.equal r.Repressor.rep_name p.prot_id)
              library
          with
          | Some r ->
              Some
                (p.prot_id,
                 (r.Repressor.rep_kinetics.Glc_sbol.To_model.k,
                  r.Repressor.rep_kinetics.Glc_sbol.To_model.n))
          | None -> None)
        (List.rev b.proteins)
  in
  Circuit.make ~name ~document ~inputs:sensor_names ~output:output_protein
    ~expected ~promoter_kinetics:(List.rev b.kinetics) ~regulator_affinity ()

let synthesize ?library ~name tt =
  let n = Truth_table.arity tt in
  let sensor_names = sensors n in
  let netlist_inputs =
    Array.init n (fun i -> sensor_names.(n - 1 - i))
  in
  let nl = Netlist.of_truth_table ~inputs:netlist_inputs tt in
  of_netlist ?library ~name ~expected:tt nl
