(** The repressor part library.

    Cello's gate library (Nielsen et al., Science 2016) is a set of
    orthogonal prokaryotic repressors, each characterised by a Hill
    response function. Parameters here are molecule-count scaled versions
    of the published response ranges: maximal output 1.5–4 molecules/t.u.,
    leakage 1–5% of maximal, half-response 8–30 molecules, Hill
    coefficients 1.5–3. A circuit may use each repressor at most once
    (orthogonality), which {!Assembly} enforces. *)

type t = {
  rep_name : string;
  rep_kinetics : Glc_sbol.To_model.kinetics;
}

val library : t list
(** The twelve repressors, in assignment order: PhlF, SrpR, BM3R1, QacR,
    AmtR, BetI, HlyIIR, IcaRA, LitR, LmrA, PsrA, AmeR. *)

val find : string -> t option
(** Lookup by name. *)

val size : int
(** Number of repressors available, i.e. the largest circuit (in gates)
    that can be assembled. *)

val extended : int -> t list
(** [extended n] is the library followed by [n - size] synthetic
    orthogonal repressors ([SynR1], [SynR2], …) with parameters cycled
    through the characterised ranges — for scalability studies beyond
    what today's 12-repressor part libraries can build (the paper's
    "n-input" claim). Returns the plain library when [n <= size]. *)
