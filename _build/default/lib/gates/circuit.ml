module Document = Glc_sbol.Document
module To_model = Glc_sbol.To_model
module Truth_table = Glc_logic.Truth_table

type t = {
  name : string;
  document : Document.t;
  inputs : string array;
  output : string;
  expected : Truth_table.t;
  promoter_kinetics : (string * To_model.kinetics) list;
  regulator_affinity : (string * (float * float)) list;
}

let make ~name ~document ~inputs ~output ~expected ?(promoter_kinetics = [])
    ?(regulator_affinity = []) () =
  let fail fmt = Printf.ksprintf invalid_arg ("Circuit.make: " ^^ fmt) in
  Array.iter
    (fun i ->
      if Document.find_protein document i = None then
        fail "input %S is not a protein of %S" i document.doc_id)
    inputs;
  if Document.find_protein document output = None then
    fail "output %S is not a protein of %S" output document.doc_id;
  let doc_inputs = List.sort String.compare (Document.input_proteins document) in
  let declared = List.sort String.compare (Array.to_list inputs) in
  if doc_inputs <> declared then
    fail "inputs [%s] differ from the document's input proteins [%s]"
      (String.concat "; " declared)
      (String.concat "; " doc_inputs);
  if Truth_table.arity expected <> Array.length inputs then
    fail "expected table arity %d does not match %d inputs"
      (Truth_table.arity expected) (Array.length inputs);
  List.iter
    (fun (prom, _) ->
      match Document.find_part document prom with
      | Some { Document.part_role = Document.Promoter; _ } -> ()
      | Some _ | None -> fail "kinetics given for non-promoter %S" prom)
    promoter_kinetics;
  List.iter
    (fun (prot, _) ->
      if Document.find_protein document prot = None then
        fail "affinity given for unknown protein %S" prot)
    regulator_affinity;
  { name; document; inputs; output; expected; promoter_kinetics;
    regulator_affinity }

let arity c = Array.length c.inputs

let model ?degradation c =
  let kinetics prom =
    match List.assoc_opt prom c.promoter_kinetics with
    | Some k -> k
    | None -> To_model.default_kinetics
  in
  let affinity prot = List.assoc_opt prot c.regulator_affinity in
  let degradation =
    match degradation with Some d -> Some (fun _ -> d) | None -> None
  in
  To_model.convert ~kinetics ~affinity ?degradation c.document

let n_gates c =
  List.length
    (List.filter
       (function
         | Document.Production _ -> true
         | Document.Repression _ | Document.Activation _ -> false)
       c.document.doc_interactions)

let n_components c = List.length c.document.doc_parts

let input_value c ~row j =
  let n = arity c in
  (row lsr (n - 1 - j)) land 1 = 1

let row_of_inputs c values =
  if Array.length values <> arity c then
    invalid_arg "Circuit.row_of_inputs: wrong number of values";
  Array.fold_left
    (fun acc v -> (acc lsl 1) lor (if v then 1 else 0))
    0 values

let pp_combination ~arity ppf row =
  for j = arity - 1 downto 0 do
    Format.pp_print_int ppf ((row lsr j) land 1)
  done
