(** Cello-style circuits named by truth-table code.

    Nielsen et al. (Science 2016) name each 3-input circuit by the
    hexadecimal code of its output column ([0x0B], [0x04], [0x1C], …).
    {!of_code} runs the full synthesis flow for any such code; {!all}
    returns the ten circuits used in the paper's evaluation, including the
    three whose analytics appear in the paper's Fig. 4. *)

val of_code : ?arity:int -> int -> Circuit.t
(** [of_code code] synthesises the circuit of that truth-table code
    (default [arity = 3]), named ["0xNN"].
    @raise Invalid_argument if the code does not fit the arity or the
    synthesised netlist exceeds the repressor library. *)

val circuit_0x0B : unit -> Circuit.t
(** Output high on combinations 000, 001 and 011 (minterms 0, 1, 3). *)

val circuit_0x04 : unit -> Circuit.t
(** Output high on combination 010 only. *)

val circuit_0x1C : unit -> Circuit.t
(** Output high on combinations 010, 011 and 100. *)

val codes : int list
(** The ten benchmark codes:
    [0x0B; 0x04; 0x1C; 0x70; 0x41; 0x8E; 0x5D; 0x3A; 0xB1; 0x17]. *)

val all : unit -> Circuit.t list
(** Circuits for {!codes}, in order. *)
