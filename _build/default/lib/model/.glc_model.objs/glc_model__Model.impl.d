lib/model/model.ml: Format Hashtbl List Math Option Printf String
