lib/model/model.mli: Format Math
