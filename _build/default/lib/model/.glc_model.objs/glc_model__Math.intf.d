lib/model/math.mli: Format
