lib/model/xml.ml: Buffer Char List Printf String
