lib/model/xml.mli:
