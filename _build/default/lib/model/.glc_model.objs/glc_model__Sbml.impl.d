lib/model/sbml.ml: Float Fun List Math Model Printf Result String Xml
