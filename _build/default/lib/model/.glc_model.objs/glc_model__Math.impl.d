lib/model/math.ml: Float Format Printf Set Stdlib String
