lib/model/sbml.mli: Math Model Xml
