type t =
  | Element of string * (string * string) list * t list
  | Text of string

let element ?(attrs = []) tag children = Element (tag, attrs, children)
let text s = Text s

let tag = function Element (t, _, _) -> Some t | Text _ -> None

let attr name = function
  | Element (_, attrs, _) -> List.assoc_opt name attrs
  | Text _ -> None

let children = function Element (_, _, cs) -> cs | Text _ -> []

let child tag node =
  List.find_opt
    (function Element (t, _, _) -> String.equal t tag | Text _ -> false)
    (children node)

let childs tag node =
  List.filter
    (function Element (t, _, _) -> String.equal t tag | Text _ -> false)
    (children node)

let text_content node =
  let buf = Buffer.create 16 in
  let rec go = function
    | Text s -> Buffer.add_string buf s
    | Element (_, _, cs) -> List.iter go cs
  in
  go node;
  String.trim (Buffer.contents buf)

(* ---- printing ---- *)

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' -> Buffer.add_string buf "&quot;"
      | '\'' -> Buffer.add_string buf "&apos;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_string ?(decl = true) node =
  let buf = Buffer.create 1024 in
  if decl then
    Buffer.add_string buf "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n";
  let rec go indent = function
    | Text s -> Buffer.add_string buf (escape s)
    | Element (tag, attrs, cs) ->
        Buffer.add_string buf indent;
        Buffer.add_char buf '<';
        Buffer.add_string buf tag;
        List.iter
          (fun (k, v) ->
            Buffer.add_char buf ' ';
            Buffer.add_string buf k;
            Buffer.add_string buf "=\"";
            Buffer.add_string buf (escape v);
            Buffer.add_char buf '"')
          attrs;
        let only_text =
          cs <> [] && List.for_all (function Text _ -> true | _ -> false) cs
        in
        if cs = [] then Buffer.add_string buf "/>\n"
        else if only_text then begin
          Buffer.add_char buf '>';
          List.iter (go "") cs;
          Buffer.add_string buf "</";
          Buffer.add_string buf tag;
          Buffer.add_string buf ">\n"
        end
        else begin
          Buffer.add_string buf ">\n";
          List.iter (go (indent ^ "  ")) cs;
          Buffer.add_string buf indent;
          Buffer.add_string buf "</";
          Buffer.add_string buf tag;
          Buffer.add_string buf ">\n"
        end
  in
  go "" node;
  Buffer.contents buf

(* ---- parsing ---- *)

exception Fail of int * string

let parse input =
  let len = String.length input in
  let pos = ref 0 in
  let fail msg = raise (Fail (!pos, msg)) in
  let peek () = if !pos < len then Some input.[!pos] else None in
  let advance () = incr pos in
  let looking_at s =
    let n = String.length s in
    !pos + n <= len && String.equal (String.sub input !pos n) s
  in
  let expect s =
    if looking_at s then pos := !pos + String.length s
    else fail (Printf.sprintf "expected %S" s)
  in
  let is_space = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false in
  let skip_spaces () =
    while !pos < len && is_space input.[!pos] do
      advance ()
    done
  in
  let is_name_char = function
    | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' | '.' | ':' -> true
    | _ -> false
  in
  let read_name () =
    let start = !pos in
    while !pos < len && is_name_char input.[!pos] do
      advance ()
    done;
    if !pos = start then fail "expected a name";
    String.sub input start (!pos - start)
  in
  let decode_entities s =
    let buf = Buffer.create (String.length s) in
    let n = String.length s in
    let i = ref 0 in
    while !i < n do
      if s.[!i] = '&' then begin
        match String.index_from_opt s !i ';' with
        | None -> fail "unterminated entity"
        | Some j ->
            let name = String.sub s (!i + 1) (j - !i - 1) in
            let c =
              match name with
              | "amp" -> "&"
              | "lt" -> "<"
              | "gt" -> ">"
              | "quot" -> "\""
              | "apos" -> "'"
              | _ ->
                  if String.length name > 1 && name.[0] = '#' then begin
                    let code =
                      if name.[1] = 'x' || name.[1] = 'X' then
                        int_of_string_opt
                          ("0x" ^ String.sub name 2 (String.length name - 2))
                      else
                        int_of_string_opt
                          (String.sub name 1 (String.length name - 1))
                    in
                    match code with
                    | Some c when c >= 0 && c < 128 ->
                        String.make 1 (Char.chr c)
                    | Some _ | None -> fail "unsupported character reference"
                  end
                  else fail (Printf.sprintf "unknown entity &%s;" name)
            in
            Buffer.add_string buf c;
            i := j + 1
      end
      else begin
        Buffer.add_char buf s.[!i];
        incr i
      end
    done;
    Buffer.contents buf
  in
  let skip_misc () =
    (* comments, processing instructions, whitespace *)
    let progress = ref true in
    while !progress do
      progress := false;
      skip_spaces ();
      if looking_at "<!--" then begin
        match
          let rec find i =
            if i + 3 > len then None
            else if String.equal (String.sub input i 3) "-->" then Some i
            else find (i + 1)
          in
          find (!pos + 4)
        with
        | Some i ->
            pos := i + 3;
            progress := true
        | None -> fail "unterminated comment"
      end
      else if looking_at "<?" then begin
        match String.index_from_opt input !pos '>' with
        | Some i ->
            pos := i + 1;
            progress := true
        | None -> fail "unterminated processing instruction"
      end
    done
  in
  let read_attr_value () =
    let quote =
      match peek () with
      | Some (('"' | '\'') as q) ->
          advance ();
          q
      | Some _ | None -> fail "expected quoted attribute value"
    in
    let start = !pos in
    while !pos < len && input.[!pos] <> quote do
      advance ()
    done;
    if !pos >= len then fail "unterminated attribute value";
    let v = String.sub input start (!pos - start) in
    advance ();
    decode_entities v
  in
  let rec read_element () =
    expect "<";
    let name = read_name () in
    let rec read_attrs acc =
      skip_spaces ();
      match peek () with
      | Some '/' | Some '>' -> List.rev acc
      | Some _ ->
          let k = read_name () in
          skip_spaces ();
          expect "=";
          skip_spaces ();
          let v = read_attr_value () in
          read_attrs ((k, v) :: acc)
      | None -> fail "unterminated start tag"
    in
    let attrs = read_attrs [] in
    if looking_at "/>" then begin
      expect "/>";
      Element (name, attrs, [])
    end
    else begin
      expect ">";
      let children = read_content () in
      expect "</";
      let close = read_name () in
      if not (String.equal close name) then
        fail (Printf.sprintf "mismatched close tag </%s> for <%s>" close name);
      skip_spaces ();
      expect ">";
      Element (name, attrs, children)
    end
  and read_content () =
    let rec go acc =
      if looking_at "</" then List.rev acc
      else if looking_at "<!--" || looking_at "<?" then begin
        skip_misc ();
        go acc
      end
      else if looking_at "<" then go (read_element () :: acc)
      else if !pos >= len then fail "unterminated element"
      else begin
        let start = !pos in
        while !pos < len && input.[!pos] <> '<' do
          advance ()
        done;
        let raw = String.sub input start (!pos - start) in
        let txt = decode_entities raw in
        if String.trim txt = "" then go acc else go (Text txt :: acc)
      end
    in
    go []
  in
  match
    skip_misc ();
    let root = read_element () in
    skip_misc ();
    if !pos <> len then fail "trailing content after root element";
    root
  with
  | root -> Ok root
  | exception Fail (p, msg) ->
      Error (Printf.sprintf "XML parse error at offset %d: %s" p msg)
