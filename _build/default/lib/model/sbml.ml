let sbml_ns = "http://www.sbml.org/sbml/level3/version1/core"
let mathml_ns = "http://www.w3.org/1998/Math/MathML"

(* ---- MathML writing ---- *)

let rec math_node (m : Math.t) : Xml.t =
  let apply op args = Xml.element "apply" (Xml.element op [] :: args) in
  match m with
  | Const c -> Xml.element "cn" [ Xml.text (Printf.sprintf "%.17g" c) ]
  | Ident x -> Xml.element "ci" [ Xml.text x ]
  | Neg a -> apply "minus" [ math_node a ]
  | Add (a, b) -> apply "plus" [ math_node a; math_node b ]
  | Sub (a, b) -> apply "minus" [ math_node a; math_node b ]
  | Mul (a, b) -> apply "times" [ math_node a; math_node b ]
  | Div (a, b) -> apply "divide" [ math_node a; math_node b ]
  | Pow (a, b) -> apply "power" [ math_node a; math_node b ]
  | Min (a, b) -> apply "min" [ math_node a; math_node b ]
  | Max (a, b) -> apply "max" [ math_node a; math_node b ]
  | Exp a -> apply "exp" [ math_node a ]
  | Ln a -> apply "ln" [ math_node a ]

let math_to_xml m =
  Xml.element ~attrs:[ ("xmlns", mathml_ns) ] "math" [ math_node m ]

(* ---- MathML reading ---- *)

let ( let* ) = Result.bind

let rec math_of_node node =
  match node with
  | Xml.Text t -> Error (Printf.sprintf "unexpected text %S in MathML" t)
  | Xml.Element ("cn", _, _) -> (
      let s = Xml.text_content node in
      match float_of_string_opt s with
      | Some c -> Ok (Math.Const c)
      | None -> Error (Printf.sprintf "invalid <cn> constant %S" s))
  | Xml.Element ("ci", _, _) -> Ok (Math.Ident (Xml.text_content node))
  | Xml.Element ("apply", _, op :: args) -> (
      let* args =
        List.fold_left
          (fun acc a ->
            let* acc = acc in
            let* a = math_of_node a in
            Ok (a :: acc))
          (Ok []) args
      in
      let args = List.rev args in
      let binary_chain mk = function
        | a :: b :: rest ->
            Ok (List.fold_left (fun acc x -> mk acc x) (mk a b) rest)
        | _ -> Error "MathML apply needs at least two operands"
      in
      match (Xml.tag op, args) with
      | Some "plus", args -> binary_chain (fun a b -> Math.Add (a, b)) args
      | Some "times", args -> binary_chain (fun a b -> Math.Mul (a, b)) args
      | Some "minus", [ a ] -> Ok (Math.Neg a)
      | Some "minus", args -> binary_chain (fun a b -> Math.Sub (a, b)) args
      | Some "divide", args -> binary_chain (fun a b -> Math.Div (a, b)) args
      | Some "power", args -> binary_chain (fun a b -> Math.Pow (a, b)) args
      | Some "min", args -> binary_chain (fun a b -> Math.Min (a, b)) args
      | Some "max", args -> binary_chain (fun a b -> Math.Max (a, b)) args
      | Some "exp", [ a ] -> Ok (Math.Exp a)
      | Some "ln", [ a ] -> Ok (Math.Ln a)
      | Some other, _ ->
          Error (Printf.sprintf "unsupported MathML operator <%s>" other)
      | None, _ -> Error "missing MathML operator in <apply>")
  | Xml.Element ("apply", _, []) -> Error "empty MathML <apply>"
  | Xml.Element (tag, _, _) ->
      Error (Printf.sprintf "unsupported MathML element <%s>" tag)

let math_of_xml node =
  match node with
  | Xml.Element ("math", _, [ body ]) -> math_of_node body
  | Xml.Element ("math", _, _) ->
      Error "<math> must contain exactly one expression"
  | Xml.Element (tag, _, _) ->
      Error (Printf.sprintf "expected <math>, found <%s>" tag)
  | Xml.Text _ -> Error "expected <math>, found text"

(* ---- model writing ---- *)

let bool_attr b = if b then "true" else "false"

let species_node (s : Model.species) =
  Xml.element "species"
    ~attrs:
      [
        ("id", s.s_id);
        ("name", s.s_name);
        ("compartment", "cell");
        ("initialAmount", Printf.sprintf "%.17g" s.s_initial);
        ("hasOnlySubstanceUnits", "true");
        ("boundaryCondition", bool_attr s.s_boundary);
        ("constant", "false");
      ]
    []

let parameter_node (p : Model.parameter) =
  Xml.element "parameter"
    ~attrs:
      [
        ("id", p.p_id);
        ("value", Printf.sprintf "%.17g" p.p_value);
        ("constant", "true");
      ]
    []

let species_ref (id, st) =
  Xml.element "speciesReference"
    ~attrs:
      [
        ("species", id);
        ("stoichiometry", string_of_int st);
        ("constant", "true");
      ]
    []

let modifier_ref id =
  Xml.element "modifierSpeciesReference" ~attrs:[ ("species", id) ] []

let reaction_node (r : Model.reaction) =
  let side tag refs mk =
    if refs = [] then [] else [ Xml.element tag (List.map mk refs) ]
  in
  Xml.element "reaction"
    ~attrs:[ ("id", r.r_id); ("reversible", "false"); ("fast", "false") ]
    (side "listOfReactants" r.r_reactants species_ref
    @ side "listOfProducts" r.r_products species_ref
    @ side "listOfModifiers" r.r_modifiers modifier_ref
    @ [ Xml.element "kineticLaw" [ math_to_xml r.r_rate ] ])

let to_xml (m : Model.t) =
  Xml.element "sbml"
    ~attrs:[ ("xmlns", sbml_ns); ("level", "3"); ("version", "1") ]
    [
      Xml.element "model"
        ~attrs:[ ("id", m.m_id) ]
        [
          Xml.element "listOfCompartments"
            [
              Xml.element "compartment"
                ~attrs:
                  [ ("id", "cell"); ("size", "1"); ("constant", "true") ]
                [];
            ];
          Xml.element "listOfSpecies" (List.map species_node m.m_species);
          Xml.element "listOfParameters"
            (List.map parameter_node m.m_parameters);
          Xml.element "listOfReactions" (List.map reaction_node m.m_reactions);
        ];
    ]

let to_string m = Xml.to_string (to_xml m)

(* ---- model reading ---- *)

let require_attr name node =
  match Xml.attr name node with
  | Some v -> Ok v
  | None ->
      Error
        (Printf.sprintf "missing attribute %S on <%s>" name
           (match Xml.tag node with Some t -> t | None -> "?"))

let float_attr name node =
  let* v = require_attr name node in
  match float_of_string_opt v with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "attribute %s=%S is not a number" name v)

let species_of_node node =
  let* id = require_attr "id" node in
  let* initial = float_attr "initialAmount" node in
  let boundary =
    match Xml.attr "boundaryCondition" node with
    | Some "true" -> true
    | Some _ | None -> false
  in
  let name = match Xml.attr "name" node with Some n -> n | None -> id in
  Ok (Model.species ~name ~boundary id initial)

let parameter_of_node node =
  let* id = require_attr "id" node in
  let* value = float_attr "value" node in
  Ok (Model.parameter id value)

let species_ref_of_node node =
  let* id = require_attr "species" node in
  let st =
    match Xml.attr "stoichiometry" node with
    | Some v -> (
        match float_of_string_opt v with
        | Some f when Float.is_integer f -> Ok (int_of_float f)
        | Some _ | None ->
            Error (Printf.sprintf "non-integer stoichiometry %S" v))
    | None -> Ok 1
  in
  let* st = st in
  Ok (id, st)

let collect f nodes =
  List.fold_left
    (fun acc n ->
      let* acc = acc in
      let* x = f n in
      Ok (x :: acc))
    (Ok []) nodes
  |> Result.map List.rev

let reaction_of_node node =
  let* id = require_attr "id" node in
  let side tag =
    match Xml.child tag node with
    | None -> Ok []
    | Some l -> collect species_ref_of_node (Xml.childs "speciesReference" l)
  in
  let* reactants = side "listOfReactants" in
  let* products = side "listOfProducts" in
  let* modifiers =
    match Xml.child "listOfModifiers" node with
    | None -> Ok []
    | Some l ->
        collect
          (fun n -> require_attr "species" n)
          (Xml.childs "modifierSpeciesReference" l)
  in
  let* rate =
    match Xml.child "kineticLaw" node with
    | None -> Error (Printf.sprintf "reaction %S has no kinetic law" id)
    | Some kl -> (
        match Xml.child "math" kl with
        | None -> Error (Printf.sprintf "reaction %S has no <math>" id)
        | Some math -> math_of_xml math)
  in
  Ok (Model.reaction ~reactants ~products ~modifiers ~rate id)

let of_xml node =
  match node with
  | Xml.Element ("sbml", _, _) -> (
      match Xml.child "model" node with
      | None -> Error "no <model> element in <sbml>"
      | Some model_node ->
          let id =
            match Xml.attr "id" model_node with Some i -> i | None -> "model"
          in
          let list_of tag item_tag f =
            match Xml.child tag model_node with
            | None -> Ok []
            | Some l -> collect f (Xml.childs item_tag l)
          in
          let* species = list_of "listOfSpecies" "species" species_of_node in
          let* parameters =
            list_of "listOfParameters" "parameter" parameter_of_node
          in
          let* reactions =
            list_of "listOfReactions" "reaction" reaction_of_node
          in
          let m =
            {
              Model.m_id = id;
              m_species = species;
              m_parameters = parameters;
              m_reactions = reactions;
            }
          in
          (match Model.validate m with
          | [] -> Ok m
          | errs -> Error (String.concat "; " errs)))
  | Xml.Element (tag, _, _) ->
      Error (Printf.sprintf "expected <sbml> root, found <%s>" tag)
  | Xml.Text _ -> Error "expected <sbml> root, found text"

let of_string s =
  let* xml = Xml.parse s in
  of_xml xml

let write_file path m =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string m))

let read_file path =
  let ic = open_in path in
  let content =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  of_string content
