(** Minimal XML tree, printer and parser.

    Supports exactly what the SBML/SBOL subsets need: elements with
    attributes, text content, the five predefined entities, comments and
    processing instructions (skipped on input). No namespaces beyond plain
    prefixed names, no DTDs, no CDATA. *)

type t =
  | Element of string * (string * string) list * t list
      (** [Element (tag, attributes, children)] *)
  | Text of string

val element : ?attrs:(string * string) list -> string -> t list -> t
(** Construction shorthand. *)

val text : string -> t

val tag : t -> string option
(** [Some tag] for an element, [None] for text. *)

val attr : string -> t -> string option
(** Attribute lookup on an element; [None] on text nodes or absence. *)

val children : t -> t list
(** Child nodes of an element; [[]] for text. *)

val child : string -> t -> t option
(** First child element with the given tag. *)

val childs : string -> t -> t list
(** All child elements with the given tag, in document order. *)

val text_content : t -> string
(** Concatenated text beneath a node, trimmed. *)

val to_string : ?decl:bool -> t -> string
(** Pretty-printed document; [decl] (default [true]) prepends the XML
    declaration. *)

val parse : string -> (t, string) result
(** Parses a single-rooted document. The error string contains the
    position and cause of the first failure. *)
