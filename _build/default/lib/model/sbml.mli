(** SBML subset reader and writer.

    Serialises {!Model.t} to the SBML Level 3 Version 1 core subset that
    genetic-circuit models use: compartment-less well-mixed models with
    species, global parameters, irreversible reactions and MathML kinetic
    laws. A single implicit compartment [cell] is emitted for conformance
    and ignored on input.

    The reader accepts the writer's output (round-trip property, tested)
    and any document restricted to the same subset. *)

val to_xml : Model.t -> Xml.t
val to_string : Model.t -> string

val of_xml : Xml.t -> (Model.t, string) result
val of_string : string -> (Model.t, string) result

val write_file : string -> Model.t -> unit
(** [write_file path m] writes [to_string m] to [path]. *)

val read_file : string -> (Model.t, string) result

val math_to_xml : Math.t -> Xml.t
(** MathML [<math>] element for a kinetic law (exposed for tests). *)

val math_of_xml : Xml.t -> (Math.t, string) result
