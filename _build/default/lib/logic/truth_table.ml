type t = {
  arity : int;
  outputs : Bytes.t; (* outputs.(row) is '\000' or '\001' *)
}

let arity t = t.arity
let rows t = 1 lsl t.arity

let check_arity arity =
  if arity < 0 || arity > 16 then
    invalid_arg (Printf.sprintf "Truth_table: arity %d not in 0..16" arity)

let create ~arity f =
  check_arity arity;
  let n = 1 lsl arity in
  let outputs = Bytes.create n in
  for row = 0 to n - 1 do
    Bytes.set outputs row (if f row then '\001' else '\000')
  done;
  { arity; outputs }

let of_minterms ~arity ms =
  check_arity arity;
  let n = 1 lsl arity in
  List.iter
    (fun m ->
      if m < 0 || m >= n then
        invalid_arg (Printf.sprintf "Truth_table.of_minterms: minterm %d" m))
    ms;
  create ~arity (fun row -> List.mem row ms)

let of_code ~arity code =
  check_arity arity;
  let n = 1 lsl arity in
  if code < 0 || (n < Sys.int_size && code lsr n <> 0) then
    invalid_arg
      (Printf.sprintf "Truth_table.of_code: code 0x%X exceeds %d rows" code n);
  create ~arity (fun row -> (code lsr row) land 1 = 1)

let to_code t =
  let code = ref 0 in
  for row = rows t - 1 downto 0 do
    code := (!code lsl 1) lor Char.code (Bytes.get t.outputs row)
  done;
  !code

let of_outputs os =
  let n = List.length os in
  let arity =
    let rec log2 acc m =
      if m = 1 then acc
      else if m land 1 = 1 || m = 0 then
        invalid_arg "Truth_table.of_outputs: length is not a power of two"
      else log2 (acc + 1) (m lsr 1)
    in
    if n = 0 then invalid_arg "Truth_table.of_outputs: empty" else log2 0 n
  in
  let a = Array.of_list os in
  create ~arity (fun row -> a.(row))

let output t row =
  if row < 0 || row >= rows t then
    invalid_arg (Printf.sprintf "Truth_table.output: row %d" row);
  Bytes.get t.outputs row = '\001'

let row_of_bits bits =
  let r = ref 0 in
  for i = Array.length bits - 1 downto 0 do
    r := (!r lsl 1) lor (if bits.(i) then 1 else 0)
  done;
  !r

let bits_of_row ~arity row =
  Array.init arity (fun i -> (row lsr i) land 1 = 1)

let eval t inputs =
  if Array.length inputs <> t.arity then
    invalid_arg "Truth_table.eval: wrong number of inputs";
  output t (row_of_bits inputs)

let minterms t =
  let acc = ref [] in
  for row = rows t - 1 downto 0 do
    if output t row then acc := row :: !acc
  done;
  !acc

let maxterms t =
  let acc = ref [] in
  for row = rows t - 1 downto 0 do
    if not (output t row) then acc := row :: !acc
  done;
  !acc

let is_constant t =
  match (minterms t, maxterms t) with
  | [], _ -> Some false
  | _, [] -> Some true
  | _ :: _, _ :: _ -> None

let complement t = create ~arity:t.arity (fun row -> not (output t row))

let equal a b = a.arity = b.arity && Bytes.equal a.outputs b.outputs

let compare a b =
  match Int.compare a.arity b.arity with
  | 0 -> Bytes.compare a.outputs b.outputs
  | c -> c

let hamming_distance a b =
  if a.arity <> b.arity then
    invalid_arg "Truth_table.hamming_distance: arity mismatch";
  let d = ref 0 in
  for row = 0 to rows a - 1 do
    if output a row <> output b row then incr d
  done;
  !d

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  for row = 0 to rows t - 1 do
    if row > 0 then Format.fprintf ppf "@,";
    for i = t.arity - 1 downto 0 do
      Format.pp_print_int ppf ((row lsr i) land 1)
    done;
    Format.fprintf ppf " | %d" (if output t row then 1 else 0)
  done;
  Format.fprintf ppf "@]"

let pp_code ppf t = Format.fprintf ppf "0x%02X" (to_code t)
