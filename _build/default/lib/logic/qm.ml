type implicant = { value : int; mask : int }

let covers imp m = m land lnot imp.mask = imp.value

let implicant_literals ~arity imp =
  let rec go i acc =
    if i < 0 then acc
    else if imp.mask land (1 lsl i) <> 0 then go (i - 1) acc
    else go (i - 1) ((i, imp.value land (1 lsl i) <> 0) :: acc)
  in
  go (arity - 1) []

let implicant_compare a b =
  match Int.compare a.mask b.mask with
  | 0 -> Int.compare a.value b.value
  | c -> c

(* One combining pass: merge implicants (equal mask, values differing in one
   bit) and report which inputs were merged. *)
let combine_once imps =
  let merged = Hashtbl.create 64 in
  let used = Hashtbl.create 64 in
  let arr = Array.of_list imps in
  let n = Array.length arr in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let a = arr.(i) and b = arr.(j) in
      if a.mask = b.mask then begin
        let diff = a.value lxor b.value in
        if diff <> 0 && diff land (diff - 1) = 0 then begin
          let c = { value = a.value land b.value; mask = a.mask lor diff } in
          Hashtbl.replace merged c ();
          Hashtbl.replace used a ();
          Hashtbl.replace used b ()
        end
      end
    done
  done;
  let primes =
    List.filter (fun imp -> not (Hashtbl.mem used imp)) imps
  in
  let next = Hashtbl.fold (fun imp () acc -> imp :: acc) merged [] in
  (primes, List.sort implicant_compare next)

let prime_implicants tt =
  let minterms = Truth_table.minterms tt in
  let rec loop imps acc =
    match imps with
    | [] -> acc
    | _ ->
        let primes, next = combine_once imps in
        loop next (List.rev_append primes acc)
  in
  let initial =
    List.map (fun m -> { value = m; mask = 0 }) minterms
  in
  List.sort_uniq implicant_compare (loop initial [])

let minimise tt =
  match Truth_table.is_constant tt with
  | Some false -> []
  | Some true ->
      [ { value = 0; mask = (1 lsl Truth_table.arity tt) - 1 } ]
  | None ->
      let primes = prime_implicants tt in
      let minterms = Truth_table.minterms tt in
      (* Essential primes: sole cover of some minterm. *)
      let coverers m = List.filter (fun p -> covers p m) primes in
      let essential =
        List.filter_map
          (fun m -> match coverers m with [ p ] -> Some p | _ -> None)
          minterms
        |> List.sort_uniq implicant_compare
      in
      let covered m = List.exists (fun p -> covers p m) essential in
      let remaining = List.filter (fun m -> not (covered m)) minterms in
      (* Greedy completion over the remaining minterms. *)
      let rec greedy chosen remaining =
        match remaining with
        | [] -> chosen
        | _ ->
            let best =
              List.fold_left
                (fun best p ->
                  let gain =
                    List.length (List.filter (covers p) remaining)
                  in
                  match best with
                  | Some (_, g) when g >= gain -> best
                  | _ when gain = 0 -> best
                  | _ -> Some (p, gain))
                None primes
            in
            let p =
              match best with
              | Some (p, _) -> p
              | None -> assert false (* primes always cover all minterms *)
            in
            greedy (p :: chosen)
              (List.filter (fun m -> not (covers p m)) remaining)
      in
      List.sort implicant_compare (greedy essential remaining)

let to_expr ~inputs tt =
  if Truth_table.arity tt <> Array.length inputs then
    invalid_arg "Qm.to_expr: arity mismatch";
  let arity = Array.length inputs in
  let product imp =
    let lits =
      List.map
        (fun (i, positive) ->
          if positive then Expr.Var inputs.(i) else Expr.Not (Var inputs.(i)))
        (implicant_literals ~arity imp)
    in
    match lits with [] -> Expr.True | [ l ] -> l | ls -> Expr.And ls
  in
  match List.map product (minimise tt) with
  | [] -> Expr.False
  | [ p ] -> p
  | ps -> Expr.Or ps

let pp_implicant ~arity ppf imp =
  for i = arity - 1 downto 0 do
    let bit = 1 lsl i in
    if imp.mask land bit <> 0 then Format.pp_print_char ppf '-'
    else Format.pp_print_char ppf (if imp.value land bit <> 0 then '1' else '0')
  done
