lib/logic/expr.ml: Array Format Int List Printf Set String Truth_table
