lib/logic/qm.ml: Array Expr Format Hashtbl Int List Truth_table
