lib/logic/qm.mli: Expr Format Truth_table
