lib/logic/netlist.ml: Array Buffer Format Hashtbl List Printf Qm Set String Truth_table
