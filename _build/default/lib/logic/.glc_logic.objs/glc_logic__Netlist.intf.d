lib/logic/netlist.mli: Format Truth_table
