lib/logic/expr.mli: Format Truth_table
