lib/logic/truth_table.ml: Array Bytes Char Format Int List Printf Sys
