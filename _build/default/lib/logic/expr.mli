(** Boolean expressions over named variables.

    The analysis algorithm of the paper reports the logic it extracts from
    simulation traces as a sum-of-products Boolean expression such as
    [GFP = I1'.I2'.I3' + I1'.I2'.I3]. This module provides the expression
    AST, evaluation, conversion to and from {!Truth_table.t}, and the
    paper-style printer. *)

type t =
  | True
  | False
  | Var of string
  | Not of t
  | And of t list  (** conjunction of two or more terms *)
  | Or of t list  (** disjunction of two or more terms *)

val eval : (string -> bool) -> t -> bool
(** [eval env e] evaluates [e], looking up variables in [env].
    [And []] is [true] and [Or []] is [false]. *)

val vars : t -> string list
(** Variables occurring in the expression, sorted and without duplicates. *)

val to_truth_table : inputs:string array -> t -> Truth_table.t
(** [to_truth_table ~inputs e] tabulates [e] with input [i] of the table
    bound to variable [inputs.(i)]. Variables of [e] not listed in
    [inputs] raise [Invalid_argument]. *)

val of_minterms : inputs:string array -> int list -> t
(** Canonical (unminimised) sum-of-products over the given rows. The empty
    list yields [False]; the complete list yields [True]. *)

val of_truth_table : inputs:string array -> Truth_table.t -> t
(** Canonical sum-of-products of the table's minterms. *)

val equivalent : inputs:string array -> t -> t -> bool
(** Semantic equivalence over the given input ordering. *)

val pp : Format.formatter -> t -> unit
(** Paper-style rendering: products are juxtaposed with [.], negation is a
    postfix prime, sums use [ + ]; e.g. [I1'.I2.I3 + I1.I2'.I3]. General
    (non-SOP) expressions fall back to a parenthesised infix form. *)

val to_string : t -> string

val of_string : string -> (t, string) result
(** Parses both notations {!pp} emits and the usual infix operators:

    - constants [0] and [1];
    - variables (letters, digits, [_], not starting with a digit);
    - negation: postfix ['] or prefix [!] / [~];
    - conjunction: [.], [&], [&&] or [*];
    - disjunction: [+], [|] or [||];
    - parentheses.

    Precedence: negation, then conjunction, then disjunction. The parser
    accepts everything {!pp} prints ([of_string (to_string e)] re-reads
    an equivalent expression, tested). *)
