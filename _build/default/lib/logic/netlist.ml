type net = string

type gate = Not of net | Nor of net * net | Const of bool

type t = {
  inputs : string array;
  output : net;
  gates : (net * gate) list;
}

let gate_nets = function
  | Not a -> [ a ]
  | Nor (a, b) -> [ a; b ]
  | Const _ -> []

let make ~inputs ~output ~gates =
  let module S = Set.Make (String) in
  let defined =
    Array.fold_left (fun s i -> S.add i s) S.empty inputs
  in
  let defined =
    List.fold_left
      (fun defined (net, gate) ->
        if S.mem net defined then
          invalid_arg (Printf.sprintf "Netlist.make: net %S defined twice" net);
        List.iter
          (fun used ->
            if not (S.mem used defined) then
              invalid_arg
                (Printf.sprintf
                   "Netlist.make: net %S used before definition in %S" used net))
          (gate_nets gate);
        S.add net defined)
      defined gates
  in
  if not (S.mem output defined) then
    invalid_arg (Printf.sprintf "Netlist.make: undefined output net %S" output);
  { inputs; output; gates }

let eval t ins =
  if Array.length ins <> Array.length t.inputs then
    invalid_arg "Netlist.eval: wrong number of inputs";
  let values = Hashtbl.create 32 in
  Array.iteri (fun i name -> Hashtbl.replace values name ins.(i)) t.inputs;
  let get net =
    match Hashtbl.find_opt values net with
    | Some v -> v
    | None -> assert false (* make guarantees definition order *)
  in
  List.iter
    (fun (net, gate) ->
      let v =
        match gate with
        | Not a -> not (get a)
        | Nor (a, b) -> not (get a || get b)
        | Const b -> b
      in
      Hashtbl.replace values net v)
    t.gates;
  get t.output

let to_truth_table t =
  let arity = Array.length t.inputs in
  Truth_table.create ~arity (fun row ->
      eval t (Truth_table.bits_of_row ~arity row))

let gate_count t = List.length t.gates

let depth t =
  let depths = Hashtbl.create 32 in
  Array.iter (fun i -> Hashtbl.replace depths i 0) t.inputs;
  let get net =
    match Hashtbl.find_opt depths net with
    | Some d -> d
    | None -> assert false
  in
  List.iter
    (fun (net, gate) ->
      let d =
        match gate with
        | Not a -> 1 + get a
        | Nor (a, b) -> 1 + max (get a) (get b)
        | Const _ -> 1
      in
      Hashtbl.replace depths net d)
    t.gates;
  get t.output

let logic_gates t = t.gates

(* Synthesis: minimised SOP -> NOT/NOR gates with structural sharing.

   The builder hash-conses on gate structure so a literal inverted twice or
   a product shared between two sum terms costs one gate. *)

module Builder = struct
  type state = {
    mutable defs : (net * gate) list; (* reverse topological order *)
    memo : (gate, net) Hashtbl.t;
    mutable fresh : int;
  }

  let create () = { defs = []; memo = Hashtbl.create 32; fresh = 0 }

  let emit st gate =
    match Hashtbl.find_opt st.memo gate with
    | Some net -> net
    | None ->
        st.fresh <- st.fresh + 1;
        let net = Printf.sprintf "n%d" st.fresh in
        st.defs <- (net, gate) :: st.defs;
        Hashtbl.replace st.memo gate net;
        net

  let mk_not st a = emit st (Not a)

  let mk_nor st a b =
    (* Canonical operand order maximises sharing. *)
    let a, b = if String.compare a b <= 0 then (a, b) else (b, a) in
    emit st (Nor (a, b))

  let mk_or st a b = mk_not st (mk_nor st a b)
  let mk_and st a b = mk_nor st (mk_not st a) (mk_not st b)

  let rec reduce st f = function
    | [] -> invalid_arg "Netlist.Builder.reduce: empty"
    | [ x ] -> x
    | x :: y :: rest -> reduce st f (f st x y :: rest)

  let finish st = List.rev st.defs
end

let of_sop ~inputs tt =
  let arity = Array.length inputs in
  let st = Builder.create () in
  let product imp =
    let literal (i, positive) =
      if positive then inputs.(i) else Builder.mk_not st inputs.(i)
    in
    match Qm.implicant_literals ~arity imp with
    | [] -> assert false (* non-constant function: no empty implicant *)
    | lits -> Builder.reduce st Builder.mk_and (List.map literal lits)
  in
  let products = List.map product (Qm.minimise tt) in
  let output = Builder.reduce st Builder.mk_or products in
  make ~inputs ~output ~gates:(Builder.finish st)

(* Exact-flavoured synthesis for arity <= 3: dynamic programming over all
   2^2^arity Boolean functions, relaxing tree costs under {NOT, NOR2}
   until fixpoint, then extracting with structural sharing. This is the
   kind of optimisation Cello's logic synthesis performs and keeps the
   benchmark circuits within the paper's 1-7 gate range. *)
let of_small ~inputs tt =
  let arity = Array.length inputs in
  let rows = 1 lsl arity in
  let nf = 1 lsl rows in
  let mask = nf - 1 in
  let target = Truth_table.to_code tt in
  let input_code i =
    (* bit r of the code is the value of input i on row r *)
    let c = ref 0 in
    for r = rows - 1 downto 0 do
      c := (!c lsl 1) lor ((r lsr i) land 1)
    done;
    !c
  in
  let cost = Array.make nf max_int in
  let pred = Array.make nf `None in
  Array.iteri
    (fun i _ ->
      let c = input_code i in
      if cost.(c) > 0 then begin
        cost.(c) <- 0;
        pred.(c) <- `Input i
      end)
    inputs;
  let changed = ref true in
  while !changed do
    changed := false;
    for f = 0 to nf - 1 do
      if cost.(f) < max_int then begin
        let cf = cost.(f) in
        let nf_code = lnot f land mask in
        if cf + 1 < cost.(nf_code) then begin
          cost.(nf_code) <- cf + 1;
          pred.(nf_code) <- `Not f;
          changed := true
        end;
        for g = f to nf - 1 do
          if cost.(g) < max_int then begin
            let nor = lnot (f lor g) land mask in
            let c = cf + cost.(g) + 1 in
            if c < cost.(nor) then begin
              cost.(nor) <- c;
              pred.(nor) <- `Nor (f, g);
              changed := true
            end
          end
        done
      end
    done
  done;
  assert (cost.(target) < max_int);
  let st = Builder.create () in
  let memo = Hashtbl.create 16 in
  let rec emit f =
    match Hashtbl.find_opt memo f with
    | Some net -> net
    | None ->
        let net =
          match pred.(f) with
          | `Input i -> inputs.(i)
          | `Not g -> Builder.mk_not st (emit g)
          | `Nor (g, h) -> Builder.mk_nor st (emit g) (emit h)
          | `None -> assert false
        in
        Hashtbl.replace memo f net;
        net
  in
  let output = emit target in
  make ~inputs ~output ~gates:(Builder.finish st)

let of_truth_table ~inputs tt =
  if Truth_table.arity tt <> Array.length inputs then
    invalid_arg "Netlist.of_truth_table: arity mismatch";
  match Truth_table.is_constant tt with
  | Some b -> make ~inputs ~output:"const" ~gates:[ ("const", Const b) ]
  | None ->
      if Truth_table.arity tt <= 3 then of_small ~inputs tt
      else of_sop ~inputs tt

let to_verilog ?(name = "circuit") t =
  let buf = Buffer.create 512 in
  let inputs = Array.to_list t.inputs in
  Buffer.add_string buf
    (Printf.sprintf "module %s(%s, output y);\n" name
       (String.concat ", " (List.map (fun i -> "input " ^ i) inputs)));
  (match List.map fst t.gates with
  | [] -> ()
  | nets ->
      Buffer.add_string buf
        (Printf.sprintf "  wire %s;\n" (String.concat ", " nets)));
  List.iteri
    (fun k (net, gate) ->
      match gate with
      | Not a ->
          Buffer.add_string buf
            (Printf.sprintf "  not g%d(%s, %s);\n" k net a)
      | Nor (a, b) ->
          Buffer.add_string buf
            (Printf.sprintf "  nor g%d(%s, %s, %s);\n" k net a b)
      | Const b ->
          Buffer.add_string buf
            (Printf.sprintf "  assign %s = 1'b%d;\n" net
               (if b then 1 else 0)))
    t.gates;
  Buffer.add_string buf (Printf.sprintf "  assign y = %s;\n" t.output);
  Buffer.add_string buf "endmodule\n";
  Buffer.contents buf

let pp ppf t =
  Format.fprintf ppf "@[<v>inputs: %a@,output: %s@,"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf " ")
       Format.pp_print_string)
    (Array.to_list t.inputs)
    t.output;
  List.iter
    (fun (net, gate) ->
      match gate with
      | Not a -> Format.fprintf ppf "%s = NOT %s@," net a
      | Nor (a, b) -> Format.fprintf ppf "%s = NOR %s %s@," net a b
      | Const b -> Format.fprintf ppf "%s = CONST %b@," net b)
    t.gates;
  Format.fprintf ppf "@]"
