(** Gate-level netlists over the genetic gate repertoire.

    Cello (Nielsen et al., Science 2016) builds genetic circuits out of
    NOT and 2-input NOR gates only, because those are the logic functions
    a single repressor-based genetic gate can realise. This module models
    such netlists and synthesises them from truth tables via
    {!Qm} minimisation followed by technology mapping (AND/OR/NOT of the
    sum-of-products decomposed into NOT/NOR pairs with structural
    sharing). *)

type net = string
(** Nets are named: input names, or synthesised internal names [n1], … *)

type gate =
  | Not of net
  | Nor of net * net
  | Const of bool
      (** Degenerate case for constant functions; never produced for
          non-constant tables. *)

type t = private {
  inputs : string array;  (** primary input nets, index = table input *)
  output : net;  (** the net holding the circuit output *)
  gates : (net * gate) list;  (** definitions in topological order *)
}

val make : inputs:string array -> output:net -> gates:(net * gate) list -> t
(** Checks well-formedness: gate definitions are topologically ordered, no
    net is defined twice or shadows an input, every referenced net is
    defined, and the output net exists.
    @raise Invalid_argument otherwise. *)

val of_truth_table : inputs:string array -> Truth_table.t -> t
(** Synthesise a NOT/NOR netlist computing the given table. *)

val eval : t -> bool array -> bool
(** [eval t ins] computes the output for the given input values.
    @raise Invalid_argument if [Array.length ins <> Array.length t.inputs]. *)

val to_truth_table : t -> Truth_table.t
(** Exhaustive tabulation of {!eval}. *)

val gate_count : t -> int
(** Number of gates (NOT + NOR; [Const] counts as one). *)

val depth : t -> int
(** Longest input-to-output path measured in gates. 0 when the output is a
    primary input. *)

val logic_gates : t -> (net * gate) list
(** Alias for the [gates] field, in topological order. *)

val pp : Format.formatter -> t -> unit

val to_verilog : ?name:string -> t -> string
(** Structural Verilog of the netlist (gate primitives [not] and [nor]),
    one module with the primary inputs as ports and one output [y].
    Net names must already be valid Verilog identifiers (the synthesiser
    only produces such names). [name] defaults to ["circuit"]. *)
