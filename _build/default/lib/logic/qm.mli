(** Two-level logic minimisation (Quine–McCluskey).

    Used by the Cello-style synthesis front-end to turn a truth-table code
    such as [0x1C] into a compact sum-of-products before NOR technology
    mapping, exactly as a genetic design automation flow would.

    Cover selection takes all essential prime implicants and completes the
    cover greedily (largest remaining coverage first); the result is always
    a correct cover and minimal in all the small cases exercised here, but
    greedy completion is not guaranteed minimum in general. *)

type implicant = {
  value : int;  (** fixed bit values; zero on don't-care positions *)
  mask : int;  (** set bits mark don't-care positions *)
}

val covers : implicant -> int -> bool
(** [covers imp m] tests whether minterm [m] is covered by [imp]. *)

val implicant_literals : arity:int -> implicant -> (int * bool) list
(** The fixed literals of an implicant as [(input index, polarity)] pairs,
    in increasing index order. *)

val prime_implicants : Truth_table.t -> implicant list
(** All prime implicants of the function, in a deterministic order. *)

val minimise : Truth_table.t -> implicant list
(** A prime-implicant cover of the function (see note above). The constant
    [false] function yields [[]]; the constant [true] function yields a
    single all-don't-care implicant. *)

val to_expr : inputs:string array -> Truth_table.t -> Expr.t
(** Minimised sum-of-products expression of a truth table. *)

val pp_implicant : arity:int -> Format.formatter -> implicant -> unit
(** Cube notation, e.g. [1-0] for arity 3 (input 2 = 1, input 1 = don't
    care, input 0 = 0; leftmost character is the highest input index). *)
