type t =
  | True
  | False
  | Var of string
  | Not of t
  | And of t list
  | Or of t list

let rec eval env = function
  | True -> true
  | False -> false
  | Var v -> env v
  | Not e -> not (eval env e)
  | And es -> List.for_all (eval env) es
  | Or es -> List.exists (eval env) es

let vars e =
  let module S = Set.Make (String) in
  let rec collect acc = function
    | True | False -> acc
    | Var v -> S.add v acc
    | Not e -> collect acc e
    | And es | Or es -> List.fold_left collect acc es
  in
  S.elements (collect S.empty e)

let to_truth_table ~inputs e =
  let index name =
    let rec find i =
      if i >= Array.length inputs then
        invalid_arg
          (Printf.sprintf "Expr.to_truth_table: unknown variable %S" name)
      else if String.equal inputs.(i) name then i
      else find (i + 1)
    in
    find 0
  in
  (* Resolve names once so evaluation per row is a pure bit test. *)
  let rec resolve = function
    | True -> fun _ -> true
    | False -> fun _ -> false
    | Var v ->
        let i = index v in
        fun row -> (row lsr i) land 1 = 1
    | Not e ->
        let f = resolve e in
        fun row -> not (f row)
    | And es ->
        let fs = List.map resolve es in
        fun row -> List.for_all (fun f -> f row) fs
    | Or es ->
        let fs = List.map resolve es in
        fun row -> List.exists (fun f -> f row) fs
  in
  let f = resolve e in
  Truth_table.create ~arity:(Array.length inputs) f

let minterm_product ~inputs row =
  let lits =
    Array.to_list
      (Array.mapi
         (fun i name ->
           if (row lsr i) land 1 = 1 then Var name else Not (Var name))
         inputs)
  in
  match lits with [] -> True | [ l ] -> l | ls -> And ls

let of_minterms ~inputs ms =
  let n = 1 lsl Array.length inputs in
  let ms = List.sort_uniq Int.compare ms in
  if List.length ms = n then True
  else
    match List.map (minterm_product ~inputs) ms with
    | [] -> False
    | [ p ] -> p
    | ps -> Or ps

let of_truth_table ~inputs tt =
  if Truth_table.arity tt <> Array.length inputs then
    invalid_arg "Expr.of_truth_table: arity mismatch";
  of_minterms ~inputs (Truth_table.minterms tt)

let equivalent ~inputs a b =
  Truth_table.equal (to_truth_table ~inputs a) (to_truth_table ~inputs b)

(* Paper-style SOP rendering when the shape allows, infix otherwise. *)

let rec is_literal = function
  | Var _ -> true
  | Not e -> is_literal e
  | True | False | And _ | Or _ -> false

let is_product = function
  | e when is_literal e -> true
  | And es -> List.for_all is_literal es
  | True | False | Var _ | Not _ | Or _ -> false

let is_sop = function
  | e when is_product e -> true
  | Or es -> List.for_all is_product es
  | True | False | Var _ | Not _ | And _ -> false

let rec pp_literal ppf = function
  | Var v -> Format.pp_print_string ppf v
  | Not e ->
      pp_literal ppf e;
      Format.pp_print_char ppf '\''
  | True | False | And _ | Or _ -> assert false

let pp_product ppf = function
  | And es ->
      Format.pp_print_list
        ~pp_sep:(fun ppf () -> Format.pp_print_char ppf '.')
        pp_literal ppf es
  | e -> pp_literal ppf e

let pp_sop ppf = function
  | Or es ->
      Format.pp_print_list
        ~pp_sep:(fun ppf () -> Format.fprintf ppf " + ")
        pp_product ppf es
  | e -> pp_product ppf e

let rec pp_infix ppf = function
  | True -> Format.pp_print_string ppf "1"
  | False -> Format.pp_print_string ppf "0"
  | Var v -> Format.pp_print_string ppf v
  | Not e -> Format.fprintf ppf "!(%a)" pp_infix e
  | And es ->
      Format.fprintf ppf "(%a)"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf " & ")
           pp_infix)
        es
  | Or es ->
      Format.fprintf ppf "(%a)"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf " | ")
           pp_infix)
        es

let pp ppf e =
  match e with
  | True -> Format.pp_print_string ppf "1"
  | False -> Format.pp_print_string ppf "0"
  | e when is_sop e -> pp_sop ppf e
  | e -> pp_infix ppf e

let to_string e = Format.asprintf "%a" pp e

(* Recursive-descent parser.

   disjunction := conjunction (('+' | '|' | '||') conjunction)*
   conjunction := negation (('.' | '&' | '&&' | '*') negation)*
   negation    := ('!' | '~') negation | atom '''*
   atom        := '0' | '1' | variable | '(' disjunction ')'           *)

exception Parse_fail of int * string

let of_string input =
  let len = String.length input in
  let pos = ref 0 in
  let fail msg = raise (Parse_fail (!pos, msg)) in
  let peek () = if !pos < len then Some input.[!pos] else None in
  let skip_spaces () =
    while
      !pos < len
      && (match input.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr pos
    done
  in
  let eat c =
    match peek () with
    | Some c' when c' = c -> incr pos
    | Some _ | None -> fail (Printf.sprintf "expected %C" c)
  in
  (* consumes an operator spelled by one or two characters *)
  let try_op chars =
    skip_spaces ();
    match peek () with
    | Some c when List.mem c chars ->
        incr pos;
        (* allow doubled forms && and || *)
        (match (c, peek ()) with
        | ('&', Some '&') | ('|', Some '|') -> incr pos
        | _ -> ());
        true
    | Some _ | None -> false
  in
  let is_var_start = function
    | 'a' .. 'z' | 'A' .. 'Z' | '_' -> true
    | _ -> false
  in
  let is_var_char c = is_var_start c || match c with '0' .. '9' -> true | _ -> false in
  let read_var () =
    let start = !pos in
    while !pos < len && is_var_char input.[!pos] do
      incr pos
    done;
    String.sub input start (!pos - start)
  in
  let rec disjunction () =
    let first = conjunction () in
    let rec more acc =
      if try_op [ '+'; '|' ] then more (conjunction () :: acc)
      else List.rev acc
    in
    match more [ first ] with [ e ] -> e | es -> Or es
  and conjunction () =
    let first = negation () in
    let rec more acc =
      if try_op [ '.'; '&'; '*' ] then more (negation () :: acc)
      else List.rev acc
    in
    match more [ first ] with [ e ] -> e | es -> And es
  and negation () =
    skip_spaces ();
    match peek () with
    | Some ('!' | '~') ->
        incr pos;
        Not (negation ())
    | Some _ | None -> postfix (atom ())
  and postfix e =
    (* postfix primes bind tighter than any infix operator *)
    match peek () with
    | Some '\'' ->
        incr pos;
        postfix (Not e)
    | Some _ | None -> e
  and atom () =
    skip_spaces ();
    match peek () with
    | Some '(' ->
        eat '(';
        let e = disjunction () in
        skip_spaces ();
        eat ')';
        e
    | Some '0' ->
        incr pos;
        False
    | Some '1' ->
        incr pos;
        True
    | Some c when is_var_start c -> Var (read_var ())
    | Some c -> fail (Printf.sprintf "unexpected %C" c)
    | None -> fail "unexpected end of input"
  in
  match
    let e = disjunction () in
    skip_spaces ();
    if !pos <> len then fail "trailing input";
    e
  with
  | e -> Ok e
  | exception Parse_fail (p, msg) ->
      Error (Printf.sprintf "parse error at offset %d: %s" p msg)
