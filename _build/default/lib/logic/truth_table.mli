(** Truth tables of [n]-input single-output Boolean functions.

    A table over [arity] inputs has [2^arity] rows. Row [r] is the input
    combination whose bit [i] (counting from the least significant bit) is
    the value of input [i]; e.g. for a 3-input table, row [0b011] assigns
    input 0 = 1, input 1 = 1, input 2 = 0.

    The hexadecimal {e code} of a table — the encoding used by Cello
    (Nielsen et al., Science 2016) to name circuits such as [0x0B] — packs
    the output column into an integer: bit [r] of the code is the output of
    row [r]. *)

type t

val arity : t -> int
(** Number of inputs. *)

val rows : t -> int
(** Number of rows, i.e. [2^arity]. *)

val create : arity:int -> (int -> bool) -> t
(** [create ~arity f] tabulates [f row] for every row.
    @raise Invalid_argument if [arity] is not in [0..16]. *)

val of_minterms : arity:int -> int list -> t
(** [of_minterms ~arity ms] is the table that is true exactly on the rows
    listed in [ms].
    @raise Invalid_argument if a minterm is outside [0 .. 2^arity - 1]. *)

val of_code : arity:int -> int -> t
(** [of_code ~arity c] decodes a Cello-style hexadecimal truth-table code.
    @raise Invalid_argument if [c] has bits beyond row [2^arity - 1]. *)

val to_code : t -> int
(** Inverse of {!of_code}. *)

val of_outputs : bool list -> t
(** [of_outputs os] builds a table from the full output column, row 0 first.
    @raise Invalid_argument if the length of [os] is not a power of two. *)

val output : t -> int -> bool
(** [output t row] is the output of [t] on [row].
    @raise Invalid_argument if [row] is out of range. *)

val eval : t -> bool array -> bool
(** [eval t inputs] evaluates the table on named input values, where
    [inputs.(i)] is the value of input [i].
    @raise Invalid_argument if [Array.length inputs <> arity t]. *)

val minterms : t -> int list
(** Rows on which the table is true, in increasing order. *)

val maxterms : t -> int list
(** Rows on which the table is false, in increasing order. *)

val is_constant : t -> bool option
(** [Some b] if the table is constantly [b], [None] otherwise. *)

val complement : t -> t
(** Pointwise negation. *)

val equal : t -> t -> bool
val compare : t -> t -> int

val hamming_distance : t -> t -> int
(** Number of rows on which two tables of equal arity disagree.
    @raise Invalid_argument on arity mismatch. *)

val row_of_bits : bool array -> int
(** [row_of_bits bs] packs input values into a row index (input 0 at the
    least significant bit). *)

val bits_of_row : arity:int -> int -> bool array
(** Inverse of {!row_of_bits} for a given arity. *)

val pp : Format.formatter -> t -> unit
(** Renders the full table, one row per line. *)

val pp_code : Format.formatter -> t -> unit
(** Renders the Cello-style code, e.g. [0x0B]. *)
