(** Deterministic (ODE) simulation of kinetic models.

    D-VASim offers deterministic simulation next to the SSA; the paper
    motivates the SSA by the small molecule counts in a cell, and the
    ablation benchmarks here use the ODE limit to separate what the
    analysis algorithm owes to noise handling from what it owes to logic
    reconstruction.

    Each kinetic law is read as a continuous flux (the thermodynamic
    limit of the propensity); species follow
    [dx/dt = sum over reactions of stoichiometry * flux]. Integration is
    classic fixed-step fourth-order Runge–Kutta, split at event times so
    the virtual-lab input steps stay sharp. States are clamped at zero. *)

module Model := Glc_model.Model

type config = {
  t0 : float;
  t_end : float;
  dt : float;  (** trace sampling step *)
  step : float;  (** RK4 integration step; must not exceed [dt] *)
}

val config : ?t0:float -> ?dt:float -> ?step:float -> t_end:float -> unit
  -> config
(** Defaults: [t0 = 0.], [dt = 1.], [step = 0.1].
    @raise Invalid_argument if [step <= 0], [step > dt] or
    [t_end < t0]. *)

val run : ?events:Events.schedule -> config -> Model.t -> Trace.t

val run_compiled :
  ?events:Events.schedule -> config -> Compiled.t -> Trace.t

val steady_state :
  ?max_time:float -> ?tolerance:float -> Model.t ->
  (string * float) list
(** Integrates until the largest relative change per unit time falls
    below [tolerance] (default [1e-9], [max_time] 100,000) and returns
    the settled amounts — a DC operating-point analysis. *)
