(** Deterministic pseudo-random numbers for reproducible simulations.

    xoshiro256++ seeded through splitmix64, implemented here so every
    platform and OCaml version produces bit-identical stochastic traces —
    a requirement for the regression tests that pin analysis results. *)

type t

val create : int -> t
(** [create seed] builds a generator; equal seeds give equal streams. *)

val copy : t -> t
(** Independent copy continuing from the same state. *)

val split : t -> t
(** A new generator derived from (and advancing) [t]; streams are
    decorrelated, used to give each experiment repetition its own RNG. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float
(** Uniform in [\[0, 1)] with 53-bit resolution. *)

val float_pos : t -> float
(** Uniform in [(0, 1]] — safe as an argument to [log]. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].
    @raise Invalid_argument if [bound <= 0]. *)

val exponential : t -> rate:float -> float
(** Exponentially distributed waiting time with the given rate.
    @raise Invalid_argument if [rate <= 0]. *)

val gaussian : t -> float
(** Standard normal deviate (Box–Muller). *)

val poisson : t -> mean:float -> int
(** Poisson-distributed count. Exact (Knuth) for means below 30, normal
    approximation above — the regime split used by tau-leaping codes.
    @raise Invalid_argument if [mean < 0]. *)
