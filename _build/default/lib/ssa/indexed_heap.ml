type t = {
  keys : float array; (* keyed by id *)
  heap : int array; (* heap positions hold ids *)
  pos : int array; (* pos.(id) = position in heap *)
}

let create n =
  if n < 0 then invalid_arg "Indexed_heap.create: negative size";
  {
    keys = Array.make n infinity;
    heap = Array.init n (fun i -> i);
    pos = Array.init n (fun i -> i);
  }

let size h = Array.length h.keys

let key h id =
  if id < 0 || id >= size h then invalid_arg "Indexed_heap.key: bad id";
  h.keys.(id)

let swap h i j =
  let a = h.heap.(i) and b = h.heap.(j) in
  h.heap.(i) <- b;
  h.heap.(j) <- a;
  h.pos.(a) <- j;
  h.pos.(b) <- i

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if h.keys.(h.heap.(i)) < h.keys.(h.heap.(parent)) then begin
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let n = Array.length h.heap in
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < n && h.keys.(h.heap.(l)) < h.keys.(h.heap.(!smallest)) then
    smallest := l;
  if r < n && h.keys.(h.heap.(r)) < h.keys.(h.heap.(!smallest)) then
    smallest := r;
  if !smallest <> i then begin
    swap h i !smallest;
    sift_down h !smallest
  end

let update h id k =
  if id < 0 || id >= size h then invalid_arg "Indexed_heap.update: bad id";
  let old = h.keys.(id) in
  h.keys.(id) <- k;
  if k < old then sift_up h h.pos.(id) else sift_down h h.pos.(id)

let min h =
  if size h = 0 then invalid_arg "Indexed_heap.min: empty heap";
  let id = h.heap.(0) in
  (id, h.keys.(id))

let is_valid h =
  let n = Array.length h.heap in
  let ok = ref true in
  for i = 1 to n - 1 do
    let parent = (i - 1) / 2 in
    if h.keys.(h.heap.(parent)) > h.keys.(h.heap.(i)) then ok := false
  done;
  for id = 0 to n - 1 do
    if h.heap.(h.pos.(id)) <> id then ok := false
  done;
  !ok
