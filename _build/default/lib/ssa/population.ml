let mean_of traces =
  match traces with
  | [] -> invalid_arg "Population.mean_of: no traces"
  | first :: rest ->
      let names = Trace.names first in
      let samples = Trace.length first in
      List.iter
        (fun tr ->
          if Trace.names tr <> names || Trace.length tr <> samples then
            invalid_arg "Population.mean_of: mismatched traces")
        rest;
      let count = float_of_int (List.length traces) in
      let acc =
        Array.map (fun id -> Trace.column first id) names
      in
      List.iter
        (fun tr ->
          Array.iteri
            (fun s id ->
              let col = Trace.column tr id in
              Array.iteri
                (fun k v -> acc.(s).(k) <- acc.(s).(k) +. v)
                col)
            names)
        rest;
      let r =
        Trace.Recorder.create ~names
          ~initial:(Array.map (fun col -> col.(0) /. count) acc)
          ~t0:(Trace.t0 first)
          ~t_end:(Trace.time first (samples - 1))
          ~dt:(Trace.dt first)
      in
      for k = 0 to samples - 1 do
        Trace.Recorder.observe r
          (Trace.time first k)
          (Array.map (fun col -> col.(k) /. count) acc)
      done;
      Trace.Recorder.finish r

let run ?events ~cells (cfg : Sim.config) model =
  if cells <= 0 then invalid_arg "Population.run: cells <= 0";
  let compiled = Compiled.compile model in
  let per_cell =
    List.init cells (fun i ->
        let cfg = { cfg with Sim.seed = (cfg.Sim.seed * 65_599) + i } in
        fst (Sim.run_compiled ?events cfg compiled))
  in
  (mean_of per_cell, per_cell)
