(** Cell-population simulation.

    A plate reader measures the aggregate fluorescence of thousands of
    cells, not a single stochastic trajectory; the paper's single-cell
    traces are the worst case for the analysis algorithm. This module
    simulates [cells] statistically independent copies of a circuit
    (same model, same stimuli, independent noise) and reports both the
    per-cell traces and their sample-wise mean — the population signal a
    laboratory would log. *)

module Model := Glc_model.Model

val run :
  ?events:Events.schedule -> cells:int -> Sim.config -> Model.t ->
  Trace.t * Trace.t list
(** [(mean, per_cell)] — cell [i] uses a seed derived from
    [config.seed] and [i], so a population is exactly reproducible.
    @raise Invalid_argument if [cells <= 0]. *)

val mean_of : Trace.t list -> Trace.t
(** Sample-wise average of equally shaped traces.
    @raise Invalid_argument on an empty list or mismatched shapes. *)
