type event = { e_time : float; e_species : string; e_value : float }

type schedule = event list (* sorted by time, stable *)

let empty = []
let set t id v = { e_time = t; e_species = id; e_value = v }

let of_list evs =
  List.stable_sort (fun a b -> Float.compare a.e_time b.e_time) evs

let to_list s = s

let next = function [] -> None | e :: rest -> Some (e, rest)

let next_time = function [] -> infinity | e :: _ -> e.e_time

let rec merge a b =
  match (a, b) with
  | [], s | s, [] -> s
  | x :: xs, y :: ys ->
      if x.e_time <= y.e_time then x :: merge xs b else y :: merge a ys
