(** Indexed binary min-heap over float keys.

    Backbone of the Gibson–Bruck next-reaction method: every reaction owns
    a fixed integer id whose tentative firing time can be updated in
    O(log n) when a dependency changes. *)

type t

val create : int -> t
(** [create n] builds a heap over ids [0 .. n-1], all with key
    [infinity]. *)

val size : t -> int
(** Number of ids (fixed at creation). *)

val key : t -> int -> float
(** Current key of an id. *)

val update : t -> int -> float -> unit
(** [update h id k] changes the key of [id] to [k], restoring heap order.
    @raise Invalid_argument if [id] is out of range. *)

val min : t -> int * float
(** Id and key of the minimum element.
    @raise Invalid_argument on an empty heap. *)

val is_valid : t -> bool
(** Heap-order invariant check (for tests). *)
