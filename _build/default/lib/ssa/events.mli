(** Timed interventions on species amounts.

    The virtual laboratory drives a circuit's input species by clamping
    them to "high" or "low" amounts at scheduled times — the genetic
    analogue of a stimulus generator in an electronic test bench. *)

type event = {
  e_time : float;
  e_species : string;
  e_value : float;  (** absolute amount the species is set to *)
}

type schedule

val empty : schedule

val set : float -> string -> float -> event
(** [set t id v]: at time [t], species [id] becomes [v] molecules. *)

val of_list : event list -> schedule
(** Orders events by time (stable for equal times). *)

val to_list : schedule -> event list
(** Events in firing order. *)

val next : schedule -> (event * schedule) option
(** Earliest event and the remaining schedule. *)

val next_time : schedule -> float
(** Time of the earliest event, or [infinity] if none. *)

val merge : schedule -> schedule -> schedule
