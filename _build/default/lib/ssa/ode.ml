type config = { t0 : float; t_end : float; dt : float; step : float }

let config ?(t0 = 0.) ?(dt = 1.) ?(step = 0.1) ~t_end () =
  if t_end < t0 then invalid_arg "Ode.config: t_end < t0";
  if step <= 0. then invalid_arg "Ode.config: step <= 0";
  if step > dt then invalid_arg "Ode.config: step > dt";
  { t0; t_end; dt; step }

(* dx/dt at the given state; boundary species have zero derivative. *)
let derivative (c : Compiled.t) state dx =
  Array.fill dx 0 (Array.length dx) 0.;
  let a = Compiled.propensities c state in
  Array.iteri
    (fun j r ->
      List.iter
        (fun (i, d) ->
          if not c.Compiled.c_boundary.(i) then
            dx.(i) <- dx.(i) +. (d *. a.(j)))
        r.Compiled.c_deltas)
    c.Compiled.c_reactions;
  dx

let rk4_step (c : Compiled.t) state h =
  let n = Array.length state in
  let k1 = derivative c state (Array.make n 0.) in
  let mid1 = Array.mapi (fun i x -> x +. (h /. 2. *. k1.(i))) state in
  let k2 = derivative c mid1 (Array.make n 0.) in
  let mid2 = Array.mapi (fun i x -> x +. (h /. 2. *. k2.(i))) state in
  let k3 = derivative c mid2 (Array.make n 0.) in
  let last = Array.mapi (fun i x -> x +. (h *. k3.(i))) state in
  let k4 = derivative c last (Array.make n 0.) in
  Array.iteri
    (fun i x ->
      let dx =
        h /. 6. *. (k1.(i) +. (2. *. k2.(i)) +. (2. *. k3.(i)) +. k4.(i))
      in
      state.(i) <- Float.max 0. (x +. dx))
    state

let apply_events_at (c : Compiled.t) state schedule =
  match Events.next schedule with
  | None -> None
  | Some (first, _) ->
      let t = first.Events.e_time in
      let rec go n schedule =
        match Events.next schedule with
        | Some (e, rest) when e.Events.e_time = t ->
            (match Compiled.species_index c e.Events.e_species with
            | i -> state.(i) <- Float.max 0. e.Events.e_value
            | exception Not_found ->
                invalid_arg
                  (Printf.sprintf "Ode: event on unknown species %S"
                     e.Events.e_species));
            go (n + 1) rest
        | Some _ | None -> (n, schedule)
      in
      let n, rest = go 0 schedule in
      Some (t, n, rest)

let run_compiled ?(events = Events.empty) cfg (c : Compiled.t) =
  let state = Array.copy c.Compiled.c_initial in
  let recorder =
    Trace.Recorder.create ~names:c.Compiled.c_names ~initial:state
      ~t0:cfg.t0 ~t_end:cfg.t_end ~dt:cfg.dt
  in
  (* apply events at or before t0 *)
  let rec catch_up events =
    match Events.next events with
    | Some (e, _) when e.Events.e_time <= cfg.t0 -> (
        match apply_events_at c state events with
        | Some (_, _, rest) -> catch_up rest
        | None -> events)
    | Some _ | None -> events
  in
  let events = catch_up events in
  Trace.Recorder.observe recorder cfg.t0 state;
  let rec loop t events =
    if t < cfg.t_end then begin
      let t_ev = Events.next_time events in
      let t_stop = Float.min cfg.t_end t_ev in
      let h = Float.min cfg.step (t_stop -. t) in
      if h > 0. then begin
        rk4_step c state h;
        Trace.Recorder.observe recorder (t +. h) state;
        loop (t +. h) events
      end
      else if t_ev <= cfg.t_end then begin
        match apply_events_at c state events with
        | Some (te, _, rest) ->
            Trace.Recorder.observe recorder te state;
            loop te rest
        | None -> ()
      end
    end
  in
  loop cfg.t0 events;
  Trace.Recorder.finish recorder

let run ?events cfg model = run_compiled ?events cfg (Compiled.compile model)

let steady_state ?(max_time = 100_000.) ?(tolerance = 1e-9) model =
  let c = Compiled.compile model in
  let state = Array.copy c.Compiled.c_initial in
  let n = Array.length state in
  let h = 0.5 in
  let t = ref 0. in
  let settled = ref false in
  while (not !settled) && !t < max_time do
    let before = Array.copy state in
    rk4_step c state h;
    t := !t +. h;
    let change = ref 0. in
    for i = 0 to n - 1 do
      let scale = Float.max 1. (Float.abs before.(i)) in
      change :=
        Float.max !change (Float.abs (state.(i) -. before.(i)) /. scale)
    done;
    settled := !change /. h < tolerance
  done;
  Array.to_list (Array.mapi (fun i id -> (id, state.(i))) c.Compiled.c_names)
