lib/ssa/rng.ml: Float Int64
