lib/ssa/compiled.ml: Array Float Glc_model Hashtbl Int List Option Printf String
