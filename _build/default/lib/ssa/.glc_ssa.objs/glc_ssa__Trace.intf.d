lib/ssa/trace.mli:
