lib/ssa/sim.ml: Array Compiled Events Float Glc_model Indexed_heap List Printf Rng Trace
