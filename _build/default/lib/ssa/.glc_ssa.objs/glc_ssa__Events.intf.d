lib/ssa/events.mli:
