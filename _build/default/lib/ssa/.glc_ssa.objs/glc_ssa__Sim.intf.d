lib/ssa/sim.mli: Compiled Events Glc_model Trace
