lib/ssa/indexed_heap.mli:
