lib/ssa/indexed_heap.ml: Array
