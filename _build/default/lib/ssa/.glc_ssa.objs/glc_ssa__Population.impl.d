lib/ssa/population.ml: Array Compiled List Sim Trace
