lib/ssa/compiled.mli: Glc_model
