lib/ssa/population.mli: Events Glc_model Sim Trace
