lib/ssa/events.ml: Float List
