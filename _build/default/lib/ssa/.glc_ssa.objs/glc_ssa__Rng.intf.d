lib/ssa/rng.mli:
