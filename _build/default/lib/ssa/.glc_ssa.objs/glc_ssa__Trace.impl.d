lib/ssa/trace.ml: Array Buffer Float Fun List Option Printf String
