lib/ssa/ode.ml: Array Compiled Events Float List Printf Trace
