lib/ssa/ode.mli: Compiled Events Glc_model Trace
