module Trace = Glc_ssa.Trace
module Sim = Glc_ssa.Sim
module Compiled = Glc_ssa.Compiled

type t = {
  compiled : Compiled.t;
  seed : int;
  dt : float;
  algorithm : Sim.algorithm;
  mutable state : float array;
  mutable now : float;
  mutable segment : int; (* seeds each run segment differently *)
  mutable log : Trace.t option; (* None until the first run *)
}

let create ?(seed = 42) ?(dt = 1.) ?(algorithm = Sim.Direct) model =
  if dt <= 0. then invalid_arg "Lab.create: dt <= 0";
  let compiled = Compiled.compile model in
  {
    compiled;
    seed;
    dt;
    algorithm;
    state = Array.copy compiled.Compiled.c_initial;
    now = 0.;
    segment = 0;
    log = None;
  }

let time lab = lab.now

let index lab id = Compiled.species_index lab.compiled id

let amount lab id = lab.state.(index lab id)

let set lab id v = lab.state.(index lab id) <- Float.max 0. v

let run lab duration =
  let steps = duration /. lab.dt in
  if duration <= 0. || Float.abs (steps -. Float.round steps) > 1e-9 then
    invalid_arg "Lab.run: duration must be a positive multiple of dt";
  (* resume from the current state: same compiled reactions, new start *)
  let compiled = { lab.compiled with Compiled.c_initial = lab.state } in
  let cfg =
    Sim.config ~t0:lab.now
      ~t_end:(lab.now +. duration)
      ~dt:lab.dt
      ~seed:((lab.seed * 1_000_003) + lab.segment)
      ~algorithm:lab.algorithm ()
  in
  let trace, stats = Sim.run_compiled cfg compiled in
  lab.segment <- lab.segment + 1;
  lab.now <- lab.now +. duration;
  lab.state <-
    Array.of_list (List.map snd stats.Sim.final_state);
  let segment_tail =
    (* the first sample duplicates the previous segment's last one *)
    match lab.log with
    | None -> trace
    | Some _ -> Trace.sub trace ~from:1 ~until:(Trace.length trace)
  in
  lab.log <-
    Some
      (match lab.log with
      | None -> segment_tail
      | Some log -> Trace.concat log segment_tail)

let history lab =
  match lab.log with
  | Some log -> log
  | None ->
      (* no run yet: a single sample of the current state *)
      let r =
        Trace.Recorder.create ~names:lab.compiled.Compiled.c_names
          ~initial:lab.state ~t0:0. ~t_end:0. ~dt:lab.dt
      in
      Trace.Recorder.observe r 0. lab.state;
      Trace.Recorder.finish r

let reset lab =
  lab.state <- Array.copy lab.compiled.Compiled.c_initial;
  lab.now <- 0.;
  lab.segment <- 0;
  lab.log <- None
