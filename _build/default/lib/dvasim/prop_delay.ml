module Trace = Glc_ssa.Trace
module Events = Glc_ssa.Events
module Sim = Glc_ssa.Sim
module Circuit = Glc_gates.Circuit
module Truth_table = Glc_logic.Truth_table

type measurement = {
  from_row : int;
  to_row : int;
  rising : bool;
  delays : float list;
  mean_delay : float;
  max_delay : float;
}

let inputs_events (p : Protocol.t) circuit ~at row =
  Array.to_list
    (Array.mapi
       (fun j species ->
         let v =
           if Circuit.input_value circuit ~row j then p.Protocol.input_high
           else p.Protocol.input_low
         in
         Events.set at species v)
       circuit.Circuit.inputs)

let measure ?(protocol = Protocol.default) ?(repeats = 5) ?settle_time
    ?timeout ~from_row ~to_row circuit =
  let expected = circuit.Circuit.expected in
  let out_from = Truth_table.output expected from_row in
  let out_to = Truth_table.output expected to_row in
  if out_from = out_to then None
  else begin
    let settle =
      match settle_time with
      | Some s -> s
      | None -> 2. *. protocol.Protocol.hold_time
    in
    let timeout =
      match timeout with
      | Some t -> t
      | None -> 5. *. protocol.Protocol.hold_time
    in
    let rising = out_to in
    let model = Circuit.model circuit in
    let threshold = protocol.Protocol.threshold in
    let delays = ref [] in
    for rep = 0 to repeats - 1 do
      let events =
        Events.of_list
          (inputs_events protocol circuit ~at:0. from_row
          @ inputs_events protocol circuit ~at:settle to_row)
      in
      let cfg =
        Sim.config ~dt:protocol.Protocol.dt
          ~seed:((protocol.Protocol.seed * 7919) + rep)
          ~algorithm:protocol.Protocol.algorithm
          ~t_end:(settle +. timeout) ()
      in
      let trace = Sim.run ~events cfg model in
      let out = Trace.column trace circuit.Circuit.output in
      let n = Array.length out in
      let rec find k =
        if k >= n then None
        else begin
          let t = Trace.time trace k in
          if t < settle then find (k + 1)
          else begin
            let crossed =
              if rising then out.(k) >= threshold else out.(k) < threshold
            in
            if crossed then Some (t -. settle) else find (k + 1)
          end
        end
      in
      match find 0 with
      | Some d -> delays := d :: !delays
      | None -> ()
    done;
    match !delays with
    | [] -> None
    | ds ->
        let mean =
          List.fold_left ( +. ) 0. ds /. float_of_int (List.length ds)
        in
        Some
          {
            from_row;
            to_row;
            rising;
            delays = List.rev ds;
            mean_delay = mean;
            max_delay = List.fold_left Float.max neg_infinity ds;
          }
  end

let worst_case ?protocol ?repeats circuit =
  let nc = 1 lsl Circuit.arity circuit in
  let best = ref None in
  for r = 0 to nc - 1 do
    let from_row = r and to_row = (r + 1) mod nc in
    match measure ?protocol ?repeats ~from_row ~to_row circuit with
    | None -> ()
    | Some m -> (
        match !best with
        | Some b when b.mean_delay >= m.mean_delay -> ()
        | Some _ | None -> best := Some m)
  done;
  !best

let matrix ?protocol ?repeats circuit =
  let nc = 1 lsl Circuit.arity circuit in
  let acc = ref [] in
  for from_row = 0 to nc - 1 do
    for to_row = 0 to nc - 1 do
      if from_row <> to_row then
        match measure ?protocol ?repeats ~from_row ~to_row circuit with
        | Some m -> acc := m :: !acc
        | None -> ()
    done
  done;
  List.rev !acc

let recommended_hold ?protocol ?repeats ?(safety = 5.) circuit =
  if safety <= 0. then invalid_arg "Prop_delay.recommended_hold: safety";
  match matrix ?protocol ?repeats circuit with
  | [] -> None
  | ms ->
      let worst =
        List.fold_left (fun acc m -> Float.max acc m.max_delay) 0. ms
      in
      Some (Float.ceil (safety *. worst /. 50.) *. 50.)

let pp ppf m =
  Format.fprintf ppf
    "%d -> %d (%s): mean %.0f t.u., max %.0f t.u. over %d runs" m.from_row
    m.to_row
    (if m.rising then "rising" else "falling")
    m.mean_delay m.max_delay (List.length m.delays)
