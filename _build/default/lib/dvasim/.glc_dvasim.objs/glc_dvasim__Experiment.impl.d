lib/dvasim/experiment.ml: Array Glc_gates Glc_ssa Protocol
