lib/dvasim/prop_delay.ml: Array Float Format Glc_gates Glc_logic Glc_ssa List Protocol
