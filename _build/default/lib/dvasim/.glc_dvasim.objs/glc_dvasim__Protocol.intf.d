lib/dvasim/protocol.mli: Glc_ssa
