lib/dvasim/prop_delay.mli: Format Glc_gates Protocol
