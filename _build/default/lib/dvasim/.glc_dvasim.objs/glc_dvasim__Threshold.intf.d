lib/dvasim/threshold.mli: Format Glc_gates Protocol
