lib/dvasim/threshold.ml: Array Experiment Float Format Glc_gates Glc_ssa Protocol
