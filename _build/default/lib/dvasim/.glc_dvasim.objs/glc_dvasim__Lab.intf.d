lib/dvasim/lab.mli: Glc_model Glc_ssa
