lib/dvasim/protocol.ml: Float Glc_ssa
