lib/dvasim/lab.ml: Array Float Glc_ssa List
