lib/dvasim/experiment.mli: Glc_gates Glc_model Glc_ssa Protocol
