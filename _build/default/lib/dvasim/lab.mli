(** Interactive virtual-laboratory sessions.

    D-VASim's defining feature is {e interactive} stochastic simulation:
    the user loads a model, injects or withdraws species while the
    simulation runs, and watches the response — the workflow behind the
    paper's threshold and propagation-delay analyses. This module is that
    session, programmatically: a mutable experiment that can be advanced,
    intervened on, and logged piecewise.

    {[
      let lab = Lab.create (Circuit.model circuit) in
      Lab.run lab 500.;              (* let it settle        *)
      Lab.set lab "LacI" 15.;        (* inject the inducer   *)
      Lab.run lab 1_000.;            (* watch the response   *)
      assert (Lab.amount lab "GFP" > 15.);
      Trace.write_csv "session.csv" (Lab.history lab)
    ]} *)

module Model := Glc_model.Model
module Trace := Glc_ssa.Trace
module Sim := Glc_ssa.Sim

type t

val create : ?seed:int -> ?dt:float -> ?algorithm:Sim.algorithm ->
  Model.t -> t
(** A fresh session at time 0 in the model's initial state.
    Defaults: [seed = 42], [dt = 1.], direct method.
    @raise Invalid_argument if the model fails validation or
    [dt <= 0]. *)

val time : t -> float
(** Current session time. *)

val amount : t -> string -> float
(** Current amount of a species.
    @raise Not_found for unknown species. *)

val set : t -> string -> float -> unit
(** Clamps a species to an amount, effective immediately (negative
    amounts clamp to zero).
    @raise Not_found for unknown species. *)

val run : t -> float -> unit
(** [run lab d] advances the simulation by [d] time units.
    @raise Invalid_argument if [d] is not a positive multiple of [dt]
    (within rounding). *)

val history : t -> Trace.t
(** Everything logged since the session started (or the last {!reset}),
    sampled every [dt]. *)

val reset : t -> unit
(** Back to time 0 and the model's initial state; the log is cleared and
    the random stream restarts from the seed. *)
