(** Propagation-delay analysis (Baig & Madsen, IWBDA 2016).

    Measures how long the output takes to reflect an input change: the
    circuit is settled on one input combination, switched to a
    combination with the opposite expected output, and the time until the
    output first crosses the threshold in the right direction is
    recorded. The paper derives its 1,000 t.u. hold time from this
    analysis. *)

module Circuit := Glc_gates.Circuit

type measurement = {
  from_row : int;  (** settled combination *)
  to_row : int;  (** combination switched to *)
  rising : bool;  (** whether the output was expected to rise *)
  delays : float list;  (** one measured delay per repetition *)
  mean_delay : float;
  max_delay : float;
}

val measure :
  ?protocol:Protocol.t ->
  ?repeats:int ->
  ?settle_time:float ->
  ?timeout:float ->
  from_row:int ->
  to_row:int ->
  Circuit.t ->
  measurement option
(** [measure ~from_row ~to_row c] measures the transition; [None] when
    the expected output does not change between the rows, or the output
    never crosses the threshold within [timeout] (default
    [5 *. hold_time]) in any repetition. Default [repeats = 5],
    [settle_time = 2 *. hold_time]. Each repetition uses a distinct
    seed derived from the protocol seed. *)

val worst_case :
  ?protocol:Protocol.t -> ?repeats:int -> Circuit.t -> measurement option
(** The slowest transition over all pairs of adjacent counting-order
    combinations whose expected outputs differ — an estimate of the hold
    time the protocol needs. *)

val matrix :
  ?protocol:Protocol.t -> ?repeats:int -> Circuit.t -> measurement list
(** Every ordered pair of combinations with differing expected outputs,
    measured; the full timing characterisation of the circuit. *)

val recommended_hold :
  ?protocol:Protocol.t -> ?repeats:int -> ?safety:float -> Circuit.t ->
  float option
(** [safety] (default 5) times the largest delay in {!matrix}, rounded
    up to the next 50 time units — a hold time with margin, in the
    spirit of the paper's 1,000 t.u. choice. [None] when the circuit has
    no output transition at all. *)

val pp : Format.formatter -> measurement -> unit
