type t =
  | Const of float
  | Ident of string
  | Neg of t
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Div of t * t
  | Pow of t * t
  | Min of t * t
  | Max of t * t
  | Exp of t
  | Ln of t

let rec eval ~lookup = function
  | Const c -> c
  | Ident x -> lookup x
  | Neg a -> -.eval ~lookup a
  | Add (a, b) -> eval ~lookup a +. eval ~lookup b
  | Sub (a, b) -> eval ~lookup a -. eval ~lookup b
  | Mul (a, b) -> eval ~lookup a *. eval ~lookup b
  | Div (a, b) -> eval ~lookup a /. eval ~lookup b
  | Pow (a, b) -> Float.pow (eval ~lookup a) (eval ~lookup b)
  | Min (a, b) -> Float.min (eval ~lookup a) (eval ~lookup b)
  | Max (a, b) -> Float.max (eval ~lookup a) (eval ~lookup b)
  | Exp a -> Float.exp (eval ~lookup a)
  | Ln a -> Float.log (eval ~lookup a)

let idents e =
  let module S = Set.Make (String) in
  let rec go acc = function
    | Const _ -> acc
    | Ident x -> S.add x acc
    | Neg a | Exp a | Ln a -> go acc a
    | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) | Pow (a, b)
    | Min (a, b) | Max (a, b) ->
        go (go acc a) b
  in
  S.elements (go S.empty e)

let rec subst f = function
  | Const c -> Const c
  | Ident x -> ( match f x with Some t -> t | None -> Ident x)
  | Neg a -> Neg (subst f a)
  | Add (a, b) -> Add (subst f a, subst f b)
  | Sub (a, b) -> Sub (subst f a, subst f b)
  | Mul (a, b) -> Mul (subst f a, subst f b)
  | Div (a, b) -> Div (subst f a, subst f b)
  | Pow (a, b) -> Pow (subst f a, subst f b)
  | Min (a, b) -> Min (subst f a, subst f b)
  | Max (a, b) -> Max (subst f a, subst f b)
  | Exp a -> Exp (subst f a)
  | Ln a -> Ln (subst f a)

let num c = Const c
let var x = Ident x
let ( + ) a b = Add (a, b)
let ( - ) a b = Sub (a, b)
let ( * ) a b = Mul (a, b)
let ( / ) a b = Div (a, b)
let ( ** ) a b = Pow (a, b)

let hill_repression ~ymin ~ymax ~k ~n x =
  ymin + ((ymax - ymin) * (k ** n) / ((k ** n) + (x ** n)))

let hill_activation ~ymin ~ymax ~k ~n x =
  ymin + ((ymax - ymin) * (x ** n) / ((k ** n) + (x ** n)))

let rec equal a b =
  match (a, b) with
  | Const x, Const y -> Float.equal x y
  | Ident x, Ident y -> String.equal x y
  | Neg x, Neg y | Exp x, Exp y | Ln x, Ln y -> equal x y
  | Add (x1, x2), Add (y1, y2)
  | Sub (x1, x2), Sub (y1, y2)
  | Mul (x1, x2), Mul (y1, y2)
  | Div (x1, x2), Div (y1, y2)
  | Pow (x1, x2), Pow (y1, y2)
  | Min (x1, x2), Min (y1, y2)
  | Max (x1, x2), Max (y1, y2) ->
      equal x1 y1 && equal x2 y2
  | ( ( Const _ | Ident _ | Neg _ | Add _ | Sub _ | Mul _ | Div _ | Pow _
      | Min _ | Max _ | Exp _ | Ln _ ),
      _ ) ->
      false

(* Shortest decimal rendering that reads back as the same float: plain
   %g keeps 6 significant digits and loses the low bits of most
   doubles, so printing then parsing would change the law. *)
let float_repr c =
  let s = Printf.sprintf "%.12g" c in
  if float_of_string s = c then s
  else
    let s = Printf.sprintf "%.15g" c in
    if float_of_string s = c then s else Printf.sprintf "%.17g" c

(* Precedence levels: Add/Sub 1, Mul/Div 2, unary 3, Pow 4, atoms 5. *)
let rec pp_prec prec ppf e =
  let paren p body =
    if prec > p then Format.fprintf ppf "(%t)" body else body ppf
  in
  match e with
  | Const c when Float.sign_bit c ->
      (* A negative (or negative-zero) literal carries a leading minus,
         so it binds exactly like [Neg]: without this [Pow (Const
         (-3.), x)] would print as [-3^x], which re-reads as
         [-(3^x)] — a different expression. *)
      paren 3 (fun ppf -> Format.pp_print_string ppf (float_repr c))
  | Const c -> Format.pp_print_string ppf (float_repr c)
  | Ident x -> Format.pp_print_string ppf x
  | Neg a -> paren 3 (fun ppf -> Format.fprintf ppf "-%a" (pp_prec 3) a)
  | Add (a, b) ->
      paren 1 (fun ppf ->
          Format.fprintf ppf "%a + %a" (pp_prec 1) a (pp_prec 2) b)
  | Sub (a, b) ->
      paren 1 (fun ppf ->
          Format.fprintf ppf "%a - %a" (pp_prec 1) a (pp_prec 2) b)
  | Mul (a, b) ->
      paren 2 (fun ppf ->
          Format.fprintf ppf "%a * %a" (pp_prec 2) a (pp_prec 3) b)
  | Div (a, b) ->
      paren 2 (fun ppf ->
          Format.fprintf ppf "%a / %a" (pp_prec 2) a (pp_prec 3) b)
  | Pow (a, b) ->
      paren 4 (fun ppf ->
          Format.fprintf ppf "%a^%a" (pp_prec 5) a (pp_prec 4) b)
  | Min (a, b) ->
      Format.fprintf ppf "min(%a, %a)" (pp_prec 0) a (pp_prec 0) b
  | Max (a, b) ->
      Format.fprintf ppf "max(%a, %a)" (pp_prec 0) a (pp_prec 0) b
  | Exp a -> Format.fprintf ppf "exp(%a)" (pp_prec 0) a
  | Ln a -> Format.fprintf ppf "ln(%a)" (pp_prec 0) a

let pp ppf e = pp_prec 0 ppf e
let to_string e = Format.asprintf "%a" pp e

(* Recursive-descent parser, mirroring pp's precedence:

   sum     := product (('+' | '-') product)*
   product := unary (('*' | '/') unary)*
   unary   := '-' unary | power
   power   := atom ('^' unary)?
   atom    := number | ident | fn '(' sum (',' sum)? ')' | '(' sum ')'  *)

exception Parse_fail of int * string

let of_string input =
  (* restore integer subtraction shadowed by this module's operators *)
  let ( - ) = Stdlib.( - ) in
  let len = String.length input in
  let pos = ref 0 in
  let fail msg = raise (Parse_fail (!pos, msg)) in
  let peek () = if !pos < len then Some input.[!pos] else None in
  let skip_spaces () =
    while
      !pos < len
      &&
      match input.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      incr pos
    done
  in
  let eat c =
    skip_spaces ();
    match peek () with
    | Some c' when c' = c -> incr pos
    | Some _ | None -> fail (Printf.sprintf "expected %C" c)
  in
  let try_char c =
    skip_spaces ();
    match peek () with
    | Some c' when c' = c ->
        incr pos;
        true
    | Some _ | None -> false
  in
  let is_digit = function '0' .. '9' -> true | _ -> false in
  let is_ident_start = function
    | 'a' .. 'z' | 'A' .. 'Z' | '_' -> true
    | _ -> false
  in
  let is_ident_char c = is_ident_start c || is_digit c in
  let read_number () =
    let start = !pos in
    while !pos < len && is_digit input.[!pos] do
      incr pos
    done;
    if !pos < len && input.[!pos] = '.' then begin
      incr pos;
      while !pos < len && is_digit input.[!pos] do
        incr pos
      done
    end;
    if !pos < len && (input.[!pos] = 'e' || input.[!pos] = 'E') then begin
      let mark = !pos in
      incr pos;
      if !pos < len && (input.[!pos] = '+' || input.[!pos] = '-') then
        incr pos;
      if !pos < len && is_digit input.[!pos] then
        while !pos < len && is_digit input.[!pos] do
          incr pos
        done
      else pos := mark (* 'e' belonged to an identifier after all *)
    end;
    let s = String.sub input start (!pos - start) in
    match float_of_string_opt s with
    | Some f -> f
    | None -> fail (Printf.sprintf "invalid number %S" s)
  in
  let read_ident () =
    let start = !pos in
    while !pos < len && is_ident_char input.[!pos] do
      incr pos
    done;
    String.sub input start (!pos - start)
  in
  let rec sum () =
    let first = product () in
    let rec more acc =
      skip_spaces ();
      match peek () with
      | Some '+' ->
          incr pos;
          more (Add (acc, product ()))
      | Some '-' ->
          incr pos;
          more (Sub (acc, product ()))
      | Some _ | None -> acc
    in
    more first
  and product () =
    let first = unary () in
    let rec more acc =
      skip_spaces ();
      match peek () with
      | Some '*' ->
          incr pos;
          more (Mul (acc, unary ()))
      | Some '/' ->
          incr pos;
          more (Div (acc, unary ()))
      | Some _ | None -> acc
    in
    more first
  and unary () =
    skip_spaces ();
    if try_char '-' then Neg (unary ()) else power ()
  and power () =
    let base = atom () in
    skip_spaces ();
    if try_char '^' then Pow (base, unary ()) else base
  and atom () =
    skip_spaces ();
    match peek () with
    | Some '(' ->
        eat '(';
        let e = sum () in
        eat ')';
        e
    | Some c when is_digit c || c = '.' -> Const (read_number ())
    | Some c when is_ident_start c -> begin
        let name = read_ident () in
        skip_spaces ();
        match (name, peek ()) with
        | "min", Some '(' ->
            eat '(';
            let a = sum () in
            eat ',';
            let b = sum () in
            eat ')';
            Min (a, b)
        | "max", Some '(' ->
            eat '(';
            let a = sum () in
            eat ',';
            let b = sum () in
            eat ')';
            Max (a, b)
        | "exp", Some '(' ->
            eat '(';
            let a = sum () in
            eat ')';
            Exp a
        | "ln", Some '(' ->
            eat '(';
            let a = sum () in
            eat ')';
            Ln a
        | _, Some '(' -> fail (Printf.sprintf "unknown function %S" name)
        | _, (Some _ | None) -> Ident name
      end
    | Some c -> fail (Printf.sprintf "unexpected %C" c)
    | None -> fail "unexpected end of input"
  in
  match
    let e = sum () in
    skip_spaces ();
    if !pos <> len then fail "trailing input";
    e
  with
  | e -> Ok e
  | exception Parse_fail (p, msg) ->
      Error (Printf.sprintf "parse error at offset %d: %s" p msg)
