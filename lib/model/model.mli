(** Kinetic reaction-network models (the executable core of SBML).

    A model is a set of species with initial molecule counts, a set of
    global parameters, and a set of reactions whose kinetic laws are
    {!Math} expressions over species and parameter identifiers. The
    stochastic simulator interprets each kinetic law directly as the
    reaction's propensity function, which is how D-VASim executes the
    SBML models of genetic circuits. *)

type species = {
  s_id : string;
  s_name : string;  (** human-readable name; defaults to [s_id] *)
  s_initial : float;  (** initial molecule count *)
  s_boundary : bool;
      (** SBML [boundaryCondition]: the species may appear as a
          reactant or product (its amount still scales the kinetic
          law) but reaction firings never change it — used for the
          circuit's input signals, which the virtual laboratory
          drives *)
}

type parameter = { p_id : string; p_value : float }

type reaction = {
  r_id : string;
  r_reactants : (string * int) list;  (** species id and stoichiometry *)
  r_products : (string * int) list;
  r_modifiers : string list;
      (** species read by the kinetic law without being consumed *)
  r_rate : Math.t;  (** propensity function *)
}

type t = {
  m_id : string;
  m_species : species list;
  m_parameters : parameter list;
  m_reactions : reaction list;
}

val species : ?name:string -> ?boundary:bool -> string -> float -> species
(** [species id initial] with optional name and boundary flag. *)

val parameter : string -> float -> parameter

val reaction :
  ?reactants:(string * int) list ->
  ?products:(string * int) list ->
  ?modifiers:string list ->
  rate:Math.t ->
  string ->
  reaction

val make :
  id:string ->
  species:species list ->
  ?parameters:parameter list ->
  reactions:reaction list ->
  unit ->
  t
(** Builds and validates a model.
    @raise Invalid_argument when {!validate} reports errors. *)

type issue = {
  i_subject :
    [ `Model | `Species of string | `Parameter of string | `Reaction of string ];
      (** the offending entity, by id — not by position, so messages
          remain meaningful after reordering and downstream tooling
          (the linter) can attach a precise source location *)
  i_message : string;  (** human-readable description, id included *)
}
(** One well-formedness problem found by {!validate_issues}. *)

val validate_issues : t -> issue list
(** Well-formedness diagnostics: duplicate identifiers, references to
    undeclared species/parameters (in stoichiometry lists or kinetic
    laws), non-positive stoichiometry, negative initial amounts. Empty
    means valid. Boundary species as reactants or products are legal
    (SBML [boundaryCondition]); simulation holds their amounts fixed.
    Every issue names the offending species/reaction/parameter id in
    both its subject and its message. *)

val validate : t -> string list
(** The messages of {!validate_issues}, in the same order. Empty means
    valid. *)

val find_species : t -> string -> species option
val find_parameter : t -> string -> parameter option
val find_reaction : t -> string -> reaction option

val species_ids : t -> string list
(** Identifiers in declaration order. *)

val parameter_value : t -> string -> float option

val map_rates : (Math.t -> Math.t) -> t -> t
(** Rewrites every kinetic law; revalidates the result. *)

val with_initial : t -> string -> float -> t
(** [with_initial m id v] returns a copy of [m] where species [id] starts
    at [v] molecules.
    @raise Not_found if the species does not exist. *)

val pp : Format.formatter -> t -> unit
(** Compact human-readable summary (ids, counts, reaction arrows). *)
