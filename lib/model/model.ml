type species = {
  s_id : string;
  s_name : string;
  s_initial : float;
  s_boundary : bool;
}

type parameter = { p_id : string; p_value : float }

type reaction = {
  r_id : string;
  r_reactants : (string * int) list;
  r_products : (string * int) list;
  r_modifiers : string list;
  r_rate : Math.t;
}

type t = {
  m_id : string;
  m_species : species list;
  m_parameters : parameter list;
  m_reactions : reaction list;
}

let species ?name ?(boundary = false) id initial =
  {
    s_id = id;
    s_name = (match name with Some n -> n | None -> id);
    s_initial = initial;
    s_boundary = boundary;
  }

let parameter id value = { p_id = id; p_value = value }

let reaction ?(reactants = []) ?(products = []) ?(modifiers = []) ~rate id =
  {
    r_id = id;
    r_reactants = reactants;
    r_products = products;
    r_modifiers = modifiers;
    r_rate = rate;
  }

let find_species m id =
  List.find_opt (fun s -> String.equal s.s_id id) m.m_species

let find_parameter m id =
  List.find_opt (fun p -> String.equal p.p_id id) m.m_parameters

let find_reaction m id =
  List.find_opt (fun r -> String.equal r.r_id id) m.m_reactions

let species_ids m = List.map (fun s -> s.s_id) m.m_species

let parameter_value m id =
  Option.map (fun p -> p.p_value) (find_parameter m id)

let duplicates ids =
  let seen = Hashtbl.create 16 in
  List.filter_map
    (fun id ->
      if Hashtbl.mem seen id then Some id
      else begin
        Hashtbl.replace seen id ();
        None
      end)
    ids

type issue = {
  i_subject :
    [ `Model | `Species of string | `Parameter of string | `Reaction of string ];
  i_message : string;
}

let validate_issues m =
  let errs = ref [] in
  let err subject fmt =
    Printf.ksprintf
      (fun s -> errs := { i_subject = subject; i_message = s } :: !errs)
      fmt
  in
  let species_ids = List.map (fun s -> s.s_id) m.m_species in
  let param_ids = List.map (fun p -> p.p_id) m.m_parameters in
  List.iter
    (fun id -> err (`Species id) "duplicate species id %S" id)
    (duplicates species_ids);
  List.iter
    (fun id -> err (`Parameter id) "duplicate parameter id %S" id)
    (duplicates param_ids);
  List.iter
    (fun id -> err (`Reaction id) "duplicate reaction id %S" id)
    (duplicates (List.map (fun r -> r.r_id) m.m_reactions));
  List.iter
    (fun id -> err (`Species id) "identifier %S is both a species and a parameter" id)
    (List.filter (fun id -> List.mem id param_ids) species_ids);
  List.iter
    (fun s ->
      if s.s_initial < 0. then
        err (`Species s.s_id) "species %S has negative initial amount %g"
          s.s_id s.s_initial)
    m.m_species;
  let is_species id = List.mem id species_ids in
  let is_known id = is_species id || List.mem id param_ids in
  List.iter
    (fun r ->
      let err fmt = err (`Reaction r.r_id) fmt in
      let check_side side =
        (* Boundary species are legal reactants and products (SBML
           boundaryCondition): they shape the kinetics but simulation
           holds their amounts fixed. *)
        List.iter
          (fun (id, st) ->
            if not (is_species id) then
              err "reaction %S references undeclared species %S" r.r_id id;
            if st <= 0 then
              err "reaction %S has non-positive stoichiometry for %S" r.r_id id)
          side
      in
      check_side r.r_reactants;
      check_side r.r_products;
      List.iter
        (fun id ->
          if not (is_species id) then
            err "reaction %S has undeclared modifier %S" r.r_id id)
        r.r_modifiers;
      List.iter
        (fun id ->
          if not (is_known id) then
            err "kinetic law of %S references undeclared identifier %S" r.r_id
              id)
        (Math.idents r.r_rate))
    m.m_reactions;
  List.rev !errs

let validate m = List.map (fun i -> i.i_message) (validate_issues m)

let make ~id ~species ?(parameters = []) ~reactions () =
  let m =
    {
      m_id = id;
      m_species = species;
      m_parameters = parameters;
      m_reactions = reactions;
    }
  in
  match validate m with
  | [] -> m
  | errs ->
      invalid_arg
        (Printf.sprintf "Model.make %S: %s" id (String.concat "; " errs))

let map_rates f m =
  let m =
    {
      m with
      m_reactions =
        List.map (fun r -> { r with r_rate = f r.r_rate }) m.m_reactions;
    }
  in
  match validate m with
  | [] -> m
  | errs ->
      invalid_arg
        (Printf.sprintf "Model.map_rates: %s" (String.concat "; " errs))

let with_initial m id v =
  match find_species m id with
  | None -> raise Not_found
  | Some _ ->
      {
        m with
        m_species =
          List.map
            (fun s ->
              if String.equal s.s_id id then { s with s_initial = v } else s)
            m.m_species;
      }

let pp_side ppf side =
  match side with
  | [] -> Format.pp_print_string ppf "(none)"
  | _ ->
      Format.pp_print_list
        ~pp_sep:(fun ppf () -> Format.fprintf ppf " + ")
        (fun ppf (id, st) ->
          if st = 1 then Format.pp_print_string ppf id
          else Format.fprintf ppf "%d %s" st id)
        ppf side

let pp ppf m =
  Format.fprintf ppf "@[<v>model %s: %d species, %d parameters, %d reactions"
    m.m_id
    (List.length m.m_species)
    (List.length m.m_parameters)
    (List.length m.m_reactions);
  List.iter
    (fun s ->
      Format.fprintf ppf "@,  species %s = %g%s" s.s_id s.s_initial
        (if s.s_boundary then " (boundary)" else ""))
    m.m_species;
  List.iter
    (fun r ->
      Format.fprintf ppf "@,  %s: %a -> %a @@ %a" r.r_id pp_side r.r_reactants
        pp_side r.r_products Math.pp r.r_rate)
    m.m_reactions;
  Format.fprintf ppf "@]"
