(** Kinetic-law mathematics.

    SBML expresses reaction kinetics as MathML expressions over species and
    parameter identifiers. This is the abstract syntax the simulator
    evaluates; {!Sbml} serialises it to and from the MathML subset. *)

type t =
  | Const of float
  | Ident of string  (** reference to a species or parameter *)
  | Neg of t
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Div of t * t
  | Pow of t * t
  | Min of t * t
  | Max of t * t
  | Exp of t
  | Ln of t

val eval : lookup:(string -> float) -> t -> float
(** [eval ~lookup e] evaluates [e]; identifiers are resolved by [lookup]
    (which should raise for unknown names). Division by zero and domain
    errors follow IEEE semantics ([nan], [infinity]). *)

val idents : t -> string list
(** Identifiers referenced, sorted, without duplicates. *)

val subst : (string -> t option) -> t -> t
(** [subst f e] replaces each identifier [x] with [t] when [f x = Some t]. *)

val hill_repression : ymin:t -> ymax:t -> k:t -> n:t -> t -> t
(** [hill_repression ~ymin ~ymax ~k ~n x] is the repressor response function
    used by Cello gates:
    [ymin + (ymax - ymin) * k^n / (k^n + x^n)]. *)

val hill_activation : ymin:t -> ymax:t -> k:t -> n:t -> t -> t
(** [ymin + (ymax - ymin) * x^n / (k^n + x^n)]. *)

val num : float -> t
(** Shorthand for [Const]. *)

val var : string -> t
(** Shorthand for [Ident]. *)

val ( + ) : t -> t -> t
val ( - ) : t -> t -> t
val ( * ) : t -> t -> t
val ( / ) : t -> t -> t
val ( ** ) : t -> t -> t

val equal : t -> t -> bool
(** Structural equality. *)

val pp : Format.formatter -> t -> unit
(** Infix rendering with minimal parentheses. Constants print with the
    shortest decimal that reads back as the same double (never plain
    [%g], which drops low bits); negative constants parenthesise like
    {!Neg} wherever a unary minus would bind differently (e.g.
    [Pow (Const (-3.), x)] renders as [(-3)^x], not [-3^x]). *)

val to_string : t -> string

val of_string : string -> (t, string) result
(** Parses infix kinetic laws: numbers (including scientific notation),
    identifiers, [+ - * / ^], unary minus, parentheses, and the
    functions [min(a, b)], [max(a, b)], [exp(a)], [ln(a)]. [^] is
    right-associative and binds tighter than unary minus, as in {!pp}.

    [of_string (to_string e)] re-reads [e] up to the representation of
    negative constants: the grammar has no signed literals, so a
    [Const c] with the sign bit set comes back as [Neg (Const (-. c))]
    (bit-identical value, tested by a QCheck property in [test_model]).
    Non-finite constants do not survive the trip — [nan]/[inf] render
    as words the parser reads as identifiers. *)
