module Json = Glc_core.Report.Json

type event =
  | Scheduled of string
  | Started of string
  | Done of string
  | Failed of string * string

let file_name = "journal.jsonl"
let path ~dir = Filename.concat dir file_name

type t = { fd : Unix.file_descr; mutable closed : bool }

(* true when the file is non-empty and does not end in '\n' — the
   signature of a crash mid-append *)
let dangling_tail fd =
  let size = (Unix.fstat fd).Unix.st_size in
  size > 0
  &&
  let _ = Unix.lseek fd (size - 1) Unix.SEEK_SET in
  let last = Bytes.create 1 in
  Unix.read fd last 0 1 = 1 && Bytes.get last 0 <> '\n'

let open_ ~dir =
  Store.mkdir_p dir;
  let fd =
    Unix.openfile (path ~dir)
      [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_APPEND ]
      0o644
  in
  (* terminate a partial record left by a crash so the next append
     starts on a fresh line; read already ignores the junk line *)
  if dangling_tail fd then
    ignore (Unix.write_substring fd "\n" 0 1);
  { fd; closed = false }

let event_to_json = function
  | Scheduled id ->
      Printf.sprintf "{\"event\":\"scheduled\",\"job\":%s}" (Json.string id)
  | Started id ->
      Printf.sprintf "{\"event\":\"started\",\"job\":%s}" (Json.string id)
  | Done id ->
      Printf.sprintf "{\"event\":\"done\",\"job\":%s}" (Json.string id)
  | Failed (id, error) ->
      Printf.sprintf "{\"event\":\"failed\",\"job\":%s,\"error\":%s}"
        (Json.string id) (Json.string error)

let append t event =
  if t.closed then invalid_arg "Journal.append: closed";
  let line = event_to_json event ^ "\n" in
  let n = String.length line in
  let written = ref 0 in
  while !written < n do
    written :=
      !written + Unix.write_substring t.fd line !written (n - !written)
  done;
  (* fsync per record: a killed process loses at most the events of
     jobs that were in flight, never an acknowledged one *)
  Unix.fsync t.fd

let close t =
  if not t.closed then begin
    t.closed <- true;
    Unix.close t.fd
  end

let event_of_json line =
  match Json.parse line with
  | Error _ -> None
  | Ok v -> (
      let str name = Option.bind (Json.member v name) Json.to_str in
      match (str "event", str "job") with
      | Some "scheduled", Some id -> Some (Scheduled id)
      | Some "started", Some id -> Some (Started id)
      | Some "done", Some id -> Some (Done id)
      | Some "failed", Some id ->
          Some (Failed (id, Option.value ~default:"" (str "error")))
      | _ -> None)

let read ~dir =
  let p = path ~dir in
  if not (Sys.file_exists p) then []
  else begin
    let ic = open_in_bin p in
    let text =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    (* only newline-terminated records count: a crash mid-append leaves
       a partial last line, which must not parse as an event *)
    let lines = String.split_on_char '\n' text in
    let rec complete = function
      | [] | [ _ ] -> []  (* the tail after the last '\n' (or "") *)
      | line :: rest -> line :: complete rest
    in
    List.filter_map event_of_json (complete lines)
  end

let job_of = function
  | Scheduled id | Started id | Done id | Failed (id, _) -> id

let pp_event ppf = function
  | Scheduled id -> Format.fprintf ppf "scheduled %s" id
  | Started id -> Format.fprintf ppf "started %s" id
  | Done id -> Format.fprintf ppf "done %s" id
  | Failed (id, e) -> Format.fprintf ppf "FAILED %s: %s" id e
