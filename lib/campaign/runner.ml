module Json = Glc_core.Report.Json
module Circuit = Glc_gates.Circuit
module Benchmarks = Glc_gates.Benchmarks
module Cello = Glc_gates.Cello
module Protocol = Glc_dvasim.Protocol
module Pool = Glc_engine.Pool
module Cache = Glc_engine.Cache
module Ensemble = Glc_engine.Ensemble
module Stats = Glc_engine.Stats
module Metrics = Glc_obs.Metrics
module Certificate = Glc_symbolic.Certificate

type progress = {
  p_completed : int;
  p_failed : int;
  p_total : int;
  p_elapsed : float;
  p_eta : float option;
}

type summary = {
  ran : int;
  succeeded : int;
  failed : int;
  remaining : int;
}

let resolve name =
  match Benchmarks.find name with
  | Some c -> Ok c
  | None -> (
      (* the hex-digit count selects the arity: 0xNN is a 3-input code,
         0xNNNN a 4-input one (Cello.code_of_name) *)
      let code =
        match Cello.code_of_name name with
        | Some _ as c -> c
        | None -> (
            (* bare decimal keeps meaning a 3-input code *)
            match int_of_string_opt name with
            | Some c when c >= 0 && c <= 0xFF -> Some (3, c)
            | _ -> None)
      in
      match code with
      | Some (arity, code) -> (
          match Cello.of_code ~arity code with
          | c -> Ok c
          | exception Invalid_argument m -> Error m)
      | None ->
          Error
            (Printf.sprintf
               "unknown circuit %S (benchmark name or a code like 0x1C)"
               name))

let job_protocol (spec : Grid.spec) (job : Grid.job) =
  match job.Grid.j_input_high with
  | None ->
      Protocol.make ~total_time:spec.Grid.total_time
        ~hold_time:spec.Grid.hold_time ~threshold:job.Grid.j_threshold ()
  | Some input_high ->
      Protocol.make ~total_time:spec.Grid.total_time
        ~hold_time:spec.Grid.hold_time ~threshold:job.Grid.j_threshold
        ~input_high ()

(* Every stored document opens with the same job-coordinate prefix and
   carries the same provenance triple + top-level [verified] /
   [fitness_mean] summary fields, whichever execution path produced
   it — report readers never branch on the document's origin. *)
let document_prefix ~seed (job : Grid.job) =
  Printf.sprintf
    "{\"id\":%s,\"circuit\":%s,\"threshold\":%s,\"fov_ud\":%s,\"input_high\":%s,\"replicates\":%d,\"seed\":%d"
    (Json.string (Grid.job_id job))
    (Json.string job.Grid.j_circuit)
    (Json.float job.Grid.j_threshold)
    (Json.float job.Grid.j_fov_ud)
    (match job.Grid.j_input_high with
    | None -> "null"
    | Some h -> Json.float h)
    job.Grid.j_replicates seed

(* The simulated document: coordinates, provenance (how many rows the
   certificate settled before the ensemble ran), top-level verdict and
   fitness_mean convenience fields, and the full deterministic ensemble
   report. Byte-deterministic for a given (spec, job). *)
let job_document ?certificate ~seed (job : Grid.job) (t : Ensemble.t) =
  let certified_rows, total_rows =
    match certificate with
    | None -> (0, 0)
    | Some c -> (Certificate.decided c, Certificate.rows c)
  in
  Printf.sprintf
    "%s,\"provenance\":\"simulated\",\"certified_rows\":%d,\"total_rows\":%d,\"verified\":%s,\"fitness_mean\":%s,\"ensemble\":%s}"
    (document_prefix ~seed job)
    certified_rows total_rows
    (Json.bool t.Ensemble.consensus_verified)
    (Json.float t.Ensemble.fitness.Stats.mean)
    (Ensemble.to_json t)

(* The certified document: every row was proved symbolically, so there
   is no ensemble — the certificate itself is the evidence. A proof
   carries no sampling noise, so fitness_mean is a clean 100. *)
let certified_document ~seed (job : Grid.job) (cert : Certificate.t) =
  let verified =
    match Certificate.verified cert with Some b -> b | None -> false
  in
  Printf.sprintf
    "%s,\"provenance\":\"certified\",\"certified_rows\":%d,\"total_rows\":%d,\"verified\":%s,\"fitness_mean\":%s,\"certificate\":%s}"
    (document_prefix ~seed job)
    (Certificate.decided cert)
    (Certificate.rows cert)
    (Json.bool verified) (Json.float 100.)
    (Certificate.to_json cert)

let run_job ?metrics ~pool ~cache (spec : Grid.spec) (job : Grid.job) =
  match resolve job.Grid.j_circuit with
  | Error m -> failwith m
  | Ok circuit ->
      let protocol = job_protocol spec job in
      let seed = Grid.job_seed ~seed:spec.Grid.seed job in
      (* symbolic fast path: a certificate that settles every row makes
         the ensemble redundant — the job costs no simulation at all.
         Otherwise the certificate still rides along in the document as
         provenance for how much of the table was already settled. *)
      let cert = Certificate.certify ?metrics ~protocol circuit in
      if Certificate.fully_decided cert then
        certified_document ~seed job cert
      else
        let cfg =
          Ensemble.config ~replicates:job.Grid.j_replicates ~seed ~protocol
            ~fov_ud:job.Grid.j_fov_ud ()
        in
        let t = Ensemble.run ~pool ~cache ?metrics cfg circuit in
        job_document ~certificate:cert ~seed job t

let null_progress (_ : progress) = ()

let run ?(jobs = 0) ?limit ?(on_progress = null_progress)
    ?(metrics = Metrics.noop) ?(should_stop = fun () -> false) ~store
    ~journal (spec : Grid.spec) pending =
  let todo =
    match limit with
    | None -> List.length pending
    | Some k ->
        if k < 0 then invalid_arg "Runner.run: limit < 0"
        else min k (List.length pending)
  in
  let live = Metrics.enabled metrics in
  let h_job = Metrics.histogram metrics "campaign.job_seconds" in
  let h_put = Metrics.histogram metrics "campaign.store_put_seconds" in
  let h_append = Metrics.histogram metrics "campaign.journal_append_seconds" in
  let c_scheduled = Metrics.counter metrics "campaign.jobs_scheduled" in
  let c_ok = Metrics.counter metrics "campaign.jobs_succeeded" in
  let c_fail = Metrics.counter metrics "campaign.jobs_failed" in
  Metrics.Gauge.set (Metrics.gauge metrics "campaign.jobs_todo")
    (float_of_int todo);
  (* Instrumented wrappers for the two persistence hot spots: the store
     write (temp + fsync + rename) and the journal append (fsync per
     record). *)
  let journal_append ev =
    if live then begin
      let t0 = Glc_obs.Clock.now () in
      Journal.append journal ev;
      Metrics.Histogram.observe h_append (Glc_obs.Clock.now () -. t0)
    end
    else Journal.append journal ev
  in
  let store_put ~id doc =
    if live then begin
      let t0 = Glc_obs.Clock.now () in
      Store.put store ~id doc;
      Metrics.Histogram.observe h_put (Glc_obs.Clock.now () -. t0)
    end
    else Store.put store ~id doc
  in
  List.iter
    (fun job ->
      Metrics.Counter.incr c_scheduled;
      journal_append (Journal.Scheduled (Grid.job_id job)))
    pending;
  let started_at = Unix.gettimeofday () in
  let succeeded = ref 0 and failed = ref 0 in
  let report () =
    let completed = !succeeded + !failed in
    let elapsed = Unix.gettimeofday () -. started_at in
    on_progress
      {
        p_completed = completed;
        p_failed = !failed;
        p_total = todo;
        p_elapsed = elapsed;
        p_eta =
          (if completed = 0 then None
           else
             Some
               (elapsed /. float_of_int completed
               *. float_of_int (todo - completed)));
      }
  in
  let jobs = if jobs = 0 then Pool.default_jobs () else jobs in
  let attempted = ref 0 in
  let stopped = ref false in
  Pool.with_pool ~jobs ~metrics (fun pool ->
      (* one compiled-model cache across the whole campaign: jobs over
         the same circuit and kinetics (e.g. differing only in FOV_UD
         or replicate count) compile once *)
      let cache = Cache.create ~metrics () in
      List.iteri
        (fun i job ->
          if i < todo && not !stopped && should_stop () then
            stopped := true;
          if i < todo && not !stopped then begin
            incr attempted;
            let id = Grid.job_id job in
            journal_append (Journal.Started id);
            let t_job = if live then Glc_obs.Clock.now () else 0. in
            (match
               Metrics.span metrics ("job:" ^ id) (fun () ->
                   run_job ~metrics ~pool ~cache spec job)
             with
            | doc ->
                store_put ~id doc;
                journal_append (Journal.Done id);
                Metrics.Counter.incr c_ok;
                incr succeeded
            | exception e ->
                (* one bad model degrades the campaign, it does not
                   kill it: record the error, move on *)
                journal_append (Journal.Failed (id, Printexc.to_string e));
                Metrics.Counter.incr c_fail;
                incr failed);
            if live then Metrics.Histogram.observe h_job (Glc_obs.Clock.now () -. t_job);
            report ()
          end)
        pending);
  let completed = !succeeded + !failed in
  let elapsed = Unix.gettimeofday () -. started_at in
  if live && completed > 0 && elapsed > 0. then
    Metrics.Histogram.observe
      (Metrics.histogram metrics "campaign.jobs_per_second")
      (float_of_int completed /. elapsed);
  {
    ran = !attempted;
    succeeded = !succeeded;
    failed = !failed;
    remaining = List.length pending - !attempted;
  }

let counter_progress ?(oc = stderr) () =
  fun p ->
    let eta =
      match p.p_eta with
      | None -> ""
      | Some eta -> Printf.sprintf ", ETA %.0fs" eta
    in
    Printf.fprintf oc "\rcampaign: %d/%d job(s)%s%s%!" p.p_completed
      p.p_total
      (if p.p_failed > 0 then Printf.sprintf " (%d failed)" p.p_failed
       else "")
      eta;
    if p.p_completed = p.p_total then Printf.fprintf oc "\n%!"
