module Json = Glc_core.Report.Json

type t = { dir : string }

let manifest_name = "MANIFEST.json"
let results_subdir = "results"

let mkdir_p dir =
  let rec go dir =
    if dir <> "" && dir <> "/" && dir <> "." && not (Sys.file_exists dir)
    then begin
      go (Filename.dirname dir);
      try Unix.mkdir dir 0o755
      with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  go dir

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Temp-file + rename in the destination directory: the visible path
   either holds the complete document or nothing. The temp name embeds
   the pid so two processes writing the same id cannot interleave. *)
let atomic_write path content =
  let tmp = Printf.sprintf "%s.%d.tmp" path (Unix.getpid ()) in
  let fd =
    Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let n = String.length content in
      let written = ref 0 in
      while !written < n do
        written :=
          !written
          + Unix.write_substring fd content !written (n - !written)
      done;
      Unix.fsync fd);
  Unix.rename tmp path

module Lock = struct
  type lock = { l_path : string; mutable l_released : bool }

  let path ~dir = Filename.concat dir "LOCK"

  (* O_EXCL creation: exactly one process can create the file. The pid
     inside is what makes staleness decidable after a kill -9. *)
  let try_create path =
    match
      Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_EXCL ] 0o644
    with
    | fd ->
        let body = string_of_int (Unix.getpid ()) ^ "\n" in
        ignore (Unix.write_substring fd body 0 (String.length body));
        Unix.close fd;
        true
    | exception Unix.Unix_error (Unix.EEXIST, _, _) -> false

  let holder path =
    match read_file path with
    | exception _ -> None
    | text -> int_of_string_opt (String.trim text)

  (* A pid is live when signal 0 can be delivered (EPERM still means
     the process exists). ESRCH — or an unparseable lock body — means
     the holder is gone and the lock is stale. *)
  let pid_live pid =
    match Unix.kill pid 0 with
    | () -> true
    | exception Unix.Unix_error (Unix.EPERM, _, _) -> true
    | exception Unix.Unix_error (_, _, _) -> false

  let acquire ~dir =
    mkdir_p dir;
    let p = path ~dir in
    let taken () = Ok { l_path = p; l_released = false } in
    if try_create p then taken ()
    else begin
      match holder p with
      | Some pid when pid_live pid ->
          Error
            (Printf.sprintf
               "%s is locked by running process %d — only one process may \
                drain a campaign/serve directory at a time"
               dir pid)
      | Some _ | None ->
          (* stale: remove and retry once; losing the re-creation race
             to another process is a genuine "busy" again *)
          (try Sys.remove p with Sys_error _ -> ());
          if try_create p then taken ()
          else
            Error
              (Printf.sprintf
                 "%s: lost the lock acquisition race after removing a \
                  stale lock — another process is draining this directory"
                 dir)
    end

  let release l =
    if not l.l_released then begin
      l.l_released <- true;
      try Sys.remove l.l_path with Sys_error _ -> ()
    end

  let with_lock ~dir f =
    match acquire ~dir with
    | Error _ as e -> e
    | Ok l -> Ok (Fun.protect ~finally:(fun () -> release l) f)
end

let results_dir t = Filename.concat t.dir results_subdir
let manifest_path dir = Filename.concat dir manifest_name

let create ~dir manifest_json =
  if Sys.file_exists (manifest_path dir) then
    Error
      (Printf.sprintf
         "%s already holds a campaign manifest — resume it instead" dir)
  else begin
    mkdir_p (Filename.concat dir results_subdir);
    atomic_write (manifest_path dir) manifest_json;
    Ok { dir }
  end

let load ~dir =
  let path = manifest_path dir in
  if not (Sys.file_exists path) then
    Error (Printf.sprintf "%s: no campaign manifest found" path)
  else begin
    mkdir_p (Filename.concat dir results_subdir);
    Ok ({ dir }, read_file path)
  end

let dir t = t.dir
let result_path t ~id = Filename.concat (results_dir t) (id ^ ".json")

let put t ~id json = atomic_write (result_path t ~id) json

let get t ~id =
  let path = result_path t ~id in
  if not (Sys.file_exists path) then None
  else
    (* a result counts only when it parses: half-written or corrupted
       files (which the atomic rename should already preclude) are
       treated as absent, so resume re-runs the job *)
    let text = read_file path in
    match Json.parse text with Ok _ -> Some text | Error _ -> None

let mem t ~id = Option.is_some (get t ~id)

let completed t =
  let rdir = results_dir t in
  if not (Sys.file_exists rdir) then []
  else
    Sys.readdir rdir |> Array.to_list |> List.sort compare
    |> List.filter_map (fun name ->
           match Filename.chop_suffix_opt ~suffix:".json" name with
           | Some id when mem t ~id -> Some id
           | Some _ | None -> None)

(* ---- the campaign report ---- *)

type job_line = {
  l_id : string;
  l_job : Grid.job;
  l_done : bool;
  l_verified : bool;  (** job verdict; false when not done *)
  l_verified_count : int;
  l_completed : int;  (** replicates that finished *)
  l_failed : int;  (** replicates that crashed *)
  l_fitness_mean : float;  (** nan when not done *)
  l_provenance : string;  (** "certified" / "simulated"; "-" when not done *)
  l_certified_rows : int;  (** truth-table rows the certificate proved *)
  l_total_rows : int;
}

let job_line t job =
  let id = Grid.job_id job in
  let absent =
    {
      l_id = id;
      l_job = job;
      l_done = false;
      l_verified = false;
      l_verified_count = 0;
      l_completed = 0;
      l_failed = 0;
      l_fitness_mean = nan;
      l_provenance = "-";
      l_certified_rows = 0;
      l_total_rows = 0;
    }
  in
  match Option.map Json.parse (get t ~id) with
  | None | Some (Error _) -> absent
  | Some (Ok doc) ->
      (* summary numbers are parsed once and re-rendered with the same
         shortest-round-trip printer that produced them, so they pass
         through the store byte-identically *)
      let top name conv = Option.bind (Json.member doc name) conv in
      let ens name conv =
        Option.bind (Json.member doc "ensemble") (fun e ->
            Option.bind (Json.member e name) conv)
      in
      let int name = Option.value ~default:0 (ens name Json.to_int) in
      {
        absent with
        l_done = true;
        l_verified =
          (* top-level verdict; documents stored before provenance
             existed only carry the ensemble consensus *)
          (match top "verified" Json.to_bool with
          | Some b -> b
          | None ->
              Option.value ~default:false
                (ens "consensus_verified" Json.to_bool));
        l_verified_count = int "verified_count";
        l_completed = int "completed";
        l_failed = int "failed";
        l_fitness_mean =
          Option.value ~default:nan (top "fitness_mean" Json.to_number);
        l_provenance =
          Option.value ~default:"simulated" (top "provenance" Json.to_str);
        l_certified_rows =
          Option.value ~default:0 (top "certified_rows" Json.to_int);
        l_total_rows =
          Option.value ~default:0 (top "total_rows" Json.to_int);
      }

let lines t (spec : Grid.spec) =
  List.map (job_line t) (Grid.expand spec.Grid.grid)

let report_json t (spec : Grid.spec) =
  let buf = Buffer.create 4096 in
  let add = Buffer.add_string buf in
  let ls = lines t spec in
  let done_count = List.length (List.filter (fun l -> l.l_done) ls) in
  let verified_count =
    List.length (List.filter (fun l -> l.l_verified) ls)
  in
  add "{\"campaign\":{";
  add (Printf.sprintf "\"seed\":%d," spec.Grid.seed);
  add
    (Printf.sprintf "\"total_time\":%s,\"hold_time\":%s},"
       (Json.float spec.Grid.total_time)
       (Json.float spec.Grid.hold_time));
  add
    (Printf.sprintf
       "\"totals\":{\"jobs\":%d,\"done\":%d,\"missing\":%d,\"verified\":%d},"
       (List.length ls) done_count
       (List.length ls - done_count)
       verified_count);
  add "\"jobs\":[";
  List.iteri
    (fun i l ->
      if i > 0 then add ",";
      add
        (Printf.sprintf
           "{\"id\":%s,\"circuit\":%s,\"threshold\":%s,\"fov_ud\":%s,\"input_high\":%s,\"replicates\":%d,"
           (Json.string l.l_id)
           (Json.string l.l_job.Grid.j_circuit)
           (Json.float l.l_job.Grid.j_threshold)
           (Json.float l.l_job.Grid.j_fov_ud)
           (match l.l_job.Grid.j_input_high with
           | None -> "null"
           | Some h -> Json.float h)
           l.l_job.Grid.j_replicates);
      if not l.l_done then add "\"status\":\"missing\"}"
      else
        add
          (Printf.sprintf
             "\"status\":\"done\",\"provenance\":%s,\"certified_rows\":%d,\"total_rows\":%d,\"verified\":%s,\"verified_count\":%d,\"completed\":%d,\"failed\":%d,\"fitness_mean\":%s}"
             (Json.string l.l_provenance) l.l_certified_rows l.l_total_rows
             (Json.bool l.l_verified) l.l_verified_count l.l_completed
             l.l_failed
             (Json.float l.l_fitness_mean)))
    ls;
  add "]}";
  Buffer.contents buf

let pp_report ppf (t, (spec : Grid.spec)) =
  let ls = lines t spec in
  let done_count = List.length (List.filter (fun l -> l.l_done) ls) in
  let verified = List.length (List.filter (fun l -> l.l_verified) ls) in
  Format.fprintf ppf
    "@[<v>campaign %s: %d job(s), %d done, %d missing, %d verified \
     (seed %d)@,@,"
    (dir t) (List.length ls) done_count
    (List.length ls - done_count)
    verified spec.Grid.seed;
  Format.fprintf ppf "%-14s %9s %6s %8s %5s %-9s %-10s %5s %8s@," "circuit"
    "threshold" "fov" "high" "reps" "status" "source" "cert" "fitness";
  List.iter
    (fun l ->
      Format.fprintf ppf "%-14s %9g %6g %8s %5d %-9s %-10s %5s %8s@,"
        l.l_job.Grid.j_circuit l.l_job.Grid.j_threshold
        l.l_job.Grid.j_fov_ud
        (match l.l_job.Grid.j_input_high with
        | None -> "-"
        | Some h -> Printf.sprintf "%g" h)
        l.l_job.Grid.j_replicates
        (if not l.l_done then "missing"
         else if l.l_verified then "VERIFIED"
         else "WRONG")
        l.l_provenance
        (if l.l_done && l.l_total_rows > 0 then
           Printf.sprintf "%d/%d" l.l_certified_rows l.l_total_rows
         else "-")
        (if l.l_done then Printf.sprintf "%.2f%%" l.l_fitness_mean
         else "-"))
    ls;
  Format.fprintf ppf "@]"
