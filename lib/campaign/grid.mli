(** Declarative job spaces for verification campaigns.

    A campaign verifies a grid of ensemble jobs: circuits × logic
    thresholds × FOV_UD values × logic-1 input levels × replicate
    counts — the shape of the paper's Table-1 evaluation (15 circuits ×
    one protocol) and of its Fig. 5 threshold study, generalised to any
    axis combination.

    The grid is {e declarative}: {!expand} flattens it into a job list
    in a deterministic nested order (circuits outermost, replicate
    counts innermost), and every job carries a stable, content-derived
    identifier — {!job_id} depends only on the job's parameters, so the
    same job has the same id across processes, resumes and grid
    re-orderings. The on-disk result store is keyed by these ids. *)

type t = private {
  circuits : string list;  (** benchmark names or [0xNN] codes *)
  thresholds : float list;  (** logic thresholds, molecules *)
  fov_uds : float list;  (** FOV_UD values, eq. (1) *)
  input_highs : float option list;
      (** logic-1 input amounts; [None] = the protocol default (the
          threshold value, as in the paper) *)
  replicate_counts : int list;  (** ensemble sizes *)
}

type spec = private {
  seed : int;  (** campaign root seed *)
  total_time : float;  (** per-job simulation length *)
  hold_time : float;  (** per-combination hold *)
  grid : t;
}

type job = {
  j_circuit : string;
  j_threshold : float;
  j_fov_ud : float;
  j_input_high : float option;
  j_replicates : int;
}

val make :
  ?thresholds:float list ->
  ?fov_uds:float list ->
  ?input_highs:float option list ->
  ?replicate_counts:int list ->
  string list ->
  t
(** Axis defaults: the paper's protocol — threshold 15, FOV_UD 0.25,
    input-high = threshold, 16 replicates.
    @raise Invalid_argument on an empty or duplicate-carrying axis, a
    non-positive threshold/FOV/input level, or a replicate count < 1
    (duplicates would expand to jobs with colliding ids). *)

val spec :
  ?seed:int -> ?total_time:float -> ?hold_time:float -> t -> spec
(** Campaign-level parameters around a grid; defaults seed 42 and the
    paper's 10,000/1,000 t.u. protocol.
    @raise Invalid_argument on non-positive times. *)

val expand : t -> job list
(** Deterministic flattening; [List.length (expand g) = size g]. *)

val size : t -> int

val job_id : job -> string
(** Stable content-derived identifier:
    [<sanitised-circuit>-<16 hex digits>], the hex being an FNV-1a
    digest of the canonical parameter rendering. Independent of the
    job's position in any grid. *)

val job_seed : seed:int -> job -> int
(** Deterministic per-job ensemble seed derived from the campaign root
    seed and {!job_id} — independent of execution order and of which
    jobs ran before a crash, which is what makes resumed campaigns
    byte-identical to uninterrupted ones. *)

val pp_job : Format.formatter -> job -> unit

(** {2 Manifest (de)serialisation} *)

val to_json : t -> string

val spec_to_json : spec -> string
(** The campaign [MANIFEST.json] body. Deterministic bytes. *)

val spec_of_json : string -> (spec, string) result
(** Parses and re-validates; rejects unknown manifest versions. *)
