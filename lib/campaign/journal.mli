(** Append-only job-lifecycle journal of a campaign.

    One JSON object per line in [<dir>/journal.jsonl], fsync'd per
    record: after a crash the journal holds every acknowledged event
    and at most one partial trailing line, which {!read} discards (a
    record only counts once its terminating newline is on disk). The
    journal is the campaign's operational history — what ran, what
    failed and why, how often a job was attempted. Completion itself is
    judged from the result {!Store}, so journal loss is never
    data loss. *)

type event =
  | Scheduled of string  (** job id entered the pending queue *)
  | Started of string  (** execution began *)
  | Done of string  (** result persisted to the store *)
  | Failed of string * string  (** job id and the captured error *)

type t

val open_ : dir:string -> t
(** Opens (creating if needed) the journal of a campaign directory for
    appending. A partial trailing record left by a crash is
    newline-terminated so subsequent appends start on a fresh line;
    {!read} skips the junk line. *)

val append : t -> event -> unit
(** Writes one record and fsyncs it before returning.
    @raise Invalid_argument after {!close}. *)

val close : t -> unit
(** Idempotent. *)

val read : dir:string -> event list
(** Every complete, parseable record in append order. Unparseable or
    newline-less trailing data is skipped, not an error. *)

val job_of : event -> string

val pp_event : Format.formatter -> event -> unit
