let load ~dir =
  let ( let* ) = Result.bind in
  let* store, manifest = Store.load ~dir in
  let* spec = Grid.spec_of_json manifest in
  Ok (store, spec)

let pending ~store jobs =
  List.filter (fun job -> not (Store.mem store ~id:(Grid.job_id job))) jobs

type status = {
  s_total : int;
  s_done : int;
  s_pending : string list;  (** ids, grid order *)
  s_attempts : (string * int) list;  (** started-events per id, grid order *)
  s_failures : (string * string) list;  (** last failure per id, grid order *)
}

let status ~dir =
  let ( let* ) = Result.bind in
  let* store, spec = load ~dir in
  let jobs = Grid.expand spec.Grid.grid in
  let events = Journal.read ~dir in
  let count_started id =
    List.length
      (List.filter
         (function Journal.Started id' -> id' = id | _ -> false)
         events)
  in
  let last_failure id =
    List.fold_left
      (fun acc ev ->
        match ev with
        | Journal.Failed (id', e) when id' = id -> Some e
        | _ -> acc)
      None events
  in
  let ids = List.map Grid.job_id jobs in
  let done_ids = List.filter (fun id -> Store.mem store ~id) ids in
  Ok
    {
      s_total = List.length ids;
      s_done = List.length done_ids;
      s_pending = List.filter (fun id -> not (Store.mem store ~id)) ids;
      s_attempts =
        List.filter_map
          (fun id ->
            match count_started id with 0 -> None | n -> Some (id, n))
          ids;
      s_failures =
        List.filter_map
          (fun id -> Option.map (fun e -> (id, e)) (last_failure id))
          ids;
    }

let run ?jobs ?limit ?on_progress ~dir () =
  let ( let* ) = Result.bind in
  let* store, spec = load ~dir in
  let todo = pending ~store (Grid.expand spec.Grid.grid) in
  let journal = Journal.open_ ~dir in
  let summary =
    Fun.protect
      ~finally:(fun () -> Journal.close journal)
      (fun () -> Runner.run ?jobs ?limit ?on_progress ~store ~journal spec todo)
  in
  Ok (store, spec, summary)
