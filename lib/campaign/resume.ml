let load ~dir =
  let ( let* ) = Result.bind in
  let* store, manifest = Store.load ~dir in
  let* spec = Grid.spec_of_json manifest in
  Ok (store, spec)

let pending ~store jobs =
  List.filter (fun job -> not (Store.mem store ~id:(Grid.job_id job))) jobs

type status = {
  s_total : int;
  s_done : int;
  s_pending : string list;  (** ids, grid order *)
  s_attempts : (string * int) list;  (** started-events per id, grid order *)
  s_failures : (string * string) list;  (** last failure per id, grid order *)
  s_jobs_per_second : float option;
  s_eta_seconds : float option;
}

(* Observed completion rate, derived from the modification times of the
   stored results (the journal records no timestamps, and its format is
   frozen). Meaningful only with two or more results spread over
   measurable time. *)
let throughput ~store done_ids =
  let mtimes =
    List.filter_map
      (fun id ->
        match Unix.stat (Store.result_path store ~id) with
        | st -> Some st.Unix.st_mtime
        | exception Unix.Unix_error _ -> None)
      done_ids
  in
  match mtimes with
  | [] | [ _ ] -> None
  | _ :: _ ->
      let lo = List.fold_left Float.min infinity mtimes in
      let hi = List.fold_left Float.max neg_infinity mtimes in
      if hi <= lo then None
      else Some (float_of_int (List.length mtimes - 1) /. (hi -. lo))

let status ~dir =
  let ( let* ) = Result.bind in
  let* store, spec = load ~dir in
  let jobs = Grid.expand spec.Grid.grid in
  let events = Journal.read ~dir in
  let count_started id =
    List.length
      (List.filter
         (function Journal.Started id' -> id' = id | _ -> false)
         events)
  in
  let last_failure id =
    List.fold_left
      (fun acc ev ->
        match ev with
        | Journal.Failed (id', e) when id' = id -> Some e
        | _ -> acc)
      None events
  in
  let ids = List.map Grid.job_id jobs in
  let done_ids = List.filter (fun id -> Store.mem store ~id) ids in
  let pending_ids = List.filter (fun id -> not (Store.mem store ~id)) ids in
  let rate = throughput ~store done_ids in
  Ok
    {
      s_total = List.length ids;
      s_done = List.length done_ids;
      s_pending = pending_ids;
      s_attempts =
        List.filter_map
          (fun id ->
            match count_started id with 0 -> None | n -> Some (id, n))
          ids;
      s_failures =
        List.filter_map
          (fun id -> Option.map (fun e -> (id, e)) (last_failure id))
          ids;
      s_jobs_per_second = rate;
      s_eta_seconds =
        (match rate with
        | Some r when pending_ids <> [] ->
            Some (float_of_int (List.length pending_ids) /. r)
        | Some _ | None -> None);
    }

let run ?jobs ?limit ?on_progress ?metrics ?should_stop ?filter ~dir () =
  let ( let* ) = Result.bind in
  let* store, spec = load ~dir in
  (* single-writer discipline: a concurrent drain of the same directory
     would run pending jobs twice and interleave the journal *)
  let* summary =
    Store.Lock.with_lock ~dir (fun () ->
        let todo = pending ~store (Grid.expand spec.Grid.grid) in
        let todo =
          match filter with
          | None -> todo
          | Some keep -> List.filter keep todo
        in
        let journal = Journal.open_ ~dir in
        Fun.protect
          ~finally:(fun () -> Journal.close journal)
          (fun () ->
            Runner.run ?jobs ?limit ?on_progress ?metrics ?should_stop
              ~store ~journal spec todo))
  in
  Ok (store, spec, summary)
