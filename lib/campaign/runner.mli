(** Drains pending campaign jobs through the ensemble engine.

    Jobs run sequentially in list order; {e within} a job the
    replicates fan out across one shared {!Glc_engine.Pool} of worker
    domains, and one shared compiled-model {!Glc_engine.Cache} (keyed
    by name + content fingerprint) serves all jobs, so grid axes that
    do not change the kinetic model — FOV_UD, replicate count — reuse
    the same compilation.

    Every job is journaled ([started], then [done] or [failed]) and its
    result persisted atomically before the next job begins, so a kill
    at any point loses at most the in-flight job. A job that raises —
    an unknown circuit, an invalid model — is captured in the journal
    and the campaign moves on: one bad model degrades the campaign
    rather than killing it.

    Determinism: a job's result depends only on the campaign spec and
    the job's own content (its seed is {!Grid.job_seed}) — never on
    worker count, execution order, or which jobs ran in the same
    process. *)

type progress = {
  p_completed : int;  (** jobs finished (succeeded + failed) this run *)
  p_failed : int;
  p_total : int;  (** jobs this run will attempt *)
  p_elapsed : float;  (** wall-clock seconds since the run began *)
  p_eta : float option;  (** estimated seconds remaining *)
}

type summary = {
  ran : int;  (** jobs attempted *)
  succeeded : int;
  failed : int;
  remaining : int;  (** pending jobs not attempted (limit cut-off) *)
}

val resolve : string -> (Glc_gates.Circuit.t, string) result
(** Benchmark name, or any truth-table code: [0xNN] (or bare decimal
    up to 255) is a 3-input function, [0xNNNN] a 4-input one — the hex
    digit count selects the arity ({!Glc_gates.Cello.code_of_name}). *)

val job_protocol : Grid.spec -> Grid.job -> Glc_dvasim.Protocol.t
(** The experimental protocol a job runs under: the spec's times, the
    job's threshold and (optional) input-high level. *)

val job_document :
  ?certificate:Glc_symbolic.Certificate.t ->
  seed:int -> Grid.job -> Glc_engine.Ensemble.t -> string
(** The stored result document of a {e simulated} job: the job's
    coordinates and seed, the provenance triple
    ([provenance]:["simulated"], [certified_rows], [total_rows] — zero
    when no [certificate] rode along), top-level [verified] and
    [fitness_mean] convenience fields, and the full deterministic
    ensemble report. Byte-deterministic for a given
    (job, seed, certificate, ensemble). *)

val certified_document :
  seed:int -> Grid.job -> Glc_symbolic.Certificate.t -> string
(** The stored result document of a job whose certificate settled every
    truth-table row: [provenance] is ["certified"], there is no
    [ensemble] member — the embedded [certificate] is the evidence —
    and [fitness_mean] is a clean [100] (a proof carries no sampling
    noise). [verified] is the certificate's own verdict. *)

val run_job :
  ?metrics:Glc_obs.Metrics.t ->
  pool:Glc_engine.Pool.t ->
  cache:Glc_engine.Cache.t ->
  Grid.spec ->
  Grid.job ->
  string
(** Executes one job — resolve the circuit, derive its content seed
    ({!Grid.job_seed}), consult the symbolic analyser
    ({!Glc_symbolic.Certificate.certify} under the job's protocol), and
    only when rows remain undecided run the ensemble on [pool] through
    [cache] — and returns its result document ({!certified_document} or
    {!job_document} accordingly). This is the single execution path
    shared by campaign drains and the serve daemon, which is what makes
    a job's stored bytes identical however it was scheduled.
    @raise Failure on an unresolvable circuit (and whatever the
    ensemble itself raises). *)

val run :
  ?jobs:int ->
  ?limit:int ->
  ?on_progress:(progress -> unit) ->
  ?metrics:Glc_obs.Metrics.t ->
  ?should_stop:(unit -> bool) ->
  store:Store.t ->
  journal:Journal.t ->
  Grid.spec ->
  Grid.job list ->
  summary
(** [run ~store ~journal spec pending] journals every pending job as
    scheduled, then attempts the first [limit] of them (default: all)
    in order. [jobs] sizes the worker pool (0 = hardware).

    [should_stop] (default: never) is polled before each job starts;
    once it returns [true] no further job begins — the in-flight job
    finishes, its result is persisted and journaled, and the drain
    returns with the untouched jobs counted in [remaining]. This is the
    graceful-interrupt hook: the CLI points it at a SIGINT/SIGTERM flag
    so a signalled campaign flushes instead of dying mid-write.

    A live [metrics] registry (default {!Glc_obs.Metrics.noop}) receives
    the campaign counters [campaign.jobs_scheduled] /
    [campaign.jobs_succeeded] / [campaign.jobs_failed], the gauge
    [campaign.jobs_todo], the wall-time histograms
    [campaign.job_seconds], [campaign.store_put_seconds] (atomic
    temp+fsync+rename write), [campaign.journal_append_seconds] (fsync
    per record) and [campaign.jobs_per_second] (one observation per
    run), one span [job:<id>] per attempted job, and everything the
    underlying pool, cache and ensemble engine record (see
    {!Glc_engine.Ensemble.run}).
    @raise Invalid_argument if [limit < 0]. *)

val counter_progress : ?oc:out_channel -> unit -> progress -> unit
(** A live [completed/total (+failures) + ETA] line rewritten in place
    (default [stderr]) — pass as [on_progress] when a human watches. *)
