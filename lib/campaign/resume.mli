(** Restarting an interrupted campaign.

    Resume is pure bookkeeping over the on-disk state: re-read the
    manifest, re-expand the grid (deterministically), skip every job
    whose result is present and parseable in the {!Store}, and re-queue
    the rest — including jobs that previously failed or were in flight
    when the process died. Because job seeds are content-derived
    ({!Grid.job_seed}), the re-run jobs produce exactly the bytes they
    would have produced in the uninterrupted run, and the final
    {!Store.report_json} of a resumed campaign is byte-identical to an
    uninterrupted one with the same root seed. *)

val load : dir:string -> (Store.t * Grid.spec, string) result
(** Opens the campaign directory and parses its manifest. *)

val pending : store:Store.t -> Grid.job list -> Grid.job list
(** The jobs without a stored result, in grid order. *)

type status = {
  s_total : int;
  s_done : int;
  s_pending : string list;  (** ids, grid order *)
  s_attempts : (string * int) list;  (** started-events per id, grid order *)
  s_failures : (string * string) list;  (** last failure per id, grid order *)
  s_jobs_per_second : float option;
      (** observed completion rate, from the modification times of the
          stored results; [None] until two results exist at distinct
          times *)
  s_eta_seconds : float option;
      (** [pending / rate] — [None] when the rate is unknown or nothing
          is pending *)
}

val status : dir:string -> (status, string) result
(** Store + journal summary: how far the campaign got, which jobs were
    attempted how often, the last recorded failure per job, and a
    throughput/ETA estimate for what remains. *)

val run :
  ?jobs:int ->
  ?limit:int ->
  ?on_progress:(Runner.progress -> unit) ->
  ?metrics:Glc_obs.Metrics.t ->
  ?should_stop:(unit -> bool) ->
  ?filter:(Grid.job -> bool) ->
  dir:string ->
  unit ->
  (Store.t * Grid.spec * Runner.summary, string) result
(** Loads the campaign, computes the pending set and drains it through
    {!Runner.run} (appending to the existing journal). Also the
    implementation of a {e fresh} run — a fresh campaign is a resume
    with an empty store.

    The drain holds the directory's single-writer {!Store.Lock}: a
    second process draining the same campaign concurrently gets a clean
    [Error] instead of duplicated work and an interleaved journal (a
    stale lock left by a [kill -9] is detected and broken). [should_stop]
    is the graceful-interrupt hook, polled between jobs — see
    {!Runner.run}.

    [filter] (default: keep everything) prunes the pending set before
    the drain — jobs it rejects are neither scheduled nor counted in
    [remaining]. The function-space atlas uses it for certified-only
    drains: keep just the jobs whose certificate settles every row, so
    a sweep finishes without simulating and the undecided functions
    stay pending for a later full drain. *)
