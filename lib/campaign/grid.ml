module Json = Glc_core.Report.Json
module Protocol = Glc_dvasim.Protocol

type t = {
  circuits : string list;
  thresholds : float list;
  fov_uds : float list;
  input_highs : float option list;
  replicate_counts : int list;
}

type spec = {
  seed : int;
  total_time : float;
  hold_time : float;
  grid : t;
}

type job = {
  j_circuit : string;
  j_threshold : float;
  j_fov_ud : float;
  j_input_high : float option;
  j_replicates : int;
}

let rec distinct = function
  | [] -> true
  | x :: rest -> (not (List.mem x rest)) && distinct rest

let axis name check xs =
  if xs = [] then invalid_arg (Printf.sprintf "Grid.make: empty %s" name);
  if not (distinct xs) then
    invalid_arg (Printf.sprintf "Grid.make: duplicate %s" name);
  List.iter (check name) xs

let positive name x =
  if not (x > 0.) then
    invalid_arg (Printf.sprintf "Grid.make: non-positive %s" name)

let make ?(thresholds = [ Protocol.default.Protocol.threshold ])
    ?(fov_uds = [ 0.25 ]) ?(input_highs = [ None ])
    ?(replicate_counts = [ 16 ]) circuits =
  axis "circuits" (fun n c -> if c = "" then invalid_arg
      (Printf.sprintf "Grid.make: empty string in %s" n)) circuits;
  axis "thresholds" positive thresholds;
  axis "fov_uds" positive fov_uds;
  axis "input_highs"
    (fun n -> function Some x -> positive n x | None -> ())
    input_highs;
  axis "replicate_counts"
    (fun n r ->
      if r < 1 then invalid_arg (Printf.sprintf "Grid.make: %s < 1" n))
    replicate_counts;
  { circuits; thresholds; fov_uds; input_highs; replicate_counts }

let spec ?(seed = 42) ?(total_time = Protocol.default.Protocol.total_time)
    ?(hold_time = Protocol.default.Protocol.hold_time) grid =
  if not (total_time > 0.) then invalid_arg "Grid.spec: total_time <= 0";
  if not (hold_time > 0.) then invalid_arg "Grid.spec: hold_time <= 0";
  { seed; total_time; hold_time; grid }

(* Deterministic nested expansion: circuits outermost, replicate counts
   innermost. Everything downstream (ids, seeds, the report's job
   order) leans on this order being a pure function of the grid. *)
let expand g =
  List.concat_map
    (fun j_circuit ->
      List.concat_map
        (fun j_threshold ->
          List.concat_map
            (fun j_fov_ud ->
              List.concat_map
                (fun j_input_high ->
                  List.map
                    (fun j_replicates ->
                      {
                        j_circuit;
                        j_threshold;
                        j_fov_ud;
                        j_input_high;
                        j_replicates;
                      })
                    g.replicate_counts)
                g.input_highs)
            g.fov_uds)
        g.thresholds)
    g.circuits

let size g =
  List.length g.circuits * List.length g.thresholds
  * List.length g.fov_uds * List.length g.input_highs
  * List.length g.replicate_counts

(* FNV-1a 64 over the canonical field rendering: the id depends only on
   the job's content, never on its position in the grid. *)
let fnv64 s =
  let prime = 0x100000001b3L in
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) prime)
    s;
  !h

let canonical job =
  Printf.sprintf "circuit=%s;threshold=%s;fov=%s;high=%s;replicates=%d"
    job.j_circuit
    (Json.float job.j_threshold)
    (Json.float job.j_fov_ud)
    (match job.j_input_high with
    | None -> "default"
    | Some h -> Json.float h)
    job.j_replicates

let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '.' | '-' -> c
      | _ -> '_')
    name

let job_id job =
  Printf.sprintf "%s-%016Lx" (sanitize job.j_circuit)
    (fnv64 (canonical job))

let job_seed ~seed job =
  (* root seed folded with the content id: stable under re-ordering,
     re-expansion and resume; positive so it is a valid RNG seed *)
  Int64.to_int
    (Int64.shift_right_logical
       (fnv64 (Printf.sprintf "%d/%s" seed (job_id job)))
       2)

let pp_job ppf job =
  Format.fprintf ppf "%s: threshold %g, FOV_UD %g, input-high %s, %d rep(s)"
    job.j_circuit job.j_threshold job.j_fov_ud
    (match job.j_input_high with
    | None -> "default"
    | Some h -> Printf.sprintf "%g" h)
    job.j_replicates

(* ---- manifest (de)serialisation ---- *)

let json_list to_item xs =
  "[" ^ String.concat "," (List.map to_item xs) ^ "]"

let to_json g =
  Printf.sprintf
    "{\"circuits\":%s,\"thresholds\":%s,\"fov_uds\":%s,\"input_highs\":%s,\"replicate_counts\":%s}"
    (json_list Json.string g.circuits)
    (json_list Json.float g.thresholds)
    (json_list Json.float g.fov_uds)
    (json_list
       (function None -> "null" | Some h -> Json.float h)
       g.input_highs)
    (json_list string_of_int g.replicate_counts)

let spec_to_json s =
  Printf.sprintf
    "{\"version\":1,\"seed\":%d,\"total_time\":%s,\"hold_time\":%s,\"grid\":%s}"
    s.seed
    (Json.float s.total_time)
    (Json.float s.hold_time)
    (to_json s.grid)

let field_of v name conv =
  match Option.bind (Json.member v name) conv with
  | Some x -> Ok x
  | None -> Error (Printf.sprintf "manifest: missing or bad %S" name)

let list_field v name conv =
  let ( let* ) = Result.bind in
  let* items = field_of v name Json.to_list in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | item :: rest -> (
        match conv item with
        | Some x -> go (x :: acc) rest
        | None -> Error (Printf.sprintf "manifest: bad element in %S" name))
  in
  go [] items

let of_json v =
  let ( let* ) = Result.bind in
  let* circuits = list_field v "circuits" Json.to_str in
  let* thresholds = list_field v "thresholds" Json.to_number in
  let* fov_uds = list_field v "fov_uds" Json.to_number in
  let* input_highs =
    list_field v "input_highs" (function
      | Json.Null -> Some None
      | Json.Number h -> Some (Some h)
      | _ -> None)
  in
  let* replicate_counts = list_field v "replicate_counts" Json.to_int in
  match
    make ~thresholds ~fov_uds ~input_highs ~replicate_counts circuits
  with
  | g -> Ok g
  | exception Invalid_argument m -> Error m

let spec_of_json text =
  let ( let* ) = Result.bind in
  let* v = Json.parse text in
  let* version = field_of v "version" Json.to_int in
  if version <> 1 then
    Error (Printf.sprintf "manifest: unsupported version %d" version)
  else
    let* seed = field_of v "seed" Json.to_int in
    let* total_time = field_of v "total_time" Json.to_number in
    let* hold_time = field_of v "hold_time" Json.to_number in
    let* grid =
      match Json.member v "grid" with
      | Some g -> of_json g
      | None -> Error "manifest: missing \"grid\""
    in
    match spec ~seed ~total_time ~hold_time grid with
    | s -> Ok s
    | exception Invalid_argument m -> Error m
