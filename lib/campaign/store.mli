(** On-disk result store of a campaign.

    Directory layout:

    {v
    <dir>/
      MANIFEST.json          the campaign spec (Grid.spec_to_json)
      journal.jsonl          job lifecycle events (module Journal)
      results/<job-id>.json  one document per completed job
    v}

    Every write is atomic: the document is written to a pid-stamped
    temp file in the same directory, fsync'd, then renamed over the
    final path — a result file is either fully present and parseable or
    absent, never half-written. {!get} additionally validates that the
    stored bytes parse, so even a corrupted file degrades to "absent"
    (the job simply re-runs on resume) rather than poisoning a
    campaign. *)

type t

val mkdir_p : string -> unit
(** [mkdir "-p"]: creates the directory and its missing parents. *)

(** {2 Single-writer lock}

    A campaign (or serve) state directory tolerates crashed writers —
    every write is atomic and resume re-runs what is missing — but not
    {e concurrent} ones: two drains of the same directory would run
    every pending job twice and interleave journal records. The lock
    makes the single-writer discipline explicit: the draining entry
    points ({!Resume.run}, the serve daemon) take it for the duration
    of the drain, and a second process opening the same directory fails
    cleanly instead of corrupting the campaign. *)
module Lock : sig
  type lock

  val path : dir:string -> string
  (** [<dir>/LOCK]. *)

  val acquire : dir:string -> (lock, string) result
  (** Creates [<dir>/LOCK] with [O_CREAT|O_EXCL] containing this
      process's pid. When the file already exists, the pid inside is
      probed: a live process means the directory is genuinely busy
      ([Error] naming the pid); a dead pid or unparseable content is a
      stale lock left by a [kill -9], which is removed and the
      acquisition retried (once — losing the re-acquisition race to
      another process is again a clean [Error]). *)

  val release : lock -> unit
  (** Removes the lock file. Idempotent; never raises. *)

  val with_lock : dir:string -> (unit -> 'a) -> ('a, string) result
  (** [acquire], run, [release] — the release happens on exceptions
      too. [Error] only when the acquisition itself fails. *)
end

val create : dir:string -> string -> (t, string) result
(** [create ~dir manifest_json] initialises a fresh campaign directory
    (creating [dir] and [dir/results]) and persists the manifest.
    Errors if [dir] already holds a manifest — resume instead. *)

val load : dir:string -> (t * string, string) result
(** Opens an existing campaign directory; returns the store and the
    raw manifest text. *)

val dir : t -> string

val result_path : t -> id:string -> string

val put : t -> id:string -> string -> unit
(** Atomically persists one job document under its id. *)

val get : t -> id:string -> string option
(** The stored document, or [None] when absent {e or} unparseable. *)

val mem : t -> id:string -> bool

val completed : t -> string list
(** Ids with a present, parseable result, sorted. *)

(** {2 The campaign report}

    Derived purely from the store and the expanded grid, in grid
    order — so two stores with identical contents render identical
    bytes regardless of the order, interruptions or process boundaries
    under which the results arrived. This is the resume-determinism
    acceptance contract. *)

type job_line = {
  l_id : string;
  l_job : Grid.job;
  l_done : bool;
  l_verified : bool;
      (** the document's top-level verdict (a certificate's proof or
          the ensemble consensus; older documents fall back to
          [ensemble.consensus_verified]); false when not done *)
  l_verified_count : int;
  l_completed : int;  (** replicates that finished *)
  l_failed : int;  (** replicates that crashed *)
  l_fitness_mean : float;  (** nan when not done *)
  l_provenance : string;
      (** ["certified"] (symbolically proved, no ensemble) or
          ["simulated"]; ["-"] when not done *)
  l_certified_rows : int;  (** truth-table rows the certificate proved *)
  l_total_rows : int;  (** 0 on documents stored before provenance *)
}

val lines : t -> Grid.spec -> job_line list
(** One line per grid job, in grid order. *)

val report_json : t -> Grid.spec -> string
(** Machine-readable campaign report. Deterministic bytes. *)

val pp_report : Format.formatter -> t * Grid.spec -> unit
