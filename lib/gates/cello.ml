module Truth_table = Glc_logic.Truth_table
module Netlist = Glc_logic.Netlist

let name_of_code ~arity code =
  (* one hex digit per 4 truth-table rows, but never fewer than two so
     the historical 2- and 3-input names ("0x0B") stay byte-identical *)
  Printf.sprintf "0x%0*X" (max 2 ((1 lsl arity) / 4)) code

let code_of_name name =
  let hex = String.length name - 2 in
  if hex < 1 || hex > 4 || not (String.length name > 2 && name.[0] = '0' && (name.[1] = 'x' || name.[1] = 'X'))
  then None
  else
    match int_of_string_opt name with
    | None -> None
    | Some code ->
        let arity = if hex <= 2 then 3 else 4 in
        if code >= 0 && code < 1 lsl (1 lsl arity) then Some (arity, code)
        else None

let reversed_sensors arity =
  let s = Assembly.sensors arity in
  Array.init arity (fun i -> s.(arity - 1 - i))

let of_code ?(arity = 3) code =
  let tt = Truth_table.of_code ~arity code in
  let name = name_of_code ~arity code in
  if arity <= 3 then Assembly.synthesize ~name tt
  else begin
    (* beyond 3 inputs the minimal netlist can exceed the stock
       twelve-repressor library (sampled 4-input synthesis peaks at 45
       gates), so size an extended library to the netlist — plus one
       spare, consumed by the auxiliary inverter a Const-false output
       needs *)
    let nl = Netlist.of_truth_table ~inputs:(reversed_sensors arity) tt in
    let library = Repressor.extended (Netlist.gate_count nl + 1) in
    Assembly.of_netlist ~library ~name ~expected:tt nl
  end

let circuit_0x0B () = of_code 0x0B
let circuit_0x04 () = of_code 0x04
let circuit_0x1C () = of_code 0x1C

let codes = [ 0x0B; 0x04; 0x1C; 0x70; 0x41; 0x8E; 0x5D; 0x3A; 0xB1; 0x17 ]

let all () = List.map of_code codes
