(** Cello-style circuits named by truth-table code.

    Nielsen et al. (Science 2016) name each 3-input circuit by the
    hexadecimal code of its output column ([0x0B], [0x04], [0x1C], …).
    {!of_code} runs the full synthesis flow for any such code; {!all}
    returns the ten circuits used in the paper's evaluation, including the
    three whose analytics appear in the paper's Fig. 4. *)

val name_of_code : arity:int -> int -> string
(** Canonical circuit name of a truth-table code: ["0x"] plus the code
    zero-padded to one hex digit per four rows, never fewer than two —
    ["0x0B"] at arity 3, ["0x06F2"] at arity 4. Injective across
    arities (the digit count encodes the arity). *)

val code_of_name : string -> (int * int) option
(** Parses a {!name_of_code}-shaped name back to [(arity, code)]: one
    or two hex digits mean arity 3 (the historical convention — arity-2
    codes share these names), three or four mean arity 4. [None] when
    the string is not such a name or the code exceeds the arity's
    [2^2^n - 1]. *)

val of_code : ?arity:int -> int -> Circuit.t
(** [of_code code] synthesises the circuit of that truth-table code
    (default [arity = 3]), named by {!name_of_code}. Beyond arity 3 the
    repressor library is automatically extended
    ({!Repressor.extended}) to the synthesised netlist's gate count.
    @raise Invalid_argument if the code does not fit the arity. *)

val circuit_0x0B : unit -> Circuit.t
(** Output high on combinations 000, 001 and 011 (minterms 0, 1, 3). *)

val circuit_0x04 : unit -> Circuit.t
(** Output high on combination 010 only. *)

val circuit_0x1C : unit -> Circuit.t
(** Output high on combinations 010, 011 and 100. *)

val codes : int list
(** The ten benchmark codes:
    [0x0B; 0x04; 0x1C; 0x70; 0x41; 0x8E; 0x5D; 0x3A; 0xB1; 0x17]. *)

val all : unit -> Circuit.t list
(** Circuits for {!codes}, in order. *)
