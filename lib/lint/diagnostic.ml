type severity = Error | Warning | Info

type subject =
  | Model of string
  | Species of string
  | Reaction of string
  | Parameter of string
  | Protein of string
  | Promoter of string
  | Net of string
  | Circuit of string
  | Protocol of string
  | Document of string
  | File of string

type t = {
  code : string;
  severity : severity;
  subject : subject;
  message : string;
}

let make ~code ~severity ~subject message =
  { code; severity; subject; message }

let severity_label = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let subject_kind = function
  | Model _ -> "model"
  | Species _ -> "species"
  | Reaction _ -> "reaction"
  | Parameter _ -> "parameter"
  | Protein _ -> "protein"
  | Promoter _ -> "promoter"
  | Net _ -> "net"
  | Circuit _ -> "circuit"
  | Protocol _ -> "protocol"
  | Document _ -> "document"
  | File _ -> "file"

let subject_id = function
  | Model id | Species id | Reaction id | Parameter id | Protein id
  | Promoter id | Net id | Circuit id | Protocol id | Document id
  | File id ->
      id

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

let compare a b =
  let c = Int.compare (severity_rank a.severity) (severity_rank b.severity) in
  if c <> 0 then c
  else
    let c = String.compare a.code b.code in
    if c <> 0 then c
    else
      let c = String.compare (subject_kind a.subject) (subject_kind b.subject) in
      if c <> 0 then c
      else
        let c = String.compare (subject_id a.subject) (subject_id b.subject) in
        if c <> 0 then c
        else String.compare a.message b.message

let errors ds = List.length (List.filter (fun d -> d.severity = Error) ds)

let warnings ds =
  List.length (List.filter (fun d -> d.severity = Warning) ds)

let exit_code ds =
  if List.exists (fun d -> d.severity = Error) ds then 2
  else if List.exists (fun d -> d.severity = Warning) ds then 1
  else 0

let pp ppf d =
  Format.fprintf ppf "%s %s [%s %s]: %s" (severity_label d.severity) d.code
    (subject_kind d.subject) (subject_id d.subject) d.message

(* JSON: same escaping conventions as Glc_obs.Metrics.to_json, so every
   machine-readable export of the toolchain parses with the one reader
   in Glc_core.Report.Json. *)
let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_string s = "\"" ^ escape s ^ "\""

let to_json d =
  Printf.sprintf
    "{\"code\":%s,\"severity\":%s,\"subject\":{\"kind\":%s,\"id\":%s},\"message\":%s}"
    (json_string d.code)
    (json_string (severity_label d.severity))
    (json_string (subject_kind d.subject))
    (json_string (subject_id d.subject))
    (json_string d.message)

let list_to_json ds = "[" ^ String.concat "," (List.map to_json ds) ^ "]"
