module Model = Glc_model.Model
module Math = Glc_model.Math
module Compiled = Glc_ssa.Compiled
module Document = Glc_sbol.Document
module Circuit = Glc_gates.Circuit
module Protocol = Glc_dvasim.Protocol
module Truth_table = Glc_logic.Truth_table
module Netlist = Glc_logic.Netlist
module Metrics = Glc_obs.Metrics
module Interval = Glc_symbolic.Interval
module D = Diagnostic

type check = {
  ck_code : string;
  ck_severity : D.severity;
  ck_title : string;
  ck_doc : string;
}

let catalogue =
  [
    {
      ck_code = "GLC001";
      ck_severity = D.Error;
      ck_title = "ill-formed model or document";
      ck_doc =
        "structural validation failed (duplicate ids, undeclared \
         references, bad stoichiometry, negative initial amounts, or an \
         unreadable input file)";
    };
    {
      ck_code = "GLC002";
      ck_severity = D.Error;
      ck_title = "unproducible species";
      ck_doc =
        "a non-boundary species with initial amount 0 that no fireable \
         reaction produces can never become positive; an error when it \
         is the circuit output";
    };
    {
      ck_code = "GLC003";
      ck_severity = D.Warning;
      ck_title = "unreachable reaction";
      ck_doc =
        "the reaction can never fire: a reactant is provably stuck at \
         zero, or its propensity is identically zero";
    };
    {
      ck_code = "GLC004";
      ck_severity = D.Warning;
      ck_title = "inert reaction";
      ck_doc =
        "every reactant and product is a boundary species, so firings \
         change nothing while still consuming SSA steps";
    };
    {
      ck_code = "GLC005";
      ck_severity = D.Error;
      ck_title = "output bounded below threshold";
      ck_doc =
        "a conservation law bounds the output's copy number below the \
         logic threshold, so it can never digitise high and \
         verification is guaranteed to fail";
    };
    {
      ck_code = "GLC006";
      ck_severity = D.Warning;
      ck_title = "kinetic-law sanity";
      ck_doc =
        "a propensity is negative or not finite at the initial state";
    };
    {
      ck_code = "GLC007";
      ck_severity = D.Info;
      ck_title = "unused parameter";
      ck_doc = "the parameter is referenced by no kinetic law";
    };
    {
      ck_code = "GLC008";
      ck_severity = D.Error;
      ck_title = "arity mismatch";
      ck_doc =
        "the expected truth table, the declared inputs, the document's \
         input proteins or a netlist's tabulation disagree on the \
         circuit's logic or arity";
    };
    {
      ck_code = "GLC009";
      ck_severity = D.Warning;
      ck_title = "constant expected logic";
      ck_doc =
        "the intended truth table is constant; verification is trivial";
    };
    {
      ck_code = "GLC010";
      ck_severity = D.Error;
      ck_title = "SBML/SBOL cross-document mismatch";
      ck_doc =
        "the structural document and the kinetic model disagree: a \
         protein without a species, an input protein that is not a \
         boundary species, or a production interaction with no \
         producing reaction";
    };
    {
      ck_code = "GLC011";
      ck_severity = D.Error;
      ck_title = "protocol sanity";
      ck_doc =
        "the D-VASim protocol cannot exercise the circuit: hold slots \
         shorter than the sampling step, a horizon too short for every \
         input combination, or input drive inconsistent with the \
         threshold";
    };
  ]

(* ------------------------------------------------------------------ *)
(* Metrics plumbing                                                    *)

let record metrics ~checks ds =
  if Metrics.enabled metrics then begin
    Metrics.Counter.add (Metrics.counter metrics "lint.checks_run") checks;
    Metrics.Counter.add
      (Metrics.counter metrics "lint.diagnostics")
      (List.length ds);
    Metrics.Counter.add (Metrics.counter metrics "lint.errors") (D.errors ds);
    Metrics.Counter.add
      (Metrics.counter metrics "lint.warnings")
      (D.warnings ds)
  end;
  List.stable_sort D.compare ds

(* ------------------------------------------------------------------ *)
(* Reachability: which species can ever become positive, and which
   reactions can ever fire. The fixed point starts from boundary
   species (the virtual laboratory may drive them) and positive initial
   amounts; a reaction is fireable once every reactant may be positive
   and its propensity is not provably zero, and firing makes its
   products reachable. Zero-propagation over the kinetic law is the
   degenerate [0,0] case of the symbolic interval domain
   ({!Glc_symbolic.Interval}): a stuck species is exactly [0,0], a
   maybe-positive species any admissible amount, a parameter its point
   value — a propensity is provably zero iff its interval is [0,0]
   whatever the maybe-positive species do (the domain's [0/0 = 0]
   convention matches the simulator clamping propensities at zero). *)

let reachability (m : Model.t) =
  let positive = Hashtbl.create 16 in
  List.iter
    (fun (s : Model.species) ->
      if s.s_boundary || s.s_initial > 0. then
        Hashtbl.replace positive s.s_id ())
    m.m_species;
  (* the closure reads [positive] live, so the interval environment
     sharpens as the fixed point grows — exactly like the bespoke
     zero-propagation predicate it replaces *)
  let lookup id =
    match Model.parameter_value m id with
    | Some v -> Interval.point v
    | None ->
        if Hashtbl.mem positive id then Interval.top else Interval.zero
  in
  let zero e = Interval.is_zero (Interval.eval ~lookup e) in
  let enabled = Hashtbl.create 16 in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (r : Model.reaction) ->
        if not (Hashtbl.mem enabled r.r_id) then begin
          let reactants_ok =
            List.for_all (fun (id, _) -> Hashtbl.mem positive id) r.r_reactants
          in
          if reactants_ok && not (zero r.r_rate) then begin
            Hashtbl.replace enabled r.r_id ();
            List.iter
              (fun (id, _) ->
                if not (Hashtbl.mem positive id) then
                  Hashtbl.replace positive id ())
              r.r_products;
            changed := true
          end
        end)
      m.m_reactions
  done;
  (positive, enabled)

(* ------------------------------------------------------------------ *)
(* Conservation bounds (GLC005). Two invariant families cover the
   common genetic motifs (a sequestered reporter, a toggling pair):
   a species no reaction changes is bounded by its initial amount, and
   a pair whose per-reaction deltas cancel is bounded by the pair's
   total initial amount. Boundary species are excluded: their deltas
   are dropped at compile time, so they absorb no conserved mass. *)

let conservation_bound (m : Model.t) out_id =
  let delta (r : Model.reaction) id =
    let sum sign =
      List.fold_left (fun acc (i, st) -> if i = id then acc + (sign * st) else acc)
    in
    sum 1 (sum (-1) 0 r.r_reactants) r.r_products
  in
  let initial id =
    match Model.find_species m id with
    | Some s -> s.Model.s_initial
    | None -> 0.
  in
  let out_deltas = List.map (fun r -> delta r out_id) m.m_reactions in
  let bounds = ref [] in
  if List.for_all (( = ) 0) out_deltas then
    bounds := (initial out_id, [ out_id ]) :: !bounds;
  List.iter
    (fun (s : Model.species) ->
      if (not (String.equal s.s_id out_id)) && not s.s_boundary then begin
        let ds = List.map (fun r -> delta r s.s_id) m.m_reactions in
        if
          List.exists (( <> ) 0) out_deltas
          && List.for_all2 (fun a b -> a + b = 0) out_deltas ds
        then
          bounds :=
            (initial out_id +. initial s.s_id, [ out_id; s.s_id ]) :: !bounds
      end)
    m.m_species;
  match !bounds with
  | [] -> None
  | bs ->
      Some
        (List.fold_left
           (fun (b, ids) (b', ids') -> if b' < b then (b', ids') else (b, ids))
           (List.hd bs) (List.tl bs))

(* ------------------------------------------------------------------ *)
(* Model checks: GLC001 .. GLC007                                      *)

let diag_of_issue (m : Model.t) (i : Model.issue) =
  let subject =
    match i.Model.i_subject with
    | `Model -> D.Model m.m_id
    | `Species id -> D.Species id
    | `Parameter id -> D.Parameter id
    | `Reaction id -> D.Reaction id
  in
  D.make ~code:"GLC001" ~severity:D.Error ~subject i.Model.i_message

let n_model_checks = 7

let model ?(threshold = Protocol.default.Protocol.threshold) ?output
    ?(metrics = Metrics.noop) (m : Model.t) =
  match Model.validate_issues m with
  | _ :: _ as issues ->
      (* the remaining analyses need a well-formed, compilable model *)
      record metrics ~checks:1 (List.map (diag_of_issue m) issues)
  | [] ->
      let compiled = Compiled.compile m in
      let positive, enabled = reachability m in
      let ds = ref [] in
      let add code severity subject fmt =
        Printf.ksprintf
          (fun msg -> ds := D.make ~code ~severity ~subject msg :: !ds)
          fmt
      in
      (* GLC002: species that can never become positive *)
      List.iter
        (fun (s : Model.species) ->
          if (not s.s_boundary) && not (Hashtbl.mem positive s.s_id) then
            if output = Some s.s_id then
              add "GLC002" D.Error (D.Species s.s_id)
                "output species %S can never become positive: its initial \
                 amount is 0 and no reaction that can fire produces it — \
                 it never digitises high, so verification is guaranteed \
                 to fail"
                s.s_id
            else
              add "GLC002" D.Warning (D.Species s.s_id)
                "species %S can never become positive: its initial amount \
                 is 0 and no reaction that can fire produces it"
                s.s_id)
        m.m_species;
      (* GLC003: reactions that can never fire *)
      List.iter
        (fun (r : Model.reaction) ->
          if not (Hashtbl.mem enabled r.r_id) then begin
            match
              List.find_opt
                (fun (id, _) -> not (Hashtbl.mem positive id))
                r.r_reactants
            with
            | Some (id, _) ->
                add "GLC003" D.Warning (D.Reaction r.r_id)
                  "reaction %S can never fire: its reactant %S can never \
                   become positive"
                  r.r_id id
            | None ->
                add "GLC003" D.Warning (D.Reaction r.r_id)
                  "reaction %S can never fire: its propensity is \
                   identically zero"
                  r.r_id
          end)
        m.m_reactions;
      (* GLC004: reactions that fire but change nothing *)
      List.iter
        (fun id ->
          if Hashtbl.mem enabled id then
            add "GLC004" D.Warning (D.Reaction id)
              "reaction %S changes no state when it fires (every reactant \
               and product is a boundary species) — it only burns SSA \
               steps"
              id)
        (Compiled.inert_reactions compiled);
      (* GLC005: conservation law pins the output below the threshold *)
      (match output with
      | Some out_id
        when Hashtbl.mem positive out_id
             && (match Model.find_species m out_id with
                | Some s -> not s.Model.s_boundary
                | None -> false) -> (
          match conservation_bound m out_id with
          | Some (bound, ids) when bound < threshold ->
              add "GLC005" D.Error (D.Species out_id)
                "output species %S is bounded above by %g molecules by a \
                 conservation law (%s is invariant) and can never reach \
                 the logic threshold %g — verification is guaranteed to \
                 fail"
                out_id bound
                (String.concat " + " ids)
                threshold
          | Some _ | None -> ())
      | Some _ | None -> ());
      (* GLC006: propensity sanity at the initial state *)
      let lookup id =
        match Model.find_species m id with
        | Some s -> s.Model.s_initial
        | None -> (
            match Model.parameter_value m id with
            | Some v -> v
            | None -> raise Not_found)
      in
      List.iter
        (fun (r : Model.reaction) ->
          let v = Math.eval ~lookup r.r_rate in
          if not (Float.is_finite v) then
            add "GLC006" D.Warning (D.Reaction r.r_id)
              "the propensity of reaction %S is not finite (%g) at the \
               initial state"
              r.r_id v
          else if v < 0. then
            add "GLC006" D.Warning (D.Reaction r.r_id)
              "the propensity of reaction %S is negative (%g) at the \
               initial state; the simulator clamps it to zero"
              r.r_id v)
        m.m_reactions;
      (* GLC007: parameters no kinetic law references *)
      let used = Hashtbl.create 16 in
      List.iter
        (fun (r : Model.reaction) ->
          List.iter
            (fun id -> Hashtbl.replace used id ())
            (Math.idents r.r_rate))
        m.m_reactions;
      List.iter
        (fun (p : Model.parameter) ->
          if not (Hashtbl.mem used p.p_id) then
            add "GLC007" D.Info (D.Parameter p.p_id)
              "parameter %S is referenced by no kinetic law" p.p_id)
        m.m_parameters;
      record metrics ~checks:n_model_checks (List.rev !ds)

(* ------------------------------------------------------------------ *)
(* Document, cross-document, protocol, netlist and circuit checks      *)

let document ?(metrics = Metrics.noop) (doc : Document.t) =
  record metrics ~checks:1
    (List.map
       (fun msg ->
         D.make ~code:"GLC001" ~severity:D.Error ~subject:(D.Document doc.doc_id)
           msg)
       (Document.validate doc))

let cross ?(metrics = Metrics.noop) ~(model : Model.t) (doc : Document.t) =
  let ds = ref [] in
  let add severity subject fmt =
    Printf.ksprintf
      (fun msg -> ds := D.make ~code:"GLC010" ~severity ~subject msg :: !ds)
      fmt
  in
  let inputs = Document.input_proteins doc in
  List.iter
    (fun (p : Document.protein) ->
      match Model.find_species model p.prot_id with
      | None ->
          add D.Error (D.Protein p.prot_id)
            "protein %S has no species in the kinetic model" p.prot_id
      | Some s ->
          if List.mem p.prot_id inputs && not s.Model.s_boundary then
            add D.Error (D.Protein p.prot_id)
              "input protein %S is not a boundary species in the model — \
               the virtual laboratory cannot drive it"
              p.prot_id)
    doc.doc_proteins;
  List.iter
    (function
      | Document.Production { prom; prot } ->
          let produced =
            List.exists
              (fun (r : Model.reaction) ->
                List.exists (fun (id, _) -> String.equal id prot) r.r_products)
              model.m_reactions
          in
          if not produced then
            add D.Error (D.Promoter prom)
              "promoter %S produces protein %S in the document, but no \
               reaction in the model produces it"
              prom prot
      | Document.Repression _ | Document.Activation _ -> ())
    doc.doc_interactions;
  if not (String.equal doc.doc_id model.m_id) then
    add D.Info (D.Document doc.doc_id)
      "document id %S differs from the model id %S" doc.doc_id model.m_id;
  record metrics ~checks:1 (List.rev !ds)

let protocol ?(metrics = Metrics.noop) ~arity (p : Protocol.t) =
  let ds = ref [] in
  let add subject fmt =
    Printf.ksprintf
      (fun msg ->
        ds := D.make ~code:"GLC011" ~severity:D.Error ~subject msg :: !ds)
      fmt
  in
  if p.Protocol.hold_time < p.Protocol.dt then
    add (D.Protocol "hold_time")
      "hold slots (%g t.u.) are shorter than the sampling step dt = %g — \
       no slot contains a settled sample"
      p.Protocol.hold_time p.Protocol.dt;
  if not (Protocol.covers_all_rows p ~arity) then
    add (D.Protocol "total_time")
      "total_time %g gives %d hold slot(s) of %g t.u. — fewer than the %d \
       input combinations of a %d-input circuit, so the truth table is \
       never fully exercised"
      p.Protocol.total_time (Protocol.slots p) p.Protocol.hold_time
      (1 lsl arity) arity;
  if p.Protocol.input_high < p.Protocol.threshold then
    add (D.Protocol "input_high")
      "logic-1 inputs are applied at %g molecules, below the logic \
       threshold %g — driven inputs can never digitise high"
      p.Protocol.input_high p.Protocol.threshold;
  if p.Protocol.input_low >= p.Protocol.threshold then
    add (D.Protocol "input_low")
      "logic-0 inputs are applied at %g molecules, at or above the logic \
       threshold %g — undriven inputs digitise high"
      p.Protocol.input_low p.Protocol.threshold;
  record metrics ~checks:1 (List.rev !ds)

let netlist ?(metrics = Metrics.noop) ~expected (nl : Netlist.t) =
  let ds = ref [] in
  let arity = Truth_table.arity expected in
  let n_inputs = Array.length nl.Netlist.inputs in
  if n_inputs <> arity then
    ds :=
      [
        D.make ~code:"GLC008" ~severity:D.Error ~subject:(D.Net nl.Netlist.output)
          (Printf.sprintf
             "the netlist has %d input(s) but the intended truth table has \
              arity %d"
             n_inputs arity);
      ]
  else begin
    let got = Netlist.to_truth_table nl in
    if not (Truth_table.equal got expected) then
      ds :=
        [
          D.make ~code:"GLC008" ~severity:D.Error
            ~subject:(D.Net nl.Netlist.output)
            (Format.asprintf
               "the netlist computes %a but the intended table is %a"
               Truth_table.pp_code got Truth_table.pp_code expected);
        ]
  end;
  record metrics ~checks:1 !ds

let n_circuit_checks = 2

(* [circuit]'s optional argument shadows the [protocol] check; keep a
   callable alias *)
let protocol_checks = protocol

let circuit ?(protocol = Protocol.default) ?(metrics = Metrics.noop)
    (c : Circuit.t) =
  let arity = Circuit.arity c in
  let ds = ref [] in
  let add code severity fmt =
    Printf.ksprintf
      (fun msg ->
        ds :=
          D.make ~code ~severity ~subject:(D.Circuit c.Circuit.name) msg :: !ds)
      fmt
  in
  (* GLC008: expected table vs declared inputs vs document inputs *)
  if Truth_table.arity c.Circuit.expected <> Array.length c.Circuit.inputs then
    add "GLC008" D.Error
      "circuit %S declares %d input(s) but its expected truth table has \
       arity %d"
      c.Circuit.name
      (Array.length c.Circuit.inputs)
      (Truth_table.arity c.Circuit.expected);
  let doc_inputs = List.sort String.compare (Document.input_proteins c.Circuit.document) in
  let decl_inputs =
    List.sort String.compare (Array.to_list c.Circuit.inputs)
  in
  if doc_inputs <> decl_inputs then
    add "GLC008" D.Error
      "circuit %S declares inputs {%s} but the document's input proteins \
       are {%s}"
      c.Circuit.name
      (String.concat ", " decl_inputs)
      (String.concat ", " doc_inputs);
  (* GLC009: constant intended logic *)
  (match Truth_table.is_constant c.Circuit.expected with
  | Some b ->
      add "GLC009" D.Warning
        "circuit %S has a constant expected logic (always %b) — \
         verification is trivial"
        c.Circuit.name b
  | None -> ());
  let m = Circuit.model c in
  let sub =
    model ~threshold:protocol.Protocol.threshold ~output:c.Circuit.output
      ~metrics m
    @ document ~metrics c.Circuit.document
    @ cross ~metrics ~model:m c.Circuit.document
    @ protocol_checks ~metrics ~arity protocol
  in
  List.stable_sort D.compare
    (record metrics ~checks:n_circuit_checks (List.rev !ds) @ sub)

(* ------------------------------------------------------------------ *)
(* File-level linting                                                  *)

type file_report = { fr_path : string; fr_diagnostics : D.t list }

let read_text path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let parse_error path msg =
  D.make ~code:"GLC001" ~severity:D.Error ~subject:(D.File path)
    (Printf.sprintf "cannot read %s: %s" path msg)

(* basename grouping: NAME.sbml.xml and NAME.sbol.xml are one lint
   group and get the cross checks *)
let group_key path =
  if Filename.check_suffix path ".sbml.xml" then
    Some (Filename.chop_suffix path ".sbml.xml")
  else if Filename.check_suffix path ".sbol.xml" then
    Some (Filename.chop_suffix path ".sbol.xml")
  else None

let files ?threshold ?(metrics = Metrics.noop) paths =
  let groups = Hashtbl.create 16 in
  let order = ref [] in
  let note key path kind =
    let sbml, sbol =
      match Hashtbl.find_opt groups key with
      | Some pair -> pair
      | None ->
          order := key :: !order;
          (None, None)
    in
    let pair =
      match kind with
      | `Sbml -> (Some path, sbol)
      | `Sbol -> (sbml, Some path)
    in
    Hashtbl.replace groups key pair
  in
  List.iter
    (fun path ->
      match group_key path with
      | Some key ->
          note key path
            (if Filename.check_suffix path ".sbml.xml" then `Sbml else `Sbol)
      | None -> (
          (* sniff: SBML first, then SBOL *)
          match Glc_model.Sbml.of_string (try read_text path with Sys_error e -> e) with
          | Ok _ -> note path path `Sbml
          | Error _ -> note path path `Sbol))
    paths;
  if Metrics.enabled metrics then
    Metrics.Counter.add (Metrics.counter metrics "lint.files") (List.length paths);
  List.rev_map
    (fun key ->
      let sbml_path, sbol_path = Hashtbl.find groups key in
      let parse reader path =
        match path with
        | None -> (None, [])
        | Some path -> (
            match
              (try reader path with Sys_error e -> Error e)
            with
            | Ok v -> (Some v, [])
            | Error e -> (None, [ parse_error path e ]))
      in
      let m, sbml_errs = parse Glc_model.Sbml.read_file sbml_path in
      let doc, sbol_errs = parse Glc_sbol.Sbol_xml.read_file sbol_path in
      let output =
        match doc with
        | Some d -> (
            match Document.output_proteins d with [ o ] -> Some o | _ -> None)
        | None -> None
      in
      let checks =
        match (m, doc) with
        | Some m, Some d ->
            model ?threshold ?output ~metrics m
            @ document ~metrics d
            @ cross ~metrics ~model:m d
        | Some m, None -> model ?threshold ?output ~metrics m
        | None, Some d -> document ~metrics d
        | None, None -> []
      in
      {
        fr_path = key;
        fr_diagnostics =
          List.stable_sort D.compare (sbml_errs @ sbol_errs @ checks);
      })
    !order

let all_diagnostics frs = List.concat_map (fun fr -> fr.fr_diagnostics) frs
let report_exit_code frs = D.exit_code (all_diagnostics frs)

let report_json frs =
  let file_json fr =
    Printf.sprintf
      "{\"file\":%s,\"errors\":%d,\"warnings\":%d,\"diagnostics\":%s}"
      (D.json_string fr.fr_path)
      (D.errors fr.fr_diagnostics)
      (D.warnings fr.fr_diagnostics)
      (D.list_to_json fr.fr_diagnostics)
  in
  let all = all_diagnostics frs in
  Printf.sprintf
    "{\"files\":[%s],\"summary\":{\"files\":%d,\"errors\":%d,\"warnings\":%d,\"exit\":%d}}"
    (String.concat "," (List.map file_json frs))
    (List.length frs) (D.errors all) (D.warnings all) (D.exit_code all)
