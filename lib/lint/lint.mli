(** Static analysis of genetic circuit models — the pre-flight pass.

    Every check here decides, {e without simulating}, something a
    verification run would otherwise spend thousands of SSA steps
    discovering: an output no reaction can ever produce, a reaction
    whose propensity is identically zero, a conservation law that pins
    the output below the logic threshold, a protocol too short to apply
    every input combination. Each finding is a {!Diagnostic.t} with a
    stable [GLC]-prefixed code; the full catalogue is {!catalogue}.

    Entry points mirror the artefacts of the toolchain: a kinetic
    {!model}, an SBOL {!document}, a {!cross}-document pair, a gate
    {!netlist}, a D-VASim {!protocol} and a complete {!circuit} (which
    composes all of the above). {!files} groups [.sbml.xml]/[.sbol.xml]
    paths by basename and lints each group, pairing sibling documents
    for the cross checks — this is what [glcv lint] runs.

    Results are sorted with {!Diagnostic.compare} (errors first), and a
    live metrics registry records [lint.*] counters (checks run,
    diagnostics, errors, warnings).

    {2 Check catalogue}

    - [GLC001] (error) — ill-formed model or document: structural
      validation failures ({!Glc_model.Model.validate_issues},
      {!Glc_sbol.Document.validate}), and unreadable/unparseable input
      files.
    - [GLC002] (error/warning) — unproducible species: a non-boundary
      species with initial amount 0 that no fireable reaction produces
      can never become positive. An error when it is the circuit
      output (verification is then guaranteed to fail), a warning
      otherwise.
    - [GLC003] (warning) — unreachable reaction: a reaction that can
      never fire, because a reactant is provably stuck at zero or its
      propensity is identically zero (e.g. a zero rate constant).
    - [GLC004] (warning) — inert reaction: every reactant and product
      is a boundary species, so firings change nothing while still
      consuming SSA steps ({!Glc_ssa.Compiled.inert_reactions}).
    - [GLC005] (error) — output bounded below threshold: a conservation
      law (a constant species, or a conserved pairwise sum) bounds the
      output's copy number below the logic threshold — it can never
      digitise high.
    - [GLC006] (warning) — kinetic-law sanity: a propensity that is
      negative or not finite at the initial state.
    - [GLC007] (info) — unused parameter: declared but referenced by no
      kinetic law.
    - [GLC008] (error) — arity mismatch: the expected truth table's
      arity differs from the circuit's input count, the document's
      input proteins differ from the declared inputs, or a netlist does
      not compute its intended table.
    - [GLC009] (warning) — constant expected logic: the intended truth
      table is constant, so verification is trivial.
    - [GLC010] (error/info) — SBML/SBOL cross-document mismatch: a
      protein with no species, an input protein that is not a boundary
      species, a production interaction with no producing reaction
      (errors); differing document/model ids (info).
    - [GLC011] (error) — protocol sanity: hold slots shorter than the
      sampling step, a horizon too short to apply every input
      combination, or input drive levels inconsistent with the
      threshold. *)

type check = {
  ck_code : string;  (** e.g. ["GLC005"] *)
  ck_severity : Diagnostic.severity;  (** worst severity it can emit *)
  ck_title : string;  (** short name, e.g. ["unproducible species"] *)
  ck_doc : string;  (** one-sentence description *)
}

val catalogue : check list
(** All implemented checks, in code order. *)

val model :
  ?threshold:float ->
  ?output:string ->
  ?metrics:Glc_obs.Metrics.t ->
  Glc_model.Model.t ->
  Diagnostic.t list
(** Checks GLC001–GLC007 on a kinetic model. [threshold] (default: the
    paper's 15 molecules) parameterises GLC005; [output] designates the
    species whose digitisation the verification will judge — without
    it, GLC002 cannot escalate to an error and GLC005 is skipped.
    When GLC001 fires, only those diagnostics are returned: the
    remaining analyses need a well-formed model to compile. *)

val document :
  ?metrics:Glc_obs.Metrics.t -> Glc_sbol.Document.t -> Diagnostic.t list
(** GLC001 on a structural document ({!Glc_sbol.Document.validate}). *)

val cross :
  ?metrics:Glc_obs.Metrics.t ->
  model:Glc_model.Model.t ->
  Glc_sbol.Document.t ->
  Diagnostic.t list
(** GLC010: consistency of a structural document with the kinetic model
    generated from (or shipped alongside) it. *)

val protocol :
  ?metrics:Glc_obs.Metrics.t ->
  arity:int ->
  Glc_dvasim.Protocol.t ->
  Diagnostic.t list
(** GLC011 for an [arity]-input circuit. *)

val netlist :
  ?metrics:Glc_obs.Metrics.t ->
  expected:Glc_logic.Truth_table.t ->
  Glc_logic.Netlist.t ->
  Diagnostic.t list
(** GLC008 on a gate netlist: input-count/arity mismatch, and a
    tabulation that differs from the intended table. *)

val circuit :
  ?protocol:Glc_dvasim.Protocol.t ->
  ?metrics:Glc_obs.Metrics.t ->
  Glc_gates.Circuit.t ->
  Diagnostic.t list
(** The full pre-flight pass for a verification run: {!model} on the
    circuit's kinetic model (with its reporter as [output] and the
    protocol's threshold), {!cross} against its document, {!protocol}
    at the circuit's arity, plus the circuit-level arity (GLC008) and
    constant-logic (GLC009) checks. This is the guard [glcv
    verify]/[ensemble]/[campaign run] execute unless [--no-lint] is
    given. *)

type file_report = {
  fr_path : string;
      (** the lint group: a file path, or the common prefix of a
          paired [NAME.sbml.xml]/[NAME.sbol.xml] sibling set *)
  fr_diagnostics : Diagnostic.t list;
}

val files :
  ?threshold:float ->
  ?metrics:Glc_obs.Metrics.t ->
  string list ->
  file_report list
(** Lints model files, in first-seen group order. Paths ending in
    [.sbml.xml]/[.sbol.xml] are grouped by the remaining prefix; when a
    group has both documents they are cross-checked (GLC010) and the
    document's unique reporter protein, if any, becomes the [output]
    for GLC002/GLC005. Other paths are sniffed (SBML first, then
    SBOL). Unreadable or unparseable files yield a GLC001 error
    diagnostic rather than an exception. *)

val report_exit_code : file_report list -> int
(** {!Diagnostic.exit_code} over all groups: 0 clean, 1 warnings,
    2 errors. *)

val report_json : file_report list -> string
(** Machine-readable report:
    [{"files":[{"file":..,"errors":..,"warnings":..,"diagnostics":
    [..]},..],"summary":{"files":..,"errors":..,"warnings":..,
    "exit":..}}]. Deterministic for a given input list; parses with
    the project's own JSON reader, [Glc_core.Report.Json] (tested). *)
