(** Lint diagnostics: stable check codes, severities and source
    locations.

    Every problem the static analyses of {!Lint} find is reported as one
    diagnostic: a stable code such as [GLC005] (scripts and CI key on
    it), a severity, a subject naming the offending entity (a species, a
    reaction, a gate net, a protocol field, …) and a human-readable
    message that repeats the subject's id, so the text stands alone.

    Diagnostics are plain data — rendering (text via {!pp}, JSON via
    {!to_json}) is separate from detection, and the aggregate
    {!exit_code} implements the CLI contract: 0 clean (infos allowed),
    1 warnings, 2 errors. *)

type severity =
  | Error  (** the model/circuit/protocol cannot verify as given *)
  | Warning  (** suspicious; verification may still succeed *)
  | Info  (** cosmetic or informational *)

type subject =
  | Model of string  (** a kinetic model, by id *)
  | Species of string
  | Reaction of string
  | Parameter of string
  | Protein of string  (** an SBOL protein, by id *)
  | Promoter of string  (** an SBOL promoter part, by id *)
  | Net of string  (** a gate-netlist net *)
  | Circuit of string  (** a whole circuit, by name *)
  | Protocol of string  (** a protocol field, by name *)
  | Document of string  (** an SBOL document, by id *)
  | File of string  (** an input file, by path *)

type t = {
  code : string;  (** stable check code, e.g. ["GLC002"] *)
  severity : severity;
  subject : subject;
  message : string;
}

val make : code:string -> severity:severity -> subject:subject -> string -> t

val severity_label : severity -> string
(** ["error"], ["warning"] or ["info"]. *)

val subject_kind : subject -> string
(** The subject constructor in lowercase, e.g. ["species"]. *)

val subject_id : subject -> string

val compare : t -> t -> int
(** Orders by severity (errors first), then code, then subject, then
    message — the deterministic presentation order. *)

val errors : t list -> int
val warnings : t list -> int

val exit_code : t list -> int
(** [2] if any error, [1] if any warning (and no error), [0]
    otherwise — the documented [glcv lint] exit contract. *)

val pp : Format.formatter -> t -> unit
(** One line: [error GLC002 \[species GFP\]: message]. *)

val json_string : string -> string
(** A quoted, escaped JSON string literal — the same conventions as the
    rest of the toolchain's exports, shared so {!Lint.report_json}
    composes with {!to_json}. *)

val to_json : t -> string
(** One diagnostic as a JSON object with fields [code], [severity],
    [subject] ([{"kind": ..., "id": ...}]) and [message]. Deterministic:
    fields in that order, strings escaped. *)

val list_to_json : t list -> string
(** A JSON array of {!to_json} objects, in the given order. *)
