(** Deterministic multicore ensemble simulation with aggregate
    verification.

    A single Gillespie trajectory is one sample of a stochastic process;
    the logic a circuit computes is a statistical property of the
    ensemble. [run] simulates [replicates] independent SSA trajectories
    of one experiment across a {!Pool} of domains — each replicate on
    its own counter-derived {!Seeds} stream — analyses every trajectory
    with Algorithm 1 ({!Glc_core.Analyzer}) and verifies it against the
    intent ({!Glc_core.Verify}), then aggregates:

    {ul
    {- mean / stddev / 95% CI of the PFoBE fitness across replicates;}
    {- a majority-vote {e consensus truth table} with a per-combination
       agreement fraction, and the flaky combinations where replicates
       disagree;}
    {- per-combination FOV_EST statistics (eq. 1 of the paper) across
       the ensemble;}
    {- the failed replicates, captured individually — one crashed
       trajectory degrades the ensemble instead of killing the run.}}

    Results are bit-identical for any worker count: seeds are derived up
    front, replicates are fully independent, and aggregation runs in a
    fixed order. *)

module Circuit := Glc_gates.Circuit
module Protocol := Glc_dvasim.Protocol
module Truth_table := Glc_logic.Truth_table
module Analyzer := Glc_core.Analyzer
module Verify := Glc_core.Verify

type config = {
  replicates : int;  (** number of independent trajectories *)
  jobs : int;  (** worker domains; 0 = {!Pool.default_jobs} *)
  seed : int;  (** root seed of the counter-based derivation *)
  protocol : Protocol.t;  (** per-replicate experimental protocol
                              (its [seed] field is ignored) *)
  fov_ud : float;  (** FOV_UD of the analysis, eq. (1) *)
}

val config :
  ?replicates:int -> ?jobs:int -> ?seed:int -> ?protocol:Protocol.t ->
  ?fov_ud:float -> unit -> config
(** Defaults: 16 replicates, [jobs = 0] (hardware-sized), seed 42,
    {!Protocol.default}, the paper's [fov_ud = 0.25].
    @raise Invalid_argument if [replicates < 1] or [jobs < 0]. *)

type replicate = {
  rep_index : int;
  rep_result : Analyzer.result;
  rep_verify : Verify.report;
}

type failure = {
  fail_index : int;
  fail_error : string;
}

type case_summary = {
  cs_row : int;  (** input combination *)
  cs_minterm_votes : int;  (** replicates that kept the row as a minterm *)
  cs_consensus : bool;  (** majority vote: minterm of the consensus?
                            Strict majority — ties vote low, like the
                            analyzer's eq. (2). *)
  cs_agreement : float;  (** fraction of replicates agreeing with the
                             consensus on this row; 1.0 when unanimous *)
  cs_flaky : bool;  (** some replicates disagree on this row *)
  cs_fov : Stats.summary;  (** FOV_EST across replicates, eq. (1) *)
}

type t = {
  name : string;  (** circuit name *)
  arity : int;
  seed : int;  (** root seed *)
  requested : int;  (** replicates requested *)
  expected : Truth_table.t;  (** the designer's intent *)
  replicates : replicate array;  (** completed replicates, index order *)
  failures : failure array;  (** failed replicates, index order *)
  fitness : Stats.summary;  (** PFoBE across completed replicates *)
  verified_count : int;  (** replicates individually verified *)
  consensus : Truth_table.t;  (** majority-vote extracted logic *)
  consensus_verified : bool;  (** consensus equals the intent *)
  cases : case_summary array;  (** indexed by combination *)
  flaky : int list;  (** combinations with disagreement, ascending *)
}

val aggregate :
  name:string -> seed:int -> requested:int -> expected:Truth_table.t ->
  replicates:replicate list -> failures:failure list -> t
(** Pure aggregation over per-replicate outcomes — what [run] applies to
    the pool's results, exposed so degraded ensembles can be built (and
    tested) without a simulator. Replicates and failures are re-sorted
    by index.
    @raise Invalid_argument if a replicate's arity disagrees with
    [expected]. *)

exception Interrupted
(** Raised {e inside} a replicate task when [should_stop] turns true —
    never escapes {!run}; it surfaces as that replicate's [failure]
    with the error text ["interrupted"]. *)

val lane_width : int
(** Replicates per batched lane-block (8). On the
    {!Glc_ssa.Compiled.Ir_batch} path, {!run} hands each worker a block
    of this many consecutive replicates to advance in lockstep
    ({!Glc_ssa.Sim.run_batch_rngs}); lanes still retire independently,
    and the last block of an ensemble may be narrower. A constant —
    never derived from the worker count — so the deterministic
    [ssa.ir.batch_*] counters stay a pure function of
    (circuit, config). *)

val run :
  ?pool:Pool.t -> ?progress:Progress.t -> ?cache:Cache.t ->
  ?metrics:Glc_obs.Metrics.t -> ?should_stop:(unit -> bool) ->
  config -> Circuit.t -> t
(** Runs the ensemble. [should_stop] (default: never) is polled as each
    replicate starts: once it returns [true], not-yet-started
    trajectories are skipped and recorded as ["interrupted"] failures
    while the in-flight ones finish — the graceful SIGINT/SIGTERM path
    of [glcv ensemble], which still aggregates and reports what
    completed. The model is compiled once (through [cache] when
    given, keyed by {!Cache.model_key} — circuit name plus a content
    fingerprint, so same-name kinetic variants never collide) and
    shared read-only by all workers. When [pool] is given its size
    overrides [config.jobs] and
    the pool survives the call; otherwise a pool of [config.jobs]
    domains is created and shut down.

    When the model compiles on the {!Glc_ssa.Compiled.Ir_batch} path
    (e.g. [glcv --eval ir-batch]), workers advance {!lane_width}-sized
    blocks of replicates in lockstep over structure-of-arrays register
    files instead of one trajectory at a time. Replicate seeds, traces,
    analysis results and the aggregate are byte-identical to the scalar
    path for a fixed seed; only throughput (and the [ssa.ir.batch_*]
    counters) differ.

    A live [metrics] registry (default {!Glc_obs.Metrics.noop}) receives
    the counters [engine.ensembles], [engine.replicates_ok],
    [engine.replicates_failed] and [engine.seeds_derived], the per-run
    SSA counters (see {!Glc_ssa.Sim.run}) and the wall-time histogram
    [engine.ensemble_seconds]; it is also handed to the pool this call
    creates (when [pool] is absent — a caller-supplied pool keeps the
    registry it was created with). Counters are a pure function of
    (circuit, config), never of the worker count or the clock, so the
    deterministic section of the export stays byte-identical across
    runs. *)

val pp : Format.formatter -> t -> unit
(** Human-readable report in the style of {!Glc_core.Report}. *)

val to_json : t -> string
(** Machine-readable report. Deterministic: equal ensembles render to
    identical bytes, whatever worker count produced them. Contains no
    wall-clock or worker-count fields for exactly that reason. *)
