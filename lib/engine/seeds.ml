module Rng = Glc_ssa.Rng
module Metrics = Glc_obs.Metrics

let derive ?(metrics = Metrics.noop) ~seed n =
  if n < 0 then invalid_arg "Seeds.derive: negative count";
  Metrics.Counter.add (Metrics.counter metrics "engine.seeds_derived") n;
  let root = Rng.create seed in
  (* explicit loop: Array.init's evaluation order is unspecified, and the
     i-th stream must be the i-th split of the root *)
  let streams = Array.make n root in
  for i = 0 to n - 1 do
    streams.(i) <- Rng.split root
  done;
  streams

let replicate ~seed i =
  if i < 0 then invalid_arg "Seeds.replicate: negative index";
  (derive ~seed (i + 1)).(i)
