type summary = {
  n : int;
  mean : float;
  sd : float;
  ci95 : float;
  min : float;
  max : float;
}

let of_array xs =
  let n = Array.length xs in
  if n = 0 then { n = 0; mean = 0.; sd = 0.; ci95 = 0.; min = 0.; max = 0. }
  else begin
    let sum = Array.fold_left ( +. ) 0. xs in
    let mean = sum /. float_of_int n in
    let sd =
      if n < 2 then 0.
      else
        let ss =
          Array.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.)) 0. xs
        in
        Float.sqrt (ss /. float_of_int (n - 1))
    in
    let ci95 =
      if n < 2 then 0. else 1.96 *. sd /. Float.sqrt (float_of_int n)
    in
    {
      n;
      mean;
      sd;
      ci95;
      min = Array.fold_left Float.min xs.(0) xs;
      max = Array.fold_left Float.max xs.(0) xs;
    }
  end

let of_list xs = of_array (Array.of_list xs)

(* The option forms make "no dispersion estimate exists" explicit:
   sample variance divides by n-1, so with zero or one sample there is
   nothing to report and the [summary] sentinels (sd = 0) must not be
   mistaken for a measured zero spread. Degraded ensembles — every
   replicate but one failed — hit exactly this. *)
let variance xs =
  let n = Array.length xs in
  if n < 2 then None
  else begin
    let mean = Array.fold_left ( +. ) 0. xs /. float_of_int n in
    let ss = Array.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.)) 0. xs in
    Some (ss /. float_of_int (n - 1))
  end

let sd xs = Option.map Float.sqrt (variance xs)

let fraction ~count ~total =
  if total = 0 then 0. else float_of_int count /. float_of_int total

let pp ppf s =
  if s.n = 0 then Format.pp_print_string ppf "n/a (no samples)"
  else
    Format.fprintf ppf "%.2f ± %.2f (95%% CI ±%.2f, range %.2f..%.2f, n=%d)"
      s.mean s.sd s.ci95 s.min s.max s.n
