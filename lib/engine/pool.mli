(** A fixed-size pool of worker domains fed from a shared work queue.

    Workers are spawned once at {!create} and blocked on a
    [Mutex]/[Condition] queue between jobs, so repeated {!map} calls
    reuse the same domains. Tasks must be independent: results land in a
    caller-indexed slot, which makes the output order (and therefore any
    aggregation over it) independent of the worker count and of
    scheduling. A task that raises is captured as an {!error} in its own
    slot instead of killing the pool or the run.

    Do not call {!map} from inside a pool task of the same pool — the
    caller blocks until all its tasks finish, so nested submission can
    deadlock once every worker is blocked waiting. *)

type t

type error = {
  task : int;  (** index of the failed task *)
  message : string;  (** [Printexc.to_string] of the exception *)
  backtrace : string;  (** may be empty when backtraces are off *)
}

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the hardware-sized default. *)

val create : ?jobs:int -> ?metrics:Glc_obs.Metrics.t -> unit -> t
(** Spawns [jobs] worker domains (default {!default_jobs}).

    A live [metrics] registry (default {!Glc_obs.Metrics.noop}) receives
    the counter [pool.tasks] (tasks submitted — deterministic) and the
    wall-time histograms [pool.worker_busy_seconds] (per task),
    [pool.worker_idle_seconds] (per dequeue, time the worker spent
    blocked on the queue) and [pool.queue_wait_seconds] (per task, from
    enqueue to dequeue). Instruments are resolved once here; workers
    never touch the registry, and no clock is read when the registry is
    the no-op one.
    @raise Invalid_argument if [jobs < 1]. *)

val jobs : t -> int
(** Number of worker domains. *)

val map : t -> (int -> 'a -> 'b) -> 'a array -> ('b, error) result array
(** [map pool f arr] computes [f i arr.(i)] for every [i] on the pool
    and waits for all of them. Slot [i] of the result is [Ok] of the
    value or [Error] capturing the exception the task raised.
    @raise Invalid_argument if the pool has been shut down. *)

val map_blocks :
  t -> width:int -> (int -> 'a array -> 'b) -> 'a array ->
  ('b, error) result array
(** [map_blocks pool ~width f arr] cuts [arr] into blocks of [width]
    consecutive elements (the last may be shorter) and computes
    [f start block] for each on the pool, where [start] is the block's
    offset into [arr]. One result slot per block, in block order; a
    block task that raises is captured as an {!error} whose [task]
    field is the block's {e start index} in [arr], not the block
    number. The batched ensemble path uses this to hand each worker a
    lane-block of replicates.
    @raise Invalid_argument if [width < 1] or the pool is shut down. *)

val shutdown : t -> unit
(** Drains nothing, joins all workers. Idempotent. Pending {!map} calls
    from other threads must have completed first. *)

val with_pool : ?jobs:int -> ?metrics:Glc_obs.Metrics.t -> (t -> 'a) -> 'a
(** [create], run, [shutdown] — shutdown happens on exceptions too. *)
