module Model = Glc_model.Model
module Math = Glc_model.Math
module Compiled = Glc_ssa.Compiled

(* FNV-1a, 64 bit. Deterministic across runs and architectures, unlike
   [Hashtbl.hash], which is depth-limited and would fold deep kinetic
   laws of different constants onto the same digest. *)
let fnv64 s =
  let prime = 0x100000001b3L in
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) prime)
    s;
  !h

let fingerprint (m : Model.t) =
  let buf = Buffer.create 1024 in
  let add = Buffer.add_string buf in
  (* %h is exact (hex float): two models differing in any constant — a
     perturbed promoter strength, a different input-high level — differ
     here even when a rounded decimal rendering would not. *)
  let addf x = add (Printf.sprintf "%h;" x) in
  let rec add_math = function
    | Math.Const c -> add "C"; addf c
    | Math.Ident id -> add "I"; add id; add ";"
    | Math.Neg a -> add "N("; add_math a; add ")"
    | Math.Add (a, b) -> add "+("; add_math a; add_math b; add ")"
    | Math.Sub (a, b) -> add "-("; add_math a; add_math b; add ")"
    | Math.Mul (a, b) -> add "*("; add_math a; add_math b; add ")"
    | Math.Div (a, b) -> add "/("; add_math a; add_math b; add ")"
    | Math.Pow (a, b) -> add "^("; add_math a; add_math b; add ")"
    | Math.Min (a, b) -> add "m("; add_math a; add_math b; add ")"
    | Math.Max (a, b) -> add "M("; add_math a; add_math b; add ")"
    | Math.Exp a -> add "e("; add_math a; add ")"
    | Math.Ln a -> add "l("; add_math a; add ")"
  in
  add m.Model.m_id;
  add "|";
  List.iter
    (fun (s : Model.species) ->
      add "s:"; add s.Model.s_id; add ";"; addf s.Model.s_initial;
      add (if s.Model.s_boundary then "b;" else ";"))
    m.Model.m_species;
  List.iter
    (fun (p : Model.parameter) ->
      add "p:"; add p.Model.p_id; add ";"; addf p.Model.p_value)
    m.Model.m_parameters;
  List.iter
    (fun (r : Model.reaction) ->
      add "r:"; add r.Model.r_id; add ";";
      List.iter
        (fun (id, k) -> add id; add (Printf.sprintf "<%d;" k))
        r.Model.r_reactants;
      List.iter
        (fun (id, k) -> add id; add (Printf.sprintf ">%d;" k))
        r.Model.r_products;
      List.iter (fun id -> add "~"; add id; add ";") r.Model.r_modifiers;
      add_math r.Model.r_rate)
    m.Model.m_reactions;
  Printf.sprintf "%016Lx" (fnv64 (Buffer.contents buf))

let model_key ~name m = name ^ "#" ^ fingerprint m

module Metrics = Glc_obs.Metrics

type t = {
  mutex : Mutex.t;
  table : (string, Compiled.t) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
  metrics : Metrics.t; (* forwarded to Compiled.compile for ssa.ir.* *)
  obs_hits : Metrics.Counter.t;
  obs_misses : Metrics.Counter.t;
}

let create ?(metrics = Metrics.noop) () =
  {
    mutex = Mutex.create ();
    table = Hashtbl.create 16;
    hits = 0;
    misses = 0;
    metrics;
    obs_hits = Metrics.counter metrics "engine.cache_hits";
    obs_misses = Metrics.counter metrics "engine.cache_misses";
  }

let compiled t ~key build =
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
      match Hashtbl.find_opt t.table key with
      | Some c ->
          t.hits <- t.hits + 1;
          Metrics.Counter.incr t.obs_hits;
          c
      | None ->
          t.misses <- t.misses + 1;
          Metrics.Counter.incr t.obs_misses;
          let c = Compiled.compile ~metrics:t.metrics (build ()) in
          Hashtbl.add t.table key c;
          c)

let hits t = t.hits
let misses t = t.misses

let clear t =
  Mutex.lock t.mutex;
  Hashtbl.reset t.table;
  t.hits <- 0;
  t.misses <- 0;
  Mutex.unlock t.mutex
