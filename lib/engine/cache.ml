module Compiled = Glc_ssa.Compiled

type t = {
  mutex : Mutex.t;
  table : (string, Compiled.t) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
}

let create () =
  { mutex = Mutex.create (); table = Hashtbl.create 16; hits = 0;
    misses = 0 }

let compiled t ~key build =
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
      match Hashtbl.find_opt t.table key with
      | Some c ->
          t.hits <- t.hits + 1;
          c
      | None ->
          t.misses <- t.misses + 1;
          let c = Compiled.compile (build ()) in
          Hashtbl.add t.table key c;
          c)

let hits t = t.hits
let misses t = t.misses

let clear t =
  Mutex.lock t.mutex;
  Hashtbl.reset t.table;
  t.hits <- 0;
  t.misses <- 0;
  Mutex.unlock t.mutex
