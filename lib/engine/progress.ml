type event = Replicate_ok of int | Replicate_failed of int * string

type t = { mutex : Mutex.t; deliver : event -> unit }

let null = { mutex = Mutex.create (); deliver = ignore }

let callback f = { mutex = Mutex.create (); deliver = f }

let counter ?(oc = stderr) ~total () =
  let seen = ref 0 and failed = ref 0 in
  let deliver ev =
    (match ev with
    | Replicate_ok _ -> ()
    | Replicate_failed _ -> incr failed);
    incr seen;
    Printf.fprintf oc "\r%d/%d replicates%s%!" !seen total
      (if !failed > 0 then Printf.sprintf " (%d failed)" !failed else "");
    if !seen >= total then Printf.fprintf oc "\n%!"
  in
  { mutex = Mutex.create (); deliver }

let report t ev =
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () -> t.deliver ev)
