module Metrics = Glc_obs.Metrics
module Clock = Glc_obs.Clock

type error = { task : int; message : string; backtrace : string }

type t = {
  n_jobs : int;
  mutex : Mutex.t;
  nonempty : Condition.t;  (** signalled when work arrives or on stop *)
  queue : (unit -> unit) Queue.t;
  mutable stop : bool;
  mutable workers : unit Domain.t array;
  (* Instrumentation, resolved once at create so workers never touch the
     registry. obs_live mirrors [Metrics.enabled]; when false no clock
     is ever read. *)
  obs_live : bool;
  obs_tasks : Metrics.Counter.t;
  obs_busy : Metrics.Histogram.t;
  obs_idle : Metrics.Histogram.t;
  obs_wait : Metrics.Histogram.t;
}

let default_jobs () = Domain.recommended_domain_count ()

let jobs t = t.n_jobs

(* Worker loop: block on the queue, run jobs until stopped. Jobs never
   raise — map wraps every task in a capturing closure. When metrics are
   live, each dequeue records how long the worker sat idle and each job
   how long it ran. *)
let worker t () =
  let rec loop () =
    let t_idle = if t.obs_live then Clock.now () else 0. in
    Mutex.lock t.mutex;
    while Queue.is_empty t.queue && not t.stop do
      Condition.wait t.nonempty t.mutex
    done;
    if Queue.is_empty t.queue then (* stop, and nothing left to run *)
      Mutex.unlock t.mutex
    else begin
      let job = Queue.pop t.queue in
      Mutex.unlock t.mutex;
      if t.obs_live then begin
        let now = Clock.now () in
        Metrics.Histogram.observe t.obs_idle (now -. t_idle);
        job ();
        Metrics.Histogram.observe t.obs_busy (Clock.now () -. now)
      end
      else job ();
      loop ()
    end
  in
  loop ()

let create ?jobs ?(metrics = Metrics.noop) () =
  let n_jobs =
    match jobs with
    | None -> default_jobs ()
    | Some j when j >= 1 -> j
    | Some _ -> invalid_arg "Pool.create: jobs < 1"
  in
  let t =
    {
      n_jobs;
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      queue = Queue.create ();
      stop = false;
      workers = [||];
      obs_live = Metrics.enabled metrics;
      obs_tasks = Metrics.counter metrics "pool.tasks";
      obs_busy = Metrics.histogram metrics "pool.worker_busy_seconds";
      obs_idle = Metrics.histogram metrics "pool.worker_idle_seconds";
      obs_wait = Metrics.histogram metrics "pool.queue_wait_seconds";
    }
  in
  t.workers <- Array.init n_jobs (fun _ -> Domain.spawn (worker t));
  t

let map t f arr =
  let n = Array.length arr in
  let results = Array.make n None in
  if n > 0 then begin
    let remaining = ref n in
    let all_done = Condition.create () in
    let job i () =
      let r =
        try Ok (f i arr.(i))
        with e ->
          let backtrace = Printexc.get_backtrace () in
          Error { task = i; message = Printexc.to_string e; backtrace }
      in
      Mutex.lock t.mutex;
      results.(i) <- Some r;
      decr remaining;
      if !remaining = 0 then Condition.signal all_done;
      Mutex.unlock t.mutex
    in
    Mutex.lock t.mutex;
    if t.stop then begin
      Mutex.unlock t.mutex;
      invalid_arg "Pool.map: pool is shut down"
    end;
    Metrics.Counter.add t.obs_tasks n;
    if t.obs_live then begin
      (* Stamp each task at enqueue so the dequeueing worker can record
         how long it waited in the queue. *)
      let enqueued = Clock.now () in
      for i = 0 to n - 1 do
        let task = job i in
        Queue.add
          (fun () ->
            Metrics.Histogram.observe t.obs_wait (Clock.now () -. enqueued);
            task ())
          t.queue
      done
    end
    else
      for i = 0 to n - 1 do
        Queue.add (job i) t.queue
      done;
    Condition.broadcast t.nonempty;
    while !remaining > 0 do
      Condition.wait all_done t.mutex
    done;
    Mutex.unlock t.mutex
  end;
  Array.map (function Some r -> r | None -> assert false) results

let map_blocks t ~width f arr =
  if width < 1 then invalid_arg "Pool.map_blocks: width < 1";
  let n = Array.length arr in
  let n_blocks = (n + width - 1) / width in
  let blocks =
    Array.init n_blocks (fun b ->
        let start = b * width in
        (start, Array.sub arr start (min width (n - start))))
  in
  map t (fun _ (start, items) -> f start items) blocks
  |> Array.map (function
       | Ok _ as ok -> ok
       | Error e -> Error { e with task = fst blocks.(e.task) })

let shutdown t =
  Mutex.lock t.mutex;
  if t.stop then Mutex.unlock t.mutex
  else begin
    t.stop <- true;
    Condition.broadcast t.nonempty;
    Mutex.unlock t.mutex;
    Array.iter Domain.join t.workers
  end

let with_pool ?jobs ?metrics f =
  let t = create ?jobs ?metrics () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
