(** Deterministic per-replicate RNG derivation.

    Replicate [i] of an ensemble draws from the [i]-th successive
    {!Glc_ssa.Rng.split} of a root generator built from the root seed —
    a counter-based scheme, so the stream of replicate [i] depends only
    on [(seed, i)]. Derivation happens up front in the coordinating
    domain; workers receive ready-made generators. Consequently results
    are bit-identical for any worker count and any scheduling order. *)

module Rng := Glc_ssa.Rng

val derive : ?metrics:Glc_obs.Metrics.t -> seed:int -> int -> Rng.t array
(** [derive ~seed n] is the generators of replicates [0 .. n-1]. A live
    [metrics] registry counts derivations under [engine.seeds_derived].
    Prefix-stable: [derive ~seed n] agrees with the first [n] entries of
    [derive ~seed m] for any [m >= n].
    @raise Invalid_argument if [n < 0]. *)

val replicate : seed:int -> int -> Rng.t
(** [replicate ~seed i] is the generator of replicate [i] alone, equal
    to [(derive ~seed (i + 1)).(i)]. O(i) — intended for spot checks and
    tests, not hot paths.
    @raise Invalid_argument if [i < 0]. *)
