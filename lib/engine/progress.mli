(** Thread-safe progress reporting for ensemble runs.

    Workers report from their own domains; a sink serializes delivery
    with an internal mutex so callbacks never interleave. *)

type event =
  | Replicate_ok of int  (** replicate index that completed *)
  | Replicate_failed of int * string  (** index and error message *)

type t

val null : t
(** Discards every event. *)

val counter : ?oc:out_channel -> total:int -> unit -> t
(** Live [completed/total] counter (with a failure tally when nonzero),
    rewritten in place on [oc] (default [stderr]) and finished with a
    newline once all [total] events arrived. *)

val callback : (event -> unit) -> t
(** Custom sink; calls are serialized by the sink's mutex. *)

val report : t -> event -> unit
