(** Small-sample summary statistics for ensemble aggregation. *)

type summary = {
  n : int;  (** number of samples *)
  mean : float;  (** 0 when [n = 0] *)
  sd : float;  (** sample standard deviation (n-1); 0 when [n < 2] *)
  ci95 : float;
      (** half-width of the normal-approximation 95% confidence interval
          of the mean, [1.96 * sd / sqrt n]; 0 when [n < 2] *)
  min : float;  (** 0 when [n = 0] *)
  max : float;  (** 0 when [n = 0] *)
}

val of_array : float array -> summary
(** Total on every input: [n = 0] yields the all-zero summary and
    [n = 1] a zero [sd]/[ci95] — documented sentinels, rendered as
    "n/a" by {!pp}. Callers that must distinguish "no dispersion
    estimate exists" from "zero spread" use {!variance}/{!sd}. *)

val of_list : float list -> summary

val variance : float array -> float option
(** Sample variance (n-1 denominator); [None] when fewer than two
    samples exist — with zero or one replicate there is no dispersion
    to estimate, and the [summary] sentinel 0 must not be read as a
    measured zero spread. *)

val sd : float array -> float option
(** Sample standard deviation; [None] as {!variance}. *)

val fraction : count:int -> total:int -> float
(** [count /. total], 0 when [total = 0]. *)

val pp : Format.formatter -> summary -> unit
(** e.g. [97.23 ± 0.45 (95% CI ±0.22, range 96.10..98.01, n=16)]. *)
