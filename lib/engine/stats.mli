(** Small-sample summary statistics for ensemble aggregation. *)

type summary = {
  n : int;  (** number of samples *)
  mean : float;  (** 0 when [n = 0] *)
  sd : float;  (** sample standard deviation (n-1); 0 when [n < 2] *)
  ci95 : float;
      (** half-width of the normal-approximation 95% confidence interval
          of the mean, [1.96 * sd / sqrt n]; 0 when [n < 2] *)
  min : float;  (** 0 when [n = 0] *)
  max : float;  (** 0 when [n = 0] *)
}

val of_array : float array -> summary

val of_list : float list -> summary

val fraction : count:int -> total:int -> float
(** [count /. total], 0 when [total = 0]. *)

val pp : Format.formatter -> summary -> unit
(** e.g. [97.23 ± 0.45 (95% CI ±0.22, range 96.10..98.01, n=16)]. *)
