(** A compiled-model cache.

    {!Glc_ssa.Compiled.compile} resolves names and folds parameters into
    propensity closures — worth doing once per circuit, not once per
    replicate (or once per ensemble in a sweep). Compiled models are
    immutable after construction and safe to share across domains (the
    simulator copies the initial state vector per run), so one cache can
    back a whole multicore ensemble.

    Entries are keyed by a caller-chosen string; the key must uniquely
    identify the kinetic model (the ensemble engine uses the circuit
    name). *)

module Model := Glc_model.Model
module Compiled := Glc_ssa.Compiled

type t

val create : unit -> t

val compiled : t -> key:string -> (unit -> Model.t) -> Compiled.t
(** [compiled c ~key build] returns the cached compilation for [key], or
    builds the model, compiles it, stores it and returns it. [build] is
    only called on a miss. Thread-safe; a miss holds the cache lock
    while compiling, so concurrent callers of the same key compile
    once. *)

val hits : t -> int
val misses : t -> int

val clear : t -> unit
