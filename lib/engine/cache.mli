(** A compiled-model cache.

    {!Glc_ssa.Compiled.compile} resolves names and folds parameters into
    propensity closures — worth doing once per circuit, not once per
    replicate (or once per ensemble in a sweep). Compiled models are
    immutable after construction and safe to share across domains (the
    simulator copies the initial state vector per run), so one cache can
    back a whole multicore ensemble.

    Entries are keyed by a caller-chosen string; the key must uniquely
    identify the kinetic model. A circuit name alone is {e not} enough:
    robustness sweeps and campaign grids run the same circuit under
    perturbed kinetics or different input-high levels, and keying by
    name would hand every variant the first variant's compilation. Use
    {!model_key}, which combines the name with a content
    {!fingerprint} of the model (the ensemble engine does). *)

module Model := Glc_model.Model
module Compiled := Glc_ssa.Compiled

type t

val create : ?metrics:Glc_obs.Metrics.t -> unit -> t
(** A live [metrics] registry (default {!Glc_obs.Metrics.noop}) counts
    lookups under [engine.cache_hits] / [engine.cache_misses] in
    addition to the in-process {!hits}/{!misses} accessors. *)

val fingerprint : Model.t -> string
(** Cheap content digest (FNV-1a 64, rendered as 16 hex digits) over
    species (id, initial amount, boundary flag), parameters and
    reactions including the full kinetic-law AST with exact float
    constants. Equal models always digest equally; models differing in
    any constant digest differently (modulo the 64-bit hash). *)

val model_key : name:string -> Model.t -> string
(** [name ^ "#" ^ fingerprint m] — the cache key the ensemble engine
    uses, collision-safe across same-name kinetic variants. *)

val compiled : t -> key:string -> (unit -> Model.t) -> Compiled.t
(** [compiled c ~key build] returns the cached compilation for [key], or
    builds the model, compiles it, stores it and returns it. [build] is
    only called on a miss. Thread-safe; a miss holds the cache lock
    while compiling, so concurrent callers of the same key compile
    once. *)

val hits : t -> int
val misses : t -> int

val clear : t -> unit
