module Circuit = Glc_gates.Circuit
module Protocol = Glc_dvasim.Protocol
module Experiment = Glc_dvasim.Experiment
module Truth_table = Glc_logic.Truth_table
module Analyzer = Glc_core.Analyzer
module Verify = Glc_core.Verify
module Report = Glc_core.Report
module Sim = Glc_ssa.Sim
module Compiled = Glc_ssa.Compiled

type config = {
  replicates : int;
  jobs : int;
  seed : int;
  protocol : Protocol.t;
  fov_ud : float;
}

let config ?(replicates = 16) ?(jobs = 0) ?(seed = 42)
    ?(protocol = Protocol.default)
    ?(fov_ud = Analyzer.default_params.Analyzer.fov_ud) () =
  if replicates < 1 then invalid_arg "Ensemble.config: replicates < 1";
  if jobs < 0 then invalid_arg "Ensemble.config: jobs < 0";
  { replicates; jobs; seed; protocol; fov_ud }

type replicate = {
  rep_index : int;
  rep_result : Analyzer.result;
  rep_verify : Verify.report;
}

type failure = { fail_index : int; fail_error : string }

type case_summary = {
  cs_row : int;
  cs_minterm_votes : int;
  cs_consensus : bool;
  cs_agreement : float;
  cs_flaky : bool;
  cs_fov : Stats.summary;
}

type t = {
  name : string;
  arity : int;
  seed : int;
  requested : int;
  expected : Truth_table.t;
  replicates : replicate array;
  failures : failure array;
  fitness : Stats.summary;
  verified_count : int;
  consensus : Truth_table.t;
  consensus_verified : bool;
  cases : case_summary array;
  flaky : int list;
}

let aggregate ~name ~seed ~requested ~expected ~replicates ~failures =
  let arity = Truth_table.arity expected in
  List.iter
    (fun rep ->
      if rep.rep_result.Analyzer.arity <> arity then
        invalid_arg "Ensemble.aggregate: replicate arity mismatch")
    replicates;
  let replicates =
    Array.of_list
      (List.sort (fun a b -> compare a.rep_index b.rep_index) replicates)
  in
  let failures =
    Array.of_list
      (List.sort (fun a b -> compare a.fail_index b.fail_index) failures)
  in
  let n = Array.length replicates in
  let fitness =
    Stats.of_array
      (Array.map (fun r -> r.rep_result.Analyzer.fitness) replicates)
  in
  let verified_count =
    Array.fold_left
      (fun acc r -> if r.rep_verify.Verify.verified then acc + 1 else acc)
      0 replicates
  in
  let cases =
    Array.init (1 lsl arity) (fun row ->
        let votes =
          Array.fold_left
            (fun acc r ->
              if Truth_table.output r.rep_verify.Verify.extracted row then
                acc + 1
              else acc)
            0 replicates
        in
        (* strict majority: ties vote low, like the analyzer's eq. (2) *)
        let consensus = 2 * votes > n in
        let agreeing = if consensus then votes else n - votes in
        {
          cs_row = row;
          cs_minterm_votes = votes;
          cs_consensus = consensus;
          cs_agreement = Stats.fraction ~count:agreeing ~total:n;
          cs_flaky = votes > 0 && votes < n;
          cs_fov =
            Stats.of_array
              (Array.map
                 (fun r ->
                   r.rep_result.Analyzer.cases.(row).Analyzer.fov_est)
                 replicates);
        })
  in
  let consensus =
    Truth_table.of_minterms ~arity
      (List.filter_map
         (fun c -> if c.cs_consensus then Some c.cs_row else None)
         (Array.to_list cases))
  in
  {
    name;
    arity;
    seed;
    requested;
    expected;
    replicates;
    failures;
    fitness;
    verified_count;
    consensus;
    consensus_verified = Truth_table.equal consensus expected;
    cases;
    flaky =
      List.filter_map
        (fun c -> if c.cs_flaky then Some c.cs_row else None)
        (Array.to_list cases);
  }

exception Interrupted

let () =
  Printexc.register_printer (function
    | Interrupted -> Some "interrupted"
    | _ -> None)

(* Lanes per batched block. A constant, never derived from the worker
   count: the ssa.ir.batch_* counters are a function of how replicates
   group into blocks, and the deterministic section of the metrics
   export must stay a pure function of (circuit, config) whatever
   machine runs it. Eight lanes keep a block's register rows within an
   L1 line budget while amortising instruction decode well past the
   knee measured in BENCH_ssa.json. *)
let lane_width = 8

let run ?pool ?(progress = Progress.null) ?cache
    ?(metrics = Glc_obs.Metrics.noop) ?(should_stop = fun () -> false)
    (cfg : config) (circuit : Circuit.t) =
  if cfg.replicates < 1 then invalid_arg "Ensemble.run: replicates < 1";
  let module Metrics = Glc_obs.Metrics in
  let live = Metrics.enabled metrics in
  let t_start = if live then Glc_obs.Clock.now () else 0. in
  let obs_ok = Metrics.counter metrics "engine.replicates_ok" in
  let obs_failed = Metrics.counter metrics "engine.replicates_failed" in
  let protocol = cfg.protocol in
  let compiled =
    match cache with
    | Some c ->
        (* key by name + content fingerprint: same-name circuits with
           different kinetics (yield perturbations, campaign grids over
           input-high) must not share a compilation *)
        let model = Circuit.model circuit in
        Cache.compiled c
          ~key:(Cache.model_key ~name:circuit.Circuit.name model)
          (fun () -> model)
    | None -> Compiled.compile (Circuit.model circuit)
  in
  let events = Experiment.input_schedule protocol circuit in
  let sim_cfg =
    Sim.config ~dt:protocol.Protocol.dt ~algorithm:protocol.Protocol.algorithm
      ~t_end:protocol.Protocol.total_time ()
  in
  let params =
    { Analyzer.threshold = protocol.Protocol.threshold; fov_ud = cfg.fov_ud }
  in
  let rngs = Seeds.derive ~metrics ~seed:cfg.seed cfg.replicates in
  let analyze i trace =
    let r =
      Analyzer.run ~params
        {
          Analyzer.trace;
          inputs = circuit.Circuit.inputs;
          output = circuit.Circuit.output;
        }
    in
    let v = Verify.against ~expected:circuit.Circuit.expected r in
    { rep_index = i; rep_result = r; rep_verify = v }
  in
  let task i rng =
    match
      (* polled once per replicate: a signalled run skips the not-yet-
         started trajectories (recorded as "interrupted" failures) and
         aggregates what completed, instead of dying mid-simulation *)
      if should_stop () then raise Interrupted;
      let trace, _stats =
        Sim.run_compiled_rng ~events ~metrics ~rng sim_cfg compiled
      in
      analyze i trace
    with
    | rep ->
        Metrics.Counter.incr obs_ok;
        Progress.report progress (Progress.Replicate_ok i);
        rep
    | exception e ->
        Metrics.Counter.incr obs_failed;
        Progress.report progress
          (Progress.Replicate_failed (i, Printexc.to_string e));
        raise e
  in
  (* One batched block: the whole lane-block of replicates advances in
     lockstep through Sim.run_batch_rngs, then each retired lane is
     analysed and verified on its own. Per-lane RNG streams come from
     the same counter-derived seeds as the scalar path, and batched
     traces are byte-identical to scalar ones for a fixed seed, so the
     aggregate — and the deterministic metrics — cannot tell the two
     schedules apart. *)
  let task_block start block_rngs =
    (* polled once per block: the batched analogue of the per-replicate
       poll; a signalled run fails the whole not-yet-started block *)
    if should_stop () then raise Interrupted;
    let sims =
      Sim.run_batch_rngs ~events ~metrics ~rngs:block_rngs sim_cfg compiled
    in
    Array.mapi
      (fun k outcome ->
        let i = start + k in
        match
          match outcome with
          | Ok (trace, _stats) -> analyze i trace
          | Error e -> raise e
        with
        | rep ->
            Metrics.Counter.incr obs_ok;
            Progress.report progress (Progress.Replicate_ok i);
            Ok rep
        | exception e ->
            Metrics.Counter.incr obs_failed;
            Progress.report progress
              (Progress.Replicate_failed (i, Printexc.to_string e));
            Error { fail_index = i; fail_error = Printexc.to_string e })
      sims
  in
  let in_pool f =
    match pool with
    | Some p -> f p
    | None ->
        let jobs = if cfg.jobs = 0 then Pool.default_jobs () else cfg.jobs in
        Pool.with_pool ~jobs ~metrics f
  in
  let replicates, failures =
    if compiled.Compiled.c_path = Compiled.Ir_batch then
      let outcomes =
        in_pool (fun p -> Pool.map_blocks p ~width:lane_width task_block rngs)
      in
      Array.fold_right
        (fun outcome acc ->
          match outcome with
          | Ok lanes ->
              Array.fold_right
                (fun lane (reps, fails) ->
                  match lane with
                  | Ok rep -> (rep :: reps, fails)
                  | Error f -> (reps, f :: fails))
                lanes acc
          | Error (e : Pool.error) ->
              (* the block died before its lanes could retire (e.g. an
                 interrupt): one failure per lane it carried *)
              let reps, fails = acc in
              let len = min lane_width (cfg.replicates - e.Pool.task) in
              ( reps,
                List.init len (fun k ->
                    {
                      fail_index = e.Pool.task + k;
                      fail_error = e.Pool.message;
                    })
                @ fails ))
        outcomes ([], [])
    else
      let outcomes = in_pool (fun p -> Pool.map p task rngs) in
      Array.fold_right
        (fun outcome (reps, fails) ->
          match outcome with
          | Ok rep -> (rep :: reps, fails)
          | Error (e : Pool.error) ->
              ( reps,
                { fail_index = e.Pool.task; fail_error = e.Pool.message }
                :: fails ))
        outcomes ([], [])
  in
  let t =
    aggregate ~name:circuit.Circuit.name ~seed:cfg.seed
      ~requested:cfg.replicates ~expected:circuit.Circuit.expected
      ~replicates ~failures
  in
  if live then begin
    Metrics.Counter.incr (Metrics.counter metrics "engine.ensembles");
    Metrics.observe_since metrics "engine.ensemble_seconds" t_start
  end;
  t

(* ---- reports ---- *)

let pp ppf t =
  let n = Array.length t.replicates in
  Format.fprintf ppf "@[<v>ensemble %s: %d replicate(s) requested (seed %d), \
                      %d completed, %d failed@,"
    t.name t.requested t.seed n (Array.length t.failures);
  Format.fprintf ppf "PFoBE: %a@," Stats.pp t.fitness;
  Format.fprintf ppf "replicates individually verified: %d/%d@,"
    t.verified_count n;
  Format.fprintf ppf "consensus: %a — %s (intent %a)@,"
    Truth_table.pp_code t.consensus
    (if t.consensus_verified then "VERIFIED against the intent"
     else "DOES NOT match the intent")
    Truth_table.pp_code t.expected;
  Format.fprintf ppf "@,%-*s %9s %7s %6s %18s@," (max t.arity 4) "case"
    "votes" "agree" "flaky" "FOV mean ± sd";
  Array.iter
    (fun c ->
      Format.fprintf ppf "%-*s %5d/%-3d %6.1f%% %6s %10.4f ± %.4f@,"
        (max t.arity 4)
        (Format.asprintf "%a" (Report.pp_combination ~arity:t.arity)
           c.cs_row)
        c.cs_minterm_votes n
        (100. *. c.cs_agreement)
        (if c.cs_flaky then "FLAKY" else "-")
        c.cs_fov.Stats.mean c.cs_fov.Stats.sd)
    t.cases;
  (match t.flaky with
  | [] -> Format.fprintf ppf "@,flaky combinations: none"
  | rows ->
      Format.fprintf ppf
        "@,flaky combinations (replicates disagree): %a"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           (fun ppf -> Report.pp_combination ~arity:t.arity ppf))
        rows);
  Array.iter
    (fun f ->
      Format.fprintf ppf "@,replicate %d FAILED: %s" f.fail_index
        f.fail_error)
    t.failures;
  Format.fprintf ppf "@]"

let to_json t =
  let open Report.Json in
  let buf = Buffer.create 4096 in
  let add = Buffer.add_string buf in
  let field ?(last = false) k v =
    add (string k);
    add ":";
    add v;
    if not last then add ","
  in
  let array_of to_item items =
    "[" ^ String.concat "," (List.map to_item items) ^ "]"
  in
  let summary (s : Stats.summary) =
    Printf.sprintf "{\"n\":%d,\"mean\":%s,\"sd\":%s,\"ci95\":%s,\"min\":%s,\"max\":%s}"
      s.Stats.n (float s.Stats.mean) (float s.Stats.sd) (float s.Stats.ci95)
      (float s.Stats.min) (float s.Stats.max)
  in
  let combination row =
    string
      (Format.asprintf "%a" (Report.pp_combination ~arity:t.arity) row)
  in
  add "{";
  field "circuit" (string t.name);
  field "arity" (string_of_int t.arity);
  field "seed" (string_of_int t.seed);
  field "requested" (string_of_int t.requested);
  field "completed" (string_of_int (Array.length t.replicates));
  field "failed" (string_of_int (Array.length t.failures));
  field "expected_code" (string_of_int (Truth_table.to_code t.expected));
  field "consensus_code" (string_of_int (Truth_table.to_code t.consensus));
  field "consensus_verified" (bool t.consensus_verified);
  field "verified_count" (string_of_int t.verified_count);
  field "fitness" (summary t.fitness);
  field "flaky_rows"
    (array_of string_of_int t.flaky);
  field "cases"
    (array_of
       (fun c ->
         Printf.sprintf
           "{\"row\":%d,\"combination\":%s,\"minterm_votes\":%d,\"consensus\":%s,\"agreement\":%s,\"flaky\":%s,\"fov\":%s}"
           c.cs_row (combination c.cs_row) c.cs_minterm_votes
           (bool c.cs_consensus)
           (float c.cs_agreement)
           (bool c.cs_flaky)
           (summary c.cs_fov))
       (Array.to_list t.cases));
  field "replicates"
    (array_of
       (fun r ->
         Printf.sprintf
           "{\"index\":%d,\"fitness\":%s,\"verified\":%s,\"extracted_code\":%d,\"minterms\":%s}"
           r.rep_index
           (float r.rep_result.Analyzer.fitness)
           (bool r.rep_verify.Verify.verified)
           (Truth_table.to_code r.rep_verify.Verify.extracted)
           (array_of string_of_int r.rep_result.Analyzer.minterms))
       (Array.to_list t.replicates));
  field ~last:true "failures"
    (array_of
       (fun f ->
         Printf.sprintf "{\"index\":%d,\"error\":%s}" f.fail_index
           (string f.fail_error))
       (Array.to_list t.failures));
  add "}";
  Buffer.contents buf
