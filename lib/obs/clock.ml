(* gettimeofday clamped to be nondecreasing process-wide: an NTP step
   backwards must never produce a negative duration. The CAS loop is
   uncontended in practice (timers fire per run / per job, not per
   reaction). *)
let last = Atomic.make 0.

let now () =
  let t = Unix.gettimeofday () in
  let rec clamp () =
    let l = Atomic.get last in
    if t >= l then if Atomic.compare_and_set last l t then t else clamp ()
    else l
  in
  clamp ()
