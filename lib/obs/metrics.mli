(** Metrics registry: counters, gauges, histograms and spans with a
    no-op default sink and deterministic JSON export.

    A registry ({!t}) is either {e live} (created by {!create}) or the
    shared {e no-op} sink {!noop}. Instrumented code is written against
    the same API in both cases; every instrument handed out by {!noop}
    drops writes after a single branch on its liveness flag, so
    instrumentation costs nothing measurable when disabled. All
    instruments are safe to use from multiple domains.

    {2 Determinism contract}

    The export is split into two sections so it can be both diffed and
    trusted:

    - ["deterministic"] — counters and gauges. Instrumented code must
      only record values here that are a pure function of the inputs
      (model, seed, worker count): event counts, cache hits, job
      totals. Two runs with the same configuration produce
      byte-identical ["deterministic"] sections.
    - ["timings"] — histograms and spans. Everything measured with the
      wall clock lives here and is expected to differ run to run.

    Keys in every object are sorted, floats are printed
    shortest-round-trip, so equal registries export equal bytes. *)

type t
(** A metrics registry. *)

val create : unit -> t
(** A fresh live registry. Its span epoch (the zero point for span
    start times) is the moment of creation. *)

val noop : t
(** The shared no-op registry: every instrument it returns discards
    writes, {!span} and {!time} just run their argument, and it exports
    empty sections. This is the default sink everywhere in the
    codebase. *)

val enabled : t -> bool
(** [enabled t] is [false] exactly for {!noop}. Hot paths use it to
    skip clock reads and local bookkeeping entirely. *)

module Counter : sig
  type t
  (** A monotonically increasing integer, updated with a single atomic
      add — the only instrument cheap enough for per-event use. *)

  val incr : t -> unit
  val add : t -> int -> unit

  val value : t -> int
  (** Current value; [0] for a no-op counter. *)
end

module Gauge : sig
  type t
  (** A float that can move both ways (a level, a size, a setting). *)

  val set : t -> float -> unit
  val add : t -> float -> unit

  val value : t -> float
  (** Current value; [0.] for a no-op gauge. *)
end

module Histogram : sig
  type t
  (** Fixed-bucket histogram of float observations (by convention,
      seconds). Buckets are cumulative-free: [counts.(i)] is the number
      of observations [<= bounds.(i)], with one overflow bucket at the
      end. Also tracks count, sum, min and max. *)

  val observe : t -> float -> unit

  val count : t -> int
  (** Number of observations; [0] for a no-op histogram. *)

  val sum : t -> float
  (** Sum of observations; [0.] for a no-op histogram. *)
end

val counter : t -> string -> Counter.t
(** [counter t name] registers (or retrieves) the counter [name].
    Raises [Invalid_argument] if [name] is already registered as a
    different kind of instrument. *)

val gauge : t -> string -> Gauge.t
(** Like {!counter}, for gauges. *)

val histogram : ?buckets:float array -> t -> string -> Histogram.t
(** Like {!counter}, for histograms. [buckets] are the upper bounds of
    the buckets in strictly increasing order; the default is a latency
    ladder from 1 microsecond to 100 seconds. [buckets] is ignored when
    the histogram already exists. Raises [Invalid_argument] on an empty
    or non-increasing [buckets]. *)

val time : t -> string -> (unit -> 'a) -> 'a
(** [time t name f] runs [f ()] and observes its wall-clock duration in
    the histogram [name] (default buckets). On a no-op registry the
    clock is never read. The duration is recorded even if [f] raises. *)

val observe_since : t -> string -> float -> unit
(** [observe_since t name t0] observes [Clock.now () -. t0] in the
    histogram [name] — the open-coded form of {!time} for code that
    cannot be wrapped in a closure. *)

val span : t -> string -> (unit -> 'a) -> 'a
(** [span t name f] runs [f ()] and records a trace event [{name;
    start; duration}] with [start] relative to the registry's epoch.
    The event is recorded even if [f] raises. At most a fixed number of
    spans (4096) are kept; further spans are counted as dropped rather
    than stored, so the buffer cannot grow without bound. *)

val deterministic_json : t -> string
(** The ["deterministic"] section alone — [{"counters":{...},
    "gauges":{...}}] with sorted keys. Byte-identical across runs with
    the same configuration, provided instrumented code honours the
    determinism contract above. *)

val to_json : t -> string
(** Full export: [{"deterministic":{"counters":{...},"gauges":{...}},
    "timings":{"histograms":{...},"spans":{...}}}]. Keys are sorted in
    every object; spans are listed in the order they finished. Each
    histogram carries its bucket upper bounds, per-bucket counts
    (overflow bucket last), count, sum, min and max (min/max are [null]
    when empty). *)

val to_text : t -> string
(** Scrape-friendly text exposition of the registry, in the
    OpenMetrics/Prometheus style — what a live metrics endpoint (the
    [glcv serve] [GET /metrics] route) returns:

    {v
    # TYPE serve_jobs_submitted counter
    serve_jobs_submitted 3
    # TYPE serve_queue_depth gauge
    serve_queue_depth 0
    # TYPE serve_job_seconds histogram
    serve_job_seconds_bucket{le="0.001"} 0
    ...
    serve_job_seconds_bucket{le="+Inf"} 3
    serve_job_seconds_sum 1.91
    serve_job_seconds_count 3
    v}

    Instrument names are mangled to the exposition charset (every
    character outside [[A-Za-z0-9_]] becomes ['_'], so
    [serve.jobs_submitted] scrapes as [serve_jobs_submitted]); names
    are emitted in sorted mangled order, counters first, then gauges,
    then histograms (with cumulative bucket counts). Spans are not
    exported — they are a trace, not a scrapable level. Deterministic:
    equal registries render identical bytes. *)
