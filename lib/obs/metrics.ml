(* Metrics registry with a no-op default sink and deterministic JSON
   export. glc_obs must stay dependency-free (unix only), so the JSON
   writer below mirrors Glc_core.Report.Json rather than reusing it:
   same escaping, same shortest-round-trip float printing, so exports
   from the two layers agree byte-for-byte on equal values. *)

let span_capacity = 4096

let default_buckets =
  [| 1e-6; 1e-5; 1e-4; 1e-3; 1e-2; 1e-1; 1.; 10.; 100. |]

module Counter = struct
  (* The liveness flag lets the no-op registry hand out one shared
     dummy instrument whose writes cost a single predictable branch. *)
  type t = { c_live : bool; c_value : int Atomic.t }

  let make live = { c_live = live; c_value = Atomic.make 0 }
  let dummy = make false
  let incr t = if t.c_live then ignore (Atomic.fetch_and_add t.c_value 1)
  let add t n = if t.c_live then ignore (Atomic.fetch_and_add t.c_value n)
  let value t = Atomic.get t.c_value
end

module Gauge = struct
  type t = { g_live : bool; mutable g_value : float; g_mutex : Mutex.t }

  let make live = { g_live = live; g_value = 0.; g_mutex = Mutex.create () }
  let dummy = make false

  let set t x =
    if t.g_live then begin
      Mutex.lock t.g_mutex;
      t.g_value <- x;
      Mutex.unlock t.g_mutex
    end

  let add t x =
    if t.g_live then begin
      Mutex.lock t.g_mutex;
      t.g_value <- t.g_value +. x;
      Mutex.unlock t.g_mutex
    end

  let value t = t.g_value
end

module Histogram = struct
  type t = {
    h_live : bool;
    h_bounds : float array; (* strictly increasing upper bounds *)
    h_counts : int array; (* length h_bounds + 1; last is overflow *)
    mutable h_count : int;
    mutable h_sum : float;
    mutable h_min : float;
    mutable h_max : float;
    h_mutex : Mutex.t;
  }

  let make live bounds =
    {
      h_live = live;
      h_bounds = bounds;
      h_counts = Array.make (Array.length bounds + 1) 0;
      h_count = 0;
      h_sum = 0.;
      h_min = Float.infinity;
      h_max = Float.neg_infinity;
      h_mutex = Mutex.create ();
    }

  let dummy = make false [| 0. |]

  let bucket_of t x =
    let n = Array.length t.h_bounds in
    let rec go i = if i >= n || x <= t.h_bounds.(i) then i else go (i + 1) in
    go 0

  let observe t x =
    if t.h_live then begin
      Mutex.lock t.h_mutex;
      let b = bucket_of t x in
      t.h_counts.(b) <- t.h_counts.(b) + 1;
      t.h_count <- t.h_count + 1;
      t.h_sum <- t.h_sum +. x;
      if x < t.h_min then t.h_min <- x;
      if x > t.h_max then t.h_max <- x;
      Mutex.unlock t.h_mutex
    end

  let count t = t.h_count
  let sum t = t.h_sum
end

type span = { sp_name : string; sp_start : float; sp_dur : float }

type instrument =
  | I_counter of Counter.t
  | I_gauge of Gauge.t
  | I_histogram of Histogram.t

type t = {
  live : bool;
  mutex : Mutex.t; (* guards registration, spans *)
  instruments : (string, instrument) Hashtbl.t;
  spans : span Queue.t;
  mutable span_drops : int;
  epoch : float;
}

let create () =
  {
    live = true;
    mutex = Mutex.create ();
    instruments = Hashtbl.create 64;
    spans = Queue.create ();
    span_drops = 0;
    epoch = Clock.now ();
  }

let noop =
  {
    live = false;
    mutex = Mutex.create ();
    instruments = Hashtbl.create 1;
    spans = Queue.create ();
    span_drops = 0;
    epoch = 0.;
  }

let enabled t = t.live

let kind = function
  | I_counter _ -> "counter"
  | I_gauge _ -> "gauge"
  | I_histogram _ -> "histogram"

(* Register-or-retrieve under the registry mutex. [make] must be pure
   allocation; it runs inside the critical section. *)
let intern t name make project =
  if not t.live then None
  else begin
    Mutex.lock t.mutex;
    let r =
      match Hashtbl.find_opt t.instruments name with
      | Some i -> (
          match project i with
          | Some x -> Ok x
          | None ->
              Error
                (Printf.sprintf "Metrics: %S is already registered as a %s"
                   name (kind i)))
      | None ->
          let i = make () in
          Hashtbl.add t.instruments name i;
          Ok (Option.get (project i))
    in
    Mutex.unlock t.mutex;
    match r with Ok x -> Some x | Error msg -> invalid_arg msg
  end

let counter t name =
  match
    intern t name
      (fun () -> I_counter (Counter.make true))
      (function I_counter c -> Some c | _ -> None)
  with
  | Some c -> c
  | None -> Counter.dummy

let gauge t name =
  match
    intern t name
      (fun () -> I_gauge (Gauge.make true))
      (function I_gauge g -> Some g | _ -> None)
  with
  | Some g -> g
  | None -> Gauge.dummy

let check_buckets bounds =
  let n = Array.length bounds in
  if n = 0 then invalid_arg "Metrics.histogram: empty buckets";
  for i = 1 to n - 1 do
    if bounds.(i) <= bounds.(i - 1) then
      invalid_arg "Metrics.histogram: bucket bounds must strictly increase"
  done

let histogram ?(buckets = default_buckets) t name =
  check_buckets buckets;
  match
    intern t name
      (fun () -> I_histogram (Histogram.make true (Array.copy buckets)))
      (function I_histogram h -> Some h | _ -> None)
  with
  | Some h -> h
  | None -> Histogram.dummy

let observe_since t name t0 =
  if t.live then Histogram.observe (histogram t name) (Clock.now () -. t0)

let time t name f =
  if not t.live then f ()
  else begin
    let h = histogram t name in
    let t0 = Clock.now () in
    Fun.protect ~finally:(fun () -> Histogram.observe h (Clock.now () -. t0)) f
  end

let record_span t name t0 =
  let dur = Clock.now () -. t0 in
  Mutex.lock t.mutex;
  if Queue.length t.spans >= span_capacity then
    t.span_drops <- t.span_drops + 1
  else
    Queue.add { sp_name = name; sp_start = t0 -. t.epoch; sp_dur = dur } t.spans;
  Mutex.unlock t.mutex

let span t name f =
  if not t.live then f ()
  else begin
    let t0 = Clock.now () in
    Fun.protect ~finally:(fun () -> record_span t name t0) f
  end

(* ------------------------------------------------------------------ *)
(* JSON export                                                         *)

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_string s = "\"" ^ escape s ^ "\""

let json_float x =
  if not (Float.is_finite x) then "null"
  else if Float.is_integer x && Float.abs x < 1e15 then
    Printf.sprintf "%.0f" x
  else begin
    let s15 = Printf.sprintf "%.15g" x in
    if float_of_string s15 = x then s15 else Printf.sprintf "%.17g" x
  end

let json_obj fields =
  "{"
  ^ String.concat "," (List.map (fun (k, v) -> json_string k ^ ":" ^ v) fields)
  ^ "}"

let json_arr items = "[" ^ String.concat "," items ^ "]"

(* Sorted snapshot of instruments of one kind, taken under the mutex so
   export is consistent even with concurrent writers. *)
let sorted_fields t project render =
  Hashtbl.fold
    (fun name i acc ->
      match project i with Some x -> (name, x) :: acc | None -> acc)
    t.instruments []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.map (fun (name, x) -> (name, render x))

let deterministic_fields t =
  Mutex.lock t.mutex;
  let counters =
    sorted_fields t
      (function I_counter c -> Some c | _ -> None)
      (fun c -> string_of_int (Counter.value c))
  in
  let gauges =
    sorted_fields t
      (function I_gauge g -> Some g | _ -> None)
      (fun g -> json_float (Gauge.value g))
  in
  Mutex.unlock t.mutex;
  [ ("counters", json_obj counters); ("gauges", json_obj gauges) ]

let deterministic_json t = json_obj (deterministic_fields t)

let histogram_json (h : Histogram.t) =
  Mutex.lock h.Histogram.h_mutex;
  let fields =
    [
      ( "buckets",
        json_arr (Array.to_list (Array.map json_float h.Histogram.h_bounds)) );
      ( "counts",
        json_arr (Array.to_list (Array.map string_of_int h.Histogram.h_counts))
      );
      ("count", string_of_int h.Histogram.h_count);
      ("max", json_float h.Histogram.h_max);
      ("min", json_float h.Histogram.h_min);
      ("sum", json_float h.Histogram.h_sum);
    ]
  in
  Mutex.unlock h.Histogram.h_mutex;
  json_obj fields

let span_json sp =
  json_obj
    [
      ("dur_s", json_float sp.sp_dur);
      ("name", json_string sp.sp_name);
      ("start_s", json_float sp.sp_start);
    ]

(* ------------------------------------------------------------------ *)
(* Text exposition (Prometheus/OpenMetrics style), for live scraping   *)

let mangle name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
      | _ -> '_')
    name

(* Exposition floats: plain decimal (shortest round trip), with the
   conventional +Inf/-Inf/NaN spellings instead of JSON's null. *)
let text_float x =
  if Float.is_nan x then "NaN"
  else if x = Float.infinity then "+Inf"
  else if x = Float.neg_infinity then "-Inf"
  else json_float x

let to_text t =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let sorted project =
    Mutex.lock t.mutex;
    let xs =
      Hashtbl.fold
        (fun name i acc ->
          match project i with
          | Some x -> (mangle name, x) :: acc
          | None -> acc)
        t.instruments []
    in
    Mutex.unlock t.mutex;
    List.sort (fun (a, _) (b, _) -> compare a b) xs
  in
  List.iter
    (fun (name, c) ->
      add "# TYPE %s counter\n%s %d\n" name name (Counter.value c))
    (sorted (function I_counter c -> Some c | _ -> None));
  List.iter
    (fun (name, g) ->
      add "# TYPE %s gauge\n%s %s\n" name name (text_float (Gauge.value g)))
    (sorted (function I_gauge g -> Some g | _ -> None));
  List.iter
    (fun (name, h) ->
      add "# TYPE %s histogram\n" name;
      Mutex.lock h.Histogram.h_mutex;
      let cumulative = ref 0 in
      Array.iteri
        (fun i bound ->
          cumulative := !cumulative + h.Histogram.h_counts.(i);
          add "%s_bucket{le=\"%s\"} %d\n" name (text_float bound) !cumulative)
        h.Histogram.h_bounds;
      add "%s_bucket{le=\"+Inf\"} %d\n" name h.Histogram.h_count;
      add "%s_sum %s\n" name (text_float h.Histogram.h_sum);
      add "%s_count %d\n" name h.Histogram.h_count;
      Mutex.unlock h.Histogram.h_mutex)
    (sorted (function I_histogram h -> Some h | _ -> None));
  Buffer.contents buf

let to_json t =
  let det = deterministic_fields t in
  Mutex.lock t.mutex;
  let histograms =
    sorted_fields t
      (function I_histogram h -> Some h | _ -> None)
      histogram_json
  in
  let spans = Queue.fold (fun acc sp -> span_json sp :: acc) [] t.spans in
  let drops = t.span_drops in
  Mutex.unlock t.mutex;
  json_obj
    [
      ("deterministic", json_obj det);
      ( "timings",
        json_obj
          [
            ("histograms", json_obj histograms);
            ( "spans",
              json_obj
                [
                  ("dropped", string_of_int drops);
                  ("events", json_arr (List.rev spans));
                ] );
          ] );
    ]
