(** Process-wide nondecreasing time source for the observability layer.

    OCaml 5.1's [Unix] does not expose [CLOCK_MONOTONIC], so the best
    available wall-clock source is {!Unix.gettimeofday}, which an NTP
    step can move backwards. [now] clamps it against the largest value
    any domain has seen, so two reads ordered by happens-before never
    yield a negative duration — the property the timers and spans of
    {!Metrics} actually rely on. Resolution is the system's
    [gettimeofday] resolution (microseconds on Linux). *)

val now : unit -> float
(** Seconds since the Unix epoch, nondecreasing across all domains of
    this process. *)
