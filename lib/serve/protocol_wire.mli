(** Minimal HTTP/1.1 framing for the verification service.

    The daemon speaks plain HTTP/1.1 with JSON bodies over a unix
    socket — curl-able, no dependencies — and this module is the whole
    wire layer: parse a request, render a response, and the symmetric
    client half. It deliberately implements only what the service
    needs: [GET]/[POST]/[DELETE], [Content-Length] framing (no chunked
    transfer), persistent connections with [Connection: close]
    opt-out, and hard limits on header-block and body sizes so a
    misbehaving client cannot balloon the daemon's memory.

    Parsing is written against an abstract byte {!reader} rather than a
    file descriptor, so every path is unit-testable from strings. *)

type meth = GET | POST | DELETE

val meth_to_string : meth -> string

type request = {
  meth : meth;
  target : string;  (** request target as sent, e.g. ["/v1/jobs/x?y=1"] *)
  headers : (string * string) list;
      (** in arrival order; names lowercased *)
  body : string;
}

type response = {
  status : int;
  reason : string;
  resp_headers : (string * string) list;
  resp_body : string;
}

val reason : int -> string
(** Canonical reason phrase for the status codes the service uses;
    ["Unknown"] otherwise. *)

val response :
  ?content_type:string -> ?headers:(string * string) list -> int ->
  string -> response
(** [response status body] with [Content-Type] (default
    [application/json]) and any extra [headers]. [Content-Length] and
    [Connection] are added at render time. *)

val header : (string * string) list -> string -> string option
(** Case-insensitive header lookup (first match). *)

val path_of_target : string -> string
(** The target without its query string: ["/v1/jobs?x=1"] is
    ["/v1/jobs"]. *)

val split_path : string -> string list
(** Non-empty segments of a path: ["/v1/jobs/abc"] is
    [["v1"; "jobs"; "abc"]]. *)

(** {2 Reading} *)

type reader
(** A buffered byte source. *)

val reader : (bytes -> int -> int -> int) -> reader
(** [reader read] wraps a [read buf pos len] function returning the
    number of bytes read, [0] at end of input (the [Unix.read]
    contract). *)

val fd_reader : Unix.file_descr -> reader

val string_reader : string -> reader
(** Reads from a fixed string — the unit-test source. *)

val read_request : reader -> (request option, string) result
(** Reads one request. [Ok None] on a clean end of input before any
    byte of a request (the peer closed an idle connection); [Error] on
    malformed framing, an unsupported method, a missing
    [Content-Length] on a body-carrying method, or an oversized
    header block / body. *)

val read_response : reader -> (response, string) result
(** The client half: one status line, headers, [Content-Length] body. *)

val keep_alive : request -> bool
(** False when the request carries [Connection: close]. *)

(** {2 Writing} *)

val render_request : request -> string
(** Serialises a request with [Content-Length] framing (the client
    side). *)

val render_response : ?close:bool -> response -> string
(** Serialises a response; [close] adds [Connection: close]. *)

val max_head_bytes : int
(** Header-block ceiling (16 KiB). *)

val max_body_bytes : int
(** Body ceiling (8 MiB) — larger than any result document the engine
    produces, small enough to bound a connection's memory. *)
