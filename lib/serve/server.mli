(** The verification daemon: unix-socket listener, worker, lifecycle.

    One process owns one state directory (guarded by
    {!Glc_campaign.Store.Lock}) and one unix socket. Three kinds of
    thread cooperate:

    - the {e accept loop} ({!run}, the calling thread) multiplexes a
      [select] with a 250 ms tick so shutdown flags are noticed
      promptly without busy-waiting;
    - one {e connection thread} per accepted client parses HTTP/1.1
      requests ({!Protocol_wire}) and answers through
      {!Session.handle}, keeping the connection open until the peer
      closes or sends [Connection: close];
    - one {e worker thread} pops the {!Scheduler} under the shared
      mutex and executes jobs on a shared {!Glc_engine.Pool} of
      domains through a shared compiled-model {!Glc_engine.Cache} —
      the same [Runner.run_job] path campaigns use, so a job's stored
      bytes are independent of how it arrived.

    {2 Crash recovery}

    Admission persists every accepted job under
    [<state>/submitted/<id>.json] before acknowledging it, and the
    worker removes the record only after the result is in the store.
    {!create} therefore re-enqueues every leftover record (original
    priority and sequence number) and counts them in
    [serve.jobs_resumed] — a daemon killed with [SIGKILL] mid-job
    resumes it on restart and, because the job's seed is
    content-derived, stores byte-identical results.

    {2 Shutdown}

    {!stop} (or a [SIGINT]/[SIGTERM] via
    {!install_signal_handlers}) stops accepting, lets the in-flight
    job finish and persist, then closes the journal, removes the
    socket and releases the lock. Queued-but-unstarted jobs stay on
    disk for the next life. *)

type config = {
  socket_path : string;
  state_dir : string;
  pool_jobs : int;  (** worker-pool domains; 0 = hardware *)
  queue_capacity : int;
  seed : int;
  total_time : float;
  hold_time : float;
  lint_admission : bool;
  start_worker : bool;
      (** disable to keep admitted jobs queued — the deterministic
          cancel/restart test hook; the CLI always starts it *)
  metrics : Glc_obs.Metrics.t;
}

val config :
  socket_path:string ->
  state_dir:string ->
  ?pool_jobs:int ->
  ?queue_capacity:int ->
  ?seed:int ->
  ?total_time:float ->
  ?hold_time:float ->
  ?lint_admission:bool ->
  ?start_worker:bool ->
  ?metrics:Glc_obs.Metrics.t ->
  unit ->
  config
(** Defaults: pool 0 (hardware), queue 64, seed 42, the paper's
    10,000/1,000 t.u. protocol, lint on, worker on, metrics noop. *)

type t

val create : config -> (t, string) result
(** Acquires the state-directory lock, opens (or initialises) the
    store — a fresh directory gets a serve manifest
    [{"serve":1,"seed":…,…}]; an existing serve manifest {e overrides}
    the configured seed/times so a restart always resumes under the
    parameters the stored results were computed with; a campaign
    manifest is refused — opens the journal, re-enqueues persisted
    submissions, and binds + listens on [socket_path] (removing a
    stale socket file first). On [Error] nothing is left held. *)

val ctx : t -> Session.ctx
(** The shared state — what tests poke at directly. *)

val effective_config : t -> config
(** The configuration after any manifest override. *)

val run : t -> unit
(** Serves until {!stop}; returns only after the worker has drained
    its in-flight job and every resource (socket, journal, lock) is
    released. Call at most once. *)

val stop : t -> unit
(** Requests shutdown; idempotent, callable from any thread (not from
    a signal handler — use {!install_signal_handlers}). Returns
    immediately; {!run} unblocks within its 250 ms tick. *)

val install_signal_handlers : t -> unit
(** Routes [SIGINT] and [SIGTERM] to an async-signal-safe shutdown
    flag that {!run}'s tick converts into {!stop}. *)
