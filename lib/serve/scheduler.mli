(** Bounded priority queue of admitted jobs.

    Pure data structure — no threads, no clock — so its ordering and
    backpressure behaviour are deterministic and unit-testable; the
    {!Server} wraps it in the daemon's mutex/condition pair. Jobs pop
    in priority order (higher first), first-in-first-out within a
    priority level (ties broken by the monotonically assigned sequence
    number, which is the queue's logical clock).

    The queue is {e bounded}: {!push} on a full queue returns [`Full]
    instead of growing, which the {!Admission} layer turns into an
    HTTP 429 with a retry-after hint. An unbounded queue under a bursty
    campaign workload is an unbounded memory commitment — rejecting at
    the door with a hint is the production behaviour. *)

type 'a t

val create : capacity:int -> 'a t
(** @raise Invalid_argument if [capacity < 1]. *)

val capacity : 'a t -> int

val length : 'a t -> int

val is_empty : 'a t -> bool

val is_full : 'a t -> bool

val push : 'a t -> priority:int -> 'a -> [ `Queued of int | `Full ]
(** Enqueues at [priority] (higher pops earlier). [`Queued seq] carries
    the assigned sequence number. [`Full] when at capacity — nothing is
    evicted; admission backpressure is the caller's job. *)

val next_seq : 'a t -> int
(** The sequence number the next {!push} will assign — lets a caller
    that stores the sequence inside the item build it first. *)

val push_seq : 'a t -> priority:int -> seq:int -> 'a -> [ `Queued of int | `Full ]
(** Like {!push} with an explicit sequence number — how a restarted
    daemon re-enqueues persisted submissions under their original
    arrival order. Also advances the internal counter past [seq].
    @raise Invalid_argument if [seq] is negative. *)

val pop : 'a t -> (int * 'a) option
(** Highest-priority, oldest job — [(seq, item)] — or [None] when
    empty. *)

val remove : 'a t -> ('a -> bool) -> 'a option
(** Removes and returns the first queued item (in pop order) matching
    the predicate — the cancel path. [None] when nothing matches. *)

val to_list : 'a t -> (int * int * 'a) list
(** [(priority, seq, item)] snapshots in pop order. *)
