module Grid = Glc_campaign.Grid
module Store = Glc_campaign.Store
module Journal = Glc_campaign.Journal
module Runner = Glc_campaign.Runner
module Lint = Glc_lint.Lint
module Diagnostic = Glc_lint.Diagnostic
module Metrics = Glc_obs.Metrics
module Json = Glc_core.Report.Json

type config = {
  seed : int;
  total_time : float;
  hold_time : float;
  lint_admission : bool;
  queue_capacity : int;
}

let config ?(seed = 42) ?(total_time = 10_000.) ?(hold_time = 1_000.)
    ?(lint_admission = true) ?(queue_capacity = 64) () =
  if total_time <= 0. || hold_time <= 0. then
    invalid_arg "Admission.config: non-positive time";
  if queue_capacity < 1 then
    invalid_arg "Admission.config: queue_capacity < 1";
  { seed; total_time; hold_time; lint_admission; queue_capacity }

type t = {
  cfg : config;
  registry : Jobstate.registry;
  scheduler : Jobstate.entry Scheduler.t;
  store : Store.t;
  journal : Journal.t;
  submitted_dir : string;
  metrics : Glc_obs.Metrics.t;
  mutable avg_job_seconds : float;
}

let submitted_subdir = "submitted"

(* Instruments register on first use, which would leave untouched
   counters (a fresh daemon's serve.jobs_failed, say) out of the
   /metrics exposition entirely. Scrape consumers — CI ceilings
   included — want the whole family present from the first scrape, so
   touch every serve.* instrument up front. *)
let preregister metrics =
  List.iter
    (fun name -> ignore (Metrics.counter metrics name))
    [
      "serve.jobs_submitted"; "serve.jobs_completed"; "serve.jobs_failed";
      "serve.jobs_cancelled"; "serve.jobs_resumed"; "serve.dedup_hits";
      "serve.admission_rejected_lint"; "serve.admission_rejected_busy";
      "serve.admission_invalid"; "serve.requests"; "serve.http_errors";
    ];
  List.iter
    (fun name -> ignore (Metrics.gauge metrics name))
    [ "serve.queue_depth"; "serve.jobs_running" ];
  List.iter
    (fun name -> ignore (Metrics.histogram metrics name))
    [ "serve.job_seconds"; "serve.queue_wait_seconds";
      "serve.request_seconds" ]

let create ~cfg ~store ~journal ~metrics ~state_dir =
  let submitted_dir = Filename.concat state_dir submitted_subdir in
  Store.mkdir_p submitted_dir;
  preregister metrics;
  {
    cfg;
    registry = Jobstate.registry ();
    scheduler = Scheduler.create ~capacity:cfg.queue_capacity;
    store;
    journal;
    submitted_dir;
    metrics;
    avg_job_seconds = 0.;
  }

type submit = {
  sub_circuit : string;
  sub_threshold : float option;
  sub_fov_ud : float option;
  sub_input_high : float option;
  sub_replicates : int option;
  sub_priority : int option;
}

let submit_of_json text =
  match Json.parse text with
  | Error m -> Error (Printf.sprintf "request body is not JSON: %s" m)
  | Ok doc -> (
      match Option.bind (Json.member doc "circuit") Json.to_str with
      | None -> Error "submission lacks a \"circuit\" field"
      | Some sub_circuit ->
          let num k = Option.bind (Json.member doc k) Json.to_number in
          let int k = Option.bind (Json.member doc k) Json.to_int in
          Ok
            {
              sub_circuit;
              sub_threshold = num "threshold";
              sub_fov_ud = num "fov_ud";
              sub_input_high = num "input_high";
              sub_replicates = int "replicates";
              sub_priority = int "priority";
            })

type outcome =
  | Accepted of Jobstate.entry
  | Duplicate of Jobstate.entry
  | Completed of Jobstate.entry * string
  | Rejected_lint of Diagnostic.t list
  | Rejected_busy of int
  | Invalid of string

let retry_after ~queue_depth ~avg_job_seconds =
  let avg = if avg_job_seconds > 0. then avg_job_seconds else 1. in
  let hint = Float.ceil (float_of_int (max queue_depth 1) *. avg) in
  int_of_float (Float.min 600. (Float.max 1. hint))

let note_job_seconds t dt =
  (* EWMA with alpha 0.3: reacts within a few jobs, forgets bursts *)
  if dt >= 0. then
    t.avg_job_seconds <-
      (if t.avg_job_seconds <= 0. then dt
       else (0.7 *. t.avg_job_seconds) +. (0.3 *. dt))

let protocol_of t job =
  let spec =
    Jobstate.spec_for ~seed:t.cfg.seed ~total_time:t.cfg.total_time
      ~hold_time:t.cfg.hold_time job
  in
  Runner.job_protocol spec job

let submitted_path t ~id = Filename.concat t.submitted_dir (id ^ ".json")

(* Atomic temp+fsync+rename, the same discipline as the result store:
   a submission record is either fully present or absent after any
   crash, never truncated. *)
let atomic_write path content =
  let tmp = Printf.sprintf "%s.%d.tmp" path (Unix.getpid ()) in
  let fd =
    Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let n = String.length content in
      let written = ref 0 in
      while !written < n do
        written :=
          !written + Unix.write_substring fd content !written (n - !written)
      done;
      Unix.fsync fd);
  Unix.rename tmp path

let persist_submission t entry =
  atomic_write (submitted_path t ~id:entry.Jobstate.id)
    (Jobstate.submission_json entry)

let remove_submission t ~id =
  try Sys.remove (submitted_path t ~id) with Sys_error _ -> ()

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let pending_submissions ~state_dir =
  let dir = Filename.concat state_dir submitted_subdir in
  if not (Sys.file_exists dir) then Ok []
  else
    match Sys.readdir dir with
    | exception Sys_error m -> Error m
    | names ->
        Array.to_list names
        |> List.filter (fun n -> Filename.check_suffix n ".json")
        |> List.filter_map (fun n ->
               match read_file (Filename.concat dir n) with
               | exception _ -> None
               | text -> (
                   match Jobstate.submission_of_json text with
                   | Ok r -> Some r
                   | Error _ -> None))
        |> List.sort (fun (_, _, a) (_, _, b) -> compare a b)
        |> Result.ok

let lint_errors t job =
  match Runner.resolve job.Grid.j_circuit with
  | Error m -> Error (Invalid m)
  | Ok circuit ->
      let ds = Lint.circuit ~protocol:(protocol_of t job) ~metrics:t.metrics circuit in
      if Diagnostic.exit_code ds >= 2 then Error (Rejected_lint ds) else Ok ()

let queue_depth_gauge t =
  Metrics.Gauge.set
    (Metrics.gauge t.metrics "serve.queue_depth")
    (float_of_int (Scheduler.length t.scheduler))

let admit t ~now (s : submit) =
  let counter name = Metrics.counter t.metrics name in
  Metrics.Counter.incr (counter "serve.jobs_submitted");
  match
    Jobstate.job ~circuit:s.sub_circuit ?threshold:s.sub_threshold
      ?fov_ud:s.sub_fov_ud ?input_high:s.sub_input_high
      ?replicates:s.sub_replicates ()
  with
  | Error m ->
      Metrics.Counter.incr (counter "serve.admission_invalid");
      Invalid m
  | Ok job -> (
      let priority =
        match s.sub_priority with
        | None -> 5
        | Some p -> max 0 (min 9 p)
      in
      let id = Grid.job_id job in
      match Jobstate.find t.registry id with
      | Some entry ->
          (* the same coordinates hash to the same id: this submission
             is already queued, running, or finished here *)
          Metrics.Counter.incr (counter "serve.dedup_hits");
          Duplicate entry
      | None -> (
          match Store.get t.store ~id with
          | Some doc ->
              (* a previous daemon life (or a campaign sharing the
                 store) already computed it: serve the stored bytes *)
              Metrics.Counter.incr (counter "serve.dedup_hits");
              let entry =
                Jobstate.make ~job ~priority
                  ~seq:(Scheduler.length t.scheduler) ~now
              in
              entry.Jobstate.phase <- Jobstate.Done;
              entry.Jobstate.from_cache <- true;
              Jobstate.add t.registry entry;
              Completed (entry, doc)
          | None -> (
              match
                if t.cfg.lint_admission then lint_errors t job else Ok ()
              with
              | Error (Rejected_lint _ as r) ->
                  Metrics.Counter.incr
                    (counter "serve.admission_rejected_lint");
                  r
              | Error (Invalid _ as r) ->
                  Metrics.Counter.incr (counter "serve.admission_invalid");
                  r
              | Error r -> r
              | Ok () ->
                  if Scheduler.is_full t.scheduler then begin
                    Metrics.Counter.incr
                      (counter "serve.admission_rejected_busy");
                    Rejected_busy
                      (retry_after
                         ~queue_depth:(Scheduler.length t.scheduler)
                         ~avg_job_seconds:t.avg_job_seconds)
                  end
                  else begin
                    let seq = Scheduler.next_seq t.scheduler in
                    let entry = Jobstate.make ~job ~priority ~seq ~now in
                    match
                      Scheduler.push_seq t.scheduler ~priority ~seq entry
                    with
                    | `Full ->
                        (* capacity re-checked above; unreachable, but
                           fail closed *)
                        Metrics.Counter.incr
                          (counter "serve.admission_rejected_busy");
                        Rejected_busy
                          (retry_after
                             ~queue_depth:(Scheduler.length t.scheduler)
                             ~avg_job_seconds:t.avg_job_seconds)
                    | `Queued _ ->
                        (* persist before acknowledging: a daemon killed
                           after this line still re-discovers the job *)
                        persist_submission t entry;
                        Journal.append t.journal (Journal.Scheduled id);
                        Jobstate.add t.registry entry;
                        queue_depth_gauge t;
                        Accepted entry
                  end)))
