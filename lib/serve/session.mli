(** Request routing: one HTTP exchange against the daemon's state.

    {!handle} is a pure-ish function from shared state + request to
    response — it owns no socket, spawns no thread and never blocks on
    job execution, so the whole API surface is testable without a
    listener. Connection threads call it once per parsed request; all
    state access happens under {!ctx}'s mutex.

    {2 Endpoints}

    {v
    POST   /v1/jobs             submit      202 queued / 200 dedup
                                            422 lint / 400 invalid
                                            429 busy (Retry-After)
    GET    /v1/jobs             list        200
    GET    /v1/jobs/ID          status      200 / 404
    GET    /v1/jobs/ID/result   result      200 done / 404 unknown
                                            409 not done / 500 failed
    DELETE /v1/jobs/ID          cancel      200 queued-only / 409 / 404
    GET    /health              liveness    200
    GET    /metrics             scrape      200 text/plain
    v}

    Submission replies wrap the job status as
    [{"dedup":BOOL,"job":{…}}]. The result endpoint falls back to the
    on-disk store when the id has no registry entry, so results
    outlive daemon restarts even though lifecycle entries do not.
    Every response is JSON except [/metrics], which serves
    {!Glc_obs.Metrics.to_text}. *)

(** Shared daemon state, owned by the {!Server}, accessed under
    [mutex]. *)
type ctx = {
  adm : Admission.t;
  mutex : Mutex.t;
  cond : Condition.t;  (** signalled when a job is enqueued *)
  clock : unit -> float;  (** injectable for tests *)
  started_at : float;
  mutable running : string option;  (** id the worker is executing *)
  mutable stopping : bool;
}

val make_ctx : ?clock:(unit -> float) -> Admission.t -> ctx
(** A fresh context; [clock] defaults to [Unix.gettimeofday]. *)

val handle : ctx -> Protocol_wire.request -> Protocol_wire.response
(** Routes one request. Counts [serve.requests] and [serve.http_errors]
    (status ≥ 400) and observes wall time in [serve.request_seconds].
    Never raises: an unmatched route is a 404, an internal exception a
    500 with the printed exception in the body. *)
