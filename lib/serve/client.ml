module W = Protocol_wire
module Json = Glc_core.Report.Json

type t = { socket : string }

let connect ~socket = { socket }

let request t req =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      match Unix.connect fd (Unix.ADDR_UNIX t.socket) with
      | exception Unix.Unix_error (e, _, _) ->
          Error
            (Printf.sprintf "cannot connect to %s: %s" t.socket
               (Unix.error_message e))
      | () -> (
          let payload = W.render_request req in
          let n = String.length payload in
          let written = ref 0 in
          (try
             while !written < n do
               written :=
                 !written
                 + Unix.write_substring fd payload !written (n - !written)
             done
           with Unix.Unix_error (e, _, _) ->
             failwith (Unix.error_message e));
          match W.read_response (W.fd_reader fd) with
          | Ok resp -> Ok resp
          | Error m -> Error (Printf.sprintf "malformed response: %s" m)))

let request t req = try request t req with Failure m -> Error m

let get t target =
  request t { W.meth = W.GET; target; headers = []; body = "" }

let submit ?threshold ?fov_ud ?input_high ?replicates ?priority t ~circuit =
  let field name render v =
    Option.map (fun x -> Printf.sprintf ",\"%s\":%s" name (render x)) v
    |> Option.value ~default:""
  in
  let body =
    Printf.sprintf "{\"circuit\":%s%s%s%s%s%s}" (Json.string circuit)
      (field "threshold" Json.float threshold)
      (field "fov_ud" Json.float fov_ud)
      (field "input_high" Json.float input_high)
      (field "replicates" string_of_int replicates)
      (field "priority" string_of_int priority)
  in
  request t
    {
      W.meth = W.POST;
      target = "/v1/jobs";
      headers = [ ("content-type", "application/json") ];
      body;
    }

let status t ~id = get t ("/v1/jobs/" ^ id)

let list_jobs t = get t "/v1/jobs"

let result ?(wait = false) ?(timeout_s = 300.) t ~id =
  let target = "/v1/jobs/" ^ id ^ "/result" in
  if not wait then get t target
  else begin
    let deadline = Unix.gettimeofday () +. timeout_s in
    let rec poll () =
      match get t target with
      | Error _ as e -> e
      | Ok resp when resp.W.status <> 409 -> Ok resp
      | Ok resp ->
          if Unix.gettimeofday () >= deadline then Ok resp
          else begin
            ignore (Unix.select [] [] [] 0.2);
            poll ()
          end
    in
    poll ()
  end

let cancel t ~id =
  request t
    { W.meth = W.DELETE; target = "/v1/jobs/" ^ id; headers = []; body = "" }

let health t = get t "/health"

let metrics t =
  match get t "/metrics" with
  | Error _ as e -> e
  | Ok resp when resp.W.status = 200 -> Ok resp.W.resp_body
  | Ok resp ->
      Error (Printf.sprintf "metrics scrape answered %d" resp.W.status)

let job_id_of_response resp =
  match Json.parse resp.W.resp_body with
  | Error _ -> None
  | Ok doc -> (
      let id_of d = Option.bind (Json.member d "id") Json.to_str in
      match Option.bind (Json.member doc "job") id_of with
      | Some id -> Some id
      | None -> id_of doc)
