type meth = GET | POST | DELETE

let meth_to_string = function GET -> "GET" | POST -> "POST" | DELETE -> "DELETE"

let meth_of_string = function
  | "GET" -> Some GET
  | "POST" -> Some POST
  | "DELETE" -> Some DELETE
  | _ -> None

type request = {
  meth : meth;
  target : string;
  headers : (string * string) list;
  body : string;
}

type response = {
  status : int;
  reason : string;
  resp_headers : (string * string) list;
  resp_body : string;
}

let reason = function
  | 200 -> "OK"
  | 202 -> "Accepted"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 409 -> "Conflict"
  | 413 -> "Payload Too Large"
  | 422 -> "Unprocessable Entity"
  | 429 -> "Too Many Requests"
  | 500 -> "Internal Server Error"
  | 503 -> "Service Unavailable"
  | _ -> "Unknown"

let response ?(content_type = "application/json") ?(headers = []) status
    body =
  {
    status;
    reason = reason status;
    resp_headers = ("content-type", content_type) :: headers;
    resp_body = body;
  }

let header headers name =
  let name = String.lowercase_ascii name in
  List.find_map
    (fun (k, v) ->
      if String.equal (String.lowercase_ascii k) name then Some v else None)
    headers

let path_of_target target =
  match String.index_opt target '?' with
  | None -> target
  | Some i -> String.sub target 0 i

let split_path path =
  List.filter (fun s -> s <> "") (String.split_on_char '/' path)

(* ---- reading ---- *)

let max_head_bytes = 16 * 1024
let max_body_bytes = 8 * 1024 * 1024

type reader = {
  read : bytes -> int -> int -> int;
  buf : Buffer.t;  (* bytes received but not yet consumed *)
  chunk : bytes;
}

let reader read = { read; buf = Buffer.create 1024; chunk = Bytes.create 4096 }

let fd_reader fd =
  reader (fun b pos len ->
      try Unix.read fd b pos len
      with
      | Unix.Unix_error (Unix.ECONNRESET, _, _)
      | Unix.Unix_error (Unix.EPIPE, _, _)
      ->
        0)

let string_reader s =
  let offset = ref 0 in
  reader (fun b pos len ->
      let n = min len (String.length s - !offset) in
      Bytes.blit_string s !offset b pos n;
      offset := !offset + n;
      n)

(* One read(2)-sized refill into the pending buffer; false at EOF. *)
let refill r =
  match r.read r.chunk 0 (Bytes.length r.chunk) with
  | 0 -> false
  | n ->
      Buffer.add_subbytes r.buf r.chunk 0 n;
      true
  | exception Unix.Unix_error (e, _, _) ->
      failwith (Unix.error_message e)

(* Index just past the first CRLFCRLF in [s], if any. *)
let head_end s =
  let n = String.length s in
  let rec go i =
    if i + 3 >= n then None
    else if
      s.[i] = '\r' && s.[i + 1] = '\n' && s.[i + 2] = '\r' && s.[i + 3] = '\n'
    then Some (i + 4)
    else go (i + 1)
  in
  go 0

let take r n =
  let s = Buffer.contents r.buf in
  let kept = String.sub s n (String.length s - n) in
  Buffer.clear r.buf;
  Buffer.add_string r.buf kept;
  String.sub s 0 n

(* Accumulates input until a complete head (terminated by CRLFCRLF) is
   buffered; returns it consumed from the buffer. *)
let read_head r =
  let rec go () =
    match head_end (Buffer.contents r.buf) with
    | Some stop -> Ok (Some (take r stop))
    | None ->
        if Buffer.length r.buf > max_head_bytes then
          Error
            (Printf.sprintf "header block exceeds %d bytes" max_head_bytes)
        else if refill r then go ()
        else if Buffer.length r.buf = 0 then Ok None
        else Error "connection closed mid-request"
  in
  match go () with v -> v | exception Failure m -> Error m

let read_body r len =
  if len > max_body_bytes then
    Error (Printf.sprintf "body exceeds %d bytes" max_body_bytes)
  else begin
    let rec go () =
      if Buffer.length r.buf >= len then Ok (take r len)
      else if refill r then go ()
      else Error "connection closed mid-body"
    in
    match go () with v -> v | exception Failure m -> Error m
  end

let parse_headers lines =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
        match String.index_opt line ':' with
        | None -> Error (Printf.sprintf "malformed header line %S" line)
        | Some i ->
            let name =
              String.lowercase_ascii (String.trim (String.sub line 0 i))
            in
            let value =
              String.trim
                (String.sub line (i + 1) (String.length line - i - 1))
            in
            go ((name, value) :: acc) rest)
  in
  go [] lines

(* Splits a head block (without the final blank line) into its lines. *)
let head_lines head =
  head |> String.split_on_char '\n'
  |> List.map (fun l ->
         let n = String.length l in
         if n > 0 && l.[n - 1] = '\r' then String.sub l 0 (n - 1) else l)
  |> List.filter (fun l -> l <> "")

let content_length headers =
  match header headers "content-length" with
  | None -> Ok 0
  | Some v -> (
      match int_of_string_opt (String.trim v) with
      | Some n when n >= 0 -> Ok n
      | Some _ | None -> Error (Printf.sprintf "bad content-length %S" v))

let read_request r =
  let ( let* ) = Result.bind in
  let* head = read_head r in
  match head with
  | None -> Ok None
  | Some head -> (
      match head_lines head with
      | [] -> Error "empty request head"
      | request_line :: header_lines -> (
          match String.split_on_char ' ' request_line with
          | [ meth; target; version ]
            when version = "HTTP/1.1" || version = "HTTP/1.0" -> (
              match meth_of_string meth with
              | None -> Error (Printf.sprintf "unsupported method %S" meth)
              | Some meth ->
                  let* headers = parse_headers header_lines in
                  (match header headers "transfer-encoding" with
                  | Some _ -> Error "chunked transfer encoding not supported"
                  | None when
                      meth = POST
                      && header headers "content-length" = None ->
                      Error "POST requires a content-length header"
                  | None ->
                      let* len = content_length headers in
                      let* body = read_body r len in
                      Ok (Some { meth; target; headers; body })))
          | _ -> Error (Printf.sprintf "malformed request line %S" request_line)))

let read_response r =
  let ( let* ) = Result.bind in
  let* head = read_head r in
  match head with
  | None -> Error "connection closed before a response"
  | Some head -> (
      match head_lines head with
      | [] -> Error "empty response head"
      | status_line :: header_lines -> (
          match String.split_on_char ' ' status_line with
          | version :: code :: rest
            when version = "HTTP/1.1" || version = "HTTP/1.0" -> (
              match int_of_string_opt code with
              | None -> Error (Printf.sprintf "bad status line %S" status_line)
              | Some status ->
                  let* headers = parse_headers header_lines in
                  let* len = content_length headers in
                  let* body = read_body r len in
                  Ok
                    {
                      status;
                      reason = String.concat " " rest;
                      resp_headers = headers;
                      resp_body = body;
                    })
          | _ -> Error (Printf.sprintf "bad status line %S" status_line)))

let keep_alive req =
  match header req.headers "connection" with
  | Some v -> not (String.equal (String.lowercase_ascii (String.trim v)) "close")
  | None -> true

(* ---- writing ---- *)

let render_headers buf headers =
  List.iter
    (fun (k, v) ->
      Buffer.add_string buf k;
      Buffer.add_string buf ": ";
      Buffer.add_string buf v;
      Buffer.add_string buf "\r\n")
    headers

let render_request req =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (meth_to_string req.meth);
  Buffer.add_char buf ' ';
  Buffer.add_string buf req.target;
  Buffer.add_string buf " HTTP/1.1\r\n";
  render_headers buf req.headers;
  if req.body <> "" || req.meth = POST then
    Buffer.add_string buf
      (Printf.sprintf "content-length: %d\r\n" (String.length req.body));
  Buffer.add_string buf "\r\n";
  Buffer.add_string buf req.body;
  Buffer.contents buf

let render_response ?(close = false) resp =
  let buf = Buffer.create (String.length resp.resp_body + 256) in
  Buffer.add_string buf
    (Printf.sprintf "HTTP/1.1 %d %s\r\n" resp.status resp.reason);
  render_headers buf resp.resp_headers;
  Buffer.add_string buf
    (Printf.sprintf "content-length: %d\r\n" (String.length resp.resp_body));
  if close then Buffer.add_string buf "connection: close\r\n";
  Buffer.add_string buf "\r\n";
  Buffer.add_string buf resp.resp_body;
  Buffer.contents buf
