module Grid = Glc_campaign.Grid
module Json = Glc_core.Report.Json

type phase =
  | Queued
  | Running
  | Done
  | Failed of string
  | Cancelled

let phase_label = function
  | Queued -> "queued"
  | Running -> "running"
  | Done -> "done"
  | Failed _ -> "failed"
  | Cancelled -> "cancelled"

type entry = {
  id : string;
  job : Grid.job;
  priority : int;
  seq : int;
  submitted_at : float;
  mutable phase : phase;
  mutable from_cache : bool;
  mutable attempts : int;
}

let make ~job ~priority ~seq ~now =
  {
    id = Grid.job_id job;
    job;
    priority;
    seq;
    submitted_at = now;
    phase = Queued;
    from_cache = false;
    attempts = 0;
  }

(* Validation rides on Grid.make: a serve job is one cell of a campaign
   grid, so the axis constraints (and the job id) are the same by
   construction. *)
let job ~circuit ?threshold ?fov_ud ?input_high ?replicates () =
  let opt_axis v = Option.map (fun x -> [ x ]) v in
  match
    Grid.make
      ?thresholds:(opt_axis threshold)
      ?fov_uds:(opt_axis fov_ud)
      ?input_highs:(Option.map (fun h -> [ Some h ]) input_high)
      ?replicate_counts:(opt_axis replicates)
      [ circuit ]
  with
  | exception Invalid_argument m -> Error m
  | grid -> (
      match Grid.expand grid with
      | [ job ] -> Ok job
      | _ -> Error "internal error: single-cell grid expanded to several jobs")

let spec_for ~seed ~total_time ~hold_time (job : Grid.job) =
  let grid =
    Grid.make
      ~thresholds:[ job.Grid.j_threshold ]
      ~fov_uds:[ job.Grid.j_fov_ud ]
      ~input_highs:[ job.Grid.j_input_high ]
      ~replicate_counts:[ job.Grid.j_replicates ]
      [ job.Grid.j_circuit ]
  in
  Grid.spec ~seed ~total_time ~hold_time grid

(* ---- JSON ---- *)

let job_fields (job : Grid.job) =
  Printf.sprintf
    "\"circuit\":%s,\"threshold\":%s,\"fov_ud\":%s,\"input_high\":%s,\"replicates\":%d"
    (Json.string job.Grid.j_circuit)
    (Json.float job.Grid.j_threshold)
    (Json.float job.Grid.j_fov_ud)
    (match job.Grid.j_input_high with
    | None -> "null"
    | Some h -> Json.float h)
    job.Grid.j_replicates

let status_json ~now e =
  let error =
    match e.phase with
    | Failed m -> Printf.sprintf ",\"error\":%s" (Json.string m)
    | _ -> ""
  in
  Printf.sprintf
    "{\"id\":%s,%s,\"priority\":%d,\"seq\":%d,\"status\":%s%s,\"from_cache\":%s,\"attempts\":%d,\"age_s\":%s}"
    (Json.string e.id) (job_fields e.job) e.priority e.seq
    (Json.string (phase_label e.phase))
    error
    (Json.bool e.from_cache)
    e.attempts
    (Json.float (Float.max 0. (now -. e.submitted_at)))

let submission_json e =
  Printf.sprintf "{\"id\":%s,%s,\"priority\":%d,\"seq\":%d}"
    (Json.string e.id) (job_fields e.job) e.priority e.seq

let submission_of_json text =
  match Json.parse text with
  | Error m -> Error (Printf.sprintf "unparseable submission record: %s" m)
  | Ok doc -> (
      let str k = Option.bind (Json.member doc k) Json.to_str in
      let num k = Option.bind (Json.member doc k) Json.to_number in
      let int k = Option.bind (Json.member doc k) Json.to_int in
      match (str "circuit", num "threshold", num "fov_ud", int "replicates") with
      | Some circuit, Some threshold, Some fov_ud, Some replicates -> (
          let input_high =
            match Json.member doc "input_high" with
            | Some (Json.Number h) -> Some h
            | _ -> None
          in
          match
            job ~circuit ~threshold ~fov_ud ?input_high ~replicates ()
          with
          | Error m -> Error m
          | Ok j -> (
              match (int "priority", int "seq") with
              | Some priority, Some seq -> Ok (j, priority, seq)
              | _ -> Error "submission record lacks priority/seq"))
      | _ -> Error "submission record lacks job coordinates")

(* ---- registry ---- *)

type registry = (string, entry) Hashtbl.t

let registry () : registry = Hashtbl.create 64

let find (r : registry) id = Hashtbl.find_opt r id

let add (r : registry) e = Hashtbl.replace r e.id e

let entries (r : registry) =
  Hashtbl.fold (fun _ e acc -> e :: acc) r []
  |> List.sort (fun a b -> compare a.seq b.seq)

let count (r : registry) phase =
  let same a b =
    match (a, b) with
    | Queued, Queued | Running, Running | Done, Done | Cancelled, Cancelled
    | Failed _, Failed _ ->
        true
    | _ -> false
  in
  Hashtbl.fold (fun _ e acc -> if same e.phase phase then acc + 1 else acc) r 0
