(* A sorted list — queues are bounded (default capacity 64) and
   operations are O(n) with a tiny constant, which beats a heap's
   bookkeeping at this scale and keeps [to_list]/[remove] trivial. The
   invariant: [items] is sorted by (priority descending, seq
   ascending), so the head is always the next job to pop. *)

type 'a entry = { e_priority : int; e_seq : int; e_item : 'a }

type 'a t = {
  q_capacity : int;
  mutable q_items : 'a entry list;
  mutable q_next_seq : int;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Scheduler.create: capacity < 1";
  { q_capacity = capacity; q_items = []; q_next_seq = 0 }

let capacity t = t.q_capacity
let length t = List.length t.q_items
let is_empty t = t.q_items = []
let is_full t = length t >= t.q_capacity

let before a b =
  a.e_priority > b.e_priority
  || (a.e_priority = b.e_priority && a.e_seq < b.e_seq)

let rec insert e = function
  | [] -> [ e ]
  | x :: rest -> if before e x then e :: x :: rest else x :: insert e rest

let next_seq t = t.q_next_seq

let push_seq t ~priority ~seq item =
  if seq < 0 then invalid_arg "Scheduler.push_seq: negative seq";
  if is_full t then `Full
  else begin
    t.q_items <- insert { e_priority = priority; e_seq = seq; e_item = item } t.q_items;
    if seq >= t.q_next_seq then t.q_next_seq <- seq + 1;
    `Queued seq
  end

let push t ~priority item =
  push_seq t ~priority ~seq:t.q_next_seq item

let pop t =
  match t.q_items with
  | [] -> None
  | e :: rest ->
      t.q_items <- rest;
      Some (e.e_seq, e.e_item)

let remove t pred =
  let rec go acc = function
    | [] -> None
    | e :: rest ->
        if pred e.e_item then begin
          t.q_items <- List.rev_append acc rest;
          Some e.e_item
        end
        else go (e :: acc) rest
  in
  go [] t.q_items

let to_list t =
  List.map (fun e -> (e.e_priority, e.e_seq, e.e_item)) t.q_items
