(** Blocking client for the verification daemon.

    One connection per call over the daemon's unix socket — simple,
    stateless, and immune to a daemon restart between calls. This is
    what the [glcv submit]/[status]/[result]/[scrape] subcommands and
    the CI smoke test are built on; everything returns [result] rather
    than raising, so callers map outcomes onto exit codes directly. *)

type t
(** A client handle: just the socket path; no live connection. *)

val connect : socket:string -> t

val request :
  t -> Protocol_wire.request -> (Protocol_wire.response, string) result
(** One full HTTP exchange: connect, send, read the response,
    close. [Error] on connection failure or malformed response —
    typically "no daemon on that socket". *)

val submit :
  ?threshold:float ->
  ?fov_ud:float ->
  ?input_high:float ->
  ?replicates:int ->
  ?priority:int ->
  t ->
  circuit:string ->
  (Protocol_wire.response, string) result
(** [POST /v1/jobs] with the given coordinates. The response is
    returned whatever its status — admission rejections (422/429/400)
    are data, not transport errors. *)

val status : t -> id:string -> (Protocol_wire.response, string) result
(** [GET /v1/jobs/ID]. *)

val list_jobs : t -> (Protocol_wire.response, string) result
(** [GET /v1/jobs]. *)

val result :
  ?wait:bool -> ?timeout_s:float -> t -> id:string ->
  (Protocol_wire.response, string) result
(** [GET /v1/jobs/ID/result]. With [wait] (default false), polls every
    200 ms while the daemon answers 409 (queued/running), up to
    [timeout_s] (default 300); any other status — 200 done, 404, 500 —
    returns immediately. On timeout, the last 409 response is
    returned, so callers still see the job's phase. *)

val cancel : t -> id:string -> (Protocol_wire.response, string) result
(** [DELETE /v1/jobs/ID]. *)

val health : t -> (Protocol_wire.response, string) result

val metrics : t -> (string, string) result
(** [GET /metrics] — the text exposition body. *)

val job_id_of_response : Protocol_wire.response -> string option
(** Extracts ["job"]["id"] (submit replies) or top-level ["id"]
    (status replies) from a JSON body — how the CLI chains submit into
    status/result without re-deriving the id. *)
