(** Admission control: what happens to a submission at the door.

    The daemon spends simulation time only on jobs that deserve it, in
    an order it controls, under a memory bound it enforces. Admission
    is that policy, in sequence:

    + {b validate} — the submission must name a resolvable circuit and
      carry legal parameters (checked through the campaign grid
      constructor, so serve and batch enforce identical rules);
    + {b deduplicate} — the job id is content-derived, so a duplicate
      submission is recognised exactly: if the result is already in
      the {!Glc_campaign.Store} (this daemon life or a previous one)
      it is served straight from disk, and if the job is already
      queued/running the existing entry is returned — no simulation,
      no queue slot;
    + {b lint pre-flight} — the circuit runs the full
      {!Glc_lint.Lint.circuit} static pass under the job's protocol;
      lint {e errors} reject the submission with the GLC diagnostics
      in the response body, before any queue slot or SSA step is
      spent;
    + {b backpressure} — a full {!Scheduler} rejects with a
      retry-after hint derived from the observed job rate, rather than
      growing without bound;
    + {b persist} — an accepted job is recorded under
      [<state>/submitted/<id>.json] (atomic write) and journaled
      [scheduled] {e before} it is enqueued, so a daemon killed at any
      instant re-discovers every acknowledged job on restart.

    All entry points must be called under the server's state mutex. *)

module Grid := Glc_campaign.Grid
module Store := Glc_campaign.Store
module Journal := Glc_campaign.Journal
module Diagnostic := Glc_lint.Diagnostic

type config = {
  seed : int;  (** daemon root seed; job seeds derive from it *)
  total_time : float;
  hold_time : float;
  lint_admission : bool;  (** run the lint pre-flight (default) *)
  queue_capacity : int;
}

val config :
  ?seed:int -> ?total_time:float -> ?hold_time:float ->
  ?lint_admission:bool -> ?queue_capacity:int -> unit -> config
(** Defaults: seed 42, the paper's 10,000/1,000 t.u. protocol, lint
    on, capacity 64.
    @raise Invalid_argument on non-positive times or capacity. *)

type t = {
  cfg : config;
  registry : Jobstate.registry;
  scheduler : Jobstate.entry Scheduler.t;
  store : Store.t;
  journal : Journal.t;
  submitted_dir : string;
  metrics : Glc_obs.Metrics.t;
  mutable avg_job_seconds : float;
      (** EWMA of completed-job wall time; feeds the retry-after hint *)
}

val create :
  cfg:config -> store:Store.t -> journal:Journal.t ->
  metrics:Glc_obs.Metrics.t -> state_dir:string -> t

(** A parsed submission request body. *)
type submit = {
  sub_circuit : string;
  sub_threshold : float option;
  sub_fov_ud : float option;
  sub_input_high : float option;
  sub_replicates : int option;
  sub_priority : int option;  (** 0–9, default 5; higher runs earlier *)
}

val submit_of_json : string -> (submit, string) result
(** Parses [{"circuit":…,"threshold":…,…,"priority":…}]; only
    [circuit] is required. Unknown fields are ignored. *)

type outcome =
  | Accepted of Jobstate.entry  (** enqueued; signal the worker *)
  | Duplicate of Jobstate.entry
      (** already known to this daemon (any phase) — no new work *)
  | Completed of Jobstate.entry * string
      (** result already in the store; entry registered as done,
          document attached *)
  | Rejected_lint of Diagnostic.t list  (** lint errors; GLC codes *)
  | Rejected_busy of int  (** queue full; retry-after seconds *)
  | Invalid of string  (** unresolvable circuit / illegal parameters *)

val admit : t -> now:float -> submit -> outcome
(** Runs the policy above. Counts [serve.jobs_submitted],
    [serve.dedup_hits], [serve.admission_rejected_lint],
    [serve.admission_rejected_busy] and maintains the
    [serve.queue_depth] gauge. *)

val retry_after : queue_depth:int -> avg_job_seconds:float -> int
(** The backpressure hint: roughly the time the current queue needs to
    drain at the observed rate, [ceil (depth × avg)] clamped to
    [1–600] seconds. Pure — unit-tested against a fake clock's
    averages. *)

val note_job_seconds : t -> float -> unit
(** Feeds a completed job's wall time into the EWMA (worker calls it). *)

val protocol_of : t -> Grid.job -> Glc_dvasim.Protocol.t
(** The protocol a job will execute under — also what the lint
    pre-flight checks against. *)

val submitted_path : t -> id:string -> string

val persist_submission : t -> Jobstate.entry -> unit
(** Atomic write of the admission record. *)

val remove_submission : t -> id:string -> unit
(** Removes the record once the job is done or cancelled. Never
    raises. *)

val pending_submissions :
  state_dir:string -> ((Grid.job * int * int) list, string) result
(** All persisted admission records under [state_dir], sorted by
    sequence number — what a restarting daemon re-enqueues (after
    dropping the ones whose result is already stored). Unreadable or
    unparseable records are skipped, not fatal. *)
