module W = Protocol_wire
module Store = Glc_campaign.Store
module Diagnostic = Glc_lint.Diagnostic
module Metrics = Glc_obs.Metrics
module Json = Glc_core.Report.Json

type ctx = {
  adm : Admission.t;
  mutex : Mutex.t;
  cond : Condition.t;
  clock : unit -> float;
  started_at : float;
  mutable running : string option;
  mutable stopping : bool;
}

let make_ctx ?(clock = Unix.gettimeofday) adm =
  {
    adm;
    mutex = Mutex.create ();
    cond = Condition.create ();
    clock;
    started_at = clock ();
    running = None;
    stopping = false;
  }

let locked ctx f =
  Mutex.lock ctx.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock ctx.mutex) f

let error_body message = Printf.sprintf "{\"error\":%s}" (Json.string message)

let submit_reply ~now ~dedup entry =
  Printf.sprintf "{\"dedup\":%s,\"job\":%s}" (Json.bool dedup)
    (Jobstate.status_json ~now entry)

(* ---- handlers (called under the ctx mutex) ---- *)

let post_job ctx body =
  let now = ctx.clock () in
  if ctx.stopping then
    W.response 503 (error_body "daemon is shutting down")
  else
    match Admission.submit_of_json body with
    | Error m -> W.response 400 (error_body m)
    | Ok sub -> (
        match Admission.admit ctx.adm ~now sub with
        | Admission.Accepted entry ->
            Condition.signal ctx.cond;
            W.response 202 (submit_reply ~now ~dedup:false entry)
        | Admission.Duplicate entry ->
            W.response 200 (submit_reply ~now ~dedup:true entry)
        | Admission.Completed (entry, _doc) ->
            W.response 200 (submit_reply ~now ~dedup:true entry)
        | Admission.Rejected_lint ds ->
            W.response 422
              (Printf.sprintf "{\"error\":\"lint\",\"diagnostics\":%s}"
                 (Diagnostic.list_to_json ds))
        | Admission.Rejected_busy retry_after ->
            W.response 429
              ~headers:[ ("Retry-After", string_of_int retry_after) ]
              (Printf.sprintf
                 "{\"error\":\"queue full\",\"retry_after_s\":%d}" retry_after)
        | Admission.Invalid m -> W.response 400 (error_body m))

let list_jobs ctx =
  let now = ctx.clock () in
  let entries = Jobstate.entries ctx.adm.Admission.registry in
  let jobs =
    entries
    |> List.map (Jobstate.status_json ~now)
    |> String.concat ","
  in
  W.response 200
    (Printf.sprintf "{\"jobs\":[%s],\"queue_depth\":%d}" jobs
       (Scheduler.length ctx.adm.Admission.scheduler))

let job_status ctx id =
  match Jobstate.find ctx.adm.Admission.registry id with
  | None -> W.response 404 (error_body ("unknown job " ^ id))
  | Some entry ->
      W.response 200 (Jobstate.status_json ~now:(ctx.clock ()) entry)

let job_result ctx id =
  match Jobstate.find ctx.adm.Admission.registry id with
  | None -> (
      (* a previous daemon life may have completed it: results are
         durable even though registry entries are not *)
      match Store.get ctx.adm.Admission.store ~id with
      | Some doc -> W.response 200 doc
      | None -> W.response 404 (error_body ("unknown job " ^ id)))
  | Some entry -> (
      match entry.Jobstate.phase with
      | Jobstate.Done -> (
          match Store.get ctx.adm.Admission.store ~id with
          | Some doc -> W.response 200 doc
          | None ->
              W.response 500
                (error_body "result record missing from the store"))
      | Jobstate.Failed m ->
          W.response 500
            (Printf.sprintf "{\"error\":\"job failed\",\"detail\":%s}"
               (Json.string m))
      | Jobstate.Cancelled ->
          W.response 409 (error_body "job was cancelled")
      | Jobstate.Queued | Jobstate.Running ->
          W.response 409
            (Printf.sprintf
               "{\"error\":\"job not done\",\"status\":%s}"
               (Json.string (Jobstate.phase_label entry.Jobstate.phase))))

let cancel_job ctx id =
  match Jobstate.find ctx.adm.Admission.registry id with
  | None -> W.response 404 (error_body ("unknown job " ^ id))
  | Some entry -> (
      match entry.Jobstate.phase with
      | Jobstate.Queued -> (
          match
            Scheduler.remove ctx.adm.Admission.scheduler (fun e ->
                String.equal e.Jobstate.id id)
          with
          | None ->
              (* raced with the worker between phase check and pop *)
              W.response 409 (error_body "job already started")
          | Some _ ->
              entry.Jobstate.phase <- Jobstate.Cancelled;
              Admission.remove_submission ctx.adm ~id;
              Metrics.Counter.incr
                (Metrics.counter ctx.adm.Admission.metrics
                   "serve.jobs_cancelled");
              Metrics.Gauge.set
                (Metrics.gauge ctx.adm.Admission.metrics "serve.queue_depth")
                (float_of_int (Scheduler.length ctx.adm.Admission.scheduler));
              W.response 200
                (Jobstate.status_json ~now:(ctx.clock ()) entry))
      | Jobstate.Running ->
          W.response 409 (error_body "job is running; cannot cancel")
      | Jobstate.Done | Jobstate.Failed _ | Jobstate.Cancelled ->
          W.response 409
            (error_body
               ("job is already " ^ Jobstate.phase_label entry.Jobstate.phase)))

let health ctx =
  let reg = ctx.adm.Admission.registry in
  W.response 200
    (Printf.sprintf
       "{\"ok\":true,\"uptime_s\":%s,\"queued\":%d,\"running\":%d,\"done\":%d,\"failed\":%d,\"cancelled\":%d}"
       (Json.float (Float.max 0. (ctx.clock () -. ctx.started_at)))
       (Jobstate.count reg Jobstate.Queued)
       (Jobstate.count reg Jobstate.Running)
       (Jobstate.count reg Jobstate.Done)
       (Jobstate.count reg (Jobstate.Failed ""))
       (Jobstate.count reg Jobstate.Cancelled))

let metrics_scrape ctx =
  W.response ~content_type:"text/plain; version=0.0.4" 200
    (Metrics.to_text ctx.adm.Admission.metrics)

let route ctx (req : W.request) =
  let path = W.path_of_target req.W.target in
  match (req.W.meth, W.split_path path) with
  | W.POST, [ "v1"; "jobs" ] -> locked ctx (fun () -> post_job ctx req.W.body)
  | W.GET, [ "v1"; "jobs" ] -> locked ctx (fun () -> list_jobs ctx)
  | W.GET, [ "v1"; "jobs"; id ] -> locked ctx (fun () -> job_status ctx id)
  | W.GET, [ "v1"; "jobs"; id; "result" ] ->
      locked ctx (fun () -> job_result ctx id)
  | W.DELETE, [ "v1"; "jobs"; id ] -> locked ctx (fun () -> cancel_job ctx id)
  | W.GET, [ "health" ] -> locked ctx (fun () -> health ctx)
  | W.GET, [ "metrics" ] ->
      (* to_text takes the registry's own locks; no ctx mutex needed *)
      metrics_scrape ctx
  | _ -> W.response 404 (error_body ("no route for " ^ path))

let handle ctx req =
  let metrics = ctx.adm.Admission.metrics in
  let t0 = ctx.clock () in
  let resp = try route ctx req with e -> W.response 500 (error_body (Printexc.to_string e)) in
  Metrics.Counter.incr (Metrics.counter metrics "serve.requests");
  if resp.W.status >= 400 then
    Metrics.Counter.incr (Metrics.counter metrics "serve.http_errors");
  Metrics.Histogram.observe
    (Metrics.histogram metrics "serve.request_seconds")
    (Float.max 0. (ctx.clock () -. t0));
  resp
