module W = Protocol_wire
module Grid = Glc_campaign.Grid
module Store = Glc_campaign.Store
module Journal = Glc_campaign.Journal
module Runner = Glc_campaign.Runner
module Pool = Glc_engine.Pool
module Cache = Glc_engine.Cache
module Metrics = Glc_obs.Metrics
module Json = Glc_core.Report.Json

type config = {
  socket_path : string;
  state_dir : string;
  pool_jobs : int;
  queue_capacity : int;
  seed : int;
  total_time : float;
  hold_time : float;
  lint_admission : bool;
  start_worker : bool;
  metrics : Glc_obs.Metrics.t;
}

let config ~socket_path ~state_dir ?(pool_jobs = 0) ?(queue_capacity = 64)
    ?(seed = 42) ?(total_time = 10_000.) ?(hold_time = 1_000.)
    ?(lint_admission = true) ?(start_worker = true)
    ?(metrics = Metrics.noop) () =
  {
    socket_path;
    state_dir;
    pool_jobs;
    queue_capacity;
    seed;
    total_time;
    hold_time;
    lint_admission;
    start_worker;
    metrics;
  }

type t = {
  s_cfg : config;
  s_ctx : Session.ctx;
  s_store : Store.t;
  s_journal : Journal.t;
  s_lock : Store.Lock.lock;
  s_listen : Unix.file_descr;
  s_interrupt : bool Atomic.t;
}

let ctx t = t.s_ctx
let effective_config t = t.s_cfg

let manifest_json cfg =
  Printf.sprintf
    "{\"serve\":1,\"seed\":%d,\"total_time\":%s,\"hold_time\":%s}" cfg.seed
    (Json.float cfg.total_time) (Json.float cfg.hold_time)

(* An existing manifest wins over the flags: the stored results were
   computed under its seed and protocol, and resume-determinism
   requires finishing under the same ones. *)
let manifest_override cfg text =
  match Json.parse text with
  | Error m -> Error (Printf.sprintf "unreadable serve manifest: %s" m)
  | Ok doc -> (
      match Json.member doc "serve" with
      | None ->
          Error
            "state directory holds a campaign manifest, not a serve one \
             (use a separate --state directory)"
      | Some _ -> (
          let num k = Option.bind (Json.member doc k) Json.to_number in
          let int k = Option.bind (Json.member doc k) Json.to_int in
          match (int "seed", num "total_time", num "hold_time") with
          | Some seed, Some total_time, Some hold_time ->
              Ok { cfg with seed; total_time; hold_time }
          | _ -> Error "serve manifest lacks seed/total_time/hold_time"))

let open_store cfg =
  if Sys.file_exists (Filename.concat cfg.state_dir "MANIFEST.json") then
    match Store.load ~dir:cfg.state_dir with
    | Error m -> Error m
    | Ok (store, manifest) -> (
        match manifest_override cfg manifest with
        | Error m -> Error m
        | Ok cfg -> Ok (store, cfg))
  else
    match Store.create ~dir:cfg.state_dir (manifest_json cfg) with
    | Error m -> Error m
    | Ok store -> Ok (store, cfg)

(* Re-enqueue every persisted-but-unfinished submission; register the
   finished ones as done so their status survives the restart. *)
let resume_submissions adm ~state_dir ~metrics =
  match Admission.pending_submissions ~state_dir with
  | Error m -> Error m
  | Ok records ->
      let now = Unix.gettimeofday () in
      let resumed = ref 0 in
      List.iter
        (fun (job, priority, seq) ->
          let id = Grid.job_id job in
          let entry = Jobstate.make ~job ~priority ~seq ~now in
          if Store.mem adm.Admission.store ~id then begin
            (* result landed before the crash removed the record *)
            entry.Jobstate.phase <- Jobstate.Done;
            entry.Jobstate.from_cache <- true;
            Admission.remove_submission adm ~id
          end
          else begin
            match
              Scheduler.push_seq adm.Admission.scheduler ~priority ~seq entry
            with
            | `Full -> () (* capacity shrank across restarts; next life *)
            | `Queued _ ->
                incr resumed;
                Journal.append adm.Admission.journal (Journal.Scheduled id)
          end;
          Jobstate.add adm.Admission.registry entry)
        records;
      if !resumed > 0 then
        Metrics.Counter.add
          (Metrics.counter metrics "serve.jobs_resumed")
          !resumed;
      Metrics.Gauge.set
        (Metrics.gauge metrics "serve.queue_depth")
        (float_of_int (Scheduler.length adm.Admission.scheduler));
      Ok ()

let bind_socket path =
  if Sys.file_exists path then
    (* the state-dir lock is the liveness guard; a leftover socket file
       here is from a dead daemon (or a colliding path — either way,
       binding requires removing it) *)
    (try Unix.unlink path with Unix.Unix_error _ -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match
    Unix.bind fd (Unix.ADDR_UNIX path);
    Unix.listen fd 16
  with
  | () -> Ok fd
  | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error
        (Printf.sprintf "cannot listen on %s: %s" path (Unix.error_message e))

let create cfg =
  Store.mkdir_p cfg.state_dir;
  match Store.Lock.acquire ~dir:cfg.state_dir with
  | Error m -> Error m
  | Ok lock -> (
      let fail m =
        Store.Lock.release lock;
        Error m
      in
      match open_store cfg with
      | Error m -> fail m
      | Ok (store, cfg) -> (
          let journal = Journal.open_ ~dir:cfg.state_dir in
          let adm_cfg =
            Admission.config ~seed:cfg.seed ~total_time:cfg.total_time
              ~hold_time:cfg.hold_time ~lint_admission:cfg.lint_admission
              ~queue_capacity:cfg.queue_capacity ()
          in
          let adm =
            Admission.create ~cfg:adm_cfg ~store ~journal
              ~metrics:cfg.metrics ~state_dir:cfg.state_dir
          in
          match
            resume_submissions adm ~state_dir:cfg.state_dir
              ~metrics:cfg.metrics
          with
          | Error m ->
              Journal.close journal;
              fail m
          | Ok () -> (
              match bind_socket cfg.socket_path with
              | Error m ->
                  Journal.close journal;
                  fail m
              | Ok listen ->
                  Ok
                    {
                      s_cfg = cfg;
                      s_ctx = Session.make_ctx adm;
                      s_store = store;
                      s_journal = journal;
                      s_lock = lock;
                      s_listen = listen;
                      s_interrupt = Atomic.make false;
                    })))

let stop t =
  Atomic.set t.s_interrupt true;
  let ctx = t.s_ctx in
  Mutex.lock ctx.Session.mutex;
  ctx.Session.stopping <- true;
  Condition.broadcast ctx.Session.cond;
  Mutex.unlock ctx.Session.mutex

let install_signal_handlers t =
  let flag _ = Atomic.set t.s_interrupt true in
  Sys.set_signal Sys.sigint (Sys.Signal_handle flag);
  Sys.set_signal Sys.sigterm (Sys.Signal_handle flag)

(* ---- worker ---- *)

let run_one t ~pool ~cache entry =
  let cfg = t.s_cfg in
  let metrics = cfg.metrics in
  let job = entry.Jobstate.job in
  let spec =
    Jobstate.spec_for ~seed:cfg.seed ~total_time:cfg.total_time
      ~hold_time:cfg.hold_time job
  in
  let t0 = Unix.gettimeofday () in
  let result =
    try Ok (Runner.run_job ~metrics ~pool ~cache spec job)
    with e -> Error (Printexc.to_string e)
  in
  (Unix.gettimeofday () -. t0, result)

let worker_loop t ~pool ~cache =
  let ctx = t.s_ctx in
  let adm = ctx.Session.adm in
  let metrics = t.s_cfg.metrics in
  let gauge name v = Metrics.Gauge.set (Metrics.gauge metrics name) v in
  let rec loop () =
    Mutex.lock ctx.Session.mutex;
    while
      Scheduler.is_empty adm.Admission.scheduler
      && not ctx.Session.stopping
    do
      Condition.wait ctx.Session.cond ctx.Session.mutex
    done;
    if ctx.Session.stopping then Mutex.unlock ctx.Session.mutex
    else
      match Scheduler.pop adm.Admission.scheduler with
      | None ->
          Mutex.unlock ctx.Session.mutex;
          loop ()
      | Some (_, entry) ->
          let id = entry.Jobstate.id in
          entry.Jobstate.phase <- Jobstate.Running;
          entry.Jobstate.attempts <- entry.Jobstate.attempts + 1;
          ctx.Session.running <- Some id;
          gauge "serve.jobs_running" 1.;
          gauge "serve.queue_depth"
            (float_of_int (Scheduler.length adm.Admission.scheduler));
          Metrics.Histogram.observe
            (Metrics.histogram metrics "serve.queue_wait_seconds")
            (Float.max 0.
               (Unix.gettimeofday () -. entry.Jobstate.submitted_at));
          Journal.append t.s_journal (Journal.Started id);
          Mutex.unlock ctx.Session.mutex;
          let dt, result = run_one t ~pool ~cache entry in
          Mutex.lock ctx.Session.mutex;
          (match result with
          | Ok doc ->
              Store.put t.s_store ~id doc;
              Journal.append t.s_journal (Journal.Done id);
              entry.Jobstate.phase <- Jobstate.Done;
              Admission.remove_submission adm ~id;
              Admission.note_job_seconds adm dt;
              Metrics.Counter.incr
                (Metrics.counter metrics "serve.jobs_completed");
              Metrics.Histogram.observe
                (Metrics.histogram metrics "serve.job_seconds")
                dt
          | Error msg ->
              (* keep the submission record: a transient failure is
                 retried by the next daemon life *)
              Journal.append t.s_journal (Journal.Failed (id, msg));
              entry.Jobstate.phase <- Jobstate.Failed msg;
              Metrics.Counter.incr
                (Metrics.counter metrics "serve.jobs_failed"));
          ctx.Session.running <- None;
          gauge "serve.jobs_running" 0.;
          Mutex.unlock ctx.Session.mutex;
          loop ()
  in
  loop ()

(* ---- connections ---- *)

let write_all fd s =
  let n = String.length s in
  let written = ref 0 in
  while !written < n do
    written := !written + Unix.write_substring fd s !written (n - !written)
  done

let connection t fd =
  let reader = W.fd_reader fd in
  let rec loop () =
    match W.read_request reader with
    | Ok None -> ()
    | Error m ->
        let resp =
          W.response 400
            (Printf.sprintf "{\"error\":%s}" (Json.string m))
        in
        write_all fd (W.render_response ~close:true resp)
    | Ok (Some req) ->
        let resp = Session.handle t.s_ctx req in
        let keep = W.keep_alive req && not (Atomic.get t.s_interrupt) in
        write_all fd (W.render_response ~close:(not keep) resp);
        if keep then loop ()
  in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () -> try loop () with Unix.Unix_error _ | Sys_error _ -> ())

(* ---- lifecycle ---- *)

let run t =
  let cfg = t.s_cfg in
  let pool =
    Pool.create
      ?jobs:(if cfg.pool_jobs > 0 then Some cfg.pool_jobs else None)
      ~metrics:cfg.metrics ()
  in
  let cache = Cache.create ~metrics:cfg.metrics () in
  let worker =
    if cfg.start_worker then
      Some (Thread.create (fun () -> worker_loop t ~pool ~cache) ())
    else None
  in
  let rec accept_loop () =
    if Atomic.get t.s_interrupt then stop t
    else begin
      (match Unix.select [ t.s_listen ] [] [] 0.25 with
      | [], _, _ -> ()
      | _ :: _, _, _ -> (
          match Unix.accept t.s_listen with
          | exception Unix.Unix_error _ -> ()
          | fd, _ -> ignore (Thread.create (connection t) fd))
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      if not t.s_ctx.Session.stopping then accept_loop ()
    end
  in
  accept_loop ();
  stop t;
  (try Unix.close t.s_listen with Unix.Unix_error _ -> ());
  (try Unix.unlink cfg.socket_path with Unix.Unix_error _ -> ());
  Option.iter Thread.join worker;
  Pool.shutdown pool;
  Mutex.lock t.s_ctx.Session.mutex;
  Journal.close t.s_journal;
  Mutex.unlock t.s_ctx.Session.mutex;
  Store.Lock.release t.s_lock
