(** Job descriptors and lifecycle state of the verification service.

    A serve job {e is} a campaign job ({!Glc_campaign.Grid.job}): the
    same coordinates (circuit, threshold, FOV_UD, input-high,
    replicates), the same content-derived {!Glc_campaign.Grid.job_id}
    and the same content-derived seed — which is what makes a job's
    result document byte-identical whether it was produced by [glcv
    verify]-style batch drains or by the daemon, and makes duplicate
    submissions collapse onto one identifier.

    An {!entry} tracks one admitted job through
    [queued → running → done/failed] (or [cancelled] from the queue).
    Entries live in a {!registry} owned by the server; all mutation
    happens under the server's mutex — the registry itself is
    deliberately unsynchronised plain data. *)

module Grid := Glc_campaign.Grid

type phase =
  | Queued
  | Running
  | Done
  | Failed of string  (** captured execution error *)
  | Cancelled

val phase_label : phase -> string
(** ["queued"], ["running"], ["done"], ["failed"], ["cancelled"]. *)

type entry = {
  id : string;  (** {!Glc_campaign.Grid.job_id} of [job] *)
  job : Grid.job;
  priority : int;
  seq : int;  (** admission order — the scheduler's FIFO tiebreak *)
  submitted_at : float;  (** server clock, seconds *)
  mutable phase : phase;
  mutable from_cache : bool;
      (** result served from the store / a previous daemon life rather
          than freshly computed *)
  mutable attempts : int;  (** executions started, across restarts *)
}

val make :
  job:Grid.job -> priority:int -> seq:int -> now:float -> entry
(** A fresh [Queued] entry; [id] is derived from [job]. *)

val job :
  circuit:string ->
  ?threshold:float ->
  ?fov_ud:float ->
  ?input_high:float ->
  ?replicates:int ->
  unit ->
  (Grid.job, string) result
(** Builds and validates one job through a single-cell
    {!Glc_campaign.Grid.make} grid, so admission enforces exactly the
    axis constraints campaigns do (positive threshold/FOV/level,
    replicates ≥ 1). Omitted parameters take the paper's defaults. *)

val spec_for :
  seed:int -> total_time:float -> hold_time:float -> Grid.job ->
  Grid.spec
(** The single-job campaign spec a job executes under — the daemon's
    protocol parameters around a one-cell grid. Feeding this to
    {!Glc_campaign.Runner.run_job} yields the identical bytes a
    campaign over the same cell would store. *)

val status_json : now:float -> entry -> string
(** The job's status document, e.g.
    [{"id":…,"circuit":…,…,"status":"queued","priority":5,
    "from_cache":false,"attempts":0,"age_s":1.5}]. The [error] field
    appears only for failed jobs. *)

val submission_json : entry -> string
(** The persisted admission record ([<state>/submitted/<id>.json]) —
    everything needed to re-enqueue the job after a daemon restart:
    coordinates, priority, sequence number. Contains no clock. *)

val submission_of_json :
  string -> (Grid.job * int * int, string) result
(** Parses a {!submission_json} record back into
    [(job, priority, seq)]. *)

(** {2 Registry} *)

type registry

val registry : unit -> registry

val find : registry -> string -> entry option

val add : registry -> entry -> unit
(** Replaces any previous entry under the same id. *)

val entries : registry -> entry list
(** All entries in admission ([seq]) order. *)

val count : registry -> phase -> int
(** Entries currently in a phase ([Failed _] counts as one phase). *)
