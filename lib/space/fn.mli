(** Enumeration and synthesis of the Boolean function space.

    One stop for "give me function [0xNN] as a thing I can simulate":
    names, minimal NOT/NOR netlists, assembled gate-library circuits
    and the static facts the atlas reports about each function
    (NPN class, gate count, depth, bio-class flags).

    All 256 3-input functions synthesise within the stock
    twelve-repressor library (the worst case, parity [0x69], needs
    exactly 12 gates); 4-input functions extend the library
    automatically ({!Glc_gates.Cello.of_code}). *)

type info = {
  i_code : int;  (** truth-table code *)
  i_arity : int;
  i_name : string;  (** {!Glc_gates.Cello.name_of_code} *)
  i_class : int;  (** NPN representative, {!Npn.canonical} *)
  i_gates : int;  (** NOT/NOR gates in the minimal netlist *)
  i_depth : int;  (** longest input→output gate path *)
  i_unate : bool;
  i_canalizing : bool;
  i_nested_canalizing : bool;
}

val name_of_code : arity:int -> int -> string
(** Alias of {!Glc_gates.Cello.name_of_code}. *)

val netlist : arity:int -> int -> Glc_logic.Netlist.t
(** Minimal NOT/NOR netlist of the function, over the sensor names in
    the assembly convention (net index [i] = sensor [n-1-i], see
    {!Glc_gates.Assembly.of_netlist}). *)

val circuit : arity:int -> int -> Glc_gates.Circuit.t
(** Alias of {!Glc_gates.Cello.of_code}. *)

val describe : arity:int -> int -> info
(** Synthesises the netlist and classifies the function. *)

val all_codes : arity:int -> int list
(** [0 .. 2^2^arity - 1]. *)

val sample_codes : arity:int -> seed:int -> int -> int list
(** A deterministic uniform sample (without replacement) of [n] codes,
    sorted ascending — a seeded Fisher–Yates prefix over the full
    space. [n] larger than the space returns every code.
    @raise Invalid_argument if [n < 1]. *)
