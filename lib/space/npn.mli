(** NPN classification of Boolean functions.

    Two [n]-input functions are NPN-equivalent when one can be obtained
    from the other by {b N}egating inputs, {b P}ermuting inputs, and/or
    {b N}egating the output. Equivalent functions synthesise to
    netlists of the same gate count and depth (the transforms are free
    at the wire level: swap sensors, swap a repressor's sense, read the
    reporter inverted), so the atlas enumerates one representative per
    class and expands it back to all members for verification.

    Functions are truth-table codes in the repo's Cello convention: bit
    [r] of the code is the output for input combination [r]
    ({!Glc_logic.Truth_table.of_code}). For [n = 3] there are exactly
    14 classes covering all 256 functions — pinned by a regression
    test.

    The classifier also recognises the biologically important function
    classes of Ray / Das / Choudhury (PAPERS.md): {e unate},
    {e canalizing} and {e nested-canalizing} functions, which dominate
    the regulatory logic observed in real gene networks. By convention
    the two constant functions count as neither canalizing nor
    nested-canalizing (they fix no variable), and as (vacuously)
    unate. All three properties are NPN-invariant, so they are
    well-defined per class. *)

type transform = {
  perm : int array;  (** input [j] of the image reads input [perm.(j)] *)
  flip : int;  (** bitmask: input [j] is negated when bit [j] is set *)
  negate : bool;  (** the output is negated *)
}

val transforms : arity:int -> transform list
(** All [arity! * 2^arity * 2] NPN transforms, in a deterministic
    order. 96 for [arity = 3], 768 for [arity = 4]. *)

val apply : arity:int -> transform -> int -> int
(** [apply ~arity tr code] is the truth-table code of the transformed
    function [g(x) = f(y) xor negate] with
    [y_j = x_(perm j) xor flip_j]. *)

val canonical : arity:int -> int -> int
(** The class representative: the numerically smallest code in the
    orbit of [code] under all transforms. *)

val classes : arity:int -> (int * int list) list
(** Every NPN class of the full [2^2^arity]-function space as
    [(representative, sorted members)], sorted by representative.
    Intended for [arity <= 3] (the [arity = 4] space has 65,536
    functions — classify sampled codes individually with {!canonical}
    instead). *)

val class_count : arity:int -> int
(** [List.length (classes ~arity)] — 14 for [arity = 3]. *)

val is_unate : arity:int -> int -> bool
(** Monotone (in either direction) in every variable. *)

val is_canalizing : arity:int -> int -> bool
(** Some input has a value that alone fixes the output. Constants are
    not canalizing (convention above). *)

val is_nested_canalizing : arity:int -> int -> bool
(** Canalizing, and for {e some} canalizing input the subfunction left
    when that input takes its non-canalizing value is recursively
    nested-canalizing (with the 1-input identity/negation as base
    case). Functions whose nesting chain degenerates to a constant
    before consuming every variable — projections, say — do not
    qualify. *)
