module Truth_table = Glc_logic.Truth_table
module Netlist = Glc_logic.Netlist
module Assembly = Glc_gates.Assembly
module Cello = Glc_gates.Cello
module Rng = Glc_ssa.Rng

type info = {
  i_code : int;
  i_arity : int;
  i_name : string;
  i_class : int;
  i_gates : int;
  i_depth : int;
  i_unate : bool;
  i_canalizing : bool;
  i_nested_canalizing : bool;
}

let name_of_code = Cello.name_of_code

let reversed_sensors arity =
  let s = Assembly.sensors arity in
  Array.init arity (fun i -> s.(arity - 1 - i))

let netlist ~arity code =
  Netlist.of_truth_table ~inputs:(reversed_sensors arity)
    (Truth_table.of_code ~arity code)

let circuit ~arity code = Cello.of_code ~arity code

let describe ~arity code =
  let nl = netlist ~arity code in
  {
    i_code = code;
    i_arity = arity;
    i_name = name_of_code ~arity code;
    i_class = Npn.canonical ~arity code;
    i_gates = Netlist.gate_count nl;
    i_depth = Netlist.depth nl;
    i_unate = Npn.is_unate ~arity code;
    i_canalizing = Npn.is_canalizing ~arity code;
    i_nested_canalizing = Npn.is_nested_canalizing ~arity code;
  }

let all_codes ~arity = List.init (1 lsl (1 lsl arity)) Fun.id

let sample_codes ~arity ~seed n =
  if n < 1 then invalid_arg "Fn.sample_codes: n must be >= 1";
  let nf = 1 lsl (1 lsl arity) in
  if n >= nf then all_codes ~arity
  else begin
    let rng = Rng.create seed in
    let a = Array.init nf Fun.id in
    (* Fisher–Yates prefix: after i swaps, a.(0..i-1) is a uniform
       i-sample without replacement *)
    for i = 0 to n - 1 do
      let j = i + Rng.int rng (nf - i) in
      let t = a.(i) in
      a.(i) <- a.(j);
      a.(j) <- t
    done;
    Array.sub a 0 n |> Array.to_list |> List.sort compare
  end
