type transform = { perm : int array; flip : int; negate : bool }

let permutations n =
  (* insertion-based, deterministic order *)
  let rec insert x = function
    | [] -> [ [ x ] ]
    | y :: ys as l ->
        (x :: l) :: List.map (fun r -> y :: r) (insert x ys)
  in
  let rec perms = function
    | [] -> [ [] ]
    | x :: xs -> List.concat_map (insert x) (perms xs)
  in
  perms (List.init n Fun.id) |> List.map Array.of_list

let transforms ~arity =
  if arity < 1 || arity > 6 then
    invalid_arg "Npn.transforms: arity must be in 1..6";
  let perms = permutations arity in
  List.concat_map
    (fun perm ->
      List.concat_map
        (fun flip -> [ { perm; flip; negate = false }; { perm; flip; negate = true } ])
        (List.init (1 lsl arity) Fun.id))
    perms

let apply ~arity tr code =
  let rows = 1 lsl arity in
  let out = ref 0 in
  for r = 0 to rows - 1 do
    let y = ref 0 in
    for j = 0 to arity - 1 do
      let bit = (r lsr tr.perm.(j)) land 1 in
      let bit = bit lxor ((tr.flip lsr j) land 1) in
      y := !y lor (bit lsl j)
    done;
    let b = (code lsr !y) land 1 in
    let b = if tr.negate then 1 - b else b in
    out := !out lor (b lsl r)
  done;
  !out

let canonical_with ~arity trs code =
  List.fold_left (fun best tr -> min best (apply ~arity tr code)) code trs

let canonical ~arity code = canonical_with ~arity (transforms ~arity) code

let classes ~arity =
  let trs = transforms ~arity in
  let nf = 1 lsl (1 lsl arity) in
  let tbl = Hashtbl.create 64 in
  for code = nf - 1 downto 0 do
    let rep = canonical_with ~arity trs code in
    let members = try Hashtbl.find tbl rep with Not_found -> [] in
    Hashtbl.replace tbl rep (code :: members)
  done;
  Hashtbl.fold (fun rep members acc -> (rep, members) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let class_count ~arity = List.length (classes ~arity)

let is_unate ~arity code =
  let rows = 1 lsl arity in
  let unate_in i =
    let inc = ref true and dec = ref true in
    for r = 0 to rows - 1 do
      if (r lsr i) land 1 = 0 then begin
        let f0 = (code lsr r) land 1
        and f1 = (code lsr (r lor (1 lsl i))) land 1 in
        if f0 > f1 then inc := false;
        if f0 < f1 then dec := false
      end
    done;
    !inc || !dec
  in
  let ok = ref true in
  for i = 0 to arity - 1 do
    if not (unate_in i) then ok := false
  done;
  !ok

(* restriction f|_{x_i = v} as a code of arity-1 *)
let restrict ~arity code i v =
  let rows' = 1 lsl (arity - 1) in
  let out = ref 0 in
  for r' = 0 to rows' - 1 do
    let low = r' land ((1 lsl i) - 1) in
    let high = (r' lsr i) lsl (i + 1) in
    let r = high lor (v lsl i) lor low in
    out := !out lor (((code lsr r) land 1) lsl r')
  done;
  !out

let constant ~arity code =
  let nf = 1 lsl (1 lsl arity) in
  code = 0 || code = nf - 1

let canalizing_pairs ~arity code =
  (* every (input, value) whose fixing alone fixes the output *)
  if constant ~arity code then []
  else begin
    let rows = 1 lsl arity in
    let acc = ref [] in
    for i = arity - 1 downto 0 do
      for v = 1 downto 0 do
        let first = ref (-1) and same = ref true in
        for r = 0 to rows - 1 do
          if (r lsr i) land 1 = v then begin
            let b = (code lsr r) land 1 in
            if !first < 0 then first := b
            else if b <> !first then same := false
          end
        done;
        if !same then acc := (i, v) :: !acc
      done
    done;
    !acc
  end

let is_canalizing ~arity code = canalizing_pairs ~arity code <> []

let rec is_nested_canalizing ~arity code =
  if constant ~arity code then false
  else if arity = 1 then code = 1 || code = 2 (* NOT x or x *)
  else
    (* some canalizing input must leave an NCF behind on its
       non-canalizing branch; greedy first-pair choice could miss a
       valid nesting order, so try them all *)
    List.exists
      (fun (i, v) ->
        is_nested_canalizing ~arity:(arity - 1) (restrict ~arity code i (1 - v)))
      (canalizing_pairs ~arity code)
