module Grid = Glc_campaign.Grid
module Store = Glc_campaign.Store
module Runner = Glc_campaign.Runner
module Resume = Glc_campaign.Resume
module Certificate = Glc_symbolic.Certificate
module Circuit = Glc_gates.Circuit
module Protocol = Glc_dvasim.Protocol
module Ode = Glc_ssa.Ode
module Events = Glc_ssa.Events
module Trace = Glc_ssa.Trace
module Truth_table = Glc_logic.Truth_table
module Metrics = Glc_obs.Metrics
module Json = Glc_core.Report.Json

type config = {
  inputs : int;
  sample : int option;
  seed : int;
  replicates : int;
  threshold : float;
  total_time : float;
  hold_time : float;
}

let default_config =
  let p = Protocol.default in
  {
    inputs = 3;
    sample = None;
    seed = 42;
    replicates = 16;
    threshold = p.Protocol.threshold;
    total_time = p.Protocol.total_time;
    hold_time = p.Protocol.hold_time;
  }

let plan cfg =
  if cfg.inputs < 2 || cfg.inputs > 4 then
    invalid_arg "Atlas.plan: inputs must be in 2..4";
  if cfg.inputs = 4 && cfg.sample = None then
    invalid_arg
      "Atlas.plan: the 4-input space has 65,536 functions — pass a sample \
       size";
  (* the stimulus must hold every input combination at least once, or
     an undecided function's ensemble would silently verify against a
     truncated table (the GLC011 lint condition, enforced up front
     because atlas jobs run unlinted) *)
  if cfg.total_time < cfg.hold_time *. float_of_int (1 lsl cfg.inputs)
  then
    invalid_arg
      (Printf.sprintf
         "Atlas.plan: total_time %g cannot hold all %d input \
          combinations for %g — raise --total to at least %g"
         cfg.total_time (1 lsl cfg.inputs) cfg.hold_time
         (cfg.hold_time *. float_of_int (1 lsl cfg.inputs)));
  let codes =
    match cfg.sample with
    | None -> Fn.all_codes ~arity:cfg.inputs
    | Some n -> Fn.sample_codes ~arity:cfg.inputs ~seed:cfg.seed n
  in
  let names = List.map (Fn.name_of_code ~arity:cfg.inputs) codes in
  let grid =
    Grid.make ~thresholds:[ cfg.threshold ]
      ~replicate_counts:[ cfg.replicates ] names
  in
  Grid.spec ~seed:cfg.seed ~total_time:cfg.total_time
    ~hold_time:cfg.hold_time grid

let prepare ~dir spec =
  let ( let* ) = Result.bind in
  if Sys.file_exists (Filename.concat dir "MANIFEST.json") then
    let* store, manifest = Store.load ~dir in
    let* stored = Grid.spec_of_json manifest in
    Ok (store, stored, Grid.spec_to_json stored <> Grid.spec_to_json spec)
  else
    let* store = Store.create ~dir (Grid.spec_to_json spec) in
    Ok (store, spec, false)

let certified_filter spec job =
  match Runner.resolve job.Grid.j_circuit with
  | Error _ -> true (* let the runner journal the failure *)
  | Ok circuit ->
      let protocol = Runner.job_protocol spec job in
      Certificate.fully_decided (Certificate.certify ~protocol circuit)

(* {2 Propagation delay} *)

type delay = {
  d_transitions : int;
  d_measured : int;
  d_worst : float option;
  d_from : int;
  d_to : int;
  d_rising : bool;
}

let delay_id name = "delay-" ^ name

let measure_delay ~protocol circuit =
  let arity = Circuit.arity circuit in
  let nc = 1 lsl arity in
  let expected = circuit.Circuit.expected in
  let threshold = protocol.Protocol.threshold in
  let settle = protocol.Protocol.hold_time in
  let timeout = 2.5 *. protocol.Protocol.hold_time in
  let level b =
    if b then protocol.Protocol.input_high else protocol.Protocol.input_low
  in
  let events ~from_row ~to_row =
    Events.of_list
      (List.concat
         (List.init arity (fun j ->
              let species = circuit.Circuit.inputs.(j) in
              [
                Events.set 0. species
                  (level (Circuit.input_value circuit ~row:from_row j));
                Events.set settle species
                  (level (Circuit.input_value circuit ~row:to_row j));
              ])))
  in
  let model = Circuit.model circuit in
  (* the deterministic limit at a coarse unit step: accurate to the
     trace-sampling resolution the stochastic analyser itself uses, and
     cheap enough to scan all 256 functions in seconds *)
  let cfg = Ode.config ~dt:1.0 ~step:1.0 ~t_end:(settle +. timeout) () in
  let transitions =
    List.filter_map
      (fun r ->
        let r' = (r + 1) mod nc in
        let a = Truth_table.output expected r
        and b = Truth_table.output expected r' in
        if a = b then None else Some (r, r', b))
      (List.init nc Fun.id)
  in
  let worst = ref None and measured = ref 0 in
  List.iter
    (fun (from_row, to_row, rising) ->
      let trace = Ode.run ~events:(events ~from_row ~to_row) cfg model in
      let out = Trace.column trace circuit.Circuit.output in
      let n = Trace.length trace in
      let crossing = ref None in
      (try
         for k = 0 to n - 1 do
           let t = Trace.time trace k in
           if t >= settle then begin
             let crossed =
               if rising then out.(k) >= threshold else out.(k) < threshold
             in
             if crossed then begin
               crossing := Some (t -. settle);
               raise Exit
             end
           end
         done
       with Exit -> ());
      match !crossing with
      | None -> ()
      | Some d ->
          incr measured;
          let better =
            match !worst with None -> true | Some (w, _, _, _) -> d > w
          in
          if better then worst := Some (d, from_row, to_row, rising))
    transitions;
  match !worst with
  | Some (w, f, t, r) ->
      {
        d_transitions = List.length transitions;
        d_measured = !measured;
        d_worst = Some w;
        d_from = f;
        d_to = t;
        d_rising = r;
      }
  | None ->
      {
        d_transitions = List.length transitions;
        d_measured = 0;
        d_worst = None;
        d_from = 0;
        d_to = 0;
        d_rising = false;
      }

let delay_doc ~name ~protocol d =
  let b = Buffer.create 256 in
  Buffer.add_string b "{\"id\":";
  Buffer.add_string b (Json.string (delay_id name));
  Buffer.add_string b ",\"kind\":\"delay\",\"circuit\":";
  Buffer.add_string b (Json.string name);
  Buffer.add_string b ",\"threshold\":";
  Buffer.add_string b (Json.float protocol.Protocol.threshold);
  Buffer.add_string b ",\"settle\":";
  Buffer.add_string b (Json.float protocol.Protocol.hold_time);
  Buffer.add_string b ",\"timeout\":";
  Buffer.add_string b (Json.float (2.5 *. protocol.Protocol.hold_time));
  Buffer.add_string b ",\"transitions\":";
  Buffer.add_string b (string_of_int d.d_transitions);
  Buffer.add_string b ",\"measured\":";
  Buffer.add_string b (string_of_int d.d_measured);
  Buffer.add_string b ",\"worst\":";
  (match d.d_worst with
  | None -> Buffer.add_string b "null"
  | Some w ->
      Buffer.add_string b "{\"delay\":";
      Buffer.add_string b (Json.float w);
      Buffer.add_string b ",\"from_row\":";
      Buffer.add_string b (string_of_int d.d_from);
      Buffer.add_string b ",\"to_row\":";
      Buffer.add_string b (string_of_int d.d_to);
      Buffer.add_string b ",\"rising\":";
      Buffer.add_string b (Json.bool d.d_rising);
      Buffer.add_string b "}");
  Buffer.add_string b "}";
  Buffer.contents b

let delay_of_doc doc =
  match Json.parse doc with
  | Error _ -> None
  | Ok v ->
      let int name = Option.bind (Json.member v name) Json.to_int in
      let transitions = Option.value ~default:0 (int "transitions")
      and measured = Option.value ~default:0 (int "measured") in
      let worst = Json.member v "worst" in
      let d =
        match worst with
        | Some (Json.Object _ as w) ->
            let wint name = Option.bind (Json.member w name) Json.to_int in
            {
              d_transitions = transitions;
              d_measured = measured;
              d_worst = Option.bind (Json.member w "delay") Json.to_number;
              d_from = Option.value ~default:0 (wint "from_row");
              d_to = Option.value ~default:0 (wint "to_row");
              d_rising =
                Option.value ~default:false
                  (Option.bind (Json.member w "rising") Json.to_bool);
            }
        | _ ->
            {
              d_transitions = transitions;
              d_measured = measured;
              d_worst = None;
              d_from = 0;
              d_to = 0;
              d_rising = false;
            }
      in
      Some d

let spec_circuits (spec : Grid.spec) = spec.Grid.grid.Grid.circuits

let circuit_job (spec : Grid.spec) name =
  (* atlas grids have one job per circuit (single threshold/replicates
     axis); the first expanded job of the name is it *)
  List.find (fun j -> j.Grid.j_circuit = name) (Grid.expand spec.Grid.grid)

let delay_coverage store spec =
  let names = spec_circuits spec in
  let measured =
    List.length
      (List.filter (fun n -> Store.mem store ~id:(delay_id n)) names)
  in
  (measured, List.length names)

(* {2 Running} *)

type summary = {
  a_functions : int;
  a_done : int;
  a_verified : int;
  a_failed : int;
  a_remaining : int;
  a_delays : int;
  a_delays_total : int;
}

let measure_delays ?(metrics = Metrics.noop) ?(should_stop = fun () -> false)
    store spec =
  let synth = Metrics.counter metrics "space.delays_measured" in
  List.iter
    (fun name ->
      let job = circuit_job spec name in
      let id = delay_id name in
      if
        (not (should_stop ()))
        && Store.mem store ~id:(Grid.job_id job)
        && not (Store.mem store ~id)
      then
        match Runner.resolve name with
        | Error _ -> ()
        | Ok circuit ->
            let protocol = Runner.job_protocol spec job in
            let t0 = Unix.gettimeofday () in
            let d = measure_delay ~protocol circuit in
            Metrics.observe_since metrics "space.delay_seconds" t0;
            Metrics.Counter.incr synth;
            Store.put store ~id (delay_doc ~name ~protocol d))
    (spec_circuits spec)

let run ?jobs ?limit ?on_progress ?metrics ?should_stop
    ?(certified_only = false) ~dir spec =
  let ( let* ) = Result.bind in
  let m = Option.value ~default:Metrics.noop metrics in
  let* store, spec, _plan_ignored = prepare ~dir spec in
  let names = spec_circuits spec in
  Metrics.span m "space:synthesise" (fun () ->
      let synthesised = Metrics.counter m "space.functions_synthesised" in
      List.iter
        (fun name ->
          match Glc_gates.Cello.code_of_name name with
          | None -> ()
          | Some (arity, code) ->
              ignore (Fn.describe ~arity code);
              Metrics.Counter.incr synthesised)
        names);
  let filter = if certified_only then Some (certified_filter spec) else None in
  let* _store, spec, s =
    Resume.run ?jobs ?limit ?on_progress ?metrics ?should_stop ?filter ~dir ()
  in
  let* () =
    Metrics.span m "space:delays" (fun () ->
        Store.Lock.with_lock ~dir (fun () ->
            measure_delays ~metrics:m ?should_stop store spec))
  in
  let lines = Store.lines store spec in
  let done_ = List.filter (fun l -> l.Store.l_done) lines in
  let verified = List.filter (fun l -> l.Store.l_verified) done_ in
  Metrics.Counter.add
    (Metrics.counter m "space.functions_verified")
    (List.length verified);
  let delays, _ = delay_coverage store spec in
  Ok
    {
      a_functions = List.length names;
      a_done = List.length done_;
      a_verified = List.length verified;
      a_failed = s.Runner.failed;
      a_remaining = List.length lines - List.length done_;
      a_delays = delays;
      a_delays_total = List.length done_;
    }

(* {2 Reporting} *)

type fentry = {
  f_info : Fn.info;
  f_line : Store.job_line;
  f_delay : delay option;
}

let entries store spec =
  let lines = Store.lines store spec in
  List.filter_map
    (fun (l : Store.job_line) ->
      let name = l.Store.l_job.Grid.j_circuit in
      match Glc_gates.Cello.code_of_name name with
      | None -> None
      | Some (arity, code) ->
          let f_delay =
            Option.bind (Store.get store ~id:(delay_id name)) delay_of_doc
          in
          Some { f_info = Fn.describe ~arity code; f_line = l; f_delay })
    lines

(* the frontier coordinate: measured worst delay, or 0 for a function
   with no output-changing transition (the constants); [None] bars the
   entry from frontiers until its delay exists *)
let delay_value e =
  match e.f_delay with
  | Some d when d.d_transitions = 0 -> Some 0.
  | Some { d_worst = Some w; _ } -> Some w
  | _ -> None

let pareto entries =
  (* maximise PFoBE, minimise delay, minimise gates *)
  let coords =
    List.filter_map
      (fun e ->
        if not e.f_line.Store.l_done then None
        else
          match delay_value e with
          | None -> None
          | Some d -> Some (e, e.f_line.Store.l_fitness_mean, d, e.f_info.Fn.i_gates))
      entries
  in
  let dominated (_, p, d, g) (f', p', d', g') =
    ignore f';
    p' >= p && d' <= d && g' <= g && (p' > p || d' < d || g' < g)
  in
  List.filter_map
    (fun ((e, _, _, _) as c) ->
      if List.exists (fun c' -> c' != c && dominated c c') coords then None
      else Some e)
    coords

let orbit_size ~arity rep =
  let distinct = Hashtbl.create 64 in
  List.iter
    (fun tr -> Hashtbl.replace distinct (Npn.apply ~arity tr rep) ())
    (Npn.transforms ~arity);
  Hashtbl.length distinct

let space_json store spec =
  let es = entries store spec in
  let arity =
    match es with e :: _ -> e.f_info.Fn.i_arity | [] -> 3
  in
  let full_space = 1 lsl (1 lsl arity) in
  let planned = List.length es in
  let done_ = List.filter (fun e -> e.f_line.Store.l_done) es in
  let verified = List.filter (fun e -> e.f_line.Store.l_verified) done_ in
  let by_provenance p =
    List.length
      (List.filter (fun e -> e.f_line.Store.l_provenance = p) done_)
  in
  (* classes present in this run, keyed by NPN representative *)
  let class_tbl = Hashtbl.create 32 in
  List.iter
    (fun e ->
      let rep = e.f_info.Fn.i_class in
      let old = try Hashtbl.find class_tbl rep with Not_found -> [] in
      Hashtbl.replace class_tbl rep (e :: old))
    es;
  let classes =
    Hashtbl.fold (fun rep ms acc -> (rep, List.rev ms) :: acc) class_tbl []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let global_frontier = pareto es in
  let class_frontiers =
    List.map (fun (rep, ms) -> (rep, pareto ms)) classes
  in
  let in_frontier frontier e = List.memq e frontier in
  let b = Buffer.create (4096 + (256 * planned)) in
  let add = Buffer.add_string b in
  let name_list es' =
    add "[";
    List.iteri
      (fun i e ->
        if i > 0 then add ",";
        add (Json.string e.f_info.Fn.i_name))
      es';
    add "]"
  in
  add "{\"space\":{\"version\":1,\"inputs\":";
  add (string_of_int arity);
  add ",\"functions\":";
  add (string_of_int planned);
  add ",\"full_space\":";
  add (string_of_int full_space);
  add ",\"sampled\":";
  add (Json.bool (planned < full_space));
  add ",\"seed\":";
  add (string_of_int spec.Grid.seed);
  add ",\"threshold\":";
  add
    (Json.float
       (match spec.Grid.grid.Grid.thresholds with
       | t :: _ -> t
       | [] -> Protocol.default.Protocol.threshold));
  add ",\"total_time\":";
  add (Json.float spec.Grid.total_time);
  add ",\"hold_time\":";
  add (Json.float spec.Grid.hold_time);
  add ",\"replicates\":";
  add
    (string_of_int
       (match spec.Grid.grid.Grid.replicate_counts with
       | r :: _ -> r
       | [] -> 16));
  add ",\"done\":";
  add (string_of_int (List.length done_));
  add ",\"verified\":";
  add (string_of_int (List.length verified));
  add ",\"certified\":";
  add (string_of_int (by_provenance "certified"));
  add ",\"simulated\":";
  add (string_of_int (by_provenance "simulated"));
  add ",\"classes\":";
  add (string_of_int (List.length classes));
  add "},\"classes\":[";
  List.iteri
    (fun i (rep, ms) ->
      if i > 0 then add ",";
      let rep_info = Fn.describe ~arity rep in
      let ms_done = List.filter (fun e -> e.f_line.Store.l_done) ms in
      let ms_verified = List.filter (fun e -> e.f_line.Store.l_verified) ms_done in
      let gates = List.map (fun e -> e.f_info.Fn.i_gates) ms in
      let frontier = List.assoc rep class_frontiers in
      add "{\"rep\":";
      add (Json.string rep_info.Fn.i_name);
      add ",\"orbit\":";
      add (string_of_int (orbit_size ~arity rep));
      add ",\"planned\":";
      add (string_of_int (List.length ms));
      add ",\"done\":";
      add (string_of_int (List.length ms_done));
      add ",\"verified\":";
      add (string_of_int (List.length ms_verified));
      add ",\"unate\":";
      add (Json.bool rep_info.Fn.i_unate);
      add ",\"canalizing\":";
      add (Json.bool rep_info.Fn.i_canalizing);
      add ",\"nested_canalizing\":";
      add (Json.bool rep_info.Fn.i_nested_canalizing);
      add ",\"bio\":";
      add (Json.bool (rep_info.Fn.i_unate || rep_info.Fn.i_canalizing));
      add ",\"min_gates\":";
      add (string_of_int (List.fold_left min max_int gates));
      add ",\"max_gates\":";
      add (string_of_int (List.fold_left max 0 gates));
      add ",\"frontier\":";
      name_list frontier;
      add "}")
    classes;
  add "],\"functions\":[";
  List.iteri
    (fun i e ->
      if i > 0 then add ",";
      let info = e.f_info and l = e.f_line in
      let rep_name = Fn.name_of_code ~arity info.Fn.i_class in
      add "{\"name\":";
      add (Json.string info.Fn.i_name);
      add ",\"code\":";
      add (string_of_int info.Fn.i_code);
      add ",\"class\":";
      add (Json.string rep_name);
      add ",\"gates\":";
      add (string_of_int info.Fn.i_gates);
      add ",\"depth\":";
      add (string_of_int info.Fn.i_depth);
      add ",\"unate\":";
      add (Json.bool info.Fn.i_unate);
      add ",\"canalizing\":";
      add (Json.bool info.Fn.i_canalizing);
      add ",\"nested_canalizing\":";
      add (Json.bool info.Fn.i_nested_canalizing);
      add ",\"done\":";
      add (Json.bool l.Store.l_done);
      add ",\"verified\":";
      add (Json.bool l.Store.l_verified);
      add ",\"provenance\":";
      add (Json.string l.Store.l_provenance);
      add ",\"pfobe\":";
      add (if l.Store.l_done then Json.float l.Store.l_fitness_mean else "null");
      add ",\"certified_rows\":";
      add (string_of_int l.Store.l_certified_rows);
      add ",\"total_rows\":";
      add (string_of_int l.Store.l_total_rows);
      add ",\"delay\":";
      (match e.f_delay with
      | None -> add "null"
      | Some d ->
          add "{\"worst\":";
          (match d.d_worst with
          | None -> add "null"
          | Some w -> add (Json.float w));
          add ",\"transitions\":";
          add (string_of_int d.d_transitions);
          add ",\"measured\":";
          add (string_of_int d.d_measured);
          add ",\"from_row\":";
          add (string_of_int d.d_from);
          add ",\"to_row\":";
          add (string_of_int d.d_to);
          add ",\"rising\":";
          add (Json.bool d.d_rising);
          add "}");
      add ",\"class_frontier\":";
      add
        (Json.bool
           (in_frontier (List.assoc info.Fn.i_class class_frontiers) e));
      add ",\"global_frontier\":";
      add (Json.bool (in_frontier global_frontier e));
      add "}")
    es;
  add "],\"frontier\":";
  name_list global_frontier;
  add "}";
  Buffer.contents b

(* {2 Markdown rendering} *)

let markdown json =
  let ( let* ) = Result.bind in
  let* v = Json.parse json in
  let mem o name = Json.member o name in
  let str o name = Option.bind (mem o name) Json.to_str in
  let num o name = Option.bind (mem o name) Json.to_number in
  let int_ o name = Option.bind (mem o name) Json.to_int in
  let bool_ o name = Option.bind (mem o name) Json.to_bool in
  let list o name =
    Option.value ~default:[] (Option.bind (mem o name) Json.to_list)
  in
  let req what = function
    | Some x -> Ok x
    | None -> Error (Printf.sprintf "not a SPACE.json document: missing %s" what)
  in
  let* space = req "space" (mem v "space") in
  let* inputs = req "space.inputs" (int_ space "inputs") in
  let i name = Option.value ~default:0 (int_ space name) in
  let fnum o name = Option.value ~default:Float.nan (num o name) in
  let fname o = Option.value ~default:"?" (str o "name") in
  let pct x = if Float.is_integer x then Printf.sprintf "%.0f" x else Printf.sprintf "%.1f" x in
  let b = Buffer.create 16384 in
  let add = Buffer.add_string b in
  add "# Function-space atlas\n\n";
  add
    "<!-- Generated from SPACE.json — do not edit by hand. Regenerate with\n\
    \     `glcv space report --dir <dir> --out SPACE.json --atlas ATLAS.md` or\n\
    \     `dune exec tools/gen_models_doc.exe -- --atlas SPACE.json ATLAS.md`. -->\n\n";
  let sampled = Option.value ~default:false (bool_ space "sampled") in
  add
    (Printf.sprintf
       "**Space:** %d-input — %d%s function%s planned, %d verified of %d run \
        (%d certified symbolically, %d settled by stochastic ensemble), %d \
        NPN class%s in the run.\n"
       inputs (i "functions")
       (if sampled then Printf.sprintf " of %d (sampled)" (i "full_space")
        else "")
       (if i "functions" = 1 then "" else "s")
       (i "verified") (i "done") (i "certified") (i "simulated") (i "classes")
       (if i "classes" = 1 then "" else "es"));
  add
    (Printf.sprintf
       "**Protocol:** threshold %s molecules, %s/%s t.u. total/hold, %d \
        replicates for undecided functions, seed %d.\n\n"
       (pct (fnum space "threshold"))
       (pct (fnum space "total_time"))
       (pct (fnum space "hold_time"))
       (i "replicates") (i "seed"));
  add
    "Delay is the worst-case ODE-limit propagation delay over \
     output-changing adjacent input transitions (t.u. after the input \
     switch); gates count NOT/NOR gates in the minimal netlist. Bio flags \
     follow Ray / Das / Choudhury: U = unate, C = canalizing, N = \
     nested-canalizing — the function classes dominating natural \
     regulatory logic.\n\n";
  add "## NPN classes\n\n";
  add
    "| Class | Orbit | In run | Verified | Gates | Bio | Pareto frontier \
     (PFoBE ↑ × delay ↓ × gates ↓) |\n";
  add "|---|---|---|---|---|---|---|\n";
  let classes = list v "classes" in
  List.iter
    (fun c ->
      let bio =
        String.concat ""
          [
            (if Option.value ~default:false (bool_ c "unate") then "U" else "");
            (if Option.value ~default:false (bool_ c "canalizing") then "C"
             else "");
            (if Option.value ~default:false (bool_ c "nested_canalizing") then
               "N"
             else "");
          ]
      in
      let gates =
        let lo = Option.value ~default:0 (int_ c "min_gates")
        and hi = Option.value ~default:0 (int_ c "max_gates") in
        if lo = hi then string_of_int lo else Printf.sprintf "%d–%d" lo hi
      in
      let frontier =
        list c "frontier"
        |> List.filter_map Json.to_str
        |> List.map (Printf.sprintf "`%s`")
        |> String.concat " "
      in
      add
        (Printf.sprintf "| `%s` | %d | %d | %d/%d | %s | %s | %s |\n"
           (Option.value ~default:"?" (str c "rep"))
           (Option.value ~default:0 (int_ c "orbit"))
           (Option.value ~default:0 (int_ c "planned"))
           (Option.value ~default:0 (int_ c "verified"))
           (Option.value ~default:0 (int_ c "done"))
           gates bio frontier))
    classes;
  let functions = list v "functions" in
  let fn_by_name =
    let tbl = Hashtbl.create 300 in
    List.iter (fun f -> Hashtbl.replace tbl (fname f) f) functions;
    tbl
  in
  let delay_cell f =
    match mem f "delay" with
    | Some (Json.Object _ as d) -> (
        match num d "worst" with
        | Some w -> pct w
        | None ->
            if Option.value ~default:0 (int_ d "transitions") = 0 then "0"
            else "timeout")
    | _ -> "—"
  in
  let pfobe_cell f =
    match num f "pfobe" with Some p -> pct p | None -> "—"
  in
  add "\n## Global Pareto frontier\n\n";
  add "| Function | Class | PFoBE % | Delay (t.u.) | Gates | Depth | Provenance |\n";
  add "|---|---|---|---|---|---|---|\n";
  List.iter
    (fun name ->
      match Hashtbl.find_opt fn_by_name name with
      | None -> ()
      | Some f ->
          add
            (Printf.sprintf "| `%s` | `%s` | %s | %s | %d | %d | %s |\n" name
               (Option.value ~default:"?" (str f "class"))
               (pfobe_cell f) (delay_cell f)
               (Option.value ~default:0 (int_ f "gates"))
               (Option.value ~default:0 (int_ f "depth"))
               (Option.value ~default:"-" (str f "provenance"))))
    (list v "frontier" |> List.filter_map Json.to_str);
  add "\n## Functions by class\n";
  List.iter
    (fun c ->
      let rep = Option.value ~default:"?" (str c "rep") in
      let flags =
        List.filter_map
          (fun (key, label) ->
            if Option.value ~default:false (bool_ c key) then Some label
            else None)
          [
            ("unate", "unate");
            ("canalizing", "canalizing");
            ("nested_canalizing", "nested-canalizing");
          ]
      in
      add
        (Printf.sprintf "\n### Class `%s` — orbit %d%s\n\n" rep
           (Option.value ~default:0 (int_ c "orbit"))
           (match flags with
           | [] -> ""
           | l -> ", " ^ String.concat ", " l));
      add "| Function | PFoBE % | Delay | Gates | Depth | Verified | Provenance | Frontier |\n";
      add "|---|---|---|---|---|---|---|---|\n";
      List.iter
        (fun f ->
          if str f "class" = Some rep then
            let frontier =
              (if Option.value ~default:false (bool_ f "class_frontier") then
                 "class"
               else "")
              ^
              if Option.value ~default:false (bool_ f "global_frontier") then
                "+global"
              else ""
            in
            add
              (Printf.sprintf "| `%s` | %s | %s | %d | %d | %s | %s | %s |\n"
                 (fname f) (pfobe_cell f) (delay_cell f)
                 (Option.value ~default:0 (int_ f "gates"))
                 (Option.value ~default:0 (int_ f "depth"))
                 (if Option.value ~default:false (bool_ f "verified") then "yes"
                  else if Option.value ~default:false (bool_ f "done") then "NO"
                  else "—")
                 (Option.value ~default:"-" (str f "provenance"))
                 frontier))
        functions)
    classes;
  Ok (Buffer.contents b)
