module Netlist = Glc_logic.Netlist
module Truth_table = Glc_logic.Truth_table
module Assembly = Glc_gates.Assembly
module Repressor = Glc_gates.Repressor
module Cello = Glc_gates.Cello
module Certificate = Glc_symbolic.Certificate
module Store = Glc_campaign.Store
module Metrics = Glc_obs.Metrics
module Rng = Glc_ssa.Rng
module Json = Glc_core.Report.Json

type config = {
  v_target : int;
  v_arity : int;
  v_seed : int;
  v_pop : int;
  v_genes : int;
  v_elite : int;
  v_max_gens : int;
}

let default_config ~arity ~target =
  {
    v_target = target;
    v_arity = arity;
    v_seed = 42;
    v_pop = 64;
    v_genes = 48;
    v_elite = 4;
    v_max_gens = 2000;
  }

(* gene i: (op, a, b) with op 0 = NOT a, 1 = NOR a b; operand indexes
   address inputs (0..arity-1) then earlier genes (arity + j, j < i) —
   topological by construction *)
type genome = { genes : (int * int * int) array; out : int }

let mutation_rate = 0.03

(* fresh random genomes injected each generation, replacing the worst
   children — keeps diversity up so the search escapes the one-row-off
   plateaus where elitist GAs stall *)
let immigrants = 8

let encode g =
  let genes =
    Array.to_list g.genes
    |> List.map (fun (op, a, b) -> Printf.sprintf "%d:%d:%d" op a b)
    |> String.concat ","
  in
  Printf.sprintf "%s|%d" genes g.out

let decode_genome s =
  match String.index_opt s '|' with
  | None -> None
  | Some bar -> (
      let out = int_of_string_opt (String.sub s (bar + 1) (String.length s - bar - 1)) in
      let genes =
        String.sub s 0 bar |> String.split_on_char ','
        |> List.map (fun gene ->
               match String.split_on_char ':' gene with
               | [ op; a; b ] -> (
                   match
                     (int_of_string_opt op, int_of_string_opt a, int_of_string_opt b)
                   with
                   | Some op, Some a, Some b -> Some (op, a, b)
                   | _ -> None)
               | _ -> None)
      in
      match (out, List.for_all Option.is_some genes) with
      | Some out, true ->
          Some { genes = Array.of_list (List.map Option.get genes); out }
      | _ -> None)

let reversed_sensors arity =
  let s = Assembly.sensors arity in
  Array.init arity (fun i -> s.(arity - 1 - i))

let netlist_of cfg g =
  let arity = cfg.v_arity in
  let inputs = reversed_sensors arity in
  let net idx = if idx < arity then inputs.(idx) else Printf.sprintf "g%d" (idx - arity) in
  (* phenotype = genes reachable from the output pointer *)
  let active = Array.make (Array.length g.genes) false in
  let rec mark idx =
    if idx >= arity then begin
      let i = idx - arity in
      if not active.(i) then begin
        active.(i) <- true;
        let op, a, b = g.genes.(i) in
        mark a;
        if op = 1 then mark b
      end
    end
  in
  mark g.out;
  let gates = ref [] in
  Array.iteri
    (fun i (op, a, b) ->
      if active.(i) then
        let gate =
          if op = 0 then Netlist.Not (net a) else Netlist.Nor (net a, net b)
        in
        gates := (net (arity + i), gate) :: !gates)
    g.genes;
  Netlist.make ~inputs ~output:(net g.out) ~gates:(List.rev !gates)

let fitness cfg g =
  let nl = netlist_of cfg g in
  let tt = Netlist.to_truth_table nl in
  let target = Truth_table.of_code ~arity:cfg.v_arity cfg.v_target in
  let rows = 1 lsl cfg.v_arity in
  let matches = rows - Truth_table.hamming_distance tt target in
  let pfobe = 100. *. float_of_int matches /. float_of_int rows in
  let gates = Netlist.gate_count nl in
  (* function first, cost second: the inverse-gate-cost term stays
     under 1 while one truth-table row is worth 100/2^arity >= 6.25,
     so the GA never trades correctness for size — a plain
     pfobe/(1+gates) ratio traps the search at 0-gate projections *)
  (pfobe +. (1. /. (1. +. float_of_int gates)), pfobe, gates)

(* {2 Generations} *)

(* fresh RNG per generation from (seed, generation): resume re-derives
   the exact stream without replaying earlier generations *)
let gen_rng cfg g =
  Rng.create (((cfg.v_seed * 1_000_003) + (g * 7919)) land max_int)

let random_genome cfg rng =
  let genes =
    Array.init cfg.v_genes (fun i ->
        let slots = cfg.v_arity + i in
        (Rng.int rng 2, Rng.int rng slots, Rng.int rng slots))
  in
  { genes; out = Rng.int rng (cfg.v_arity + cfg.v_genes) }

let initial_population cfg =
  let rng = gen_rng cfg 0 in
  List.init cfg.v_pop (fun _ -> random_genome cfg rng)

(* fitness-descending, ties broken by list position (stable sort) — a
   deterministic order given the stored population order, and the
   neutral-drift mechanism: {!step} places fresh mutants of the best
   genome at the head of the next population, so on equal fitness the
   newest genotype wins and the search drifts across neutral networks
   instead of freezing on the incumbent (Miller & Thomson's CGP
   observation; without drift the GA stalls one row short) *)
let rank cfg pop =
  List.map (fun g -> (fitness cfg g, encode g, g)) pop
  |> List.stable_sort (fun ((f1, _, _), _, _) ((f2, _, _), _, _) ->
         compare f2 f1)

let tournament rng ranked =
  (* binary tournament over the rank-sorted population: mild pressure,
     enough diversity to keep crossover productive *)
  let n = Array.length ranked in
  let a = Rng.int rng n and b = Rng.int rng n in
  let _, _, g = ranked.(min a b) in
  g

let crossover rng p1 p2 =
  let n = Array.length p1.genes in
  let cut = Rng.int rng (n + 1) in
  let genes = Array.init n (fun i -> if i < cut then p1.genes.(i) else p2.genes.(i)) in
  let out = if Rng.int rng 2 = 0 then p1.out else p2.out in
  { genes; out }

let mutate cfg rng g =
  let genes =
    Array.mapi
      (fun i (op, a, b) ->
        let slots = cfg.v_arity + i in
        let op = if Rng.float rng < mutation_rate then Rng.int rng 2 else op in
        let a = if Rng.float rng < mutation_rate then Rng.int rng slots else a in
        let b = if Rng.float rng < mutation_rate then Rng.int rng slots else b in
        (op, a, b))
      g.genes
  in
  let out =
    if Rng.float rng < mutation_rate then Rng.int rng (cfg.v_arity + cfg.v_genes)
    else g.out
  in
  { genes; out }

let step cfg gen prev =
  let rng = gen_rng cfg gen in
  let ranked = Array.of_list (rank cfg prev) in
  let _, _, best = ranked.(0) in
  let elite =
    List.init (min cfg.v_elite cfg.v_pop) (fun i ->
        let _, _, g = ranked.(i) in
        g)
  in
  let n_elite = List.length elite in
  let budget = cfg.v_pop - n_elite in
  (* half the offspring are (1+λ)-style mutants of the best genome:
     placed at the head of the population so {!rank}'s stable tie-break
     lets an equally-fit mutant displace its parent (neutral drift) *)
  let n_es = budget / 2 in
  let n_fresh = min immigrants (budget - n_es) in
  let n_ga = budget - n_es - n_fresh in
  let es = List.init n_es (fun _ -> mutate cfg rng best) in
  let ga =
    List.init n_ga (fun _ ->
        let p1 = tournament rng ranked in
        let p2 = tournament rng ranked in
        mutate cfg rng (crossover rng p1 p2))
  in
  let fresh = List.init n_fresh (fun _ -> random_genome cfg rng) in
  es @ elite @ ga @ fresh

(* {2 Journal documents} *)

let target_name cfg = Cello.name_of_code ~arity:cfg.v_arity cfg.v_target

let manifest_json cfg =
  Printf.sprintf
    "{\"version\":1,\"kind\":\"space-evolve\",\"target\":%d,\"inputs\":%d,\"seed\":%d,\"pop\":%d,\"genes\":%d,\"elite\":%d,\"max_gens\":%d}"
    cfg.v_target cfg.v_arity cfg.v_seed cfg.v_pop cfg.v_genes cfg.v_elite
    cfg.v_max_gens

let config_of_manifest text =
  match Json.parse text with
  | Error m -> Error ("unreadable manifest: " ^ m)
  | Ok v -> (
      let int name = Option.bind (Json.member v name) Json.to_int in
      let kind = Option.bind (Json.member v "kind") Json.to_str in
      match
        (kind, int "target", int "inputs", int "seed", int "pop", int "genes",
         int "elite", int "max_gens")
      with
      | ( Some "space-evolve",
          Some v_target,
          Some v_arity,
          Some v_seed,
          Some v_pop,
          Some v_genes,
          Some v_elite,
          Some v_max_gens ) ->
          Ok { v_target; v_arity; v_seed; v_pop; v_genes; v_elite; v_max_gens }
      | Some k, _, _, _, _, _, _, _ when k <> "space-evolve" ->
          Error "not an evolution journal (kind mismatch)"
      | _ -> Error "not an evolution journal (missing fields)")

let gen_id g = Printf.sprintf "gen-%06d" g

let generation_doc cfg gen pop =
  let ranked = rank cfg pop in
  let (bf, bp, bg), benc, _ = List.hd ranked in
  let b = Buffer.create (64 * cfg.v_pop) in
  let add = Buffer.add_string b in
  add "{\"id\":";
  add (Json.string (gen_id gen));
  add ",\"kind\":\"generation\",\"generation\":";
  add (string_of_int gen);
  add ",\"best\":";
  add (Json.string benc);
  add ",\"best_fitness\":";
  add (Json.float bf);
  add ",\"best_pfobe\":";
  add (Json.float bp);
  add ",\"best_gates\":";
  add (string_of_int bg);
  add ",\"population\":[";
  List.iteri
    (fun i g ->
      if i > 0 then add ",";
      add (Json.string (encode g)))
    pop;
  add "]}";
  Buffer.contents b

type outcome = {
  o_reached : bool;
  o_generation : int;
  o_genome : string;
  o_fitness : float;
  o_pfobe : float;
  o_gates : int;
  o_verified : bool;
  o_provenance : string;
}

type status = Finished of outcome | Interrupted of int

let result_doc cfg o =
  Printf.sprintf
    "{\"id\":\"result\",\"kind\":\"result\",\"target\":%s,\"reached\":%s,\"generation\":%d,\"genome\":%s,\"fitness\":%s,\"pfobe\":%s,\"gates\":%d,\"verified\":%s,\"provenance\":%s}"
    (Json.string (target_name cfg))
    (Json.bool o.o_reached) o.o_generation
    (Json.string o.o_genome)
    (Json.float o.o_fitness) (Json.float o.o_pfobe) o.o_gates
    (Json.bool o.o_verified)
    (Json.string o.o_provenance)

let outcome_of_doc doc =
  match Json.parse doc with
  | Error m -> Error ("unreadable result document: " ^ m)
  | Ok v -> (
      let int name = Option.bind (Json.member v name) Json.to_int in
      let num name = Option.bind (Json.member v name) Json.to_number in
      let bool_ name = Option.bind (Json.member v name) Json.to_bool in
      let str name = Option.bind (Json.member v name) Json.to_str in
      match (bool_ "reached", int "generation", str "genome") with
      | Some o_reached, Some o_generation, Some o_genome ->
          Ok
            {
              o_reached;
              o_generation;
              o_genome;
              o_fitness = Option.value ~default:Float.nan (num "fitness");
              o_pfobe = Option.value ~default:Float.nan (num "pfobe");
              o_gates = Option.value ~default:0 (int "gates");
              o_verified = Option.value ~default:false (bool_ "verified");
              o_provenance = Option.value ~default:"-" (str "provenance");
            }
      | _ -> Error "malformed result document")

(* assemble and symbolically certify the reached winner *)
let certify_winner cfg best =
  let nl = netlist_of cfg best in
  let expected = Truth_table.of_code ~arity:cfg.v_arity cfg.v_target in
  let library = Repressor.extended (Netlist.gate_count nl + 1) in
  match
    Assembly.of_netlist ~library ~name:("evolved_" ^ target_name cfg)
      ~expected nl
  with
  | exception Invalid_argument _ -> (false, "undecided")
  | circuit ->
      let cert = Certificate.certify circuit in
      if Certificate.fully_decided cert then
        (Certificate.verified cert = Some true, "certified")
      else (false, "undecided")

let last_generation store =
  List.fold_left
    (fun best id ->
      match
        if String.length id > 4 && String.sub id 0 4 = "gen-" then
          int_of_string_opt (String.sub id 4 (String.length id - 4))
        else None
      with
      | Some g -> max best g
      | None -> best)
    (-1) (Store.completed store)

let load_population store gen =
  match Store.get store ~id:(gen_id gen) with
  | None -> Error (Printf.sprintf "missing generation document %s" (gen_id gen))
  | Some doc -> (
      match Json.parse doc with
      | Error m -> Error m
      | Ok v -> (
          match Option.bind (Json.member v "population") Json.to_list with
          | None -> Error "generation document lacks a population"
          | Some encs ->
              let pop =
                List.filter_map
                  (fun e -> Option.bind (Json.to_str e) decode_genome)
                  encs
              in
              if List.length pop = List.length encs then Ok pop
              else Error "generation document holds malformed genomes"))

let run ?(metrics = Metrics.noop) ?(should_stop = fun () -> false)
    ?(on_progress = fun _ _ _ -> ()) ~dir cfg =
  let ( let* ) = Result.bind in
  let* store, cfg =
    if Sys.file_exists (Filename.concat dir "MANIFEST.json") then
      let* store, manifest = Store.load ~dir in
      let* stored = config_of_manifest manifest in
      if
        stored.v_target <> cfg.v_target
        || stored.v_arity <> cfg.v_arity
        || stored.v_seed <> cfg.v_seed
      then
        Error
          (Printf.sprintf
             "evolution journal %s holds a different run (target %s seed %d)"
             dir
             (target_name stored) stored.v_seed)
      else Ok (store, stored)
    else
      let* store = Store.create ~dir (manifest_json cfg) in
      Ok (store, cfg)
  in
  let generations = Metrics.counter metrics "space.ga_generations" in
  let evaluations = Metrics.counter metrics "space.ga_evaluations" in
  Store.Lock.with_lock ~dir (fun () ->
      match Store.get store ~id:"result" with
      | Some doc -> Result.map (fun o -> Finished o) (outcome_of_doc doc)
      | None ->
          let finish gen pop reached =
            let (bf, bp, bg), benc, best = List.hd (rank cfg pop) in
            let o_verified, o_provenance =
              if reached then certify_winner cfg best else (false, "-")
            in
            let o =
              {
                o_reached = reached;
                o_generation = gen;
                o_genome = benc;
                o_fitness = bf;
                o_pfobe = bp;
                o_gates = bg;
                o_verified;
                o_provenance;
              }
            in
            Store.put store ~id:"result" (result_doc cfg o);
            Ok (Finished o)
          in
          let rec loop gen pop =
            let (bf, bp, _), _, _ = List.hd (rank cfg pop) in
            on_progress gen bf bp;
            if bp >= 100. then finish gen pop true
            else if gen >= cfg.v_max_gens then finish gen pop false
            else if should_stop () then Ok (Interrupted (gen + 1))
            else begin
              let next = step cfg (gen + 1) pop in
              Store.put store ~id:(gen_id (gen + 1)) (generation_doc cfg (gen + 1) next);
              Metrics.Counter.incr generations;
              Metrics.Counter.add evaluations cfg.v_pop;
              loop (gen + 1) next
            end
          in
          let* gen, pop =
            match last_generation store with
            | -1 ->
                let pop = initial_population cfg in
                Store.put store ~id:(gen_id 0) (generation_doc cfg 0 pop);
                Metrics.Counter.incr generations;
                Metrics.Counter.add evaluations cfg.v_pop;
                Ok (0, pop)
            | g ->
                let* pop = load_population store g in
                Ok (g, pop)
          in
          loop gen pop)
  |> Result.join
