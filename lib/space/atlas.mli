(** The function-space atlas: verify a whole Boolean-function space.

    Drives every function of an [n]-input space (all 256 for [n = 3],
    a deterministic sample for [n = 4]) through the campaign stack as
    one job per function — certified-first via {!Glc_symbolic}, with
    batched ensembles only for the rows the interval analysis leaves
    undecided — then measures each circuit's worst-case propagation
    delay on the ODE limit and renders the result as a machine-readable
    [SPACE.json] plus a generated [ATLAS.md] of Pareto frontiers
    (PFoBE × delay × gate cost) per NPN class.

    The atlas directory {e is} a campaign directory
    ({!Glc_campaign.Store}): [MANIFEST.json] holds a regular
    {!Glc_campaign.Grid.spec} whose circuit axis is the function names,
    so [glcv campaign status/report] work on it too, kill + resume is
    inherited, and the stored bytes of every function's document are
    identical to what a plain campaign would store. Delay measurements
    ride along in the same store under [delay-<name>] ids. *)

module Grid := Glc_campaign.Grid
module Store := Glc_campaign.Store
module Runner := Glc_campaign.Runner

type config = {
  inputs : int;  (** function arity, 2..4 *)
  sample : int option;
      (** verify only a seeded uniform sample of this many functions
          ({!Fn.sample_codes}); [None] = the whole space. Required
          for [inputs = 4] (65,536 functions). *)
  seed : int;  (** campaign root seed, and the sampling seed *)
  replicates : int;  (** ensemble size for undecided functions *)
  threshold : float;  (** logic threshold, molecules *)
  total_time : float;  (** per-job simulation length *)
  hold_time : float;  (** per-combination hold *)
}

val default_config : config
(** The paper's protocol over the full 3-input space: arity 3, no
    sampling, seed 42, 16 replicates, threshold 15, 10,000/1,000 t.u. *)

val plan : config -> Grid.spec
(** The campaign spec of an atlas run: one job per selected function,
    names in {!Fn.name_of_code} form.
    @raise Invalid_argument on an arity outside 2..4, on [inputs = 4]
    without [sample], or when [total_time] cannot hold all [2^inputs]
    input combinations for [hold_time] each (the GLC011 lint
    condition — atlas jobs run unlinted, so it is enforced here). *)

val prepare : dir:string -> Grid.spec -> (Store.t * Grid.spec * bool, string) result
(** Opens or initialises the atlas directory: a fresh directory is
    created with the given plan as its manifest; an existing one keeps
    {e its own} manifest (this is what makes re-running the same
    command a resume). The boolean is [true] when the stored plan
    differs from the argument — the caller should tell the user their
    flags were ignored. *)

val certified_filter : Grid.spec -> Grid.job -> bool
(** [true] iff the job's circuit certifies fully under the job's
    protocol — the certified-only drain predicate for
    {!Glc_campaign.Resume.run}. Unresolvable circuits pass (the runner
    surfaces the error). *)

(** {2 Propagation delay}

    Worst-case delay on the deterministic (ODE) limit: for every
    adjacent input-combination transition [r -> r+1 mod 2^n] whose
    expected outputs differ, the inputs are held at [r] for one
    hold-time, switched, and the output column scanned for its first
    threshold crossing. Delay docs are stored as [delay-<name>] in the
    atlas store, individually resumable. *)

type delay = {
  d_transitions : int;  (** output-changing transitions *)
  d_measured : int;  (** of which crossed within the timeout *)
  d_worst : float option;  (** max measured delay, t.u.; [None] if none *)
  d_from : int;  (** the worst transition's source combination *)
  d_to : int;
  d_rising : bool;  (** the worst transition's direction *)
}

val measure_delay :
  protocol:Glc_dvasim.Protocol.t -> Glc_gates.Circuit.t -> delay
(** Pure measurement (no store). Deterministic. *)

val delay_id : string -> string
(** [delay-<circuit name>]. *)

val delay_coverage : Store.t -> Grid.spec -> int * int
(** [(measured, total)] delay docs over the spec's circuits. *)

(** {2 Running} *)

type summary = {
  a_functions : int;  (** functions in the plan *)
  a_done : int;  (** with a stored verification result *)
  a_verified : int;
  a_failed : int;  (** jobs that raised this run *)
  a_remaining : int;  (** functions still without a result *)
  a_delays : int;  (** delay docs present *)
  a_delays_total : int;  (** delay docs wanted (= done functions) *)
}

val run :
  ?jobs:int ->
  ?limit:int ->
  ?on_progress:(Runner.progress -> unit) ->
  ?metrics:Glc_obs.Metrics.t ->
  ?should_stop:(unit -> bool) ->
  ?certified_only:bool ->
  dir:string ->
  Grid.spec ->
  (summary, string) result
(** {!prepare}, drain the pending functions through
    {!Glc_campaign.Resume.run} (with {!certified_filter} when
    [certified_only]), then measure the delay of every completed
    function that lacks one. Records [space.functions_synthesised],
    [space.functions_verified], [space.delays_measured] counters and
    the [space.delay_seconds] histogram on [metrics]. Interruptible
    between jobs and between delay measurements via [should_stop]. *)

(** {2 Reporting} *)

val space_json : Store.t -> Grid.spec -> string
(** The [SPACE.json] document: run parameters, per-class summaries with
    bio flags and Pareto frontiers, one record per function (status,
    provenance, PFoBE, delay, gates, depth, frontier membership), and
    the global frontier. Deterministic bytes — a resumed atlas renders
    byte-identically to an uninterrupted one. *)

val markdown : string -> (string, string) result
(** Renders [ATLAS.md] from the bytes of a [SPACE.json] — the single
    renderer shared by [glcv space report] and
    [tools/gen_models_doc.exe --atlas], so the two can never drift.
    [Error] when the JSON does not parse or lacks the atlas shape. *)
