(** Deterministic GA evolution of NOT/NOR circuits toward a target
    function, after Frenz et al., "Evolution of Digital Logic
    Functionality via a Genetic Algorithm" (PAPERS.md).

    A genome is a CGP-style linear program: a fixed number of gene
    slots, each a NOT or NOR gate reading earlier slots or the circuit
    inputs, plus an output pointer. Only the slots reachable from the
    output decode into the phenotype netlist, so gate count is free to
    shrink. Fitness is the PFoBE proxy (percent of truth-table rows
    the decoded netlist matches) × inverse gate cost — exactly the
    frontier currency of the atlas.

    {b Determinism and resume.} Every generation is a pure function of
    [(seed, generation index, previous population)]: the per-generation
    RNG is freshly derived from the seed and the index, selection and
    elitism break ties on the genome encoding, and each generation is
    journaled to the campaign store ({!Glc_campaign.Store}, atomic
    writes) before the next begins. A [kill -9] at any point therefore
    resumes into byte-identical generation documents — the same
    contract the campaign store gives verification jobs, pinned by a
    test. *)

type config = {
  v_target : int;  (** target truth-table code *)
  v_arity : int;
  v_seed : int;
  v_pop : int;  (** population size *)
  v_genes : int;  (** genome gene slots (upper bound on gate count) *)
  v_elite : int;  (** genomes copied unchanged each generation *)
  v_max_gens : int;  (** give up after this many generations *)
}

val default_config : arity:int -> target:int -> config
(** Seed 42, population 64, 48 gene slots, elite 4, 2000 generations.
    Gene slots deliberately exceed the worst minimal 3-input netlist
    (12 gates): the surplus is inactive genetic material, and neutral
    drift through it is what lets the search cross fitness plateaus
    (the standard CGP result). Most benchmark targets are reached well
    inside the defaults; the parity-class stragglers ([0x69], [0x96],
    [0x16]) want [v_genes = 64] and a larger generation budget. *)

type genome

val encode : genome -> string
(** Canonical text form, e.g. ["1:0:2,0:3:0|4"] — genes as
    [op:a:b] (op 0 = NOT reading [a], 1 = NOR reading [a] and [b])
    and the output pointer after ["|"]. Stable across versions: it is
    the on-disk population representation. *)

val decode_genome : string -> genome option
(** Inverse of {!encode}; [None] on malformed input. *)

val netlist_of : config -> genome -> Glc_logic.Netlist.t
(** The phenotype: active genes only, over the sensor input names
    (assembly convention). *)

val fitness : config -> genome -> float * float * int
(** [(fitness, pfobe_proxy, gates)] — fitness is
    [pfobe_proxy + 1/(1 + gates)]: PFoBE with inverse gate cost as the
    secondary objective. The cost term stays below one truth-table
    row's worth of PFoBE, so the search never trades correctness for
    size but, between equally correct circuits, always prefers the
    smaller. *)

type outcome = {
  o_reached : bool;  (** the best genome matches the target exactly *)
  o_generation : int;  (** last generation evaluated *)
  o_genome : string;  (** encoded best genome *)
  o_fitness : float;
  o_pfobe : float;  (** proxy; 100 iff reached *)
  o_gates : int;
  o_verified : bool;
      (** the assembled winner's symbolic certificate verdict (only
          attempted when reached; false otherwise) *)
  o_provenance : string;
      (** ["certified"] / ["undecided"] for a reached target; ["-"]
          otherwise *)
}

type status =
  | Finished of outcome  (** a [result] document is in the store *)
  | Interrupted of int  (** stopped before [generation + 1] ran *)

val run :
  ?metrics:Glc_obs.Metrics.t ->
  ?should_stop:(unit -> bool) ->
  ?on_progress:(int -> float -> float -> unit) ->
  dir:string ->
  config ->
  (status, string) result
(** Creates or resumes the evolution journal in [dir] (holding the
    directory's single-writer lock): replays nothing — the last stored
    generation is loaded and the loop continues from there — and stops
    when the target is reached (the winner is then assembled into a
    genetic circuit and symbolically certified into the [result]
    document), the generation budget is exhausted, or [should_stop]
    fires between generations. [on_progress] receives
    [(generation, best fitness, best pfobe)] per generation. Records
    [space.ga_generations] and [space.ga_evaluations] counters.
    A second call on a finished journal returns the stored outcome
    without evolving. [Error] on a manifest that is not an evolution
    journal or disagrees with [config] on target/arity/seed shape. *)
