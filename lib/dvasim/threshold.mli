(** Threshold-value analysis (Baig & Madsen, IWBDA 2016).

    D-VASim estimates the logic threshold of a circuit's output species
    from simulation: the output levels reached under the different input
    combinations form two populations (logic-low and logic-high), and the
    threshold is placed between them. Here the populations are separated
    with a 1-D 2-means clustering of the settled output levels, which
    needs no prior knowledge of the circuit's function. *)

module Circuit := Glc_gates.Circuit

type estimate = {
  low_level : float;  (** centre of the logic-low population *)
  high_level : float;  (** centre of the logic-high population *)
  threshold : float;  (** midpoint of the two centres *)
  separation : float;
      (** [high_level / max low_level 1.] — a robustness indicator; the
          circuit is unlikely to work when this is close to 1 *)
}

val two_means : float array -> float * float
(** 1-D 2-means clustering; returns the two centres, smaller first.
    @raise Invalid_argument on an empty array. *)

val estimate :
  ?protocol:Protocol.t -> ?settle_fraction:float ->
  ?metrics:Glc_obs.Metrics.t -> Circuit.t -> estimate
(** Runs the input sweep and clusters the settled output samples (the
    last [settle_fraction] of each hold slot, default 0.5; the first part
    of a slot is discarded as transient). A live [metrics] registry is
    forwarded to the underlying simulation.

    @raise Invalid_argument if [settle_fraction] is outside (0, 1], or
    if [protocol.hold_time < protocol.dt] — a hold slot shorter than the
    sampling step contains no settled samples (the protocol is validated
    before the sweep runs). Non-integer [hold_time / dt] ratios are
    fine: each slot simply contributes [floor (hold_time / dt)]
    samples. *)

val pp : Format.formatter -> estimate -> unit
