module Sim = Glc_ssa.Sim

type order = Counting | Gray

type t = {
  total_time : float;
  hold_time : float;
  threshold : float;
  input_high : float;
  input_low : float;
  dt : float;
  seed : int;
  algorithm : Sim.algorithm;
  order : order;
}

let default =
  {
    total_time = 10_000.;
    hold_time = 1_000.;
    threshold = 15.;
    input_high = 15.;
    input_low = 0.;
    dt = 1.;
    seed = 42;
    algorithm = Sim.Direct;
    order = Counting;
  }

let make ?(total_time = default.total_time) ?(hold_time = default.hold_time)
    ?(threshold = default.threshold) ?input_high
    ?(input_low = default.input_low) ?(dt = default.dt)
    ?(seed = default.seed) ?(algorithm = default.algorithm)
    ?(order = default.order) () =
  let input_high =
    match input_high with Some h -> h | None -> threshold
  in
  if total_time <= 0. then invalid_arg "Protocol.make: total_time <= 0";
  if hold_time <= 0. then invalid_arg "Protocol.make: hold_time <= 0";
  if threshold <= 0. then invalid_arg "Protocol.make: threshold <= 0";
  if dt <= 0. then invalid_arg "Protocol.make: dt <= 0";
  if input_low >= input_high then
    invalid_arg "Protocol.make: input_low >= input_high";
  { total_time; hold_time; threshold; input_high; input_low; dt; seed;
    algorithm; order }

let with_threshold p threshold =
  if threshold <= 0. then invalid_arg "Protocol.with_threshold: <= 0";
  { p with threshold; input_high = threshold }

let slots p = int_of_float (Float.ceil (p.total_time /. p.hold_time))

let covers_all_rows p ~arity = slots p >= 1 lsl arity

let row_of_slot p ~arity slot =
  if slot < 0 then invalid_arg "Protocol.row_of_slot: negative slot";
  let s = slot mod (1 lsl arity) in
  match p.order with Counting -> s | Gray -> s lxor (s lsr 1)

let row_at p ~arity t =
  if t < 0. then invalid_arg "Protocol.row_at: negative time";
  row_of_slot p ~arity (int_of_float (Float.floor (t /. p.hold_time)))
