module Trace = Glc_ssa.Trace
module Circuit = Glc_gates.Circuit

type estimate = {
  low_level : float;
  high_level : float;
  threshold : float;
  separation : float;
}

let two_means samples =
  let n = Array.length samples in
  if n = 0 then invalid_arg "Threshold.two_means: empty";
  let lo = Array.fold_left Float.min infinity samples in
  let hi = Array.fold_left Float.max neg_infinity samples in
  if lo = hi then (lo, hi)
  else begin
    let c1 = ref lo and c2 = ref hi in
    let stable = ref false in
    let iterations = ref 0 in
    while (not !stable) && !iterations < 100 do
      incr iterations;
      let s1 = ref 0. and n1 = ref 0 and s2 = ref 0. and n2 = ref 0 in
      Array.iter
        (fun x ->
          if Float.abs (x -. !c1) <= Float.abs (x -. !c2) then begin
            s1 := !s1 +. x;
            incr n1
          end
          else begin
            s2 := !s2 +. x;
            incr n2
          end)
        samples;
      let c1' = if !n1 = 0 then !c1 else !s1 /. float_of_int !n1 in
      let c2' = if !n2 = 0 then !c2 else !s2 /. float_of_int !n2 in
      stable := Float.abs (c1' -. !c1) < 1e-9 && Float.abs (c2' -. !c2) < 1e-9;
      c1 := c1';
      c2 := c2'
    done;
    if !c1 <= !c2 then (!c1, !c2) else (!c2, !c1)
  end

let estimate ?(protocol = Protocol.default) ?(settle_fraction = 0.5)
    ?(metrics = Glc_obs.Metrics.noop) circuit =
  if settle_fraction <= 0. || settle_fraction > 1. then
    invalid_arg "Threshold.estimate: settle_fraction not in (0, 1]";
  (* Validated before the (expensive) sweep: a hold slot shorter than
     the sampling step has no samples at all, and the slot arithmetic
     below would divide by samples_per_slot = 0. *)
  if protocol.Protocol.hold_time < protocol.Protocol.dt then
    invalid_arg
      "Threshold.estimate: hold_time < dt leaves no samples per hold slot";
  let e = Experiment.run ~protocol ~metrics circuit in
  let output = Trace.column e.Experiment.trace circuit.Circuit.output in
  let dt = protocol.Protocol.dt in
  let samples_per_slot = int_of_float (protocol.Protocol.hold_time /. dt) in
  let settled = ref [] in
  Array.iteri
    (fun k v ->
      let pos_in_slot = k mod samples_per_slot in
      let cutoff =
        int_of_float
          ((1. -. settle_fraction) *. float_of_int samples_per_slot)
      in
      if pos_in_slot >= cutoff then settled := v :: !settled)
    output;
  let samples = Array.of_list !settled in
  let low_level, high_level = two_means samples in
  {
    low_level;
    high_level;
    threshold = (low_level +. high_level) /. 2.;
    separation = high_level /. Float.max low_level 1.;
  }

let pp ppf e =
  Format.fprintf ppf
    "low %.1f / high %.1f molecules; threshold %.1f (separation %.1fx)"
    e.low_level e.high_level e.threshold e.separation
