module Trace = Glc_ssa.Trace
module Events = Glc_ssa.Events
module Sim = Glc_ssa.Sim
module Circuit = Glc_gates.Circuit

type t = {
  circuit : Circuit.t;
  protocol : Protocol.t;
  trace : Trace.t;
}

let stimulus (p : Protocol.t) ~inputs =
  let arity = Array.length inputs in
  let events = ref [] in
  for slot = 0 to Protocol.slots p - 1 do
    let t = float_of_int slot *. p.hold_time in
    let row = Protocol.row_of_slot p ~arity slot in
    Array.iteri
      (fun j species ->
        let v =
          if (row lsr (arity - 1 - j)) land 1 = 1 then p.input_high
          else p.input_low
        in
        events := Events.set t species v :: !events)
      inputs
  done;
  Events.of_list !events

let input_schedule (p : Protocol.t) (circuit : Circuit.t) =
  stimulus p ~inputs:circuit.Circuit.inputs

let run_trace ?metrics ~protocol ~inputs model =
  let events = stimulus protocol ~inputs in
  let cfg =
    Sim.config ~dt:protocol.Protocol.dt ~seed:protocol.Protocol.seed
      ~algorithm:protocol.Protocol.algorithm
      ~t_end:protocol.Protocol.total_time ()
  in
  Sim.run ~events ?metrics cfg model

let run_model ?metrics ~protocol ~circuit model =
  let trace =
    run_trace ?metrics ~protocol ~inputs:circuit.Circuit.inputs model
  in
  { circuit; protocol; trace }

let run ?(protocol = Protocol.default) ?metrics circuit =
  run_model ?metrics ~protocol ~circuit (Circuit.model circuit)

let applied_row e t =
  Protocol.row_at e.protocol ~arity:(Circuit.arity e.circuit) t

let log_csv path e = Trace.write_csv path e.trace
