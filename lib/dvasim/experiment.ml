module Trace = Glc_ssa.Trace
module Events = Glc_ssa.Events
module Sim = Glc_ssa.Sim
module Circuit = Glc_gates.Circuit

type t = {
  circuit : Circuit.t;
  protocol : Protocol.t;
  trace : Trace.t;
}

let stimulus_for (p : Protocol.t) ~inputs ~row_of slots =
  let arity = Array.length inputs in
  let events = ref [] in
  for slot = 0 to slots - 1 do
    let t = float_of_int slot *. p.hold_time in
    let row = row_of slot in
    Array.iteri
      (fun j species ->
        let v =
          if (row lsr (arity - 1 - j)) land 1 = 1 then p.input_high
          else p.input_low
        in
        events := Events.set t species v :: !events)
      inputs
  done;
  Events.of_list !events

let stimulus (p : Protocol.t) ~inputs =
  let arity = Array.length inputs in
  stimulus_for p ~inputs
    ~row_of:(fun slot -> Protocol.row_of_slot p ~arity slot)
    (Protocol.slots p)

let stimulus_rows (p : Protocol.t) ~inputs ~rows slots =
  let m = Array.length rows in
  if m = 0 then invalid_arg "Experiment.stimulus_rows: no rows";
  stimulus_for p ~inputs ~row_of:(fun slot -> rows.(slot mod m)) slots

let run_trace_rows ?metrics ~protocol ~inputs ~rows slots model =
  if slots <= 0 then invalid_arg "Experiment.run_trace_rows: slots <= 0";
  let events = stimulus_rows protocol ~inputs ~rows slots in
  let cfg =
    Sim.config ~dt:protocol.Protocol.dt ~seed:protocol.Protocol.seed
      ~algorithm:protocol.Protocol.algorithm
      ~t_end:(float_of_int slots *. protocol.Protocol.hold_time)
      ()
  in
  Sim.run ~events ?metrics cfg model

let input_schedule (p : Protocol.t) (circuit : Circuit.t) =
  stimulus p ~inputs:circuit.Circuit.inputs

let run_trace ?metrics ~protocol ~inputs model =
  let events = stimulus protocol ~inputs in
  let cfg =
    Sim.config ~dt:protocol.Protocol.dt ~seed:protocol.Protocol.seed
      ~algorithm:protocol.Protocol.algorithm
      ~t_end:protocol.Protocol.total_time ()
  in
  Sim.run ~events ?metrics cfg model

let run_model ?metrics ~protocol ~circuit model =
  let trace =
    run_trace ?metrics ~protocol ~inputs:circuit.Circuit.inputs model
  in
  { circuit; protocol; trace }

let run ?(protocol = Protocol.default) ?metrics circuit =
  run_model ?metrics ~protocol ~circuit (Circuit.model circuit)

let applied_row e t =
  Protocol.row_at e.protocol ~arity:(Circuit.arity e.circuit) t

let log_csv path e = Trace.write_csv path e.trace
