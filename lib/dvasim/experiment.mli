(** Running a circuit through the virtual laboratory.

    Generates the input stimulus schedule (every combination in counting
    order, each held for the propagation delay), simulates the kinetic
    model with the SSA, and logs all I/O species — the "SDAn" simulation
    data that Algorithm 1 of the paper consumes. *)

module Trace := Glc_ssa.Trace
module Events := Glc_ssa.Events
module Circuit := Glc_gates.Circuit
module Model := Glc_model.Model

type t = {
  circuit : Circuit.t;
  protocol : Protocol.t;
  trace : Trace.t;  (** all species, sampled every [protocol.dt] *)
}

val stimulus : Protocol.t -> inputs:string array -> Events.schedule
(** The stimulus events the lab applies: at each slot boundary, every
    input species is clamped to [input_high] or [input_low] according to
    the slot's input combination (input 0 of the array is the most
    significant bit of the combination). *)

val stimulus_rows :
  Protocol.t -> inputs:string array -> rows:int array -> int -> Events.schedule
(** [stimulus_rows p ~inputs ~rows slots] is {!stimulus} restricted to a
    chosen set of input combinations: slot [s] applies
    [rows.(s mod Array.length rows)]. The symbolic verifier uses this to
    simulate only the rows its certificate left undecided.
    @raise Invalid_argument if [rows] is empty. *)

val run_trace_rows :
  ?metrics:Glc_obs.Metrics.t ->
  protocol:Protocol.t -> inputs:string array -> rows:int array -> int ->
  Model.t -> Trace.t
(** Simulates [slots] hold slots of the row-restricted stimulus
    ([t_end = slots * hold_time], protocol seed and algorithm).
    @raise Invalid_argument if [rows] is empty or [slots <= 0]. *)

val input_schedule : Protocol.t -> Circuit.t -> Events.schedule
(** {!stimulus} over the circuit's sensor proteins. *)

val run : ?protocol:Protocol.t -> ?metrics:Glc_obs.Metrics.t -> Circuit.t -> t
(** Simulates with {!Protocol.default} unless overridden. A live
    [metrics] registry (default {!Glc_obs.Metrics.noop}) is passed down
    to the SSA, which flushes its per-run counters and timings there —
    see {!Glc_ssa.Sim.run}. *)

val run_model :
  ?metrics:Glc_obs.Metrics.t ->
  protocol:Protocol.t -> circuit:Circuit.t -> Model.t -> t
(** Like {!run} but with a caller-supplied kinetic model (used to inject
    parameter variations while keeping the circuit's metadata). *)

val run_trace :
  ?metrics:Glc_obs.Metrics.t ->
  protocol:Protocol.t -> inputs:string array -> Model.t -> Trace.t
(** Circuit-free entry point: drives the named input species of an
    arbitrary kinetic model through all combinations and returns the
    logged trace — how an unknown SBML model is explored before its logic
    is known. *)

val applied_row : t -> float -> int
(** The input combination the lab was applying at a given time. *)

val log_csv : string -> t -> unit
(** Writes the logged simulation data to a CSV file, one row per sample —
    the equivalent of D-VASim's experiment log. *)
