(** Experimental protocol of the virtual laboratory.

    Mirrors the paper's setup (§III): each circuit is simulated for
    10,000 time units; the input combinations are applied in binary
    counting order, each held for the propagation delay (1,000 t.u.);
    the logic threshold is 15 molecules; and — as in the paper's
    threshold-variation study (Fig. 5) — the amount applied for a logic-1
    input {e is} the threshold value, so lowering the threshold to 3 or
    raising it to 40 also weakens or saturates the input drive. *)

module Sim := Glc_ssa.Sim

type order =
  | Counting  (** 000, 001, 010, … — the paper's order *)
  | Gray
      (** 000, 001, 011, 010, … — one input changes per step, which
          removes most of the decay-inherited highs of Fig. 4 *)

type t = {
  total_time : float;  (** simulation length, time units *)
  hold_time : float;  (** how long each input combination is applied *)
  threshold : float;  (** logic threshold, molecules *)
  input_high : float;  (** molecules applied for a logic-1 input *)
  input_low : float;  (** molecules applied for a logic-0 input *)
  dt : float;  (** trace sampling step *)
  seed : int;
  algorithm : Sim.algorithm;
  order : order;  (** input combination sequencing *)
}

val default : t
(** The paper's protocol: [total_time = 10_000.], [hold_time = 1_000.],
    [threshold = 15.], [input_high = threshold], [input_low = 0.],
    [dt = 1.], [seed = 42], direct method. *)

val make :
  ?total_time:float ->
  ?hold_time:float ->
  ?threshold:float ->
  ?input_high:float ->
  ?input_low:float ->
  ?dt:float ->
  ?seed:int ->
  ?algorithm:Sim.algorithm ->
  ?order:order ->
  unit ->
  t
(** {!default} with overrides. [input_high] defaults to the (possibly
    overridden) threshold.
    @raise Invalid_argument on non-positive times or thresholds, or if
    [input_low >= input_high]. *)

val with_threshold : t -> float -> t
(** Changes the threshold {e and} the logic-1 input amount together, as
    the paper's Fig. 5 experiment does. *)

val slots : t -> int
(** Number of hold slots in the run,
    [ceil (total_time / hold_time)]. *)

val covers_all_rows : t -> arity:int -> bool
(** Whether the run is long enough to apply every input combination of
    an [arity]-input circuit at least once, i.e. [slots t >= 2^arity].
    A protocol that fails this cannot exercise the full truth table, so
    Algorithm 1 would report logic extracted from a partial sweep — the
    linter flags it ([GLC011]) before any simulation is spent. *)

val row_of_slot : t -> arity:int -> int -> int
(** The input combination applied during a hold slot (wrapping around
    every [2^arity] slots, sequenced by [order]). *)

val row_at : t -> arity:int -> float -> int
(** The input combination applied at a given time. *)
