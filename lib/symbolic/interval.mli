(** Interval arithmetic over kinetic-law expressions.

    The abstract domain of the symbolic verifier: a value is a closed
    interval [[lo, hi]] of floats (endpoints may be infinite, never
    NaN). The concrete semantics being abstracted is {!Glc_model.Math.eval}
    — IEEE double evaluation, not real arithmetic — which is what both
    the SSA and ODE engines execute.

    {2 Soundness and rounding}

    For the correctly-rounded operations ([+ - * /], [min], [max],
    negation) corner evaluation is exact: IEEE rounding is monotone, so
    the float image of a box is bounded by the float values at its
    corners, and no outward rounding is needed. [Pow], [Exp] and [Ln]
    are only faithfully rounded by libm with no monotonicity guarantee,
    so their non-degenerate results are widened outward by one ulp
    ({!next_down}/{!next_up}); a degenerate (point) argument is a single
    concrete operation and stays exact.

    Two deliberate conventions, both documented where they matter:
    {ul
    {- [0 * inf = 0] (the standard interval convention) — sound for
       models whose concrete evaluation stays finite; an unbounded rate
       already tops the affected species in {!Steady_state};}
    {- [[0,0] / d = [0,0]] whatever [d] — the simulator clamps
       propensities at zero, so a identically-zero numerator means the
       reaction never fires even when the denominator can vanish. This
       matches (and now implements) glc_lint's zero-propagation.}}

    Any corner that still evaluates to NaN (e.g. a negative base under a
    non-integral power) returns {!full} — "no information, the concrete
    value may even be NaN" — which proves nothing downstream. *)

type t = private { lo : float; hi : float }

val make : float -> float -> t
(** [make lo hi]. NaN endpoints give {!full}; [-0.] is normalised to
    [0.].
    @raise Invalid_argument if [lo > hi]. *)

val point : float -> t
(** The degenerate interval [[v, v]] ({!full} for NaN). *)

val zero : t
(** [[0, 0]]. *)

val one : t
(** [[1, 1]]. *)

val top : t
(** [[0, +inf)] — every admissible molecule count. *)

val full : t
(** [(-inf, +inf)] — no information at all. *)

val lo : t -> float
val hi : t -> float

val is_zero : t -> bool
(** [[0, 0]] exactly — the degenerate case glc_lint's zero-propagation
    keys on. *)

val is_point : t -> bool
val is_finite : t -> bool
(** Both endpoints finite. *)

val contains : t -> float -> bool
(** NaN is contained only in {!full}. *)

val subset : t -> t -> bool
(** [subset a b] — [a] included in [b]. *)

val equal : t -> t -> bool
val join : t -> t -> t
(** Smallest interval containing both — the lattice join. *)

val meet : t -> t -> t option
(** Intersection; [None] when disjoint. *)

val meet_sound : t -> t -> t
(** [meet_sound old_ new_] is the intersection, falling back to [old_]
    if floating-point drift ever made the two disjoint. Used by the
    descending fixpoint iteration, where both arguments are sound
    enclosures of the same concrete value, so a genuine empty meet
    cannot occur. *)

val widen : t -> t -> t
(** [widen a b] jumps any endpoint of [b] that escapes [a] straight to
    its infinity, guaranteeing an ascending chain stabilises in at most
    two steps per bound. The steady-state engine iterates downward from
    {!top} (every concrete fixed point lies in each descending iterate),
    so widening is only its safety valve, but the operator is part of
    the domain. *)

val next_up : float -> float
(** Smallest float strictly above the argument (identity on [+inf] and
    NaN). *)

val next_down : float -> float
(** Largest float strictly below the argument. *)

(** {2 Arithmetic} *)

val neg : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
val pow : t -> t -> t
val min : t -> t -> t
val max : t -> t -> t
val exp : t -> t
val ln : t -> t

val eval : lookup:(string -> t) -> Glc_model.Math.t -> t
(** Abstract counterpart of {!Glc_model.Math.eval}: evaluates a
    kinetic-law expression with identifiers resolved to intervals.
    Sound on the finite fragment: for every assignment [v] with [v x]
    in [lookup x] for all identifiers, if every intermediate result of
    [Math.eval ~lookup:v e] is finite then the value lies in
    [eval ~lookup e] (QCheck-tested in [test_symbolic.ml]). Beyond that
    fragment the two conventions above can collapse an overflowing
    evaluation to [[0, 0]] — kinetic laws (Hill functions over bounded
    amounts) never leave it. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
