module Math = Glc_model.Math

type t = { lo : float; hi : float }

let full = { lo = Float.neg_infinity; hi = Float.infinity }

(* -0. folds into 0. so [is_zero] and printed bounds are canonical *)
let norm x = if x = 0. then 0. else x

let make lo hi =
  if Float.is_nan lo || Float.is_nan hi then full
  else if lo > hi then invalid_arg "Interval.make: lo > hi"
  else { lo = norm lo; hi = norm hi }

let point v = make v v
let zero = { lo = 0.; hi = 0. }
let one = { lo = 1.; hi = 1. }
let top = { lo = 0.; hi = Float.infinity }
let lo t = t.lo
let hi t = t.hi
let is_zero t = t.lo = 0. && t.hi = 0.
let is_point t = t.lo = t.hi
let is_finite t = Float.is_finite t.lo && Float.is_finite t.hi
let contains t v = if Float.is_nan v then t == full else t.lo <= v && v <= t.hi
let subset a b = b.lo <= a.lo && a.hi <= b.hi
let equal a b = a.lo = b.lo && a.hi = b.hi

let join a b = { lo = Float.min a.lo b.lo; hi = Float.max a.hi b.hi }

let meet a b =
  let lo = Float.max a.lo b.lo and hi = Float.min a.hi b.hi in
  if lo > hi then None else Some { lo = norm lo; hi = norm hi }

let meet_sound old_ new_ =
  match meet old_ new_ with Some m -> m | None -> old_

let widen a b =
  {
    lo = (if b.lo < a.lo then Float.neg_infinity else a.lo);
    hi = (if b.hi > a.hi then Float.infinity else a.hi);
  }

(* Adjacent floats via the IEEE bit order: for positive floats the
   integer successor of the bit pattern is the next float up; OCaml has
   no nextafter, so we walk the Int64 image directly. *)
let next_up x =
  if Float.is_nan x || x = Float.infinity then x
  else if x = 0. then Int64.float_of_bits 1L (* smallest subnormal *)
  else
    let b = Int64.bits_of_float x in
    Int64.float_of_bits (if x > 0. then Int64.add b 1L else Int64.sub b 1L)

let next_down x = -.next_up (-.x)

let neg t = { lo = norm (-.t.hi); hi = norm (-.t.lo) }
let add a b = make (a.lo +. b.lo) (a.hi +. b.hi)
let sub a b = make (a.lo -. b.hi) (a.hi -. b.lo)

(* corner evaluation: IEEE rounding is monotone, so the extreme float
   results over the box are attained at corners; [specials] patches the
   corner product 0 * inf (NaN in IEEE, 0 by interval convention) *)
let corners op a b =
  let c1 = op a.lo b.lo
  and c2 = op a.lo b.hi
  and c3 = op a.hi b.lo
  and c4 = op a.hi b.hi in
  make
    (Float.min (Float.min c1 c2) (Float.min c3 c4))
    (Float.max (Float.max c1 c2) (Float.max c3 c4))

let mul =
  let mulc x y = if x = 0. || y = 0. then 0. else x *. y in
  fun a b -> corners mulc a b

let div a b =
  if is_zero a then zero (* clamped-propensity convention, see .mli *)
  else if b.lo < 0. && b.hi > 0. then full
    (* a zero interior to the denominator reaches both infinities *)
  else corners ( /. ) a b

(* outward one-ulp widening for the faithfully-rounded libm functions;
   a point argument pair is one concrete operation and stays exact *)
let outward ~nonneg exact t =
  if exact then t
  else
    let lo = next_down t.lo and hi = next_up t.hi in
    make (if nonneg then Float.max 0. lo else lo) hi

let pow a b =
  if a.lo < 0. then full (* Float.pow is NaN off integral exponents *)
  else
    let r = corners Float.pow a b in
    (* Float.pow on a non-negative base is >= 0 at every corner, but a
       NaN corner (none remain once a.lo >= 0) would have given [full];
       only widen genuine boxes *)
    outward ~nonneg:true (is_point a && is_point b) r

let min a b = make (Float.min a.lo b.lo) (Float.min a.hi b.hi)
let max a b = make (Float.max a.lo b.lo) (Float.max a.hi b.hi)

let exp a = outward ~nonneg:true (is_point a) (make (Float.exp a.lo) (Float.exp a.hi))

let ln a =
  if a.lo < 0. then full
  else outward ~nonneg:false (is_point a) (make (Float.log a.lo) (Float.log a.hi))

let rec eval ~lookup = function
  | Math.Const c -> point c
  | Math.Ident x -> lookup x
  | Math.Neg a -> neg (eval ~lookup a)
  | Math.Add (a, b) -> add (eval ~lookup a) (eval ~lookup b)
  | Math.Sub (a, b) -> sub (eval ~lookup a) (eval ~lookup b)
  | Math.Mul (a, b) -> mul (eval ~lookup a) (eval ~lookup b)
  | Math.Div (a, b) -> div (eval ~lookup a) (eval ~lookup b)
  | Math.Pow (a, b) -> pow (eval ~lookup a) (eval ~lookup b)
  | Math.Min (a, b) -> min (eval ~lookup a) (eval ~lookup b)
  | Math.Max (a, b) -> max (eval ~lookup a) (eval ~lookup b)
  | Math.Exp a -> exp (eval ~lookup a)
  | Math.Ln a -> ln (eval ~lookup a)

let pp ppf t =
  if is_point t then Format.fprintf ppf "[%g]" t.lo
  else Format.fprintf ppf "[%g, %g]" t.lo t.hi

let to_string t = Format.asprintf "%a" pp t
