(** Per-truth-table-row verdicts proved without simulation.

    A certificate records, for every input combination of a circuit,
    the interval the steady-state analysis ({!Steady_state}) derives
    for the output species and the verdict that bound supports:

    {ul
    {- [Proved_high] — the lower bound clears the logic threshold with
       a stochastic noise margin to spare;}
    {- [Proved_low] — the upper bound stays under it with the same
       margin;}
    {- [Undecided] — the bound straddles the threshold (or is too
       loose), so only simulation can settle the row.}}

    The margin accounts for what the bound does not model: the SSA
    fluctuates around the deterministic steady state with roughly
    Poisson spread (standard deviation [sqrt m] at mean [m]), and the
    analyser's stability filter (eq. 1 of the paper) rejects
    threshold-hugging outputs. A row is proved only when the bound is
    at least [margin * sqrt m] molecules clear of the threshold, so a
    proved verdict also predicts what the stochastic analyser will
    extract. The default margin (4 standard deviations) is validated
    differentially against the SSA verifier over the full Table-1
    benchmark set and random monotone models in [test_symbolic.ml];
    an interval-vs-simulation disagreement is a test failure. *)

type verdict = Proved_high | Proved_low | Undecided

type row = {
  cr_row : int;  (** input combination, I1 at the most significant bit *)
  cr_bounds : Interval.t;  (** steady-state bound of the output species *)
  cr_verdict : verdict;
  cr_expected : bool;  (** the intended output for this combination *)
  cr_iterations : int;  (** fixpoint narrowing rounds for this row *)
  cr_converged : bool;
}

type t = {
  c_circuit : string;
  c_output : string;
  c_arity : int;
  c_threshold : float;
  c_margin : float;  (** noise margin, in Poisson standard deviations *)
  c_rows : row array;  (** indexed by combination *)
}

val default_margin : float
(** 4.0 standard deviations. *)

val decide : threshold:float -> margin:float -> Interval.t -> verdict
(** The decision rule alone: [Proved_high] iff
    [lo - margin * sqrt (max lo 1) > threshold], [Proved_low] iff
    [hi + margin * sqrt (max hi 1) < threshold] (finite bounds only). *)

val certify :
  ?metrics:Glc_obs.Metrics.t ->
  ?margin:float ->
  ?max_iters:int ->
  ?protocol:Glc_dvasim.Protocol.t ->
  Glc_gates.Circuit.t ->
  t
(** Certifies a benchmark circuit under a protocol (threshold and input
    rail levels; default {!Glc_dvasim.Protocol.default}). Records the
    [symbolic.certificates], [symbolic.rows_proved],
    [symbolic.rows_undecided] and [symbolic.fixpoint_iterations]
    counters on [metrics]. *)

val certify_model :
  ?metrics:Glc_obs.Metrics.t ->
  ?margin:float ->
  ?max_iters:int ->
  threshold:float ->
  input_high:float ->
  input_low:float ->
  inputs:string array ->
  output:string ->
  expected:Glc_logic.Truth_table.t ->
  Glc_model.Model.t ->
  t
(** The engine behind {!certify}, usable on a bare kinetic model — the
    entry point the QCheck differential property drives with random
    monotone models. [inputs.(0)] is I1, the most significant bit of
    the combination index, as everywhere else in the code base. *)

val rows : t -> int
val decided : t -> int
(** Rows with a [Proved_*] verdict. *)

val undecided_rows : t -> int list
val fully_decided : t -> bool

val contradictions : t -> int list
(** Proved rows whose verdict disagrees with the intended output — a
    symbolic proof that the circuit computes the wrong function there. *)

val verified : t -> bool option
(** [Some true] — every row proved and matching the intent;
    [Some false] — some proved row contradicts it (the circuit is
    wrong, no simulation needed); [None] — undecided rows remain and no
    contradiction was found. *)

val proved_output : t -> int -> bool option
(** The proved output bit for a row, [None] when undecided. *)

val verdict_string : verdict -> string
(** ["proved_high"], ["proved_low"], ["undecided"]. *)

val pp : Format.formatter -> t -> unit
val to_json : t -> string
(** Deterministic JSON (row order, shortest round-tripping floats;
    infinite bounds render as ["inf"]/["-inf"]), stable enough to diff
    and to embed in campaign job documents. *)
