(** Monotone steady-state analysis of a kinetic model.

    Bounds every species' long-run amount by an interval, given
    intervals for the input rails. The model is decomposed structurally:
    each non-boundary species [X] collects its {e production} reactions
    (net stoichiometric delta > 0, arbitrary rate law) and its {e decay}
    reactions, whose rates must factor as [coefficient * X] (the shape
    [To_model.convert] emits — [gamma * X]). Balancing production
    against decay at a fixed point gives the one-species transfer
    function

    {[ X  =  (sum of delta * rate) / (sum of delta * coefficient) ]}

    evaluated in the interval domain over the current environment.

    {2 Why descending iteration is sound}

    The engine starts every solved species at {!Interval.top}
    ([[0, inf)]) and iterates the transfer function {e downward},
    intersecting each new value with the old one
    ({!Interval.meet_sound}). Any concrete steady state lies in the
    initial environment; the interval transfer function is
    inclusion-monotone and a steady state is a pointwise fixed point of
    the concrete transfer, so by induction it lies in {e every}
    iterate — whether or not the iteration has stabilised. Convergence (typically one round per
    circuit layer: repressor cascades are feed-forward) only sharpens
    the bounds; stopping early never unsounds them. Ascending iteration
    from the initial state, by contrast, would only capture steady
    states reachable from it — wrong for multistable circuits — which
    is why {!Interval.widen} is kept as a safety valve rather than the
    engine.

    A species whose decay kinetics defeat the linear factorisation (or
    that has production but no decay) stays at [top] ([[0, inf)] is
    sound for any amount) and is listed in [ss_free]. A species no
    reaction touches is pinned to its initial amount. *)

type t = {
  ss_bounds : (string * Interval.t) list;
      (** every species, in model order; boundary species carry their
          input interval (or initial amount when undriven) *)
  ss_iterations : int;
      (** narrowing rounds executed before stabilising (or hitting the
          cap) *)
  ss_converged : bool;
      (** the last round changed nothing; [false] only means the bounds
          could be sharper, never that they are wrong *)
  ss_free : string list;
      (** species left at [top] because their kinetics defeated the
          production/decay decomposition *)
}

val analyse :
  ?max_iters:int -> ?inputs:(string * Interval.t) list ->
  Glc_model.Model.t -> t
(** [analyse ~inputs m] bounds the steady states of [m] with each
    boundary species clamped to its interval in [inputs] (defaulting to
    its initial amount — the simulator's boundary semantics).
    [max_iters] caps the narrowing rounds (default 200). *)

val bound : t -> string -> Interval.t
(** The computed bound for a species ({!Interval.full} for a name the
    model does not declare). *)
