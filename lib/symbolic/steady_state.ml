module Model = Glc_model.Model
module Math = Glc_model.Math

type t = {
  ss_bounds : (string * Interval.t) list;
  ss_iterations : int;
  ss_converged : bool;
  ss_free : string list;
}

(* [linear_coeff x rate] factors [rate] as [coeff * x], returning the
   coefficient expression. The coefficient may itself mention [x]
   (evaluated over the environment, which is sound); what matters is
   that the whole rate vanishes linearly with [x], so production/decay
   balance can be solved for [x]. *)
let rec linear_coeff x = function
  | Math.Ident y when String.equal y x -> Some (Math.Const 1.)
  | Math.Mul (a, b) -> (
      match linear_coeff x b with
      | Some (Math.Const 1.) -> Some a
      | Some c -> Some (Math.Mul (a, c))
      | None -> (
          match linear_coeff x a with
          | Some (Math.Const 1.) -> Some b
          | Some c -> Some (Math.Mul (c, b))
          | None -> None))
  | Math.Div (a, b) -> (
      match linear_coeff x a with
      | Some c -> Some (Math.Div (c, b))
      | None -> None)
  | _ -> None

let net_delta (r : Model.reaction) id =
  let sum sign acc l =
    List.fold_left
      (fun acc (i, st) -> if String.equal i id then acc + (sign * st) else acc)
      acc l
  in
  sum 1 (sum (-1) 0 r.Model.r_reactants) r.Model.r_products

(* the one-species transfer: production mass over decay coefficient *)
type solved = {
  sp_id : string;
  sp_initial : float;
  sp_prods : (float * Math.t) list; (* delta, rate *)
  sp_decay : (float * Math.t) list; (* |delta|, coefficient *)
}

let analyse ?(max_iters = 200) ?(inputs = []) (m : Model.t) =
  let bounds : (string, Interval.t) Hashtbl.t = Hashtbl.create 16 in
  let free = ref [] in
  let solved = ref [] in
  List.iter
    (fun (s : Model.species) ->
      if s.Model.s_boundary then
        let iv =
          match List.assoc_opt s.Model.s_id inputs with
          | Some iv -> iv
          | None -> Interval.point s.Model.s_initial
        in
        Hashtbl.replace bounds s.Model.s_id iv
      else begin
        let x = s.Model.s_id in
        let prods = ref [] and decay = ref [] and supported = ref true in
        List.iter
          (fun (r : Model.reaction) ->
            let d = net_delta r x in
            if d > 0 then
              prods := (float_of_int d, r.Model.r_rate) :: !prods
            else if d < 0 then
              match linear_coeff x r.Model.r_rate with
              | Some c -> decay := (float_of_int (-d), c) :: !decay
              | None -> supported := false)
          m.Model.m_reactions;
        if not !supported then begin
          free := x :: !free;
          Hashtbl.replace bounds x Interval.top
        end
        else if !prods = [] && !decay = [] then
          (* untouched by any reaction: pinned at its initial amount *)
          Hashtbl.replace bounds x (Interval.point s.Model.s_initial)
        else begin
          solved :=
            {
              sp_id = x;
              sp_initial = s.Model.s_initial;
              sp_prods = List.rev !prods;
              sp_decay = List.rev !decay;
            }
            :: !solved;
          Hashtbl.replace bounds x Interval.top
        end
      end)
    m.Model.m_species;
  let solved = List.rev !solved in
  let lookup id =
    match Hashtbl.find_opt bounds id with
    | Some iv -> iv
    | None -> (
        match Model.parameter_value m id with
        | Some v -> Interval.point v
        | None -> Interval.full)
  in
  let mass terms =
    List.fold_left
      (fun acc (d, e) ->
        Interval.add acc (Interval.mul (Interval.point d) (Interval.eval ~lookup e)))
      Interval.zero terms
  in
  let iters = ref 0 and stable = ref false in
  while (not !stable) && !iters < max_iters do
    incr iters;
    stable := true;
    List.iter
      (fun sp ->
        let old_ = Hashtbl.find bounds sp.sp_id in
        let p = mass sp.sp_prods and c = mass sp.sp_decay in
        (* the division below reads 0/0 as 0 (the lint convention),
           which here would claim "no production, no certain decay"
           settles at zero — but such a species can be stuck at its
           initial amount. Handle the degenerate decays explicitly. *)
        let nv =
          if Interval.is_zero c then
            if Interval.is_zero p then Interval.point sp.sp_initial
            else old_ (* production with no decay: unbounded growth *)
          else if Interval.is_zero p && Interval.contains c 0. then old_
          else Interval.meet_sound old_ (Interval.div p c)
        in
        if not (Interval.equal nv old_) then begin
          Hashtbl.replace bounds sp.sp_id nv;
          stable := false
        end)
      solved
  done;
  {
    ss_bounds =
      List.map
        (fun (s : Model.species) ->
          (s.Model.s_id, Hashtbl.find bounds s.Model.s_id))
        m.Model.m_species;
    ss_iterations = !iters;
    ss_converged = !stable;
    ss_free = List.rev !free;
  }

let bound t id =
  match List.assoc_opt id t.ss_bounds with
  | Some iv -> iv
  | None -> Interval.full
