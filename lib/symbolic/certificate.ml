module Circuit = Glc_gates.Circuit
module Protocol = Glc_dvasim.Protocol
module Truth_table = Glc_logic.Truth_table
module Metrics = Glc_obs.Metrics

type verdict = Proved_high | Proved_low | Undecided

type row = {
  cr_row : int;
  cr_bounds : Interval.t;
  cr_verdict : verdict;
  cr_expected : bool;
  cr_iterations : int;
  cr_converged : bool;
}

type t = {
  c_circuit : string;
  c_output : string;
  c_arity : int;
  c_threshold : float;
  c_margin : float;
  c_rows : row array;
}

let default_margin = 4.0

let decide ~threshold ~margin iv =
  let lo = Interval.lo iv and hi = Interval.hi iv in
  if Float.is_finite lo && lo -. (margin *. sqrt (Float.max lo 1.)) > threshold
  then Proved_high
  else if
    Float.is_finite hi && hi +. (margin *. sqrt (Float.max hi 1.)) < threshold
  then Proved_low
  else Undecided

let certify_model ?(metrics = Metrics.noop) ?(margin = default_margin)
    ?max_iters ~threshold ~input_high ~input_low ~inputs ~output ~expected
    (m : Glc_model.Model.t) =
  let arity = Array.length inputs in
  if Truth_table.arity expected <> arity then
    invalid_arg "Certificate.certify_model: expected table arity mismatch";
  let n_rows = 1 lsl arity in
  let rows =
    Array.init n_rows (fun row ->
        (* input j drives bit (arity - 1 - j): I1 is the MSB, matching
           Experiment.stimulus and Circuit.input_value *)
        let env =
          Array.to_list
            (Array.mapi
               (fun j name ->
                 let bit = (row lsr (arity - 1 - j)) land 1 = 1 in
                 (name, Interval.point (if bit then input_high else input_low)))
               inputs)
        in
        let ss = Steady_state.analyse ?max_iters ~inputs:env m in
        let bounds = Steady_state.bound ss output in
        {
          cr_row = row;
          cr_bounds = bounds;
          cr_verdict = decide ~threshold ~margin bounds;
          cr_expected = Truth_table.output expected row;
          cr_iterations = ss.Steady_state.ss_iterations;
          cr_converged = ss.Steady_state.ss_converged;
        })
  in
  if Metrics.enabled metrics then begin
    let proved =
      Array.fold_left
        (fun n r -> if r.cr_verdict <> Undecided then n + 1 else n)
        0 rows
    in
    let iterations =
      Array.fold_left (fun n r -> n + r.cr_iterations) 0 rows
    in
    Metrics.Counter.incr (Metrics.counter metrics "symbolic.certificates");
    Metrics.Counter.add (Metrics.counter metrics "symbolic.rows_proved") proved;
    Metrics.Counter.add
      (Metrics.counter metrics "symbolic.rows_undecided")
      (n_rows - proved);
    Metrics.Counter.add
      (Metrics.counter metrics "symbolic.fixpoint_iterations")
      iterations
  end;
  {
    c_circuit = m.Glc_model.Model.m_id;
    c_output = output;
    c_arity = arity;
    c_threshold = threshold;
    c_margin = margin;
    c_rows = rows;
  }

let certify ?metrics ?margin ?max_iters ?(protocol = Protocol.default)
    (c : Circuit.t) =
  let t =
    certify_model ?metrics ?margin ?max_iters
      ~threshold:protocol.Protocol.threshold
      ~input_high:protocol.Protocol.input_high
      ~input_low:protocol.Protocol.input_low ~inputs:c.Circuit.inputs
      ~output:c.Circuit.output ~expected:c.Circuit.expected
      (Circuit.model c)
  in
  { t with c_circuit = c.Circuit.name }

let rows t = Array.length t.c_rows
let decided t =
  Array.fold_left
    (fun n r -> if r.cr_verdict <> Undecided then n + 1 else n)
    0 t.c_rows

let undecided_rows t =
  Array.to_list t.c_rows
  |> List.filter_map (fun r ->
         if r.cr_verdict = Undecided then Some r.cr_row else None)

let fully_decided t = undecided_rows t = []

let proved_output t row =
  match t.c_rows.(row).cr_verdict with
  | Proved_high -> Some true
  | Proved_low -> Some false
  | Undecided -> None

let contradictions t =
  Array.to_list t.c_rows
  |> List.filter_map (fun r ->
         match r.cr_verdict with
         | Proved_high when not r.cr_expected -> Some r.cr_row
         | Proved_low when r.cr_expected -> Some r.cr_row
         | Proved_high | Proved_low | Undecided -> None)

let verified t =
  if contradictions t <> [] then Some false
  else if fully_decided t then Some true
  else None

let verdict_string = function
  | Proved_high -> "proved_high"
  | Proved_low -> "proved_low"
  | Undecided -> "undecided"

(* local JSON float: the same shortest-round-trip printer the rest of
   the code base uses (glc_symbolic sits below glc_core, so the helper
   cannot be shared), with infinities kept as strings rather than
   collapsed to null — an undecided row's upper bound is typically
   infinite and that is information *)
let json_float x =
  if Float.is_nan x then "null"
  else if x = Float.infinity then "\"inf\""
  else if x = Float.neg_infinity then "\"-inf\""
  else if Float.is_integer x && Float.abs x < 1e15 then
    Printf.sprintf "%.0f" x
  else begin
    let s15 = Printf.sprintf "%.15g" x in
    if float_of_string s15 = x then s15 else Printf.sprintf "%.17g" x
  end

let json_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let combination ~arity row =
  String.init arity (fun j ->
      if (row lsr (arity - 1 - j)) land 1 = 1 then '1' else '0')

let to_json t =
  let row_json r =
    Printf.sprintf
      "{\"row\":%d,\"combination\":%s,\"lo\":%s,\"hi\":%s,\"verdict\":%s,\"expected\":%b,\"agrees\":%s,\"iterations\":%d,\"converged\":%b}"
      r.cr_row
      (json_string (combination ~arity:t.c_arity r.cr_row))
      (json_float (Interval.lo r.cr_bounds))
      (json_float (Interval.hi r.cr_bounds))
      (json_string (verdict_string r.cr_verdict))
      r.cr_expected
      (match r.cr_verdict with
      | Undecided -> "null"
      | Proved_high -> string_of_bool r.cr_expected
      | Proved_low -> string_of_bool (not r.cr_expected))
      r.cr_iterations r.cr_converged
  in
  Printf.sprintf
    "{\"circuit\":%s,\"output\":%s,\"arity\":%d,\"threshold\":%s,\"margin\":%s,\"rows\":[%s],\"proved\":%d,\"undecided\":%d,\"verified\":%s}"
    (json_string t.c_circuit) (json_string t.c_output) t.c_arity
    (json_float t.c_threshold) (json_float t.c_margin)
    (String.concat "," (Array.to_list (Array.map row_json t.c_rows)))
    (decided t)
    (rows t - decided t)
    (match verified t with
    | Some b -> string_of_bool b
    | None -> "null")

let pp ppf t =
  Format.fprintf ppf
    "@[<v>certificate %s: output %s, threshold %g, margin %g sd@," t.c_circuit
    t.c_output t.c_threshold t.c_margin;
  Format.fprintf ppf "%-6s %-22s %-12s %-9s %s@," "combo" "steady-state bound"
    "verdict" "expected" "agrees";
  Array.iter
    (fun r ->
      Format.fprintf ppf "%-6s %-22s %-12s %-9b %s@,"
        (combination ~arity:t.c_arity r.cr_row)
        (Interval.to_string r.cr_bounds)
        (verdict_string r.cr_verdict) r.cr_expected
        (match r.cr_verdict with
        | Undecided -> "-"
        | Proved_high -> string_of_bool r.cr_expected
        | Proved_low -> string_of_bool (not r.cr_expected)))
    t.c_rows;
  Format.fprintf ppf "%d/%d row(s) proved%s@]" (decided t) (rows t)
    (match verified t with
    | Some true -> ", verified"
    | Some false -> ", CONTRADICTS the intended table"
    | None -> ", undecided rows remain")
