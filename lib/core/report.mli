(** Human-readable analysis reports in the style of the paper's figures.

    {!pp_cases} renders the per-combination analytics table of Fig. 2(b)
    and Fig. 4 (Case_I, High_O, Var_O, FOV, filters); {!pp_result} adds
    the extracted Boolean expression and percentage fitness;
    {!pp_verification} appends the expected-vs-extracted comparison. *)

val pp_cases : output_name:string -> Format.formatter -> Analyzer.result -> unit

val pp_result :
  output_name:string -> Format.formatter -> Analyzer.result -> unit

val pp_verification : Format.formatter -> Verify.report -> unit

val pp_combination : arity:int -> Format.formatter -> int -> unit
(** Binary rendering of a combination, I1 first (e.g. [011]). *)

val result_to_string : output_name:string -> Analyzer.result -> string

(** Deterministic JSON fragments, used by machine-readable reports (the
    ensemble engine's [--json] output). *)
module Json : sig
  val escape : string -> string
  (** JSON string-literal escaping (content only, no quotes). *)

  val string : string -> string
  (** Quoted, escaped string literal. *)

  val float : float -> string
  (** Shortest decimal that round-trips — equal floats always render to
      identical bytes. Non-finite values render as [null]. *)

  val bool : bool -> string
end
