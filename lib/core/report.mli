(** Human-readable analysis reports in the style of the paper's figures.

    {!pp_cases} renders the per-combination analytics table of Fig. 2(b)
    and Fig. 4 (Case_I, High_O, Var_O, FOV, filters); {!pp_result} adds
    the extracted Boolean expression and percentage fitness;
    {!pp_verification} appends the expected-vs-extracted comparison. *)

val pp_cases : output_name:string -> Format.formatter -> Analyzer.result -> unit

val pp_result :
  output_name:string -> Format.formatter -> Analyzer.result -> unit

val pp_verification : Format.formatter -> Verify.report -> unit

val pp_combination : arity:int -> Format.formatter -> int -> unit
(** Binary rendering of a combination, I1 first (e.g. [011]). *)

val result_to_string : output_name:string -> Analyzer.result -> string

(** Deterministic JSON fragments, used by machine-readable reports (the
    ensemble engine's [--json] output), plus a minimal dependency-free
    reader for the stores that persist them (the campaign subsystem's
    result store and manifest). *)
module Json : sig
  val escape : string -> string
  (** JSON string-literal escaping (content only, no quotes). *)

  val string : string -> string
  (** Quoted, escaped string literal. *)

  val float : float -> string
  (** Shortest decimal that round-trips — equal floats always render to
      identical bytes. Non-finite values render as [null]. *)

  val bool : bool -> string

  (** {2 Reader}

      A complete little JSON parser — objects, arrays, strings (with
      escapes, including [\uXXXX] and surrogate pairs), numbers, the
      three literals. Numbers are [float]s, which round-trips every
      value {!float} prints. Because {!float} prints the shortest
      round-tripping decimal, [parse] of a printed report re-renders to
      the identical bytes — the campaign store's resume-determinism
      contract rests on this. *)

  type value =
    | Null
    | Bool of bool
    | Number of float
    | String of string
    | Array of value list
    | Object of (string * value) list

  val parse : string -> (value, string) result
  (** Whole-input parse: trailing non-whitespace is an error, so a
      truncated (crash-interrupted) document never parses. *)

  val member : value -> string -> value option
  (** Field of an [Object]; [None] on missing field or non-object. *)

  val to_bool : value -> bool option
  val to_number : value -> float option

  val to_int : value -> int option
  (** [Some] only for integral numbers within the exact float range. *)

  val to_str : value -> string option
  val to_list : value -> value list option
end
