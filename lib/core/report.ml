module Expr = Glc_logic.Expr
module Truth_table = Glc_logic.Truth_table

let pp_combination ~arity ppf row =
  for j = arity - 1 downto 0 do
    Format.pp_print_int ppf ((row lsr j) land 1)
  done

let combination_string ~arity row =
  Format.asprintf "%a" (fun ppf -> pp_combination ~arity ppf) row

let pp_cases ~output_name ppf (r : Analyzer.result) =
  let arity = r.Analyzer.arity in
  Format.fprintf ppf "@[<v>%-*s %8s %8s %8s %9s %6s %6s %4s@," (max arity 5)
    "case" "Case_I" "High_O" "Var_O" "FOV_EST" "eq(1)" "eq(2)" "min";
  Array.iter
    (fun (c : Analyzer.case_stats) ->
      Format.fprintf ppf "%-*s %8d %8d %8d %9.4f %6s %6s %4s@," (max arity 5)
        (combination_string ~arity c.Analyzer.row)
        c.case_count c.high_count c.variations c.fov_est
        (if c.passes_fov then "pass" else "fail")
        (if c.passes_majority then "pass" else "fail")
        (if c.included then "*" else ""))
    r.Analyzer.cases;
  Format.fprintf ppf "(* = minterm of %s)@]" output_name

let pp_result ~output_name ppf (r : Analyzer.result) =
  Format.fprintf ppf "@[<v>%a@,@,%s = %a@,minimised: %s = %a@,PFoBE = %.2f%%@]"
    (pp_cases ~output_name) r output_name Expr.pp r.Analyzer.expr
    output_name Expr.pp
    (Analyzer.minimised_expr r)
    r.Analyzer.fitness

let pp_verification ppf (v : Verify.report) =
  let arity = Truth_table.arity v.Verify.expected in
  if v.Verify.verified then
    Format.fprintf ppf
      "@[<v>verified: extracted logic matches the expected truth table \
       (PFoBE %.2f%%)@]"
      v.Verify.fitness
  else
    Format.fprintf ppf
      "@[<v>NOT verified: %d wrong state(s): %a (PFoBE %.2f%%)@]"
      (List.length v.Verify.wrong_states)
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         (fun ppf -> pp_combination ~arity ppf))
      v.Verify.wrong_states v.Verify.fitness

let result_to_string ~output_name r =
  Format.asprintf "%a" (pp_result ~output_name) r

module Json = struct
  let escape s =
    let buf = Buffer.create (String.length s + 2) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
            Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  let string s = "\"" ^ escape s ^ "\""

  let float x =
    if not (Float.is_finite x) then "null"
    else if Float.is_integer x && Float.abs x < 1e15 then
      Printf.sprintf "%.0f" x
    else begin
      (* shortest decimal that round-trips, so equal floats always print
         identically (the ensemble's byte-for-byte determinism check) *)
      let s15 = Printf.sprintf "%.15g" x in
      if float_of_string s15 = x then s15 else Printf.sprintf "%.17g" x
    end

  let bool b = if b then "true" else "false"

  (* ---- minimal reader ---- *)

  type value =
    | Null
    | Bool of bool
    | Number of float
    | String of string
    | Array of value list
    | Object of (string * value) list

  exception Parse_error of string

  let parse s =
    let n = String.length s in
    let pos = ref 0 in
    let fail msg =
      raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos))
    in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let skip_ws () =
      while
        !pos < n
        && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
      do
        incr pos
      done
    in
    let expect c =
      match peek () with
      | Some c' when c' = c -> incr pos
      | _ -> fail (Printf.sprintf "expected %C" c)
    in
    let literal word v =
      let m = String.length word in
      if !pos + m <= n && String.sub s !pos m = word then begin
        pos := !pos + m;
        v
      end
      else fail (Printf.sprintf "expected %s" word)
    in
    let hex4 () =
      if !pos + 4 > n then fail "truncated \\u escape";
      let v = int_of_string_opt ("0x" ^ String.sub s !pos 4) in
      match v with
      | Some v ->
          pos := !pos + 4;
          v
      | None -> fail "bad \\u escape"
    in
    let add_utf8 buf code =
      if code < 0x80 then Buffer.add_char buf (Char.chr code)
      else if code < 0x800 then begin
        Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
        Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
      end
      else if code < 0x10000 then begin
        Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
        Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
        Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
      end
      else begin
        Buffer.add_char buf (Char.chr (0xF0 lor (code lsr 18)));
        Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
        Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
        Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
      end
    in
    let string_lit () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "unterminated string";
        match s.[!pos] with
        | '"' -> incr pos
        | '\\' ->
            incr pos;
            (if !pos >= n then fail "unterminated escape"
             else
               match s.[!pos] with
               | '"' -> Buffer.add_char buf '"'; incr pos
               | '\\' -> Buffer.add_char buf '\\'; incr pos
               | '/' -> Buffer.add_char buf '/'; incr pos
               | 'b' -> Buffer.add_char buf '\b'; incr pos
               | 'f' -> Buffer.add_char buf '\012'; incr pos
               | 'n' -> Buffer.add_char buf '\n'; incr pos
               | 'r' -> Buffer.add_char buf '\r'; incr pos
               | 't' -> Buffer.add_char buf '\t'; incr pos
               | 'u' ->
                   incr pos;
                   let hi = hex4 () in
                   if
                     hi >= 0xD800 && hi <= 0xDBFF && !pos + 2 <= n
                     && s.[!pos] = '\\'
                     && s.[!pos + 1] = 'u'
                   then begin
                     pos := !pos + 2;
                     let lo = hex4 () in
                     if lo >= 0xDC00 && lo <= 0xDFFF then
                       add_utf8 buf
                         (0x10000
                         + ((hi - 0xD800) lsl 10)
                         + (lo - 0xDC00))
                     else begin
                       add_utf8 buf hi;
                       add_utf8 buf lo
                     end
                   end
                   else add_utf8 buf hi
               | c -> fail (Printf.sprintf "bad escape \\%c" c));
            go ()
        | c -> Buffer.add_char buf c; incr pos; go ()
      in
      go ();
      Buffer.contents buf
    in
    let number () =
      let start = !pos in
      let num_char c =
        match c with
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while !pos < n && num_char s.[!pos] do
        incr pos
      done;
      match float_of_string_opt (String.sub s start (!pos - start)) with
      | Some f -> f
      | None -> fail "bad number"
    in
    let rec value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some 'n' -> literal "null" Null
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some '"' -> String (string_lit ())
      | Some '[' ->
          incr pos;
          skip_ws ();
          if peek () = Some ']' then begin
            incr pos;
            Array []
          end
          else begin
            let rec items acc =
              let v = value () in
              skip_ws ();
              match peek () with
              | Some ',' -> incr pos; items (v :: acc)
              | Some ']' -> incr pos; List.rev (v :: acc)
              | _ -> fail "expected ',' or ']'"
            in
            Array (items [])
          end
      | Some '{' ->
          incr pos;
          skip_ws ();
          if peek () = Some '}' then begin
            incr pos;
            Object []
          end
          else begin
            let field () =
              skip_ws ();
              let k = string_lit () in
              skip_ws ();
              expect ':';
              let v = value () in
              (k, v)
            in
            let rec fields acc =
              let f = field () in
              skip_ws ();
              match peek () with
              | Some ',' -> incr pos; fields (f :: acc)
              | Some '}' -> incr pos; List.rev (f :: acc)
              | _ -> fail "expected ',' or '}'"
            in
            Object (fields [])
          end
      | Some ('-' | '0' .. '9') -> Number (number ())
      | Some c -> fail (Printf.sprintf "unexpected %C" c)
    in
    match
      let v = value () in
      skip_ws ();
      if !pos <> n then fail "trailing garbage";
      v
    with
    | v -> Ok v
    | exception Parse_error msg -> Error msg

  let member v k =
    match v with Object fields -> List.assoc_opt k fields | _ -> None

  let to_bool = function Bool b -> Some b | _ -> None
  let to_number = function Number f -> Some f | _ -> None

  let to_int = function
    | Number f when Float.is_integer f && Float.abs f <= 2. ** 53. ->
        Some (int_of_float f)
    | _ -> None

  let to_str = function String s -> Some s | _ -> None
  let to_list = function Array l -> Some l | _ -> None
end
