module Expr = Glc_logic.Expr
module Truth_table = Glc_logic.Truth_table

let pp_combination ~arity ppf row =
  for j = arity - 1 downto 0 do
    Format.pp_print_int ppf ((row lsr j) land 1)
  done

let combination_string ~arity row =
  Format.asprintf "%a" (fun ppf -> pp_combination ~arity ppf) row

let pp_cases ~output_name ppf (r : Analyzer.result) =
  let arity = r.Analyzer.arity in
  Format.fprintf ppf "@[<v>%-*s %8s %8s %8s %9s %6s %6s %4s@," (max arity 5)
    "case" "Case_I" "High_O" "Var_O" "FOV_EST" "eq(1)" "eq(2)" "min";
  Array.iter
    (fun (c : Analyzer.case_stats) ->
      Format.fprintf ppf "%-*s %8d %8d %8d %9.4f %6s %6s %4s@," (max arity 5)
        (combination_string ~arity c.Analyzer.row)
        c.case_count c.high_count c.variations c.fov_est
        (if c.passes_fov then "pass" else "fail")
        (if c.passes_majority then "pass" else "fail")
        (if c.included then "*" else ""))
    r.Analyzer.cases;
  Format.fprintf ppf "(* = minterm of %s)@]" output_name

let pp_result ~output_name ppf (r : Analyzer.result) =
  Format.fprintf ppf "@[<v>%a@,@,%s = %a@,minimised: %s = %a@,PFoBE = %.2f%%@]"
    (pp_cases ~output_name) r output_name Expr.pp r.Analyzer.expr
    output_name Expr.pp
    (Analyzer.minimised_expr r)
    r.Analyzer.fitness

let pp_verification ppf (v : Verify.report) =
  let arity = Truth_table.arity v.Verify.expected in
  if v.Verify.verified then
    Format.fprintf ppf
      "@[<v>verified: extracted logic matches the expected truth table \
       (PFoBE %.2f%%)@]"
      v.Verify.fitness
  else
    Format.fprintf ppf
      "@[<v>NOT verified: %d wrong state(s): %a (PFoBE %.2f%%)@]"
      (List.length v.Verify.wrong_states)
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         (fun ppf -> pp_combination ~arity ppf))
      v.Verify.wrong_states v.Verify.fitness

let result_to_string ~output_name r =
  Format.asprintf "%a" (pp_result ~output_name) r

module Json = struct
  let escape s =
    let buf = Buffer.create (String.length s + 2) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
            Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  let string s = "\"" ^ escape s ^ "\""

  let float x =
    if not (Float.is_finite x) then "null"
    else if Float.is_integer x && Float.abs x < 1e15 then
      Printf.sprintf "%.0f" x
    else begin
      (* shortest decimal that round-trips, so equal floats always print
         identically (the ensemble's byte-for-byte determinism check) *)
      let s15 = Printf.sprintf "%.15g" x in
      if float_of_string s15 = x then s15 else Printf.sprintf "%.17g" x
    end

  let bool b = if b then "true" else "false"
end
