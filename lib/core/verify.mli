(** Verification of extracted logic against the intended behaviour.

    The paper verifies a circuit by comparing the Boolean expression
    Algorithm 1 extracts with the designer's intent (the circuit's truth
    table); Fig. 5 reports the mismatching combinations as "wrong
    states". *)

module Truth_table := Glc_logic.Truth_table
module Experiment := Glc_dvasim.Experiment

type report = {
  expected : Truth_table.t;
  extracted : Truth_table.t;
  wrong_states : int list;
      (** combinations where extracted and expected logic differ *)
  verified : bool;  (** no wrong states *)
  fitness : float;  (** PFoBE of the analysis *)
}

val against : expected:Truth_table.t -> Analyzer.result -> report
(** @raise Invalid_argument on arity mismatch. *)

val experiment :
  ?params:Analyzer.params -> Experiment.t -> Analyzer.result * report
(** Runs the analysis on an experiment and verifies it against the
    circuit's expected table. *)

(** {2 Certified-first verification}

    The symbolic analyser ({!Glc_symbolic.Certificate}) is consulted
    before any trajectory is sampled; rows it proves are taken on its
    word and only the undecided remainder is simulated — the
    row-restricted stimulus gives each of them the per-row slot budget
    of a full run. A fully certified circuit costs no simulation at
    all. *)

(** Where a row's verdict came from. *)
type provenance = Certified | Simulated

type hybrid = {
  h_certificate : Glc_symbolic.Certificate.t;
  h_result : Analyzer.result option;
      (** the row-restricted stochastic analysis; [None] when the
          certificate decided every row *)
  h_provenance : provenance array;  (** indexed by combination *)
  h_simulated_rows : int list;  (** the certificate's undecided rows *)
  h_report : report;
      (** certified verdicts and simulated extractions merged against
          the intent; [fitness] is 100 for a fully certified run,
          otherwise the simulated slice's PFoBE *)
}

val certified_first :
  ?params:Analyzer.params ->
  ?margin:float ->
  ?max_iters:int ->
  ?metrics:Glc_obs.Metrics.t ->
  ?protocol:Glc_dvasim.Protocol.t ->
  Glc_gates.Circuit.t ->
  hybrid
(** Certify, then simulate only what is left. The analyser threshold
    follows the protocol; [margin] and [max_iters] are passed to
    {!Glc_symbolic.Certificate.certify}. Records the
    [symbolic.fallback_simulations] and [symbolic.fallback_rows]
    counters (next to the certificate's own [symbolic.*] counters) on
    [metrics]. *)

val provenance_string : provenance -> string
(** ["certified"] / ["simulated"]. *)

(** Why a combination came out wrong — each maps to a concrete remedy. *)
type cause =
  | Unobserved
      (** the combination never occurred in the log: lengthen the run *)
  | Unstable_output
      (** rejected by eq. (1): oscillation around the threshold — move
          the threshold or revisit the gate's noise margins *)
  | Weak_output
      (** rejected by eq. (2): mostly-low stream, typically a stale or
          slowly-rising output — lengthen the hold time *)
  | Unexpected_high
      (** a stable high where the intent says low: the circuit (or the
          chosen threshold) computes a different function *)

type finding = { f_row : int; f_cause : cause }

val diagnose : Analyzer.result -> report -> finding list
(** One finding per wrong state, in combination order.
    @raise Invalid_argument if result and report disagree on arity. *)

val pp_finding : arity:int -> Format.formatter -> finding -> unit
