module Truth_table = Glc_logic.Truth_table
module Experiment = Glc_dvasim.Experiment
module Protocol = Glc_dvasim.Protocol
module Circuit = Glc_gates.Circuit
module Certificate = Glc_symbolic.Certificate
module Metrics = Glc_obs.Metrics

type report = {
  expected : Truth_table.t;
  extracted : Truth_table.t;
  wrong_states : int list;
  verified : bool;
  fitness : float;
}

let against ~expected (r : Analyzer.result) =
  if Truth_table.arity expected <> r.Analyzer.arity then
    invalid_arg "Verify.against: arity mismatch";
  let extracted = Analyzer.extracted_table r in
  let wrong_states =
    List.filter
      (fun row -> Truth_table.output expected row <> Truth_table.output extracted row)
      (List.init (Truth_table.rows expected) Fun.id)
  in
  {
    expected;
    extracted;
    wrong_states;
    verified = wrong_states = [];
    fitness = r.Analyzer.fitness;
  }

let experiment ?params (e : Experiment.t) =
  let r = Analyzer.of_experiment ?params e in
  (r, against ~expected:e.Experiment.circuit.Circuit.expected r)

(* ------------------------------------------------------------------ *)
(* Certified-first hybrid verification: consult the interval analyser,
   simulate only the rows it leaves undecided. *)

type provenance = Certified | Simulated

type hybrid = {
  h_certificate : Certificate.t;
  h_result : Analyzer.result option;
      (* the row-restricted stochastic analysis; None when the
         certificate decided every row *)
  h_provenance : provenance array;
  h_simulated_rows : int list;
  h_report : report;
}

let certified_first ?(params = Analyzer.default_params) ?margin ?max_iters
    ?(metrics = Metrics.noop) ?(protocol = Protocol.default) (c : Circuit.t) =
  let params = { params with Analyzer.threshold = protocol.Protocol.threshold } in
  let cert = Certificate.certify ~metrics ?margin ?max_iters ~protocol c in
  let arity = Circuit.arity c in
  let n_rows = 1 lsl arity in
  let undecided = Certificate.undecided_rows cert in
  let result, row_value =
    match undecided with
    | [] ->
        ( None,
          fun row ->
            match Certificate.proved_output cert row with
            | Some b -> b
            | None -> assert false )
    | rows ->
        if Metrics.enabled metrics then begin
          Metrics.Counter.incr
            (Metrics.counter metrics "symbolic.fallback_simulations");
          Metrics.Counter.add
            (Metrics.counter metrics "symbolic.fallback_rows")
            (List.length rows)
        end;
        (* give each undecided row the per-row slot budget the full
           protocol would have granted it (rounding up), so the
           stability filter sees comparable sample counts *)
        let visits =
          let slots = Protocol.slots protocol in
          max 1 ((slots + n_rows - 1) / n_rows)
        in
        let rows_a = Array.of_list rows in
        let trace =
          Experiment.run_trace_rows ~metrics ~protocol
            ~inputs:c.Circuit.inputs ~rows:rows_a
            (visits * Array.length rows_a)
            (Circuit.model c)
        in
        let r =
          Analyzer.run ~params
            {
              Analyzer.trace;
              inputs = c.Circuit.inputs;
              output = c.Circuit.output;
            }
        in
        let extracted = Analyzer.extracted_table r in
        ( Some r,
          fun row ->
            match Certificate.proved_output cert row with
            | Some b -> b
            | None -> Truth_table.output extracted row )
  in
  let extracted = Truth_table.create ~arity row_value in
  let wrong_states =
    List.filter
      (fun row ->
        Truth_table.output c.Circuit.expected row
        <> Truth_table.output extracted row)
      (List.init n_rows Fun.id)
  in
  let fitness =
    (* PFoBE measures observed output variation; certified rows carry
       none, so a fully certified circuit scores a clean 100 and a
       hybrid run scores whatever its simulated slice did *)
    match result with None -> 100. | Some r -> r.Analyzer.fitness
  in
  {
    h_certificate = cert;
    h_result = result;
    h_provenance =
      Array.init n_rows (fun row ->
          if Certificate.proved_output cert row <> None then Certified
          else Simulated);
    h_simulated_rows = undecided;
    h_report =
      {
        expected = c.Circuit.expected;
        extracted;
        wrong_states;
        verified = wrong_states = [];
        fitness;
      };
  }

let provenance_string = function
  | Certified -> "certified"
  | Simulated -> "simulated"

type cause = Unobserved | Unstable_output | Weak_output | Unexpected_high

type finding = { f_row : int; f_cause : cause }

let diagnose (r : Analyzer.result) report =
  if Truth_table.arity report.expected <> r.Analyzer.arity then
    invalid_arg "Verify.diagnose: arity mismatch";
  List.map
    (fun row ->
      let c = r.Analyzer.cases.(row) in
      let cause =
        if Truth_table.output report.expected row then
          (* expected high, extracted low *)
          if c.Analyzer.case_count = 0 then Unobserved
          else if not c.Analyzer.passes_fov then Unstable_output
          else Weak_output
        else Unexpected_high
      in
      { f_row = row; f_cause = cause })
    report.wrong_states

let combination_string ~arity row =
  String.init arity (fun j ->
      if (row lsr (arity - 1 - j)) land 1 = 1 then '1' else '0')

let pp_finding ~arity ppf f =
  let combination = combination_string ~arity f.f_row in
  match f.f_cause with
  | Unobserved ->
      Format.fprintf ppf
        "%s: never applied during the run — lengthen the simulation so \
         every combination gets a slot"
        combination
  | Unstable_output ->
      Format.fprintf ppf
        "%s: output oscillates around the threshold (rejected by eq. 1) \
         — adjust the threshold or the gate's noise margins"
        combination
  | Weak_output ->
      Format.fprintf ppf
        "%s: output mostly below threshold (rejected by eq. 2), \
         typically a stale or slow transition — lengthen the hold time"
        combination
  | Unexpected_high ->
      Format.fprintf ppf
        "%s: stable logic-1 where the intent says 0 — the circuit \
         computes a different function at this operating point"
        combination
