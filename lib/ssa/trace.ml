type t = {
  names : string array;
  t0 : float;
  dt : float;
  data : float array array; (* species-major: data.(s).(k) *)
  mutable memo : (string, int) Hashtbl.t option;
      (* lazy name->index table; [names] is immutable so the table is
         built at most once (an idempotent race under domains) *)
}

let names tr = tr.names
let length tr = if Array.length tr.data = 0 then 0 else Array.length tr.data.(0)
let t0 tr = tr.t0
let dt tr = tr.dt
let time tr k = tr.t0 +. (float_of_int k *. tr.dt)

let index_table tr =
  match tr.memo with
  | Some h -> h
  | None ->
      let h = Hashtbl.create (2 * Array.length tr.names) in
      (* keep the first occurrence, as the linear scan did *)
      Array.iteri
        (fun i id -> if not (Hashtbl.mem h id) then Hashtbl.add h id i)
        tr.names;
      tr.memo <- Some h;
      h

let index tr id = Hashtbl.find_opt (index_table tr) id

let index_exn tr id =
  match index tr id with Some i -> i | None -> raise Not_found

let value tr id k = tr.data.(index_exn tr id).(k)
let column tr id = Array.copy tr.data.(index_exn tr id)

let sub tr ~from ~until =
  let n = length tr in
  if from < 0 || until > n || from > until then
    invalid_arg "Trace.sub: bounds out of range";
  {
    tr with
    t0 = time tr from;
    data = Array.map (fun col -> Array.sub col from (until - from)) tr.data;
  }

let concat a b =
  if a.names <> b.names then
    invalid_arg "Trace.concat: different species";
  if Float.abs (a.dt -. b.dt) > 1e-9 *. a.dt then
    invalid_arg "Trace.concat: different sampling steps";
  (* An empty operand is the identity: it has no last sample, so the
     contiguity test below would otherwise compare against the
     meaningless time [t0 - dt] and spuriously reject (or, worse,
     accept only when b.t0 happens to equal a.t0). *)
  if length a = 0 then b
  else if length b = 0 then a
  else begin
    let expected_start = time a (length a - 1) +. a.dt in
    if Float.abs (b.t0 -. expected_start) > 1e-6 *. a.dt then
      invalid_arg "Trace.concat: traces are not contiguous";
    {
      a with
      data = Array.map2 (fun ca cb -> Array.append ca cb) a.data b.data;
    }
  end

(* The option-returning statistics are the primitives: an empty trace
   has no mean, and a zero-mean series has no Fano factor — [None]
   makes the caller decide, instead of a [0.]/[nan] sentinel silently
   flowing into downstream arithmetic. The float versions below keep
   the old convenient signatures with documented sentinels. *)

let mean_opt tr id =
  let col = tr.data.(index_exn tr id) in
  let n = Array.length col in
  if n = 0 then None
  else Some (Array.fold_left ( +. ) 0. col /. float_of_int n)

let variance_opt tr id =
  let col = tr.data.(index_exn tr id) in
  let n = Array.length col in
  if n = 0 then None
  else begin
    let mean = Array.fold_left ( +. ) 0. col /. float_of_int n in
    let sq = Array.fold_left (fun acc v -> acc +. ((v -. mean) ** 2.)) 0. col in
    Some (sq /. float_of_int n)
  end

let fano_factor_opt tr id =
  match (mean_opt tr id, variance_opt tr id) with
  | Some m, Some v when m <> 0. -> Some (v /. m)
  | _ -> None

let mean tr id = Option.value ~default:0. (mean_opt tr id)
let variance tr id = Option.value ~default:0. (variance_opt tr id)

let fano_factor tr id =
  Option.value ~default:nan (fano_factor_opt tr id)

let crossings tr id level =
  let col = tr.data.(index_exn tr id) in
  let n = Array.length col in
  let count = ref 0 in
  for k = 1 to n - 1 do
    if col.(k) >= level <> (col.(k - 1) >= level) then incr count
  done;
  !count

let max_value tr id =
  Array.fold_left Float.max neg_infinity tr.data.(index_exn tr id)

let to_csv tr =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "time";
  Array.iter
    (fun n ->
      Buffer.add_char buf ',';
      Buffer.add_string buf n)
    tr.names;
  Buffer.add_char buf '\n';
  for k = 0 to length tr - 1 do
    Buffer.add_string buf (Printf.sprintf "%.17g" (time tr k));
    Array.iter
      (fun col ->
        Buffer.add_char buf ',';
        Buffer.add_string buf (Printf.sprintf "%.17g" col.(k)))
      tr.data;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

let of_csv s =
  let lines =
    String.split_on_char '\n' s
    |> List.filter (fun l -> String.trim l <> "")
  in
  match lines with
  | [] -> Error "empty CSV"
  | header :: rows -> (
      match String.split_on_char ',' header with
      | "time" :: names when names <> [] -> (
          let names = Array.of_list names in
          let nspecies = Array.length names in
          let parse_row row =
            let cells = String.split_on_char ',' row in
            match List.map float_of_string_opt cells with
            | cells when List.exists Option.is_none cells ->
                Error (Printf.sprintf "non-numeric cell in row %S" row)
            | cells -> (
                match List.map Option.get cells with
                | t :: vs when List.length vs = nspecies -> Ok (t, vs)
                | _ -> Error (Printf.sprintf "wrong arity in row %S" row))
          in
          let rec parse acc = function
            | [] -> Ok (List.rev acc)
            | r :: rest -> (
                match parse_row r with
                | Ok x -> parse (x :: acc) rest
                | Error e -> Error e)
          in
          match parse [] rows with
          | Error e -> Error e
          | Ok [] -> Error "CSV has no data rows"
          | Ok ((t_first, _) :: _ as parsed) ->
              let n = List.length parsed in
              let dt =
                match parsed with
                | (ta, _) :: (tb, _) :: _ -> tb -. ta
                | _ -> 1.
              in
              if dt <= 0. then Error "CSV time column is not increasing"
              else begin
                let data =
                  Array.init nspecies (fun _ -> Array.make n 0.)
                in
                List.iteri
                  (fun k (_, vs) ->
                    List.iteri (fun s v -> data.(s).(k) <- v) vs)
                  parsed;
                (* Verify the grid is uniform. *)
                let uniform =
                  List.for_all
                    (fun (k, (tk, _)) ->
                      Float.abs (tk -. (t_first +. (float_of_int k *. dt)))
                      <= 1e-9 *. Float.max 1. (Float.abs tk))
                    (List.mapi (fun k x -> (k, x)) parsed)
                in
                if not uniform then Error "CSV time grid is not uniform"
                else Ok { names; t0 = t_first; dt; data; memo = None }
              end)
      | _ -> Error "CSV header must start with 'time' and list species")

let write_csv path tr =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_csv tr))

let read_csv path =
  let ic = open_in path in
  let content =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  of_csv content

module Recorder = struct
  type t = {
    r_names : string array;
    r_t0 : float;
    r_dt : float;
    r_data : float array array;
    r_samples : int;
    mutable r_next : int; (* next grid index to fill *)
    mutable r_state : float array; (* state holding from the last observe *)
    mutable r_last_time : float;
  }

  let create ~names ~initial ~t0 ~t_end ~dt =
    if dt <= 0. then invalid_arg "Trace.Recorder.create: dt <= 0";
    if t_end < t0 then invalid_arg "Trace.Recorder.create: t_end < t0";
    if Array.length names <> Array.length initial then
      invalid_arg "Trace.Recorder.create: names/initial length mismatch";
    let samples = int_of_float (Float.floor ((t_end -. t0) /. dt)) + 1 in
    {
      r_names = names;
      r_t0 = t0;
      r_dt = dt;
      r_data = Array.init (Array.length names) (fun _ -> Array.make samples 0.);
      r_samples = samples;
      r_next = 0;
      r_state = Array.copy initial;
      r_last_time = t0;
    }

  let fill_until r t =
    (* Grid points strictly before [t] take the held state. *)
    while
      r.r_next < r.r_samples
      && r.r_t0 +. (float_of_int r.r_next *. r.r_dt) < t
    do
      Array.iteri (fun s col -> col.(r.r_next) <- r.r_state.(s)) r.r_data;
      r.r_next <- r.r_next + 1
    done

  let observe r t state =
    if t < r.r_last_time then
      invalid_arg "Trace.Recorder.observe: time went backwards";
    fill_until r t;
    r.r_last_time <- t;
    Array.blit state 0 r.r_state 0 (Array.length state)

  let finish r =
    fill_until r infinity;
    { names = r.r_names; t0 = r.r_t0; dt = r.r_dt; data = r.r_data;
      memo = None }
end
