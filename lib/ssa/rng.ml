type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64;
           mutable s3 : int64 }

(* splitmix64: expands a single seed into the four xoshiro words. *)
let splitmix64 state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create seed =
  let state = ref (Int64.of_int seed) in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3 }

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let bits64 t =
  let open Int64 in
  let result = add (rotl (add t.s0 t.s3) 23) t.s0 in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t =
  let state = ref (bits64 t) in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3 }

let float t =
  (* top 53 bits *)
  let bits = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float bits *. 0x1.0p-53

let float_pos t = 1.0 -. float t

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound <= 0";
  (* Rejection sampling to avoid modulo bias. [r] is uniform on
     [0, 2^62 - 1] = [0, max_int]; [r - v] is the start of r's
     [bound]-sized bucket, and the draw is accepted iff the whole bucket
     [r - v, r - v + bound) fits below 2^62 — i.e. unless
     r - v > max_int - bound + 1 — so every accepted bucket is complete
     and each residue is equally likely. The rejected tail is at most
     [bound - 1] values out of 2^62, so for any bound the acceptance
     probability exceeds 1/2 and the loop terminates quickly. *)
  let rec draw () =
    let r = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
    let v = r mod bound in
    if r - v > max_int - bound + 1 then draw () else v
  in
  draw ()

let exponential t ~rate =
  if rate <= 0. then invalid_arg "Rng.exponential: rate <= 0";
  -.Float.log (float_pos t) /. rate

let gaussian t =
  let u1 = float_pos t and u2 = float t in
  Float.sqrt (-2. *. Float.log u1) *. Float.cos (2. *. Float.pi *. u2)

(* ln k!: exact (precomputed) below 10, De Moivre/Stirling series above —
   absolute error < 1e-9 at k = 10 and falling with k. PTRS compares
   against this inside a log whose acceptance margins are orders of
   magnitude wider, so the truncation is invisible to the sampler. *)
let log_factorial =
  let table = Array.make 10 0. in
  let () =
    for k = 2 to 9 do
      table.(k) <- table.(k - 1) +. Float.log (float_of_int k)
    done
  in
  fun k ->
    if k < 10 then table.(k)
    else
      let x = float_of_int (k + 1) in
      ((x -. 0.5) *. Float.log x)
      -. x
      +. (0.5 *. Float.log (2. *. Float.pi))
      +. (1. /. (12. *. x))
      -. (1. /. (360. *. (x *. x *. x)))

(* Hörmann's PTRS transformed-rejection sampler (1993). Unlike the
   exp-based inversion, nothing here evaluates e^-mean — the acceptance
   test works entirely in logs — so it neither underflows at large mean
   (e^-745 is 0. in IEEE double, which made inversion spin forever) nor
   truncates the distribution the way a rounded normal approximation
   does. Expected uniforms per draw is < 2.5 for every mean above the
   cutoff. *)
let poisson_ptrs t ~mean =
  let loglam = Float.log mean in
  let b = 0.931 +. (2.53 *. Float.sqrt mean) in
  let a = -0.059 +. (0.02483 *. b) in
  let inv_alpha = 1.1239 +. (1.1328 /. (b -. 3.4)) in
  let v_r = 0.9277 -. (3.6224 /. (b -. 2.)) in
  let rec draw () =
    let u = float t -. 0.5 in
    let v = float t in
    let us = 0.5 -. Float.abs u in
    let kf =
      Float.floor ((((2. *. a /. us) +. b) *. u) +. mean +. 0.43)
    in
    if us >= 0.07 && v <= v_r then int_of_float kf
    else if kf < 0. || (us < 0.013 && v > us) then draw ()
    else
      let k = int_of_float kf in
      if
        Float.log (v *. inv_alpha /. ((a /. (us *. us)) +. b))
        <= (kf *. loglam) -. mean -. log_factorial k
      then k
      else draw ()
  in
  draw ()

let poisson t ~mean =
  if not (Float.is_finite mean) || mean < 0. then
    invalid_arg "Rng.poisson: mean must be finite and non-negative";
  if mean = 0. then 0
  else if mean < 10. then begin
    (* Knuth: multiply uniforms until the product drops below e^-mean.
       Safe here — e^-10 ≈ 4.5e-5 is far from underflow — and O(mean)
       uniforms per draw is cheap below the cutoff. *)
    let limit = Float.exp (-.mean) in
    let rec go k p =
      let p = p *. float t in
      if p <= limit then k else go (k + 1) p
    in
    go 0 1.
  end
  else poisson_ptrs t ~mean
