(** Flat propensity IR: kinetic laws compiled to packed instruction
    arrays.

    The SSA hot path evaluates kinetic laws millions of times per run;
    walking the {!Glc_model.Math.t} AST (or a tree of closures built
    from it) costs an indirect call and a cache miss per node.  This
    module compiles a law once into a flat array of integer-packed
    three-address instructions, evaluated by a tight match-dispatch
    loop that allocates nothing — the trace-IR interpreter idiom.

    Each instruction is one tagged 63-bit integer: a 7-bit opcode and
    three 14-bit operand fields.  Every binary arithmetic opcode comes
    in one variant per operand-source combination — register, constant
    pool, or state vector — so a mass-action law like [gamma * X] is a
    {e single} instruction reading the pool and the state directly,
    with no separate const/load traffic, and a folded Hill response is
    five.

    For the Hill response shapes every imported gate's production law
    reduces to, the instruction selector emits fused superinstructions
    (the whole [ymin + (ymax-ymin) * k^n/(k^n + x^n)] response is one
    opcode: one dispatch, one [pow]).  A superinstruction performs the
    exact IEEE operation sequence of the subtree it replaces, so fusion
    removes dispatch without perturbing a single bit.

    Beyond instruction selection, the compiler performs two
    semantics-preserving rewrites only:

    - {b constant folding} of operations whose operands are all
      constants, computed with exactly the IEEE operation the evaluator
      would use at run time (no algebraic identities — [0 * x] is not
      folded, NaN and signed zeros are preserved bit for bit);
    - {b common-subexpression elimination} by value numbering:
      structurally identical subterms (constants compared by bit
      pattern) evaluate once and share a register.  Value numbering is
      scoped to one {!builder}, so sharing extends across every law
      compiled into the same program.

    Both rewrites reuse or precompute the very float the AST evaluator
    would produce, so IR evaluation is bit-identical to
    {!Glc_model.Math.eval} on every input, including NaN and infinity
    propagation.  The differential QCheck property in [test_ssa]
    enforces this. *)

(** Where an instruction operand comes from. *)
type operand =
  | Reg of int  (** an earlier instruction's result *)
  | Pool of int  (** the program's constant pool *)
  | State of int  (** the simulation state vector *)

type prog = {
  p_code : int array;  (** packed instructions, executed in order *)
  p_pool : float array;  (** constants referenced by [Pool] operands *)
  p_regs : int;  (** register-file slots required (= code length) *)
}
(** A compiled program.  Registers are single-assignment: instruction
    [k] writes register [k] and reads only lower-numbered registers,
    so any scratch array of at least [p_regs] slots may be reused
    across evaluations (and across programs). *)

type expr = { e_prog : prog; e_result : operand }
(** One compiled expression: the program to run (shared when several
    expressions were compiled by one builder) and where its value
    lands.  A law that folds to a constant, or is a bare species
    reference, compiles to a [Pool]/[State] result and an empty
    program. *)

type stats = {
  s_instrs : int;  (** instructions emitted *)
  s_cse_hits : int;  (** subterms that reused an existing register *)
  s_const_folds : int;  (** operations evaluated at compile time *)
}

(** Accumulates several expressions into one shared program. *)
type builder

val builder : resolve:(string -> int option) -> unit -> builder
(** [resolve id] maps an identifier to its state-vector slot.
    Identifiers it does not resolve raise [Invalid_argument] at compile
    time — the model validator rejects them earlier, so reaching one
    here is a compiler bug, not user error. *)

val push : builder -> Glc_model.Math.t -> operand
(** Compile one expression into the builder's program, returning the
    operand that will hold its value.  Value numbering is shared with
    everything previously pushed, so a repeated subterm costs nothing.
    @raise Invalid_argument if the program outgrows the 14-bit operand
    encoding (16384 registers, pool slots or species — far beyond any
    real model). *)

val finish : builder -> prog * stats
(** Seal the builder.  The builder must not be used afterwards. *)

val compile : resolve:(string -> int option) -> Glc_model.Math.t -> expr * stats
(** One-shot [builder] / [push] / [finish] for a single expression. *)

val exec : prog -> regs:float array -> float array -> unit
(** [exec p ~regs state] runs the program over [state], leaving each
    instruction's value in its register.
    @raise Invalid_argument if [regs] is shorter than [p.p_regs]. *)

val eval : expr -> regs:float array -> float array -> float
(** [exec] the expression's program and read its result operand. *)

val read : expr -> regs:float array -> float array -> float
(** Read the result operand without re-running the program — valid
    right after an {!exec} of the same program over the same [regs]
    and [state]. *)

val exec_batch :
  prog ->
  regs:float array array ->
  states:float array array ->
  lanes:int array ->
  n:int ->
  unit
(** [exec_batch p ~regs ~states ~lanes ~n] runs the program across the
    first [n] entries of [lanes] at once, over structure-of-arrays
    storage: [regs.(slot).(lane)] is register [slot] of replicate
    [lane], and [states.(species).(lane)] its copy number.  Each
    instruction is decoded once and applied to every listed lane before
    the program counter advances, amortising dispatch and keeping lane
    state cache-contiguous; per lane the IEEE operation sequence is
    exactly that of {!exec}, so results are bit-identical to the scalar
    path lane by lane.
    @raise Invalid_argument if fewer than [p.p_regs] register rows are
    given, if [n] exceeds [lanes]'s length, or if any listed lane falls
    outside a register or state row. *)

val exec_batch_unchecked :
  prog ->
  regs:float array array ->
  states:float array array ->
  lanes:int array ->
  n:int ->
  unit
(** {!exec_batch} without the per-call argument validation.  The batch
    driver refreshes a handful of lanes per group, thousands of groups
    per run, against rows it allocated itself — re-walking every
    register and state row on each call costs more than the refresh.
    Preconditions (the caller's to uphold, validated nowhere):
    [Array.length regs >= p.p_regs], [0 <= n <= Array.length lanes],
    and every [lanes.(k)] with [k < n] indexes inside every register
    and state row.  Register rows are written with unchecked stores, so
    a violated precondition corrupts memory rather than raising — use
    {!exec_batch} unless the rows and lanes come from a block whose
    shape is fixed at construction. *)

val read_batch : expr -> regs:float array array -> states:float array array -> int -> float
(** [read_batch e ~regs ~states lane] reads the result operand for one
    lane — valid right after an {!exec_batch} that listed [lane]. *)

val pp_prog : Format.formatter -> prog -> unit
(** Human-readable disassembly, for tests and debugging. *)
