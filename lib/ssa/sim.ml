module Model = Glc_model.Model

type algorithm =
  | Direct
  | Direct_full_recompute
  | Next_reaction
  | Tau_leaping of { epsilon : float }

type config = {
  t0 : float;
  t_end : float;
  dt : float;
  seed : int;
  algorithm : algorithm;
}

let config ?(t0 = 0.) ?(dt = 1.) ?(seed = 42) ?(algorithm = Direct) ~t_end ()
    =
  if t_end < t0 then invalid_arg "Sim.config: t_end < t0";
  if dt <= 0. then invalid_arg "Sim.config: dt <= 0";
  { t0; t_end; dt; seed; algorithm }

type stats = {
  reactions_fired : int;
  events_applied : int;
  final_state : (string * float) list;
}

(* Applies every event scheduled at the head time; returns that time, the
   remaining schedule and the number applied. State writes go through
   [set] so the same code serves the scalar runners (writing a flat
   state vector) and the batched driver (writing one lane's column of
   the structure-of-arrays state). *)
let apply_events_at (c : Compiled.t) ~set schedule =
  match Events.next schedule with
  | None -> None
  | Some (first, _) ->
      let t = first.Events.e_time in
      let rec go n schedule =
        match Events.next schedule with
        | Some (e, rest) when e.Events.e_time = t ->
            (match Compiled.species_index c e.e_species with
            | i -> set i (Float.max 0. e.e_value)
            | exception Not_found ->
                invalid_arg
                  (Printf.sprintf "Sim: event on unknown species %S"
                     e.e_species));
            go (n + 1) rest
        | Some _ | None -> (n, schedule)
      in
      let n, rest = go 0 schedule in
      Some (t, n, rest)

let fire (c : Compiled.t) state mu =
  List.iter
    (fun (i, d) -> state.(i) <- Float.max 0. (state.(i) +. d))
    c.c_reactions.(mu).c_deltas

let sum = Array.fold_left ( +. ) 0.

let array_mem x a =
  let n = Array.length a in
  let rec go i = i < n && (a.(i) = x || go (i + 1)) in
  go 0

(* Selects a reaction index from propensities [a] given a uniform draw
   scaled by their sum. Floating-point rounding can leave the running
   cumulative sum short of [target] even though [target < sum a]; the
   scan must then fall back to the last reaction with positive
   propensity, never to a zero-propensity one (e.g. a reactant at count
   0), which must not fire. *)
let select a target =
  let n = Array.length a in
  let rec go i acc last =
    if i >= n then last
    else if a.(i) <= 0. then go (i + 1) acc last
    else
      let acc = acc +. a.(i) in
      if target < acc then i else go (i + 1) acc i
  in
  match go 0 0. (-1) with
  | -1 -> invalid_arg "Sim.select: no reaction has positive propensity"
  | i -> i

(* Per-run instrumentation totals, accumulated in plain mutable fields
   inside the hot loops and flushed to the metrics registry once per
   run — the inner loops never touch an atomic or a clock. *)
type tot = {
  mutable n_evals : int; (* propensity evaluations *)
  mutable n_instrs : int; (* IR instructions those evaluations executed *)
  mutable n_heap : int; (* indexed-heap updates (next-reaction) *)
  mutable n_obs : int; (* recorder observations *)
  mutable n_rej : int; (* tau-leap steps rejected (negative overshoot) *)
}

let make_tot () = { n_evals = 0; n_instrs = 0; n_heap = 0; n_obs = 0; n_rej = 0 }

(* The direct method in two propensity regimes sharing one loop. Sparse
   (the default): the cached array [a] is kept authoritative — after a
   firing only the reactions reachable from the fired reaction's deltas
   via the compile-time dependency closure are re-evaluated, and [a0] is
   recomputed by summing the cache. Because the cached entries equal
   fresh evaluations and the sum runs in the same index order, the RNG
   draw sequence — and therefore the trajectory — is byte-identical to
   the full-recompute reference, while propensity evaluations drop from
   O(R) to O(deps) per firing. Full recompute (the reference, kept for
   equivalence tests and the bench harness) re-evaluates every
   propensity at the top of every step. *)
let run_direct ~sparse rng (c : Compiled.t) cfg events recorder tot =
  let state = Array.copy c.c_initial in
  let set i v = state.(i) <- v in
  let fired = ref 0 and applied = ref 0 in
  let n_r = Array.length c.c_reactions in
  let a = Array.make n_r 0. in
  let regs = Compiled.make_regs c in
  let observe t =
    tot.n_obs <- tot.n_obs + 1;
    Trace.Recorder.observe recorder t state
  in
  let refresh_all () =
    Compiled.propensities_into_in c ~regs state a;
    tot.n_evals <- tot.n_evals + n_r;
    tot.n_instrs <- tot.n_instrs + Compiled.eval_cost c
  in
  let rec loop t events =
    if t < cfg.t_end then begin
      if not sparse then refresh_all ();
      let a0 = sum a in
      let t_ev = Events.next_time events in
      if a0 <= 0. then begin
        (* Nothing can fire: jump to the next intervention, if any. *)
        if t_ev <= cfg.t_end then begin
          match apply_events_at c ~set events with
          | Some (te, n, rest) ->
              applied := !applied + n;
              observe te;
              (* Events clamp arbitrary species: the cache is stale. *)
              if sparse then refresh_all ();
              loop te rest
          | None -> ()
        end
      end
      else begin
        let tau = Rng.exponential rng ~rate:a0 in
        let t' = t +. tau in
        if t' >= t_ev && t_ev <= cfg.t_end then begin
          match apply_events_at c ~set events with
          | Some (te, n, rest) ->
              applied := !applied + n;
              observe te;
              if sparse then refresh_all ();
              loop te rest
          | None -> assert false (* t_ev finite implies an event exists *)
        end
        else if t' < cfg.t_end then begin
          let mu = select a (Rng.float rng *. a0) in
          fire c state mu;
          incr fired;
          if sparse then begin
            tot.n_evals <-
              tot.n_evals + Compiled.refresh_affected_in c ~regs state mu a;
            tot.n_instrs <- tot.n_instrs + Compiled.affected_cost c mu
          end;
          observe t';
          loop t' events
        end
      end
    end
  in
  (* Interventions scheduled at or before t0 initialise the state. *)
  let rec catch_up events =
    match Events.next events with
    | Some (e, _) when e.Events.e_time <= cfg.t0 -> (
        match apply_events_at c ~set events with
        | Some (_, n, rest) ->
            applied := !applied + n;
            catch_up rest
        | None -> events)
    | Some _ | None -> events
  in
  let events = catch_up events in
  (* Observe only after catch-up so events at t0 are part of the
     recorded initial state, exactly as in the other two algorithms. *)
  observe cfg.t0;
  if sparse then refresh_all ();
  loop cfg.t0 events;
  (state, !fired, !applied)

let run_next_reaction rng (c : Compiled.t) cfg events recorder tot =
  let state = Array.copy c.c_initial in
  let set i v = state.(i) <- v in
  let fired = ref 0 and applied = ref 0 in
  let n = Array.length c.c_reactions in
  let heap = Indexed_heap.create n in
  let a = Array.make n 0. in
  let regs = Compiled.make_regs c in
  let observe t =
    tot.n_obs <- tot.n_obs + 1;
    Trace.Recorder.observe recorder t state
  in
  let draw_time t ai =
    if ai <= 0. then infinity else t +. Rng.exponential rng ~rate:ai
  in
  let redraw_all t =
    tot.n_evals <- tot.n_evals + n;
    tot.n_instrs <- tot.n_instrs + Compiled.eval_cost c;
    tot.n_heap <- tot.n_heap + n;
    for i = 0 to n - 1 do
      a.(i) <- Compiled.propensity_in c ~regs state i;
      Indexed_heap.update heap i (draw_time t a.(i))
    done
  in
  let rec catch_up events =
    match Events.next events with
    | Some (e, _) when e.Events.e_time <= cfg.t0 -> (
        match apply_events_at c ~set events with
        | Some (_, m, rest) ->
            applied := !applied + m;
            catch_up rest
        | None -> events)
    | Some _ | None -> events
  in
  let events = catch_up events in
  observe cfg.t0;
  redraw_all cfg.t0;
  let rec loop events =
    let mu, t_mu = Indexed_heap.min heap in
    let t_ev = Events.next_time events in
    if Float.min t_mu t_ev >= cfg.t_end then ()
    else if t_ev <= t_mu then begin
      match apply_events_at c ~set events with
      | Some (te, m, rest) ->
          applied := !applied + m;
          observe te;
          (* Exponential memorylessness makes redrawing every clock after
             an intervention statistically exact. *)
          redraw_all te;
          loop rest
      | None -> assert false
    end
    else begin
      fire c state mu;
      incr fired;
      observe t_mu;
      (* The fired reaction always draws a fresh clock, even when its
         propensity does not depend on anything it changed (a pure birth
         reaction, say) — otherwise its old firing time would stay at the
         heap minimum and time would stop advancing. When [mu] is not in
         its own dependency closure its propensity is unchanged, so the
         cached value serves the redraw without an evaluation; the draw
         happens first to keep the RNG sequence identical to the
         re-evaluate-[mu]-first ordering this loop always had. *)
      let affected = Compiled.affected_reactions c mu in
      let n_aff = Array.length affected in
      tot.n_evals <- tot.n_evals + n_aff;
      tot.n_instrs <- tot.n_instrs + Compiled.affected_cost c mu;
      tot.n_heap <- tot.n_heap + n_aff;
      if not (array_mem mu affected) then begin
        tot.n_heap <- tot.n_heap + 1;
        Indexed_heap.update heap mu (draw_time t_mu a.(mu))
      end;
      Array.iter
        (fun j ->
          let aj_old = a.(j) in
          let aj_new = Compiled.propensity_in c ~regs state j in
          a.(j) <- aj_new;
          if j = mu then Indexed_heap.update heap j (draw_time t_mu aj_new)
          else begin
            let tj = Indexed_heap.key heap j in
            let tj' =
              if aj_new <= 0. then infinity
              else if aj_old <= 0. || tj = infinity then
                draw_time t_mu aj_new
              else t_mu +. (aj_old /. aj_new *. (tj -. t_mu))
            in
            Indexed_heap.update heap j tj'
          end)
        affected;
      loop events
    end
  in
  loop events;
  (state, !fired, !applied)

(* Explicit tau-leaping. The leap length follows Cao, Gillespie & Petzold
   (2006): bound the expected relative change of every species by
   [epsilon], estimating the drift and diffusion of each species from the
   current propensities. Leaps shorter than a few expected SSA steps are
   not worth their bias, so the loop falls back to exact direct-method
   steps there. A leap whose Poisson counts would drive any species
   negative is rejected — tau is halved and the counts redrawn (the
   step-rejection remedy of Cao, Gillespie & Petzold 2005). The previous
   behaviour, clamping negatives to zero after committing the leap, was
   a real correctness bug: the products of the overshooting channel were
   credited in full while the reactants gave up fewer molecules than
   were consumed, creating mass out of nothing and corrupting every
   propensity evaluated downstream. *)
let run_tau_leap rng (c : Compiled.t) cfg ~epsilon events recorder tot =
  if epsilon <= 0. || epsilon >= 1. then
    invalid_arg "Sim: tau-leaping epsilon must be in (0, 1)";
  let state = Array.copy c.c_initial in
  let set i v = state.(i) <- v in
  let fired = ref 0 and applied = ref 0 in
  let observe t =
    tot.n_obs <- tot.n_obs + 1;
    Trace.Recorder.observe recorder t state
  in
  let n_species = Array.length c.c_names in
  let n_reactions = Array.length c.c_reactions in
  let mu = Array.make n_species 0. in
  let sigma2 = Array.make n_species 0. in
  let choose_tau a =
    Array.fill mu 0 n_species 0.;
    Array.fill sigma2 0 n_species 0.;
    for j = 0 to n_reactions - 1 do
      List.iter
        (fun (i, d) ->
          mu.(i) <- mu.(i) +. (d *. a.(j));
          sigma2.(i) <- sigma2.(i) +. (d *. d *. a.(j)))
        c.c_reactions.(j).c_deltas
    done;
    let tau = ref infinity in
    for i = 0 to n_species - 1 do
      if not c.c_boundary.(i) then begin
        (* g_i = 2 is a conservative bound for at-most-second-order
           kinetics *)
        let bound = Float.max (epsilon *. state.(i) /. 2.) 1. in
        if mu.(i) <> 0. then tau := Float.min !tau (bound /. Float.abs mu.(i));
        if sigma2.(i) > 0. then
          tau := Float.min !tau (bound *. bound /. sigma2.(i))
      end
    done;
    !tau
  in
  let rec catch_up events =
    match Events.next events with
    | Some (e, _) when e.Events.e_time <= cfg.t0 -> (
        match apply_events_at c ~set events with
        | Some (_, m, rest) ->
            applied := !applied + m;
            catch_up rest
        | None -> events)
    | Some _ | None -> events
  in
  let events = catch_up events in
  observe cfg.t0;
  let a = Array.make n_reactions 0. in
  let regs = Compiled.make_regs c in
  let refresh_all () =
    Compiled.propensities_into_in c ~regs state a;
    tot.n_evals <- tot.n_evals + n_reactions;
    tot.n_instrs <- tot.n_instrs + Compiled.eval_cost c
  in
  (* The cache [a] is kept authoritative across iterations, so only the
     exact-fallback branch can update it sparsely: a leap fires many
     reactions at once, and events clamp arbitrary species, so both are
     followed by a full refresh. *)
  refresh_all ();
  (* One attempted leap of length [tau]: draw every channel's Poisson
     count into [dstate] first, commit only if no species would go
     negative. Committing returns true; the caller halves tau and
     redraws on false. *)
  let dstate = Array.make n_species 0. in
  let try_leap tau =
    Array.fill dstate 0 n_species 0.;
    let k_tot = ref 0 in
    for j = 0 to n_reactions - 1 do
      if a.(j) > 0. then begin
        let k = Rng.poisson rng ~mean:(a.(j) *. tau) in
        if k > 0 then begin
          k_tot := !k_tot + k;
          List.iter
            (fun (i, d) -> dstate.(i) <- dstate.(i) +. (d *. float_of_int k))
            c.c_reactions.(j).c_deltas
        end
      end
    done;
    let ok = ref true in
    for i = 0 to n_species - 1 do
      if state.(i) +. dstate.(i) < 0. then ok := false
    done;
    if !ok then begin
      for i = 0 to n_species - 1 do
        state.(i) <- state.(i) +. dstate.(i)
      done;
      fired := !fired + !k_tot
    end;
    !ok
  in
  (* Halving caps out after 32 rejections (a factor of 4e9 — by then the
     leap means are far below one count and still overdrawing, which a
     real model cannot sustain); the caller then takes one exact step. *)
  let max_rejections = 32 in
  let rec leap tau rejections =
    if try_leap tau then Some tau
    else begin
      tot.n_rej <- tot.n_rej + 1;
      if rejections < max_rejections then leap (tau /. 2.) (rejections + 1)
      else None
    end
  in
  let rec loop t events =
    if t < cfg.t_end then begin
      let a0 = sum a in
      let t_ev = Events.next_time events in
      if a0 <= 0. then begin
        if t_ev <= cfg.t_end then begin
          match apply_events_at c ~set events with
          | Some (te, m, rest) ->
              applied := !applied + m;
              observe te;
              refresh_all ();
              loop te rest
          | None -> ()
        end
      end
      else begin
        let tau_sel = choose_tau a in
        if tau_sel < 10. /. a0 then exact_step t events a0 t_ev
        else begin
          let t_stop = Float.min cfg.t_end t_ev in
          match leap (Float.min tau_sel (t_stop -. t)) 0 with
          | None ->
              (* pathological: even a vanishing leap overdraws — resolve
                 the contention one exact firing at a time *)
              exact_step t events a0 t_ev
          | Some tau ->
              let t' = t +. tau in
              if t' >= t_ev && t_ev <= cfg.t_end then begin
                match apply_events_at c ~set events with
                | Some (te, m, rest) ->
                    applied := !applied + m;
                    observe te;
                    refresh_all ();
                    loop te rest
                | None -> assert false
              end
              else begin
                observe t';
                refresh_all ();
                loop t' events
              end
        end
      end
    end
  and exact_step t events a0 t_ev =
    (* exact fallback: one direct-method step, updated sparsely *)
    let tau = Rng.exponential rng ~rate:a0 in
    let t' = t +. tau in
    if t' >= t_ev && t_ev <= cfg.t_end then begin
      match apply_events_at c ~set events with
      | Some (te, m, rest) ->
          applied := !applied + m;
          observe te;
          refresh_all ();
          loop te rest
      | None -> assert false
    end
    else if t' < cfg.t_end then begin
      let mu_r = select a (Rng.float rng *. a0) in
      fire c state mu_r;
      incr fired;
      tot.n_evals <-
        tot.n_evals + Compiled.refresh_affected_in c ~regs state mu_r a;
      tot.n_instrs <- tot.n_instrs + Compiled.affected_cost c mu_r;
      observe t';
      loop t' events
    end
  in
  loop cfg.t0 events;
  (state, !fired, !applied)

module Metrics = Glc_obs.Metrics

let algorithm_label = function
  | Direct -> "direct"
  | Direct_full_recompute -> "direct_full"
  | Next_reaction -> "next_reaction"
  | Tau_leaping _ -> "tau_leaping"

(* One registry interaction per run: the loops above count into [tot];
   this flushes the totals after the fact. The counter part is shared
   with the batched driver, which flushes one [tot] per lane but has no
   per-lane wall time to observe. *)
let flush_counters metrics cfg ~ir ~fired ~applied ~samples tot =
  let algo = algorithm_label cfg.algorithm in
  let c name = Metrics.counter metrics name in
  Metrics.Counter.incr (c ("ssa.runs." ^ algo));
  Metrics.Counter.add (c "ssa.reactions_fired") fired;
  Metrics.Counter.add (c "ssa.events_applied") applied;
  Metrics.Counter.add (c "ssa.propensity_evals") tot.n_evals;
  Metrics.Counter.add (c "ssa.heap_updates") tot.n_heap;
  Metrics.Counter.add (c "ssa.recorder_observes") tot.n_obs;
  Metrics.Counter.add (c "ssa.tau_leap_rejections") tot.n_rej;
  Metrics.Counter.add (c "ssa.trace_samples") samples;
  if ir then begin
    (* the tripwire CI keys on ssa.ir.evals > 0 to prove the IR path
       is the one actually simulating *)
    Metrics.Counter.add (c "ssa.ir.evals") tot.n_evals;
    Metrics.Counter.add (c "ssa.ir.instructions") tot.n_instrs
  end

let flush_metrics metrics cfg ~ir ~fired ~applied ~samples tot ~t_start =
  flush_counters metrics cfg ~ir ~fired ~applied ~samples tot;
  Metrics.observe_since metrics
    ("ssa.run_seconds." ^ algorithm_label cfg.algorithm)
    t_start

let run_compiled_rng ?(events = Events.empty) ?(metrics = Metrics.noop) ~rng
    cfg (c : Compiled.t) =
  let live = Metrics.enabled metrics in
  let t_start = if live then Glc_obs.Clock.now () else 0. in
  let recorder =
    Trace.Recorder.create ~names:c.c_names ~initial:c.c_initial ~t0:cfg.t0
      ~t_end:cfg.t_end ~dt:cfg.dt
  in
  let tot = make_tot () in
  let state, fired, applied =
    match cfg.algorithm with
    | Direct -> run_direct ~sparse:true rng c cfg events recorder tot
    | Direct_full_recompute ->
        run_direct ~sparse:false rng c cfg events recorder tot
    | Next_reaction -> run_next_reaction rng c cfg events recorder tot
    | Tau_leaping { epsilon } ->
        run_tau_leap rng c cfg ~epsilon events recorder tot
  in
  let trace = Trace.Recorder.finish recorder in
  if live then
    flush_metrics metrics cfg
      ~ir:(c.Compiled.c_path <> Compiled.Ast)
      ~fired ~applied ~samples:(Trace.length trace) tot ~t_start;
  let final_state =
    Array.to_list (Array.mapi (fun i id -> (id, state.(i))) c.c_names)
  in
  (trace, { reactions_fired = fired; events_applied = applied; final_state })

let run_compiled ?events ?metrics cfg c =
  run_compiled_rng ?events ?metrics ~rng:(Rng.create cfg.seed) cfg c

(* Batched ensemble driver for the direct method: a block of replicate
   lanes advances in lockstep over structure-of-arrays state
   ([soa.(species).(lane)]) and register files (see
   {!Compiled.make_regs_batch}). Each round first flushes the
   propensity refreshes every lane requested in the previous round —
   grouped by reaction, so one instruction decode serves all requesting
   lanes ({!Ir.exec_batch}) — and then steps each live lane once.

   Per lane, the RNG draw sequence and every IEEE operation match
   [run_direct ~sparse:true] exactly. The only reordering is that the
   scalar loop refreshes affected propensities {e before} observing the
   post-firing time while this driver defers the refresh to the next
   round's flush; the refresh draws no randomness and observation reads
   only the state vector, never the propensity cache, so traces are
   byte-identical to the scalar path for the same per-lane generators
   (the QCheck differential in [test_ssa] pins this).

   Lanes retire independently — at [t_end], on exhausted propensities,
   or on a per-lane error (a non-finite law is re-attributed to the
   offending lane by scalar re-evaluation on the cold path) — and the
   round loop runs until every lane has retired. *)
let run_batch_direct ~metrics ~rngs ~events cfg (c : Compiled.t) =
  let w = Array.length rngs in
  let live = Metrics.enabled metrics in
  let t_start = if live then Glc_obs.Clock.now () else 0. in
  let n_species = Array.length c.c_names in
  let n_r = Array.length c.c_reactions in
  let soa = Array.init n_species (fun s -> Array.make w c.c_initial.(s)) in
  (* Per-lane AoS mirror of [soa], kept in sync by the two writers
     (firings and events). The recorder and the error diagnostics want
     a lane's state as one contiguous vector; maintaining it
     incrementally costs one extra store per stoichiometry entry
     instead of an O(species) gather on every observation. *)
  let mirror = Array.init w (fun _ -> Array.copy c.c_initial) in
  let regs = Compiled.make_regs_batch c ~width:w in
  let a = Array.init w (fun _ -> Array.make n_r 0.) in
  let recorders =
    Array.init w (fun _ ->
        Trace.Recorder.create ~names:c.c_names ~initial:c.c_initial
          ~t0:cfg.t0 ~t_end:cfg.t_end ~dt:cfg.dt)
  in
  let tots = Array.init w (fun _ -> make_tot ()) in
  let t_now = Array.make w cfg.t0 in
  let evs = Array.make w events in
  let fired = Array.make w 0 in
  let applied = Array.make w 0 in
  let alive = Array.make w true in
  let failed = Array.make w None in
  let n_alive = ref w in
  let retire l =
    if alive.(l) then begin
      alive.(l) <- false;
      decr n_alive
    end
  in
  let n_failed = ref 0 in
  let fail l e =
    if failed.(l) = None then begin
      failed.(l) <- Some e;
      incr n_failed
    end;
    retire l
  in
  let set_lane l i v =
    soa.(i).(l) <- v;
    mirror.(l).(i) <- v
  in
  let observe l t =
    tots.(l).n_obs <- tots.(l).n_obs + 1;
    Trace.Recorder.observe recorders.(l) t mirror.(l)
  in
  (* Closure-free delta application: the round loop fires every lane
     every round, so even one closure allocation per firing shows up. *)
  let rec apply_deltas m l = function
    | [] -> ()
    | (i, d) :: rest ->
        let row = soa.(i) in
        let v = Float.max 0. (row.(l) +. d) in
        row.(l) <- v;
        m.(i) <- v;
        apply_deltas m l rest
  in
  let fire_lane l mu = apply_deltas mirror.(l) l c.c_reactions.(mu).c_deltas in
  (* Deferred-refresh book-keeping: [pending.(j)] lists the lanes whose
     cached propensity of reaction [j] is stale, [touched] the stale
     reactions in first-request order so the flush is deterministic.
     Per-lane evaluation totals are counted at request time, which is
     exactly when the scalar loop would have evaluated. *)
  let pending = Array.init n_r (fun _ -> Array.make w 0) in
  let pending_n = Array.make n_r 0 in
  let touched = Array.make (max n_r 1) 0 in
  let n_touched = ref 0 in
  let request l j =
    if pending_n.(j) = 0 then begin
      touched.(!n_touched) <- j;
      incr n_touched
    end;
    pending.(j).(pending_n.(j)) <- l;
    pending_n.(j) <- pending_n.(j) + 1
  in
  let request_affected l mu =
    let aff = Compiled.affected_reactions c mu in
    (* [request], inlined: this runs for every firing's affected set. *)
    for k = 0 to Array.length aff - 1 do
      let j = Array.unsafe_get aff k in
      let nj = pending_n.(j) in
      if nj = 0 then begin
        touched.(!n_touched) <- j;
        incr n_touched
      end;
      pending.(j).(nj) <- l;
      pending_n.(j) <- nj + 1
    done;
    let tot = tots.(l) in
    tot.n_evals <- tot.n_evals + Array.length aff;
    tot.n_instrs <- tot.n_instrs + Compiled.affected_cost c mu
  in
  let request_all l =
    for j = 0 to n_r - 1 do
      request l j
    done;
    let tot = tots.(l) in
    tot.n_evals <- tot.n_evals + n_r;
    tot.n_instrs <- tot.n_instrs + Compiled.eval_cost c
  in
  let n_batch_groups = ref 0 in
  let n_batch_evals = ref 0 in
  let n_batch_instrs = ref 0 in
  let scalar_regs = Compiled.make_regs c in
  let lanes_buf = Array.make w 0 in
  let flush_group j lanes n =
    if live then begin
      incr n_batch_groups;
      n_batch_evals := !n_batch_evals + n;
      n_batch_instrs := !n_batch_instrs + c.c_reactions.(j).c_cost
    end;
    if n = 1 then begin
      (* Singleton group: no decode to share, so the SoA machinery is
         pure overhead — evaluate through the scalar path against the
         lane's AoS mirror (same program, same inputs, hence the same
         IEEE result bit for bit). *)
      let l = lanes.(0) in
      match Compiled.propensity_in c ~regs:scalar_regs mirror.(l) j with
      | p -> a.(l).(j) <- p
      | exception e -> fail l e
    end
    else begin
      try
        Compiled.refresh_reaction_batch_in c ~regs ~states:soa ~lanes ~n j
          ~rows:a
      with _ ->
        (* One lane's law went non-finite. Re-evaluate the group lane by
           lane through the scalar path so the failure is attributed to
           the offending lane (with its own state in the diagnostic) and
           the healthy lanes keep going. *)
        for k = 0 to n - 1 do
          let l = lanes.(k) in
          match Compiled.propensity_in c ~regs:scalar_regs mirror.(l) j with
          | p -> a.(l).(j) <- p
          | exception e -> fail l e
        done
    end
  in
  let flush_pending () =
    for g = 0 to !n_touched - 1 do
      let j = touched.(g) in
      let np = pending_n.(j) in
      pending_n.(j) <- 0;
      if !n_failed = 0 then
        (* Common case: no lane has failed, so the request list needs
           no filtering and serves directly as the group's lane set. *)
        flush_group j pending.(j) np
      else begin
        let n = ref 0 in
        for k = 0 to np - 1 do
          let l = pending.(j).(k) in
          if failed.(l) = None then begin
            lanes_buf.(!n) <- l;
            incr n
          end
        done;
        if !n > 0 then flush_group j lanes_buf !n
      end
    done;
    n_touched := 0
  in
  (* One scalar-equivalent loop iteration for lane [l]; assumes the
     lane's cache [a.(l)] is fresh (pending flushed). *)
  let step l =
    let t = t_now.(l) in
    if t >= cfg.t_end then retire l
    else begin
      let al = a.(l) in
      let a0 = sum al in
      let t_ev = Events.next_time evs.(l) in
      if a0 <= 0. then begin
        if t_ev <= cfg.t_end then begin
          match apply_events_at c ~set:(set_lane l) evs.(l) with
          | Some (te, m, rest) ->
              applied.(l) <- applied.(l) + m;
              observe l te;
              request_all l;
              t_now.(l) <- te;
              evs.(l) <- rest
          | None -> retire l
          | exception e -> fail l e
        end
        else retire l
      end
      else begin
        let tau = Rng.exponential rngs.(l) ~rate:a0 in
        let t' = t +. tau in
        if t' >= t_ev && t_ev <= cfg.t_end then begin
          match apply_events_at c ~set:(set_lane l) evs.(l) with
          | Some (te, m, rest) ->
              applied.(l) <- applied.(l) + m;
              observe l te;
              request_all l;
              t_now.(l) <- te;
              evs.(l) <- rest
          | None -> assert false (* t_ev finite implies an event exists *)
          | exception e -> fail l e
        end
        else if t' < cfg.t_end then begin
          let mu = select al (Rng.float rngs.(l) *. a0) in
          fire_lane l mu;
          fired.(l) <- fired.(l) + 1;
          request_affected l mu;
          observe l t';
          t_now.(l) <- t'
        end
        else retire l
      end
    end
  in
  (* Initialise every lane: interventions at or before t0 set up the
     state, then the initial observation and a full refresh request —
     the same prologue as the scalar loop. *)
  for l = 0 to w - 1 do
    try
      let rec catch_up sched =
        match Events.next sched with
        | Some (e, _) when e.Events.e_time <= cfg.t0 -> (
            match apply_events_at c ~set:(set_lane l) sched with
            | Some (_, m, rest) ->
                applied.(l) <- applied.(l) + m;
                catch_up rest
            | None -> sched)
        | Some _ | None -> sched
      in
      evs.(l) <- catch_up events;
      observe l cfg.t0;
      request_all l
    with e -> fail l e
  done;
  (* No handler around [step]: the two raising operations inside it —
     event application and the propensity refreshes routed through
     [flush_group] — already attribute failures to their lane, and a
     trap frame per lane-step is measurable at this loop's rate. *)
  while !n_alive > 0 do
    flush_pending ();
    for l = 0 to w - 1 do
      if alive.(l) then step l
    done
  done;
  let results =
    Array.init w (fun l ->
        match failed.(l) with
        | Some e -> Error e
        | None ->
            let trace = Trace.Recorder.finish recorders.(l) in
            if live then
              flush_counters metrics cfg
                ~ir:(c.Compiled.c_path <> Compiled.Ast)
                ~fired:fired.(l) ~applied:applied.(l)
                ~samples:(Trace.length trace) tots.(l);
            let final_state =
              Array.to_list
                (Array.mapi (fun s id -> (id, mirror.(l).(s))) c.c_names)
            in
            Ok
              ( trace,
                {
                  reactions_fired = fired.(l);
                  events_applied = applied.(l);
                  final_state;
                } ))
  in
  if live then begin
    let cn name = Metrics.counter metrics name in
    Metrics.Counter.add (cn "ssa.ir.batch_evals") !n_batch_evals;
    Metrics.Counter.add (cn "ssa.ir.batch_groups") !n_batch_groups;
    Metrics.Counter.add (cn "ssa.ir.batch_instructions") !n_batch_instrs;
    Metrics.Counter.incr (cn "ssa.ir.batch_blocks");
    Metrics.Counter.add (cn "ssa.ir.batch_lanes") w;
    Metrics.observe_since metrics "ssa.ir.batch_block_seconds" t_start
  end;
  results

let run_batch_rngs ?(events = Events.empty) ?(metrics = Metrics.noop) ~rngs
    cfg (c : Compiled.t) =
  if Array.length rngs = 0 then [||]
  else
    match (cfg.algorithm, c.Compiled.c_path) with
    | Direct, (Compiled.Ir | Compiled.Ir_batch) ->
        run_batch_direct ~metrics ~rngs ~events cfg c
    | _ ->
        (* Batching pays off only where the direct method's sparse
           refreshes dominate; everything else falls back to the scalar
           runner lane by lane, keeping this entry point total. *)
        Array.map
          (fun rng ->
            try Ok (run_compiled_rng ~events ~metrics ~rng cfg c)
            with e -> Error e)
          rngs

let run_with_stats ?events ?metrics cfg model =
  run_compiled ?events ?metrics cfg (Compiled.compile ?metrics model)

let run ?events ?metrics cfg model =
  fst (run_with_stats ?events ?metrics cfg model)
