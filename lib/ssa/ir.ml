module Math = Glc_model.Math

type operand = Reg of int | Pool of int | State of int

(* One instruction per 63-bit OCaml int:

     bits 0..6    opcode
     bits 7..20   destination register
     bits 21..34  operand a
     bits 35..48  operand b

   Binary opcodes carry the source kind of each operand — register,
   constant pool, or state vector — so the evaluator decodes a word
   with three shifts and jumps straight to code that reads the right
   arrays; there are no separate const/load instructions to execute on
   every evaluation:

     opcode = base * 9 + akind * 3 + bkind
     base:  0 add, 1 sub, 2 mul, 3 div, 4 pow, 5 min, 6 max
     kind:  0 register, 1 pool, 2 state

   (pool op pool never occurs — the folder already evaluated it.)
   Unary opcodes follow at 63:

     opcode = 63 + base * 3 + kind     base: 0 neg, 1 exp, 2 ln

   Opcodes from 72 are superinstructions for the Hill response shapes
   the SBOL importer emits, selected by peephole over the folded tree.
   Each performs the exact IEEE operation sequence of the subtree it
   replaces — same operations, same order — so fusion cannot perturb a
   single bit; it only removes dispatch. Operand [a] is the regulator's
   state slot, operand [b] the base of a block of consecutive pool
   slots holding the folded parameters:

     72 hillrf  pool[b] / (pool[b+1] + state[a]^pool[b+2])
     73 hillaf  xn / (pool[b] + xn)            where xn = state[a]^pool[b+1]
     74 hillr1  pool[b] + pool[b+1] * (pool[b+2] / (pool[b+3] + state[a]^pool[b+4]))
     75 hilla1  pool[b] + pool[b+1] * (xn / (pool[b+2] + xn))
                                               where xn = state[a]^pool[b+3]
     76 hillrr2 pool[b] + pool[b+1] * (f1 * f2) — a two-repressor-input
                production law (the workhorse of NOR-based circuits);
                f1 reads state[a] with params pool[b+2..b+4], f2 reads
                state[int_of_float pool[b+5]] with params pool[b+6..b+8]
                (a state index stored as a float is exact far beyond the
                14-bit operand range) *)

type prog = { p_code : int array; p_pool : float array; p_regs : int }
type expr = { e_prog : prog; e_result : operand }
type stats = { s_instrs : int; s_cse_hits : int; s_const_folds : int }

(* Constant folding, bottom up. Every fold computes exactly the IEEE
   operation [exec] would perform at run time on the same operands —
   never an algebraic identity — so a folded program stays bit-identical
   to the AST evaluator, NaNs and signed zeros included. *)
let rec fold count (e : Math.t) : Math.t =
  match e with
  | Const _ | Ident _ -> e
  | Neg a -> (
      match fold count a with
      | Const x ->
          incr count;
          Const (-.x)
      | a -> Neg a)
  | Exp a -> (
      match fold count a with
      | Const x ->
          incr count;
          Const (Float.exp x)
      | a -> Exp a)
  | Ln a -> (
      match fold count a with
      | Const x ->
          incr count;
          Const (Float.log x)
      | a -> Ln a)
  | Add (a, b) -> (
      match (fold count a, fold count b) with
      | Const x, Const y ->
          incr count;
          Const (x +. y)
      | a, b -> Add (a, b))
  | Sub (a, b) -> (
      match (fold count a, fold count b) with
      | Const x, Const y ->
          incr count;
          Const (x -. y)
      | a, b -> Sub (a, b))
  | Mul (a, b) -> (
      match (fold count a, fold count b) with
      | Const x, Const y ->
          incr count;
          Const (x *. y)
      | a, b -> Mul (a, b))
  | Div (a, b) -> (
      match (fold count a, fold count b) with
      | Const x, Const y ->
          incr count;
          Const (x /. y)
      | a, b -> Div (a, b))
  | Pow (a, b) -> (
      match (fold count a, fold count b) with
      | Const x, Const y ->
          incr count;
          Const (Float.pow x y)
      | a, b -> Pow (a, b))
  | Min (a, b) -> (
      match (fold count a, fold count b) with
      | Const x, Const y ->
          incr count;
          Const (Float.min x y)
      | a, b -> Min (a, b))
  | Max (a, b) -> (
      match (fold count a, fold count b) with
      | Const x, Const y ->
          incr count;
          Const (Float.max x y)
      | a, b -> Max (a, b))

(* Value-numbering key of one instruction: operands carry their source
   kind, so two structurally identical subterms reach the same key
   bottom-up. Constants intern by bit pattern — [nan] subterms share,
   [0.] and [-0.] do not. *)
type key =
  | K_un of int * operand
  | K_bin of int * operand * operand
  | K_fused of int * int * int64 list

type builder = {
  b_resolve : string -> int option;
  b_tbl : (key, operand) Hashtbl.t;
  b_consts : (int64, int) Hashtbl.t;
  mutable b_code : int list; (* reversed *)
  mutable b_n : int;
  mutable b_pool : float list; (* reversed *)
  mutable b_pool_n : int;
  mutable b_cse : int;
  mutable b_folds : int;
}

let builder ~resolve () =
  {
    b_resolve = resolve;
    b_tbl = Hashtbl.create 64;
    b_consts = Hashtbl.create 16;
    b_code = [];
    b_n = 0;
    b_pool = [];
    b_pool_n = 0;
    b_cse = 0;
    b_folds = 0;
  }

let field v =
  if v land 0x3fff <> v then
    invalid_arg "Ir: program exceeds the 14-bit operand encoding";
  v

let word op d a b =
  op lor (field d lsl 7) lor (field a lsl 21) lor (field b lsl 35)

let kind = function Reg _ -> 0 | Pool _ -> 1 | State _ -> 2
let index = function Reg i | Pool i | State i -> i

let intern b key op a bo =
  match Hashtbl.find_opt b.b_tbl key with
  | Some r ->
      b.b_cse <- b.b_cse + 1;
      r
  | None ->
      let d = b.b_n in
      b.b_n <- d + 1;
      b.b_code <- word op d (index a) (index bo) :: b.b_code;
      let r = Reg d in
      Hashtbl.add b.b_tbl key r;
      r

let const b c =
  let bits = Int64.bits_of_float c in
  match Hashtbl.find_opt b.b_consts bits with
  | Some i ->
      b.b_cse <- b.b_cse + 1;
      Pool i
  | None ->
      let i = b.b_pool_n in
      ignore (field i);
      b.b_pool_n <- i + 1;
      b.b_pool <- c :: b.b_pool;
      Hashtbl.add b.b_consts bits i;
      Pool i

let resolve_exn b x =
  match b.b_resolve x with
  | Some i ->
      ignore (field i);
      i
  | None -> invalid_arg (Printf.sprintf "Ir: unresolved identifier %S" x)

(* A block of consecutive pool slots for a superinstruction's folded
   parameters — appended without interning, so the block stays
   contiguous; identical fused subtrees still share through the value
   numbering below. *)
let pool_block b params =
  let base = b.b_pool_n in
  List.iter
    (fun v ->
      ignore (field b.b_pool_n);
      b.b_pool <- v :: b.b_pool;
      b.b_pool_n <- b.b_pool_n + 1)
    params;
  base

let intern_fused b op xi params =
  let key = K_fused (op, xi, List.map Int64.bits_of_float params) in
  match Hashtbl.find_opt b.b_tbl key with
  | Some r ->
      b.b_cse <- b.b_cse + 1;
      r
  | None ->
      let base = pool_block b params in
      let d = b.b_n in
      b.b_n <- d + 1;
      b.b_code <- word op d xi base :: b.b_code;
      let r = Reg d in
      Hashtbl.add b.b_tbl key r;
      r

let same_const x y = Int64.bits_of_float x = Int64.bits_of_float y

(* Superinstruction selection over the folded tree. Parameters always
   fold to constants first (the compiler substitutes them before
   pushing), so the Hill shapes below are what every imported gate's
   production law reduces to. *)
let fuse b (e : Math.t) : operand option =
  match e with
  | Add
      ( Const y0,
        Mul
          ( Const bb,
            Mul
              ( Div (Const ka1, Add (Const kb1, Pow (Ident x1, Const n1))),
                Div (Const ka2, Add (Const kb2, Pow (Ident x2, Const n2)))
              ) ) ) ->
      let x1i = resolve_exn b x1 and x2i = resolve_exn b x2 in
      Some
        (intern_fused b 76 x1i
           [ y0; bb; ka1; kb1; n1; float_of_int x2i; ka2; kb2; n2 ])
  | Add
      ( Const y0,
        Mul
          (Const bb, Div (Const ka, Add (Const kb, Pow (Ident x, Const n))))
      ) ->
      Some (intern_fused b 74 (resolve_exn b x) [ y0; bb; ka; kb; n ])
  | Add
      ( Const y0,
        Mul
          ( Const bb,
            Div
              ( Pow (Ident x, Const n),
                Add (Const ka, Pow (Ident x', Const n')) ) ) )
    when String.equal x x' && same_const n n' ->
      Some (intern_fused b 75 (resolve_exn b x) [ y0; bb; ka; n ])
  | Div (Const ka, Add (Const kb, Pow (Ident x, Const n))) ->
      Some (intern_fused b 72 (resolve_exn b x) [ ka; kb; n ])
  | Div (Pow (Ident x, Const n), Add (Const ka, Pow (Ident x', Const n')))
    when String.equal x x' && same_const n n' ->
      Some (intern_fused b 73 (resolve_exn b x) [ ka; n ])
  | _ -> None

let rec emit b (e : Math.t) : operand =
  match fuse b e with
  | Some r -> r
  | None -> emit_generic b e

and emit_generic b (e : Math.t) : operand =
  match e with
  | Const c -> const b c
  | Ident x -> State (resolve_exn b x)
  | Neg a -> emit_un b 0 a
  | Exp a -> emit_un b 1 a
  | Ln a -> emit_un b 2 a
  | Add (x, y) -> emit_bin b 0 x y
  | Sub (x, y) -> emit_bin b 1 x y
  | Mul (x, y) -> emit_bin b 2 x y
  | Div (x, y) -> emit_bin b 3 x y
  | Pow (x, y) -> emit_bin b 4 x y
  | Min (x, y) -> emit_bin b 5 x y
  | Max (x, y) -> emit_bin b 6 x y

and emit_un b base a =
  let oa = emit b a in
  intern b (K_un (base, oa)) (63 + (base * 3) + kind oa) oa (Reg 0)

and emit_bin b base x y =
  let oa = emit b x in
  let ob = emit b y in
  intern b
    (K_bin (base, oa, ob))
    ((base * 9) + (kind oa * 3) + kind ob)
    oa ob

let push b e =
  let folds = ref 0 in
  let e = fold folds e in
  b.b_folds <- b.b_folds + !folds;
  emit b e

let finish b =
  let code = Array.of_list (List.rev b.b_code) in
  let pool = Array.of_list (List.rev b.b_pool) in
  ( { p_code = code; p_pool = pool; p_regs = b.b_n },
    {
      s_instrs = Array.length code;
      s_cse_hits = b.b_cse;
      s_const_folds = b.b_folds;
    } )

let compile ~resolve e =
  let b = builder ~resolve () in
  let r = push b e in
  let prog, stats = finish b in
  ({ e_prog = prog; e_result = r }, stats)

(* The hot loop. Registers are single-assignment with instruction [k]
   writing register [k], and the builder put every pool index in
   bounds, so after the one length check register and pool accesses use
   the unchecked primitives; the state vector is the caller's and stays
   bounds-checked. The store happens inside every arm — a float bound
   at the match join would be boxed. *)
let exec p ~regs state =
  if Array.length regs < p.p_regs then
    invalid_arg "Ir.exec: register file smaller than p_regs";
  let code = p.p_code in
  let pool = p.p_pool in
  for pc = 0 to Array.length code - 1 do
    let w = Array.unsafe_get code pc in
    let d = (w lsr 7) land 0x3fff in
    let a = (w lsr 21) land 0x3fff in
    let b = (w lsr 35) land 0x3fff in
    match w land 0x7f with
    (* add *)
    | 0 ->
        Array.unsafe_set regs d
          (Array.unsafe_get regs a +. Array.unsafe_get regs b)
    | 1 ->
        Array.unsafe_set regs d
          (Array.unsafe_get regs a +. Array.unsafe_get pool b)
    | 2 -> Array.unsafe_set regs d (Array.unsafe_get regs a +. state.(b))
    | 3 ->
        Array.unsafe_set regs d
          (Array.unsafe_get pool a +. Array.unsafe_get regs b)
    | 5 -> Array.unsafe_set regs d (Array.unsafe_get pool a +. state.(b))
    | 6 -> Array.unsafe_set regs d (state.(a) +. Array.unsafe_get regs b)
    | 7 -> Array.unsafe_set regs d (state.(a) +. Array.unsafe_get pool b)
    | 8 -> Array.unsafe_set regs d (state.(a) +. state.(b))
    (* sub *)
    | 9 ->
        Array.unsafe_set regs d
          (Array.unsafe_get regs a -. Array.unsafe_get regs b)
    | 10 ->
        Array.unsafe_set regs d
          (Array.unsafe_get regs a -. Array.unsafe_get pool b)
    | 11 -> Array.unsafe_set regs d (Array.unsafe_get regs a -. state.(b))
    | 12 ->
        Array.unsafe_set regs d
          (Array.unsafe_get pool a -. Array.unsafe_get regs b)
    | 14 -> Array.unsafe_set regs d (Array.unsafe_get pool a -. state.(b))
    | 15 -> Array.unsafe_set regs d (state.(a) -. Array.unsafe_get regs b)
    | 16 -> Array.unsafe_set regs d (state.(a) -. Array.unsafe_get pool b)
    | 17 -> Array.unsafe_set regs d (state.(a) -. state.(b))
    (* mul *)
    | 18 ->
        Array.unsafe_set regs d
          (Array.unsafe_get regs a *. Array.unsafe_get regs b)
    | 19 ->
        Array.unsafe_set regs d
          (Array.unsafe_get regs a *. Array.unsafe_get pool b)
    | 20 -> Array.unsafe_set regs d (Array.unsafe_get regs a *. state.(b))
    | 21 ->
        Array.unsafe_set regs d
          (Array.unsafe_get pool a *. Array.unsafe_get regs b)
    | 23 -> Array.unsafe_set regs d (Array.unsafe_get pool a *. state.(b))
    | 24 -> Array.unsafe_set regs d (state.(a) *. Array.unsafe_get regs b)
    | 25 -> Array.unsafe_set regs d (state.(a) *. Array.unsafe_get pool b)
    | 26 -> Array.unsafe_set regs d (state.(a) *. state.(b))
    (* div *)
    | 27 ->
        Array.unsafe_set regs d
          (Array.unsafe_get regs a /. Array.unsafe_get regs b)
    | 28 ->
        Array.unsafe_set regs d
          (Array.unsafe_get regs a /. Array.unsafe_get pool b)
    | 29 -> Array.unsafe_set regs d (Array.unsafe_get regs a /. state.(b))
    | 30 ->
        Array.unsafe_set regs d
          (Array.unsafe_get pool a /. Array.unsafe_get regs b)
    | 32 -> Array.unsafe_set regs d (Array.unsafe_get pool a /. state.(b))
    | 33 -> Array.unsafe_set regs d (state.(a) /. Array.unsafe_get regs b)
    | 34 -> Array.unsafe_set regs d (state.(a) /. Array.unsafe_get pool b)
    | 35 -> Array.unsafe_set regs d (state.(a) /. state.(b))
    (* pow *)
    | 36 ->
        Array.unsafe_set regs d
          (Float.pow (Array.unsafe_get regs a) (Array.unsafe_get regs b))
    | 37 ->
        Array.unsafe_set regs d
          (Float.pow (Array.unsafe_get regs a) (Array.unsafe_get pool b))
    | 38 ->
        Array.unsafe_set regs d (Float.pow (Array.unsafe_get regs a) state.(b))
    | 39 ->
        Array.unsafe_set regs d
          (Float.pow (Array.unsafe_get pool a) (Array.unsafe_get regs b))
    | 41 ->
        Array.unsafe_set regs d (Float.pow (Array.unsafe_get pool a) state.(b))
    | 42 ->
        Array.unsafe_set regs d (Float.pow state.(a) (Array.unsafe_get regs b))
    | 43 ->
        Array.unsafe_set regs d (Float.pow state.(a) (Array.unsafe_get pool b))
    | 44 -> Array.unsafe_set regs d (Float.pow state.(a) state.(b))
    (* min *)
    | 45 ->
        Array.unsafe_set regs d
          (Float.min (Array.unsafe_get regs a) (Array.unsafe_get regs b))
    | 46 ->
        Array.unsafe_set regs d
          (Float.min (Array.unsafe_get regs a) (Array.unsafe_get pool b))
    | 47 ->
        Array.unsafe_set regs d (Float.min (Array.unsafe_get regs a) state.(b))
    | 48 ->
        Array.unsafe_set regs d
          (Float.min (Array.unsafe_get pool a) (Array.unsafe_get regs b))
    | 50 ->
        Array.unsafe_set regs d (Float.min (Array.unsafe_get pool a) state.(b))
    | 51 ->
        Array.unsafe_set regs d (Float.min state.(a) (Array.unsafe_get regs b))
    | 52 ->
        Array.unsafe_set regs d (Float.min state.(a) (Array.unsafe_get pool b))
    | 53 -> Array.unsafe_set regs d (Float.min state.(a) state.(b))
    (* max *)
    | 54 ->
        Array.unsafe_set regs d
          (Float.max (Array.unsafe_get regs a) (Array.unsafe_get regs b))
    | 55 ->
        Array.unsafe_set regs d
          (Float.max (Array.unsafe_get regs a) (Array.unsafe_get pool b))
    | 56 ->
        Array.unsafe_set regs d (Float.max (Array.unsafe_get regs a) state.(b))
    | 57 ->
        Array.unsafe_set regs d
          (Float.max (Array.unsafe_get pool a) (Array.unsafe_get regs b))
    | 59 ->
        Array.unsafe_set regs d (Float.max (Array.unsafe_get pool a) state.(b))
    | 60 ->
        Array.unsafe_set regs d (Float.max state.(a) (Array.unsafe_get regs b))
    | 61 ->
        Array.unsafe_set regs d (Float.max state.(a) (Array.unsafe_get pool b))
    | 62 -> Array.unsafe_set regs d (Float.max state.(a) state.(b))
    (* neg / exp / ln *)
    | 63 -> Array.unsafe_set regs d (-.Array.unsafe_get regs a)
    | 65 -> Array.unsafe_set regs d (-.state.(a))
    | 66 -> Array.unsafe_set regs d (Float.exp (Array.unsafe_get regs a))
    | 68 -> Array.unsafe_set regs d (Float.exp state.(a))
    | 69 -> Array.unsafe_set regs d (Float.log (Array.unsafe_get regs a))
    | 71 -> Array.unsafe_set regs d (Float.log state.(a))
    (* Hill superinstructions *)
    | 72 ->
        Array.unsafe_set regs d
          (Array.unsafe_get pool b
          /. (Array.unsafe_get pool (b + 1)
             +. Float.pow state.(a) (Array.unsafe_get pool (b + 2))))
    | 73 ->
        let xn = Float.pow state.(a) (Array.unsafe_get pool (b + 1)) in
        Array.unsafe_set regs d (xn /. (Array.unsafe_get pool b +. xn))
    | 74 ->
        Array.unsafe_set regs d
          (Array.unsafe_get pool b
          +. Array.unsafe_get pool (b + 1)
             *. (Array.unsafe_get pool (b + 2)
                /. (Array.unsafe_get pool (b + 3)
                   +. Float.pow state.(a) (Array.unsafe_get pool (b + 4)))))
    | 75 ->
        let xn = Float.pow state.(a) (Array.unsafe_get pool (b + 3)) in
        Array.unsafe_set regs d
          (Array.unsafe_get pool b
          +. Array.unsafe_get pool (b + 1)
             *. (xn /. (Array.unsafe_get pool (b + 2) +. xn)))
    | 76 ->
        let f1 =
          Array.unsafe_get pool (b + 2)
          /. (Array.unsafe_get pool (b + 3)
             +. Float.pow state.(a) (Array.unsafe_get pool (b + 4)))
        in
        let x2 = state.(int_of_float (Array.unsafe_get pool (b + 5))) in
        let f2 =
          Array.unsafe_get pool (b + 6)
          /. (Array.unsafe_get pool (b + 7)
             +. Float.pow x2 (Array.unsafe_get pool (b + 8)))
        in
        Array.unsafe_set regs d
          (Array.unsafe_get pool b
          +. (Array.unsafe_get pool (b + 1) *. (f1 *. f2)))
    | _ ->
        (* pool-only combinations are always folded away *)
        assert false
  done

let read e ~regs state =
  match e.e_result with
  | Reg r -> regs.(r)
  | Pool i -> e.e_prog.p_pool.(i)
  | State i -> state.(i)

let eval e ~regs state =
  exec e.e_prog ~regs state;
  read e ~regs state

(* The batched hot loop: the same dispatch as [exec], but each
   instruction is decoded once and then applied across every live lane
   before the program counter advances — opcode dispatch and operand
   decoding are amortised over the lane block, and each register is a
   contiguous row ([regs.(slot).(lane)]) so the inner lane loop walks
   cache-contiguous floats. Every arm performs, per lane, exactly the
   IEEE operation sequence of the scalar arm, so batched evaluation is
   bit-identical to [exec] lane by lane.

   Bounds discipline mirrors the scalar loop: register and pool *rows*
   are fetched with the unchecked primitives (the builder put every
   index in bounds), state rows stay bounds-checked once per
   instruction, and lane indices are validated against every row's
   width on entry so the per-lane accesses can go unchecked. *)
let exec_batch_unchecked p ~regs ~states ~lanes ~n =
  if n > 0 then begin
    let code = p.p_code in
    let pool = p.p_pool in
    for pc = 0 to Array.length code - 1 do
      let w = Array.unsafe_get code pc in
      let d = (w lsr 7) land 0x3fff in
      let a = (w lsr 21) land 0x3fff in
      let b = (w lsr 35) land 0x3fff in
      let rd = Array.unsafe_get regs d in
      match w land 0x7f with
      (* add *)
      | 0 ->
          let ra = Array.unsafe_get regs a and rb = Array.unsafe_get regs b in
          for k = 0 to n - 1 do
            let l = Array.unsafe_get lanes k in
            Array.unsafe_set rd l
              (Array.unsafe_get ra l +. Array.unsafe_get rb l)
          done
      | 1 ->
          let ra = Array.unsafe_get regs a and cb = Array.unsafe_get pool b in
          for k = 0 to n - 1 do
            let l = Array.unsafe_get lanes k in
            Array.unsafe_set rd l (Array.unsafe_get ra l +. cb)
          done
      | 2 ->
          let ra = Array.unsafe_get regs a and sb = states.(b) in
          for k = 0 to n - 1 do
            let l = Array.unsafe_get lanes k in
            Array.unsafe_set rd l
              (Array.unsafe_get ra l +. Array.unsafe_get sb l)
          done
      | 3 ->
          let ca = Array.unsafe_get pool a and rb = Array.unsafe_get regs b in
          for k = 0 to n - 1 do
            let l = Array.unsafe_get lanes k in
            Array.unsafe_set rd l (ca +. Array.unsafe_get rb l)
          done
      | 5 ->
          let ca = Array.unsafe_get pool a and sb = states.(b) in
          for k = 0 to n - 1 do
            let l = Array.unsafe_get lanes k in
            Array.unsafe_set rd l (ca +. Array.unsafe_get sb l)
          done
      | 6 ->
          let sa = states.(a) and rb = Array.unsafe_get regs b in
          for k = 0 to n - 1 do
            let l = Array.unsafe_get lanes k in
            Array.unsafe_set rd l
              (Array.unsafe_get sa l +. Array.unsafe_get rb l)
          done
      | 7 ->
          let sa = states.(a) and cb = Array.unsafe_get pool b in
          for k = 0 to n - 1 do
            let l = Array.unsafe_get lanes k in
            Array.unsafe_set rd l (Array.unsafe_get sa l +. cb)
          done
      | 8 ->
          let sa = states.(a) and sb = states.(b) in
          for k = 0 to n - 1 do
            let l = Array.unsafe_get lanes k in
            Array.unsafe_set rd l
              (Array.unsafe_get sa l +. Array.unsafe_get sb l)
          done
      (* sub *)
      | 9 ->
          let ra = Array.unsafe_get regs a and rb = Array.unsafe_get regs b in
          for k = 0 to n - 1 do
            let l = Array.unsafe_get lanes k in
            Array.unsafe_set rd l
              (Array.unsafe_get ra l -. Array.unsafe_get rb l)
          done
      | 10 ->
          let ra = Array.unsafe_get regs a and cb = Array.unsafe_get pool b in
          for k = 0 to n - 1 do
            let l = Array.unsafe_get lanes k in
            Array.unsafe_set rd l (Array.unsafe_get ra l -. cb)
          done
      | 11 ->
          let ra = Array.unsafe_get regs a and sb = states.(b) in
          for k = 0 to n - 1 do
            let l = Array.unsafe_get lanes k in
            Array.unsafe_set rd l
              (Array.unsafe_get ra l -. Array.unsafe_get sb l)
          done
      | 12 ->
          let ca = Array.unsafe_get pool a and rb = Array.unsafe_get regs b in
          for k = 0 to n - 1 do
            let l = Array.unsafe_get lanes k in
            Array.unsafe_set rd l (ca -. Array.unsafe_get rb l)
          done
      | 14 ->
          let ca = Array.unsafe_get pool a and sb = states.(b) in
          for k = 0 to n - 1 do
            let l = Array.unsafe_get lanes k in
            Array.unsafe_set rd l (ca -. Array.unsafe_get sb l)
          done
      | 15 ->
          let sa = states.(a) and rb = Array.unsafe_get regs b in
          for k = 0 to n - 1 do
            let l = Array.unsafe_get lanes k in
            Array.unsafe_set rd l
              (Array.unsafe_get sa l -. Array.unsafe_get rb l)
          done
      | 16 ->
          let sa = states.(a) and cb = Array.unsafe_get pool b in
          for k = 0 to n - 1 do
            let l = Array.unsafe_get lanes k in
            Array.unsafe_set rd l (Array.unsafe_get sa l -. cb)
          done
      | 17 ->
          let sa = states.(a) and sb = states.(b) in
          for k = 0 to n - 1 do
            let l = Array.unsafe_get lanes k in
            Array.unsafe_set rd l
              (Array.unsafe_get sa l -. Array.unsafe_get sb l)
          done
      (* mul *)
      | 18 ->
          let ra = Array.unsafe_get regs a and rb = Array.unsafe_get regs b in
          for k = 0 to n - 1 do
            let l = Array.unsafe_get lanes k in
            Array.unsafe_set rd l
              (Array.unsafe_get ra l *. Array.unsafe_get rb l)
          done
      | 19 ->
          let ra = Array.unsafe_get regs a and cb = Array.unsafe_get pool b in
          for k = 0 to n - 1 do
            let l = Array.unsafe_get lanes k in
            Array.unsafe_set rd l (Array.unsafe_get ra l *. cb)
          done
      | 20 ->
          let ra = Array.unsafe_get regs a and sb = states.(b) in
          for k = 0 to n - 1 do
            let l = Array.unsafe_get lanes k in
            Array.unsafe_set rd l
              (Array.unsafe_get ra l *. Array.unsafe_get sb l)
          done
      | 21 ->
          let ca = Array.unsafe_get pool a and rb = Array.unsafe_get regs b in
          for k = 0 to n - 1 do
            let l = Array.unsafe_get lanes k in
            Array.unsafe_set rd l (ca *. Array.unsafe_get rb l)
          done
      | 23 ->
          let ca = Array.unsafe_get pool a and sb = states.(b) in
          for k = 0 to n - 1 do
            let l = Array.unsafe_get lanes k in
            Array.unsafe_set rd l (ca *. Array.unsafe_get sb l)
          done
      | 24 ->
          let sa = states.(a) and rb = Array.unsafe_get regs b in
          for k = 0 to n - 1 do
            let l = Array.unsafe_get lanes k in
            Array.unsafe_set rd l
              (Array.unsafe_get sa l *. Array.unsafe_get rb l)
          done
      | 25 ->
          let sa = states.(a) and cb = Array.unsafe_get pool b in
          for k = 0 to n - 1 do
            let l = Array.unsafe_get lanes k in
            Array.unsafe_set rd l (Array.unsafe_get sa l *. cb)
          done
      | 26 ->
          let sa = states.(a) and sb = states.(b) in
          for k = 0 to n - 1 do
            let l = Array.unsafe_get lanes k in
            Array.unsafe_set rd l
              (Array.unsafe_get sa l *. Array.unsafe_get sb l)
          done
      (* div *)
      | 27 ->
          let ra = Array.unsafe_get regs a and rb = Array.unsafe_get regs b in
          for k = 0 to n - 1 do
            let l = Array.unsafe_get lanes k in
            Array.unsafe_set rd l
              (Array.unsafe_get ra l /. Array.unsafe_get rb l)
          done
      | 28 ->
          let ra = Array.unsafe_get regs a and cb = Array.unsafe_get pool b in
          for k = 0 to n - 1 do
            let l = Array.unsafe_get lanes k in
            Array.unsafe_set rd l (Array.unsafe_get ra l /. cb)
          done
      | 29 ->
          let ra = Array.unsafe_get regs a and sb = states.(b) in
          for k = 0 to n - 1 do
            let l = Array.unsafe_get lanes k in
            Array.unsafe_set rd l
              (Array.unsafe_get ra l /. Array.unsafe_get sb l)
          done
      | 30 ->
          let ca = Array.unsafe_get pool a and rb = Array.unsafe_get regs b in
          for k = 0 to n - 1 do
            let l = Array.unsafe_get lanes k in
            Array.unsafe_set rd l (ca /. Array.unsafe_get rb l)
          done
      | 32 ->
          let ca = Array.unsafe_get pool a and sb = states.(b) in
          for k = 0 to n - 1 do
            let l = Array.unsafe_get lanes k in
            Array.unsafe_set rd l (ca /. Array.unsafe_get sb l)
          done
      | 33 ->
          let sa = states.(a) and rb = Array.unsafe_get regs b in
          for k = 0 to n - 1 do
            let l = Array.unsafe_get lanes k in
            Array.unsafe_set rd l
              (Array.unsafe_get sa l /. Array.unsafe_get rb l)
          done
      | 34 ->
          let sa = states.(a) and cb = Array.unsafe_get pool b in
          for k = 0 to n - 1 do
            let l = Array.unsafe_get lanes k in
            Array.unsafe_set rd l (Array.unsafe_get sa l /. cb)
          done
      | 35 ->
          let sa = states.(a) and sb = states.(b) in
          for k = 0 to n - 1 do
            let l = Array.unsafe_get lanes k in
            Array.unsafe_set rd l
              (Array.unsafe_get sa l /. Array.unsafe_get sb l)
          done
      (* pow *)
      | 36 ->
          let ra = Array.unsafe_get regs a and rb = Array.unsafe_get regs b in
          for k = 0 to n - 1 do
            let l = Array.unsafe_get lanes k in
            Array.unsafe_set rd l
              (Float.pow (Array.unsafe_get ra l) (Array.unsafe_get rb l))
          done
      | 37 ->
          let ra = Array.unsafe_get regs a and cb = Array.unsafe_get pool b in
          for k = 0 to n - 1 do
            let l = Array.unsafe_get lanes k in
            Array.unsafe_set rd l (Float.pow (Array.unsafe_get ra l) cb)
          done
      | 38 ->
          let ra = Array.unsafe_get regs a and sb = states.(b) in
          for k = 0 to n - 1 do
            let l = Array.unsafe_get lanes k in
            Array.unsafe_set rd l
              (Float.pow (Array.unsafe_get ra l) (Array.unsafe_get sb l))
          done
      | 39 ->
          let ca = Array.unsafe_get pool a and rb = Array.unsafe_get regs b in
          for k = 0 to n - 1 do
            let l = Array.unsafe_get lanes k in
            Array.unsafe_set rd l (Float.pow ca (Array.unsafe_get rb l))
          done
      | 41 ->
          let ca = Array.unsafe_get pool a and sb = states.(b) in
          for k = 0 to n - 1 do
            let l = Array.unsafe_get lanes k in
            Array.unsafe_set rd l (Float.pow ca (Array.unsafe_get sb l))
          done
      | 42 ->
          let sa = states.(a) and rb = Array.unsafe_get regs b in
          for k = 0 to n - 1 do
            let l = Array.unsafe_get lanes k in
            Array.unsafe_set rd l
              (Float.pow (Array.unsafe_get sa l) (Array.unsafe_get rb l))
          done
      | 43 ->
          let sa = states.(a) and cb = Array.unsafe_get pool b in
          for k = 0 to n - 1 do
            let l = Array.unsafe_get lanes k in
            Array.unsafe_set rd l (Float.pow (Array.unsafe_get sa l) cb)
          done
      | 44 ->
          let sa = states.(a) and sb = states.(b) in
          for k = 0 to n - 1 do
            let l = Array.unsafe_get lanes k in
            Array.unsafe_set rd l
              (Float.pow (Array.unsafe_get sa l) (Array.unsafe_get sb l))
          done
      (* min *)
      | 45 ->
          let ra = Array.unsafe_get regs a and rb = Array.unsafe_get regs b in
          for k = 0 to n - 1 do
            let l = Array.unsafe_get lanes k in
            Array.unsafe_set rd l
              (Float.min (Array.unsafe_get ra l) (Array.unsafe_get rb l))
          done
      | 46 ->
          let ra = Array.unsafe_get regs a and cb = Array.unsafe_get pool b in
          for k = 0 to n - 1 do
            let l = Array.unsafe_get lanes k in
            Array.unsafe_set rd l (Float.min (Array.unsafe_get ra l) cb)
          done
      | 47 ->
          let ra = Array.unsafe_get regs a and sb = states.(b) in
          for k = 0 to n - 1 do
            let l = Array.unsafe_get lanes k in
            Array.unsafe_set rd l
              (Float.min (Array.unsafe_get ra l) (Array.unsafe_get sb l))
          done
      | 48 ->
          let ca = Array.unsafe_get pool a and rb = Array.unsafe_get regs b in
          for k = 0 to n - 1 do
            let l = Array.unsafe_get lanes k in
            Array.unsafe_set rd l (Float.min ca (Array.unsafe_get rb l))
          done
      | 50 ->
          let ca = Array.unsafe_get pool a and sb = states.(b) in
          for k = 0 to n - 1 do
            let l = Array.unsafe_get lanes k in
            Array.unsafe_set rd l (Float.min ca (Array.unsafe_get sb l))
          done
      | 51 ->
          let sa = states.(a) and rb = Array.unsafe_get regs b in
          for k = 0 to n - 1 do
            let l = Array.unsafe_get lanes k in
            Array.unsafe_set rd l
              (Float.min (Array.unsafe_get sa l) (Array.unsafe_get rb l))
          done
      | 52 ->
          let sa = states.(a) and cb = Array.unsafe_get pool b in
          for k = 0 to n - 1 do
            let l = Array.unsafe_get lanes k in
            Array.unsafe_set rd l (Float.min (Array.unsafe_get sa l) cb)
          done
      | 53 ->
          let sa = states.(a) and sb = states.(b) in
          for k = 0 to n - 1 do
            let l = Array.unsafe_get lanes k in
            Array.unsafe_set rd l
              (Float.min (Array.unsafe_get sa l) (Array.unsafe_get sb l))
          done
      (* max *)
      | 54 ->
          let ra = Array.unsafe_get regs a and rb = Array.unsafe_get regs b in
          for k = 0 to n - 1 do
            let l = Array.unsafe_get lanes k in
            Array.unsafe_set rd l
              (Float.max (Array.unsafe_get ra l) (Array.unsafe_get rb l))
          done
      | 55 ->
          let ra = Array.unsafe_get regs a and cb = Array.unsafe_get pool b in
          for k = 0 to n - 1 do
            let l = Array.unsafe_get lanes k in
            Array.unsafe_set rd l (Float.max (Array.unsafe_get ra l) cb)
          done
      | 56 ->
          let ra = Array.unsafe_get regs a and sb = states.(b) in
          for k = 0 to n - 1 do
            let l = Array.unsafe_get lanes k in
            Array.unsafe_set rd l
              (Float.max (Array.unsafe_get ra l) (Array.unsafe_get sb l))
          done
      | 57 ->
          let ca = Array.unsafe_get pool a and rb = Array.unsafe_get regs b in
          for k = 0 to n - 1 do
            let l = Array.unsafe_get lanes k in
            Array.unsafe_set rd l (Float.max ca (Array.unsafe_get rb l))
          done
      | 59 ->
          let ca = Array.unsafe_get pool a and sb = states.(b) in
          for k = 0 to n - 1 do
            let l = Array.unsafe_get lanes k in
            Array.unsafe_set rd l (Float.max ca (Array.unsafe_get sb l))
          done
      | 60 ->
          let sa = states.(a) and rb = Array.unsafe_get regs b in
          for k = 0 to n - 1 do
            let l = Array.unsafe_get lanes k in
            Array.unsafe_set rd l
              (Float.max (Array.unsafe_get sa l) (Array.unsafe_get rb l))
          done
      | 61 ->
          let sa = states.(a) and cb = Array.unsafe_get pool b in
          for k = 0 to n - 1 do
            let l = Array.unsafe_get lanes k in
            Array.unsafe_set rd l (Float.max (Array.unsafe_get sa l) cb)
          done
      | 62 ->
          let sa = states.(a) and sb = states.(b) in
          for k = 0 to n - 1 do
            let l = Array.unsafe_get lanes k in
            Array.unsafe_set rd l
              (Float.max (Array.unsafe_get sa l) (Array.unsafe_get sb l))
          done
      (* neg / exp / ln *)
      | 63 ->
          let ra = Array.unsafe_get regs a in
          for k = 0 to n - 1 do
            let l = Array.unsafe_get lanes k in
            Array.unsafe_set rd l (-.Array.unsafe_get ra l)
          done
      | 65 ->
          let sa = states.(a) in
          for k = 0 to n - 1 do
            let l = Array.unsafe_get lanes k in
            Array.unsafe_set rd l (-.Array.unsafe_get sa l)
          done
      | 66 ->
          let ra = Array.unsafe_get regs a in
          for k = 0 to n - 1 do
            let l = Array.unsafe_get lanes k in
            Array.unsafe_set rd l (Float.exp (Array.unsafe_get ra l))
          done
      | 68 ->
          let sa = states.(a) in
          for k = 0 to n - 1 do
            let l = Array.unsafe_get lanes k in
            Array.unsafe_set rd l (Float.exp (Array.unsafe_get sa l))
          done
      | 69 ->
          let ra = Array.unsafe_get regs a in
          for k = 0 to n - 1 do
            let l = Array.unsafe_get lanes k in
            Array.unsafe_set rd l (Float.log (Array.unsafe_get ra l))
          done
      | 71 ->
          let sa = states.(a) in
          for k = 0 to n - 1 do
            let l = Array.unsafe_get lanes k in
            Array.unsafe_set rd l (Float.log (Array.unsafe_get sa l))
          done
      (* Hill superinstructions *)
      | 72 ->
          let sa = states.(a) in
          let ka = Array.unsafe_get pool b
          and kb = Array.unsafe_get pool (b + 1)
          and nn = Array.unsafe_get pool (b + 2) in
          for k = 0 to n - 1 do
            let l = Array.unsafe_get lanes k in
            Array.unsafe_set rd l
              (ka /. (kb +. Float.pow (Array.unsafe_get sa l) nn))
          done
      | 73 ->
          let sa = states.(a) in
          let ka = Array.unsafe_get pool b
          and nn = Array.unsafe_get pool (b + 1) in
          for k = 0 to n - 1 do
            let l = Array.unsafe_get lanes k in
            let xn = Float.pow (Array.unsafe_get sa l) nn in
            Array.unsafe_set rd l (xn /. (ka +. xn))
          done
      | 74 ->
          let sa = states.(a) in
          let y0 = Array.unsafe_get pool b
          and bb = Array.unsafe_get pool (b + 1)
          and ka = Array.unsafe_get pool (b + 2)
          and kb = Array.unsafe_get pool (b + 3)
          and nn = Array.unsafe_get pool (b + 4) in
          for k = 0 to n - 1 do
            let l = Array.unsafe_get lanes k in
            Array.unsafe_set rd l
              (y0
              +. bb
                 *. (ka /. (kb +. Float.pow (Array.unsafe_get sa l) nn)))
          done
      | 75 ->
          let sa = states.(a) in
          let y0 = Array.unsafe_get pool b
          and bb = Array.unsafe_get pool (b + 1)
          and ka = Array.unsafe_get pool (b + 2)
          and nn = Array.unsafe_get pool (b + 3) in
          for k = 0 to n - 1 do
            let l = Array.unsafe_get lanes k in
            let xn = Float.pow (Array.unsafe_get sa l) nn in
            Array.unsafe_set rd l (y0 +. (bb *. (xn /. (ka +. xn))))
          done
      | 76 ->
          let sa = states.(a) in
          let s2 = states.(int_of_float (Array.unsafe_get pool (b + 5))) in
          let y0 = Array.unsafe_get pool b
          and bb = Array.unsafe_get pool (b + 1)
          and ka1 = Array.unsafe_get pool (b + 2)
          and kb1 = Array.unsafe_get pool (b + 3)
          and n1 = Array.unsafe_get pool (b + 4)
          and ka2 = Array.unsafe_get pool (b + 6)
          and kb2 = Array.unsafe_get pool (b + 7)
          and n2 = Array.unsafe_get pool (b + 8) in
          for k = 0 to n - 1 do
            let l = Array.unsafe_get lanes k in
            let f1 =
              ka1 /. (kb1 +. Float.pow (Array.unsafe_get sa l) n1)
            in
            let f2 =
              ka2 /. (kb2 +. Float.pow (Array.unsafe_get s2 l) n2)
            in
            Array.unsafe_set rd l (y0 +. (bb *. (f1 *. f2)))
          done
      | _ ->
          (* pool-only combinations are always folded away *)
          assert false
    done
  end

let exec_batch p ~regs ~states ~lanes ~n =
  if Array.length regs < p.p_regs then
    invalid_arg "Ir.exec_batch: register file smaller than p_regs";
  if n < 0 || n > Array.length lanes then
    invalid_arg "Ir.exec_batch: n outside the lanes array";
  if n > 0 then begin
    let max_lane = ref (-1) in
    for k = 0 to n - 1 do
      let l = lanes.(k) in
      if l < 0 then invalid_arg "Ir.exec_batch: negative lane";
      if l > !max_lane then max_lane := l
    done;
    for i = 0 to p.p_regs - 1 do
      if Array.length regs.(i) <= !max_lane then
        invalid_arg "Ir.exec_batch: register row narrower than widest lane"
    done;
    Array.iter
      (fun row ->
        if Array.length row <= !max_lane then
          invalid_arg "Ir.exec_batch: state row narrower than widest lane")
      states;
    exec_batch_unchecked p ~regs ~states ~lanes ~n
  end

let read_batch e ~regs ~states lane =
  match e.e_result with
  | Reg r -> regs.(r).(lane)
  | Pool i -> e.e_prog.p_pool.(i)
  | State i -> states.(i).(lane)

let bin_name = [| "add"; "sub"; "mul"; "div"; "pow"; "min"; "max" |]
let un_name = [| "neg"; "exp"; "ln" |]

let pp_operand pool ppf (k, i) =
  match k with
  | 0 -> Format.fprintf ppf "r%d" i
  | 1 -> Format.fprintf ppf "%h" pool.(i)
  | _ -> Format.fprintf ppf "state[%d]" i

let pp_prog ppf p =
  Format.fprintf ppf "@[<v>";
  Array.iteri
    (fun pc w ->
      if pc > 0 then Format.fprintf ppf "@,";
      let op = w land 0x7f in
      let d = (w lsr 7) land 0x3fff in
      let a = (w lsr 21) land 0x3fff in
      let b = (w lsr 35) land 0x3fff in
      if op < 63 then
        Format.fprintf ppf "r%d <- %s %a %a" d bin_name.(op / 9)
          (pp_operand p.p_pool)
          (op mod 9 / 3, a)
          (pp_operand p.p_pool)
          (op mod 3, b)
      else if op < 72 then
        Format.fprintf ppf "r%d <- %s %a" d
          un_name.((op - 63) / 3)
          (pp_operand p.p_pool)
          ((op - 63) mod 3, a)
      else
        let name =
          match op with
          | 72 -> "hillrf"
          | 73 -> "hillaf"
          | 74 -> "hillr1"
          | 75 -> "hilla1"
          | _ -> "hillrr2"
        in
        Format.fprintf ppf "r%d <- %s state[%d] pool[%d..]" d name a b)
    p.p_code;
  Format.fprintf ppf "@]"
