(** Models compiled for simulation.

    Species are resolved to dense indices, parameters are folded into the
    kinetic laws, and each law is compiled for evaluation over the state
    vector, so the simulator's inner loop does no name resolution.

    Two evaluation paths exist. {!Ir} (the default) compiles each law
    once into a flat instruction array over a register file (constant
    folding, common-subexpression elimination, tight dispatch loop — see
    {!module:Ir}); {!Ast} keeps the original tree-of-closures evaluator
    as the reference semantics. Both produce bit-identical propensities
    on every state — the QCheck differential property in [test_ssa]
    holds traces byte-identical between paths — so the choice is purely
    a performance one, surfaced as [glcv --eval ast|ir]. *)

module Model := Glc_model.Model

(** How kinetic laws are evaluated. *)
type path =
  | Ast  (** reference: a tree of closures mirroring the math AST *)
  | Ir  (** default: flat register IR, folded and CSE'd (see {!module:Ir}) *)
  | Ir_batch
      (** the same flat IR, but the ensemble engine advances a block of
          replicate lanes in lockstep over structure-of-arrays register
          files ({!make_regs_batch}, {!refresh_reaction_batch_in}) —
          bit-identical to {!Ir} lane by lane, chosen purely for
          throughput *)

val set_default_path : path -> unit
(** Set the path {!compile} uses when none is passed explicitly. Intended
    to be called once at CLI startup ([--eval]), before simulations or
    worker domains start. *)

val default_path : unit -> path

type reaction = {
  c_id : string;
  c_deltas : (int * float) list;
      (** net state change: species index, signed amount. Boundary
          species are excluded at compile time (SBML
          [boundaryCondition]: they participate in the kinetics but are
          never changed by firings), so every algorithm that applies
          deltas holds them fixed for free. *)
  c_propensity : float array -> float;
      (** raw law evaluation — unclamped and unchecked; simulators go
          through {!propensity}/{!propensities_into}/{!refresh_affected}
          instead *)
  c_expr : Ir.expr option;
      (** the compiled IR program ([None] on the {!Ast} path); the hot
          entry points run it directly against a per-call scratch
          register file instead of going through the [c_propensity]
          closure *)
  c_reads : int list;  (** species indices the propensity depends on *)
  c_cost : int;
      (** IR instructions executed per evaluation; [0] on the {!Ast}
          path *)
}

type ir_stats = {
  ir_instrs : int;  (** instructions across all reaction programs *)
  ir_regs : int;  (** largest register file any program needs *)
  ir_cse_hits : int;
  ir_const_folds : int;
}

type t = {
  c_model : Model.t;
  c_names : string array;  (** species ids, index = state position *)
  c_initial : float array;
  c_boundary : bool array;
  c_reactions : reaction array;
  c_dependents : int list array;
      (** [c_dependents.(s)] lists reactions whose propensity reads
          species [s] *)
  c_affected : int array array;
      (** [c_affected.(r)] is the dependency closure of reaction [r]:
          every reaction whose propensity reads a species [r] changes,
          sorted, duplicate-free, precomputed once at compile time so
          the simulators' firing loops allocate nothing *)
  c_path : path;
  c_regs : int;
      (** largest register file any reaction's program needs — the size
          of the scratch the hot entry points fetch once per call *)
  c_eval_cost : int;
      (** IR instructions per full propensity refresh (sum of
          [c_cost]); [0] on the {!Ast} path *)
  c_affected_cost : int array;
      (** [c_affected_cost.(r)]: IR instructions per sparse refresh
          after reaction [r] fires *)
  c_ir : ir_stats option;  (** compile-time IR statistics, [Ir] path only *)
}

exception
  Non_finite_propensity of {
    nf_model : string;
    nf_reaction : string;
    nf_value : float;  (** the NaN or infinity the law evaluated to *)
    nf_state : (string * float) list;  (** offending state, by species *)
  }
(** Raised (identically on both paths) when a kinetic law evaluates to
    NaN or ±infinity — e.g. [0/0] at an empty state, or [ln] of a
    negative concentration. Before this check the clamp was
    [Float.max 0.], which {e returns NaN for a NaN argument}: the NaN
    flowed into the total propensity, every comparison against it came
    out false, and the run silently ended mid-trajectory with a
    truncated, corrupted trace. A registered [Printexc] printer renders
    the model id, reaction id and offending state. *)

val compile : ?path:path -> ?metrics:Glc_obs.Metrics.t -> Model.t -> t
(** [path] defaults to {!default_path} (initially {!Ir}). With a live
    [metrics] registry and the IR path, records the [ssa.ir.programs],
    [ssa.ir.instructions_compiled], [ssa.ir.cse_hits] and
    [ssa.ir.const_folds] counters and the [ssa.ir.compile_seconds]
    histogram.
    @raise Invalid_argument if the model fails {!Model.validate}. *)

val species_index : t -> string -> int
(** @raise Not_found for unknown ids. *)

val make_regs : t -> float array
(** A fresh scratch register file sized for every program in [t] —
    what the [~regs] variants below expect. A simulator allocates one
    per trajectory and reuses it across every evaluation of the run,
    instead of paying a domain-local-storage fetch per refresh. *)

val propensity : t -> float array -> int -> float
(** [propensity t state j]: reaction [j]'s propensity in [state];
    finite negative values are clamped to zero (a kinetic law may dip
    below zero transiently in ill-parameterised models).
    @raise Non_finite_propensity on NaN or infinity. *)

val propensity_in : t -> regs:float array -> float array -> int -> float
(** {!propensity} evaluating against the caller's scratch from
    {!make_regs}. *)

val propensities : t -> float array -> float array
(** All reaction propensities in the given state, clamped as
    {!propensity}.
    @raise Non_finite_propensity on NaN or infinity. *)

val propensities_into : t -> float array -> float array -> unit
(** [propensities_into t state a] is {!propensities} writing into the
    caller's buffer [a] — the simulator's inner loop reuses one buffer
    per trajectory instead of allocating every step, which keeps minor
    GCs (stop-the-world under domains) off the multicore hot path.
    @raise Invalid_argument if [a] is not one slot per reaction.
    @raise Non_finite_propensity on NaN or infinity. *)

val propensities_into_in :
  t -> regs:float array -> float array -> float array -> unit
(** {!propensities_into} evaluating against the caller's scratch from
    {!make_regs}. *)

val inert_reactions : t -> string list
(** Ids of reactions whose firing changes no state — every reactant and
    product is a boundary species, so the compiled delta list is empty.
    Such reactions still consume SSA steps whenever their propensity is
    positive; the linter flags them ([GLC004]). In declaration order. *)

val affected_reactions : t -> int -> int array
(** Reactions whose propensity may change when the given reaction fires
    (including itself if it reads a species it writes). Returns the
    precomputed [c_affected] row — O(1), and the caller must not
    mutate it. *)

val refresh_affected : t -> float array -> int -> float array -> int
(** [refresh_affected t state ri a] re-evaluates into [a] exactly the
    propensities affected by a firing of reaction [ri] (the
    [c_affected.(ri)] row) and returns how many were evaluated. If [a]
    held fresh propensities for the pre-firing state, it holds fresh
    propensities for [state] afterwards — the sparse invariant the
    direct-method hot loop relies on.
    @raise Non_finite_propensity on NaN or infinity. *)

val refresh_affected_in :
  t -> regs:float array -> float array -> int -> float array -> int
(** {!refresh_affected} evaluating against the caller's scratch from
    {!make_regs} — the form the simulators' firing loops use, so the
    domain-local-storage fetch is paid once per run, not per firing. *)

val eval_cost : t -> int
(** IR instructions executed by one full propensity refresh; [0] on the
    {!Ast} path. O(1), precomputed. *)

val affected_cost : t -> int -> int
(** IR instructions executed by one sparse refresh after the given
    reaction fires; [0] on the {!Ast} path. O(1), precomputed. *)

val ir_stats : t -> ir_stats option
(** Compile-time IR statistics ([None] on the {!Ast} path). *)

val make_regs_batch : t -> width:int -> float array array
(** [make_regs_batch t ~width] is a structure-of-arrays register file
    for batched evaluation: one row per register slot, [width] lanes
    per row ([regs.(slot).(lane)]). A batched simulator allocates one
    per lane block and reuses it for the whole block's lifetime.
    @raise Invalid_argument if [width < 1]. *)

val refresh_reaction_batch_in :
  t ->
  regs:float array array ->
  states:float array array ->
  lanes:int array ->
  n:int ->
  int ->
  rows:float array array ->
  unit
(** [refresh_reaction_batch_in t ~regs ~states ~lanes ~n j ~rows]
    re-evaluates reaction [j]'s propensity for the first [n] lanes
    listed in [lanes] at once — one instruction decode shared by all
    lanes ({!Ir.exec_batch}) — writing each lane's clamped value into
    [rows.(lane).(j)]. [states.(species).(lane)] is the
    structure-of-arrays state; [rows.(lane)] is that lane's ordinary
    propensity cache, so retired lanes keep their scalar layout. Values
    are clamped and checked exactly as {!propensity}; on the {!Ast}
    path each lane's column is gathered and evaluated through the
    scalar closure, so the entry point is total over every compile
    path.
    @raise Non_finite_propensity on NaN or infinity, attributed to the
    offending lane's state. *)
