(** Models compiled for simulation.

    Species are resolved to dense indices, parameters are folded into the
    kinetic laws, and each law becomes a closure over the state vector, so
    the simulator's inner loop does no name resolution. *)

module Model := Glc_model.Model

type reaction = {
  c_id : string;
  c_deltas : (int * float) list;
      (** net state change: species index, signed amount. Boundary
          species are excluded at compile time (SBML
          [boundaryCondition]: they participate in the kinetics but are
          never changed by firings), so every algorithm that applies
          deltas holds them fixed for free. *)
  c_propensity : float array -> float;
  c_reads : int list;  (** species indices the propensity depends on *)
}

type t = {
  c_model : Model.t;
  c_names : string array;  (** species ids, index = state position *)
  c_initial : float array;
  c_boundary : bool array;
  c_reactions : reaction array;
  c_dependents : int list array;
      (** [c_dependents.(s)] lists reactions whose propensity reads
          species [s] *)
  c_affected : int array array;
      (** [c_affected.(r)] is the dependency closure of reaction [r]:
          every reaction whose propensity reads a species [r] changes,
          sorted, duplicate-free, precomputed once at compile time so
          the simulators' firing loops allocate nothing *)
}

val compile : Model.t -> t
(** @raise Invalid_argument if the model fails {!Model.validate}. *)

val species_index : t -> string -> int
(** @raise Not_found for unknown ids. *)

val propensities : t -> float array -> float array
(** All reaction propensities in the given state; negative values are
    clamped to zero (a kinetic law may dip below zero transiently in
    ill-parameterised models). *)

val propensities_into : t -> float array -> float array -> unit
(** [propensities_into t state a] is {!propensities} writing into the
    caller's buffer [a] — the simulator's inner loop reuses one buffer
    per trajectory instead of allocating every step, which keeps minor
    GCs (stop-the-world under domains) off the multicore hot path.
    @raise Invalid_argument if [a] is not one slot per reaction. *)

val inert_reactions : t -> string list
(** Ids of reactions whose firing changes no state — every reactant and
    product is a boundary species, so the compiled delta list is empty.
    Such reactions still consume SSA steps whenever their propensity is
    positive; the linter flags them ([GLC004]). In declaration order. *)

val affected_reactions : t -> int -> int array
(** Reactions whose propensity may change when the given reaction fires
    (including itself if it reads a species it writes). Returns the
    precomputed [c_affected] row — O(1), and the caller must not
    mutate it. *)

val refresh_affected : t -> float array -> int -> float array -> int
(** [refresh_affected t state ri a] re-evaluates into [a] exactly the
    propensities affected by a firing of reaction [ri] (the
    [c_affected.(ri)] row) and returns how many were evaluated. If [a]
    held fresh propensities for the pre-firing state, it holds fresh
    propensities for [state] afterwards — the sparse invariant the
    direct-method hot loop relies on. *)
