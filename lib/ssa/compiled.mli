(** Models compiled for simulation.

    Species are resolved to dense indices, parameters are folded into the
    kinetic laws, and each law becomes a closure over the state vector, so
    the simulator's inner loop does no name resolution. *)

module Model := Glc_model.Model

type reaction = {
  c_id : string;
  c_deltas : (int * float) list;
      (** net state change: species index, signed amount *)
  c_propensity : float array -> float;
  c_reads : int list;  (** species indices the propensity depends on *)
}

type t = {
  c_model : Model.t;
  c_names : string array;  (** species ids, index = state position *)
  c_initial : float array;
  c_boundary : bool array;
  c_reactions : reaction array;
  c_dependents : int list array;
      (** [c_dependents.(s)] lists reactions whose propensity reads
          species [s] *)
}

val compile : Model.t -> t
(** @raise Invalid_argument if the model fails {!Model.validate}. *)

val species_index : t -> string -> int
(** @raise Not_found for unknown ids. *)

val propensities : t -> float array -> float array
(** All reaction propensities in the given state; negative values are
    clamped to zero (a kinetic law may dip below zero transiently in
    ill-parameterised models). *)

val propensities_into : t -> float array -> float array -> unit
(** [propensities_into t state a] is {!propensities} writing into the
    caller's buffer [a] — the simulator's inner loop reuses one buffer
    per trajectory instead of allocating every step, which keeps minor
    GCs (stop-the-world under domains) off the multicore hot path.
    @raise Invalid_argument if [a] is not one slot per reaction. *)

val affected_reactions : t -> int -> int list
(** Reactions whose propensity may change when the given reaction fires
    (including itself if it reads a species it writes). *)
