(** Deterministic pseudo-random numbers for reproducible simulations.

    xoshiro256++ seeded through splitmix64, implemented here so every
    platform and OCaml version produces bit-identical stochastic traces —
    a requirement for the regression tests that pin analysis results. *)

type t

val create : int -> t
(** [create seed] builds a generator; equal seeds give equal streams. *)

val copy : t -> t
(** Independent copy continuing from the same state. *)

val split : t -> t
(** A new generator derived from (and advancing) [t]; streams are
    decorrelated, used to give each experiment repetition its own RNG.

    {b Stream-independence contract} (relied on by the ensemble engine's
    counter-based seed derivation, and pinned by QCheck tests):
    {ul
    {- {e Deterministic}: [split] is a pure function of the parent's
       current state — two parents in equal states yield byte-identical
       child streams (and leave the parents in equal states).}
    {- {e Counter-based}: the [i]-th successive [split] of a parent
       depends only on the parent's initial state and [i], never on how
       many children are eventually derived or which child is consumed
       first — so replicate [i] of an ensemble sees the same stream
       whatever the worker count.}
    {- {e Decorrelated}: the child seeds a fresh splitmix64 expansion
       from one 64-bit parent draw, so parent and children (and siblings)
       do not collide on any practical draw horizon.}} *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float
(** Uniform in [\[0, 1)] with 53-bit resolution. *)

val float_pos : t -> float
(** Uniform in [(0, 1]] — safe as an argument to [log]. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)] — exactly uniform, via
    rejection sampling, for every bound up to [max_int].
    @raise Invalid_argument if [bound <= 0]. *)

val exponential : t -> rate:float -> float
(** Exponentially distributed waiting time with the given rate.
    @raise Invalid_argument if [rate <= 0]. *)

val gaussian : t -> float
(** Standard normal deviate (Box–Muller). *)

val poisson : t -> mean:float -> int
(** Poisson-distributed count, exact at every mean: Knuth's product of
    uniforms below 10, Hörmann's PTRS transformed rejection above. PTRS
    works entirely in logs, so large tau-leap means ([a·tau] in the
    hundreds or beyond) neither underflow (the exp-based inversion spins
    forever once [e^-mean] rounds to 0, near mean ≈ 745) nor suffer the
    truncation bias of a rounded normal approximation.
    @raise Invalid_argument if [mean] is negative or not finite. *)
