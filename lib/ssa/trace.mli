(** Uniformly sampled simulation traces.

    The analysis algorithm of the paper consumes the simulation data as a
    stream of samples ("number of simulated data points" in Fig. 2), so
    jump-process trajectories are resampled onto a uniform time grid with
    zero-order hold: the value at grid point [g] is the state that held
    just before [g]. *)

type t

val names : t -> string array
(** Recorded species identifiers, in recording order. *)

val length : t -> int
(** Number of grid samples. *)

val t0 : t -> float
val dt : t -> float

val time : t -> int -> float
(** [time tr k] is the time of sample [k]. *)

val value : t -> string -> int -> float
(** [value tr id k] is the amount of species [id] at sample [k].
    @raise Not_found if [id] was not recorded. *)

val column : t -> string -> float array
(** Whole sampled series of one species (a fresh copy).
    @raise Not_found if the species was not recorded. *)

val index : t -> string -> int option
(** Position of a species in {!names} (first occurrence). Lookups are
    O(1) amortized: a name→index table is built lazily on the first
    lookup and reused for the life of the trace. *)

val sub : t -> from:int -> until:int -> t
(** Samples [from .. until - 1] as a new trace.
    @raise Invalid_argument on out-of-range bounds. *)

val concat : t -> t -> t
(** [concat a b] glues two contiguous recordings: same species, same
    [dt], and [b] starting exactly one step after [a] ends (within one
    part in 10^6 of [dt]). An empty operand is the identity — the
    other trace is returned unchanged, wherever the empty trace's
    nominal [t0] lies.
    @raise Invalid_argument otherwise. *)

val mean_opt : t -> string -> float option
(** Time-average of a species over the whole trace; [None] when the
    trace has no samples (an empty trace has no mean — e.g. a
    zero-width {!sub} window). *)

val variance_opt : t -> string -> float option
(** Population variance of a species' samples; [None] on an empty
    trace. *)

val fano_factor_opt : t -> string -> float option
(** [variance / mean] — the standard dispersion measure of gene
    expression noise; 1 for a Poisson-distributed stationary process.
    [None] on an empty trace or when the mean is zero (no dispersion
    measure exists). *)

val mean : t -> string -> float
(** {!mean_opt} with the documented sentinel [0.] for an empty trace.
    Callers that must distinguish "empty" from "mean is zero" use
    {!mean_opt}. *)

val variance : t -> string -> float
(** {!variance_opt} with the documented sentinel [0.] for an empty
    trace. *)

val fano_factor : t -> string -> float
(** {!fano_factor_opt} with the documented sentinel [nan] for an empty
    trace or a zero mean. *)

val crossings : t -> string -> float -> int
(** Number of times the sampled series crosses the given level (in
    either direction) — the analog precursor of the paper's variation
    count. *)

val max_value : t -> string -> float

val to_csv : t -> string
(** Header [time,<id>,...] then one row per sample. *)

val of_csv : string -> (t, string) result
(** Parses {!to_csv} output (uniform grid required). *)

val write_csv : string -> t -> unit
val read_csv : string -> (t, string) result

(** Incremental construction from a jump process. *)
module Recorder : sig
  type trace := t
  type t

  val create :
    names:string array ->
    initial:float array ->
    t0:float ->
    t_end:float ->
    dt:float ->
    t
  (** Grid [t0, t0 + dt, …] up to and including the last point [<= t_end].
      @raise Invalid_argument if [dt <= 0] or [t_end < t0] or the lengths
      of [names] and [initial] differ. *)

  val observe : t -> float -> float array -> unit
  (** [observe r t state] records that the system state is [state] from
      time [t] on. Times must be non-decreasing. *)

  val finish : t -> trace
  (** Fills the remaining grid with the last observed state and returns
      the trace. The recorder must not be used afterwards. *)
end
