module Model = Glc_model.Model
module Math = Glc_model.Math

type reaction = {
  c_id : string;
  c_deltas : (int * float) list;
  c_propensity : float array -> float;
  c_reads : int list;
}

type t = {
  c_model : Model.t;
  c_names : string array;
  c_initial : float array;
  c_boundary : bool array;
  c_reactions : reaction array;
  c_dependents : int list array;
  c_affected : int array array;
}

(* Compile a kinetic law to a closure over the state vector. Parameters
   are substituted by their constant values first, so only species remain. *)
let compile_rate (m : Model.t) index (rate : Math.t) =
  let rate =
    Math.subst
      (fun id ->
        match Model.parameter_value m id with
        | Some v -> Some (Math.Const v)
        | None -> None)
      rate
  in
  let reads =
    List.filter_map (fun id -> Hashtbl.find_opt index id) (Math.idents rate)
    |> List.sort_uniq Int.compare
  in
  let rec build : Math.t -> float array -> float = function
    | Const c -> fun _ -> c
    | Ident id -> (
        match Hashtbl.find_opt index id with
        | Some i -> fun state -> state.(i)
        | None -> assert false (* validate rejects unknown identifiers *))
    | Neg a ->
        let fa = build a in
        fun s -> -.fa s
    | Add (a, b) ->
        let fa = build a and fb = build b in
        fun s -> fa s +. fb s
    | Sub (a, b) ->
        let fa = build a and fb = build b in
        fun s -> fa s -. fb s
    | Mul (a, b) ->
        let fa = build a and fb = build b in
        fun s -> fa s *. fb s
    | Div (a, b) ->
        let fa = build a and fb = build b in
        fun s -> fa s /. fb s
    | Pow (a, b) ->
        let fa = build a and fb = build b in
        fun s -> Float.pow (fa s) (fb s)
    | Min (a, b) ->
        let fa = build a and fb = build b in
        fun s -> Float.min (fa s) (fb s)
    | Max (a, b) ->
        let fa = build a and fb = build b in
        fun s -> Float.max (fa s) (fb s)
    | Exp a ->
        let fa = build a in
        fun s -> Float.exp (fa s)
    | Ln a ->
        let fa = build a in
        fun s -> Float.log (fa s)
  in
  (build rate, reads)

let compile (m : Model.t) =
  (match Model.validate m with
  | [] -> ()
  | errs ->
      invalid_arg
        (Printf.sprintf "Compiled.compile: %s" (String.concat "; " errs)));
  let species = Array.of_list m.m_species in
  let names = Array.map (fun (s : Model.species) -> s.s_id) species in
  let boundary =
    Array.map (fun (s : Model.species) -> s.s_boundary) species
  in
  let index = Hashtbl.create 32 in
  Array.iteri (fun i id -> Hashtbl.replace index id i) names;
  let reactions =
    Array.of_list
      (List.map
         (fun (r : Model.reaction) ->
           let deltas = Hashtbl.create 8 in
           let add sign (id, st) =
             let i = Hashtbl.find index id in
             let d = Option.value ~default:0. (Hashtbl.find_opt deltas i) in
             Hashtbl.replace deltas i (d +. (sign *. float_of_int st))
           in
           List.iter (add (-1.)) r.r_reactants;
           List.iter (add 1.) r.r_products;
           (* SBML boundaryCondition semantics: a boundary species may
              participate in a reaction (its amount still scales the
              kinetic law) but is never changed by firings, so its
              deltas are dropped here — the single place every
              simulation algorithm applies state changes from. *)
           let c_deltas =
             Hashtbl.fold (fun i d acc -> (i, d) :: acc) deltas []
             |> List.filter (fun (i, d) -> d <> 0. && not boundary.(i))
             |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
           in
           let c_propensity, c_reads = compile_rate m index r.r_rate in
           { c_id = r.r_id; c_deltas; c_propensity; c_reads })
         m.m_reactions)
  in
  let dependents = Array.make (Array.length species) [] in
  Array.iteri
    (fun ri r ->
      List.iter (fun s -> dependents.(s) <- ri :: dependents.(s)) r.c_reads)
    reactions;
  Array.iteri (fun s l -> dependents.(s) <- List.rev l) dependents;
  let affected =
    Array.map
      (fun r ->
        List.concat_map (fun (s, _) -> dependents.(s)) r.c_deltas
        |> List.sort_uniq Int.compare |> Array.of_list)
      reactions
  in
  {
    c_model = m;
    c_names = names;
    c_initial = Array.map (fun (s : Model.species) -> s.s_initial) species;
    c_boundary = boundary;
    c_reactions = reactions;
    c_dependents = dependents;
    c_affected = affected;
  }

let species_index t id =
  let n = Array.length t.c_names in
  let rec find i =
    if i >= n then raise Not_found
    else if String.equal t.c_names.(i) id then i
    else find (i + 1)
  in
  find 0

let propensities t state =
  Array.map (fun r -> Float.max 0. (r.c_propensity state)) t.c_reactions

let propensities_into t state a =
  if Array.length a <> Array.length t.c_reactions then
    invalid_arg "Compiled.propensities_into: wrong buffer length";
  for i = 0 to Array.length a - 1 do
    a.(i) <- Float.max 0. (t.c_reactions.(i).c_propensity state)
  done

let inert_reactions t =
  Array.to_list t.c_reactions
  |> List.filter_map (fun r ->
         if r.c_deltas = [] then Some r.c_id else None)

let affected_reactions t ri = t.c_affected.(ri)

let refresh_affected t state ri a =
  let aff = t.c_affected.(ri) in
  for k = 0 to Array.length aff - 1 do
    let j = aff.(k) in
    a.(j) <- Float.max 0. (t.c_reactions.(j).c_propensity state)
  done;
  Array.length aff
