module Model = Glc_model.Model
module Math = Glc_model.Math
module Metrics = Glc_obs.Metrics

type path = Ast | Ir | Ir_batch

(* The process-wide default, settable once from the CLI (--eval) before
   any simulation starts. Atomic only so that reads from pool domains
   are well-defined; this is configuration, not synchronisation. *)
let default = Atomic.make Ir

let set_default_path p = Atomic.set default p
let default_path () = Atomic.get default

type reaction = {
  c_id : string;
  c_deltas : (int * float) list;
  c_propensity : float array -> float;
  c_expr : Ir.expr option;
  c_reads : int list;
  c_cost : int;
}

type ir_stats = {
  ir_instrs : int;
  ir_regs : int;
  ir_cse_hits : int;
  ir_const_folds : int;
}

type t = {
  c_model : Model.t;
  c_names : string array;
  c_initial : float array;
  c_boundary : bool array;
  c_reactions : reaction array;
  c_dependents : int list array;
  c_affected : int array array;
  c_path : path;
  c_regs : int;
  c_eval_cost : int;
  c_affected_cost : int array;
  c_ir : ir_stats option;
}

exception
  Non_finite_propensity of {
    nf_model : string;
    nf_reaction : string;
    nf_value : float;
    nf_state : (string * float) list;
  }

let () =
  Printexc.register_printer (function
    | Non_finite_propensity { nf_model; nf_reaction; nf_value; nf_state } ->
        Some
          (Printf.sprintf
             "Non_finite_propensity: model %S, reaction %S evaluated to %g \
              in state [%s]"
             nf_model nf_reaction nf_value
             (String.concat "; "
                (List.map
                   (fun (id, v) -> Printf.sprintf "%s=%g" id v)
                   nf_state)))
    | _ -> None)

(* Cold path, deliberately out of line. *)
let non_finite t j p state =
  raise
    (Non_finite_propensity
       {
         nf_model = t.c_model.Model.m_id;
         nf_reaction = t.c_reactions.(j).c_id;
         nf_value = p;
         nf_state =
           Array.to_list (Array.mapi (fun i id -> (id, state.(i))) t.c_names);
       })

(* Every propensity that enters a simulator's cache goes through here:
   finite negatives clamp to zero (a kinetic law may dip below zero
   transiently in ill-parameterised models), but NaN and infinity raise.
   The previous [Float.max 0.] clamp returned NaN for a NaN law value
   (e.g. 0/0 at an empty state, or ln of a negative concentration),
   which flowed silently into [a0], made every comparison false and
   ended the run as if time had run out — a corrupted trace with no
   diagnostic. *)
let[@inline] clamp_checked t j p state =
  if Float.is_finite p then if p > 0. then p else 0.
  else non_finite t j p state

(* Per-domain scratch register file for IR evaluation, grown on demand
   and shared by every compiled model in the domain. Compiled models
   are shared across the pool's domains (the engine's compile cache
   hands one [t] to all workers), so the scratch must be domain-local
   rather than live in [t]; the hot entry points fetch it once per call
   and evaluate every law in the batch against it, so the
   [Domain.DLS.get] is paid per refresh, not per evaluation, and a
   single key keeps the DLS footprint bounded. Evaluations never nest
   within a domain — [Ir.exec] runs to completion with no callbacks —
   so reuse is safe. *)
let scratch_key : float array ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [||])

let scratch n =
  let r = Domain.DLS.get scratch_key in
  if Array.length !r < n then r := Array.make n 0.;
  !r

(* Parameters are substituted by their constant values first, so only
   species remain — which is also what lets the IR path constant-fold
   parameter arithmetic like [k^n] away. *)
let substitute (m : Model.t) index (rate : Math.t) =
  let rate =
    Math.subst
      (fun id ->
        match Model.parameter_value m id with
        | Some v -> Some (Math.Const v)
        | None -> None)
      rate
  in
  let reads =
    List.filter_map (fun id -> Hashtbl.find_opt index id) (Math.idents rate)
    |> List.sort_uniq Int.compare
  in
  (rate, reads)

(* The reference evaluator: a tree of closures mirroring the AST. *)
let build_ast index (rate : Math.t) =
  let rec build : Math.t -> float array -> float = function
    | Const c -> fun _ -> c
    | Ident id -> (
        match Hashtbl.find_opt index id with
        | Some i -> fun state -> state.(i)
        | None -> assert false (* validate rejects unknown identifiers *))
    | Neg a ->
        let fa = build a in
        fun s -> -.fa s
    | Add (a, b) ->
        let fa = build a and fb = build b in
        fun s -> fa s +. fb s
    | Sub (a, b) ->
        let fa = build a and fb = build b in
        fun s -> fa s -. fb s
    | Mul (a, b) ->
        let fa = build a and fb = build b in
        fun s -> fa s *. fb s
    | Div (a, b) ->
        let fa = build a and fb = build b in
        fun s -> fa s /. fb s
    | Pow (a, b) ->
        let fa = build a and fb = build b in
        fun s -> Float.pow (fa s) (fb s)
    | Min (a, b) ->
        let fa = build a and fb = build b in
        fun s -> Float.min (fa s) (fb s)
    | Max (a, b) ->
        let fa = build a and fb = build b in
        fun s -> Float.max (fa s) (fb s)
    | Exp a ->
        let fa = build a in
        fun s -> Float.exp (fa s)
    | Ln a ->
        let fa = build a in
        fun s -> Float.log (fa s)
  in
  build rate

let compile ?path ?(metrics = Metrics.noop) (m : Model.t) =
  let path = match path with Some p -> p | None -> Atomic.get default in
  (match Model.validate m with
  | [] -> ()
  | errs ->
      invalid_arg
        (Printf.sprintf "Compiled.compile: %s" (String.concat "; " errs)));
  let live = Metrics.enabled metrics in
  let t_start = if live then Glc_obs.Clock.now () else 0. in
  let species = Array.of_list m.m_species in
  let names = Array.map (fun (s : Model.species) -> s.s_id) species in
  let boundary =
    Array.map (fun (s : Model.species) -> s.s_boundary) species
  in
  let index = Hashtbl.create 32 in
  Array.iteri (fun i id -> Hashtbl.replace index id i) names;
  let resolve id = Hashtbl.find_opt index id in
  let n_instrs = ref 0
  and n_regs = ref 0
  and n_cse = ref 0
  and n_folds = ref 0 in
  let reactions =
    Array.of_list
      (List.map
         (fun (r : Model.reaction) ->
           let deltas = Hashtbl.create 8 in
           let add sign (id, st) =
             let i = Hashtbl.find index id in
             let d = Option.value ~default:0. (Hashtbl.find_opt deltas i) in
             Hashtbl.replace deltas i (d +. (sign *. float_of_int st))
           in
           List.iter (add (-1.)) r.r_reactants;
           List.iter (add 1.) r.r_products;
           (* SBML boundaryCondition semantics: a boundary species may
              participate in a reaction (its amount still scales the
              kinetic law) but is never changed by firings, so its
              deltas are dropped here — the single place every
              simulation algorithm applies state changes from. *)
           let c_deltas =
             Hashtbl.fold (fun i d acc -> (i, d) :: acc) deltas []
             |> List.filter (fun (i, d) -> d <> 0. && not boundary.(i))
             |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
           in
           let rate, c_reads = substitute m index r.r_rate in
           let c_propensity, c_expr, c_cost =
             match path with
             | Ast -> (build_ast index rate, None, 0)
             | Ir | Ir_batch ->
                 let e, st = Ir.compile ~resolve rate in
                 n_instrs := !n_instrs + st.Ir.s_instrs;
                 n_regs := max !n_regs e.Ir.e_prog.Ir.p_regs;
                 n_cse := !n_cse + st.Ir.s_cse_hits;
                 n_folds := !n_folds + st.Ir.s_const_folds;
                 let regs_needed = e.Ir.e_prog.Ir.p_regs in
                 ( (fun state -> Ir.eval e ~regs:(scratch regs_needed) state),
                   Some e,
                   st.Ir.s_instrs )
           in
           { c_id = r.r_id; c_deltas; c_propensity; c_expr; c_reads; c_cost })
         m.m_reactions)
  in
  let dependents = Array.make (Array.length species) [] in
  Array.iteri
    (fun ri r ->
      List.iter (fun s -> dependents.(s) <- ri :: dependents.(s)) r.c_reads)
    reactions;
  Array.iteri (fun s l -> dependents.(s) <- List.rev l) dependents;
  let affected =
    Array.map
      (fun r ->
        List.concat_map (fun (s, _) -> dependents.(s)) r.c_deltas
        |> List.sort_uniq Int.compare |> Array.of_list)
      reactions
  in
  let affected_cost =
    Array.map
      (fun aff ->
        Array.fold_left (fun acc j -> acc + reactions.(j).c_cost) 0 aff)
      affected
  in
  let ir =
    match path with
    | Ast -> None
    | Ir | Ir_batch ->
        Some
          {
            ir_instrs = !n_instrs;
            ir_regs = !n_regs;
            ir_cse_hits = !n_cse;
            ir_const_folds = !n_folds;
          }
  in
  if live && path <> Ast then begin
    let c name = Metrics.counter metrics name in
    Metrics.Counter.add (c "ssa.ir.programs") (Array.length reactions);
    Metrics.Counter.add (c "ssa.ir.instructions_compiled") !n_instrs;
    Metrics.Counter.add (c "ssa.ir.cse_hits") !n_cse;
    Metrics.Counter.add (c "ssa.ir.const_folds") !n_folds;
    Metrics.observe_since metrics "ssa.ir.compile_seconds" t_start
  end;
  {
    c_model = m;
    c_names = names;
    c_initial = Array.map (fun (s : Model.species) -> s.s_initial) species;
    c_boundary = boundary;
    c_reactions = reactions;
    c_dependents = dependents;
    c_affected = affected;
    c_path = path;
    c_regs = !n_regs;
    c_eval_cost = Array.fold_left (fun acc r -> acc + r.c_cost) 0 reactions;
    c_affected_cost = affected_cost;
    c_ir = ir;
  }

let species_index t id =
  let n = Array.length t.c_names in
  let rec find i =
    if i >= n then raise Not_found
    else if String.equal t.c_names.(i) id then i
    else find (i + 1)
  in
  find 0

(* Raw law evaluation for the hot entry points: IR programs run
   directly against the caller-fetched scratch, skipping the
   [c_propensity] closure (which re-fetches the DLS scratch on every
   call and exists for external field users). *)
let[@inline] raw_eval t regs j state =
  let r = t.c_reactions.(j) in
  match r.c_expr with
  | Some e -> Ir.eval e ~regs state
  | None -> r.c_propensity state

let make_regs t = Array.make t.c_regs 0.

let propensity_in t ~regs state j =
  clamp_checked t j (raw_eval t regs j state) state

let propensity t state j = propensity_in t ~regs:(scratch t.c_regs) state j

let propensities t state =
  let regs = scratch t.c_regs in
  Array.mapi
    (fun j (_ : reaction) -> clamp_checked t j (raw_eval t regs j state) state)
    t.c_reactions

let propensities_into_in t ~regs state a =
  if Array.length a <> Array.length t.c_reactions then
    invalid_arg "Compiled.propensities_into: wrong buffer length";
  for i = 0 to Array.length a - 1 do
    a.(i) <- clamp_checked t i (raw_eval t regs i state) state
  done

let propensities_into t state a =
  propensities_into_in t ~regs:(scratch t.c_regs) state a

let inert_reactions t =
  Array.to_list t.c_reactions
  |> List.filter_map (fun r ->
         if r.c_deltas = [] then Some r.c_id else None)

let affected_reactions t ri = t.c_affected.(ri)

let refresh_affected_in t ~regs state ri a =
  let aff = t.c_affected.(ri) in
  for k = 0 to Array.length aff - 1 do
    let j = aff.(k) in
    a.(j) <- clamp_checked t j (raw_eval t regs j state) state
  done;
  Array.length aff

let refresh_affected t state ri a =
  refresh_affected_in t ~regs:(scratch t.c_regs) state ri a

let eval_cost t = t.c_eval_cost
let affected_cost t ri = t.c_affected_cost.(ri)
let ir_stats t = t.c_ir

(* ------------------------------------------------------------------ *)
(* Batched (structure-of-arrays) evaluation                           *)

let make_regs_batch t ~width =
  if width < 1 then invalid_arg "Compiled.make_regs_batch: width < 1";
  Array.init t.c_regs (fun _ -> Array.make width 0.)

(* Cold path: reconstruct the offending lane's state vector for the
   diagnostic, so the batched raiser carries exactly what the scalar
   one does. *)
let non_finite_lane t ~states ~lane j p =
  raise
    (Non_finite_propensity
       {
         nf_model = t.c_model.Model.m_id;
         nf_reaction = t.c_reactions.(j).c_id;
         nf_value = p;
         nf_state =
           Array.to_list
             (Array.mapi (fun i id -> (id, states.(i).(lane))) t.c_names);
       })

let refresh_reaction_batch_in t ~regs ~states ~lanes ~n j ~rows =
  let r = t.c_reactions.(j) in
  match r.c_expr with
  | Some e ->
      (* [exec_batch_unchecked]: the rows come from
         {!make_regs_batch} and the driver's own SoA block, whose
         widths are fixed at construction, and [lanes] holds lane ids
         below that width by construction — per-call row validation
         would cost more than the typical few-lane refresh. The result
         operand is resolved once for the whole group, not per lane. *)
      Ir.exec_batch_unchecked e.Ir.e_prog ~regs ~states ~lanes ~n;
      (match e.Ir.e_result with
      | Ir.Reg d ->
          let row = regs.(d) in
          for k = 0 to n - 1 do
            let l = lanes.(k) in
            let p = row.(l) in
            rows.(l).(j) <-
              (if Float.is_finite p then if p > 0. then p else 0.
               else non_finite_lane t ~states ~lane:l j p)
          done
      | Ir.Pool i ->
          if n > 0 then begin
            let p = e.Ir.e_prog.Ir.p_pool.(i) in
            let p' =
              if Float.is_finite p then if p > 0. then p else 0.
              else non_finite_lane t ~states ~lane:lanes.(0) j p
            in
            for k = 0 to n - 1 do
              rows.(lanes.(k)).(j) <- p'
            done
          end
      | Ir.State s ->
          let row = states.(s) in
          for k = 0 to n - 1 do
            let l = lanes.(k) in
            let p = row.(l) in
            rows.(l).(j) <-
              (if Float.is_finite p then if p > 0. then p else 0.
               else non_finite_lane t ~states ~lane:l j p)
          done)
  | None ->
      (* AST fallback: gather each lane's column into a scratch state
         vector and go through the scalar closure. Slow, but keeps the
         batched entry point total over every compile path. *)
      let tmp = Array.make (Array.length t.c_names) 0. in
      for k = 0 to n - 1 do
        let l = lanes.(k) in
        for s = 0 to Array.length tmp - 1 do
          tmp.(s) <- states.(s).(l)
        done;
        rows.(l).(j) <- clamp_checked t j (r.c_propensity tmp) tmp
      done
