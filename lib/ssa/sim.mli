(** Stochastic simulation of kinetic models.

    Two exact SSA variants are provided — Gillespie's direct method
    (Gillespie 1977, the algorithm cited by the paper) and the
    Gibson–Bruck next-reaction method — plus explicit tau-leaping
    (Gillespie 2001 with the step selection of Cao et al. 2006) for an
    accuracy/speed trade-off. All interpret each kinetic law as the
    reaction's propensity function, support timed interventions on
    species (the virtual-lab input stimuli), and record a uniformly
    sampled {!Trace.t}. *)

module Model := Glc_model.Model

type algorithm =
  | Direct
      (** Gillespie's direct method with sparse propensity updates:
          after each firing only the reactions in the fired reaction's
          compile-time dependency closure are re-evaluated. Trajectories
          are byte-identical to {!Direct_full_recompute} for the same
          seed. *)
  | Direct_full_recompute
      (** The direct method re-evaluating every propensity at every
          step. Kept as the reference implementation for equivalence
          tests and the [bench ssa] harness; prefer {!Direct}. *)
  | Next_reaction
  | Tau_leaping of { epsilon : float }
      (** error-control parameter of the step selection, typically
          0.01–0.05; steps that would be finer than a few SSA steps fall
          back to exact direct-method stepping *)

type config = {
  t0 : float;  (** start time *)
  t_end : float;  (** stop time *)
  dt : float;  (** trace sampling step *)
  seed : int;  (** RNG seed; equal seeds reproduce traces exactly *)
  algorithm : algorithm;
}

val config :
  ?t0:float -> ?dt:float -> ?seed:int -> ?algorithm:algorithm ->
  t_end:float -> unit -> config
(** Defaults: [t0 = 0.], [dt = 1.], [seed = 42], [algorithm = Direct]. *)

type stats = {
  reactions_fired : int;
  events_applied : int;
  final_state : (string * float) list;
}

val run :
  ?events:Events.schedule -> ?metrics:Glc_obs.Metrics.t -> config ->
  Model.t -> Trace.t
(** Compiles and simulates the model. Events clamp species to new values
    at their scheduled times; reaction firings never drive a count below
    zero (propensities are clamped at zero).

    When [metrics] is a live registry (default {!Glc_obs.Metrics.noop}),
    each run flushes per-run totals into it once, after the simulation:
    counters [ssa.runs.<algo>], [ssa.reactions_fired],
    [ssa.events_applied], [ssa.propensity_evals], [ssa.heap_updates],
    [ssa.recorder_observes], [ssa.trace_samples] (all deterministic for
    a fixed seed) and the wall-time histogram [ssa.run_seconds.<algo>],
    where [<algo>] is [direct], [direct_full], [next_reaction] or
    [tau_leaping]. The
    inner loops accumulate in plain local fields, so instrumentation
    adds no atomic traffic to the hot path. *)

val run_with_stats :
  ?events:Events.schedule -> ?metrics:Glc_obs.Metrics.t -> config ->
  Model.t -> Trace.t * stats

val run_compiled :
  ?events:Events.schedule -> ?metrics:Glc_obs.Metrics.t -> config ->
  Compiled.t -> Trace.t * stats
(** Reuses an already compiled model (the benchmark harness simulates the
    same circuit many times). *)

val run_compiled_rng :
  ?events:Events.schedule -> ?metrics:Glc_obs.Metrics.t -> rng:Rng.t ->
  config -> Compiled.t -> Trace.t * stats
(** Like {!run_compiled} but draws randomness from a caller-supplied
    generator instead of seeding a fresh one from [config.seed] (which is
    ignored). The ensemble engine uses this to give every replicate its
    own {!Rng.split}-derived stream while sharing one compiled model. *)

val run_batch_rngs :
  ?events:Events.schedule -> ?metrics:Glc_obs.Metrics.t ->
  rngs:Rng.t array -> config -> Compiled.t ->
  (Trace.t * stats, exn) result array
(** [run_batch_rngs ~rngs cfg c] simulates one replicate per generator
    in [rngs], advancing all of them in lockstep over structure-of-
    arrays state and register files: each round, every stale propensity
    is re-evaluated for all lanes that need it with one shared
    instruction decode ({!Ir.exec_batch}), then each live lane takes
    one direct-method step. Lane [l]'s trace and stats are
    byte-identical to [run_compiled_rng ~rng:rngs.(l)] — the lockstep
    schedule reorders only RNG-free propensity refreshes — so the
    batched path is a pure throughput choice. Lanes retire
    independently at [t_end]; a lane whose kinetic law goes non-finite
    fails alone ([Error], carrying {!Compiled.Non_finite_propensity}
    for its own state) without disturbing its block-mates.

    Batched execution engages for {!Direct} on an IR-compiled model
    ({!Compiled.Ir} or {!Compiled.Ir_batch}); any other algorithm or
    the {!Ast} path falls back to scalar runs lane by lane, so the
    entry point is total. With a live [metrics] registry each finished
    lane flushes the same per-run counters as the scalar runner, plus
    per-block batch counters [ssa.ir.batch_evals] (lane-evaluations
    served by shared decodes), [ssa.ir.batch_groups] (shared decodes),
    [ssa.ir.batch_instructions] (instructions decoded once per group),
    [ssa.ir.batch_blocks], [ssa.ir.batch_lanes] and the
    [ssa.ir.batch_block_seconds] histogram. No per-lane
    [ssa.run_seconds.*] is recorded — lanes share one wall clock. *)

(**/**)

val select : float array -> float -> int
(** [select a target] is the index of the reaction the direct method
    fires for cumulative-propensity target [target ∈ \[0, sum a)]: the
    first index [i] with positive propensity whose running cumulative
    sum exceeds [target]. Zero-propensity reactions are never selected,
    even when floating-point rounding leaves the cumulative sum below
    [target]; the draw then falls back to the last positive-propensity
    index. Raises [Invalid_argument] if no propensity is positive.
    Exposed for tests. *)

(**/**)
