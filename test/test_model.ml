(* Tests for glc_model: kinetic-law math, the XML layer, reaction-network
   models and the SBML subset reader/writer. *)

module Math = Glc_model.Math
module Xml = Glc_model.Xml
module Model = Glc_model.Model
module Sbml = Glc_model.Sbml

let checkb = Alcotest.check Alcotest.bool
let checkf = Alcotest.check (Alcotest.float 1e-9)
let checks = Alcotest.check Alcotest.string

(* ---- math ---- *)

let lookup_of l x = List.assoc x l

let test_math_eval () =
  let open Math in
  let env = lookup_of [ ("x", 4.); ("y", 2.) ] in
  checkf "add" 6. (eval ~lookup:env (var "x" + var "y"));
  checkf "sub" 2. (eval ~lookup:env (var "x" - var "y"));
  checkf "mul" 8. (eval ~lookup:env (var "x" * var "y"));
  checkf "div" 2. (eval ~lookup:env (var "x" / var "y"));
  checkf "pow" 16. (eval ~lookup:env (var "x" ** var "y"));
  checkf "neg" (-4.) (eval ~lookup:env (Neg (var "x")));
  checkf "min" 2. (eval ~lookup:env (Min (var "x", var "y")));
  checkf "max" 4. (eval ~lookup:env (Max (var "x", var "y")));
  checkf "exp" (Float.exp 2.) (eval ~lookup:env (Exp (var "y")));
  checkf "ln" (Float.log 4.) (eval ~lookup:env (Ln (var "x")))

let test_math_idents () =
  let open Math in
  Alcotest.(check (list string))
    "idents" [ "a"; "b" ]
    (idents ((var "b" * var "a") + (var "a" ** num 2.)))

let test_math_subst () =
  let open Math in
  let e =
    subst
      (fun x -> if x = "k" then Some (num 3.) else None)
      (var "k" * var "x")
  in
  checkf "substituted" 6. (eval ~lookup:(lookup_of [ ("x", 2.) ]) e)

let test_hill_limits () =
  let open Math in
  let hill x =
    eval
      ~lookup:(lookup_of [ ("r", x) ])
      (hill_repression ~ymin:(num 1.) ~ymax:(num 101.) ~k:(num 10.)
         ~n:(num 2.) (var "r"))
  in
  checkf "no repressor -> ymax" 101. (hill 0.);
  checkf "half response at K" 51. (hill 10.);
  checkb "saturating -> ymin" true (hill 1e9 < 1.0001);
  let act x =
    eval
      ~lookup:(lookup_of [ ("r", x) ])
      (hill_activation ~ymin:(num 1.) ~ymax:(num 101.) ~k:(num 10.)
         ~n:(num 2.) (var "r"))
  in
  checkf "no activator -> ymin" 1. (act 0.);
  checkb "saturating -> ymax" true (act 1e9 > 100.9999)

let test_math_pp () =
  let open Math in
  checks "precedence" "a + b * c" (to_string (var "a" + (var "b" * var "c")));
  checks "parens" "(a + b) * c" (to_string ((var "a" + var "b") * var "c"));
  checks "pow" "a^2" (to_string (var "a" ** num 2.));
  checks "div chain" "a / b / c" (to_string (var "a" / var "b" / var "c"));
  checks "functions" "min(a, exp(b))"
    (to_string (Min (var "a", Exp (var "b"))))

let test_math_parser () =
  let parse s =
    match Math.of_string s with
    | Ok e -> e
    | Error msg -> Alcotest.failf "parse %S: %s" s msg
  in
  let open Math in
  checkb "precedence" true
    (equal (parse "1 + 2 * x") (num 1. + (num 2. * var "x")));
  checkb "hill law" true
    (equal
       (parse "k^n / (k^n + S^n)")
       ((var "k" ** var "n")
       / ((var "k" ** var "n") + (var "S" ** var "n"))));
  checkb "scientific notation" true (equal (parse "1.5e-3") (num 0.0015));
  checkb "unary minus" true (equal (parse "-x * 2") (Neg (var "x") * num 2.));
  checkb "power is right-associative" true
    (equal (parse "a^b^c") (var "a" ** (var "b" ** var "c")));
  checkb "functions" true
    (equal (parse "min(a, max(b, 1)) + exp(ln(x))")
       (Min (var "a", Max (var "b", num 1.)) + Exp (Ln (var "x"))));
  checkb "exp is a function, e an identifier" true
    (equal (parse "exp(1)") (Exp (num 1.)) && equal (parse "e") (var "e"));
  List.iter
    (fun bad ->
      match Math.of_string bad with
      | Ok _ -> Alcotest.failf "expected failure on %S" bad
      | Error _ -> ())
    [ ""; "1 +"; "(1"; "foo(1)"; "min(1)"; "1 2"; "2e" ]

let test_math_equal () =
  let open Math in
  checkb "equal" true (equal (var "a" + num 1.) (var "a" + num 1.));
  checkb "not equal" false (equal (var "a" + num 1.) (num 1. + var "a"))

(* ---- xml ---- *)

let test_xml_roundtrip () =
  let doc =
    Xml.element ~attrs:[ ("id", "m1"); ("note", "a<b&c\"d") ] "root"
      [
        Xml.element "child" [ Xml.text "hello & <world>" ];
        Xml.element ~attrs:[ ("x", "1") ] "empty" [];
      ]
  in
  match Xml.parse (Xml.to_string doc) with
  | Error e -> Alcotest.fail e
  | Ok parsed ->
      checkb "root tag" true (Xml.tag parsed = Some "root");
      checks "escaped attr" "a<b&c\"d" (Option.get (Xml.attr "note" parsed));
      checks "text round trip" "hello & <world>"
        (Xml.text_content (Option.get (Xml.child "child" parsed)));
      checkb "empty element" true (Xml.child "empty" parsed <> None)

let test_xml_skips_misc () =
  let s =
    "<?xml version=\"1.0\"?><!-- preamble --><a><!-- inner --><b/>\
     <?pi data?></a>"
  in
  match Xml.parse s with
  | Error e -> Alcotest.fail e
  | Ok doc -> Alcotest.(check int) "one child" 1 (List.length (Xml.children doc))

let test_xml_entities () =
  match Xml.parse "<a>&lt;&gt;&amp;&quot;&apos;&#65;&#x42;</a>" with
  | Error e -> Alcotest.fail e
  | Ok doc -> checks "decoded" "<>&\"'AB" (Xml.text_content doc)

let test_xml_errors () =
  let fails s = match Xml.parse s with Ok _ -> false | Error _ -> true in
  checkb "mismatched tag" true (fails "<a></b>");
  checkb "unterminated" true (fails "<a>");
  checkb "unknown entity" true (fails "<a>&nope;</a>");
  checkb "trailing garbage" true (fails "<a/><b/>");
  checkb "bad attr" true (fails "<a x=1/>")

let test_xml_childs () =
  match Xml.parse "<a><b i=\"1\"/><c/><b i=\"2\"/></a>" with
  | Error e -> Alcotest.fail e
  | Ok doc ->
      Alcotest.(check (list (option string)))
        "both bs in order"
        [ Some "1"; Some "2" ]
        (List.map (Xml.attr "i") (Xml.childs "b" doc))

(* ---- model ---- *)

let valid_model () =
  Model.make ~id:"m"
    ~species:
      [ Model.species ~boundary:true "I" 0.; Model.species "P" 0. ]
    ~parameters:[ Model.parameter "k" 2.; Model.parameter "g" 0.1 ]
    ~reactions:
      [
        Model.reaction ~products:[ ("P", 1) ] ~modifiers:[ "I" ]
          ~rate:Math.(var "k" / (num 1. + var "I"))
          "prod";
        Model.reaction
          ~reactants:[ ("P", 1) ]
          ~rate:Math.(var "g" * var "P")
          "deg";
      ]
    ()

let test_model_valid () =
  let m = valid_model () in
  Alcotest.(check (list string)) "no errors" [] (Model.validate m);
  checkb "find species" true (Model.find_species m "P" <> None);
  checkb "find reaction" true (Model.find_reaction m "deg" <> None);
  checkf "param" 2. (Option.get (Model.parameter_value m "k"));
  Alcotest.(check (list string)) "ids" [ "I"; "P" ] (Model.species_ids m)

let expect_invalid name f =
  match f () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.failf "%s: expected Invalid_argument" name

let test_model_validation () =
  expect_invalid "duplicate species" (fun () ->
      Model.make ~id:"m"
        ~species:[ Model.species "P" 0.; Model.species "P" 1. ]
        ~reactions:[] ());
  expect_invalid "unknown reactant" (fun () ->
      Model.make ~id:"m" ~species:[]
        ~reactions:
          [ Model.reaction ~reactants:[ ("X", 1) ] ~rate:(Math.num 1.) "r" ]
        ());
  expect_invalid "unknown ident in rate" (fun () ->
      Model.make ~id:"m" ~species:[]
        ~reactions:[ Model.reaction ~rate:(Math.var "zz") "r" ]
        ());
  (* SBML boundaryCondition: a boundary species is a legal product (or
     reactant) — the kinetics see it, firings just never change it. This
     used to be rejected, which made circuits whose inputs feed reactions
     unrepresentable. *)
  (match
     Model.make ~id:"m"
       ~species:[ Model.species ~boundary:true "I" 0. ]
       ~reactions:
         [ Model.reaction ~products:[ ("I", 1) ] ~rate:(Math.num 1.) "r" ]
       ()
   with
  | (_ : Model.t) -> ()
  | exception Invalid_argument msg ->
      Alcotest.failf "boundary product must be valid, got: %s" msg);
  expect_invalid "zero stoichiometry" (fun () ->
      Model.make ~id:"m"
        ~species:[ Model.species "P" 0. ]
        ~reactions:
          [ Model.reaction ~products:[ ("P", 0) ] ~rate:(Math.num 1.) "r" ]
        ());
  expect_invalid "negative initial" (fun () ->
      Model.make ~id:"m" ~species:[ Model.species "P" (-1.) ] ~reactions:[]
        ())

(* validate_issues: every finding carries the offending entity, and its
   message repeats the id so the text stands alone *)
let test_model_validate_issues () =
  let m =
    {
      Model.m_id = "m";
      m_species =
        [ Model.species "P" 0.; Model.species "P" 1.; Model.species "N" (-2.) ];
      m_parameters = [];
      m_reactions =
        [
          Model.reaction ~reactants:[ ("X", 1) ] ~rate:(Math.num 1.) "r";
        ];
    }
  in
  let issues = Model.validate_issues m in
  checkb "found issues" true (issues <> []);
  let subject_of pred =
    List.exists (fun (i : Model.issue) -> pred i.Model.i_subject) issues
  in
  checkb "duplicate names the species" true
    (subject_of (function `Species "P" -> true | _ -> false));
  checkb "negative initial names the species" true
    (subject_of (function `Species "N" -> true | _ -> false));
  checkb "unknown reactant names the reaction" true
    (subject_of (function `Reaction "r" -> true | _ -> false));
  List.iter
    (fun (i : Model.issue) ->
      let id =
        match i.Model.i_subject with
        | `Model -> None
        | `Species id | `Parameter id | `Reaction id -> Some id
      in
      match id with
      | None -> ()
      | Some id ->
          let quoted = Printf.sprintf "%S" id in
          let mentions hay needle =
            let n = String.length needle in
            let rec go k =
              k + n <= String.length hay
              && (String.sub hay k n = needle || go (k + 1))
            in
            go 0
          in
          checkb
            (Printf.sprintf "message %S embeds its id" i.Model.i_message)
            true
            (mentions i.Model.i_message quoted))
    issues;
  (* validate is exactly the messages, in order *)
  Alcotest.(check (list string))
    "validate = messages of validate_issues"
    (List.map (fun (i : Model.issue) -> i.Model.i_message) issues)
    (Model.validate m)

let test_model_with_initial () =
  let m = Model.with_initial (valid_model ()) "P" 7. in
  checkf "changed" 7. (Option.get (Model.find_species m "P")).Model.s_initial;
  Alcotest.check_raises "unknown species" Not_found (fun () ->
      ignore (Model.with_initial m "nope" 1.))

let test_model_map_rates () =
  let m = Model.map_rates (fun r -> Math.(num 2. * r)) (valid_model ()) in
  let r = Option.get (Model.find_reaction m "deg") in
  checkb "wrapped" true
    (Math.equal r.Model.r_rate Math.(num 2. * (var "g" * var "P")))

(* ---- sbml ---- *)

let rec math_gen depth =
  let open QCheck.Gen in
  if depth = 0 then
    oneof
      [
        map (fun f -> Math.Const (Float.of_int f)) (int_range (-5) 20);
        map (fun v -> Math.Ident v) (oneofl [ "x"; "y"; "k1" ]);
      ]
  else begin
    let sub = math_gen (depth - 1) in
    frequency
      [
        (2, map (fun f -> Math.Const (Float.of_int f)) (int_range (-5) 20));
        (2, map (fun v -> Math.Ident v) (oneofl [ "x"; "y"; "k1" ]));
        (1, map (fun a -> Math.Neg a) sub);
        (1, map2 (fun a b -> Math.Add (a, b)) sub sub);
        (1, map2 (fun a b -> Math.Sub (a, b)) sub sub);
        (1, map2 (fun a b -> Math.Mul (a, b)) sub sub);
        (1, map2 (fun a b -> Math.Div (a, b)) sub sub);
        (1, map2 (fun a b -> Math.Pow (a, b)) sub sub);
        (1, map2 (fun a b -> Math.Min (a, b)) sub sub);
        (1, map2 (fun a b -> Math.Max (a, b)) sub sub);
        (1, map (fun a -> Math.Exp a) sub);
        (1, map (fun a -> Math.Ln a) sub);
      ]
  end

let math_arb = QCheck.make ~print:Math.to_string (math_gen 4)

(* non-negative constants: the printer renders Const (-5.) as "-5", which
   reads back as Neg (Const 5.) — semantically equal, structurally not *)
let rec nonneg_consts : Math.t -> Math.t = function
  | Math.Const c -> Math.Const (Float.abs c)
  | Math.Ident v -> Math.Ident v
  | Math.Neg a -> Math.Neg (nonneg_consts a)
  | Math.Add (a, b) -> Math.Add (nonneg_consts a, nonneg_consts b)
  | Math.Sub (a, b) -> Math.Sub (nonneg_consts a, nonneg_consts b)
  | Math.Mul (a, b) -> Math.Mul (nonneg_consts a, nonneg_consts b)
  | Math.Div (a, b) -> Math.Div (nonneg_consts a, nonneg_consts b)
  | Math.Pow (a, b) -> Math.Pow (nonneg_consts a, nonneg_consts b)
  | Math.Min (a, b) -> Math.Min (nonneg_consts a, nonneg_consts b)
  | Math.Max (a, b) -> Math.Max (nonneg_consts a, nonneg_consts b)
  | Math.Exp a -> Math.Exp (nonneg_consts a)
  | Math.Ln a -> Math.Ln (nonneg_consts a)

let prop_math_parse_roundtrip =
  QCheck.Test.make ~name:"parser re-reads the printer's output" ~count:300
    (QCheck.make ~print:Math.to_string
       (QCheck.Gen.map nonneg_consts (math_gen 4)))
    (fun e ->
      match Math.of_string (Math.to_string e) with
      | Error msg -> QCheck.Test.fail_report msg
      | Ok e' -> Math.equal e e')

(* Signed and high-precision constants. The grammar has no signed
   literals, so a negative [Const c] prints as "(-c)" and reads back as
   [Neg (Const (-. c))] — bit-identical value, different constructor.
   This normaliser states that documented normal form; the property
   checks the printer's shortest-round-trip decimals and its
   parenthesisation of negative constants against it. *)
let rec signed_normal_form : Math.t -> Math.t = function
  | Math.Const c when Float.sign_bit c -> Math.Neg (Math.Const (-.c))
  | Math.Const c -> Math.Const c
  | Math.Ident v -> Math.Ident v
  | Math.Neg a -> Math.Neg (signed_normal_form a)
  | Math.Add (a, b) -> Math.Add (signed_normal_form a, signed_normal_form b)
  | Math.Sub (a, b) -> Math.Sub (signed_normal_form a, signed_normal_form b)
  | Math.Mul (a, b) -> Math.Mul (signed_normal_form a, signed_normal_form b)
  | Math.Div (a, b) -> Math.Div (signed_normal_form a, signed_normal_form b)
  | Math.Pow (a, b) -> Math.Pow (signed_normal_form a, signed_normal_form b)
  | Math.Min (a, b) -> Math.Min (signed_normal_form a, signed_normal_form b)
  | Math.Max (a, b) -> Math.Max (signed_normal_form a, signed_normal_form b)
  | Math.Exp a -> Math.Exp (signed_normal_form a)
  | Math.Ln a -> Math.Ln (signed_normal_form a)

let rec precise_math_gen depth =
  let open QCheck.Gen in
  let const =
    map3
      (fun m d e -> Math.Const (float_of_int m /. float_of_int d *. (10. ** float_of_int e)))
      (int_range (-99) 99)
      (int_range 1 7)
      (int_range (-3) 3)
  in
  let ident = map (fun v -> Math.Ident v) (oneofl [ "x"; "y"; "k1" ]) in
  if depth = 0 then oneof [ const; ident ]
  else begin
    let sub = precise_math_gen (depth - 1) in
    frequency
      [
        (2, const);
        (2, ident);
        (1, map (fun a -> Math.Neg a) sub);
        (1, map2 (fun a b -> Math.Add (a, b)) sub sub);
        (1, map2 (fun a b -> Math.Sub (a, b)) sub sub);
        (1, map2 (fun a b -> Math.Mul (a, b)) sub sub);
        (1, map2 (fun a b -> Math.Div (a, b)) sub sub);
        (1, map2 (fun a b -> Math.Pow (a, b)) sub sub);
        (1, map2 (fun a b -> Math.Min (a, b)) sub sub);
        (1, map2 (fun a b -> Math.Max (a, b)) sub sub);
        (1, map (fun a -> Math.Exp a) sub);
        (1, map (fun a -> Math.Ln a) sub);
      ]
  end

let prop_math_signed_roundtrip =
  QCheck.Test.make
    ~name:"signed and fractional constants survive the text round trip"
    ~count:300
    (QCheck.make ~print:Math.to_string (precise_math_gen 4))
    (fun e ->
      match Math.of_string (Math.to_string e) with
      | Error msg -> QCheck.Test.fail_report msg
      | Ok e' -> Math.equal (signed_normal_form e) e')

let test_math_signed_printing () =
  (* a negative constant parenthesises like Neg, so (-3)^x survives and
     is not misread as -(3^x) *)
  checks "negative base" "(-3)^x"
    (Math.to_string (Math.Pow (Math.Const (-3.), Math.var "x")));
  (match Math.of_string "(-3)^x" with
  | Ok (Math.Pow (Math.Neg (Math.Const 3.), Math.Ident "x")) -> ()
  | Ok e -> Alcotest.failf "misparsed as %s" (Math.to_string e)
  | Error msg -> Alcotest.fail msg);
  (* shortest-round-trip decimals: awkward values come back bit for bit *)
  List.iter
    (fun c ->
      match Math.of_string (Math.to_string (Math.Const c)) with
      | Ok (Math.Const c') ->
          checkb
            (Printf.sprintf "%h round trips" c)
            true
            (Int64.equal (Int64.bits_of_float c) (Int64.bits_of_float c'))
      | Ok e -> Alcotest.failf "unexpected parse %s" (Math.to_string e)
      | Error msg -> Alcotest.fail msg)
    [ 0.1; 1. /. 3.; 1.2345678901234567e-300; 6.02214076e23 ]

let prop_mathml_roundtrip =
  QCheck.Test.make ~name:"MathML round trip" ~count:300 math_arb (fun m ->
      match Sbml.math_of_xml (Sbml.math_to_xml m) with
      | Ok m' -> Math.equal m m'
      | Error e -> QCheck.Test.fail_report e)

let prop_mathml_string_roundtrip =
  QCheck.Test.make ~name:"MathML survives XML printing" ~count:100 math_arb
    (fun m ->
      let s = Xml.to_string (Sbml.math_to_xml m) in
      match Xml.parse s with
      | Error e -> QCheck.Test.fail_report e
      | Ok xml -> (
          match Sbml.math_of_xml xml with
          | Ok m' -> Math.equal m m'
          | Error e -> QCheck.Test.fail_report e))

(* Random XML trees in the normal form the parser preserves: no
   whitespace-only text, no adjacent text nodes, trimmed text. *)
let xml_gen =
  let open QCheck.Gen in
  let name = oneofl [ "node"; "a"; "list-of"; "x1" ] in
  let attr =
    pair (oneofl [ "id"; "value"; "k" ]) (oneofl [ "v"; "a&b"; "<q>"; "x y" ])
  in
  let text = oneofl [ "hello"; "a<b"; "1.5"; "x&y" ] in
  fix
    (fun self depth ->
      if depth = 0 then
        map2 (fun t attrs -> Xml.element ~attrs t []) name (list_size (int_bound 2) attr)
      else begin
        let child =
          frequency [ (3, self (depth - 1)); (1, map Xml.text text) ]
        in
        (* avoid adjacent text nodes: interleave at most one text child *)
        map3
          (fun t attrs children ->
            let rec dedup_text = function
              | Xml.Text _ :: Xml.Text _ :: rest -> dedup_text (Xml.Text "t" :: rest)
              | c :: rest -> c :: dedup_text rest
              | [] -> []
            in
            Xml.element ~attrs t (dedup_text children))
          name
          (list_size (int_bound 2) attr)
          (list_size (int_bound 3) child)
      end)
    3

let rec xml_equal a b =
  match (a, b) with
  | Xml.Text s, Xml.Text t -> String.trim s = String.trim t
  | Xml.Element (ta, aa, ca), Xml.Element (tb, ab, cb) ->
      ta = tb && aa = ab
      && List.length ca = List.length cb
      && List.for_all2 xml_equal ca cb
  | (Xml.Text _ | Xml.Element _), _ -> false

let prop_xml_roundtrip =
  QCheck.Test.make ~name:"XML printer output re-parses identically"
    ~count:300
    (QCheck.make ~print:(Xml.to_string ~decl:false) xml_gen)
    (fun doc ->
      match Xml.parse (Xml.to_string doc) with
      | Error e -> QCheck.Test.fail_report e
      | Ok doc' -> xml_equal doc doc')

let test_sbml_roundtrip () =
  let m = valid_model () in
  match Sbml.of_string (Sbml.to_string m) with
  | Error e -> Alcotest.fail e
  | Ok m' ->
      checks "id" m.Model.m_id m'.Model.m_id;
      Alcotest.(check int) "species" 2 (List.length m'.Model.m_species);
      Alcotest.(check int) "params" 2 (List.length m'.Model.m_parameters);
      Alcotest.(check int) "reactions" 2 (List.length m'.Model.m_reactions);
      let s = Option.get (Model.find_species m' "I") in
      checkb "boundary preserved" true s.Model.s_boundary;
      let r = Option.get (Model.find_reaction m' "prod") in
      Alcotest.(check (list string)) "modifiers" [ "I" ] r.Model.r_modifiers;
      checkb "rate preserved" true
        (Math.equal r.Model.r_rate Math.(var "k" / (num 1. + var "I")))

let test_sbml_real_circuit_roundtrip () =
  let m = Glc_gates.Circuit.model (Glc_gates.Cello.circuit_0x0B ()) in
  match Sbml.of_string (Sbml.to_string m) with
  | Error e -> Alcotest.fail e
  | Ok m' ->
      Alcotest.(check int) "species count"
        (List.length m.Model.m_species)
        (List.length m'.Model.m_species);
      Alcotest.(check int) "reaction count"
        (List.length m.Model.m_reactions)
        (List.length m'.Model.m_reactions)

let test_sbml_errors () =
  let fails s = match Sbml.of_string s with Ok _ -> false | Error _ -> true in
  checkb "not sbml" true (fails "<notsbml/>");
  checkb "no model" true (fails "<sbml level=\"3\"/>");
  checkb "reaction without kinetic law" true
    (fails
       "<sbml><model id=\"m\"><listOfSpecies><species id=\"P\" \
        initialAmount=\"0\"/></listOfSpecies><listOfReactions><reaction \
        id=\"r\"><listOfProducts><speciesReference \
        species=\"P\"/></listOfProducts></reaction></listOfReactions></model></sbml>");
  checkb "undeclared species in reaction" true
    (fails
       "<sbml><model id=\"m\"><listOfReactions><reaction \
        id=\"r\"><listOfProducts><speciesReference \
        species=\"X\"/></listOfProducts><kineticLaw><math><cn>1</cn></math>\
        </kineticLaw></reaction></listOfReactions></model></sbml>")

let test_sbml_files () =
  let m = valid_model () in
  let path = Filename.temp_file "glc_test" ".sbml.xml" in
  Sbml.write_file path m;
  (match Sbml.read_file path with
  | Ok m' -> checks "file round trip" m.Model.m_id m'.Model.m_id
  | Error e -> Alcotest.fail e);
  Sys.remove path

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "glc_model"
    [
      ( "math",
        [
          Alcotest.test_case "eval" `Quick test_math_eval;
          Alcotest.test_case "idents" `Quick test_math_idents;
          Alcotest.test_case "subst" `Quick test_math_subst;
          Alcotest.test_case "hill limits" `Quick test_hill_limits;
          Alcotest.test_case "pretty printing" `Quick test_math_pp;
          Alcotest.test_case "parser" `Quick test_math_parser;
          Alcotest.test_case "equal" `Quick test_math_equal;
          Alcotest.test_case "signed and precise constants" `Quick
            test_math_signed_printing;
        ] );
      ( "xml",
        [
          Alcotest.test_case "round trip" `Quick test_xml_roundtrip;
          Alcotest.test_case "comments and PIs" `Quick test_xml_skips_misc;
          Alcotest.test_case "entities" `Quick test_xml_entities;
          Alcotest.test_case "errors" `Quick test_xml_errors;
          Alcotest.test_case "childs" `Quick test_xml_childs;
        ] );
      ( "model",
        [
          Alcotest.test_case "valid model" `Quick test_model_valid;
          Alcotest.test_case "validation" `Quick test_model_validation;
          Alcotest.test_case "validate_issues subjects" `Quick
            test_model_validate_issues;
          Alcotest.test_case "with_initial" `Quick test_model_with_initial;
          Alcotest.test_case "map_rates" `Quick test_model_map_rates;
        ] );
      ( "sbml",
        [
          Alcotest.test_case "model round trip" `Quick test_sbml_roundtrip;
          Alcotest.test_case "real circuit round trip" `Quick
            test_sbml_real_circuit_roundtrip;
          Alcotest.test_case "errors" `Quick test_sbml_errors;
          Alcotest.test_case "files" `Quick test_sbml_files;
        ] );
      ( "properties",
        qc
          [
            prop_mathml_roundtrip;
            prop_mathml_string_roundtrip;
            prop_math_parse_roundtrip;
            prop_math_signed_roundtrip;
            prop_xml_roundtrip;
          ] );
    ]
