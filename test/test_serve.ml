(* Tests for lib/serve: HTTP framing from strings, the bounded priority
   scheduler, admission backpressure arithmetic, submission-record
   round-trips, and in-process end-to-end runs of the daemon — submit /
   dedup / lint-reject / cancel / restart-resume — over real unix
   sockets, including the headline contract: a job's result document is
   byte-identical whether it was computed by the daemon (in any life)
   or by a campaign drain. *)

module W = Glc_serve.Protocol_wire
module Scheduler = Glc_serve.Scheduler
module Jobstate = Glc_serve.Jobstate
module Admission = Glc_serve.Admission
module Server = Glc_serve.Server
module Client = Glc_serve.Client
module Grid = Glc_campaign.Grid
module Store = Glc_campaign.Store
module Runner = Glc_campaign.Runner
module Pool = Glc_engine.Pool
module Cache = Glc_engine.Cache
module Metrics = Glc_obs.Metrics
module Json = Glc_core.Report.Json

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* ---- scratch state ---- *)

let fresh =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let base =
      Printf.sprintf "glc-serve-%d-%d" (Unix.getpid ()) !counter
    in
    ( Filename.concat (Filename.get_temp_dir_name ()) base,
      Filename.concat (Filename.get_temp_dir_name ()) (base ^ ".sock") )

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path

let with_state f =
  let dir, sock = fresh () in
  Fun.protect
    ~finally:(fun () ->
      rm_rf dir;
      try Sys.remove sock with Sys_error _ -> ())
    (fun () -> f ~dir ~sock)

(* A daemon running in its own thread for the duration of [f]. *)
let with_server ?(start_worker = true) ~dir ~sock f =
  let metrics = Metrics.create () in
  let cfg =
    Server.config ~socket_path:sock ~state_dir:dir ~pool_jobs:2
      ~total_time:2_000. ~hold_time:1_000. ~start_worker ~metrics ()
  in
  let server = Result.get_ok (Server.create cfg) in
  let thread = Thread.create Server.run server in
  Fun.protect
    ~finally:(fun () ->
      Server.stop server;
      Thread.join thread)
    (fun () -> f server metrics (Client.connect ~socket:sock))

(* The bytes an identical campaign cell stores — the byte-identity
   reference. Protocol parameters must match with_server's. *)
let reference_document job =
  let spec =
    Jobstate.spec_for ~seed:42 ~total_time:2_000. ~hold_time:1_000. job
  in
  Pool.with_pool ~jobs:2 (fun pool ->
      let cache = Cache.create () in
      Runner.run_job ~pool ~cache spec job)

let not_job () =
  Result.get_ok (Jobstate.job ~circuit:"genetic_NOT" ~replicates:2 ())

(* ---- protocol_wire ---- *)

let read_str s = W.read_request (W.string_reader s)

let test_wire_request_roundtrip () =
  let req =
    {
      W.meth = W.POST;
      target = "/v1/jobs";
      headers = [ ("content-type", "application/json") ];
      body = "{\"circuit\":\"x\"}";
    }
  in
  match read_str (W.render_request req) with
  | Ok (Some r) ->
      checkb "method" true (r.W.meth = W.POST);
      checks "target" "/v1/jobs" r.W.target;
      checks "body" req.W.body r.W.body;
      checkb "keep alive by default" true (W.keep_alive r)
  | Ok None -> Alcotest.fail "unexpected EOF"
  | Error m -> Alcotest.fail m

let test_wire_response_roundtrip () =
  let resp = W.response 202 "{\"ok\":true}" in
  match W.read_response (W.string_reader (W.render_response resp)) with
  | Error m -> Alcotest.fail m
  | Ok r ->
      checki "status" 202 r.W.status;
      checks "body" "{\"ok\":true}" r.W.resp_body;
      checkb "content-type carried" true
        (W.header r.W.resp_headers "content-type" <> None)

let test_wire_rejects () =
  let err s =
    match read_str s with Error _ -> true | Ok _ -> false
  in
  checkb "clean EOF is Ok None" true (read_str "" = Ok None);
  checkb "unsupported method" true (err "PUT /x HTTP/1.1\r\n\r\n");
  checkb "chunked rejected" true
    (err "POST /x HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n");
  checkb "POST without length" true (err "POST /x HTTP/1.1\r\n\r\n");
  checkb "oversized body" true
    (err
       (Printf.sprintf "POST /x HTTP/1.1\r\ncontent-length: %d\r\n\r\n"
          (W.max_body_bytes + 1)));
  checkb "garbage request line" true (err "not http\r\n\r\n");
  checkb "truncated head" true (err "GET /x HTTP/1.1\r\n")

let test_wire_connection_close () =
  match
    read_str "GET /health HTTP/1.1\r\nConnection: close\r\n\r\n"
  with
  | Ok (Some r) -> checkb "close honoured" false (W.keep_alive r)
  | _ -> Alcotest.fail "parse failed"

let test_wire_paths () =
  checks "query stripped" "/v1/jobs" (W.path_of_target "/v1/jobs?x=1");
  Alcotest.(check (list string))
    "segments" [ "v1"; "jobs"; "abc" ]
    (W.split_path "/v1/jobs/abc")

(* ---- scheduler ---- *)

let test_scheduler_priority_fifo () =
  let q = Scheduler.create ~capacity:8 in
  ignore (Scheduler.push q ~priority:5 "a");
  ignore (Scheduler.push q ~priority:9 "urgent");
  ignore (Scheduler.push q ~priority:5 "b");
  ignore (Scheduler.push q ~priority:1 "lazy");
  let pops = List.init 4 (fun _ -> snd (Option.get (Scheduler.pop q))) in
  Alcotest.(check (list string))
    "priority order, FIFO within a level"
    [ "urgent"; "a"; "b"; "lazy" ] pops;
  checkb "drained" true (Scheduler.is_empty q)

let test_scheduler_backpressure () =
  let q = Scheduler.create ~capacity:2 in
  checkb "first fits" true (Scheduler.push q ~priority:5 "a" <> `Full);
  checkb "second fits" true (Scheduler.push q ~priority:5 "b" <> `Full);
  checkb "third rejected" true (Scheduler.push q ~priority:9 "c" = `Full);
  checkb "full flag" true (Scheduler.is_full q);
  ignore (Scheduler.pop q);
  checkb "slot freed" true (Scheduler.push q ~priority:0 "d" <> `Full)

let test_scheduler_seq_resume () =
  let q = Scheduler.create ~capacity:8 in
  (* a restart re-enqueues persisted seqs; fresh pushes continue after *)
  ignore (Scheduler.push_seq q ~priority:5 ~seq:7 "old");
  checki "counter advanced past resumed seq" 8 (Scheduler.next_seq q);
  (match Scheduler.push q ~priority:5 "new" with
  | `Queued seq -> checki "fresh push continues" 8 seq
  | `Full -> Alcotest.fail "queue full");
  checks "resumed pops first (same priority, lower seq)" "old"
    (snd (Option.get (Scheduler.pop q)))

let test_scheduler_remove () =
  let q = Scheduler.create ~capacity:8 in
  ignore (Scheduler.push q ~priority:5 "keep");
  ignore (Scheduler.push q ~priority:5 "drop");
  checkb "removes the match" true
    (Scheduler.remove q (String.equal "drop") = Some "drop");
  checkb "no rematch" true (Scheduler.remove q (String.equal "drop") = None);
  checki "one left" 1 (Scheduler.length q)

(* ---- admission arithmetic and records ---- *)

let test_retry_after () =
  (* deterministic: pure function of depth and the observed average *)
  checki "empty queue, no data yet" 1
    (Admission.retry_after ~queue_depth:0 ~avg_job_seconds:0.);
  checki "ceil of depth x avg" 8
    (Admission.retry_after ~queue_depth:5 ~avg_job_seconds:1.5);
  checki "clamped above" 600
    (Admission.retry_after ~queue_depth:1000 ~avg_job_seconds:10.);
  checki "clamped below" 1
    (Admission.retry_after ~queue_depth:1 ~avg_job_seconds:0.001)

let test_submission_roundtrip () =
  let job =
    Result.get_ok
      (Jobstate.job ~circuit:"genetic_NAND" ~threshold:20. ~fov_ud:0.3
         ~input_high:25. ~replicates:4 ())
  in
  let entry = Jobstate.make ~job ~priority:7 ~seq:3 ~now:123. in
  let job', priority, seq =
    Result.get_ok (Jobstate.submission_of_json (Jobstate.submission_json entry))
  in
  checki "priority" 7 priority;
  checki "seq" 3 seq;
  checks "same job id" (Grid.job_id job) (Grid.job_id job');
  checkb "rejects junk" true
    (Result.is_error (Jobstate.submission_of_json "{\"priority\":1}"))

let test_job_validation () =
  checkb "unknown circuits resolve lazily (id is content-derived)" true
    (Result.is_ok (Jobstate.job ~circuit:"0x1C" ()));
  checkb "bad replicates rejected" true
    (Result.is_error (Jobstate.job ~circuit:"genetic_NOT" ~replicates:0 ()));
  checkb "bad threshold rejected" true
    (Result.is_error
       (Jobstate.job ~circuit:"genetic_NOT" ~threshold:(-1.) ()))

(* ---- end-to-end over the socket ---- *)

let submit_ok client =
  match Client.submit ~replicates:2 client ~circuit:"genetic_NOT" with
  | Error m -> Alcotest.fail m
  | Ok resp -> resp

let test_e2e_submit_result_dedup () =
  with_state (fun ~dir ~sock ->
      with_server ~dir ~sock (fun _server metrics client ->
          (* health answers before any job *)
          let h = Result.get_ok (Client.health client) in
          checki "health" 200 h.W.status;
          (* first submission queues *)
          let r1 = submit_ok client in
          checki "accepted" 202 r1.W.status;
          checkb "not a dedup" true (contains r1.W.resp_body "\"dedup\":false");
          let id = Option.get (Client.job_id_of_response r1) in
          (* the result document equals the campaign-path bytes *)
          let resp =
            Result.get_ok (Client.result ~wait:true ~timeout_s:120. client ~id)
          in
          checki "result ready" 200 resp.W.status;
          checks "byte-identical to the campaign path"
            (reference_document (not_job ()))
            resp.W.resp_body;
          (* duplicate submission: instant, no new work *)
          let r2 = submit_ok client in
          checki "dedup answers 200" 200 r2.W.status;
          checkb "flagged as dedup" true (contains r2.W.resp_body "\"dedup\":true");
          (* metrics surface the story *)
          let text = Result.get_ok (Client.metrics client) in
          checkb "completed counted" true
            (contains text "serve_jobs_completed 1");
          checkb "dedup counted" true (contains text "serve_dedup_hits 1");
          checkb "nothing failed" true (contains text "serve_jobs_failed 0"
                                        || not (contains text "serve_jobs_failed"));
          ignore metrics))

let test_e2e_lint_reject () =
  with_state (fun ~dir ~sock ->
      with_server ~dir ~sock (fun _server _metrics client ->
          (* logic-1 inputs below the threshold: GLC011, an error *)
          match
            Client.submit ~input_high:1.0 ~replicates:2 client
              ~circuit:"genetic_NOT"
          with
          | Error m -> Alcotest.fail m
          | Ok resp ->
              checki "rejected" 422 resp.W.status;
              checkb "carries the GLC code" true
                (contains resp.W.resp_body "GLC011");
              (* nothing was queued or persisted *)
              let l = Result.get_ok (Client.list_jobs client) in
              checkb "no job registered" true
                (contains l.W.resp_body "\"jobs\":[]")))

let test_e2e_invalid_and_routes () =
  with_state (fun ~dir ~sock ->
      with_server ~dir ~sock (fun _server _metrics client ->
          (match Client.submit ~replicates:0 client ~circuit:"genetic_NOT" with
          | Ok resp -> checki "invalid params are 400" 400 resp.W.status
          | Error m -> Alcotest.fail m);
          (match Client.status client ~id:"nope" with
          | Ok resp -> checki "unknown id is 404" 404 resp.W.status
          | Error m -> Alcotest.fail m);
          match
            Client.request client
              { W.meth = W.GET; target = "/nope"; headers = []; body = "" }
          with
          | Ok resp -> checki "unknown route is 404" 404 resp.W.status
          | Error m -> Alcotest.fail m))

let test_e2e_cancel () =
  with_state (fun ~dir ~sock ->
      (* no worker: the job stays queued, so cancel is deterministic *)
      with_server ~start_worker:false ~dir ~sock
        (fun _server _metrics client ->
          let r = submit_ok client in
          checki "queued" 202 r.W.status;
          let id = Option.get (Client.job_id_of_response r) in
          (match Client.result client ~id with
          | Ok resp -> checki "not done yet" 409 resp.W.status
          | Error m -> Alcotest.fail m);
          (match Client.cancel client ~id with
          | Ok resp ->
              checki "cancelled" 200 resp.W.status;
              checkb "status says so" true
                (contains resp.W.resp_body "\"status\":\"cancelled\"")
          | Error m -> Alcotest.fail m);
          (* cancelling again conflicts; the slot is gone *)
          match Client.cancel client ~id with
          | Ok resp -> checki "second cancel conflicts" 409 resp.W.status
          | Error m -> Alcotest.fail m))

let test_e2e_restart_resume_identical () =
  with_state (fun ~dir ~sock ->
      (* life 1: accept the job but never run it (no worker) — the
         simulated kill leaves only the persisted admission record *)
      let id =
        with_server ~start_worker:false ~dir ~sock
          (fun _server _metrics client ->
            let r = submit_ok client in
            checki "accepted" 202 r.W.status;
            Option.get (Client.job_id_of_response r))
      in
      (* life 2: a fresh daemon on the same state must re-discover,
         run, and store the job without a client in the loop *)
      with_server ~dir ~sock (fun _server metrics client ->
          let resp =
            Result.get_ok (Client.result ~wait:true ~timeout_s:120. client ~id)
          in
          checki "resumed job completed" 200 resp.W.status;
          checks "byte-identical across the restart"
            (reference_document (not_job ()))
            resp.W.resp_body;
          checki "resume counted" 1
            (Metrics.Counter.value
               (Metrics.counter metrics "serve.jobs_resumed"));
          ignore client))

let test_e2e_lock_contention () =
  with_state (fun ~dir ~sock ->
      with_server ~dir ~sock (fun _server _metrics _client ->
          let cfg2 =
            Server.config ~socket_path:(sock ^ "2") ~state_dir:dir ()
          in
          match Server.create cfg2 with
          | Ok _ -> Alcotest.fail "second daemon must not start"
          | Error m -> checkb "error mentions the lock" true (contains m "lock")))

let test_e2e_result_survives_restart () =
  with_state (fun ~dir ~sock ->
      let id =
        with_server ~dir ~sock (fun _server _metrics client ->
          let r = submit_ok client in
          let id = Option.get (Client.job_id_of_response r) in
          let resp =
            Result.get_ok (Client.result ~wait:true ~timeout_s:120. client ~id)
          in
          checki "done in life 1" 200 resp.W.status;
          id)
      in
      with_server ~dir ~sock (fun _server _metrics client ->
          (* no registry entry in life 2, but the store remembers *)
          let resp = Result.get_ok (Client.result client ~id) in
          checki "served from the store" 200 resp.W.status;
          checks "same bytes" (reference_document (not_job ()))
            resp.W.resp_body))

let () =
  Alcotest.run "glc_serve"
    [
      ( "wire",
        [
          Alcotest.test_case "request roundtrip" `Quick
            test_wire_request_roundtrip;
          Alcotest.test_case "response roundtrip" `Quick
            test_wire_response_roundtrip;
          Alcotest.test_case "rejects malformed" `Quick test_wire_rejects;
          Alcotest.test_case "connection close" `Quick
            test_wire_connection_close;
          Alcotest.test_case "path helpers" `Quick test_wire_paths;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "priority + FIFO" `Quick
            test_scheduler_priority_fifo;
          Alcotest.test_case "bounded backpressure" `Quick
            test_scheduler_backpressure;
          Alcotest.test_case "seq resume" `Quick test_scheduler_seq_resume;
          Alcotest.test_case "remove (cancel path)" `Quick
            test_scheduler_remove;
        ] );
      ( "admission",
        [
          Alcotest.test_case "retry-after arithmetic" `Quick
            test_retry_after;
          Alcotest.test_case "submission record roundtrip" `Quick
            test_submission_roundtrip;
          Alcotest.test_case "job validation" `Quick test_job_validation;
        ] );
      ( "e2e",
        [
          Alcotest.test_case "submit, result, dedup" `Slow
            test_e2e_submit_result_dedup;
          Alcotest.test_case "lint rejection" `Quick test_e2e_lint_reject;
          Alcotest.test_case "invalid input and routes" `Quick
            test_e2e_invalid_and_routes;
          Alcotest.test_case "cancel a queued job" `Quick test_e2e_cancel;
          Alcotest.test_case "restart resumes byte-identically" `Slow
            test_e2e_restart_resume_identical;
          Alcotest.test_case "state dir is single-daemon" `Quick
            test_e2e_lock_contention;
          Alcotest.test_case "results outlive restarts" `Slow
            test_e2e_result_survives_restart;
        ] );
    ]
