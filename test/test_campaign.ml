(* Tests for glc_campaign: the declarative grid, the JSON reader it
   relies on, crash-safety of the store and journal, failure capture in
   the runner, and the headline contract — a killed-and-resumed
   campaign produces a byte-identical report. *)

module Json = Glc_core.Report.Json
module Grid = Glc_campaign.Grid
module Store = Glc_campaign.Store
module Journal = Glc_campaign.Journal
module Runner = Glc_campaign.Runner
module Resume = Glc_campaign.Resume

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

(* ---- scratch directories ---- *)

let fresh_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "glc-campaign-test-%d-%d" (Unix.getpid ()) !counter)

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path

let with_dir f =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let write_file path content =
  let oc = open_out_bin path in
  output_string oc content;
  close_out oc

(* ---- the JSON reader (Report.Json.parse) ---- *)

let test_json_parse_values () =
  let ok s = Result.get_ok (Json.parse s) in
  checkb "true" true (Option.get (Json.to_bool (ok "true")));
  checkb "null" true (ok " null " = Json.Null);
  checki "int" 42 (Option.get (Json.to_int (ok "42")));
  Alcotest.check (Alcotest.float 0.) "negative exponent" (-1.5e3)
    (Option.get (Json.to_number (ok "-1.5e3")));
  checks "string escapes" "a\"b\\c\n\t/"
    (Option.get (Json.to_str (ok {|"a\"b\\c\n\t\/"|})));
  checks "unicode escape" "\xe2\x82\xac"
    (Option.get (Json.to_str (ok {|"€"|})));
  checks "surrogate pair" "\xf0\x9d\x84\x9e"
    (Option.get (Json.to_str (ok {|"𝄞"|})));
  checki "array" 3
    (List.length (Option.get (Json.to_list (ok "[1, 2, 3]"))));
  let obj = ok {|{"a": 1, "b": {"c": [true]}}|} in
  checki "nested member" 1
    (Option.get (Option.bind (Json.member obj "a") Json.to_int));
  checkb "deep member" true
    (Option.get
       (Option.bind
          (Option.bind
             (Option.bind (Json.member obj "b") (fun b ->
                  Json.member b "c"))
             (fun l -> Option.map List.hd (Json.to_list l)))
          Json.to_bool))

let test_json_parse_rejects () =
  let bad s = Result.is_error (Json.parse s) in
  checkb "empty" true (bad "");
  checkb "truncated object" true (bad {|{"a": 1|});
  checkb "truncated string" true (bad {|"abc|});
  checkb "trailing garbage" true (bad "{} x");
  checkb "bare word" true (bad "nope");
  checkb "lone minus" true (bad "-")

let test_json_float_roundtrip () =
  (* the determinism contract: parsing a Json.float rendering and
     re-rendering it reproduces the bytes *)
  List.iter
    (fun f ->
      let printed = Json.float f in
      let reparsed =
        Option.get (Json.to_number (Result.get_ok (Json.parse printed)))
      in
      checks
        (Printf.sprintf "roundtrip %s" printed)
        printed (Json.float reparsed))
    [ 0.; 1.; -1.; 0.1; 15.; 97.34; 1e-7; 1.7976931348623157e308; 3.14 ]

(* ---- grid ---- *)

let two_job_grid () =
  Grid.make ~replicate_counts:[ 2; 3 ] [ "genetic_NOT" ]

let quick_spec ?(seed = 11) () =
  Grid.spec ~seed ~total_time:2_000. ~hold_time:1_000. (two_job_grid ())

let test_grid_expand () =
  let grid =
    Grid.make ~thresholds:[ 10.; 15. ] ~replicate_counts:[ 2 ]
      [ "genetic_NOT"; "genetic_AND" ]
  in
  let jobs = Grid.expand grid in
  checki "size" 4 (Grid.size grid);
  checki "expand matches size" 4 (List.length jobs);
  (* circuits outermost, thresholds inner *)
  checks "first job circuit" "genetic_NOT"
    (List.hd jobs).Grid.j_circuit;
  checkb "circuit order" true
    (List.map (fun j -> j.Grid.j_circuit) jobs
    = [ "genetic_NOT"; "genetic_NOT"; "genetic_AND"; "genetic_AND" ]);
  let ids = List.map Grid.job_id jobs in
  checki "ids distinct" 4 (List.length (List.sort_uniq compare ids));
  (* position-independence: the same parameters give the same id in a
     differently shaped grid *)
  let solo =
    Grid.expand
      (Grid.make ~thresholds:[ 15. ] ~replicate_counts:[ 2 ]
         [ "genetic_AND" ])
  in
  checks "content-derived id" (Grid.job_id (List.hd solo))
    (List.nth ids 3)

let test_grid_seeds () =
  let jobs = Grid.expand (two_job_grid ()) in
  let seeds = List.map (Grid.job_seed ~seed:11) jobs in
  checki "distinct per job" 2 (List.length (List.sort_uniq compare seeds));
  checkb "root seed matters" true
    (Grid.job_seed ~seed:11 (List.hd jobs)
    <> Grid.job_seed ~seed:12 (List.hd jobs));
  checkb "non-negative" true (List.for_all (fun s -> s >= 0) seeds)

let test_grid_validation () =
  let raises f =
    match f () with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  checkb "empty circuits" true (raises (fun () -> Grid.make []));
  checkb "duplicate axis" true
    (raises (fun () -> Grid.make ~thresholds:[ 15.; 15. ] [ "c" ]));
  checkb "non-positive threshold" true
    (raises (fun () -> Grid.make ~thresholds:[ 0. ] [ "c" ]));
  checkb "replicates < 1" true
    (raises (fun () -> Grid.make ~replicate_counts:[ 0 ] [ "c" ]));
  checkb "non-positive time" true
    (raises (fun () -> Grid.spec ~total_time:0. (Grid.make [ "c" ])))

let test_manifest_roundtrip () =
  let spec = quick_spec () in
  let json = Grid.spec_to_json spec in
  let spec' = Result.get_ok (Grid.spec_of_json json) in
  checks "roundtrip bytes" json (Grid.spec_to_json spec');
  checki "seed survives" spec.Grid.seed spec'.Grid.seed;
  checkb "unknown version rejected" true
    (Result.is_error
       (Grid.spec_of_json
          {|{"version":99,"seed":1,"total_time":10,"hold_time":1,"grid":{}}|}));
  checkb "garbage rejected" true
    (Result.is_error (Grid.spec_of_json "not json"))

(* ---- store ---- *)

let test_store_roundtrip () =
  with_dir (fun dir ->
      let store = Result.get_ok (Store.create ~dir "{\"version\":1}") in
      checkb "create twice refused" true
        (Result.is_error (Store.create ~dir "{}"));
      checkb "absent" true (Store.get store ~id:"a" = None);
      Store.put store ~id:"a" {|{"x": 1}|};
      checks "roundtrip" {|{"x": 1}|}
        (Option.get (Store.get store ~id:"a"));
      Store.put store ~id:"a" {|{"x": 2}|};
      checks "overwrite" {|{"x": 2}|}
        (Option.get (Store.get store ~id:"a"));
      let store', manifest = Result.get_ok (Store.load ~dir) in
      checks "manifest preserved" "{\"version\":1}" manifest;
      checkb "reload sees results" true (Store.mem store' ~id:"a"))

let test_store_crash_safety () =
  with_dir (fun dir ->
      let store = Result.get_ok (Store.create ~dir "{}") in
      Store.put store ~id:"good" {|{"ok": true}|};
      let results = Filename.concat dir "results" in
      (* a torn write: truncated JSON must read as absent, not corrupt *)
      write_file (Filename.concat results "torn.json") {|{"ok": tr|};
      (* a leftover temp file from a killed writer must be invisible *)
      write_file
        (Filename.concat results "tmpjob.json.12345.tmp")
        {|{"ok": true}|};
      checkb "torn result reads as absent" true
        (Store.get store ~id:"torn" = None);
      checkb "temp leftovers invisible" true
        (Store.get store ~id:"tmpjob" = None);
      checkb "completed lists only parseable results" true
        (Store.completed store = [ "good" ]))

(* ---- journal ---- *)

let test_journal_roundtrip () =
  with_dir (fun dir ->
      let j = Journal.open_ ~dir in
      Journal.append j (Journal.Scheduled "a");
      Journal.append j (Journal.Started "a");
      Journal.append j (Journal.Failed ("a", "boom: \"quoted\"\nline"));
      Journal.append j (Journal.Done "a");
      Journal.close j;
      Journal.close j;
      (* idempotent *)
      let events = Journal.read ~dir in
      checki "all records back" 4 (List.length events);
      checkb "order and payload preserved" true
        (events
        = [
            Journal.Scheduled "a"; Journal.Started "a";
            Journal.Failed ("a", "boom: \"quoted\"\nline");
            Journal.Done "a";
          ]);
      (* append after close must raise, not write through a dead fd *)
      checkb "append after close raises" true
        (match Journal.append j (Journal.Done "b") with
        | exception Invalid_argument _ -> true
        | () -> false))

let test_journal_partial_tail () =
  with_dir (fun dir ->
      let j = Journal.open_ ~dir in
      Journal.append j (Journal.Done "a");
      Journal.close j;
      (* simulate a crash mid-append: raw partial record, no newline *)
      let path = Filename.concat dir "journal.jsonl" in
      let oc =
        open_out_gen [ Open_append; Open_binary ] 0o644 path
      in
      output_string oc {|{"event":"done","job":"b|};
      close_out oc;
      let events = Journal.read ~dir in
      checki "partial trailing line dropped" 1 (List.length events);
      checkb "acknowledged record intact" true
        (events = [ Journal.Done "a" ]);
      (* a later append lands on its own line *)
      let j = Journal.open_ ~dir in
      Journal.append j (Journal.Done "c");
      Journal.close j;
      checkb "journal usable after crash tail" true
        (List.mem (Journal.Done "c") (Journal.read ~dir)))

(* ---- runner: failure capture ---- *)

let test_runner_captures_failures () =
  with_dir (fun dir ->
      let grid =
        Grid.make ~replicate_counts:[ 2 ]
          [ "no_such_circuit"; "genetic_NOT" ]
      in
      let spec =
        Grid.spec ~seed:11 ~total_time:2_000. ~hold_time:1_000. grid
      in
      let store =
        Result.get_ok (Store.create ~dir (Grid.spec_to_json spec))
      in
      let journal = Journal.open_ ~dir in
      let summary =
        Runner.run ~store ~journal spec (Grid.expand spec.Grid.grid)
      in
      Journal.close journal;
      checki "both attempted" 2 summary.Runner.ran;
      checki "one failed" 1 summary.Runner.failed;
      checki "one succeeded" 1 summary.Runner.succeeded;
      (* the failed job leaves no store entry, so resume re-queues it *)
      checki "only the good job stored" 1
        (List.length (Store.completed store));
      let bad_id =
        Grid.job_id (List.hd (Grid.expand spec.Grid.grid))
      in
      checkb "failure journaled with its error" true
        (List.exists
           (function
             | Journal.Failed (id, _) -> id = bad_id
             | _ -> false)
           (Journal.read ~dir));
      let st = Result.get_ok (Resume.status ~dir) in
      checki "status: failed job pending again" 1
        (List.length st.Resume.s_pending))

(* ---- the headline contract: kill + resume == uninterrupted ---- *)

let started_ids ~dir =
  List.filter_map
    (function Journal.Started id -> Some id | _ -> None)
    (Journal.read ~dir)

let test_resume_determinism () =
  with_dir (fun uninterrupted ->
      with_dir (fun killed ->
          let spec = quick_spec () in
          let manifest = Grid.spec_to_json spec in
          let jobs = Grid.expand spec.Grid.grid in
          checki "two jobs" 2 (List.length jobs);
          (* reference: an uninterrupted run of the whole campaign *)
          ignore
            (Result.get_ok (Store.create ~dir:uninterrupted manifest));
          let _, _, s0 =
            Result.get_ok (Resume.run ~dir:uninterrupted ())
          in
          checki "uninterrupted runs everything" 2 s0.Runner.succeeded;
          let ref_store, ref_spec =
            Result.get_ok (Resume.load ~dir:uninterrupted)
          in
          let reference = Store.report_json ref_store ref_spec in
          (* the same campaign, killed after one job: limit=1 plays the
             role of the kill *)
          ignore (Result.get_ok (Store.create ~dir:killed manifest));
          let _, _, s1 =
            Result.get_ok (Resume.run ~limit:1 ~dir:killed ())
          in
          checki "first run attempts one job" 1 s1.Runner.ran;
          checki "one job remains" 1 s1.Runner.remaining;
          let first_batch = started_ids ~dir:killed in
          checki "journal: one start so far" 1 (List.length first_batch);
          (* resume: must run exactly the n-k remaining jobs *)
          let _, _, s2 = Result.get_ok (Resume.run ~dir:killed ()) in
          checki "resume attempts only the missing job" 1 s2.Runner.ran;
          checki "resume completes the campaign" 0 s2.Runner.remaining;
          let all_started = started_ids ~dir:killed in
          checki "journal: two starts total" 2 (List.length all_started);
          checki "no job started twice" 2
            (List.length (List.sort_uniq compare all_started));
          (* and nothing pends on a third pass *)
          let _, _, s3 = Result.get_ok (Resume.run ~dir:killed ()) in
          checki "idempotent once complete" 0 s3.Runner.ran;
          (* the contract: byte-identical reports *)
          let store, spec' = Result.get_ok (Resume.load ~dir:killed) in
          checks "resumed report byte-identical" reference
            (Store.report_json store spec');
          (* and byte-identical per-job documents *)
          List.iter
            (fun job ->
              let id = Grid.job_id job in
              checks
                (Printf.sprintf "job %s document identical" id)
                (Option.get (Store.get ref_store ~id))
                (Option.get (Store.get store ~id)))
            jobs))

(* ---- the store lock (single-writer discipline) ---- *)

let test_lock_exclusion () =
  with_dir (fun dir ->
      Store.mkdir_p dir;
      let lock = Result.get_ok (Store.Lock.acquire ~dir) in
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
        go 0
      in
      (match Store.Lock.acquire ~dir with
      | Ok _ -> Alcotest.fail "second acquire must fail"
      | Error m ->
          checkb "error names the holder pid" true
            (contains m (string_of_int (Unix.getpid ()))));
      Store.Lock.release lock;
      Store.Lock.release lock (* idempotent *);
      let lock2 = Result.get_ok (Store.Lock.acquire ~dir) in
      Store.Lock.release lock2)

let test_lock_breaks_stale () =
  with_dir (fun dir ->
      Store.mkdir_p dir;
      (* a pid that cannot be live: max_pid defaults to 2^22 on linux,
         and 0x3FFFFFFF is far above any configurable ceiling *)
      write_file (Store.Lock.path ~dir) "1073741823\n";
      let lock = Result.get_ok (Store.Lock.acquire ~dir) in
      Store.Lock.release lock;
      (* unparseable content is also treated as stale *)
      write_file (Store.Lock.path ~dir) "not a pid";
      let lock2 = Result.get_ok (Store.Lock.acquire ~dir) in
      Store.Lock.release lock2)

let test_resume_holds_lock () =
  with_dir (fun dir ->
      let spec = quick_spec () in
      ignore (Result.get_ok (Store.create ~dir (Grid.spec_to_json spec)));
      (* a held lock must make the drain fail cleanly, not corrupt *)
      let lock = Result.get_ok (Store.Lock.acquire ~dir) in
      checkb "drain refuses a locked dir" true
        (Result.is_error (Resume.run ~dir ()));
      Store.Lock.release lock;
      let _, _, s = Result.get_ok (Resume.run ~dir ()) in
      checki "drain runs after release" 2 s.Runner.succeeded;
      checkb "lock released after drain" true
        (not (Sys.file_exists (Store.Lock.path ~dir))))

(* ---- graceful interruption (should_stop) ---- *)

let test_runner_should_stop () =
  with_dir (fun dir ->
      let spec = quick_spec () in
      ignore (Result.get_ok (Store.create ~dir (Grid.spec_to_json spec)));
      (* stop after the first job: the flag flips once a job has run *)
      let ran_one = ref false in
      let _, _, s =
        Result.get_ok
          (Resume.run
             ~should_stop:(fun () ->
               let stop = !ran_one in
               ran_one := true;
               stop)
             ~dir ())
      in
      checki "one job ran" 1 s.Runner.ran;
      checki "one job remains" 1 s.Runner.remaining;
      (* the journal is intact and a plain resume finishes the rest *)
      checkb "journal parseable" true (Journal.read ~dir <> []);
      let _, _, s2 = Result.get_ok (Resume.run ~dir ()) in
      checki "resume finishes the remainder" 1 s2.Runner.ran;
      checki "nothing remains" 0 s2.Runner.remaining)

(* ---- kill-and-inspect: SIGINT against the real CLI ---- *)

let glcv_exe = Filename.concat (Sys.getcwd ()) "../bin/glcv.exe"

let run_glcv ?(kill_after : float option) args =
  let devnull = Unix.openfile "/dev/null" [ Unix.O_RDWR ] 0 in
  let pid =
    Unix.create_process glcv_exe
      (Array.of_list (glcv_exe :: args))
      devnull devnull devnull
  in
  Unix.close devnull;
  (match kill_after with
  | None -> ()
  | Some dt ->
      ignore (Unix.select [] [] [] dt);
      (try Unix.kill pid Sys.sigint with Unix.Unix_error _ -> ()));
  match Unix.waitpid [] pid with
  | _, Unix.WEXITED code -> code
  | _, (Unix.WSIGNALED _ | Unix.WSTOPPED _) -> -1

let test_cli_sigint_campaign () =
  with_dir (fun dir ->
      (* enough replicate mass that 0.4 s lands mid-drain *)
      let args =
        [
          "campaign"; "run"; "--dir"; dir; "-c"; "genetic_NOT";
          "--replicates"; "8,10,12,14,16,18"; "--total"; "2000";
          "--hold"; "1000";
        ]
      in
      let code = run_glcv ~kill_after:0.4 args in
      if code = 130 then begin
        (* interrupted: the journal survived and is parseable, and a
           plain resume completes the campaign *)
        checkb "journal parseable after SIGINT" true
          (Journal.read ~dir <> []);
        let resume_code =
          run_glcv [ "campaign"; "resume"; "--dir"; dir ]
        in
        checki "resume completes cleanly" 0 resume_code;
        let store, spec = Result.get_ok (Resume.load ~dir) in
        checkb "every job done after resume" true
          (List.for_all
             (fun l -> l.Store.l_done)
             (Store.lines store spec))
      end
      else
        (* the machine raced ahead and finished before the signal;
           that is a pass for the exit-code contract, not a failure *)
        checki "finished before the signal" 0 code)

let test_report_counts_missing () =
  with_dir (fun dir ->
      let spec = quick_spec () in
      ignore
        (Result.get_ok (Store.create ~dir (Grid.spec_to_json spec)));
      let _, _, _ = Result.get_ok (Resume.run ~limit:1 ~dir ()) in
      let store, spec' = Result.get_ok (Resume.load ~dir) in
      let report = Result.get_ok (Json.parse (Store.report_json store spec')) in
      let totals = Option.get (Json.member report "totals") in
      let count k =
        Option.get (Option.bind (Json.member totals k) Json.to_int)
      in
      checki "jobs" 2 (count "jobs");
      checki "done" 1 (count "done");
      checki "missing" 1 (count "missing");
      let lines = Store.lines store spec' in
      checki "one line not done" 1
        (List.length (List.filter (fun l -> not l.Store.l_done) lines)))

let () =
  Alcotest.run "glc_campaign"
    [
      ( "json",
        [
          Alcotest.test_case "values" `Quick test_json_parse_values;
          Alcotest.test_case "rejects malformed" `Quick
            test_json_parse_rejects;
          Alcotest.test_case "float roundtrip" `Quick
            test_json_float_roundtrip;
        ] );
      ( "grid",
        [
          Alcotest.test_case "deterministic expansion" `Quick
            test_grid_expand;
          Alcotest.test_case "job seeds" `Quick test_grid_seeds;
          Alcotest.test_case "validation" `Quick test_grid_validation;
          Alcotest.test_case "manifest roundtrip" `Quick
            test_manifest_roundtrip;
        ] );
      ( "store",
        [
          Alcotest.test_case "roundtrip" `Quick test_store_roundtrip;
          Alcotest.test_case "crash safety" `Quick test_store_crash_safety;
        ] );
      ( "journal",
        [
          Alcotest.test_case "roundtrip" `Quick test_journal_roundtrip;
          Alcotest.test_case "partial trailing line" `Quick
            test_journal_partial_tail;
        ] );
      ( "lock",
        [
          Alcotest.test_case "mutual exclusion" `Quick test_lock_exclusion;
          Alcotest.test_case "stale lock broken" `Quick
            test_lock_breaks_stale;
          Alcotest.test_case "drain takes the lock" `Slow
            test_resume_holds_lock;
        ] );
      ( "runner",
        [
          Alcotest.test_case "failure capture" `Quick
            test_runner_captures_failures;
          Alcotest.test_case "graceful stop between jobs" `Slow
            test_runner_should_stop;
        ] );
      ( "resume",
        [
          Alcotest.test_case "kill + resume determinism" `Slow
            test_resume_determinism;
          Alcotest.test_case "report counts missing jobs" `Quick
            test_report_counts_missing;
          Alcotest.test_case "SIGINT exits 130 and resumes" `Slow
            test_cli_sigint_campaign;
        ] );
    ]
