(* Tests for glc_obs: instrument semantics, the no-op sink, the
   deterministic sorted-key JSON export, and the end-to-end contract
   that an instrumented ensemble's deterministic section is
   byte-identical across runs and worker counts. *)

module Metrics = Glc_obs.Metrics
module Clock = Glc_obs.Clock
module Circuits = Glc_gates.Circuits
module Protocol = Glc_dvasim.Protocol
module Ensemble = Glc_engine.Ensemble

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checkf eps = Alcotest.check (Alcotest.float eps)
let checks = Alcotest.check Alcotest.string

let contains s sub =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let expect_invalid msg f =
  match f () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail ("expected Invalid_argument: " ^ msg)

(* ---- clock ---- *)

let test_clock_nondecreasing () =
  let prev = ref (Clock.now ()) in
  for _ = 1 to 1_000 do
    let t = Clock.now () in
    checkb "nondecreasing" true (t >= !prev);
    prev := t
  done

(* ---- instruments ---- *)

let test_counter () =
  let t = Metrics.create () in
  let c = Metrics.counter t "a" in
  checki "starts at zero" 0 (Metrics.Counter.value c);
  Metrics.Counter.incr c;
  Metrics.Counter.add c 41;
  checki "incr + add" 42 (Metrics.Counter.value c);
  (* same name resolves to the same counter *)
  Metrics.Counter.incr (Metrics.counter t "a");
  checki "shared by name" 43 (Metrics.Counter.value c)

let test_gauge () =
  let t = Metrics.create () in
  let g = Metrics.gauge t "g" in
  checkf 0. "starts at zero" 0. (Metrics.Gauge.value g);
  Metrics.Gauge.set g 2.5;
  Metrics.Gauge.add g (-1.);
  checkf 0. "set + add" 1.5 (Metrics.Gauge.value g);
  Metrics.Gauge.set (Metrics.gauge t "g") 7.;
  checkf 0. "shared by name" 7. (Metrics.Gauge.value g)

let test_histogram () =
  let t = Metrics.create () in
  let h = Metrics.histogram ~buckets:[| 1.; 10. |] t "h" in
  checki "empty count" 0 (Metrics.Histogram.count h);
  List.iter (Metrics.Histogram.observe h) [ 0.5; 5.; 500. ];
  checki "count" 3 (Metrics.Histogram.count h);
  checkf 1e-9 "sum" 505.5 (Metrics.Histogram.sum h);
  (* one observation per bucket, including the overflow bucket *)
  checkb "bucket counts in export" true
    (contains (Metrics.to_json t) "\"counts\":[1,1,1]")

let test_histogram_bucket_validation () =
  let t = Metrics.create () in
  expect_invalid "empty buckets" (fun () ->
      Metrics.histogram ~buckets:[||] t "bad");
  expect_invalid "non-increasing buckets" (fun () ->
      Metrics.histogram ~buckets:[| 1.; 1. |] t "bad2")

let test_kind_collision () =
  let t = Metrics.create () in
  ignore (Metrics.counter t "x");
  expect_invalid "counter reused as gauge" (fun () -> Metrics.gauge t "x");
  expect_invalid "counter reused as histogram" (fun () ->
      Metrics.histogram t "x")

(* ---- no-op sink ---- *)

let test_noop_discards () =
  let t = Metrics.noop in
  checkb "disabled" false (Metrics.enabled t);
  checkb "live registry enabled" true (Metrics.enabled (Metrics.create ()));
  let c = Metrics.counter t "n" in
  Metrics.Counter.add c 100;
  checki "counter writes dropped" 0 (Metrics.Counter.value c);
  let g = Metrics.gauge t "n2" in
  Metrics.Gauge.set g 5.;
  checkf 0. "gauge writes dropped" 0. (Metrics.Gauge.value g);
  let h = Metrics.histogram t "n3" in
  Metrics.Histogram.observe h 1.;
  checki "histogram writes dropped" 0 (Metrics.Histogram.count h);
  checki "time passes result through" 9 (Metrics.time t "n4" (fun () -> 9));
  checki "span passes result through" 8 (Metrics.span t "sp" (fun () -> 8));
  checks "export stays empty"
    "{\"deterministic\":{\"counters\":{},\"gauges\":{}},\"timings\":{\"histograms\":{},\"spans\":{\"dropped\":0,\"events\":[]}}}"
    (Metrics.to_json t)

(* ---- export ---- *)

let test_export_sorted_and_repeatable () =
  let t = Metrics.create () in
  Metrics.Counter.add (Metrics.counter t "zeta") 1;
  Metrics.Counter.add (Metrics.counter t "alpha") 2;
  Metrics.Gauge.set (Metrics.gauge t "mid") 0.5;
  let json = Metrics.deterministic_json t in
  checks "sorted keys, shortest floats"
    "{\"counters\":{\"alpha\":2,\"zeta\":1},\"gauges\":{\"mid\":0.5}}" json;
  checks "repeatable" json (Metrics.deterministic_json t)

let test_to_text_exposition () =
  let t = Metrics.create () in
  Metrics.Counter.add (Metrics.counter t "serve.jobs_submitted") 3 ;
  Metrics.Counter.incr (Metrics.counter t "alpha");
  Metrics.Gauge.set (Metrics.gauge t "serve.queue_depth") 2.;
  let h = Metrics.histogram ~buckets:[| 0.5; 1.0 |] t "job_seconds" in
  Metrics.Histogram.observe h 0.25;
  Metrics.Histogram.observe h 0.75;
  Metrics.Histogram.observe h 9.;
  let text = Metrics.to_text t in
  checks "deterministic across renders" text (Metrics.to_text t);
  (* dots are mangled to underscores; counters sort before gauges *)
  checkb "mangled counter line" true
    (contains text "# TYPE serve_jobs_submitted counter\nserve_jobs_submitted 3\n");
  checkb "plain counter line" true
    (contains text "# TYPE alpha counter\nalpha 1\n");
  checkb "gauge line" true
    (contains text "# TYPE serve_queue_depth gauge\nserve_queue_depth 2\n");
  checkb "no raw dotted names" false (contains text "serve.");
  (* histogram buckets are cumulative and capped by +Inf, then sum/count *)
  checkb "histogram block" true
    (contains text
       "# TYPE job_seconds histogram\n\
        job_seconds_bucket{le=\"0.5\"} 1\n\
        job_seconds_bucket{le=\"1\"} 2\n\
        job_seconds_bucket{le=\"+Inf\"} 3\n\
        job_seconds_sum 10\n\
        job_seconds_count 3\n");
  checks "noop renders empty" "" (Metrics.to_text Metrics.noop)

let test_deterministic_json_excludes_timings () =
  let t = Metrics.create () in
  Metrics.Counter.incr (Metrics.counter t "kept");
  Metrics.Histogram.observe (Metrics.histogram t "wall") 0.1;
  ignore (Metrics.span t "a_span" (fun () -> ()));
  let det = Metrics.deterministic_json t in
  checkb "counter present" true (contains det "kept");
  checkb "histogram excluded" false (contains det "wall");
  checkb "span excluded" false (contains det "a_span")

(* ---- spans and timers ---- *)

let test_span_records_on_raise () =
  let t = Metrics.create () in
  (match Metrics.span t "boom" (fun () -> failwith "boom") with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "exception swallowed");
  checkb "span recorded despite raise" true
    (contains (Metrics.to_json t) "\"name\":\"boom\"");
  (match Metrics.time t "boom_s" (fun () -> failwith "boom") with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "exception swallowed");
  checki "duration recorded despite raise" 1
    (Metrics.Histogram.count (Metrics.histogram t "boom_s"))

let test_span_buffer_cap () =
  let t = Metrics.create () in
  for _ = 1 to 4_100 do
    Metrics.span t "s" (fun () -> ())
  done;
  checkb "drops counted past the cap" true
    (contains (Metrics.to_json t) "\"dropped\":4")

(* ---- cross-domain safety ---- *)

let test_counter_across_domains () =
  let t = Metrics.create () in
  let c = Metrics.counter t "shared" in
  let domains =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to 10_000 do
              Metrics.Counter.incr c
            done))
  in
  List.iter Domain.join domains;
  checki "no lost increments" 40_000 (Metrics.Counter.value c)

(* ---- end-to-end determinism contract ---- *)

let ensemble_deterministic_section ~jobs =
  let metrics = Metrics.create () in
  let cfg =
    Ensemble.config ~replicates:4 ~jobs ~seed:7
      ~protocol:
        (Protocol.make ~total_time:2_000. ~hold_time:1_000. ())
      ()
  in
  ignore (Ensemble.run ~metrics cfg (Circuits.genetic_not ()));
  Metrics.deterministic_json metrics

let test_ensemble_deterministic_section () =
  let reference = ensemble_deterministic_section ~jobs:1 in
  checkb "counters were recorded" true
    (contains reference "\"ssa.reactions_fired\":");
  checks "byte-identical across runs" reference
    (ensemble_deterministic_section ~jobs:1);
  checks "byte-identical across worker counts" reference
    (ensemble_deterministic_section ~jobs:2)

let () =
  Alcotest.run "glc_obs"
    [
      ("clock", [ Alcotest.test_case "nondecreasing" `Quick test_clock_nondecreasing ]);
      ( "instruments",
        [
          Alcotest.test_case "counter" `Quick test_counter;
          Alcotest.test_case "gauge" `Quick test_gauge;
          Alcotest.test_case "histogram" `Quick test_histogram;
          Alcotest.test_case "bucket validation" `Quick
            test_histogram_bucket_validation;
          Alcotest.test_case "kind collision" `Quick test_kind_collision;
        ] );
      ( "noop",
        [ Alcotest.test_case "discards writes" `Quick test_noop_discards ] );
      ( "export",
        [
          Alcotest.test_case "sorted and repeatable" `Quick
            test_export_sorted_and_repeatable;
          Alcotest.test_case "deterministic section excludes timings" `Quick
            test_deterministic_json_excludes_timings;
          Alcotest.test_case "text exposition" `Quick test_to_text_exposition;
        ] );
      ( "spans",
        [
          Alcotest.test_case "recorded on raise" `Quick
            test_span_records_on_raise;
          Alcotest.test_case "buffer cap" `Quick test_span_buffer_cap;
        ] );
      ( "concurrency",
        [
          Alcotest.test_case "counter across domains" `Quick
            test_counter_across_domains;
        ] );
      ( "ensemble",
        [
          Alcotest.test_case "deterministic section byte-identical" `Slow
            test_ensemble_deterministic_section;
        ] );
    ]
