(* The symbolic verifier: interval arithmetic, the descending
   steady-state fixpoint, and the certificates built on them.

   The load-bearing properties are differential: every bound the
   analyser derives must contain what the concrete engines (ODE,
   SSA + Algorithm 1) actually compute, over the full Table-1 benchmark
   set and randomly synthesised circuits. An interval-vs-simulation
   disagreement is a soundness bug, never a tolerance issue. *)

module Math = Glc_model.Math
module Model = Glc_model.Model
module Truth_table = Glc_logic.Truth_table
module Circuit = Glc_gates.Circuit
module Cello = Glc_gates.Cello
module Benchmarks = Glc_gates.Benchmarks
module Protocol = Glc_dvasim.Protocol
module Experiment = Glc_dvasim.Experiment
module Ode = Glc_ssa.Ode
module Analyzer = Glc_core.Analyzer
module Verify = Glc_core.Verify
module Metrics = Glc_obs.Metrics
module Interval = Glc_symbolic.Interval
module Steady_state = Glc_symbolic.Steady_state
module Certificate = Glc_symbolic.Certificate

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let check_contains what iv v =
  if not (Interval.contains iv v) then
    Alcotest.failf "%s: %.17g outside %s" what v (Interval.to_string iv)

(* ---- the interval domain ---- *)

let test_interval_construction () =
  let i = Interval.make 1. 2. in
  checkb "lo" true (Interval.lo i = 1.);
  checkb "hi" true (Interval.hi i = 2.);
  checkb "minus zero normalised" true
    (Interval.lo (Interval.point (-0.)) = 0.
    && 1. /. Interval.lo (Interval.point (-0.)) = infinity);
  checkb "nan gives full" true
    (Interval.equal (Interval.make nan nan) Interval.full);
  checkb "point of nan gives full" true
    (Interval.equal (Interval.point nan) Interval.full);
  checkb "lo > hi rejected" true
    (match Interval.make 2. 1. with
    | exception Invalid_argument _ -> true
    | _ -> false);
  checkb "zero is zero" true (Interval.is_zero Interval.zero);
  checkb "top not finite" false (Interval.is_finite Interval.top);
  checkb "subset" true (Interval.subset (Interval.make 1. 2.) Interval.top);
  checkb "join" true
    (Interval.equal
       (Interval.join (Interval.make 0. 1.) (Interval.make 3. 4.))
       (Interval.make 0. 4.));
  checkb "disjoint meet" true
    (Interval.meet (Interval.make 0. 1.) (Interval.make 2. 3.) = None);
  checkb "meet_sound falls back" true
    (Interval.equal
       (Interval.meet_sound (Interval.make 0. 1.) (Interval.make 2. 3.))
       (Interval.make 0. 1.))

let test_interval_division_guards () =
  (* a denominator straddling zero destroys all information ... *)
  checkb "straddling denominator" true
    (Interval.equal
       (Interval.div (Interval.make 1. 2.) (Interval.make (-1.) 1.))
       Interval.full);
  (* ... unless the numerator is identically zero: a zero rate never
     fires, whatever the denominator (the clamped-propensity
     convention glc_lint's zero-propagation relies on) *)
  checkb "zero numerator wins" true
    (Interval.equal
       (Interval.div Interval.zero (Interval.make (-1.) 1.))
       Interval.zero);
  checkb "ordinary division" true
    (Interval.equal
       (Interval.div (Interval.make 2. 4.) (Interval.make 1. 2.))
       (Interval.make 1. 4.))

let test_interval_zero_times_infinity () =
  checkb "0 * top = 0" true
    (Interval.is_zero (Interval.mul Interval.zero Interval.top));
  checkb "0 * full = 0" true
    (Interval.is_zero (Interval.mul Interval.zero Interval.full));
  checkb "top * top stays top" true
    (Interval.equal (Interval.mul Interval.top Interval.top) Interval.top)

let test_interval_pow () =
  (* Float.pow 0 0 = 1 — the concrete semantics we abstract *)
  checkb "0^0 = 1" true
    (Interval.equal
       (Interval.pow (Interval.point 0.) (Interval.point 0.))
       Interval.one);
  checkb "negative base gives full" true
    (Interval.equal
       (Interval.pow (Interval.make (-2.) 1.) (Interval.point 0.5))
       Interval.full);
  (* a point argument is one concrete operation: exact, no widening *)
  checkb "point power exact" true
    (Interval.equal
       (Interval.pow (Interval.point 2.) (Interval.point 2.))
       (Interval.point 4.));
  (* non-degenerate arguments are widened outward by one ulp *)
  let p = Interval.pow (Interval.make 2. 3.) (Interval.point 2.) in
  checkb "outward low" true (Interval.lo p < 4. && Interval.lo p > 3.99);
  checkb "outward high" true (Interval.hi p > 9. && Interval.hi p < 9.01)

let test_interval_exp_ln () =
  checkb "exp of point is exact" true
    (Interval.equal (Interval.exp (Interval.point 0.)) Interval.one);
  checkb "ln of point is exact" true
    (Interval.equal (Interval.ln Interval.one) Interval.zero);
  let e = Interval.exp (Interval.make 0. 1.) in
  check_contains "exp contains e" e (Float.exp 1.);
  check_contains "exp contains 1" e 1.;
  let l = Interval.ln (Interval.make 0. 1.) in
  checkb "ln reaches -inf at 0" true (Interval.lo l = neg_infinity);
  check_contains "ln contains 0" l 0.

let test_next_up_down () =
  checkb "next_up grows" true (Interval.next_up 1. > 1.);
  checkb "next_down shrinks" true (Interval.next_down 1. < 1.);
  checkb "adjacent" true (Interval.next_down (Interval.next_up 1.) = 1.);
  checkb "next_up of 0 is minimal subnormal" true
    (Interval.next_up 0. > 0. && Interval.next_up 0. < 1e-300);
  checkb "infinity is absorbing" true
    (Interval.next_up infinity = infinity)

let test_widen () =
  let w = Interval.widen (Interval.make 0. 1.) (Interval.make 0. 2.) in
  checkb "escaping hi jumps to infinity" true (Interval.hi w = infinity);
  checkb "stable lo kept" true (Interval.lo w = 0.);
  (* widening never narrows: a non-escaping new value keeps the old
     endpoints, so an ascending chain cannot oscillate *)
  checkb "no escape keeps the old bounds" true
    (Interval.equal
       (Interval.widen (Interval.make 0. 2.) (Interval.make 0.5 1.))
       (Interval.make 0. 2.))

let test_eval_zero_propagation () =
  (* the degenerate [0,0] tracking glc_lint's reachability keys on *)
  let lookup = function
    | "x" -> Interval.top
    | "zero" -> Interval.zero
    | _ -> Interval.full
  in
  let zero e = Interval.is_zero (Interval.eval ~lookup e) in
  checkb "0 * x" true (zero Math.(num 0. * var "x"));
  checkb "zero ident * x" true (zero Math.(var "zero" * var "x"));
  checkb "0 / x" true (zero Math.(num 0. / var "x"));
  checkb "0 + 0" true (zero Math.(num 0. + (var "zero" * var "x")));
  checkb "min 0 x over top" true (zero (Math.Min (Math.num 0., Math.var "x")));
  checkb "x alone is not zero" false (zero (Math.var "x"))

(* ---- QCheck: eval is a sound abstraction of Math.eval ---- *)

let idents = [| "a"; "b"; "c" |]

let expr_gen =
  let open QCheck.Gen in
  sized_size (int_bound 5) @@ fix (fun self n ->
      let leaf =
        oneof
          [
            map Math.num (float_bound_inclusive 5.);
            map (fun v -> Math.num (-.v)) (float_bound_inclusive 5.);
            map (fun i -> Math.var idents.(i)) (int_bound 2);
          ]
      in
      if n = 0 then leaf
      else
        let sub = self (n / 2) in
        oneof
          [
            leaf;
            map (fun e -> Math.Neg e) sub;
            map2 (fun a b -> Math.Add (a, b)) sub sub;
            map2 (fun a b -> Math.Sub (a, b)) sub sub;
            map2 (fun a b -> Math.Mul (a, b)) sub sub;
            map2 (fun a b -> Math.Div (a, b)) sub sub;
            map2 (fun a b -> Math.Pow (a, b)) sub sub;
            map2 (fun a b -> Math.Min (a, b)) sub sub;
            map2 (fun a b -> Math.Max (a, b)) sub sub;
            map (fun e -> Math.Exp e) sub;
            map (fun e -> Math.Ln e) sub;
          ])

(* An environment pairs each identifier with an interval and a concrete
   value inside it. *)
let env_gen =
  let open QCheck.Gen in
  let one_binding =
    map3
      (fun lo width t ->
        let lo = lo -. 3. and hi = lo -. 3. +. width in
        let v = Float.min hi (Float.max lo (lo +. (t *. width))) in
        (Interval.make lo hi, v))
      (float_bound_inclusive 6.)
      (float_bound_inclusive 3.)
      (float_bound_inclusive 1.)
  in
  array_repeat 3 one_binding

(* The domain's soundness contract (interval.mli) is for evaluations
   whose intermediate results stay finite — the fragment kinetic laws
   live in. The 0*inf and 0/0 conventions are deliberately unsound
   beyond it, so expressions that overflow or hit a NaN mid-way are
   outside the property (vacuously true), not counterexamples. *)
let rec all_intermediates_finite lookup e =
  Float.is_finite (Math.eval ~lookup e)
  &&
  match e with
  | Math.Const _ | Math.Ident _ -> true
  | Math.Neg a | Math.Exp a | Math.Ln a -> all_intermediates_finite lookup a
  | Math.Add (a, b)
  | Math.Sub (a, b)
  | Math.Mul (a, b)
  | Math.Div (a, b)
  | Math.Pow (a, b)
  | Math.Min (a, b)
  | Math.Max (a, b) ->
      all_intermediates_finite lookup a && all_intermediates_finite lookup b

let qcheck_eval_sound =
  QCheck.Test.make ~count:2000 ~name:"Interval.eval encloses Math.eval"
    (QCheck.make
       ~print:(fun (e, _) -> Math.to_string e)
       QCheck.Gen.(pair expr_gen env_gen))
    (fun (e, env) ->
      let index x =
        match
          Array.to_list idents
          |> List.mapi (fun i id -> (id, i))
          |> List.assoc_opt x
        with
        | Some i -> i
        | None -> QCheck.Test.fail_report "unknown ident"
      in
      let concrete x = snd env.(index x) in
      if not (all_intermediates_finite concrete e) then true
      else
        let iv = Interval.eval ~lookup:(fun x -> fst env.(index x)) e in
        Interval.contains iv (Math.eval ~lookup:concrete e))

(* ---- the steady-state engine ---- *)

(* Clamp a circuit's sensor species to the rail levels of a row, the
   same environment Certificate builds internally. *)
let row_env (p : Protocol.t) (c : Circuit.t) row =
  let arity = Circuit.arity c in
  Array.to_list
    (Array.mapi
       (fun j id ->
         let bit = (row lsr (arity - 1 - j)) land 1 = 1 in
         ( id,
           Interval.point
             (if bit then p.Protocol.input_high else p.Protocol.input_low) ))
       c.Circuit.inputs)

let test_descending_iterates_nested () =
  (* stopping the narrowing early never widens a bound: the iterates
     form a descending chain, so a cap of k+1 rounds is everywhere
     inside a cap of k. This is what makes early exit sound. *)
  let p = Protocol.default in
  List.iter
    (fun c ->
      let m = Circuit.model c in
      let inputs = row_env p c 0 in
      let prev = ref None in
      for k = 1 to 6 do
        let s = Steady_state.analyse ~max_iters:k ~inputs m in
        (match !prev with
        | None -> ()
        | Some s' ->
            List.iter
              (fun (id, b) ->
                if not (Interval.subset b (Steady_state.bound s' id)) then
                  Alcotest.failf "%s/%s: iterate %d not inside iterate %d"
                    c.Circuit.name id k (k - 1))
              s.Steady_state.ss_bounds);
        prev := Some s
      done)
    (Benchmarks.all ())

let test_fixpoint_converges_fast () =
  (* feed-forward repressor cascades settle in about one round per
     layer; convergence is a quality signal, not a soundness one *)
  List.iter
    (fun c ->
      let cert = Certificate.certify c in
      Array.iter
        (fun r ->
          checkb
            (Printf.sprintf "%s row %d converged" c.Circuit.name
               r.Certificate.cr_row)
            true r.Certificate.cr_converged;
          checkb "few iterations" true (r.Certificate.cr_iterations <= 10))
        cert.Certificate.c_rows)
    (Benchmarks.all ())

(* ---- certificates, differentially against the ODE ---- *)

(* The deterministic oracle: clamp the sensors, integrate to the DC
   operating point, and demand the settled output lie in the certified
   bound (within a whisker of integration slack). This checks the
   bounds themselves, for every row — proved or not. *)
let ode_output (p : Protocol.t) (c : Circuit.t) row =
  let arity = Circuit.arity c in
  let m =
    Array.to_list c.Circuit.inputs
    |> List.mapi (fun j id ->
           let bit = (row lsr (arity - 1 - j)) land 1 = 1 in
           (id, if bit then p.Protocol.input_high else p.Protocol.input_low))
    |> List.fold_left
         (fun m (id, v) -> Model.with_initial m id v)
         (Circuit.model c)
  in
  List.assoc c.Circuit.output (Ode.steady_state ~max_time:20_000. m)

let widen_slack iv =
  Interval.make (Interval.lo iv -. 0.5) (Interval.hi iv +. 0.5)

let test_bounds_contain_ode_steady_state () =
  let p = Protocol.default in
  List.iter
    (fun c ->
      let cert = Certificate.certify ~protocol:p c in
      Array.iter
        (fun r ->
          let v = ode_output p c r.Certificate.cr_row in
          check_contains
            (Printf.sprintf "%s row %d" c.Circuit.name r.Certificate.cr_row)
            (widen_slack r.Certificate.cr_bounds)
            v)
        cert.Certificate.c_rows)
    (Benchmarks.all ())

(* ---- certificates, differentially against the SSA verifier ---- *)

let quick = Protocol.make ~total_time:4_000. ~hold_time:500. ~seed:7 ()

let test_proved_rows_agree_with_ssa () =
  (* every proved verdict must match what the stochastic pipeline
     (Experiment + Algorithm 1) extracts: a disagreement means the
     noise margin is wrong, not that the tolerance is tight *)
  List.iter
    (fun c ->
      let cert = Certificate.certify ~protocol:quick c in
      let e = Experiment.run ~protocol:quick c in
      let r = Analyzer.of_experiment e in
      let extracted = Analyzer.extracted_table r in
      Array.iter
        (fun row ->
          match row.Certificate.cr_verdict with
          | Certificate.Undecided -> ()
          | Certificate.Proved_high | Certificate.Proved_low ->
              let proved = row.Certificate.cr_verdict = Certificate.Proved_high in
              if Truth_table.output extracted row.Certificate.cr_row <> proved
              then
                Alcotest.failf "%s row %d: proved %b but SSA extracted %b"
                  c.Circuit.name row.Certificate.cr_row proved (not proved))
        cert.Certificate.c_rows)
    (Benchmarks.all ())

let test_table1_coverage () =
  (* the acceptance floor: at least half of the benchmark rows decide
     symbolically (measured: 97 of 98) with no proved contradiction *)
  let proved, rows =
    List.fold_left
      (fun (p, n) c ->
        let cert = Certificate.certify c in
        checkb (c.Circuit.name ^ " no contradiction") true
          (Certificate.contradictions cert = []);
        (p + Certificate.decided cert, n + Certificate.rows cert))
      (0, 0) (Benchmarks.all ())
  in
  checkb "at least half the rows certified" true (2 * proved >= rows);
  checki "whole-benchmark coverage" 97 proved;
  checki "whole-benchmark rows" 98 rows

(* ---- QCheck: random circuits against the ODE oracle ---- *)

let qcheck_random_circuits_sound =
  QCheck.Test.make ~count:12 ~name:"certificates sound on random circuits"
    (QCheck.make
       ~print:(fun (code, deg) -> Printf.sprintf "0x%02X deg=%g" code deg)
       QCheck.Gen.(
         pair (int_bound 255)
           (map (fun t -> 0.02 +. (t *. 0.15)) (float_bound_inclusive 1.))))
    (fun (code, degradation) ->
      let c = Cello.of_code code in
      let p = Protocol.default in
      let m = Circuit.model ~degradation c in
      let cert =
        Certificate.certify_model ~threshold:p.Protocol.threshold
          ~input_high:p.Protocol.input_high ~input_low:p.Protocol.input_low
          ~inputs:c.Circuit.inputs ~output:c.Circuit.output
          ~expected:c.Circuit.expected m
      in
      Array.for_all
        (fun r ->
          let arity = Circuit.arity c in
          let m =
            Array.to_list c.Circuit.inputs
            |> List.mapi (fun j id ->
                   let bit = (r.Certificate.cr_row lsr (arity - 1 - j)) land 1 = 1 in
                   ( id,
                     if bit then p.Protocol.input_high
                     else p.Protocol.input_low ))
            |> List.fold_left
                 (fun m (id, v) -> Model.with_initial m id v)
                 m
          in
          let v =
            List.assoc c.Circuit.output (Ode.steady_state ~max_time:20_000. m)
          in
          Interval.contains (widen_slack r.Certificate.cr_bounds) v)
        cert.Certificate.c_rows)

(* ---- the deliberately undecidable fixture ---- *)

(* genetic_NAND's 11 row rests at ~6.5 molecules against a threshold of
   15: the bound is correct but the 4-sigma Poisson margin cannot clear
   it, so this row is the canonical fallback case. *)
let test_nand_fixture () =
  let cert = Certificate.certify (Option.get (Benchmarks.find "genetic_NAND")) in
  checki "one undecided row" 1 (List.length (Certificate.undecided_rows cert));
  checkb "it is row 11" true (Certificate.undecided_rows cert = [ 3 ]);
  checkb "not fully decided" false (Certificate.fully_decided cert);
  checkb "no verdict yet" true (Certificate.verified cert = None);
  checkb "no contradiction" true (Certificate.contradictions cert = []);
  checki "three rows proved" 3 (Certificate.decided cert);
  List.iter
    (fun row ->
      checkb
        (Printf.sprintf "row %d proved high" row)
        true
        (Certificate.proved_output cert row = Some true))
    [ 0; 1; 2 ];
  checkb "undecided row has no output" true
    (Certificate.proved_output cert 3 = None)

let test_fully_certified_not () =
  let cert = Certificate.certify (Option.get (Benchmarks.find "genetic_NOT")) in
  checkb "fully decided" true (Certificate.fully_decided cert);
  checkb "verified" true (Certificate.verified cert = Some true);
  checkb "row 0 high" true (Certificate.proved_output cert 0 = Some true);
  checkb "row 1 low" true (Certificate.proved_output cert 1 = Some false)

let test_certificate_json_deterministic () =
  let c = Option.get (Benchmarks.find "genetic_NAND") in
  let j1 = Certificate.to_json (Certificate.certify c) in
  let j2 = Certificate.to_json (Certificate.certify c) in
  checkb "byte identical" true (String.equal j1 j2);
  checkb "carries provenance fields" true
    (let contains s sub =
       let n = String.length s and m = String.length sub in
       let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
       go 0
     in
     contains j1 "\"undecided\":1" && contains j1 "\"proved\":3")

(* ---- the hybrid verifier ---- *)

let test_certified_first_hybrid_nand () =
  let metrics = Metrics.create () in
  let h =
    Verify.certified_first ~metrics ~protocol:quick
      (Option.get (Benchmarks.find "genetic_NAND"))
  in
  checkb "verified" true h.Verify.h_report.Verify.verified;
  checkb "row 11 simulated" true (h.Verify.h_simulated_rows = [ 3 ]);
  checkb "simulation actually ran" true (h.Verify.h_result <> None);
  checkb "provenance of proved rows" true
    (h.Verify.h_provenance.(0) = Verify.Certified
    && h.Verify.h_provenance.(1) = Verify.Certified
    && h.Verify.h_provenance.(2) = Verify.Certified);
  checkb "provenance of the fallback row" true
    (h.Verify.h_provenance.(3) = Verify.Simulated);
  let count name = Metrics.Counter.value (Metrics.counter metrics name) in
  checki "one fallback simulation" 1 (count "symbolic.fallback_simulations");
  checki "one fallback row" 1 (count "symbolic.fallback_rows");
  checki "three rows proved" 3 (count "symbolic.rows_proved");
  checki "one certificate" 1 (count "symbolic.certificates")

let test_certified_first_no_simulation () =
  let metrics = Metrics.create () in
  let h =
    Verify.certified_first ~metrics ~protocol:quick
      (Option.get (Benchmarks.find "genetic_NOT"))
  in
  checkb "verified" true h.Verify.h_report.Verify.verified;
  checkb "no simulation at all" true (h.Verify.h_result = None);
  checkb "no simulated rows" true (h.Verify.h_simulated_rows = []);
  checkb "clean fitness" true (h.Verify.h_report.Verify.fitness = 100.);
  let count name = Metrics.Counter.value (Metrics.counter metrics name) in
  checki "no fallback" 0 (count "symbolic.fallback_simulations");
  checkb "all rows certified" true
    (Array.for_all (fun p -> p = Verify.Certified) h.Verify.h_provenance)

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "glc_symbolic"
    [
      ( "interval",
        [
          Alcotest.test_case "construction" `Quick test_interval_construction;
          Alcotest.test_case "division guards" `Quick
            test_interval_division_guards;
          Alcotest.test_case "zero times infinity" `Quick
            test_interval_zero_times_infinity;
          Alcotest.test_case "pow" `Quick test_interval_pow;
          Alcotest.test_case "exp and ln" `Quick test_interval_exp_ln;
          Alcotest.test_case "next_up/next_down" `Quick test_next_up_down;
          Alcotest.test_case "widen" `Quick test_widen;
          Alcotest.test_case "zero propagation" `Quick
            test_eval_zero_propagation;
        ]
        @ qc [ qcheck_eval_sound ] );
      ( "steady-state",
        [
          Alcotest.test_case "descending iterates nested" `Quick
            test_descending_iterates_nested;
          Alcotest.test_case "fixpoint converges fast" `Quick
            test_fixpoint_converges_fast;
        ] );
      ( "certificate",
        [
          Alcotest.test_case "bounds contain ODE steady state" `Quick
            test_bounds_contain_ode_steady_state;
          Alcotest.test_case "proved rows agree with SSA" `Slow
            test_proved_rows_agree_with_ssa;
          Alcotest.test_case "Table-1 coverage" `Quick test_table1_coverage;
          Alcotest.test_case "NAND undecided fixture" `Quick
            test_nand_fixture;
          Alcotest.test_case "NOT fully certified" `Quick
            test_fully_certified_not;
          Alcotest.test_case "JSON deterministic" `Quick
            test_certificate_json_deterministic;
        ]
        @ qc [ qcheck_random_circuits_sound ] );
      ( "hybrid verify",
        [
          Alcotest.test_case "NAND falls back for one row" `Slow
            test_certified_first_hybrid_nand;
          Alcotest.test_case "NOT needs no simulation" `Quick
            test_certified_first_no_simulation;
        ] );
    ]
