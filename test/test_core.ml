(* Tests for glc_core: Algorithm 1 on hand-crafted traces where every
   count, filter decision and fitness value is known exactly, plus the
   verification layer and the report printer. *)

module Trace = Glc_ssa.Trace
module Digital = Glc_core.Digital
module Analyzer = Glc_core.Analyzer
module Verify = Glc_core.Verify
module Report = Glc_core.Report
module Truth_table = Glc_logic.Truth_table
module Expr = Glc_logic.Expr

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checkf eps = Alcotest.check (Alcotest.float eps)
let checks = Alcotest.check Alcotest.string

(* Builds a dt=1 trace from explicit per-sample states. *)
let trace_of ~names samples =
  match samples with
  | [] -> invalid_arg "trace_of: empty"
  | first :: _ ->
      let n = List.length samples in
      let r =
        Trace.Recorder.create ~names ~initial:first ~t0:0.
          ~t_end:(float_of_int (n - 1))
          ~dt:1.
      in
      List.iteri
        (fun k state -> Trace.Recorder.observe r (float_of_int k) state)
        samples;
      Trace.Recorder.finish r

(* One sample of a 1-input experiment: input level, output level. *)
let sample1 i o = [| i; o |]

let high = 30.
let low = 0.

(* ---- Digital (ADC) ---- *)

let test_adc () =
  Alcotest.(check (array bool))
    "threshold is inclusive"
    [| false; true; true; false |]
    (Digital.of_samples ~threshold:15. [| 14.9; 15.0; 15.1; 0. |]);
  Alcotest.check_raises "bad threshold"
    (Invalid_argument "Digital.of_samples: threshold <= 0") (fun () ->
      ignore (Digital.of_samples ~threshold:0. [| 1. |]))

let test_counts () =
  let stream = [| false; true; true; false; true; false; false |] in
  checki "highs" 3 (Digital.count_high stream);
  checki "variations" 4 (Digital.count_variations stream);
  checki "empty" 0 (Digital.count_variations [||]);
  checki "constant" 0
    (Digital.count_variations [| true; true; true |])

(* ---- CaseAnalyzer ---- *)

let test_case_streams_split () =
  (* Two inputs; visit rows 0,2,3; row 1 never occurs. Row 2 must mean
     I1 high / I2 low (I1 is the most significant bit). *)
  let names = [| "I1"; "I2"; "OUT" |] in
  let samples =
    [
      (* row 0: out low *)
      [| low; low; 1. |];
      [| low; low; 2. |];
      (* row 2: I1 high, out high *)
      [| high; low; 40. |];
      [| high; low; 45. |];
      [| high; low; 44. |];
      (* row 3: out low *)
      [| high; high; 3. |];
    ]
  in
  let streams =
    Analyzer.case_streams ~threshold:15.
      {
        Analyzer.trace = trace_of ~names samples;
        inputs = [| "I1"; "I2" |];
        output = "OUT";
      }
  in
  checki "row 0 length" 2 (Array.length streams.(0));
  checki "row 1 never occurs" 0 (Array.length streams.(1));
  checki "row 2 length" 3 (Array.length streams.(2));
  checki "row 3 length" 1 (Array.length streams.(3));
  Alcotest.(check (array bool))
    "row 2 all high" [| true; true; true |] streams.(2)

(* ---- the two filters (Fig. 2 and Fig. 3 of the paper) ---- *)

(* Scaled-down version of the paper's Fig. 2 XNOR trap: combination 00
   shows a short glitch of 1s (stable, but a tiny minority) and must be
   rejected by eq. (2); combination 11 is mostly 1 and accepted. *)
let test_fig2_xnor_trap () =
  let names = [| "I1"; "I2"; "OUT" |] in
  let case00 k =
    (* 100 samples; a 3-sample glitch in the middle *)
    let o = if k >= 50 && k < 53 then 40. else 1. in
    [| low; low; o |]
  in
  let case11 k =
    (* 60 samples; high after a 20-sample rise *)
    let o = if k >= 20 then 40. else 1. in
    [| high; high; o |]
  in
  let samples =
    List.init 100 case00 @ List.init 60 case11
  in
  let r =
    Analyzer.run
      {
        Analyzer.trace = trace_of ~names samples;
        inputs = [| "I1"; "I2" |];
        output = "OUT";
      }
  in
  let c00 = r.Analyzer.cases.(0) and c11 = r.Analyzer.cases.(3) in
  checki "00 highs" 3 c00.Analyzer.high_count;
  checki "00 variations" 2 c00.Analyzer.variations;
  checkb "00 passes eq(1)" true c00.Analyzer.passes_fov;
  checkb "00 fails eq(2)" false c00.Analyzer.passes_majority;
  checkb "00 excluded" false c00.Analyzer.included;
  checki "11 highs" 40 c11.Analyzer.high_count;
  checkb "11 included" true c11.Analyzer.included;
  Alcotest.(check (list int)) "minterms: AND, not XNOR" [ 3 ]
    r.Analyzer.minterms;
  checks "expression" "I1.I2" (Expr.to_string r.Analyzer.expr)

(* The paper's Fig. 3: two combinations with the same number of 1s; the
   oscillatory one must be rejected by eq. (1) even though it passes
   eq. (2). *)
let test_fig3_oscillation_filter () =
  let names = [| "I1"; "OUT" |] in
  let stable k =
    (* 30 samples, first 16 high: one variation *)
    sample1 low (if k < 16 then 40. else 1.)
  in
  let oscillating k =
    (* 30 samples, 16 high but alternating: many variations *)
    let o =
      if k < 2 then 40. else if k mod 2 = 0 then 40. else 1.
    in
    sample1 high o
  in
  let samples = List.init 30 stable @ List.init 30 oscillating in
  let r =
    Analyzer.run
      {
        Analyzer.trace = trace_of ~names samples;
        inputs = [| "I1" |];
        output = "OUT";
      }
  in
  let s = r.Analyzer.cases.(0) and o = r.Analyzer.cases.(1) in
  checki "same high count" s.Analyzer.high_count o.Analyzer.high_count;
  checkb "stable passes both" true s.Analyzer.included;
  checkb "oscillating passes eq(2)" true o.Analyzer.passes_majority;
  checkb "oscillating fails eq(1)" false o.Analyzer.passes_fov;
  Alcotest.(check (list int)) "only the stable case kept" [ 0 ]
    r.Analyzer.minterms

(* ---- fitness (eq. 3) ---- *)

let test_fitness_exact () =
  let names = [| "I1"; "OUT" |] in
  (* case 0: 20 samples all low (not counted in eq. 3).
     case 1: 20 samples, high with 2 variations: FOV_EST = 0.1. *)
  let case0 = List.init 20 (fun _ -> sample1 low 1.) in
  let case1 =
    List.init 20 (fun k ->
        sample1 high (if k = 5 then 1. else 40.))
  in
  let r =
    Analyzer.run
      {
        Analyzer.trace = trace_of ~names (case0 @ case1);
        inputs = [| "I1" |];
        output = "OUT";
      }
  in
  checkf 1e-9 "fov of case 1" 0.1 r.Analyzer.cases.(1).Analyzer.fov_est;
  (* PFoBE = 100 - (0.1 / 2) * 100 = 95 *)
  checkf 1e-9 "fitness" 95. r.Analyzer.fitness;
  (* perfect data scores 100 *)
  let perfect =
    Analyzer.run
      {
        Analyzer.trace =
          trace_of ~names
            (List.init 10 (fun _ -> sample1 low 1.)
            @ List.init 10 (fun _ -> sample1 high 40.));
        inputs = [| "I1" |];
        output = "OUT";
      }
  in
  checkf 1e-9 "perfect fitness" 100. perfect.Analyzer.fitness

let test_unobserved_combinations () =
  let names = [| "I1"; "I2"; "OUT" |] in
  let samples = List.init 10 (fun _ -> [| low; low; 40. |]) in
  let r =
    Analyzer.run
      {
        Analyzer.trace = trace_of ~names samples;
        inputs = [| "I1"; "I2" |];
        output = "OUT";
      }
  in
  checkb "observed row included" true r.Analyzer.cases.(0).Analyzer.included;
  for row = 1 to 3 do
    let c = r.Analyzer.cases.(row) in
    checki "zero count" 0 c.Analyzer.case_count;
    checkb "not included" false c.Analyzer.included
  done;
  Alcotest.(check (list int)) "only row 0" [ 0 ] r.Analyzer.minterms

let test_strict_fov_boundary () =
  (* eq. (1) is strict: FOV_EST equal to FOV_UD is rejected. *)
  let names = [| "I1"; "OUT" |] in
  (* 4 samples, 1 variation: FOV = 0.25 exactly *)
  let samples =
    [ sample1 high 40.; sample1 high 40.; sample1 high 40.;
      sample1 high 1. ]
  in
  let r =
    Analyzer.run
      {
        Analyzer.trace = trace_of ~names samples;
        inputs = [| "I1" |];
        output = "OUT";
      }
  in
  checkf 1e-9 "fov" 0.25 r.Analyzer.cases.(1).Analyzer.fov_est;
  checkb "rejected at the boundary" false r.Analyzer.cases.(1).Analyzer.passes_fov

(* ---- parameter and data validation ---- *)

let test_analyzer_errors () =
  let tr = trace_of ~names:[| "I1"; "OUT" |] [ sample1 low 0. ] in
  let expect_invalid f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  expect_invalid (fun () ->
      Analyzer.run
        { Analyzer.trace = tr; inputs = [| "ghost" |]; output = "OUT" });
  expect_invalid (fun () ->
      Analyzer.run
        { Analyzer.trace = tr; inputs = [| "I1" |]; output = "ghost" });
  expect_invalid (fun () ->
      Analyzer.run { Analyzer.trace = tr; inputs = [||]; output = "OUT" });
  expect_invalid (fun () ->
      Analyzer.run
        ~params:{ Analyzer.threshold = 15.; fov_ud = 0. }
        { Analyzer.trace = tr; inputs = [| "I1" |]; output = "OUT" });
  expect_invalid (fun () ->
      Analyzer.run
        ~params:{ Analyzer.threshold = 15.; fov_ud = 1.5 }
        { Analyzer.trace = tr; inputs = [| "I1" |]; output = "OUT" })

(* ---- expression construction ---- *)

let test_product_of_row () =
  let inputs = [| "I1"; "I2"; "I3" |] in
  checks "011" "I1'.I2.I3"
    (Expr.to_string (Analyzer.product_of_row ~inputs 3));
  checks "100" "I1.I2'.I3'"
    (Expr.to_string (Analyzer.product_of_row ~inputs 4));
  checks "single input" "I1"
    (Expr.to_string (Analyzer.product_of_row ~inputs:[| "I1" |] 1))

let test_extracted_table () =
  let names = [| "I1"; "OUT" |] in
  let samples =
    List.init 10 (fun _ -> sample1 low 40.)
    @ List.init 10 (fun _ -> sample1 high 1.)
  in
  let r =
    Analyzer.run
      {
        Analyzer.trace = trace_of ~names samples;
        inputs = [| "I1" |];
        output = "OUT";
      }
  in
  checki "NOT gate code" 0x1 (Truth_table.to_code (Analyzer.extracted_table r));
  checks "expression" "I1'" (Expr.to_string r.Analyzer.expr)

(* ---- verification ---- *)

let analyzer_result_with minterms =
  let names = [| "I1"; "I2"; "OUT" |] in
  let samples =
    List.concat_map
      (fun row ->
        let i1 = if row land 2 = 2 then high else low in
        let i2 = if row land 1 = 1 then high else low in
        let o = if List.mem row minterms then 40. else 1. in
        List.init 10 (fun _ -> [| i1; i2; o |]))
      [ 0; 1; 2; 3 ]
  in
  Analyzer.run
    {
      Analyzer.trace = trace_of ~names samples;
      inputs = [| "I1"; "I2" |];
      output = "OUT";
    }

let test_verify_match () =
  let r = analyzer_result_with [ 3 ] in
  let v =
    Verify.against ~expected:(Truth_table.of_minterms ~arity:2 [ 3 ]) r
  in
  checkb "verified" true v.Verify.verified;
  Alcotest.(check (list int)) "no wrong states" [] v.Verify.wrong_states

let test_verify_wrong_states () =
  let r = analyzer_result_with [ 1; 3 ] in
  let v =
    Verify.against ~expected:(Truth_table.of_minterms ~arity:2 [ 2; 3 ]) r
  in
  checkb "not verified" false v.Verify.verified;
  Alcotest.(check (list int)) "symmetric difference" [ 1; 2 ]
    v.Verify.wrong_states

let test_verify_diagnose () =
  (* craft one failure of each kind over a 2-input experiment:
     expected = {1, 2, 3}; observed behaviour gives:
       row 0: stable high  -> Unexpected_high
       row 1: mostly low   -> Weak_output
       row 2: oscillating  -> Unstable_output
       row 3: never driven -> Unobserved *)
  let names = [| "I1"; "I2"; "OUT" |] in
  let block row f =
    List.init 40 (fun k ->
        let i1 = if row land 2 = 2 then high else low in
        let i2 = if row land 1 = 1 then high else low in
        [| i1; i2; f k |])
  in
  let samples =
    block 0 (fun _ -> 40.)
    @ block 1 (fun k -> if k < 10 then 40. else 1.)
    @ block 2 (fun k -> if k mod 2 = 0 then 40. else 1.)
  in
  let r =
    Analyzer.run
      {
        Analyzer.trace = trace_of ~names samples;
        inputs = [| "I1"; "I2" |];
        output = "OUT";
      }
  in
  let report =
    Verify.against ~expected:(Truth_table.of_minterms ~arity:2 [ 1; 2; 3 ]) r
  in
  Alcotest.(check (list int)) "all four wrong" [ 0; 1; 2; 3 ]
    report.Verify.wrong_states;
  let findings = Verify.diagnose r report in
  let causes = List.map (fun f -> f.Verify.f_cause) findings in
  checkb "classification" true
    (causes
    = [
        Verify.Unexpected_high; Verify.Weak_output; Verify.Unstable_output;
        Verify.Unobserved;
      ]);
  (* the rendered hints mention the remedies *)
  let rendered =
    String.concat "\n"
      (List.map
         (Format.asprintf "%a" (Verify.pp_finding ~arity:2))
         findings)
  in
  let has sub =
    let n = String.length rendered and m = String.length sub in
    let rec go i =
      i + m <= n && (String.sub rendered i m = sub || go (i + 1))
    in
    go 0
  in
  checkb "hold hint" true (has "lengthen the hold time");
  checkb "coverage hint" true (has "lengthen the simulation")

let test_verify_arity_mismatch () =
  let r = analyzer_result_with [ 3 ] in
  match Verify.against ~expected:(Truth_table.of_minterms ~arity:3 [ 3 ]) r with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

(* ---- baselines ---- *)

let test_baselines_on_fig2_trap () =
  (* the Fig. 2 XNOR trap input: stable glitch on 00, true high on 11 *)
  let names = [| "I1"; "I2"; "OUT" |] in
  let case00 k = [| low; low; (if k >= 50 && k < 53 then 40. else 1.) |] in
  let case11 k = [| high; high; (if k >= 20 then 40. else 1.) |] in
  let data =
    {
      Analyzer.trace =
        trace_of ~names (List.init 100 case00 @ List.init 60 case11);
      inputs = [| "I1"; "I2" |];
      output = "OUT";
    }
  in
  let minterms e = e.Glc_core.Baseline.b_minterms in
  (* the full algorithm and eq. (2) reject the glitch *)
  Alcotest.(check (list int)) "full" [ 3 ]
    (minterms (Glc_core.Baseline.full data));
  Alcotest.(check (list int)) "majority" [ 3 ]
    (minterms (Glc_core.Baseline.majority_only ~threshold:15. data));
  (* eq. (1) alone falls into the trap: the glitch is stable *)
  Alcotest.(check (list int)) "stability trapped" [ 0; 3 ]
    (minterms
       (Glc_core.Baseline.stability_only ~threshold:15. ~fov_ud:0.25 data));
  checki "wrong states counted" 1
    (Glc_core.Baseline.wrong_states
       ~expected:(Truth_table.of_minterms ~arity:2 [ 3 ])
       (Glc_core.Baseline.stability_only ~threshold:15. ~fov_ud:0.25 data))

let test_baseline_endpoint () =
  (* output that decays within each block: the endpoint read is low even
     though most of the block is high *)
  let names = [| "I1"; "OUT" |] in
  let block i1 f = List.init 20 (fun k -> sample1 i1 (f k)) in
  let samples =
    block low (fun _ -> 1.)
    @ block high (fun k -> if k < 15 then 40. else 1.)
    (* decays before the end *)
    @ block low (fun _ -> 1.)
    @ block high (fun k -> if k < 15 then 40. else 1.)
  in
  let data =
    {
      Analyzer.trace = trace_of ~names samples;
      inputs = [| "I1" |];
      output = "OUT";
    }
  in
  Alcotest.(check (list int)) "endpoint misses the mostly-high block" []
    (Glc_core.Baseline.endpoint_sampling ~threshold:15. data)
      .Glc_core.Baseline.b_minterms;
  Alcotest.(check (list int)) "majority sees it" [ 1 ]
    (Glc_core.Baseline.majority_only ~threshold:15. data)
      .Glc_core.Baseline.b_minterms

(* ---- smoothing ---- *)

let test_majority_smooth () =
  let noisy =
    [| false; false; true; false; false; true; true; true; true; false |]
  in
  let smoothed = Digital.majority_smooth ~window:3 noisy in
  (* the isolated spike at index 2 is removed; the level shift stays *)
  checkb "spike removed" false smoothed.(2);
  checkb "level kept" true smoothed.(6);
  Alcotest.(check (array bool))
    "identity window" noisy
    (Digital.majority_smooth ~window:1 noisy);
  Alcotest.check_raises "even window"
    (Invalid_argument
       "Digital.majority_smooth: window must be odd and positive")
    (fun () -> ignore (Digital.majority_smooth ~window:4 noisy))

let test_analyzer_smoothing_kills_glitches () =
  let names = [| "I1"; "OUT" |] in
  (* 60 samples with isolated single-sample glitches every 10 samples *)
  let samples =
    List.init 60 (fun k ->
        sample1 high (if k mod 10 = 5 then 1. else 40.))
  in
  let data =
    {
      Analyzer.trace = trace_of ~names samples;
      inputs = [| "I1" |];
      output = "OUT";
    }
  in
  let raw = Analyzer.run data in
  let smoothed = Analyzer.run ~smooth_window:5 data in
  checkb "raw sees variations" true
    (raw.Analyzer.cases.(1).Analyzer.variations > 5);
  checki "smoothing removes them" 0
    smoothed.Analyzer.cases.(1).Analyzer.variations;
  checkb "fitness improves" true
    (smoothed.Analyzer.fitness > raw.Analyzer.fitness)

(* ---- minimised expressions ---- *)

let test_minimised_expr () =
  let names = [| "I1"; "I2"; "I3"; "OUT" |] in
  (* drive minterms {0,1,3} of (I1,I2,I3): 0x0B's function *)
  let samples =
    List.concat_map
      (fun row ->
        let bit j = if (row lsr (2 - j)) land 1 = 1 then high else low in
        let o = if List.mem row [ 0; 1; 3 ] then 40. else 1. in
        List.init 8 (fun _ -> [| bit 0; bit 1; bit 2; o |]))
      (List.init 8 Fun.id)
  in
  let r =
    Analyzer.run
      {
        Analyzer.trace = trace_of ~names samples;
        inputs = [| "I1"; "I2"; "I3" |];
        output = "OUT";
      }
  in
  checks "canonical form"
    "I1'.I2'.I3' + I1'.I2'.I3 + I1'.I2.I3"
    (Expr.to_string r.Analyzer.expr);
  checks "minimised form" "I1'.I2' + I1'.I3"
    (Expr.to_string (Analyzer.minimised_expr r));
  checkb "forms are equivalent" true
    (Expr.equivalent
       ~inputs:[| "I1"; "I2"; "I3" |]
       r.Analyzer.expr
       (Analyzer.minimised_expr r));
  Alcotest.(check (array string))
    "inputs retained" [| "I1"; "I2"; "I3" |] r.Analyzer.inputs

(* ---- vcd ---- *)

let test_vcd () =
  let names = [| "I1"; "OUT" |] in
  let samples =
    [ sample1 low 1.; sample1 low 40.; sample1 high 40.; sample1 high 1. ]
  in
  let tr = trace_of ~names samples in
  let vcd = Glc_core.Vcd.of_trace ~threshold:15. tr in
  let has sub =
    let n = String.length vcd and m = String.length sub in
    let rec go i = i + m <= n && (String.sub vcd i m = sub || go (i + 1)) in
    go 0
  in
  checkb "declares I1" true (has "$var wire 1 ! I1 $end");
  checkb "declares OUT" true (has "$var wire 1 \" OUT $end");
  checkb "initial dump" true (has "$dumpvars\n0!\n0\"\n$end");
  checkb "OUT rises at 1" true (has "#1\n1\"");
  checkb "I1 rises at 2" true (has "#2\n1!");
  checkb "falls at 3" true (has "#3\n0\"");
  (* species selection *)
  let only_out = Glc_core.Vcd.of_trace ~species:[ "OUT" ] ~threshold:15. tr in
  let has_out sub =
    let n = String.length only_out and m = String.length sub in
    let rec go i =
      i + m <= n && (String.sub only_out i m = sub || go (i + 1))
    in
    go 0
  in
  checkb "selected species only" false (has_out "I1")

(* ---- properties ---- *)

(* Drives a trace that realises the given table, optionally injecting
   glitches: [flips] samples per combination get their output inverted
   (spread out so they never exceed the filters' tolerances). *)
let trace_for_table ?(flips = 0) ~block tt =
  let arity = Truth_table.arity tt in
  let names =
    Array.append
      (Array.init arity (fun j -> Printf.sprintf "I%d" (j + 1)))
      [| "OUT" |]
  in
  let samples =
    List.concat_map
      (fun row ->
        let bit j = if (row lsr (arity - 1 - j)) land 1 = 1 then high else low in
        let expected = Truth_table.output tt row in
        List.init block (fun k ->
            let glitched = flips > 0 && k mod (block / flips) = block / (2 * flips) in
            let out_high = if glitched then not expected else expected in
            Array.append
              (Array.init arity bit)
              [| (if out_high then 40. else 1.) |]))
      (List.init (Truth_table.rows tt) Fun.id)
  in
  {
    Analyzer.trace = trace_of ~names samples;
    inputs = Array.init arity (fun j -> Printf.sprintf "I%d" (j + 1));
    output = "OUT";
  }

let prop_recovers_any_table =
  QCheck.Test.make ~name:"clean traces yield the driven table exactly"
    ~count:150
    (QCheck.make
       ~print:(Printf.sprintf "0x%02X")
       QCheck.Gen.(int_bound 255))
    (fun code ->
      let tt = Truth_table.of_code ~arity:3 code in
      let r = Analyzer.run (trace_for_table ~block:40 tt) in
      Truth_table.equal tt (Analyzer.extracted_table r)
      && (Float.abs (r.Analyzer.fitness -. 100.) < 1e-9))

let prop_tolerates_sparse_glitches =
  QCheck.Test.make
    ~name:"isolated glitches below the filter bounds change nothing"
    ~count:100
    (QCheck.make
       ~print:(fun (c, f) -> Printf.sprintf "0x%02X/%d flips" c f)
       QCheck.Gen.(pair (int_bound 255) (int_range 1 3)))
    (fun (code, flips) ->
      let tt = Truth_table.of_code ~arity:3 code in
      let r =
        Analyzer.run (trace_for_table ~flips ~block:100 tt)
      in
      Truth_table.equal tt (Analyzer.extracted_table r))

(* ---- report ---- *)

let test_report_contents () =
  let r = analyzer_result_with [ 3 ] in
  let s = Report.result_to_string ~output_name:"OUT" r in
  let has sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  checkb "has header" true (has "Case_I");
  checkb "has PFoBE" true (has "PFoBE");
  checkb "has expression" true (has "OUT = I1.I2");
  checkb "marks minterm rows" true (has "*")

(* ---- robustness: operating_range over synthetic sweeps ---- *)

let wpoint ?(verified = true) w_threshold =
  {
    Glc_core.Robustness.w_threshold;
    w_verified = verified;
    w_fitness = 100.;
    w_variations = 0;
  }

let range = Alcotest.(option (pair (float 0.) (float 0.)))

let test_operating_range () =
  let open Glc_core.Robustness in
  Alcotest.check range "empty sweep" None (operating_range []);
  Alcotest.check range "no verified point" None
    (operating_range [ wpoint ~verified:false 3.; wpoint ~verified:false 15. ]);
  Alcotest.check range "single verified point collapses to [t, t]"
    (Some (15., 15.))
    (operating_range
       [ wpoint ~verified:false 3.; wpoint 15.; wpoint ~verified:false 40. ]);
  (* a non-contiguous verified set still reports min..max: the range is
     an envelope, not a guarantee that every interior point verifies *)
  Alcotest.check range "non-contiguous window is an envelope"
    (Some (8., 60.))
    (operating_range
       [
         wpoint ~verified:false 3.; wpoint 8.; wpoint ~verified:false 15.;
         wpoint 60.; wpoint ~verified:false 90.;
       ]);
  (* order of the sweep does not matter *)
  Alcotest.check range "unsorted sweep" (Some (8., 60.))
    (operating_range [ wpoint 60.; wpoint ~verified:false 90.; wpoint 8. ])

let () =
  Alcotest.run "glc_core"
    [
      ( "digital",
        [
          Alcotest.test_case "adc" `Quick test_adc;
          Alcotest.test_case "counts" `Quick test_counts;
        ] );
      ( "case_analyzer",
        [
          Alcotest.test_case "stream splitting" `Quick
            test_case_streams_split;
          Alcotest.test_case "unobserved combinations" `Quick
            test_unobserved_combinations;
        ] );
      ( "filters",
        [
          Alcotest.test_case "fig 2: the XNOR trap" `Quick
            test_fig2_xnor_trap;
          Alcotest.test_case "fig 3: oscillation filter" `Quick
            test_fig3_oscillation_filter;
          Alcotest.test_case "strict FOV boundary" `Quick
            test_strict_fov_boundary;
        ] );
      ( "fitness",
        [ Alcotest.test_case "exact values" `Quick test_fitness_exact ] );
      ( "validation",
        [ Alcotest.test_case "errors" `Quick test_analyzer_errors ] );
      ( "expressions",
        [
          Alcotest.test_case "product_of_row" `Quick test_product_of_row;
          Alcotest.test_case "extracted table" `Quick test_extracted_table;
        ] );
      ( "verify",
        [
          Alcotest.test_case "match" `Quick test_verify_match;
          Alcotest.test_case "wrong states" `Quick test_verify_wrong_states;
          Alcotest.test_case "diagnosis" `Quick test_verify_diagnose;
          Alcotest.test_case "arity mismatch" `Quick
            test_verify_arity_mismatch;
        ] );
      ( "baselines",
        [
          Alcotest.test_case "fig 2 trap" `Quick test_baselines_on_fig2_trap;
          Alcotest.test_case "endpoint sampling" `Quick
            test_baseline_endpoint;
        ] );
      ( "smoothing",
        [
          Alcotest.test_case "majority filter" `Quick test_majority_smooth;
          Alcotest.test_case "glitch removal in the analyzer" `Quick
            test_analyzer_smoothing_kills_glitches;
        ] );
      ( "minimisation",
        [ Alcotest.test_case "minimised_expr" `Quick test_minimised_expr ] );
      ("vcd", [ Alcotest.test_case "format" `Quick test_vcd ]);
      ( "report",
        [ Alcotest.test_case "contents" `Quick test_report_contents ] );
      ( "robustness",
        [
          Alcotest.test_case "operating_range edge cases" `Quick
            test_operating_range;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_recovers_any_table; prop_tolerates_sparse_glitches ] );
    ]
