(* Tests for glc_engine: counter-based seed derivation, the domain pool,
   ensemble statistics, the compiled-model cache, and the determinism
   and degradation guarantees of ensemble verification. *)

module Rng = Glc_ssa.Rng
module Truth_table = Glc_logic.Truth_table
module Circuits = Glc_gates.Circuits
module Cello = Glc_gates.Cello
module Protocol = Glc_dvasim.Protocol
module Seeds = Glc_engine.Seeds
module Pool = Glc_engine.Pool
module Stats = Glc_engine.Stats
module Cache = Glc_engine.Cache
module Progress = Glc_engine.Progress
module Ensemble = Glc_engine.Ensemble

let contains s sub =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checkf eps = Alcotest.check (Alcotest.float eps)
let checks = Alcotest.check Alcotest.string

(* a cheap protocol: every combination still gets a full-delay slot *)
let quick_protocol ~arity =
  Protocol.make
    ~total_time:(1_000. *. float_of_int (1 lsl arity))
    ~hold_time:1_000. ()

(* ---- seeds ---- *)

let stream_prefix rng n =
  let r = Rng.copy rng in
  List.init n (fun _ -> Rng.bits64 r)

let test_seeds_deterministic () =
  let a = Seeds.derive ~seed:7 5 and b = Seeds.derive ~seed:7 5 in
  for i = 0 to 4 do
    checkb "same stream" true
      (stream_prefix a.(i) 50 = stream_prefix b.(i) 50)
  done;
  let c = Seeds.derive ~seed:8 5 in
  checkb "seed-sensitive" false
    (stream_prefix a.(0) 50 = stream_prefix c.(0) 50)

let test_seeds_prefix_stable () =
  (* counter-based: stream i never depends on how many streams exist *)
  let small = Seeds.derive ~seed:42 3 and big = Seeds.derive ~seed:42 64 in
  for i = 0 to 2 do
    checkb "prefix stable" true
      (stream_prefix small.(i) 100 = stream_prefix big.(i) 100)
  done;
  checkb "replicate agrees with derive" true
    (stream_prefix (Seeds.replicate ~seed:42 2) 100
    = stream_prefix big.(2) 100)

let test_seeds_distinct () =
  let streams = Seeds.derive ~seed:1 32 in
  let seen = Hashtbl.create 1024 in
  Array.iteri
    (fun i rng ->
      List.iter
        (fun v ->
          (match Hashtbl.find_opt seen v with
          | Some j when j <> i -> Alcotest.failf "streams %d/%d collide" i j
          | _ -> ());
          Hashtbl.replace seen v i)
        (stream_prefix rng 100))
    streams

let test_seeds_validation () =
  Alcotest.check_raises "negative count"
    (Invalid_argument "Seeds.derive: negative count") (fun () ->
      ignore (Seeds.derive ~seed:1 (-1)))

(* ---- pool ---- *)

let test_pool_map () =
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun p ->
          let results =
            Pool.map p (fun i x -> (i * 10) + x) (Array.init 100 Fun.id)
          in
          Array.iteri
            (fun i r ->
              match r with
              | Ok v -> checki "slot value" ((i * 10) + i) v
              | Error _ -> Alcotest.fail "unexpected task error")
            results))
    [ 1; 2; 4 ]

let test_pool_capture () =
  Pool.with_pool ~jobs:2 (fun p ->
      let results =
        Pool.map p
          (fun i () -> if i mod 3 = 1 then failwith "boom" else i)
          (Array.make 9 ())
      in
      Array.iteri
        (fun i r ->
          match r with
          | Ok v ->
              checkb "survivor" true (i mod 3 <> 1);
              checki "survivor value" i v
          | Error (e : Pool.error) ->
              checkb "failer" true (i mod 3 = 1);
              checki "error index" i e.Pool.task;
              checkb "message mentions exception" true
                (String.length e.Pool.message > 0))
        results;
      (* the pool survives failures and can run more work *)
      match Pool.map p (fun _ x -> x + 1) [| 1 |] with
      | [| Ok 2 |] -> ()
      | _ -> Alcotest.fail "pool unusable after captured failure")

let test_pool_lifecycle () =
  let p = Pool.create ~jobs:2 () in
  checki "jobs" 2 (Pool.jobs p);
  checkb "empty map" true (Pool.map p (fun _ x -> x) [||] = [||]);
  Pool.shutdown p;
  Pool.shutdown p;
  (* idempotent *)
  (match Pool.map p (fun _ x -> x) [| 1 |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "map after shutdown must fail");
  Alcotest.check_raises "jobs < 1"
    (Invalid_argument "Pool.create: jobs < 1") (fun () ->
      ignore (Pool.create ~jobs:0 ()))

let test_pool_map_blocks () =
  Pool.with_pool ~jobs:2 (fun p ->
      (* 13 items in width-4 blocks: starts 0,4,8,12; last block short *)
      let arr = Array.init 13 (fun i -> i) in
      let blocks =
        Pool.map_blocks p ~width:4
          (fun start items -> (start, Array.length items, Array.to_list items))
          arr
      in
      checki "block count" 4 (Array.length blocks);
      Array.iteri
        (fun b outcome ->
          match outcome with
          | Ok (start, len, items) ->
              checki "start" (4 * b) start;
              checki "length" (if b = 3 then 1 else 4) len;
              checkb "contents" true
                (items = List.init len (fun k -> start + k))
          | Error _ -> Alcotest.fail "block failed")
        blocks;
      (* a raising block reports the block's start index, not its number *)
      (match
         Pool.map_blocks p ~width:4
           (fun start _ -> if start = 8 then failwith "boom" else start)
           arr
       with
      | [| Ok 0; Ok 4; Error e; Ok 12 |] -> checki "error task" 8 e.Pool.task
      | _ -> Alcotest.fail "unexpected block outcomes");
      Alcotest.check_raises "width < 1"
        (Invalid_argument "Pool.map_blocks: width < 1") (fun () ->
          ignore (Pool.map_blocks p ~width:0 (fun s _ -> s) arr)))

(* ---- stats ---- *)

let test_stats_summary () =
  let s = Stats.of_list [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ] in
  checki "n" 8 s.Stats.n;
  checkf 1e-9 "mean" 5. s.Stats.mean;
  checkf 1e-6 "sd" 2.13809 s.Stats.sd;
  checkf 1e-6 "ci95" (1.96 *. 2.13809 /. sqrt 8.) s.Stats.ci95;
  checkf 1e-9 "min" 2. s.Stats.min;
  checkf 1e-9 "max" 9. s.Stats.max;
  let empty = Stats.of_list [] in
  checki "empty n" 0 empty.Stats.n;
  checkf 1e-9 "empty mean" 0. empty.Stats.mean;
  let one = Stats.of_list [ 3. ] in
  checkf 1e-9 "singleton sd" 0. one.Stats.sd;
  checkf 1e-9 "singleton ci" 0. one.Stats.ci95

let test_stats_dispersion_options () =
  (* the 0/1-replicate cases: no dispersion estimate exists, and the
     option forms must say so instead of leaning on the summary's zero
     sentinels *)
  checkb "variance of [] is None" true (Stats.variance [||] = None);
  checkb "sd of [] is None" true (Stats.sd [||] = None);
  checkb "variance of singleton is None" true (Stats.variance [| 5. |] = None);
  checkb "sd of singleton is None" true (Stats.sd [| 5. |] = None);
  (match Stats.variance [| 1.; 3. |] with
  | Some v -> checkf 1e-12 "variance of pair" 2. v
  | None -> Alcotest.fail "pair has a variance");
  (match Stats.sd [| 1.; 3. |] with
  | Some v -> checkf 1e-12 "sd of pair" (sqrt 2.) v
  | None -> Alcotest.fail "pair has an sd");
  (* the summary sentinels stay total and zero for n < 2 *)
  let zero = Stats.of_array [||] and one = Stats.of_array [| 5. |] in
  checkf 1e-12 "empty summary sd" 0. zero.Stats.sd;
  checkf 1e-12 "singleton summary sd" 0. one.Stats.sd;
  checkf 1e-12 "singleton summary ci95" 0. one.Stats.ci95;
  let two = Stats.of_array [| 1.; 3. |] in
  checkf 1e-12 "pair summary sd" (sqrt 2.) two.Stats.sd

let test_stats_ci_shrinks () =
  (* draws from one distribution: quadrupling the sample count must
     roughly halve the confidence interval *)
  let rng = Rng.create 99 in
  let sample n = Array.init n (fun _ -> 50. +. (3. *. Rng.gaussian rng)) in
  let small = Stats.of_array (sample 100) in
  let large = Stats.of_array (sample 400) in
  checkb "ci shrinks" true (large.Stats.ci95 < small.Stats.ci95);
  checkf 0.3 "roughly halves" 0.5 (large.Stats.ci95 /. small.Stats.ci95)

(* ---- cache ---- *)

let test_cache () =
  let cache = Cache.create () in
  let builds = ref 0 in
  let build () =
    incr builds;
    Glc_gates.Circuit.model (Circuits.genetic_not ())
  in
  let a = Cache.compiled cache ~key:"genetic_NOT" build in
  let b = Cache.compiled cache ~key:"genetic_NOT" build in
  checkb "same compilation" true (a == b);
  checki "built once" 1 !builds;
  checki "hits" 1 (Cache.hits cache);
  checki "misses" 1 (Cache.misses cache);
  ignore (Cache.compiled cache ~key:"other" build);
  checki "distinct keys build" 2 !builds;
  Cache.clear cache;
  ignore (Cache.compiled cache ~key:"genetic_NOT" build);
  checki "rebuilt after clear" 3 !builds

let test_cache_concurrent () =
  (* Four domains race on the same key. The cache holds its lock across
     the miss's compile, so exactly one build must happen and everyone
     must get the same physical compilation. *)
  let cache = Cache.create () in
  let builds = Atomic.make 0 in
  let gate = Atomic.make false in
  let build () =
    Atomic.incr builds;
    Glc_gates.Circuit.model (Circuits.genetic_not ())
  in
  let worker () =
    while not (Atomic.get gate) do
      Domain.cpu_relax ()
    done;
    Cache.compiled cache ~key:"genetic_NOT" build
  in
  let domains = List.init 4 (fun _ -> Domain.spawn worker) in
  Atomic.set gate true;
  let results = List.map Domain.join domains in
  checki "built once" 1 (Atomic.get builds);
  checki "misses" 1 (Cache.misses cache);
  checki "hits" 3 (Cache.hits cache);
  match results with
  | first :: rest ->
      List.iteri
        (fun i c ->
          checkb (Printf.sprintf "domain %d shares the compilation" (i + 1))
            true (c == first))
        rest
  | [] -> Alcotest.fail "no results"

(* Regression: two circuits with the SAME name but different kinetics
   must not share a compilation. Keying the cache by name alone served
   the first circuit's model to the second; model_key folds a content
   fingerprint into the key. *)
let perturbed_genetic_not () =
  let base = Circuits.genetic_not () in
  Glc_gates.Circuit.make ~name:base.Glc_gates.Circuit.name
    ~document:base.Glc_gates.Circuit.document
    ~inputs:base.Glc_gates.Circuit.inputs
    ~output:base.Glc_gates.Circuit.output
    ~expected:base.Glc_gates.Circuit.expected
    ~promoter_kinetics:
      [
        ( "P1",
          { Glc_sbol.To_model.default_kinetics with Glc_sbol.To_model.ymax = 9. }
        );
      ]
    ~regulator_affinity:base.Glc_gates.Circuit.regulator_affinity ()

let test_cache_fingerprint () =
  let base = Circuits.genetic_not () in
  let variant = perturbed_genetic_not () in
  let mb = Glc_gates.Circuit.model base in
  let mv = Glc_gates.Circuit.model variant in
  checks "fingerprint deterministic" (Cache.fingerprint mb)
    (Cache.fingerprint (Glc_gates.Circuit.model base));
  checkb "same name, different kinetics -> different fingerprints" false
    (String.equal (Cache.fingerprint mb) (Cache.fingerprint mv));
  checkb "model_key embeds the name" true
    (contains (Cache.model_key ~name:"genetic_NOT" mb) "genetic_NOT");
  let cache = Cache.create () in
  let a =
    Cache.compiled cache
      ~key:(Cache.model_key ~name:"genetic_NOT" mb)
      (fun () -> mb)
  in
  let b =
    Cache.compiled cache
      ~key:(Cache.model_key ~name:"genetic_NOT" mv)
      (fun () -> mv)
  in
  checkb "distinct compilations" true (a != b);
  checki "two misses, no collision" 2 (Cache.misses cache);
  checki "no false hit" 0 (Cache.hits cache)

(* ---- ensemble ---- *)

let not_config ?(replicates = 6) ?(jobs = 1) () =
  Ensemble.config ~replicates ~jobs ~seed:7
    ~protocol:(quick_protocol ~arity:1) ()

let test_ensemble_jobs_determinism () =
  (* the acceptance contract: byte-identical reports for any worker
     count *)
  let circuit = Circuits.genetic_not () in
  let reference =
    Ensemble.to_json (Ensemble.run (not_config ~jobs:1 ()) circuit)
  in
  List.iter
    (fun jobs ->
      let t = Ensemble.run (not_config ~jobs ()) circuit in
      checks
        (Printf.sprintf "jobs=%d matches jobs=1" jobs)
        reference (Ensemble.to_json t))
    [ 2; 4 ]

let test_ensemble_prefix_stability () =
  (* counter-based derivation end to end: replicate i of a small
     ensemble is replicate i of a larger one *)
  let circuit = Circuits.genetic_not () in
  let small = Ensemble.run (not_config ~replicates:3 ()) circuit in
  let large = Ensemble.run (not_config ~replicates:6 ()) circuit in
  Array.iteri
    (fun i (rep : Ensemble.replicate) ->
      checkf 1e-12 "same replicate fitness"
        large.Ensemble.replicates.(i).Ensemble.rep_result
          .Glc_core.Analyzer.fitness
        rep.Ensemble.rep_result.Glc_core.Analyzer.fitness)
    small.Ensemble.replicates

let test_ensemble_consensus_genetic_and () =
  let circuit = Circuits.genetic_and () in
  let cfg =
    Ensemble.config ~replicates:3 ~jobs:2 ~seed:7
      ~protocol:(quick_protocol ~arity:2) ()
  in
  let t = Ensemble.run cfg circuit in
  checki "all replicates completed" 3 (Array.length t.Ensemble.replicates);
  checkb "consensus equals intent" true
    (Truth_table.equal t.Ensemble.consensus circuit.Glc_gates.Circuit.expected);
  checkb "consensus verified" true t.Ensemble.consensus_verified;
  checkb "fitness sane" true
    (t.Ensemble.fitness.Stats.mean > 50.
    && t.Ensemble.fitness.Stats.mean <= 100.)

let test_ensemble_consensus_0x1C () =
  let circuit = Cello.circuit_0x1C () in
  let cfg =
    Ensemble.config ~replicates:3 ~jobs:2 ~seed:7
      ~protocol:(quick_protocol ~arity:3) ()
  in
  let t = Ensemble.run cfg circuit in
  checki "consensus code" 0x1C (Truth_table.to_code t.Ensemble.consensus);
  checkb "consensus verified" true t.Ensemble.consensus_verified

let test_ensemble_ci_shrinks () =
  (* more replicates -> tighter confidence interval on PFoBE. The seeds
     are fixed, so this is a deterministic check, not a flaky one;
     genetic_AND (unlike genetic_NOT on this short protocol) has real
     replicate-to-replicate fitness variance. *)
  let circuit = Circuits.genetic_and () in
  let ci replicates =
    let cfg =
      Ensemble.config ~replicates ~jobs:1 ~seed:7
        ~protocol:(quick_protocol ~arity:2) ()
    in
    (Ensemble.run cfg circuit).Ensemble.fitness.Stats.ci95
  in
  let small = ci 4 and large = ci 16 in
  checkb "ci positive" true (large > 0.);
  checkb "ci shrinks with replicates" true (large < small)

let test_ensemble_degradation () =
  (* aggregate over a mix of completed and failed replicates: the
     failures are reported, the statistics cover the survivors *)
  let circuit = Circuits.genetic_not () in
  let full = Ensemble.run (not_config ~replicates:4 ()) circuit in
  let survivors =
    List.filteri
      (fun i _ -> i <> 2)
      (Array.to_list full.Ensemble.replicates)
  in
  let t =
    Ensemble.aggregate ~name:full.Ensemble.name ~seed:7 ~requested:4
      ~expected:full.Ensemble.expected ~replicates:survivors
      ~failures:
        [ { Ensemble.fail_index = 2; fail_error = "Failure(\"boom\")" } ]
  in
  checki "survivors" 3 (Array.length t.Ensemble.replicates);
  checki "failures" 1 (Array.length t.Ensemble.failures);
  checki "requested unchanged" 4 t.Ensemble.requested;
  checki "fitness over survivors" 3 t.Ensemble.fitness.Stats.n;
  checkb "consensus still verified" true t.Ensemble.consensus_verified;
  checkb "failure in report" true
    (contains (Ensemble.to_json t) "\"failures\":[{\"index\":2")

let test_ensemble_empty_aggregate () =
  (* every replicate failed: degraded but well-formed *)
  let expected = Truth_table.of_minterms ~arity:1 [ 0 ] in
  let t =
    Ensemble.aggregate ~name:"dead" ~seed:1 ~requested:2 ~expected
      ~replicates:[]
      ~failures:
        [
          { Ensemble.fail_index = 0; fail_error = "a" };
          { Ensemble.fail_index = 1; fail_error = "b" };
        ]
  in
  checki "no survivors" 0 (Array.length t.Ensemble.replicates);
  checki "fitness n" 0 t.Ensemble.fitness.Stats.n;
  checkb "all-failed consensus is constant-0" true
    (Truth_table.to_code t.Ensemble.consensus = 0);
  checkb "not verified" false t.Ensemble.consensus_verified;
  ignore (Ensemble.to_json t);
  ignore (Format.asprintf "%a" Ensemble.pp t)

let test_ensemble_single_replicate () =
  (* n = 1: consensus degenerates to that replicate's vote, and the
     fitness summary reports sd = ci95 = 0 (the documented sentinel —
     Stats.sd/variance return None for the same data) *)
  let circuit = Circuits.genetic_not () in
  let t = Ensemble.run (not_config ~replicates:1 ()) circuit in
  checki "one replicate" 1 (Array.length t.Ensemble.replicates);
  checki "fitness n" 1 t.Ensemble.fitness.Stats.n;
  checkf 1e-12 "fitness sd sentinel" 0. t.Ensemble.fitness.Stats.sd;
  checkf 1e-12 "fitness ci95 sentinel" 0. t.Ensemble.fitness.Stats.ci95;
  checkb "consensus verified" true t.Ensemble.consensus_verified;
  Array.iter
    (fun (c : Ensemble.case_summary) ->
      checkb "no flake with one voter" false c.Ensemble.cs_flaky;
      checkf 1e-12 "agreement unanimous" 1. c.Ensemble.cs_agreement)
    t.Ensemble.cases;
  ignore (Ensemble.to_json t);
  ignore (Format.asprintf "%a" Ensemble.pp t)

let with_default_path path f =
  let saved = Glc_ssa.Compiled.default_path () in
  Glc_ssa.Compiled.set_default_path path;
  Fun.protect ~finally:(fun () -> Glc_ssa.Compiled.set_default_path saved) f

let test_ensemble_batched_matches_scalar () =
  (* the tentpole's acceptance check, end to end: an ensemble run on the
     batched path renders to the very bytes of the scalar run. 13
     replicates = one full 8-lane block plus a 5-lane one, so lane
     retirement inside a block and a short trailing block are both
     crossed, and jobs=2 splits the blocks across workers. *)
  let circuit = Circuits.genetic_not () in
  let cfg = not_config ~replicates:13 ~jobs:2 () in
  let scalar =
    with_default_path Glc_ssa.Compiled.Ir (fun () ->
        Ensemble.to_json (Ensemble.run cfg circuit))
  in
  let batched =
    with_default_path Glc_ssa.Compiled.Ir_batch (fun () ->
        Ensemble.run cfg circuit)
  in
  checki "all lanes retired" 13 (Array.length batched.Ensemble.replicates);
  checki "no failures" 0 (Array.length batched.Ensemble.failures);
  checks "batched report byte-identical to scalar" scalar
    (Ensemble.to_json batched)

let test_ensemble_flaky_report () =
  (* hand-built disagreement: 2 of 3 replicates say minterm, one says
     not -> consensus keeps it, the row is reported flaky *)
  let circuit = Circuits.genetic_not () in
  let base = Ensemble.run (not_config ~replicates:3 ()) circuit in
  (* genetic_NOT: all replicates agree (row 0 high). Flip replicate 2's
     extracted logic by re-verifying it against a doctored analysis. *)
  let doctored =
    let rep = base.Ensemble.replicates.(2) in
    let r = rep.Ensemble.rep_result in
    let r' =
      {
        r with
        Glc_core.Analyzer.minterms = [];
        cases =
          Array.map
            (fun (c : Glc_core.Analyzer.case_stats) ->
              { c with Glc_core.Analyzer.included = false })
            r.Glc_core.Analyzer.cases;
      }
    in
    {
      rep with
      Ensemble.rep_result = r';
      rep_verify =
        Glc_core.Verify.against ~expected:base.Ensemble.expected r';
    }
  in
  let reps =
    [ base.Ensemble.replicates.(0); base.Ensemble.replicates.(1); doctored ]
  in
  let t =
    Ensemble.aggregate ~name:"flaky" ~seed:7 ~requested:3
      ~expected:base.Ensemble.expected ~replicates:reps ~failures:[]
  in
  checkb "row 0 flaky" true (List.mem 0 t.Ensemble.flaky);
  checkb "majority still wins" true t.Ensemble.consensus_verified;
  let c = t.Ensemble.cases.(0) in
  checki "votes" 2 c.Ensemble.cs_minterm_votes;
  checkf 1e-9 "agreement" (2. /. 3.) c.Ensemble.cs_agreement;
  checkb "flagged" true c.Ensemble.cs_flaky

let test_ensemble_progress () =
  let events = ref [] in
  let progress =
    Progress.callback (fun ev -> events := ev :: !events)
  in
  let circuit = Circuits.genetic_not () in
  ignore (Ensemble.run ~progress (not_config ~replicates:4 ()) circuit);
  checki "one event per replicate" 4 (List.length !events);
  List.iter
    (function
      | Progress.Replicate_ok _ -> ()
      | Progress.Replicate_failed (i, e) ->
          Alcotest.failf "replicate %d failed: %s" i e)
    !events

let test_ensemble_cache_shared () =
  let cache = Cache.create () in
  let circuit = Circuits.genetic_not () in
  let cfg = not_config ~replicates:2 () in
  ignore (Ensemble.run ~cache cfg circuit);
  ignore (Ensemble.run ~cache cfg circuit);
  checki "compiled once across ensembles" 1 (Cache.misses cache);
  checki "second ensemble hits" 1 (Cache.hits cache)

let test_ensemble_cache_no_name_collision () =
  (* end-to-end form of the model_key regression: same cache, two
     same-name circuits with different kinetics -> two compilations and
     different verdict data, not a silent reuse of the first model *)
  let cache = Cache.create () in
  let cfg = not_config ~replicates:2 () in
  let t1 = Ensemble.run ~cache cfg (Circuits.genetic_not ()) in
  let t2 = Ensemble.run ~cache cfg (perturbed_genetic_not ()) in
  checki "both variants compiled" 2 (Cache.misses cache);
  checki "no false hit" 0 (Cache.hits cache);
  checkb "perturbed kinetics change the data" false
    (String.equal (Ensemble.to_json t1) (Ensemble.to_json t2))

let test_ensemble_validation () =
  Alcotest.check_raises "replicates < 1"
    (Invalid_argument "Ensemble.config: replicates < 1") (fun () ->
      ignore (Ensemble.config ~replicates:0 ()));
  Alcotest.check_raises "jobs < 0"
    (Invalid_argument "Ensemble.config: jobs < 0") (fun () ->
      ignore (Ensemble.config ~jobs:(-1) ()))

let () =
  Alcotest.run "glc_engine"
    [
      ( "seeds",
        [
          Alcotest.test_case "deterministic" `Quick test_seeds_deterministic;
          Alcotest.test_case "prefix stable" `Quick test_seeds_prefix_stable;
          Alcotest.test_case "streams distinct" `Quick test_seeds_distinct;
          Alcotest.test_case "validation" `Quick test_seeds_validation;
        ] );
      ( "pool",
        [
          Alcotest.test_case "map" `Quick test_pool_map;
          Alcotest.test_case "exception capture" `Quick test_pool_capture;
          Alcotest.test_case "lifecycle" `Quick test_pool_lifecycle;
          Alcotest.test_case "map_blocks" `Quick test_pool_map_blocks;
        ] );
      ( "stats",
        [
          Alcotest.test_case "summary" `Quick test_stats_summary;
          Alcotest.test_case "dispersion options, n=0/1/2" `Quick
            test_stats_dispersion_options;
          Alcotest.test_case "ci shrinks" `Quick test_stats_ci_shrinks;
        ] );
      ( "cache",
        [
          Alcotest.test_case "memoizes" `Quick test_cache;
          Alcotest.test_case "concurrent same-key" `Quick
            test_cache_concurrent;
          Alcotest.test_case "fingerprint keying" `Quick
            test_cache_fingerprint;
        ] );
      ( "ensemble",
        [
          Alcotest.test_case "jobs determinism" `Slow
            test_ensemble_jobs_determinism;
          Alcotest.test_case "prefix stability" `Slow
            test_ensemble_prefix_stability;
          Alcotest.test_case "consensus genetic_AND" `Slow
            test_ensemble_consensus_genetic_and;
          Alcotest.test_case "consensus 0x1C" `Slow
            test_ensemble_consensus_0x1C;
          Alcotest.test_case "ci shrinks with replicates" `Slow
            test_ensemble_ci_shrinks;
          Alcotest.test_case "failed-replicate degradation" `Quick
            test_ensemble_degradation;
          Alcotest.test_case "single replicate" `Quick
            test_ensemble_single_replicate;
          Alcotest.test_case "batched lane-blocks match scalar" `Slow
            test_ensemble_batched_matches_scalar;
          Alcotest.test_case "all replicates failed" `Quick
            test_ensemble_empty_aggregate;
          Alcotest.test_case "flaky minterm report" `Quick
            test_ensemble_flaky_report;
          Alcotest.test_case "progress events" `Quick
            test_ensemble_progress;
          Alcotest.test_case "cache shared" `Quick
            test_ensemble_cache_shared;
          Alcotest.test_case "no same-name cache collision" `Quick
            test_ensemble_cache_no_name_collision;
          Alcotest.test_case "validation" `Quick test_ensemble_validation;
        ] );
    ]
